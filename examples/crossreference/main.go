// Crossreference demonstrates the paper's Linked-Data direction
// (conclusions, ref. 37): curated metadata is published as triples, papers
// from different communities cast "shadows" (the species they mention), and
// cross-referencing connects them — including across a taxonomic rename,
// where a 1980s ecology paper citing the outdated name still reaches the
// same recordings as a 2014 bioacoustics paper citing the current one.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/linkeddata"
	"repro/internal/taxonomy"

	"repro/internal/fnjv"
)

func main() {
	log.SetFlags(0)

	// A small authority with one famous rename.
	cl := taxonomy.NewChecklist()
	add := func(id, name string) {
		n, err := taxonomy.ParseName(name)
		if err != nil {
			log.Fatal(err)
		}
		if err := cl.Add(&taxonomy.Taxon{ID: id, Name: n, Status: taxonomy.StatusAccepted, Group: "amphibians"}); err != nil {
			log.Fatal(err)
		}
	}
	add("T1", "Elachistocleis ovalis")
	add("T2", "Hyla faber")
	repl := &taxonomy.Taxon{ID: "T3", Name: taxonomy.Name{Genus: "Elachistocleis", Epithet: "cesarii"},
		Status: taxonomy.StatusAccepted, Group: "amphibians"}
	if err := cl.Deprecate("Elachistocleis ovalis", repl,
		time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC), "Caramaschi (2010)"); err != nil {
		log.Fatal(err)
	}

	// Two recordings: one under the historical name (curated to the new
	// one), one stable.
	store := linkeddata.NewStore()
	recs := []struct {
		rec     *fnjv.Record
		curated string
	}{
		{&fnjv.Record{ID: "FNJV-00017", Species: "Elachistocleis ovalis", Class: "Amphibia",
			City: "Campinas", State: "São Paulo",
			CollectDate: time.Date(1982, 11, 2, 0, 0, 0, 0, time.UTC)}, "Elachistocleis cesarii"},
		{&fnjv.Record{ID: "FNJV-00020", Species: "Hyla faber", Class: "Amphibia",
			City: "Campinas", State: "São Paulo",
			CollectDate: time.Date(1979, 1, 12, 0, 0, 0, 0, time.UTC)}, "Hyla faber"},
	}
	for _, r := range recs {
		if err := linkeddata.ExportRecord(store, r.rec, r.curated); err != nil {
			log.Fatal(err)
		}
	}

	// Literature from three communities.
	docs := map[string]linkeddata.Document{
		"eco-1985": {ID: "eco-1985", Community: "ecology",
			Title: "Diet of Elachistocleis ovalis in SE Brazil",
			Text:  "Stomach contents of Elachistocleis ovalis were examined..."},
		"tax-2010": {ID: "tax-2010", Community: "taxonomy",
			Title: "Notes on the taxonomic status of Elachistocleis ovalis",
			Text:  "We revise Elachistocleis ovalis and describe Elachistocleis cesarii..."},
		"bio-2014": {ID: "bio-2014", Community: "bioacoustics",
			Title: "Advertisement calls of Elachistocleis cesarii",
			Text:  "Calls of Elachistocleis cesarii were recorded near ponds with Hyla faber..."},
	}
	var shadows []linkeddata.Shadow
	for _, d := range docs {
		sh := linkeddata.ExtractShadow(d, cl)
		shadows = append(shadows, sh)
		if err := linkeddata.ExportDocument(store, d, sh, "https://fnjv.example/doc/"); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Println("cross-references between communities:")
	for _, ref := range linkeddata.CrossReferences(shadows, docs) {
		fmt.Printf("  %-26s connects %s (%s) <-> %s (%s)\n",
			ref.Entity, ref.DocA, ref.CommunityA, ref.DocB, ref.CommunityB)
	}

	fmt.Println("\nrecordings reachable per entity (old AND new names resolve):")
	for _, entity := range []string{"Elachistocleis ovalis", "Elachistocleis cesarii", "Hyla faber"} {
		fmt.Printf("  %-26s -> %v\n", entity, linkeddata.RecordsMentioning(store, entity))
	}

	fmt.Println("\nfull N-Triples export:")
	store.WriteNTriples(os.Stdout)
}
