// Spatialaudit runs the paper's stage-2 analysis: after stage-1 curation has
// geocoded the collection, species distributions are tested for geographic
// outliers — candidate misidentifications or possibly new behaviour.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/curation"
	"repro/internal/envsource"
	"repro/internal/fnjv"
	"repro/internal/geo"
	"repro/internal/storage"
	"repro/internal/taxonomy"
)

func main() {
	log.SetFlags(0)
	dir, err := os.MkdirTemp("", "spatialaudit-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	taxa, err := taxonomy.Generate(taxonomy.GeneratorSpec{
		Species: 400, OutdatedFraction: 0.07, Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}
	gaz := geo.SyntheticGazetteer(30, 11)
	col, err := fnjv.Generate(fnjv.CollectionSpec{
		Records: 6000, Seed: 11,
		MisplacedRate: 0.02, // extra misidentifications to hunt
	}, taxa, gaz, envsource.NewSimulator())
	if err != nil {
		log.Fatal(err)
	}

	db, err := storage.Open(dir, storage.Options{Sync: storage.SyncNever})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	store, err := fnjv.NewStore(db)
	if err != nil {
		log.Fatal(err)
	}
	if err := store.PutAll(col.Records); err != nil {
		log.Fatal(err)
	}
	led, err := curation.NewLedger(db)
	if err != nil {
		log.Fatal(err)
	}

	// Stage 1: clean and geocode so stage 2 sees the whole collection.
	if _, err := (&curation.Cleaner{Checklist: taxa.Checklist}).Clean(store); err != nil {
		log.Fatal(err)
	}
	gr, err := (&curation.Geocoder{Gazetteer: gaz}).Geocode(store)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("geocoded %d records (%d ambiguous left for curators)\n\n", gr.Geocoded, gr.Ambiguous)

	// Stage 2: the audit, with flags logged to the curation history.
	aud := &curation.SpatialAuditor{
		Params: geo.OutlierParams{MADFactor: 5, FloorKm: 50, MinRecords: 5},
		Ledger: led,
	}
	report, err := aud.Audit(store)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("spatial audit: %d records with coordinates, %d species tested\n",
		report.RecordsWithCoords, report.SpeciesTested)

	caught := 0
	for _, o := range report.Flagged {
		if col.Truth.Misplaced[o.RecordID] {
			caught++
		}
	}
	fmt.Printf("flagged %d anomalies; %d of %d planted misidentifications caught\n\n",
		len(report.Flagged), caught, len(col.Truth.Misplaced))

	fmt.Println("anomalies for expert review (misidentified species or new behaviour?):")
	for i, o := range report.Flagged {
		if i == 10 {
			fmt.Printf("  ... and %d more\n", len(report.Flagged)-10)
			break
		}
		tag := "unexplained"
		if col.Truth.Misplaced[o.RecordID] {
			tag = "planted misidentification"
		}
		fmt.Printf("  %-12s %-36s %6.0f km out (score %.1f) [%s]\n",
			o.RecordID, o.Species, o.DistanceKm, o.Score, tag)
	}
	fmt.Printf("\nall %d flags were logged to the curation history for traceability\n", len(report.Flagged))
}
