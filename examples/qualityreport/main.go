// Qualityreport shows the user-extensible quality metamodel: scientists
// define their own goals, dimensions and measurement methods, assess several
// datasets, and rank them by utility — including a timeliness dimension that
// demonstrates how quality decays when curation lapses.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/quality"
)

// dataset is a toy description of one curated collection.
type dataset struct {
	name        string
	namesOK     int
	namesTotal  int
	fieldsFull  int
	fieldsTotal int
	lastCurated time.Time
	reputation  string
}

func main() {
	log.SetFlags(0)
	now := time.Date(2014, 6, 1, 0, 0, 0, 0, time.UTC)

	datasets := []dataset{
		{"FNJV sound collection", 1795, 1929, 24, 28, now.AddDate(0, -6, 0), "1"},
		{"Herbarium vouchers", 880, 1000, 12, 20, now.AddDate(-6, 0, 0), "0.8"},
		{"Camera-trap archive", 450, 460, 19, 20, now.AddDate(0, -1, 0), "0.9"},
	}

	// The end user defines the measurement methods once.
	m := quality.NewManager()
	must := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}
	must(m.Register(quality.RatioMetric("species-name-accuracy", quality.DimAccuracy,
		"names accepted by the taxonomic authority",
		func(ctx *quality.Context) (int, int, error) {
			d := ctx.Values["dataset"].(dataset)
			return d.namesOK, d.namesTotal, nil
		})))
	must(m.Register(quality.RatioMetric("field-completeness", quality.DimCompleteness,
		"metadata fields with non-blank values",
		func(ctx *quality.Context) (int, int, error) {
			d := ctx.Values["dataset"].(dataset)
			return d.fieldsFull, d.fieldsTotal, nil
		})))
	must(m.Register(quality.TimelinessMetric("curation-freshness", "last_curated", 5*365*24*time.Hour)))
	must(m.Register(quality.AnnotationMetric("source-reputation", quality.DimReputation)))

	// A goal weighting the dimensions this community cares about.
	goal := quality.Goal{
		Name:        "reuse-readiness",
		Description: "is this dataset ready for long-term reuse?",
		Weights: map[string]float64{
			quality.DimAccuracy:     3,
			quality.DimCompleteness: 2,
			quality.DimTimeliness:   2,
			quality.DimReputation:   1,
		},
		AcceptThreshold: 0.7,
	}

	var ctxs []*quality.Context
	for _, d := range datasets {
		ctxs = append(ctxs, &quality.Context{
			Subject: d.name,
			Values: map[string]any{
				"dataset":      d,
				"last_curated": d.lastCurated,
			},
			Annotations: map[string]string{"reputation": d.reputation},
			Now:         now,
		})
	}
	ranked, err := m.Rank(goal, ctxs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(quality.Summary(ranked))
	fmt.Println()
	for _, r := range ranked {
		fmt.Println(quality.Report(r.Assessment))
		fmt.Println("------------------------------------------------------------")
	}
	fmt.Println("\nNote how the herbarium collection, uncurated for 6 years, is rejected on")
	fmt.Println("timeliness despite decent accuracy — the paper's \"quality decreases with")
	fmt.Println("time\" argument made operational.")
}
