// Speciescuration reproduces the full Fig. 2 case study at paper scale:
// a dirty legacy collection goes through stage-1 curation (clean, geocode,
// gap-fill), outdated-name detection against an unreliable HTTP Catalogue of
// Life, biologist review, and ends with the curated-name view — while the
// original records stay byte-for-byte unchanged.
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/curation"
	"repro/internal/envsource"
	"repro/internal/fnjv"
	"repro/internal/geo"
	"repro/internal/storage"
	"repro/internal/taxonomy"
)

func main() {
	log.SetFlags(0)
	dir, err := os.MkdirTemp("", "speciescuration-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	sys, err := core.Open(dir, core.Options{Sync: storage.SyncNever})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	// The paper's world: 11 898 records, 1 929 distinct names, 7% outdated.
	taxa, err := taxonomy.Generate(taxonomy.GeneratorSpec{
		Species: 1929, OutdatedFraction: 134.0 / 1929.0, ProvisionalFraction: 0.05, Seed: 2014,
	})
	if err != nil {
		log.Fatal(err)
	}
	gaz := geo.SyntheticGazetteer(40, 2014)
	env := envsource.NewSimulator()
	col, err := fnjv.Generate(fnjv.CollectionSpec{Records: 11898, Seed: 2014}, taxa, gaz, env)
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.Records.PutAll(col.Records); err != nil {
		log.Fatal(err)
	}
	stats, _ := sys.Records.Stats()
	fmt.Printf("legacy collection loaded: %d records, %d distinct raw names, %.1f%% with coordinates\n\n",
		stats.Records, stats.DistinctSpecies, 100*float64(stats.WithCoordinates)/float64(stats.Records))

	// --- Stage 1 ---
	cl := &curation.Cleaner{Checklist: taxa.Checklist, Ledger: sys.Ledger}
	cr, err := cl.Clean(sys.Records)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stage 1 / clean:   %d repaired, %d flagged for curators\n", cr.Repaired, cr.FlaggedOnly)

	gc := &curation.Geocoder{Gazetteer: gaz, Ledger: sys.Ledger}
	gr, err := gc.Geocode(sys.Records)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stage 1 / geocode: %d geocoded, %d ambiguous\n", gr.Geocoded, gr.Ambiguous)

	gf := &curation.GapFiller{Source: env, Ledger: sys.Ledger}
	fr, err := gf.Fill(sys.Records)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stage 1 / gapfill: %d environmental fields completed\n\n", fr.Filled)

	// --- Detection against a flaky HTTP authority (availability 0.9) ---
	server := httptest.NewServer(taxonomy.NewService(taxa.Checklist,
		taxonomy.WithAvailability(0.9, 7)))
	defer server.Close()
	client := taxonomy.NewClient(server.URL)
	client.Retries = 6
	client.Backoff = 0

	outcome, err := sys.RunDetection(context.Background(), client, core.RunOptions{
		MeasuredAvailability: -1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("detection (run %s):\n", outcome.RunID)
	fmt.Printf("  distinct species names analyzed: %d\n", outcome.DistinctNames)
	fmt.Printf("  records processed:               %d\n", outcome.RecordsProcessed)
	fmt.Printf("  outdated species names:          %d (%.0f%%)\n", outcome.Outdated, 100*outcome.OutdatedFraction())
	fmt.Printf("  authority observed availability: %.3f\n\n", client.ObservedAvailability())

	// --- Biologist review ---
	rr, err := curation.Review(sys.Ledger, curation.DefaultCurator, "biologist", time.Now())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("review: %d approved, %d rejected, %d deferred\n\n", rr.Approved, rr.Rejected, rr.Deferred)

	// --- Originals unchanged; curated view resolves the new names ---
	shown := 0
	err = sys.Records.Scan(func(r *fnjv.Record) bool {
		curated, err := curation.CuratedName(sys.Ledger, r.ID, r.Species)
		if err != nil {
			log.Fatal(err)
		}
		if curated != r.Species && shown < 5 {
			hist, _ := sys.Ledger.History(r.ID)
			fmt.Printf("%s\n  stored (historical): %s\n  curated (current):   %s\n  history entries:     %d\n",
				r.ID, r.Species, curated, len(hist))
			shown++
		}
		return shown < 5
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntotal curation history entries: %d\n", sys.Ledger.HistoryCount())
}
