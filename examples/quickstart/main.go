// Quickstart: the smallest end-to-end use of the library — build a tiny
// collection, run the provenance-based quality assessment, and print the
// quality report plus the provenance lineage of the result.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/curation"
	"repro/internal/envsource"
	"repro/internal/fnjv"
	"repro/internal/geo"
	"repro/internal/quality"
	"repro/internal/storage"
	"repro/internal/taxonomy"
)

func main() {
	log.SetFlags(0)
	dir, err := os.MkdirTemp("", "quickstart-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// 1. Open the preservation system (all repositories share one embedded DB).
	sys, err := core.Open(dir, core.Options{Sync: storage.SyncOnClose})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	// 2. Build a small synthetic world: a Catalogue-of-Life checklist where
	//    7% of historical names are outdated, a gazetteer and a climate source.
	taxa, err := taxonomy.Generate(taxonomy.GeneratorSpec{
		Species: 250, OutdatedFraction: 0.07, ProvisionalFraction: 0.05, Seed: 42,
	})
	if err != nil {
		log.Fatal(err)
	}
	col, err := fnjv.Generate(fnjv.CollectionSpec{Records: 1200, Seed: 42},
		taxa, geo.SyntheticGazetteer(20, 42), envsource.NewSimulator())
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.Records.PutAll(col.Records); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d records covering %d species\n", len(col.Records), col.DistinctSpecies)

	// 3. Stage-1 cleaning: normalize and typo-repair the legacy species
	//    names so detection sees canonical spellings.
	cleaner := &curation.Cleaner{Checklist: taxa.Checklist, Ledger: sys.Ledger}
	cr, err := cleaner.Clean(sys.Records)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cleaned: %d names repaired, %d flagged\n\n", cr.Repaired, cr.FlaggedOnly)

	// 4. Run the paper's loop: annotate the workflow, execute it against the
	//    authority, capture provenance, assess quality.
	outcome, err := sys.RunDetection(context.Background(), taxa.Checklist, core.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("run %s: %d distinct names, %d outdated (%.0f%%), %d record updates pending review\n\n",
		outcome.RunID, outcome.DistinctNames, outcome.Outdated,
		100*outcome.OutdatedFraction(), outcome.UpdatesCreated)

	// 5. The §IV.C quality report.
	fmt.Println(quality.Report(outcome.Assessment))

	// 6. Provenance: where did the summary come from?
	g, err := sys.Provenance.Graph(outcome.RunID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("provenance graph: %d nodes, %d edges\n", g.NodeCount(), g.EdgeCount())
	pid := "p:" + outcome.RunID + "/Catalog_of_life"
	if n, ok := g.Node(pid); ok {
		fmt.Printf("authority step annotations: reputation=%s availability=%s iterations=%s\n",
			n.Annotations["quality.reputation"], n.Annotations["quality.availability"], n.Annotations["iterations"])
	}
}
