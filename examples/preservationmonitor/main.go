// Preservationmonitor demonstrates the paper's conclusion operationally:
// "quality assessment must be a continuous task, as long as users deem the
// data to be useful". A monitor re-assesses the collection while taxonomic
// knowledge evolves; degradation raises alerts; a curation pass heals the
// curated view; and the whole story is written out as a Markdown curation
// report for the experts.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/curation"
	"repro/internal/envsource"
	"repro/internal/fnjv"
	"repro/internal/geo"
	"repro/internal/report"
	"repro/internal/storage"
	"repro/internal/taxonomy"
)

func main() {
	log.SetFlags(0)
	dir, err := os.MkdirTemp("", "preservationmonitor-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	sys, err := core.Open(dir, core.Options{Sync: storage.SyncNever})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	taxa, err := taxonomy.Generate(taxonomy.GeneratorSpec{
		Species: 300, OutdatedFraction: 0.07, ProvisionalFraction: 0.05, Seed: 99,
	})
	if err != nil {
		log.Fatal(err)
	}
	col, err := fnjv.Generate(fnjv.CollectionSpec{Records: 1500, Seed: 99, SyntaxErrorRate: 1e-12},
		taxa, geo.SyntheticGazetteer(15, 99), envsource.NewSimulator())
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.Records.PutAll(col.Records); err != nil {
		log.Fatal(err)
	}

	mon, err := core.NewMonitor(sys, taxa.Checklist, core.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("epoch  accuracy  outdated  alerts")
	var lastOutcome *core.DetectionOutcome
	for epoch := 0; epoch < 5; epoch++ {
		if epoch > 0 {
			// Taxonomy evolves: 8 revisions per epoch.
			revised := 0
			for _, name := range taxa.HistoricalNames {
				if revised == 8 {
					break
				}
				res, err := taxa.Checklist.Resolve(context.Background(), name)
				if err != nil || res.Status != taxonomy.StatusAccepted {
					continue
				}
				repl := &taxonomy.Taxon{
					ID:     fmt.Sprintf("REV-%d-%d", epoch, revised),
					Name:   taxonomy.Name{Genus: "Revisus", Epithet: fmt.Sprintf("e%dn%d", epoch, revised)},
					Status: taxonomy.StatusAccepted,
				}
				if err := taxa.Checklist.Deprecate(name, repl,
					time.Date(2014+epoch, 1, 1, 0, 0, 0, 0, time.UTC),
					fmt.Sprintf("Revision %d", epoch)); err != nil {
					log.Fatal(err)
				}
				revised++
			}
		}
		sample, alerts, err := mon.ReassessOnce(context.Background())
		if err != nil {
			log.Fatal(err)
		}
		alertText := "-"
		for _, a := range alerts {
			alertText = string(a.Kind) + ": " + a.Detail
		}
		fmt.Printf("%-6d %-9.4f %-9d %s\n", epoch, sample.Accuracy, sample.Outdated, alertText)
	}

	// Curators catch up on the backlog.
	rr, err := curation.Review(sys.Ledger, curation.DefaultCurator, "biologist", time.Now())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncuration pass: %d approved, %d deferred\n", rr.Approved, rr.Deferred)

	// Final detection for the report.
	lastOutcome, err = sys.RunDetection(context.Background(), taxa.Checklist, core.RunOptions{SkipLedger: true})
	if err != nil {
		log.Fatal(err)
	}
	now := time.Now()
	health, facts, err := sys.AssessCollection(taxa.Checklist, now, now)
	if err != nil {
		log.Fatal(err)
	}
	md := report.New("FNJV preservation monitoring report", now).
		AddFacts(facts).
		AddTrend(mon.History()).
		AddDetection(lastOutcome).
		AddAssessment("Species-name quality", lastOutcome.Assessment).
		AddAssessment("Collection health", health).
		Markdown()
	out := "preservation-report.md"
	if err := os.WriteFile(out, []byte(md), 0o644); err != nil {
		log.Fatal(err)
	}
	first, last, delta, n := mon.Trend()
	fmt.Printf("trend: %.4f -> %.4f (Δ %+.4f over %d samples)\n", first, last, delta, n)
	fmt.Printf("markdown report written to %s (%d bytes)\n", out, len(md))
}
