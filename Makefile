GO ?= go

.PHONY: build test race bench verify experiments

build:
	$(GO) build ./...

test:
	$(GO) test ./...

## race: race-detector pass over the concurrent subsystems (the parallel
## workflow engine and the singleflight caching resolver), plus the core
## detection stack that drives them end to end.
race:
	$(GO) test -race ./internal/workflow/... ./internal/taxonomy/... ./internal/core/...

## verify: the gate for engine/concurrency changes — vet everything, then
## run the race-detector suite over the parallel iteration and resolver code.
verify:
	$(GO) vet ./...
	$(GO) test -race ./internal/workflow/... ./internal/taxonomy/...

bench:
	$(GO) test -bench=. -benchmem .

experiments:
	$(GO) run ./cmd/experiments
