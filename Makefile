GO ?= go

.PHONY: build test race bench ci verify experiments

build:
	$(GO) build ./...

test:
	$(GO) test ./...

## race: race-detector pass over the concurrent subsystems (the parallel
## workflow engine, the singleflight caching resolver, and the streaming
## provenance pipeline), plus the core detection stack that drives them
## end to end.
race:
	$(GO) test -race ./internal/workflow/... ./internal/taxonomy/... ./internal/provenance/... ./internal/core/...

## ci: the full hygiene gate — formatting, vet, and the race-enabled tests.
ci:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	$(GO) vet ./...
	$(MAKE) race

## verify: the gate for engine/concurrency/persistence changes — the ci
## hygiene pass (gofmt, vet, race suite) plus the full test suite.
verify: ci
	$(GO) test ./...

bench:
	$(GO) test -bench=. -benchmem .

experiments:
	$(GO) run ./cmd/experiments
