GO ?= go

.PHONY: build test race bench ci verify experiments

build:
	$(GO) build ./...

test:
	$(GO) test ./...

## race: race-detector pass over the concurrent subsystems (the parallel
## workflow engine, the singleflight caching resolver + resilience guards,
## the streaming provenance pipeline, the storage layer under it, and the
## archival store/scrubber), plus the core detection stack — including
## crash/resume — that drives them end to end.
race:
	$(GO) test -race ./internal/workflow/... ./internal/taxonomy/... ./internal/resilience/... ./internal/provenance/... ./internal/storage/... ./internal/archive/... ./internal/core/...

## ci: the full hygiene gate — formatting, vet, the race-enabled tests, a
## short fuzz smoke over the archival WAV decoder (arbitrary bytes must
## never panic the archive read path), the chaos smoke (randomized
## kill/resume trials plus degraded-authority assessment runs; the harness
## exits non-zero if a killed run fails to resume byte-identically or any
## run hard-fails under 50% authority availability), the /api/v1 contract
## smoke, and the tracing-overhead guard (traced detection within 5% of
## untraced).
ci:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	$(GO) vet ./...
	$(MAKE) race
	$(GO) test ./internal/audio/ -run='^$$' -fuzz=FuzzReadWAV -fuzztime=10s
	$(GO) run ./cmd/experiments -run chaos -short
	$(GO) test ./internal/web/ -run 'TestAPI'
	$(GO) test -run TestTracingOverhead .

## verify: the gate for engine/concurrency/persistence changes — the ci
## hygiene pass (gofmt, vet, race suite) plus the full test suite.
verify: ci
	$(GO) test ./...

bench:
	$(GO) test -bench=. -benchmem .

experiments:
	$(GO) run ./cmd/experiments
