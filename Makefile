GO ?= go

.PHONY: build test race bench ci verify experiments

build:
	$(GO) build ./...

test:
	$(GO) test ./...

## race: race-detector pass over the concurrent subsystems (the parallel
## workflow engine, the singleflight caching resolver + resilience guards,
## the streaming provenance pipeline, the storage layer under it, the
## shard router with its scatter-gather fan-out, the cluster layer — lease
## store, fenced queues, HTTP gateway + remote worker — and the archival
## store/scrubber), plus the core detection stack — including crash/resume,
## orchestrator failover, and the sharded/unsharded equivalence suite —
## that drives them end to end.
race:
	$(GO) test -race ./internal/workflow/... ./internal/taxonomy/... ./internal/resilience/... ./internal/provenance/... ./internal/storage/... ./internal/shard/... ./internal/cluster/... ./internal/archive/... ./internal/core/...

## ci: the full hygiene gate — formatting, vet, the race-enabled tests, a
## short fuzz smoke over the archival WAV decoder (arbitrary bytes must
## never panic the archive read path), the chaos smoke (randomized
## kill/resume trials, degraded-authority assessment runs, shard-loss
## traffic, orchestrator-failover trials — a standby steals the expired
## lease and must finish byte-identically while the resurrected stale
## orchestrator gets every fenced write rejected — and the scheduler-pool
## trial: three peer orchestrators drain an admission queue while two are
## killed mid-run, and every queued run must still complete byte-identically
## exactly once), the /api/v1 contract smoke (including the /api/v1/cluster
## resources and the per-tenant quota contract), the tracing-overhead
## guard (traced detection within 5% of untraced), the zero-allocation
## guards over the provenance/telemetry/storage hot paths, a 1-iteration
## bench-harness smoke proving every tracked benchmark still runs (numbers
## land in the gitignored BENCH_smoke.json, not the committed trajectory),
## the bench-trajectory comparator (fails on a >10% ns/op or allocs/op
## regression between the two committed BENCH files), and the multi-tenant
## load smoke (sustained detect+query traffic at 1 and 4 shards; the >=2x
## throughput gate runs only in the full non-short experiment).
ci:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	$(GO) vet ./...
	$(MAKE) race
	$(GO) test ./internal/audio/ -run='^$$' -fuzz=FuzzReadWAV -fuzztime=10s
	$(GO) run ./cmd/experiments -run chaos -short
	$(GO) test ./internal/web/ -run 'TestAPI|TestCluster|TestWorkersAlias|TestAsyncDetect|TestDetectStaysSync'
	$(GO) test -run TestTracingOverhead .
	$(GO) test -run 'Allocs' ./internal/storage/ ./internal/telemetry/ ./internal/provenance/
	$(GO) run ./cmd/bench -smoke
	$(GO) run ./cmd/bench -compare BENCH_9.json BENCH_10.json
	$(GO) run ./cmd/experiments -run load -short

## verify: the gate for engine/concurrency/persistence changes — the ci
## hygiene pass (gofmt, vet, race suite) plus the full test suite.
verify: ci
	$(GO) test ./...

## bench: the paper-reproduction benchmarks at the repo root, then the
## hot-path suites via the bench harness, recording the perf trajectory to
## BENCH_10.json (schema bench.v1, documented in EXPERIMENTS.md; min across
## -count repetitions to resist shared-host noise).
bench:
	$(GO) test -bench=. -benchmem .
	$(GO) run ./cmd/bench -out BENCH_10.json

experiments:
	$(GO) run ./cmd/experiments
