GO ?= go

.PHONY: build test race bench ci verify experiments

build:
	$(GO) build ./...

test:
	$(GO) test ./...

## race: race-detector pass over the concurrent subsystems (the parallel
## workflow engine, the singleflight caching resolver, the streaming
## provenance pipeline, the storage layer under it, and the archival
## store/scrubber), plus the core detection stack that drives them end to
## end.
race:
	$(GO) test -race ./internal/workflow/... ./internal/taxonomy/... ./internal/provenance/... ./internal/storage/... ./internal/archive/... ./internal/core/...

## ci: the full hygiene gate — formatting, vet, the race-enabled tests, and
## a short fuzz smoke over the archival WAV decoder (arbitrary bytes must
## never panic the archive read path).
ci:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	$(GO) vet ./...
	$(MAKE) race
	$(GO) test ./internal/audio/ -run='^$$' -fuzz=FuzzReadWAV -fuzztime=10s

## verify: the gate for engine/concurrency/persistence changes — the ci
## hygiene pass (gofmt, vet, race suite) plus the full test suite.
verify: ci
	$(GO) test ./...

bench:
	$(GO) test -bench=. -benchmem .

experiments:
	$(GO) run ./cmd/experiments
