package linkeddata

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadNTriples asserts the parser never panics and that everything it
// accepts round-trips through the writer.
func FuzzReadNTriples(f *testing.F) {
	f.Add("<https://a> <https://b> <https://c> .\n")
	f.Add(`<https://a> <https://b> "literal with \"quotes\"" .` + "\n")
	f.Add("# comment\n\n")
	f.Add("<broken")
	f.Add("<https://a> <https://b> banana .")
	f.Fuzz(func(t *testing.T, doc string) {
		s, err := ReadNTriples(strings.NewReader(doc))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := s.WriteNTriples(&buf); err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
		s2, err := ReadNTriples(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v\ndoc: %q\nserialized: %q", err, doc, buf.String())
		}
		if s2.Len() != s.Len() {
			t.Fatalf("round trip count %d != %d", s2.Len(), s.Len())
		}
	})
}
