package linkeddata

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/fnjv"
	"repro/internal/opm"
	"repro/internal/taxonomy"
)

func TestStoreAddMatch(t *testing.T) {
	s := NewStore()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(s.Add(Triple{Subject: "s1", Predicate: "p1", Object: Literal("x")}))
	must(s.Add(Triple{Subject: "s1", Predicate: "p2", Object: IRI("s2")}))
	must(s.Add(Triple{Subject: "s2", Predicate: "p1", Object: Literal("x")}))
	// Duplicate ignored.
	must(s.Add(Triple{Subject: "s1", Predicate: "p1", Object: Literal("x")}))
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	if got := s.Match("s1", "", Term{}); len(got) != 2 {
		t.Fatalf("subject match = %d", len(got))
	}
	if got := s.Match("", "p1", Term{}); len(got) != 2 {
		t.Fatalf("predicate match = %d", len(got))
	}
	if got := s.Match("", "", Literal("x")); len(got) != 2 {
		t.Fatalf("object match = %d", len(got))
	}
	if got := s.Match("s1", "p1", Literal("x")); len(got) != 1 {
		t.Fatalf("exact match = %d", len(got))
	}
	if got := s.Match("", "", Term{}); len(got) != 3 {
		t.Fatalf("full scan = %d", len(got))
	}
	if got := s.Match("zz", "", Term{}); len(got) != 0 {
		t.Fatalf("miss = %d", len(got))
	}
	// Literal and IRI objects with the same text are distinct.
	must(s.Add(Triple{Subject: "s3", Predicate: "p3", Object: IRI("x")}))
	if got := s.Match("", "", Literal("x")); len(got) != 2 {
		t.Fatalf("literal/IRI confusion: %d", len(got))
	}
	// Incomplete triples rejected.
	if err := s.Add(Triple{Predicate: "p", Object: Literal("x")}); err == nil {
		t.Fatal("empty subject accepted")
	}
	if err := s.Add(Triple{Subject: "s", Object: Literal("x")}); err == nil {
		t.Fatal("empty predicate accepted")
	}
	if err := s.Add(Triple{Subject: "s", Predicate: "p"}); err == nil {
		t.Fatal("zero object accepted")
	}
}

func TestSubjects(t *testing.T) {
	s := NewStore()
	s.Add(Triple{Subject: "b", Predicate: "p", Object: Literal("v")})
	s.Add(Triple{Subject: "a", Predicate: "p", Object: Literal("v")})
	s.Add(Triple{Subject: "c", Predicate: "p", Object: Literal("other")})
	got := s.Subjects("p", Literal("v"))
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("Subjects = %v", got)
	}
}

func TestNTriplesRoundTrip(t *testing.T) {
	s := NewStore()
	s.Add(Triple{Subject: "https://x/s", Predicate: "https://x/p", Object: Literal("line1\nline2 \"quoted\" \\slash")})
	s.Add(Triple{Subject: "https://x/s", Predicate: "https://x/q", Object: IRI("https://x/o")})
	var buf bytes.Buffer
	if err := s.WriteNTriples(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadNTriples(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Fatalf("round trip Len = %d", got.Len())
	}
	m := got.Match("https://x/s", "https://x/p", Term{})
	if len(m) != 1 || m[0].Object.Value() != "line1\nline2 \"quoted\" \\slash" {
		t.Fatalf("literal round trip = %+v", m)
	}
	// Comments and blank lines tolerated.
	got2, err := ReadNTriples(strings.NewReader("# comment\n\n<https://a> <https://b> <https://c> .\n"))
	if err != nil || got2.Len() != 1 {
		t.Fatalf("comment parse: %v %d", err, got2.Len())
	}
	// Garbage rejected.
	for _, bad := range []string{
		"no brackets at all .",
		"<https://a> <https://b> banana .",
		"<https://a> <https://b> <https://c>",
		"<https://a <https://b> <https://c> .",
	} {
		if _, err := ReadNTriples(strings.NewReader(bad + "\n")); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}

func demoChecklist(t *testing.T) *taxonomy.Checklist {
	t.Helper()
	cl := taxonomy.NewChecklist()
	for i, n := range []string{"Elachistocleis ovalis", "Scinax fuscomarginatus", "Hyla faber"} {
		name, err := taxonomy.ParseName(n)
		if err != nil {
			t.Fatal(err)
		}
		if err := cl.Add(&taxonomy.Taxon{
			ID: string(rune('A' + i)), Name: name, Status: taxonomy.StatusAccepted,
		}); err != nil {
			t.Fatal(err)
		}
	}
	return cl
}

func TestExtractShadow(t *testing.T) {
	cl := demoChecklist(t)
	doc := Document{
		ID: "doc1", Title: "Reproductive biology", Community: "ecology",
		Text: "We observed SCINAX FUSCOMARGINATUS near ponds, together with Hyla faber males.",
	}
	sh := ExtractShadow(doc, cl)
	if len(sh.Entities) != 2 {
		t.Fatalf("entities = %v", sh.Entities)
	}
	if _, ok := sh.Entities["Scinax fuscomarginatus"]; !ok {
		t.Fatal("case-insensitive match failed")
	}
	if _, ok := sh.Entities["Elachistocleis ovalis"]; ok {
		t.Fatal("phantom entity")
	}
}

func TestCrossReferences(t *testing.T) {
	cl := demoChecklist(t)
	docs := map[string]Document{
		"eco1": {ID: "eco1", Community: "ecology", Text: "Hyla faber breeding ponds"},
		"tax1": {ID: "tax1", Community: "taxonomy", Text: "revision of Hyla faber group"},
		"eco2": {ID: "eco2", Community: "ecology", Text: "Hyla faber diet"},
		"bio1": {ID: "bio1", Community: "bioacoustics", Text: "calls of Scinax fuscomarginatus"},
	}
	var shadows []Shadow
	for _, d := range docs {
		shadows = append(shadows, ExtractShadow(d, cl))
	}
	refs := CrossReferences(shadows, docs)
	// Hyla faber: eco1-tax1 and eco2-tax1 (eco1-eco2 same community, skipped).
	if len(refs) != 2 {
		t.Fatalf("refs = %+v", refs)
	}
	for _, r := range refs {
		if r.Entity != "Hyla faber" {
			t.Fatalf("entity = %q", r.Entity)
		}
		if r.CommunityA == r.CommunityB {
			t.Fatalf("same-community ref: %+v", r)
		}
	}
	// Deterministic ordering.
	if refs[0].DocA > refs[1].DocA {
		t.Fatal("refs unordered")
	}
}

func TestExportRecordAndQuery(t *testing.T) {
	s := NewStore()
	lat, lon := -22.9, -47.06
	rec := &fnjv.Record{
		ID: "FNJV-00001", Species: "Elachistocleis ovalis", Class: "Amphibia",
		City: "Campinas", State: "São Paulo",
		CollectDate: time.Date(1978, 11, 3, 0, 0, 0, 0, time.UTC),
		Latitude:    &lat, Longitude: &lon, Recordist: "J. Vielliard",
	}
	if err := ExportRecord(s, rec, "Elachistocleis cesarii"); err != nil {
		t.Fatal(err)
	}
	iri := RecordIRI("FNJV-00001")
	if got := s.Match(iri, DwcScientific, Term{}); len(got) != 1 || got[0].Object.Value() != "Elachistocleis ovalis" {
		t.Fatalf("scientificName = %+v", got)
	}
	if got := s.Match(iri, DwcAccepted, Term{}); len(got) != 1 || got[0].Object.Value() != "Elachistocleis cesarii" {
		t.Fatalf("acceptedName = %+v", got)
	}
	if got := s.Match(iri, DwcLat, Term{}); len(got) != 1 || got[0].Object.Value() != "-22.90000" {
		t.Fatalf("lat = %+v", got)
	}
	// Both historical and curated names find the record.
	if got := RecordsMentioning(s, "Elachistocleis ovalis"); len(got) != 1 {
		t.Fatalf("mentioning old = %v", got)
	}
	if got := RecordsMentioning(s, "Elachistocleis cesarii"); len(got) != 1 {
		t.Fatalf("mentioning new = %v", got)
	}
	if got := RecordsMentioning(s, "Nobody nobody"); len(got) != 0 {
		t.Fatalf("mentioning phantom = %v", got)
	}
	desc := Describe(s, iri)
	if !strings.Contains(desc, "Elachistocleis ovalis") || !strings.Contains(desc, "Campinas") {
		t.Fatalf("describe:\n%s", desc)
	}
	// Curated name equal to stored name adds no accepted triple.
	s2 := NewStore()
	if err := ExportRecord(s2, rec, rec.Species); err != nil {
		t.Fatal(err)
	}
	if got := s2.Match(RecordIRI("FNJV-00001"), DwcAccepted, Term{}); len(got) != 0 {
		t.Fatalf("spurious accepted triple: %+v", got)
	}
}

func TestExportProvenance(t *testing.T) {
	g := opm.NewGraph()
	g.Artifact("a:in", "input metadata", "")
	g.Artifact("a:out", "summary", "")
	g.Process("p:detect", "detection")
	g.Agent("ag:user", "end user")
	g.AddEdge(opm.Edge{Kind: opm.Used, Effect: "p:detect", Cause: "a:in", Role: "in"})
	g.AddEdge(opm.Edge{Kind: opm.WasGeneratedBy, Effect: "a:out", Cause: "p:detect", Role: "out"})
	g.AddEdge(opm.Edge{Kind: opm.WasControlledBy, Effect: "p:detect", Cause: "ag:user", Role: "op"})
	g.InferDerivations()
	g.InferTriggers()

	s := NewStore()
	if err := ExportProvenance(s, g, "https://fnjv.example/prov/"); err != nil {
		t.Fatal(err)
	}
	if got := s.Match("https://fnjv.example/prov/a:out", ProvDerived, Term{}); len(got) != 1 {
		t.Fatalf("prov:wasDerivedFrom = %+v", got)
	}
	if got := s.Match("https://fnjv.example/prov/p:detect", ProvUsed, Term{}); len(got) != 1 {
		t.Fatalf("prov:used = %+v", got)
	}
	if got := s.Match("https://fnjv.example/prov/a:in", DCTitle, Term{}); len(got) != 1 ||
		got[0].Object.Value() != "input metadata" {
		t.Fatalf("title = %+v", got)
	}
}

func TestExportDocumentAndBridge(t *testing.T) {
	cl := demoChecklist(t)
	s := NewStore()
	rec := &fnjv.Record{ID: "FNJV-00002", Species: "Hyla faber"}
	if err := ExportRecord(s, rec, ""); err != nil {
		t.Fatal(err)
	}
	doc := Document{ID: "paper42", Title: "Calls of Hyla faber", Community: "bioacoustics",
		Text: "analysis of Hyla faber advertisement calls"}
	sh := ExtractShadow(doc, cl)
	if err := ExportDocument(s, doc, sh, "https://fnjv.example/doc/"); err != nil {
		t.Fatal(err)
	}
	// The entity bridges literature and the collection.
	subjects := s.Subjects(DwcScientific, Literal("Hyla faber"))
	if len(subjects) != 2 {
		t.Fatalf("bridge subjects = %v", subjects)
	}
	recs := RecordsMentioning(s, "Hyla faber")
	if len(recs) != 1 || recs[0] != RecordIRI("FNJV-00002") {
		t.Fatalf("records mentioning = %v", recs)
	}
}

func TestTermRendering(t *testing.T) {
	if IRI("https://x").NTriples() != "<https://x>" {
		t.Fatal("IRI rendering")
	}
	if Literal(`a"b`).NTriples() != `"a\"b"` {
		t.Fatalf("literal escaping: %s", Literal(`a"b`).NTriples())
	}
	if !(Term{}).Zero() || IRI("x").Zero() || Literal("").Zero() {
		t.Fatal("Zero detection")
	}
	tr := Triple{Subject: "s", Predicate: "p", Object: Literal("o")}
	if tr.NTriples() != `<s> <p> "o" .` {
		t.Fatalf("triple rendering: %s", tr.NTriples())
	}
}
