package linkeddata

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/fnjv"
	"repro/internal/opm"
	"repro/internal/taxonomy"
)

// Shadows (Mota & Medeiros, DESWEB 2013): a flexible document representation
// where each document casts a "shadow" — the set of entities it mentions.
// Cross-referencing shadows connects papers across distinct research
// communities, even when they appear to work on seemingly unrelated issues.

// Document is one scientific artifact (paper, report, dataset description).
type Document struct {
	ID        string
	Title     string
	Community string // e.g. "bioacoustics", "taxonomy", "ecology"
	// Text is the raw content the shadow is extracted from.
	Text string
}

// Shadow is the extracted entity set of a document.
type Shadow struct {
	DocumentID string
	// Entities maps canonical entity strings (e.g. species names) to the
	// surface forms found.
	Entities map[string][]string
}

// ExtractShadow finds checklist species names mentioned in the document
// text, matching case-insensitively against the authority's canonical names.
func ExtractShadow(doc Document, checklist *taxonomy.Checklist) Shadow {
	sh := Shadow{DocumentID: doc.ID, Entities: map[string][]string{}}
	lower := strings.ToLower(doc.Text)
	for _, name := range checklist.Names() {
		needle := strings.ToLower(name)
		if idx := strings.Index(lower, needle); idx >= 0 {
			surface := doc.Text[idx : idx+len(needle)]
			sh.Entities[name] = append(sh.Entities[name], surface)
		}
	}
	return sh
}

// CrossReference is one discovered connection: two documents from different
// communities sharing an entity.
type CrossReference struct {
	Entity     string
	DocA       string
	CommunityA string
	DocB       string
	CommunityB string
}

// CrossReferences finds all entity-mediated connections between documents of
// *different* communities — the paper's "cross-referencing scientific papers
// across distinct research communities". Results are sorted by entity, then
// document IDs.
func CrossReferences(shadows []Shadow, docs map[string]Document) []CrossReference {
	byEntity := map[string][]string{} // entity -> doc IDs
	for _, sh := range shadows {
		for entity := range sh.Entities {
			byEntity[entity] = append(byEntity[entity], sh.DocumentID)
		}
	}
	var out []CrossReference
	for entity, ids := range byEntity {
		sort.Strings(ids)
		for i := 0; i < len(ids); i++ {
			for j := i + 1; j < len(ids); j++ {
				a, b := docs[ids[i]], docs[ids[j]]
				if a.Community == b.Community {
					continue
				}
				out = append(out, CrossReference{
					Entity: entity,
					DocA:   a.ID, CommunityA: a.Community,
					DocB: b.ID, CommunityB: b.Community,
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Entity != out[j].Entity {
			return out[i].Entity < out[j].Entity
		}
		if out[i].DocA != out[j].DocA {
			return out[i].DocA < out[j].DocA
		}
		return out[i].DocB < out[j].DocB
	})
	return out
}

// --- Exporters: curated metadata and provenance as Linked Data ---

const recordBase = "https://fnjv.example/recording/"

// RecordIRI returns the IRI of a collection record.
func RecordIRI(id string) string { return recordBase + id }

// ExportRecord adds the Darwin-Core-style triples of one record. The curated
// name (post-review) is exported as the accepted name usage while the stored
// historical name stays the scientificName — preserving both views.
func ExportRecord(s *Store, r *fnjv.Record, curatedName string) error {
	iri := RecordIRI(r.ID)
	add := func(p string, o Term) error {
		return s.Add(Triple{Subject: iri, Predicate: p, Object: o})
	}
	if err := add(RDFType, IRI(TypeRecording)); err != nil {
		return err
	}
	if r.Species != "" {
		if err := add(DwcScientific, Literal(r.Species)); err != nil {
			return err
		}
	}
	if curatedName != "" && curatedName != r.Species {
		if err := add(DwcAccepted, Literal(curatedName)); err != nil {
			return err
		}
	}
	if r.Class != "" {
		if err := add(DwcClass, Literal(r.Class)); err != nil {
			return err
		}
	}
	if r.City != "" {
		if err := add(DwcLocality, Literal(r.City)); err != nil {
			return err
		}
	}
	if r.State != "" {
		if err := add(DwcState, Literal(r.State)); err != nil {
			return err
		}
	}
	if !r.CollectDate.IsZero() {
		if err := add(DwcEventDate, Literal(r.CollectDate.Format(time.DateOnly))); err != nil {
			return err
		}
	}
	if r.HasCoordinates() {
		if err := add(DwcLat, Literal(strconv.FormatFloat(*r.Latitude, 'f', 5, 64))); err != nil {
			return err
		}
		if err := add(DwcLon, Literal(strconv.FormatFloat(*r.Longitude, 'f', 5, 64))); err != nil {
			return err
		}
	}
	if r.Recordist != "" {
		if err := add(DCCreator, Literal(r.Recordist)); err != nil {
			return err
		}
	}
	return nil
}

// ExportProvenance adds PROV-O-style triples for an OPM graph, mapping the
// OPM causal edges to their PROV equivalents.
func ExportProvenance(s *Store, g *opm.Graph, base string) error {
	iri := func(id string) string { return base + id }
	for _, e := range g.Edges() {
		var pred string
		switch e.Kind {
		case opm.WasDerivedFrom:
			pred = ProvDerived
		case opm.WasGeneratedBy:
			pred = ProvGenerated
		case opm.Used:
			pred = ProvUsed
		case opm.WasControlledBy:
			pred = ProvAttributed
		default:
			continue // wasTriggeredBy has no direct PROV-O core equivalent
		}
		if err := s.Add(Triple{Subject: iri(e.Effect), Predicate: pred, Object: IRI(iri(e.Cause))}); err != nil {
			return err
		}
	}
	for _, n := range g.Nodes() {
		if n.Label == "" {
			continue
		}
		if err := s.Add(Triple{Subject: iri(n.ID), Predicate: DCTitle, Object: Literal(n.Label)}); err != nil {
			return err
		}
	}
	return nil
}

// ExportDocument adds a document plus its shadow entities.
func ExportDocument(s *Store, doc Document, sh Shadow, base string) error {
	iri := base + doc.ID
	if err := s.Add(Triple{Subject: iri, Predicate: RDFType, Object: IRI(TypeDocument)}); err != nil {
		return err
	}
	if err := s.Add(Triple{Subject: iri, Predicate: DCTitle, Object: Literal(doc.Title)}); err != nil {
		return err
	}
	if doc.Community != "" {
		if err := s.Add(Triple{Subject: iri, Predicate: DCSubject, Object: Literal(doc.Community)}); err != nil {
			return err
		}
	}
	entities := make([]string, 0, len(sh.Entities))
	for e := range sh.Entities {
		entities = append(entities, e)
	}
	sort.Strings(entities)
	for _, e := range entities {
		if err := s.Add(Triple{Subject: iri, Predicate: DwcScientific, Object: Literal(e)}); err != nil {
			return err
		}
	}
	return nil
}

// RecordsMentioning returns the recording IRIs whose scientificName (or
// accepted name) equals the entity — connecting literature shadows back to
// collection records.
func RecordsMentioning(s *Store, entity string) []string {
	set := map[string]bool{}
	for _, subj := range s.Subjects(DwcScientific, Literal(entity)) {
		if strings.HasPrefix(subj, recordBase) {
			set[subj] = true
		}
	}
	for _, subj := range s.Subjects(DwcAccepted, Literal(entity)) {
		if strings.HasPrefix(subj, recordBase) {
			set[subj] = true
		}
	}
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Describe renders all triples about a subject, for debugging and reports.
func Describe(s *Store, subject string) string {
	var b strings.Builder
	for _, t := range s.Match(subject, "", Term{}) {
		fmt.Fprintf(&b, "%s\n", t.NTriples())
	}
	return b.String()
}
