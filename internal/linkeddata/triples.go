// Package linkeddata implements the paper's Linked-Data direction
// (conclusions, ref. Mota & Medeiros "Shadows", DESWEB 2013): curated
// metadata and provenance are exported as RDF-style triples, documents are
// represented by flexible "shadows" (the entities they mention), and
// cross-referencing connects research artifacts across distinct communities
// that appear to work on unrelated issues — "breaking down disciplinary
// boundaries among repositories and enhancing reuse".
//
// The triple store is deliberately small: an in-memory store with SPO/POS/OSP
// indexes, pattern matching with wildcards, and N-Triples serialization.
package linkeddata

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Term is an RDF term: an IRI or a literal. The zero Term is invalid.
type Term struct {
	value   string
	literal bool
}

// IRI builds an IRI term.
func IRI(iri string) Term { return Term{value: iri} }

// Literal builds a literal term.
func Literal(v string) Term { return Term{value: v, literal: true} }

// IsLiteral reports whether the term is a literal.
func (t Term) IsLiteral() bool { return t.literal }

// Value returns the raw IRI or literal text.
func (t Term) Value() string { return t.value }

// Zero reports whether the term is unset.
func (t Term) Zero() bool { return t.value == "" && !t.literal }

// NTriples renders the term in N-Triples syntax.
func (t Term) NTriples() string {
	if t.literal {
		return `"` + escapeLiteral(t.value) + `"`
	}
	return "<" + t.value + ">"
}

func escapeLiteral(s string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`, "\r", `\r`, "\t", `\t`)
	return r.Replace(s)
}

// Triple is one statement.
type Triple struct {
	Subject   string // IRI
	Predicate string // IRI
	Object    Term
}

// NTriples renders the triple as one N-Triples line (without newline).
func (t Triple) NTriples() string {
	return fmt.Sprintf("<%s> <%s> %s .", t.Subject, t.Predicate, t.Object.NTriples())
}

// Common vocabulary IRIs used by the exporters (Darwin Core, PROV-O, Dublin
// Core, RDF).
const (
	RDFType        = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type"
	DCTitle        = "http://purl.org/dc/terms/title"
	DCSubject      = "http://purl.org/dc/terms/subject"
	DCCreator      = "http://purl.org/dc/terms/creator"
	DCDate         = "http://purl.org/dc/terms/date"
	DwcScientific  = "http://rs.tdwg.org/dwc/terms/scientificName"
	DwcAccepted    = "http://rs.tdwg.org/dwc/terms/acceptedNameUsage"
	DwcLocality    = "http://rs.tdwg.org/dwc/terms/locality"
	DwcState       = "http://rs.tdwg.org/dwc/terms/stateProvince"
	DwcClass       = "http://rs.tdwg.org/dwc/terms/class"
	DwcEventDate   = "http://rs.tdwg.org/dwc/terms/eventDate"
	DwcLat         = "http://rs.tdwg.org/dwc/terms/decimalLatitude"
	DwcLon         = "http://rs.tdwg.org/dwc/terms/decimalLongitude"
	ProvDerived    = "http://www.w3.org/ns/prov#wasDerivedFrom"
	ProvGenerated  = "http://www.w3.org/ns/prov#wasGeneratedBy"
	ProvUsed       = "http://www.w3.org/ns/prov#used"
	ProvAttributed = "http://www.w3.org/ns/prov#wasAttributedTo"
	TypeRecording  = "https://fnjv.example/ns#Recording"
	TypeDocument   = "https://fnjv.example/ns#Document"
)

// Store is an in-memory triple store with three access paths.
type Store struct {
	triples []Triple
	seen    map[string]bool
	bySubj  map[string][]int
	byPred  map[string][]int
	byObj   map[string][]int
}

// NewStore builds an empty store.
func NewStore() *Store {
	return &Store{
		seen:   make(map[string]bool),
		bySubj: make(map[string][]int),
		byPred: make(map[string][]int),
		byObj:  make(map[string][]int),
	}
}

// Add inserts one triple (duplicates are ignored). It rejects triples with
// empty subject/predicate or zero object.
func (s *Store) Add(t Triple) error {
	if t.Subject == "" || t.Predicate == "" || t.Object.Zero() {
		return fmt.Errorf("linkeddata: incomplete triple %+v", t)
	}
	key := t.NTriples()
	if s.seen[key] {
		return nil
	}
	s.seen[key] = true
	idx := len(s.triples)
	s.triples = append(s.triples, t)
	s.bySubj[t.Subject] = append(s.bySubj[t.Subject], idx)
	s.byPred[t.Predicate] = append(s.byPred[t.Predicate], idx)
	s.byObj[t.Object.NTriples()] = append(s.byObj[t.Object.NTriples()], idx)
	return nil
}

// Len reports the number of distinct triples.
func (s *Store) Len() int { return len(s.triples) }

// Match returns triples matching the pattern; empty subject/predicate and a
// zero object act as wildcards. Results preserve insertion order.
func (s *Store) Match(subject, predicate string, object Term) []Triple {
	// Choose the most selective index available.
	var candidates []int
	switch {
	case subject != "":
		candidates = s.bySubj[subject]
	case !object.Zero():
		candidates = s.byObj[object.NTriples()]
	case predicate != "":
		candidates = s.byPred[predicate]
	default:
		candidates = make([]int, len(s.triples))
		for i := range s.triples {
			candidates[i] = i
		}
	}
	var out []Triple
	for _, i := range candidates {
		t := s.triples[i]
		if subject != "" && t.Subject != subject {
			continue
		}
		if predicate != "" && t.Predicate != predicate {
			continue
		}
		if !object.Zero() && t.Object != object {
			continue
		}
		out = append(out, t)
	}
	return out
}

// Subjects returns the distinct subjects having predicate=object, sorted.
func (s *Store) Subjects(predicate string, object Term) []string {
	set := map[string]bool{}
	for _, t := range s.Match("", predicate, object) {
		set[t.Subject] = true
	}
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// WriteNTriples serializes the store in insertion order.
func (s *Store) WriteNTriples(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, t := range s.triples {
		if _, err := bw.WriteString(t.NTriples() + "\n"); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadNTriples parses a (subset of) N-Triples document produced by
// WriteNTriples into a new store.
func ReadNTriples(r io.Reader) (*Store, error) {
	s := NewStore()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		t, err := parseNTriple(line)
		if err != nil {
			return nil, fmt.Errorf("linkeddata: line %d: %w", lineNo, err)
		}
		if err := s.Add(t); err != nil {
			return nil, err
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return s, nil
}

func parseNTriple(line string) (Triple, error) {
	if !strings.HasSuffix(line, ".") {
		return Triple{}, fmt.Errorf("missing terminating dot in %q", line)
	}
	body := strings.TrimSpace(strings.TrimSuffix(line, "."))
	subj, rest, err := parseIRI(body)
	if err != nil {
		return Triple{}, err
	}
	pred, rest, err := parseIRI(rest)
	if err != nil {
		return Triple{}, err
	}
	rest = strings.TrimSpace(rest)
	var obj Term
	switch {
	case strings.HasPrefix(rest, "<"):
		v, tail, err := parseIRI(rest)
		if err != nil {
			return Triple{}, err
		}
		if strings.TrimSpace(tail) != "" {
			return Triple{}, fmt.Errorf("trailing content %q", tail)
		}
		obj = IRI(v)
	case strings.HasPrefix(rest, `"`) && strings.HasSuffix(rest, `"`) && len(rest) >= 2:
		obj = Literal(unescapeLiteral(rest[1 : len(rest)-1]))
	default:
		return Triple{}, fmt.Errorf("bad object %q", rest)
	}
	return Triple{Subject: subj, Predicate: pred, Object: obj}, nil
}

func parseIRI(s string) (string, string, error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "<") {
		return "", "", fmt.Errorf("expected IRI in %q", s)
	}
	end := strings.Index(s, ">")
	if end < 0 {
		return "", "", fmt.Errorf("unterminated IRI in %q", s)
	}
	return s[1:end], s[end+1:], nil
}

func unescapeLiteral(s string) string {
	r := strings.NewReplacer(`\n`, "\n", `\r`, "\r", `\t`, "\t", `\"`, `"`, `\\`, `\`)
	return r.Replace(s)
}
