package provenance

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/opm"
	"repro/internal/storage"
	"repro/internal/workflow"
)

// assertSameGraph fails unless the two graphs are structurally identical:
// same node set (kind, label, value, annotations) and the same edge sequence
// in the same order.
func assertSameGraph(t *testing.T, want, got *opm.Graph) {
	t.Helper()
	wantNodes := map[string]*opm.Node{}
	for _, n := range want.Nodes() {
		wantNodes[n.ID] = n
	}
	gotNodes := map[string]*opm.Node{}
	for _, n := range got.Nodes() {
		gotNodes[n.ID] = n
	}
	if len(wantNodes) != len(gotNodes) {
		t.Fatalf("node count: want %d, got %d", len(wantNodes), len(gotNodes))
	}
	for id, wn := range wantNodes {
		gn, ok := gotNodes[id]
		if !ok {
			t.Fatalf("node %q missing", id)
		}
		if gn.Kind != wn.Kind || gn.Label != wn.Label || gn.Value != wn.Value {
			t.Fatalf("node %q differs: want %+v, got %+v", id, wn, gn)
		}
		if len(gn.Annotations) != len(wn.Annotations) {
			t.Fatalf("node %q annotations: want %v, got %v", id, wn.Annotations, gn.Annotations)
		}
		for k, v := range wn.Annotations {
			if gn.Annotations[k] != v {
				t.Fatalf("node %q annotation %q: want %q, got %q", id, k, v, gn.Annotations[k])
			}
		}
	}
	we, ge := want.Edges(), got.Edges()
	if len(we) != len(ge) {
		t.Fatalf("edge count: want %d, got %d", len(we), len(ge))
	}
	for i := range we {
		if !we[i].Time.Equal(ge[i].Time) {
			t.Fatalf("edge %d time: want %v, got %v", i, we[i].Time, ge[i].Time)
		}
		a, b := we[i], ge[i]
		a.Time, b.Time = time.Time{}, time.Time{}
		if a != b {
			t.Fatalf("edge %d differs: want %+v, got %+v", i, we[i], ge[i])
		}
	}
}

func TestGraphSinkMaterializesIdenticalGraph(t *testing.T) {
	col := NewCollector("curator")
	gs := NewGraphSink()
	col.AddSink(gs)
	res, err := workflow.NewEngine(detectionRegistry()).Run(
		context.Background(), detectionDef(),
		map[string]workflow.Data{"metadata": workflow.List(
			workflow.Scalar("Elachistocleis ovalis"),
			workflow.Scalar("Hyla faber"),
		)}, col)
	if err != nil {
		t.Fatal(err)
	}
	if err := col.SinkErr(); err != nil {
		t.Fatal(err)
	}
	assertSameGraph(t, col.Graph(), gs.Graph())
	info := gs.Info()
	if info.RunID != res.RunID || info.Status != RunCompleted {
		t.Fatalf("sink info = %+v", info)
	}
}

func TestCollectorGraphIsSnapshot(t *testing.T) {
	col, _ := runCaptured(t, "Hyla faber")
	g1 := col.Graph()
	// Mutating the snapshot must not leak into the collector's live graph.
	if err := g1.AddNode(opm.Node{ID: "a:intruder", Kind: opm.KindArtifact}); err != nil {
		t.Fatal(err)
	}
	if err := g1.Annotate("ag:curator", "tampered", "yes"); err != nil {
		t.Fatal(err)
	}
	g2 := col.Graph()
	if _, ok := g2.Node("a:intruder"); ok {
		t.Fatal("snapshot mutation leaked into collector graph")
	}
	n, _ := g2.Node("ag:curator")
	if n.Annotations["tampered"] != "" {
		t.Fatal("annotation mutation leaked into collector graph")
	}
}

// TestStreamingMatchesLegacyStore is the tentpole equivalence check: one run
// captured once, persisted through both paths — the live BatchWriter delta
// stream and the legacy monolithic Store — must reconstruct identical graphs
// and run records, sequentially and under the parallel engine.
func TestStreamingMatchesLegacyStore(t *testing.T) {
	for _, parallel := range []int{0, 4} {
		t.Run(fmt.Sprintf("parallel=%d", parallel), func(t *testing.T) {
			repoStream, _ := openRepo(t)
			repoLegacy, _ := openRepo(t)

			col := NewCollector("curator")
			w := repoStream.NewBatchWriter(BatchWriterOptions{MaxBatch: 8, FlushInterval: time.Millisecond})
			col.AddSink(w)
			engine := workflow.NewEngine(detectionRegistry())
			engine.Parallel = parallel
			res, err := engine.Run(context.Background(), detectionDef(),
				map[string]workflow.Data{"metadata": workflow.List(
					workflow.Scalar("Elachistocleis ovalis"),
					workflow.Scalar("Hyla faber"),
					workflow.Scalar("Scinax fuscomarginatus"),
					workflow.Scalar("Physalaemus cuvieri"),
					workflow.Scalar("Boana albopunctata"),
				)}, col)
			if err != nil {
				t.Fatal(err)
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			if err := col.SinkErr(); err != nil {
				t.Fatal(err)
			}
			if err := repoLegacy.Store(col.Info(), col.Graph()); err != nil {
				t.Fatal(err)
			}

			gotInfo, err := repoStream.Run(res.RunID)
			if err != nil {
				t.Fatal(err)
			}
			wantInfo, err := repoLegacy.Run(res.RunID)
			if err != nil {
				t.Fatal(err)
			}
			if gotInfo != wantInfo {
				t.Fatalf("run info differs:\nstream %+v\nlegacy %+v", gotInfo, wantInfo)
			}
			if gotInfo.Status != RunCompleted {
				t.Fatalf("status = %q", gotInfo.Status)
			}
			wantG, err := repoLegacy.Graph(res.RunID)
			if err != nil {
				t.Fatal(err)
			}
			gotG, err := repoStream.Graph(res.RunID)
			if err != nil {
				t.Fatal(err)
			}
			assertSameGraph(t, wantG, gotG)
			// Quality reads agree too.
			wq, err := repoLegacy.QualityOfProcess(res.RunID, "Catalog_of_life")
			if err != nil {
				t.Fatal(err)
			}
			gq, err := repoStream.QualityOfProcess(res.RunID, "Catalog_of_life")
			if err != nil {
				t.Fatal(err)
			}
			if len(wq) != len(gq) || wq["reputation"] != gq["reputation"] {
				t.Fatalf("quality differs: %v vs %v", wq, gq)
			}
			m := w.Metrics()
			if m.Enqueued == 0 || m.Flushed != m.Enqueued || m.Batches == 0 {
				t.Fatalf("writer metrics = %+v", m)
			}
		})
	}
}

func TestStreamingFailedRunKeepsPartialProvenance(t *testing.T) {
	repo, _ := openRepo(t)
	reg := detectionRegistry()
	reg.Register("resolve", func(_ context.Context, c workflow.Call) (map[string]workflow.Data, error) {
		return nil, errors.New("authority down")
	})
	col := NewCollector("curator")
	w := repo.NewBatchWriter(BatchWriterOptions{})
	col.AddSink(w)
	_, err := workflow.NewEngine(reg).Run(context.Background(), detectionDef(),
		map[string]workflow.Data{"metadata": workflow.Scalar("Hyla faber")}, col)
	if err == nil {
		t.Fatal("run succeeded")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	runID := col.Info().RunID
	info, err := repo.Run(runID)
	if err != nil {
		t.Fatal(err)
	}
	if info.Status != RunFailed || info.Error == "" {
		t.Fatalf("info = %+v", info)
	}
	// The partial provenance survived: the step that did complete is there.
	g, err := repo.Graph(runID)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := g.Node("p:" + runID + "/Normalize"); !ok {
		t.Fatal("partial provenance lost")
	}
}

func TestBatchWriterDuplicateRunFails(t *testing.T) {
	repo, _ := openRepo(t)
	col, _ := runCaptured(t, "Hyla faber")
	if err := repo.Store(col.Info(), col.Graph()); err != nil {
		t.Fatal(err)
	}
	// Streaming the same run again must surface the insert conflict.
	w := repo.NewBatchWriter(BatchWriterOptions{})
	if err := w.Emit(Delta{Kind: DeltaRunStarted, Info: col.Info()}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err == nil {
		t.Fatal("duplicate run streamed without error")
	}
	if w.Err() == nil {
		t.Fatal("no sticky error")
	}
}

func TestBatchWriterEmitAfterClose(t *testing.T) {
	repo, _ := openRepo(t)
	w := repo.NewBatchWriter(BatchWriterOptions{})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if err := w.Emit(Delta{Kind: DeltaAddEdge}); !errors.Is(err, ErrWriterClosed) {
		t.Fatalf("emit after close = %v", err)
	}
}

// waitWriter polls the writer's metrics until cond holds (or fails the test).
func waitWriter(t *testing.T, w *BatchWriter, cond func(WriterMetrics) bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond(w.Metrics()) {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("writer never reached condition; metrics = %+v", w.Metrics())
}

// TestBatchWriterCrashRecovery kills the process (simulated by truncating the
// WAL) at batch boundaries and mid-batch: replay must always recover a
// consistent prefix of the delta stream, and a run whose finalize never made
// it to disk must read back as unfinished (Status == RunRunning).
func TestBatchWriterCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	db, err := storage.Open(dir, storage.Options{Sync: storage.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	repo, err := NewRepository(db)
	if err != nil {
		t.Fatal(err)
	}
	// Interval flushing off (1h): only size-triggered and final flushes, so
	// batch boundaries — and therefore WAL record boundaries — are exact.
	w := repo.NewBatchWriter(BatchWriterOptions{MaxBatch: 4, FlushInterval: time.Hour})

	started := time.Date(2013, 11, 12, 19, 58, 9, 0, time.UTC)
	info := RunInfo{RunID: "run-crash", WorkflowID: "wf-detect",
		WorkflowName: "Detection", StartedAt: started, Status: RunRunning}
	emit := func(d Delta) {
		t.Helper()
		if err := w.Emit(d); err != nil {
			t.Fatal(err)
		}
	}
	// Wave 1 — exactly one size-triggered batch: run row + three nodes.
	emit(Delta{Kind: DeltaRunStarted, Info: info})
	emit(Delta{Kind: DeltaAddNode, Node: opm.Node{ID: "ag:curator", Kind: opm.KindAgent, Label: "curator"}})
	emit(Delta{Kind: DeltaAddNode, Node: opm.Node{ID: "p:run-crash/Resolve", Kind: opm.KindProcess, Label: "Resolve"}})
	emit(Delta{Kind: DeltaAddNode, Node: opm.Node{ID: "a:in", Kind: opm.KindArtifact, Label: "input", Value: "Hyla faber"}})
	waitWriter(t, w, func(m WriterMetrics) bool { return m.Batches == 1 })
	size1 := db.WALSize()

	// Wave 2 — second batch: annotation update, two edges, one more node.
	emit(Delta{Kind: DeltaAnnotate, NodeID: "p:run-crash/Resolve", Key: "service", Value: "resolve"})
	emit(Delta{Kind: DeltaAddEdge, Edge: opm.Edge{Kind: opm.Used, Effect: "p:run-crash/Resolve", Cause: "a:in", Role: "name", Account: "run-crash"}})
	emit(Delta{Kind: DeltaAddEdge, Edge: opm.Edge{Kind: opm.WasControlledBy, Effect: "p:run-crash/Resolve", Cause: "ag:curator", Role: "executor", Account: "run-crash"}})
	emit(Delta{Kind: DeltaAddNode, Node: opm.Node{ID: "a:out", Kind: opm.KindArtifact, Label: "output", Value: "accepted"}})
	waitWriter(t, w, func(m WriterMetrics) bool { return m.Batches == 2 })
	size2 := db.WALSize()

	// Wave 3 — final batch: last edge plus the run finalize.
	done := info
	done.FinishedAt = started.Add(time.Second)
	done.Status = RunCompleted
	emit(Delta{Kind: DeltaAddEdge, Edge: opm.Edge{Kind: opm.WasGeneratedBy, Effect: "a:out", Cause: "p:run-crash/Resolve", Role: "status", Account: "run-crash"}})
	emit(Delta{Kind: DeltaRunFinished, Info: done})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	db.Close()
	walPath := filepath.Join(dir, "wal.log")
	st, err := os.Stat(walPath)
	if err != nil {
		t.Fatal(err)
	}
	size3 := st.Size()
	if !(size1 < size2 && size2 < size3) {
		t.Fatalf("WAL sizes not increasing: %d, %d, %d", size1, size2, size3)
	}

	reopen := func() (*Repository, func()) {
		t.Helper()
		db2, err := storage.Open(dir, storage.Options{Sync: storage.SyncAlways})
		if err != nil {
			t.Fatal(err)
		}
		repo2, err := NewRepository(db2)
		if err != nil {
			db2.Close()
			t.Fatal(err)
		}
		return repo2, func() { db2.Close() }
	}
	truncateTo := func(n int64) {
		t.Helper()
		if err := os.Truncate(walPath, n); err != nil {
			t.Fatal(err)
		}
	}

	// Clean shutdown: everything durable, run finalized.
	r2, cls := reopen()
	if inf, err := r2.Run("run-crash"); err != nil || inf.Status != RunCompleted {
		t.Fatalf("full reopen: %+v, %v", inf, err)
	}
	g, err := r2.Graph("run-crash")
	if err != nil {
		t.Fatal(err)
	}
	if g.NodeCount() != 4 || g.EdgeCount() != 3 {
		t.Fatalf("full graph: %d nodes, %d edges", g.NodeCount(), g.EdgeCount())
	}
	cls()

	// Torn final record (killed mid final commit): state rolls back to wave 2 —
	// nodes, both edges and the annotation survive, and the run reads
	// unfinished because the finalize never became durable.
	truncateTo(size3 - 1)
	r2, cls = reopen()
	inf, err := r2.Run("run-crash")
	if err != nil {
		t.Fatal(err)
	}
	if inf.Status != RunRunning {
		t.Fatalf("crashed run status = %q, want %q", inf.Status, RunRunning)
	}
	g, err = r2.Graph("run-crash")
	if err != nil {
		t.Fatal(err)
	}
	if g.NodeCount() != 4 || g.EdgeCount() != 2 {
		t.Fatalf("wave-2 graph: %d nodes, %d edges", g.NodeCount(), g.EdgeCount())
	}
	n, _ := g.Node("p:run-crash/Resolve")
	if n.Annotations["service"] != "resolve" {
		t.Fatalf("annotation lost: %v", n.Annotations)
	}
	// Every surviving edge has both endpoints — batches are atomic, so an
	// edge can never outlive the nodes written with or before it.
	for _, e := range g.Edges() {
		if _, ok := g.Node(e.Effect); !ok {
			t.Fatalf("edge effect %q dangling", e.Effect)
		}
		if _, ok := g.Node(e.Cause); !ok {
			t.Fatalf("edge cause %q dangling", e.Cause)
		}
	}
	cls()

	// Torn wave-2 record: only the first batch remains — run row plus three
	// nodes, no annotation, no edges. Still a consistent prefix.
	truncateTo(size2 - 1)
	r2, cls = reopen()
	inf, err = r2.Run("run-crash")
	if err != nil || inf.Status != RunRunning {
		t.Fatalf("wave-1 run: %+v, %v", inf, err)
	}
	g, err = r2.Graph("run-crash")
	if err != nil {
		t.Fatal(err)
	}
	if g.NodeCount() != 3 || g.EdgeCount() != 0 {
		t.Fatalf("wave-1 graph: %d nodes, %d edges", g.NodeCount(), g.EdgeCount())
	}
	n, _ = g.Node("p:run-crash/Resolve")
	if len(n.Annotations) != 0 {
		t.Fatalf("unexpected annotations: %v", n.Annotations)
	}
	cls()

	// Torn wave-1 record: the whole run vanishes atomically; the repository
	// schema (written earlier) is intact.
	truncateTo(size1 - 1)
	r2, cls = reopen()
	if _, err := r2.Run("run-crash"); !errors.Is(err, ErrRunNotFound) {
		t.Fatalf("torn first batch: %v", err)
	}
	cls()
}

func seedRuns(t *testing.T, repo *Repository, ids ...string) {
	t.Helper()
	started := time.Date(2013, 11, 12, 19, 58, 9, 0, time.UTC)
	for _, id := range ids {
		g := opm.NewGraph()
		if err := g.Agent("ag:x", "x"); err != nil {
			t.Fatal(err)
		}
		if err := g.Process("p:"+id+"/step", "step"); err != nil {
			t.Fatal(err)
		}
		if err := g.AddEdge(opm.Edge{Kind: opm.WasControlledBy, Effect: "p:" + id + "/step", Cause: "ag:x", Role: "executor", Account: id}); err != nil {
			t.Fatal(err)
		}
		info := RunInfo{RunID: id, WorkflowID: "wf", WorkflowName: "W",
			StartedAt: started, FinishedAt: started.Add(time.Second), Status: RunCompleted}
		if err := repo.Store(info, g); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRunsPage(t *testing.T) {
	repo, _ := openRepo(t)
	seedRuns(t, repo, "run-a", "run-b", "run-c", "run-d", "run-e")
	var got []string
	after := ""
	pages := 0
	for {
		runs, next, err := repo.RunsPage(after, 2)
		if err != nil {
			t.Fatal(err)
		}
		pages++
		for _, r := range runs {
			got = append(got, r.RunID)
		}
		if next == "" {
			break
		}
		after = next
	}
	want := []string{"run-a", "run-b", "run-c", "run-d", "run-e"}
	if len(got) != len(want) {
		t.Fatalf("paged runs = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("paged runs = %v", got)
		}
	}
	if pages != 3 {
		t.Fatalf("pages = %d", pages)
	}
	// Page boundaries are exact: no duplicates when a new run lands between
	// page fetches.
	runs, next, err := repo.RunsPage("run-b", 10)
	if err != nil || next != "" {
		t.Fatalf("tail page: %v, %q", err, next)
	}
	if len(runs) != 3 || runs[0].RunID != "run-c" {
		t.Fatalf("tail page = %+v", runs)
	}
}

func TestNodesAndEdgesPages(t *testing.T) {
	repo, _ := openRepo(t)
	col, res := runCaptured(t, "Elachistocleis ovalis")
	if err := repo.Store(col.Info(), col.Graph()); err != nil {
		t.Fatal(err)
	}
	full := col.Graph()

	var nodes []*opm.Node
	after := ""
	for {
		page, next, err := repo.NodesPage(res.RunID, after, 2)
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, page...)
		if next == "" {
			break
		}
		after = next
	}
	if len(nodes) != full.NodeCount() {
		t.Fatalf("paged %d nodes, graph has %d", len(nodes), full.NodeCount())
	}
	seen := map[string]bool{}
	for _, n := range nodes {
		if seen[n.ID] {
			t.Fatalf("node %q paged twice", n.ID)
		}
		seen[n.ID] = true
		if _, ok := full.Node(n.ID); !ok {
			t.Fatalf("phantom node %q", n.ID)
		}
	}

	var edges []opm.Edge
	cursor := -1
	for {
		page, next, err := repo.EdgesPage(res.RunID, cursor, 3)
		if err != nil {
			t.Fatal(err)
		}
		edges = append(edges, page...)
		if next < 0 {
			break
		}
		cursor = next
	}
	want := full.Edges()
	if len(edges) != len(want) {
		t.Fatalf("paged %d edges, graph has %d", len(edges), len(want))
	}
	for i := range want {
		if edges[i].Effect != want[i].Effect || edges[i].Cause != want[i].Cause || edges[i].Kind != want[i].Kind {
			t.Fatalf("edge %d out of order: %+v vs %+v", i, edges[i], want[i])
		}
	}

	if _, _, err := repo.NodesPage("run-nope", "", 10); !errors.Is(err, ErrRunNotFound) {
		t.Fatalf("nodes of missing run: %v", err)
	}
	if _, _, err := repo.EdgesPage("run-nope", -1, 10); !errors.Is(err, ErrRunNotFound) {
		t.Fatalf("edges of missing run: %v", err)
	}
}

func TestWriterMetricsAndBackpressure(t *testing.T) {
	repo, _ := openRepo(t)
	col := NewCollector("curator")
	// A tiny queue forces Emit through the backpressure path.
	w := repo.NewBatchWriter(BatchWriterOptions{MaxBatch: 2, FlushInterval: time.Millisecond, Queue: 1})
	col.AddSink(w)
	items := make([]workflow.Data, 8)
	for i := range items {
		items[i] = workflow.Scalar(fmt.Sprintf("Generated name%d", i))
	}
	_, err := workflow.NewEngine(detectionRegistry()).Run(
		context.Background(), detectionDef(),
		map[string]workflow.Data{"metadata": workflow.List(items...)}, col)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	m := w.Metrics()
	if m.Enqueued == 0 || m.Flushed != m.Enqueued {
		t.Fatalf("metrics = %+v", m)
	}
	if m.Batches == 0 || m.AvgBatch() <= 0 || m.MaxBatch == 0 {
		t.Fatalf("batch metrics = %+v", m)
	}
	if m.PeakQueue == 0 {
		t.Fatalf("peak queue = %d", m.PeakQueue)
	}
	if got := m.Counters(); got["provenance.writer.flushed"] != float64(m.Flushed) {
		t.Fatalf("counters = %v", got)
	}
	if w.QueueDepth() != 0 {
		t.Fatalf("queue depth after close = %d", w.QueueDepth())
	}
}
