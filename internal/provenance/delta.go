package provenance

import (
	"fmt"
	"sync"

	"repro/internal/opm"
	"repro/internal/workflow"
)

// DeltaKind classifies one incremental provenance operation.
type DeltaKind uint8

// Delta kinds, emitted in causal order per run.
const (
	// DeltaRunStarted opens a run; Info carries the initial RunInfo
	// (Status == RunRunning).
	DeltaRunStarted DeltaKind = iota
	// DeltaAddNode adds one OPM node (annotations arrive separately).
	DeltaAddNode
	// DeltaAddEdge adds one OPM edge. Edges are pre-deduplicated: a sink
	// never sees the same (kind, endpoints, role, account) twice per run.
	DeltaAddEdge
	// DeltaAnnotate sets one key=value annotation on an existing node;
	// later values for the same key overwrite earlier ones.
	DeltaAnnotate
	// DeltaRunFinished closes a run; Info carries the terminal RunInfo
	// (Status RunCompleted or RunFailed). It is the last delta of a run.
	DeltaRunFinished
	// DeltaHistory carries one engine history event. It is emitted AFTER
	// the graph deltas its projection produced, so a persisted history
	// event guarantees (by the stream's prefix property) that all of the
	// provenance it implies is persisted too — the invariant resume-as-
	// replay relies on. The sole exception is the terminal run-finished
	// event, which goes out BEFORE its projection so DeltaRunFinished stays
	// the stream's last delta (see HistoryCapture.OnHistoryEvent). History
	// events are not part of the OPM graph.
	DeltaHistory
)

// String names the delta kind.
func (k DeltaKind) String() string {
	switch k {
	case DeltaRunStarted:
		return "run-started"
	case DeltaAddNode:
		return "add-node"
	case DeltaAddEdge:
		return "add-edge"
	case DeltaAnnotate:
		return "annotate"
	case DeltaRunFinished:
		return "run-finished"
	case DeltaHistory:
		return "history"
	default:
		return fmt.Sprintf("delta(%d)", uint8(k))
	}
}

// Delta is one incremental graph operation of a captured run. Replaying a
// run's delta stream in order reconstructs exactly the OPM graph (and
// RunInfo) the Collector accumulated — the invariant the streaming
// persistence path is built on.
type Delta struct {
	Kind DeltaKind
	// Info is set for DeltaRunStarted and DeltaRunFinished.
	Info RunInfo
	// Node is set for DeltaAddNode. Its Annotations map is always nil:
	// annotations flow as separate DeltaAnnotate ops.
	Node opm.Node
	// Edge is set for DeltaAddEdge.
	Edge opm.Edge
	// NodeID, Key, Value are set for DeltaAnnotate.
	NodeID string
	Key    string
	Value  string
	// History is set for DeltaHistory.
	History *workflow.HistoryEvent
}

// Sink consumes the delta stream of one run. Emit is called in causal order
// under the Collector's lock, so implementations need no internal ordering;
// they must not call back into the Collector. An Emit error is sticky: the
// Collector records the first one (Collector.SinkErr) and keeps delivering,
// so a slow or failed sink never aborts the run it observes.
type Sink interface {
	Emit(Delta) error
}

// GraphSink materializes the delta stream back into an in-memory OPM graph —
// the reference consumer: byte-compatible with the Collector's own graph and
// the baseline other sinks are tested against.
type GraphSink struct {
	mu   sync.Mutex
	g    *opm.Graph
	info RunInfo
}

// NewGraphSink builds an empty in-memory sink.
func NewGraphSink() *GraphSink { return &GraphSink{g: opm.NewGraph()} }

// Emit implements Sink.
func (s *GraphSink) Emit(d Delta) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch d.Kind {
	case DeltaRunStarted, DeltaRunFinished:
		s.info = d.Info
		return nil
	case DeltaAddNode:
		return s.g.AddNode(d.Node)
	case DeltaAddEdge:
		return s.g.AddEdge(d.Edge)
	case DeltaAnnotate:
		return s.g.Annotate(d.NodeID, d.Key, d.Value)
	case DeltaHistory:
		return nil // execution bookkeeping, not part of the graph
	default:
		return fmt.Errorf("provenance: unknown delta kind %d", d.Kind)
	}
}

// Graph returns a snapshot of the materialized graph.
func (s *GraphSink) Graph() *opm.Graph {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.g.Clone()
}

// Info returns the latest run info seen on the stream.
func (s *GraphSink) Info() RunInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.info
}
