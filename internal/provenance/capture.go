// Package provenance implements the Provenance Manager of the architecture:
// it listens to workflow execution events, builds an OPM graph per run
// (artifacts for every datum, processes for every processor invocation,
// agents for the controlling parties), merges the quality annotations that
// the Workflow Adapter attached to the specification, and persists the
// result in the Data Provenance Repository.
//
// Capture is incremental: every graph mutation is also emitted as a Delta to
// any attached Sinks, in causal order, while the run executes. The
// Repository's BatchWriter sink streams those deltas into storage behind the
// run (write-behind, group-committed), so provenance is durable shortly
// after it happens instead of in one monolithic store after the run ends.
package provenance

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"
	"time"

	"repro/internal/opm"
	"repro/internal/workflow"
)

// QualityAnnotationPrefix prefixes quality-dimension annotations merged onto
// OPM process nodes, e.g. "quality.reputation" = "1".
const QualityAnnotationPrefix = "quality."

// RunStatus is the terminal state of a captured run.
type RunStatus string

// Run statuses.
const (
	RunRunning   RunStatus = "running"
	RunCompleted RunStatus = "completed"
	RunFailed    RunStatus = "failed"
	// RunAbandoned marks an unfinished run the startup sweep could not (or
	// chose not to) resume; the run row's Error records why. Its partial
	// provenance stays readable.
	RunAbandoned RunStatus = "abandoned"
)

// RunInfo summarizes one captured workflow execution.
type RunInfo struct {
	RunID        string
	WorkflowID   string
	WorkflowName string
	StartedAt    time.Time
	FinishedAt   time.Time
	Status       RunStatus
	Error        string
}

// Collector is a workflow.Listener that accumulates the OPM graph of a
// single run and streams every mutation to its attached Sinks. It is safe
// for concurrent event delivery.
type Collector struct {
	// Agent identifies who controls the processors of this run (the paper's
	// End User / Process Designer roles). Defaults to "workflow-engine".
	Agent string
	// MaxElements caps per-iteration fine-grained provenance: up to this
	// many elements of an implicit iteration get element-level artifacts and
	// derivation edges (default 4096; 0 uses the default, negative disables).
	MaxElements int

	mu    sync.Mutex
	graph *opm.Graph
	info  RunInfo
	// artifactOf remembers the artifact ID assigned to each distinct datum.
	artifactOf map[string]string
	sinks      []Sink
	sinkErr    error
	// resumed marks a collector preloaded with the crash-consistent prefix
	// of an interrupted run; the next workflow-started event then keeps the
	// original StartedAt instead of restamping it.
	resumed bool
}

const defaultMaxElements = 4096

// NewCollector builds a collector with the given controlling agent label.
func NewCollector(agent string) *Collector {
	if agent == "" {
		agent = "workflow-engine"
	}
	return &Collector{
		Agent:      agent,
		graph:      opm.NewGraph(),
		artifactOf: make(map[string]string),
	}
}

// NewResumeCollector rebuilds a collector around the crash-consistent prefix
// of an interrupted run: g is the graph recovered from storage (the collector
// takes ownership) and info its persisted RunInfo. Nodes and edges already in
// the prefix are transparently deduplicated, so re-executed processors whose
// provenance was partially persisted re-emit only what is missing, and the
// resumed stream converges on the graph an uninterrupted run would produce.
func NewResumeCollector(agent string, g *opm.Graph, info RunInfo) *Collector {
	c := NewCollector(agent)
	c.graph = g
	c.info = info
	c.resumed = true
	for _, n := range g.NodesOfKind(opm.KindArtifact) {
		c.artifactOf[n.ID] = n.Label
	}
	return c
}

// AddSink attaches a delta consumer. Attach sinks before the run starts;
// sinks attached mid-run miss the deltas already emitted.
func (c *Collector) AddSink(s Sink) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sinks = append(c.sinks, s)
}

// SinkErr returns the first error any sink returned from Emit (nil if none).
func (c *Collector) SinkErr() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sinkErr
}

// emitLocked delivers one delta to every sink. Caller holds c.mu.
func (c *Collector) emitLocked(d Delta) {
	for _, s := range c.sinks {
		if err := s.Emit(d); err != nil && c.sinkErr == nil {
			c.sinkErr = err
		}
	}
}

// Graph returns a snapshot of the accumulated OPM graph. The snapshot is
// deep-copied, so callers can never race with events still mutating the live
// graph (parallel engines deliver processor completions concurrently).
func (c *Collector) Graph() *opm.Graph {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.graph.Clone()
}

// Info returns the run summary.
func (c *Collector) Info() RunInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.info
}

// artifactID derives a content-addressed artifact ID so the same datum
// flowing through several processors maps to one artifact node.
func artifactID(d workflow.Data) string {
	sum := sha256.Sum256([]byte(d.String()))
	return "a:" + hex.EncodeToString(sum[:8])
}

const maxArtifactValue = 256

func truncate(s string) string {
	if len(s) > maxArtifactValue {
		return s[:maxArtifactValue] + "…"
	}
	return s
}

// addNodeLocked inserts a node into the graph and emits the matching delta
// when the insert actually happened. Caller holds c.mu.
func (c *Collector) addNodeLocked(n opm.Node) {
	if err := c.graph.AddNode(n); err != nil {
		return
	}
	n.Annotations = nil // annotations flow as DeltaAnnotate ops
	c.emitLocked(Delta{Kind: DeltaAddNode, Node: n})
}

// addEdgeLocked inserts an edge and emits the delta when it was new (the
// graph deduplicates repeats). Caller holds c.mu.
func (c *Collector) addEdgeLocked(e opm.Edge) {
	added, err := c.graph.InsertEdge(e)
	if err != nil || !added {
		return
	}
	c.emitLocked(Delta{Kind: DeltaAddEdge, Edge: e})
}

// annotateLocked sets one node annotation and emits the delta. Caller holds
// c.mu.
func (c *Collector) annotateLocked(id, key, value string) {
	if err := c.graph.Annotate(id, key, value); err != nil {
		return
	}
	c.emitLocked(Delta{Kind: DeltaAnnotate, NodeID: id, Key: key, Value: value})
}

// ensureArtifactLocked registers the artifact for d (if new) and returns its
// ID. Caller holds c.mu.
func (c *Collector) ensureArtifactLocked(label string, d workflow.Data) string {
	id := artifactID(d)
	if _, ok := c.artifactOf[id]; !ok {
		// Label records the first port the datum was seen at.
		c.addNodeLocked(opm.Node{ID: id, Kind: opm.KindArtifact, Label: label, Value: truncate(d.String())})
		c.artifactOf[id] = label
	}
	return id
}

func (c *Collector) processID(processor string) string {
	return "p:" + c.info.RunID + "/" + processor
}

// OnEvent implements workflow.Listener.
func (c *Collector) OnEvent(ev workflow.Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch ev.Type {
	case workflow.EventWorkflowStarted:
		started := ev.Time
		if c.resumed && !c.info.StartedAt.IsZero() {
			started = c.info.StartedAt // the run began before the crash
		}
		c.info = RunInfo{
			RunID:        ev.RunID,
			WorkflowID:   ev.WorkflowID,
			WorkflowName: ev.WorkflowName,
			StartedAt:    started,
			Status:       RunRunning,
		}
		c.emitLocked(Delta{Kind: DeltaRunStarted, Info: c.info})
		c.addNodeLocked(opm.Node{ID: "ag:" + c.Agent, Kind: opm.KindAgent, Label: c.Agent})
		for port, d := range ev.Inputs {
			c.ensureArtifactLocked("workflow-input:"+port, d)
		}

	case workflow.EventProcessorStarted:
		// Nodes are created at completion, when outputs are known; nothing
		// to record yet.

	case workflow.EventProcessorCompleted, workflow.EventProcessorFailed:
		pid := c.processID(ev.Processor)
		if _, exists := c.graph.Node(pid); !exists {
			c.addNodeLocked(opm.Node{ID: pid, Kind: opm.KindProcess, Label: ev.Processor})
		}
		c.annotateLocked(pid, "service", ev.Service)
		c.annotateLocked(pid, "iterations", fmt.Sprintf("%d", ev.Iterations))
		c.annotateLocked(pid, "duration", ev.Duration.String())
		if ev.Err != "" {
			c.annotateLocked(pid, "error", ev.Err)
		}
		// Quality annotations from the (adapter-instrumented) specification.
		for dim, val := range workflow.QualityAnnotations(ev.Annotations) {
			c.annotateLocked(pid, QualityAnnotationPrefix+dim, val)
		}
		account := ev.RunID
		for port, d := range ev.Inputs {
			aid := c.ensureArtifactLocked(ev.Processor+"."+port, d)
			c.addEdgeLocked(opm.Edge{
				Kind: opm.Used, Effect: pid, Cause: aid,
				Role: port, Account: account, Time: ev.Time,
			})
		}
		for port, d := range ev.Outputs {
			aid := c.ensureArtifactLocked(ev.Processor+"."+port, d)
			c.addEdgeLocked(opm.Edge{
				Kind: opm.WasGeneratedBy, Effect: aid, Cause: pid,
				Role: port, Account: account, Time: ev.Time,
			})
		}
		c.addEdgeLocked(opm.Edge{
			Kind: opm.WasControlledBy, Effect: pid, Cause: "ag:" + c.Agent,
			Role: "executor", Account: account, Time: ev.Time,
		})
		// Fine-grained provenance: per-element derivation edges so that an
		// individual result traces back to the individual input (e.g. one
		// rename to one queried name), not just list to list.
		max := c.MaxElements
		if max == 0 {
			max = defaultMaxElements
		}
		if max < 0 {
			max = 0 // negative disables element-level provenance
		}
		for _, el := range ev.Elements {
			if el.Index >= max {
				break
			}
			var inIDs []string
			for port, d := range el.Inputs {
				inIDs = append(inIDs, c.ensureArtifactLocked(ev.Processor+"."+port+"[elem]", d))
			}
			for port, d := range el.Outputs {
				outID := c.ensureArtifactLocked(ev.Processor+"."+port+"[elem]", d)
				for _, inID := range inIDs {
					if inID == outID {
						continue
					}
					c.addEdgeLocked(opm.Edge{
						Kind: opm.WasDerivedFrom, Effect: outID, Cause: inID,
						Account: account, Time: ev.Time,
					})
				}
			}
		}
	case workflow.EventWorkflowCompleted:
		c.info.FinishedAt = ev.Time
		c.info.Status = RunCompleted
		// Completion rules: derive artifact-to-artifact and
		// process-to-process dependencies, then stream the inferred edges.
		before := c.graph.EdgeCount()
		c.graph.InferDerivations()
		c.graph.InferTriggers()
		for _, e := range c.graph.EdgesSince(before) {
			c.emitLocked(Delta{Kind: DeltaAddEdge, Edge: e})
		}
		c.emitLocked(Delta{Kind: DeltaRunFinished, Info: c.info})

	case workflow.EventWorkflowFailed:
		c.info.FinishedAt = ev.Time
		c.info.Status = RunFailed
		c.info.Error = ev.Err
		c.emitLocked(Delta{Kind: DeltaRunFinished, Info: c.info})
	}
}

// OutputArtifacts maps each workflow output port of the completed run to its
// artifact ID, given the run result.
func (c *Collector) OutputArtifacts(result *workflow.RunResult) map[string]string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := map[string]string{}
	for port, d := range result.Outputs {
		out[port] = artifactID(d)
	}
	return out
}
