package provenance

import (
	"context"
	"fmt"
	"sort"
	"testing"
	"time"

	"repro/internal/opm"
	"repro/internal/storage"
	"repro/internal/workflow"
)

// capturedRun executes one detection run over n names and returns the
// collector (graph + info) plus the recorded delta stream.
func capturedRun(b *testing.B, n int) (*Collector, []Delta) {
	b.Helper()
	col := NewCollector("curator")
	var deltas []Delta
	col.AddSink(sinkFunc(func(d Delta) error {
		deltas = append(deltas, d)
		return nil
	}))
	items := make([]workflow.Data, n)
	for i := range items {
		items[i] = workflow.Scalar(fmt.Sprintf("Generated name%d", i))
	}
	_, err := workflow.NewEngine(detectionRegistry()).Run(
		context.Background(), detectionDef(),
		map[string]workflow.Data{"metadata": workflow.List(items...)}, col)
	if err != nil {
		b.Fatal(err)
	}
	return col, deltas
}

type sinkFunc func(Delta) error

func (f sinkFunc) Emit(d Delta) error { return f(d) }

func benchRepo(b *testing.B) *Repository {
	b.Helper()
	db, err := storage.Open(b.TempDir(), storage.Options{Sync: storage.SyncNever})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { db.Close() })
	repo, err := NewRepository(db)
	if err != nil {
		b.Fatal(err)
	}
	return repo
}

// renamed returns the run's info/deltas rebound to a fresh run ID so each
// benchmark iteration stores a distinct run.
func renamed(info RunInfo, i int) RunInfo {
	info.RunID = fmt.Sprintf("%s-%06d", info.RunID, i)
	return info
}

// BenchmarkStoreLegacy measures the monolithic after-the-run persistence
// path: one Apply containing the entire graph.
func BenchmarkStoreLegacy(b *testing.B) {
	col, _ := capturedRun(b, 32)
	repo := benchRepo(b)
	g := col.Graph()
	info := col.Info()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := repo.Store(renamed(info, i), g); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreStreaming measures the write-behind path: the same run's
// delta stream replayed through a BatchWriter (queueing, batching and group
// commit included).
func BenchmarkStoreStreaming(b *testing.B) {
	col, deltas := capturedRun(b, 32)
	repo := benchRepo(b)
	info := col.Info()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := repo.NewBatchWriter(BatchWriterOptions{})
		ri := renamed(info, i)
		for _, d := range deltas {
			switch d.Kind {
			case DeltaRunStarted, DeltaRunFinished:
				d.Info = ri
				d.Info.Status = RunRunning
				if d.Kind == DeltaRunFinished {
					d.Info.Status = RunCompleted
				}
			}
			if err := w.Emit(d); err != nil {
				b.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreStreamingOverlap measures what the write-behind path buys
// end to end: a run whose processors carry real latency, with persistence
// overlapped behind execution, versus executing first and storing after.
func BenchmarkStoreStreamingOverlap(b *testing.B) {
	delay := 200 * time.Microsecond
	reg := workflow.NewRegistry()
	reg.Register("normalize", func(_ context.Context, c workflow.Call) (map[string]workflow.Data, error) {
		time.Sleep(delay)
		return map[string]workflow.Data{"clean": c.Input("raw")}, nil
	})
	reg.Register("resolve", func(_ context.Context, c workflow.Call) (map[string]workflow.Data, error) {
		time.Sleep(delay)
		return map[string]workflow.Data{"status": workflow.Scalar(c.Input("name").String() + "=accepted")}, nil
	})
	items := make([]workflow.Data, 16)
	for i := range items {
		items[i] = workflow.Scalar(fmt.Sprintf("Generated name%d", i))
	}
	// run returns how long the caller stalled *after* the engine finished,
	// waiting for provenance to become durable — the latency the write-behind
	// path overlaps into execution.
	run := func(b *testing.B, repo *Repository, streaming bool) time.Duration {
		col := NewCollector("curator")
		var w *BatchWriter
		if streaming {
			// Flush eagerly: each processor's burst of deltas commits while
			// the next processor is still executing.
			w = repo.NewBatchWriter(BatchWriterOptions{MaxBatch: 32, FlushInterval: 2 * time.Millisecond})
			col.AddSink(w)
		}
		_, err := workflow.NewEngine(reg).Run(context.Background(), detectionDef(),
			map[string]workflow.Data{"metadata": workflow.List(items...)}, col)
		if err != nil {
			b.Fatal(err)
		}
		engineDone := time.Now()
		if streaming {
			if err := w.Close(); err != nil {
				b.Fatal(err)
			}
		} else if err := repo.Store(col.Info(), col.Graph()); err != nil {
			b.Fatal(err)
		}
		return time.Since(engineDone)
	}
	bench := func(streaming bool) func(*testing.B) {
		return func(b *testing.B) {
			repo := benchRepo(b)
			var tail time.Duration
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tail += run(b, repo, streaming)
			}
			b.ReportMetric(float64(tail.Nanoseconds())/float64(b.N), "post-run-ns/op")
		}
	}
	b.Run("store-after", bench(false))
	b.Run("write-behind", bench(true))
}

// seedLineage fills the repository with `runs` runs of background noise plus
// one run over a distinct input, and returns that rare input's artifact ID —
// the selective query shape the secondary index exists for (a table scan
// still walks every run's edges to find it).
func seedLineage(b *testing.B, repo *Repository, runs int) string {
	b.Helper()
	col, _ := capturedRun(b, 32)
	g := col.Graph()
	info := col.Info()
	for i := 0; i < runs; i++ {
		if err := repo.Store(renamed(info, i), g); err != nil {
			b.Fatal(err)
		}
	}
	rare := NewCollector("curator")
	_, err := workflow.NewEngine(detectionRegistry()).Run(
		context.Background(), detectionDef(),
		map[string]workflow.Data{"metadata": workflow.Scalar("Rare input")}, rare)
	if err != nil {
		b.Fatal(err)
	}
	if err := repo.Store(rare.Info(), rare.Graph()); err != nil {
		b.Fatal(err)
	}
	return artifactID(workflow.Scalar("Rare input"))
}

// scanRunsUsingArtifact replicates the pre-index implementation: a full edge
// table scan filtering on cause and kind — the baseline the secondary-index
// probe replaces.
func scanRunsUsingArtifact(repo *Repository, artifact string) []string {
	set := map[string]bool{}
	repo.db.Table(edgesTable).Scan(func(row storage.Row) bool {
		if row.Get(edgesSchema, "cause").Str() == artifact &&
			opm.EdgeKind(row.Get(edgesSchema, "kind").Int()) == opm.Used {
			set[row.Get(edgesSchema, "run_id").Str()] = true
		}
		return true
	})
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func BenchmarkRunsUsingArtifactScan(b *testing.B) {
	repo := benchRepo(b)
	artifact := seedLineage(b, repo, 64)
	want, err := repo.RunsUsingArtifact(artifact)
	if err != nil || len(want) == 0 {
		b.Fatalf("seed: %v, %v", want, err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := scanRunsUsingArtifact(repo, artifact); len(got) != len(want) {
			b.Fatalf("scan found %d runs, want %d", len(got), len(want))
		}
	}
}

func BenchmarkRunsUsingArtifactIndexed(b *testing.B) {
	repo := benchRepo(b)
	artifact := seedLineage(b, repo, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, err := repo.RunsUsingArtifact(artifact)
		if err != nil || len(got) == 0 {
			b.Fatalf("lookup: %v, %v", got, err)
		}
	}
}

// BenchmarkQualityOfProcessGraphReload replicates the pre-refactor
// implementation: reconstruct the run's whole graph to read one node's
// annotations.
func BenchmarkQualityOfProcessGraphReload(b *testing.B) {
	repo := benchRepo(b)
	col, _ := capturedRun(b, 32)
	info := renamed(col.Info(), 0)
	if err := repo.Store(info, col.Graph()); err != nil {
		b.Fatal(err)
	}
	pid := "p:" + col.Info().RunID + "/Catalog_of_life"
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := repo.Graph(info.RunID)
		if err != nil {
			b.Fatal(err)
		}
		n, ok := g.Node(pid)
		if !ok || n.Annotations["quality.reputation"] != "1" {
			b.Fatalf("node = %+v", n)
		}
	}
}

func BenchmarkQualityOfProcessDirect(b *testing.B) {
	repo := benchRepo(b)
	col, _ := capturedRun(b, 32)
	// QualityOfProcess derives the node key from the run ID, so store under
	// the original ID.
	if err := repo.Store(col.Info(), col.Graph()); err != nil {
		b.Fatal(err)
	}
	runID := col.Info().RunID
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q, err := repo.QualityOfProcess(runID, "Catalog_of_life")
		if err != nil || q["reputation"] != "1" {
			b.Fatalf("quality = %v, %v", q, err)
		}
	}
}
