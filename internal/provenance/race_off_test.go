//go:build !race

package provenance

const raceEnabled = false
