package provenance

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"repro/internal/opm"
	"repro/internal/storage"
	"repro/internal/telemetry"
)

// BatchWriterOptions tunes the write-behind persistence sink.
type BatchWriterOptions struct {
	// MaxBatch is the number of deltas that triggers a group commit
	// (default 128).
	MaxBatch int
	// FlushInterval bounds how long a delta can sit in the batch buffer
	// before a time-triggered flush (default 25ms).
	FlushInterval time.Duration
	// Queue is the capacity of the bounded delta queue (default 1024).
	// When the queue is full, Emit blocks — backpressure propagates to the
	// workflow engine's event delivery instead of growing memory unboundedly.
	Queue int
	// Trace, when set, is the context whose tracer (and current span) the
	// writer's flush and fsync spans attach to. The writer runs its own
	// goroutine, so the run's context must be handed over explicitly for the
	// spans to join the run's tree instead of being orphaned.
	Trace context.Context
	// FenceName/FenceToken, when FenceName is non-empty, route every flush
	// through storage.ApplyFenced: the batch commits only while the token is
	// current. An orchestrator whose run lease was stolen gets
	// storage.ErrStaleFence as the writer's sticky error — its history
	// appends stop at the storage layer instead of interleaving with the new
	// owner's stream.
	FenceName  string
	FenceToken int64
}

func (o *BatchWriterOptions) defaults() {
	if o.MaxBatch <= 0 {
		o.MaxBatch = 128
	}
	if o.FlushInterval <= 0 {
		o.FlushInterval = 25 * time.Millisecond
	}
	if o.Queue <= 0 {
		o.Queue = 1024
	}
}

// WriterMetrics snapshots one BatchWriter's counters.
type WriterMetrics struct {
	Enqueued        int64 // deltas accepted by Emit
	Flushed         int64 // deltas turned into durable storage ops
	Batches         int64 // group commits issued
	MaxBatch        int64 // largest single group commit, in deltas
	SizeFlushes     int64 // flushes triggered by MaxBatch
	IntervalFlushes int64 // flushes triggered by FlushInterval
	FinalFlushes    int64 // flushes triggered by run finalize / close
	PeakQueue       int64 // deepest the bounded queue got
	BlockedEmits    int64 // Emit calls that hit backpressure
	FlushTotal      time.Duration
	FlushMax        time.Duration
	// Flush is the flush-latency distribution (p50/p95/p99 via Counters).
	Flush telemetry.HistogramSnapshot
}

// AvgBatch is the mean group-commit size in deltas.
func (m WriterMetrics) AvgBatch() float64 {
	if m.Batches == 0 {
		return 0
	}
	return float64(m.Flushed) / float64(m.Batches)
}

// Counters renders the metrics as named readings for
// obs.FromRuntimeMetrics, so writer telemetry (queue depth, batch size,
// flush latency) is stored and queried like any other observation.
func (m WriterMetrics) Counters() map[string]float64 {
	c := map[string]float64{
		"provenance.writer.enqueued":         float64(m.Enqueued),
		"provenance.writer.flushed":          float64(m.Flushed),
		"provenance.writer.batches":          float64(m.Batches),
		"provenance.writer.max_batch":        float64(m.MaxBatch),
		"provenance.writer.avg_batch":        m.AvgBatch(),
		"provenance.writer.size_flushes":     float64(m.SizeFlushes),
		"provenance.writer.interval_flushes": float64(m.IntervalFlushes),
		"provenance.writer.final_flushes":    float64(m.FinalFlushes),
		"provenance.writer.peak_queue":       float64(m.PeakQueue),
		"provenance.writer.blocked_emits":    float64(m.BlockedEmits),
		"provenance.writer.flush_total_us":   float64(m.FlushTotal.Microseconds()),
		"provenance.writer.flush_max_us":     float64(m.FlushMax.Microseconds()),
	}
	return telemetry.MergeCounters(c, m.Flush.Counters("provenance.writer.flush"))
}

// wnode is the writer's materialized view of one node: the immutable node
// fields plus the annotations accumulated so far, and whether the node's row
// already exists in storage.
type wnode struct {
	node      opm.Node
	ann       map[string]string
	persisted bool
	dirty     bool
}

// BatchWriter is a Sink that streams a run's deltas into the repository
// while the run executes: write-behind, group-committed batches (size- or
// interval-triggered), bounded queue with backpressure, and a final fsync'd
// flush plus run-status finalize when the run completes or fails. If the
// process dies mid-run, recovery replays the WAL to a consistent prefix of
// the stream and the run row still reads Status == RunRunning — the
// "unfinished" marker. Failed runs keep their partial provenance.
//
// A BatchWriter persists exactly one run. Emit is safe for the Collector's
// serialized delivery; Close must be called after the run's last event (and
// never concurrently with Emit).
type BatchWriter struct {
	repo *Repository
	opts BatchWriterOptions

	ch   chan Delta
	done chan struct{}

	mu     sync.Mutex // guards closed, err, m
	closed bool
	err    error
	m      WriterMetrics

	flushHist telemetry.Histogram
	// trace is the run's context: flush/fsync spans started from it join the
	// run's span tree even though they are recorded on the writer goroutine.
	trace context.Context

	// Writer-goroutine state (single goroutine, no locking needed).
	runID       string
	runInserted bool
	finalized   bool
	nodes       map[string]*wnode
	dirtyOrder  []string
	edgeSeq     int
	historySeq  int // highest history event seq already persisted (-1 none)
	// resume marks a writer re-opened on an interrupted run (NewResumeWriter):
	// the run row already exists, so run-started becomes an update.
	resume bool

	// Flush scratch, reused across group commits so the steady-state write
	// path stops allocating: the op list, a value arena the rows are carved
	// from, and the annotation-blob encoder. All safe to reuse because Apply
	// never retains caller memory — the WAL buffers the payload and the
	// applied rows are decode copies.
	ops    []storage.Op
	vals   []storage.Value
	annEnc annEncoder
}

// ErrWriterClosed is returned by Emit after Close.
var ErrWriterClosed = errors.New("provenance: batch writer closed")

// NewBatchWriter builds a write-behind sink persisting into the repository
// and starts its flusher goroutine. Attach it to a Collector before the run
// and Close it after the run returns.
func (r *Repository) NewBatchWriter(opts BatchWriterOptions) *BatchWriter {
	opts.defaults()
	w := &BatchWriter{
		repo:       r,
		opts:       opts,
		ch:         make(chan Delta, opts.Queue),
		done:       make(chan struct{}),
		nodes:      make(map[string]*wnode),
		historySeq: -1,
		trace:      opts.Trace,
	}
	if w.trace == nil {
		w.trace = context.Background()
	}
	go w.loop()
	return w
}

// Emit implements Sink. It enqueues the delta, blocking when the bounded
// queue is full (backpressure). After a storage error the writer drains and
// discards, and Emit keeps returning that first error.
func (w *BatchWriter) Emit(d Delta) error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return ErrWriterClosed
	}
	if w.err != nil {
		err := w.err
		w.mu.Unlock()
		return err
	}
	w.m.Enqueued++
	w.mu.Unlock()
	select {
	case w.ch <- d:
	default:
		w.mu.Lock()
		w.m.BlockedEmits++
		w.mu.Unlock()
		w.ch <- d
	}
	return nil
}

// Close waits for the queue to drain, issues the final flush (fsync'd), and
// returns the first error the writer hit (nil on a clean stream).
func (w *BatchWriter) Close() error {
	w.mu.Lock()
	already := w.closed
	w.closed = true
	w.mu.Unlock()
	if !already {
		close(w.ch)
	}
	<-w.done
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// Err returns the sticky first error (nil if none so far).
func (w *BatchWriter) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// Metrics snapshots the writer's counters.
func (w *BatchWriter) Metrics() WriterMetrics {
	w.mu.Lock()
	m := w.m
	w.mu.Unlock()
	m.Flush = w.flushHist.Snapshot()
	return m
}

// QueueDepth reports the number of deltas currently queued.
func (w *BatchWriter) QueueDepth() int { return len(w.ch) }

func (w *BatchWriter) fail(err error) {
	w.mu.Lock()
	if w.err == nil {
		w.err = err
	}
	w.mu.Unlock()
}

func (w *BatchWriter) loop() {
	defer close(w.done)
	ticker := time.NewTicker(w.opts.FlushInterval)
	defer ticker.Stop()
	batch := make([]Delta, 0, w.opts.MaxBatch)
	for {
		select {
		case d, ok := <-w.ch:
			if !ok {
				w.flush(batch, "final")
				w.syncWAL()
				return
			}
			w.notePeak(int64(len(w.ch)) + 1)
			batch = append(batch, d)
			switch {
			case d.Kind == DeltaRunFinished:
				// The terminal delta: flush everything and make it durable
				// together with the run-status finalize.
				batch = w.flush(batch, "final")
				w.syncWAL()
			case len(batch) >= w.opts.MaxBatch:
				batch = w.flush(batch, "size")
			}
		case <-ticker.C:
			if len(batch) > 0 {
				batch = w.flush(batch, "interval")
			}
		}
	}
}

func (w *BatchWriter) notePeak(depth int64) {
	w.mu.Lock()
	if depth > w.m.PeakQueue {
		w.m.PeakQueue = depth
	}
	w.mu.Unlock()
}

func (w *BatchWriter) syncWAL() {
	if w.Err() != nil || !w.runInserted {
		return
	}
	_, sp := telemetry.StartSpan(w.trace, "fsync", "provenance-writer")
	err := w.repo.db.Sync()
	sp.Finish()
	if err != nil {
		w.fail(err)
	}
}

// flush turns the buffered deltas into one atomic group commit: run insert
// first, then edge inserts in sequence order interleaved with coalesced node
// writes (one insert-or-update per touched node, however many annotation
// deltas arrived), and the run-status finalize last. Returns the reusable
// empty batch slice.
func (w *BatchWriter) flush(batch []Delta, trigger string) []Delta {
	if len(batch) == 0 {
		return batch
	}
	ops := w.ops[:0]
	w.vals = w.vals[:0]
	w.annEnc.Reset()
	defer func() {
		for i := range batch {
			batch[i] = Delta{}
		}
		for i := range ops {
			ops[i] = storage.Op{} // drop row references; the arena is reused next flush
		}
		w.ops = ops[:0]
	}()
	if w.Err() != nil {
		return batch[:0] // sticky failure: drain and discard
	}
	// arenaRow seals the values appended to the arena since start as one row.
	arenaRow := func(start int) storage.Row {
		return storage.Row(w.vals[start:len(w.vals):len(w.vals)])
	}
	var finishRow storage.Row
	markDirty := func(id string, ns *wnode) {
		if !ns.dirty {
			ns.dirty = true
			w.dirtyOrder = append(w.dirtyOrder, id)
		}
	}
	for _, d := range batch {
		switch d.Kind {
		case DeltaRunStarted:
			if d.Info.RunID == "" {
				w.fail(fmt.Errorf("provenance: run has no ID"))
				return batch[:0]
			}
			if w.resume {
				if d.Info.RunID != w.runID {
					w.fail(fmt.Errorf("provenance: resume writer for %q got run %q", w.runID, d.Info.RunID))
					return batch[:0]
				}
				// The row already exists from before the crash; the resumed
				// execution refreshes it (same identity, still running).
				start := len(w.vals)
				w.vals = appendRunRow(w.vals, d.Info)
				ops = append(ops, storage.UpdateOp(runsTable, arenaRow(start)))
				break
			}
			w.runID = d.Info.RunID
			w.runInserted = true
			start := len(w.vals)
			w.vals = appendRunRow(w.vals, d.Info)
			ops = append(ops, storage.InsertOp(runsTable, arenaRow(start)))
		case DeltaAddNode:
			if _, exists := w.nodes[d.Node.ID]; exists {
				break // already persisted by the pre-crash prefix
			}
			ns := &wnode{node: d.Node, ann: map[string]string{}}
			w.nodes[d.Node.ID] = ns
			markDirty(d.Node.ID, ns)
		case DeltaAnnotate:
			ns, ok := w.nodes[d.NodeID]
			if !ok {
				w.fail(fmt.Errorf("provenance: annotate on unknown node %q", d.NodeID))
				return batch[:0]
			}
			ns.ann[d.Key] = d.Value
			markDirty(d.NodeID, ns)
		case DeltaAddEdge:
			start := len(w.vals)
			w.vals = appendEdgeRow(w.vals, w.runID, w.edgeSeq, d.Edge)
			ops = append(ops, storage.InsertOp(edgesTable, arenaRow(start)))
			w.edgeSeq++
		case DeltaRunFinished:
			w.finalized = true
			start := len(w.vals)
			w.vals = appendRunRow(w.vals, d.Info)
			finishRow = arenaRow(start)
		case DeltaHistory:
			if d.History == nil {
				w.fail(fmt.Errorf("provenance: history delta without payload"))
				return batch[:0]
			}
			if d.History.Seq <= w.historySeq {
				break // persisted before the crash; never duplicated
			}
			row, err := historyRow(w.runID, d.History)
			if err != nil {
				w.fail(err)
				return batch[:0]
			}
			w.historySeq = d.History.Seq
			ops = append(ops, storage.InsertOp(historyTable, row))
		default:
			w.fail(fmt.Errorf("provenance: unknown delta kind %d", d.Kind))
			return batch[:0]
		}
	}
	for _, id := range w.dirtyOrder {
		ns := w.nodes[id]
		ann := w.annEnc.Encode(ns.ann)
		start := len(w.vals)
		w.vals = appendNodeRow(w.vals, w.runID, ns.node, ann)
		row := arenaRow(start)
		if ns.persisted {
			ops = append(ops, storage.UpdateOp(nodesTable, row))
		} else {
			ops = append(ops, storage.InsertOp(nodesTable, row))
			ns.persisted = true
		}
		ns.dirty = false
	}
	w.dirtyOrder = w.dirtyOrder[:0]
	if finishRow != nil {
		ops = append(ops, storage.UpdateOp(runsTable, finishRow))
	}
	_, sp := telemetry.StartSpan(w.trace, "flush", "provenance-writer")
	start := time.Now()
	var err error
	if w.opts.FenceName != "" {
		err = w.repo.db.ApplyFenced(w.opts.FenceName, w.opts.FenceToken, ops...)
	} else {
		err = w.repo.db.Apply(ops...)
	}
	lat := time.Since(start)
	if sp != nil {
		sp.SetAttr("deltas", strconv.Itoa(len(batch)))
		sp.SetAttr("ops", strconv.Itoa(len(ops)))
		sp.SetAttr("trigger", trigger)
		if err != nil {
			sp.SetAttr("error", err.Error())
		}
	}
	sp.Finish()
	w.flushHist.Observe(lat)

	w.mu.Lock()
	w.m.Flushed += int64(len(batch))
	w.m.Batches++
	if int64(len(batch)) > w.m.MaxBatch {
		w.m.MaxBatch = int64(len(batch))
	}
	switch trigger {
	case "size":
		w.m.SizeFlushes++
	case "interval":
		w.m.IntervalFlushes++
	default:
		w.m.FinalFlushes++
	}
	w.m.FlushTotal += lat
	if lat > w.m.FlushMax {
		w.m.FlushMax = lat
	}
	w.mu.Unlock()

	if err != nil {
		w.fail(err)
	}
	return batch[:0]
}
