//go:build race

package provenance

// raceEnabled reports whether the race detector instruments this build;
// allocation-count guards skip under -race.
const raceEnabled = true
