package provenance

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"repro/internal/opm"
	"repro/internal/storage"
)

func perfNode() opm.Node {
	return opm.Node{
		ID:    "proc-extract",
		Kind:  opm.KindProcess,
		Label: "extract",
		Value: "csv",
	}
}

func perfEdge() opm.Edge {
	return opm.Edge{
		Kind:   opm.Used,
		Effect: "proc-extract",
		Cause:  "art-input",
		Role:   "in",
		Time:   time.Unix(1700000000, 0),
	}
}

func perfAnnotations() map[string]string {
	return map[string]string{
		"rows":     "1024",
		"checksum": "sha256:deadbeef",
		"format":   "csv",
	}
}

// TestDeltaEncodeAllocs guards the streaming flush hot path: with the
// writer's scratch buffers warm, encoding one node delta — annotation blob
// plus row bytes — must not allocate. This is the steady-state cost of every
// dirty node per flush.
func TestDeltaEncodeAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts differ under -race")
	}
	n := perfNode()
	ann := perfAnnotations()
	var enc annEncoder
	vals := make([]storage.Value, 0, 16)
	var rowBuf []byte
	// Warm every buffer once so steady state is measured.
	enc.Reset()
	vals = appendNodeRow(vals[:0], "run-000001", n, enc.Encode(ann))
	rowBuf = storage.EncodeRow(rowBuf[:0], storage.Row(vals))

	if allocs := testing.AllocsPerRun(100, func() {
		enc.Reset()
		blob := enc.Encode(ann)
		vals = appendNodeRow(vals[:0], "run-000001", n, blob)
		rowBuf = storage.EncodeRow(rowBuf[:0], storage.Row(vals))
	}); allocs > 1 {
		// One allocation is permitted: the node-key string itself
		// (runID + "/" + nodeID), which must escape into the row.
		t.Fatalf("node delta encode allocates %.1f/op, want <= 1", allocs)
	}
}

// TestRowEncodeAllocs pins the codec itself at zero: re-encoding a prebuilt
// row into a warm buffer performs no allocation at all.
func TestRowEncodeAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts differ under -race")
	}
	row := runRow(RunInfo{
		RunID: "run-000001", WorkflowID: "wf-1", WorkflowName: "perf",
		StartedAt: time.Unix(1700000000, 0), Status: RunRunning,
	})
	buf := storage.EncodeRow(nil, row)
	if allocs := testing.AllocsPerRun(100, func() {
		buf = storage.EncodeRow(buf[:0], row)
	}); allocs != 0 {
		t.Fatalf("EncodeRow allocates %.1f/op, want 0", allocs)
	}
}

// TestEdgeKeyFormat pins the cheap edge-key renderer to fmt's "%s/%06d".
func TestEdgeKeyFormat(t *testing.T) {
	cases := map[int]string{
		0:       "r1/000000",
		7:       "r1/000007",
		123456:  "r1/123456",
		999999:  "r1/999999",
		1000000: "r1/1000000",
		-3:      "r1/-00003",
	}
	for seq, want := range cases {
		if got, viaFmt := edgeKey("r1", seq), fmt.Sprintf("r1/%06d", seq); got != viaFmt || got != want {
			t.Errorf("edgeKey(r1, %d) = %q, want %q (fmt renders %q)", seq, got, want, viaFmt)
		}
	}
}

// TestAnnEncoderMatchesEncodeAnnotations proves the pooled encoder is
// byte-identical to the monolithic path's encoder for every shape of map,
// including reuse across differently-sized maps.
func TestAnnEncoderMatchesEncodeAnnotations(t *testing.T) {
	var enc annEncoder
	maps := []map[string]string{
		nil,
		{},
		{"a": "1"},
		perfAnnotations(),
		{"z": "last", "a": "first", "m": "mid"},
	}
	for round := 0; round < 2; round++ { // second round exercises buffer reuse
		enc.Reset()
		for i, m := range maps {
			want, err := encodeAnnotations(m)
			if err != nil {
				t.Fatalf("encodeAnnotations(%d): %v", i, err)
			}
			if got := enc.Encode(m); !bytes.Equal(got, want) {
				t.Errorf("round %d map %d: annEncoder %x, encodeAnnotations %x", round, i, got, want)
			}
		}
	}
}

// BenchmarkDeltaEncode measures the full per-node delta cost on the
// streaming flush path: annotation blob, arena row, encoded bytes.
func BenchmarkDeltaEncode(b *testing.B) {
	n := perfNode()
	ann := perfAnnotations()
	var enc annEncoder
	vals := make([]storage.Value, 0, 16)
	var rowBuf []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc.Reset()
		blob := enc.Encode(ann)
		vals = appendNodeRow(vals[:0], "run-000001", n, blob)
		rowBuf = storage.EncodeRow(rowBuf[:0], storage.Row(vals))
	}
	_ = rowBuf
}

// BenchmarkEdgeRowEncode measures the per-edge delta cost (key render, arena
// row, encoded bytes).
func BenchmarkEdgeRowEncode(b *testing.B) {
	e := perfEdge()
	vals := make([]storage.Value, 0, 16)
	var rowBuf []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vals = appendEdgeRow(vals[:0], "run-000001", i&0xffff, e)
		rowBuf = storage.EncodeRow(rowBuf[:0], storage.Row(vals))
	}
	_ = rowBuf
}
