package provenance

import (
	"repro/internal/workflow"
)

// EmitHistory streams one engine history event onto the delta stream. The
// caller (HistoryCapture) emits it AFTER the graph deltas of the event's
// projection, so the stream keeps the prefix property resume relies on: a
// persisted history event proves its projected provenance is persisted too.
func (c *Collector) EmitHistory(ev *workflow.HistoryEvent) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.emitLocked(Delta{Kind: DeltaHistory, History: ev})
}

// HistoryCapture adapts a Collector to the event-sourced engine: it consumes
// the run's history stream, projects each event to the legacy execution
// event (workflow.Projector — the deterministic bridge), feeds the projection
// to the Collector, and then rides the raw history event onto the same delta
// stream for persistence.
//
// Ordering is the whole point. For every history event the sinks see
//
//	[projected graph deltas...] [DeltaHistory]
//
// so any crash-consistent prefix of the stream that contains a history event
// also contains everything that event implies. Resuming from the stored
// history is therefore always safe: replaying the prefix re-derives exactly
// the graph state already on disk (deduplicated by the resume collector and
// writer), and execution continues from the first missing event.
type HistoryCapture struct {
	c    *Collector
	proj workflow.Projector
}

// NewHistoryCapture wraps a collector for use as an EventEngine listener.
func NewHistoryCapture(c *Collector) *HistoryCapture {
	return &HistoryCapture{c: c}
}

// Collector returns the wrapped collector.
func (h *HistoryCapture) Collector() *Collector { return h.c }

// OnHistoryEvent implements workflow.HistoryListener. It is called from the
// engine's single orchestrator goroutine, so projector state needs no lock;
// the Collector locks internally.
//
// The terminal event inverts the order: its history delta goes out BEFORE its
// projection, so DeltaRunFinished stays the very last delta of the stream and
// a crash-consistent prefix can never show a finalized run record while the
// history still reads unfinished. The cost is that a cut between the two
// leaves a finished history with an un-finalized run record — exactly the
// state resume's finalize path repairs by replaying the terminal event, whose
// projection (completion inference, the terminal run record) is idempotent.
func (h *HistoryCapture) OnHistoryEvent(ev workflow.HistoryEvent) {
	legacy, ok := h.proj.Apply(ev)
	if ev.Type == workflow.HistoryRunFinished {
		h.c.EmitHistory(&ev)
		if ok {
			h.c.OnEvent(legacy)
		}
		return
	}
	if ok {
		h.c.OnEvent(legacy)
	}
	h.c.EmitHistory(&ev)
}

// OnHistoryPrefix implements workflow.HistoryPrefixer: a resumed run's
// replayed prefix folds into the projector WITHOUT re-emitting anything —
// the prefix property guarantees its projection is already persisted, and
// the resume collector was preloaded with that graph state. Folding restores
// the projector's buffered context (scheduled inputs, iteration elements) so
// fresh completion events after the prefix project with full fidelity.
func (h *HistoryCapture) OnHistoryPrefix(prefix []workflow.HistoryEvent) {
	for _, ev := range prefix {
		h.proj.Apply(ev)
	}
}
