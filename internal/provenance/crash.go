package provenance

import "sync"

// CrashSink simulates a process crash for fault-injection tests and the
// chaos experiment: it forwards the first `after` deltas to the wrapped sink,
// then fires the onCrash callback once and silently discards every later
// delta — including the run finalize. What the inner sink received is exactly
// the crash-consistent prefix a real kill would leave behind, so a run cut
// this way reads back Status == RunRunning with partial provenance.
//
// onCrash is called from inside Emit (under the Collector's lock); it must
// not call back into the collector. Cancelling the run's context is the
// intended use — it aborts the execution the way a dying process would.
type CrashSink struct {
	inner   Sink
	after   int
	onCrash func()

	mu      sync.Mutex
	seen    int
	crashed bool
}

// NewCrashSink wraps inner, cutting the stream after `after` deltas (after
// < 1 cuts before the first delta). onCrash may be nil.
func NewCrashSink(inner Sink, after int, onCrash func()) *CrashSink {
	return &CrashSink{inner: inner, after: after, onCrash: onCrash}
}

// Emit implements Sink.
func (s *CrashSink) Emit(d Delta) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.crashed {
		return nil
	}
	if s.seen >= s.after {
		s.crashed = true
		if s.onCrash != nil {
			s.onCrash()
		}
		return nil
	}
	s.seen++
	return s.inner.Emit(d)
}

// Crashed reports whether the cut already happened.
func (s *CrashSink) Crashed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.crashed
}

// Forwarded returns how many deltas reached the inner sink.
func (s *CrashSink) Forwarded() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seen
}
