package provenance

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"repro/internal/storage"
	"repro/internal/workflow"
)

// This file is the repository side of crash recovery: persisting the engine
// history deltas the Collector streams, listing the unfinished runs a crashed
// process left behind, and re-opening a run's write-behind persistence so a
// resumed execution appends to the crash-consistent prefix instead of
// starting over.

// historyKey renders "runID/seq" with the sequence zero-padded to eight
// digits, so a primary-key range scan yields a run's history in seq order.
func historyKey(runID string, seq int) string {
	return fmt.Sprintf("%s/%08d", runID, seq)
}

func historyRow(runID string, ev *workflow.HistoryEvent) (storage.Row, error) {
	payload, err := json.Marshal(ev)
	if err != nil {
		return nil, fmt.Errorf("provenance: encode history event %d: %w", ev.Seq, err)
	}
	return storage.Row{
		storage.S(historyKey(runID, ev.Seq)),
		storage.S(runID),
		storage.I(int64(ev.Seq)),
		storage.Bytes(payload),
	}, nil
}

func rowToHistoryEvent(row storage.Row) (workflow.HistoryEvent, error) {
	var ev workflow.HistoryEvent
	if err := json.Unmarshal(row.Get(historySchema, "payload").Raw(), &ev); err != nil {
		return ev, fmt.Errorf("provenance: decode history event %q: %w",
			row.Get(historySchema, "key").Str(), err)
	}
	return ev, nil
}

// History returns the persisted history prefix of a run in sequence order —
// the crash-consistent record resume-as-replay feeds back into the event
// engine. An unfinished run's history simply stops at the last event that
// reached storage before the crash.
func (r *Repository) History(runID string) ([]workflow.HistoryEvent, error) {
	if _, err := r.Run(runID); err != nil {
		return nil, err
	}
	rows, err := r.db.Table(historyTable).Lookup("run_id", storage.S(runID))
	if err != nil {
		return nil, err
	}
	out := make([]workflow.HistoryEvent, 0, len(rows))
	for _, row := range rows {
		ev, err := rowToHistoryEvent(row)
		if err != nil {
			return nil, err
		}
		out = append(out, ev)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out, nil
}

// UnfinishedRuns lists runs whose status still reads RunRunning — the
// unfinished markers left behind by crashed or killed processes. A live
// in-flight run also matches, so call this at startup, before new runs begin.
func (r *Repository) UnfinishedRuns() ([]RunInfo, error) {
	rows, err := r.db.Table(runsTable).Lookup("status", storage.S(string(RunRunning)))
	if err != nil {
		return nil, err
	}
	out := make([]RunInfo, 0, len(rows))
	for _, row := range rows {
		out = append(out, rowToInfo(row))
	}
	return out, nil
}

// MarkAbandoned finalizes an unfinished run as RunAbandoned with the given
// reason, so the startup sweep converges instead of reconsidering the same
// marker forever. Only runs still marked RunRunning can be abandoned.
func (r *Repository) MarkAbandoned(runID, reason string, at time.Time) error {
	info, err := r.Run(runID)
	if err != nil {
		return err
	}
	if info.Status != RunRunning {
		return fmt.Errorf("provenance: run %q is %s, not %s", runID, info.Status, RunRunning)
	}
	info.Status = RunAbandoned
	info.Error = reason
	info.FinishedAt = at
	if err := r.db.Apply(storage.UpdateOp(runsTable, runRow(info))); err != nil {
		return err
	}
	return r.db.Sync()
}

// NewResumeWriter re-opens write-behind persistence for an interrupted run:
// the writer preloads the run's persisted nodes, edge count and history
// high-water mark, so the resumed delta stream appends exactly what is
// missing — node re-annotations become updates, edge sequence numbers
// continue where the prefix stopped, and replayed history events are never
// duplicated. The run-started delta of a resumed execution (if one arrives at
// all) updates the existing run row rather than inserting a second one.
func (r *Repository) NewResumeWriter(runID string, opts BatchWriterOptions) (*BatchWriter, error) {
	info, err := r.Run(runID)
	if err != nil {
		return nil, err
	}
	if info.Status != RunRunning {
		return nil, fmt.Errorf("provenance: run %q is %s, not resumable", runID, info.Status)
	}
	opts.defaults()
	w := &BatchWriter{
		repo:        r,
		opts:        opts,
		ch:          make(chan Delta, opts.Queue),
		done:        make(chan struct{}),
		nodes:       make(map[string]*wnode),
		historySeq:  -1,
		runID:       runID,
		runInserted: true,
		resume:      true,
		trace:       opts.Trace,
	}
	if w.trace == nil {
		w.trace = context.Background()
	}
	nodeRows, err := r.db.Table(nodesTable).Lookup("run_id", storage.S(runID))
	if err != nil {
		return nil, err
	}
	for _, row := range nodeRows {
		n, err := rowToNode(row)
		if err != nil {
			return nil, err
		}
		ann := n.Annotations
		if ann == nil {
			ann = map[string]string{}
		}
		n.Annotations = nil
		w.nodes[n.ID] = &wnode{node: *n, ann: ann, persisted: true}
	}
	edgeRows, err := r.db.Table(edgesTable).Lookup("run_id", storage.S(runID))
	if err != nil {
		return nil, err
	}
	w.edgeSeq = len(edgeRows)
	histRows, err := r.db.Table(historyTable).Lookup("run_id", storage.S(runID))
	if err != nil {
		return nil, err
	}
	for _, row := range histRows {
		if seq := int(row.Get(historySchema, "seq").Int()); seq > w.historySeq {
			w.historySeq = seq
		}
	}
	go w.loop()
	return w, nil
}
