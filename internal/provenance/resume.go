package provenance

import (
	"context"
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/storage"
	"repro/internal/workflow"
)

// This file is the repository side of crash recovery: persisting the
// checkpoint deltas the Collector streams, listing the unfinished runs a
// crashed process left behind, and re-opening a run's write-behind persistence
// so a resumed execution appends to the crash-consistent prefix instead of
// starting over.

func checkpointKey(runID, processor string) string { return runID + "/" + processor }

func checkpointRow(runID string, cp workflow.Checkpoint) (storage.Row, error) {
	outputs, err := json.Marshal(cp.Outputs)
	if err != nil {
		return nil, fmt.Errorf("provenance: encode checkpoint outputs: %w", err)
	}
	return storage.Row{
		storage.S(checkpointKey(runID, cp.Processor)),
		storage.S(runID),
		storage.S(cp.Processor),
		storage.I(int64(cp.Iterations)),
		storage.Bytes(outputs),
	}, nil
}

func rowToCheckpoint(row storage.Row) (workflow.Checkpoint, error) {
	cp := workflow.Checkpoint{
		Processor:  row.Get(checkpointsSchema, "processor").Str(),
		Iterations: int(row.Get(checkpointsSchema, "iterations").Int()),
	}
	if raw := row.Get(checkpointsSchema, "outputs").Raw(); len(raw) > 0 {
		if err := json.Unmarshal(raw, &cp.Outputs); err != nil {
			return cp, fmt.Errorf("provenance: decode checkpoint outputs for %q: %w", cp.Processor, err)
		}
	}
	return cp, nil
}

// Checkpoints returns the processor-completion checkpoints persisted for a
// run — the crash-consistent record of which processors finished durably.
// The order is unspecified; workflow.Engine.Resume replays by definition
// order regardless.
func (r *Repository) Checkpoints(runID string) ([]workflow.Checkpoint, error) {
	if _, err := r.Run(runID); err != nil {
		return nil, err
	}
	rows, err := r.db.Table(checkpointsTable).Lookup("run_id", storage.S(runID))
	if err != nil {
		return nil, err
	}
	out := make([]workflow.Checkpoint, 0, len(rows))
	for _, row := range rows {
		cp, err := rowToCheckpoint(row)
		if err != nil {
			return nil, err
		}
		out = append(out, cp)
	}
	return out, nil
}

// UnfinishedRuns lists runs whose status still reads RunRunning — the
// unfinished markers left behind by crashed or killed processes. A live
// in-flight run also matches, so call this at startup, before new runs begin.
func (r *Repository) UnfinishedRuns() ([]RunInfo, error) {
	rows, err := r.db.Table(runsTable).Lookup("status", storage.S(string(RunRunning)))
	if err != nil {
		return nil, err
	}
	out := make([]RunInfo, 0, len(rows))
	for _, row := range rows {
		out = append(out, rowToInfo(row))
	}
	return out, nil
}

// MarkAbandoned finalizes an unfinished run as RunAbandoned with the given
// reason, so the startup sweep converges instead of reconsidering the same
// marker forever. Only runs still marked RunRunning can be abandoned.
func (r *Repository) MarkAbandoned(runID, reason string, at time.Time) error {
	info, err := r.Run(runID)
	if err != nil {
		return err
	}
	if info.Status != RunRunning {
		return fmt.Errorf("provenance: run %q is %s, not %s", runID, info.Status, RunRunning)
	}
	info.Status = RunAbandoned
	info.Error = reason
	info.FinishedAt = at
	if err := r.db.Apply(storage.UpdateOp(runsTable, runRow(info))); err != nil {
		return err
	}
	return r.db.Sync()
}

// NewResumeWriter re-opens write-behind persistence for an interrupted run:
// the writer preloads the run's persisted nodes, edge count and checkpoint
// set, so the resumed delta stream appends exactly what is missing — node
// re-annotations become updates, edge sequence numbers continue where the
// prefix stopped, and replayed checkpoints are never duplicated. The
// run-started delta of the resumed execution updates the existing run row
// rather than inserting a second one.
func (r *Repository) NewResumeWriter(runID string, opts BatchWriterOptions) (*BatchWriter, error) {
	info, err := r.Run(runID)
	if err != nil {
		return nil, err
	}
	if info.Status != RunRunning {
		return nil, fmt.Errorf("provenance: run %q is %s, not resumable", runID, info.Status)
	}
	opts.defaults()
	w := &BatchWriter{
		repo:        r,
		opts:        opts,
		ch:          make(chan Delta, opts.Queue),
		done:        make(chan struct{}),
		nodes:       make(map[string]*wnode),
		checkpoints: make(map[string]bool),
		runID:       runID,
		runInserted: true,
		resume:      true,
		trace:       opts.Trace,
	}
	if w.trace == nil {
		w.trace = context.Background()
	}
	nodeRows, err := r.db.Table(nodesTable).Lookup("run_id", storage.S(runID))
	if err != nil {
		return nil, err
	}
	for _, row := range nodeRows {
		n, err := rowToNode(row)
		if err != nil {
			return nil, err
		}
		ann := n.Annotations
		if ann == nil {
			ann = map[string]string{}
		}
		n.Annotations = nil
		w.nodes[n.ID] = &wnode{node: *n, ann: ann, persisted: true}
	}
	edgeRows, err := r.db.Table(edgesTable).Lookup("run_id", storage.S(runID))
	if err != nil {
		return nil, err
	}
	w.edgeSeq = len(edgeRows)
	cpRows, err := r.db.Table(checkpointsTable).Lookup("run_id", storage.S(runID))
	if err != nil {
		return nil, err
	}
	for _, row := range cpRows {
		w.checkpoints[row.Get(checkpointsSchema, "processor").Str()] = true
	}
	go w.loop()
	return w, nil
}
