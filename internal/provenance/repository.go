package provenance

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/opm"
	"repro/internal/storage"
)

// Repository is the Data Provenance Repository (Fig. 1): durable storage of
// captured runs and their OPM graphs, following Malaverri's model — run
// records plus node and edge relations keyed by run.
type Repository struct {
	db *storage.DB
}

// Table names.
const (
	runsTable  = "prov_runs"
	nodesTable = "prov_nodes"
	edgesTable = "prov_edges"
)

var (
	runsSchema = storage.MustSchema(runsTable,
		storage.Column{Name: "run_id", Kind: storage.KindString},
		storage.Column{Name: "workflow_id", Kind: storage.KindString},
		storage.Column{Name: "workflow_name", Kind: storage.KindString},
		storage.Column{Name: "started_at", Kind: storage.KindTime},
		storage.Column{Name: "finished_at", Kind: storage.KindTime, Nullable: true},
		storage.Column{Name: "status", Kind: storage.KindString},
		storage.Column{Name: "error", Kind: storage.KindString, Nullable: true},
	)
	nodesSchema = storage.MustSchema(nodesTable,
		storage.Column{Name: "key", Kind: storage.KindString}, // run/node
		storage.Column{Name: "run_id", Kind: storage.KindString},
		storage.Column{Name: "node_id", Kind: storage.KindString},
		storage.Column{Name: "kind", Kind: storage.KindInt},
		storage.Column{Name: "label", Kind: storage.KindString, Nullable: true},
		storage.Column{Name: "value", Kind: storage.KindString, Nullable: true},
		storage.Column{Name: "annotations", Kind: storage.KindBytes, Nullable: true},
	)
	edgesSchema = storage.MustSchema(edgesTable,
		storage.Column{Name: "key", Kind: storage.KindString}, // run/seq
		storage.Column{Name: "run_id", Kind: storage.KindString},
		storage.Column{Name: "kind", Kind: storage.KindInt},
		storage.Column{Name: "effect", Kind: storage.KindString},
		storage.Column{Name: "cause", Kind: storage.KindString},
		storage.Column{Name: "role", Kind: storage.KindString, Nullable: true},
		storage.Column{Name: "account", Kind: storage.KindString, Nullable: true},
		storage.Column{Name: "time", Kind: storage.KindTime, Nullable: true},
	)
)

// ErrRunNotFound is returned for unknown run IDs.
var ErrRunNotFound = errors.New("provenance: run not found")

// NewRepository opens (creating if needed) the provenance repository in db.
func NewRepository(db *storage.DB) (*Repository, error) {
	if db.Table(runsTable) == nil {
		if err := db.Apply(
			storage.CreateTableOp(runsSchema),
			storage.CreateTableOp(nodesSchema),
			storage.CreateTableOp(edgesSchema),
			storage.CreateIndexOp(nodesTable, "run_id"),
			storage.CreateIndexOp(edgesTable, "run_id"),
			storage.CreateIndexOp(runsTable, "workflow_id"),
		); err != nil {
			return nil, err
		}
	}
	return &Repository{db: db}, nil
}

// Store persists a captured run and its graph atomically.
func (r *Repository) Store(info RunInfo, g *opm.Graph) error {
	if info.RunID == "" {
		return fmt.Errorf("provenance: run has no ID")
	}
	ops := []storage.Op{storage.InsertOp(runsTable, storage.Row{
		storage.S(info.RunID),
		storage.S(info.WorkflowID),
		storage.S(info.WorkflowName),
		storage.T(info.StartedAt),
		timeOrNull(info.FinishedAt),
		storage.S(string(info.Status)),
		storage.S(info.Error),
	})}
	for _, n := range g.Nodes() {
		ann, err := encodeAnnotations(n.Annotations)
		if err != nil {
			return err
		}
		ops = append(ops, storage.InsertOp(nodesTable, storage.Row{
			storage.S(info.RunID + "/" + n.ID),
			storage.S(info.RunID),
			storage.S(n.ID),
			storage.I(int64(n.Kind)),
			storage.S(n.Label),
			storage.S(n.Value),
			storage.Bytes(ann),
		}))
	}
	for i, e := range g.Edges() {
		ops = append(ops, storage.InsertOp(edgesTable, storage.Row{
			storage.S(fmt.Sprintf("%s/%06d", info.RunID, i)),
			storage.S(info.RunID),
			storage.I(int64(e.Kind)),
			storage.S(e.Effect),
			storage.S(e.Cause),
			storage.S(e.Role),
			storage.S(e.Account),
			timeOrNull(e.Time),
		}))
	}
	return r.db.Apply(ops...)
}

func timeOrNull(t time.Time) storage.Value {
	if t.IsZero() {
		return storage.Null()
	}
	return storage.T(t)
}

// Run loads the summary of one run.
func (r *Repository) Run(runID string) (RunInfo, error) {
	row, err := r.db.Table(runsTable).Get(storage.S(runID))
	if err != nil {
		if errors.Is(err, storage.ErrNotFound) {
			return RunInfo{}, fmt.Errorf("%w: %q", ErrRunNotFound, runID)
		}
		return RunInfo{}, err
	}
	return rowToInfo(row), nil
}

func rowToInfo(row storage.Row) RunInfo {
	info := RunInfo{
		RunID:        row.Get(runsSchema, "run_id").Str(),
		WorkflowID:   row.Get(runsSchema, "workflow_id").Str(),
		WorkflowName: row.Get(runsSchema, "workflow_name").Str(),
		StartedAt:    row.Get(runsSchema, "started_at").Time(),
		Status:       RunStatus(row.Get(runsSchema, "status").Str()),
		Error:        row.Get(runsSchema, "error").Str(),
	}
	if v := row.Get(runsSchema, "finished_at"); !v.IsNull() {
		info.FinishedAt = v.Time()
	}
	return info
}

// Runs lists every run of a workflow, ordered by run ID.
func (r *Repository) Runs(workflowID string) ([]RunInfo, error) {
	rows, err := r.db.Table(runsTable).Lookup("workflow_id", storage.S(workflowID))
	if err != nil {
		return nil, err
	}
	out := make([]RunInfo, 0, len(rows))
	for _, row := range rows {
		out = append(out, rowToInfo(row))
	}
	return out, nil
}

// AllRuns lists every stored run in run-ID order.
func (r *Repository) AllRuns() []RunInfo {
	var out []RunInfo
	r.db.Table(runsTable).Scan(func(row storage.Row) bool {
		out = append(out, rowToInfo(row))
		return true
	})
	return out
}

// Graph reconstructs the OPM graph of a run.
func (r *Repository) Graph(runID string) (*opm.Graph, error) {
	if _, err := r.Run(runID); err != nil {
		return nil, err
	}
	g := opm.NewGraph()
	nodeRows, err := r.db.Table(nodesTable).Lookup("run_id", storage.S(runID))
	if err != nil {
		return nil, err
	}
	for _, row := range nodeRows {
		ann, err := decodeAnnotations(row.Get(nodesSchema, "annotations").Raw())
		if err != nil {
			return nil, err
		}
		if err := g.AddNode(opm.Node{
			ID:          row.Get(nodesSchema, "node_id").Str(),
			Kind:        opm.NodeKind(row.Get(nodesSchema, "kind").Int()),
			Label:       row.Get(nodesSchema, "label").Str(),
			Value:       row.Get(nodesSchema, "value").Str(),
			Annotations: ann,
		}); err != nil {
			return nil, err
		}
	}
	edgeRows, err := r.db.Table(edgesTable).Lookup("run_id", storage.S(runID))
	if err != nil {
		return nil, err
	}
	for _, row := range edgeRows {
		e := opm.Edge{
			Kind:    opm.EdgeKind(row.Get(edgesSchema, "kind").Int()),
			Effect:  row.Get(edgesSchema, "effect").Str(),
			Cause:   row.Get(edgesSchema, "cause").Str(),
			Role:    row.Get(edgesSchema, "role").Str(),
			Account: row.Get(edgesSchema, "account").Str(),
		}
		if v := row.Get(edgesSchema, "time"); !v.IsNull() {
			e.Time = v.Time()
		}
		if err := g.AddEdge(e); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// QualityOfProcess returns the quality annotations (dimension -> value)
// recorded on the named processor of a run.
func (r *Repository) QualityOfProcess(runID, processor string) (map[string]string, error) {
	g, err := r.Graph(runID)
	if err != nil {
		return nil, err
	}
	n, ok := g.Node("p:" + runID + "/" + processor)
	if !ok {
		return nil, fmt.Errorf("provenance: run %q has no processor %q", runID, processor)
	}
	out := map[string]string{}
	for k, v := range n.Annotations {
		if len(k) > len(QualityAnnotationPrefix) && k[:len(QualityAnnotationPrefix)] == QualityAnnotationPrefix {
			out[k[len(QualityAnnotationPrefix):]] = v
		}
	}
	return out, nil
}

// UnionGraph merges the graphs of several runs into one multi-account OPM
// graph. Shared artifacts (identical data flowing through different runs)
// become single nodes, which is what makes cross-run lineage queries — "what
// has ever been derived from this dataset?" — possible.
func (r *Repository) UnionGraph(runIDs ...string) (*opm.Graph, error) {
	union := opm.NewGraph()
	for _, id := range runIDs {
		g, err := r.Graph(id)
		if err != nil {
			return nil, err
		}
		if err := union.Merge(g); err != nil {
			return nil, fmt.Errorf("provenance: merging run %q: %w", id, err)
		}
	}
	return union, nil
}

// RunsUsingArtifact returns the run IDs whose graphs contain a used edge on
// the given artifact ID — "which analyses consumed this dataset?", the
// cross-run reuse question long-term preservation exists to answer.
func (r *Repository) RunsUsingArtifact(artifactID string) ([]string, error) {
	set := map[string]bool{}
	r.db.Table(edgesTable).Scan(func(row storage.Row) bool {
		if opm.EdgeKind(row.Get(edgesSchema, "kind").Int()) == opm.Used &&
			row.Get(edgesSchema, "cause").Str() == artifactID {
			set[row.Get(edgesSchema, "run_id").Str()] = true
		}
		return true
	})
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sortStrings(out)
	return out, nil
}

// RunsGeneratingArtifact returns the run IDs whose graphs generated the
// given artifact.
func (r *Repository) RunsGeneratingArtifact(artifactID string) ([]string, error) {
	set := map[string]bool{}
	r.db.Table(edgesTable).Scan(func(row storage.Row) bool {
		if opm.EdgeKind(row.Get(edgesSchema, "kind").Int()) == opm.WasGeneratedBy &&
			row.Get(edgesSchema, "effect").Str() == artifactID {
			set[row.Get(edgesSchema, "run_id").Str()] = true
		}
		return true
	})
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sortStrings(out)
	return out, nil
}

func sortStrings(s []string) {
	for i := 0; i < len(s); i++ {
		for j := i + 1; j < len(s); j++ {
			if s[j] < s[i] {
				s[i], s[j] = s[j], s[i]
			}
		}
	}
}

// annotation encoding: simple length-prefixed key/value pairs via the row
// codec, reusing the storage wire format.
func encodeAnnotations(m map[string]string) ([]byte, error) {
	row := make(storage.Row, 0, len(m)*2)
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	// Deterministic order.
	for i := 0; i < len(keys); i++ {
		for j := i + 1; j < len(keys); j++ {
			if keys[j] < keys[i] {
				keys[i], keys[j] = keys[j], keys[i]
			}
		}
	}
	for _, k := range keys {
		row = append(row, storage.S(k), storage.S(m[k]))
	}
	return storage.EncodeRow(nil, row), nil
}

func decodeAnnotations(blob []byte) (map[string]string, error) {
	out := map[string]string{}
	if len(blob) == 0 {
		return out, nil
	}
	row, _, err := storage.DecodeRow(blob)
	if err != nil {
		return nil, fmt.Errorf("provenance: decode annotations: %w", err)
	}
	if len(row)%2 != 0 {
		return nil, fmt.Errorf("provenance: odd annotation list")
	}
	for i := 0; i < len(row); i += 2 {
		out[row[i].Str()] = row[i+1].Str()
	}
	return out, nil
}
