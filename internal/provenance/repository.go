package provenance

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/opm"
	"repro/internal/storage"
)

// Repository is the Data Provenance Repository (Fig. 1): durable storage of
// captured runs and their OPM graphs, following Malaverri's model — run
// records plus node and edge relations keyed by run. Runs arrive either
// monolithically (Store) or as a live delta stream (NewBatchWriter); both
// paths produce identical rows.
type Repository struct {
	db *storage.DB
	// src is the read side: the live db for a primary repository, or an
	// immutable storage.View for repositories produced by View(). All query
	// methods go through src; writes always go through db.
	src storage.TableSource
}

// Table names.
const (
	runsTable    = "prov_runs"
	nodesTable   = "prov_nodes"
	edgesTable   = "prov_edges"
	historyTable = "prov_history"
)

var (
	runsSchema = storage.MustSchema(runsTable,
		storage.Column{Name: "run_id", Kind: storage.KindString},
		storage.Column{Name: "workflow_id", Kind: storage.KindString},
		storage.Column{Name: "workflow_name", Kind: storage.KindString},
		storage.Column{Name: "started_at", Kind: storage.KindTime},
		storage.Column{Name: "finished_at", Kind: storage.KindTime, Nullable: true},
		storage.Column{Name: "status", Kind: storage.KindString},
		storage.Column{Name: "error", Kind: storage.KindString, Nullable: true},
	)
	nodesSchema = storage.MustSchema(nodesTable,
		storage.Column{Name: "key", Kind: storage.KindString}, // run/node
		storage.Column{Name: "run_id", Kind: storage.KindString},
		storage.Column{Name: "node_id", Kind: storage.KindString},
		storage.Column{Name: "kind", Kind: storage.KindInt},
		storage.Column{Name: "label", Kind: storage.KindString, Nullable: true},
		storage.Column{Name: "value", Kind: storage.KindString, Nullable: true},
		storage.Column{Name: "annotations", Kind: storage.KindBytes, Nullable: true},
	)
	edgesSchema = storage.MustSchema(edgesTable,
		storage.Column{Name: "key", Kind: storage.KindString}, // run/seq
		storage.Column{Name: "run_id", Kind: storage.KindString},
		storage.Column{Name: "kind", Kind: storage.KindInt},
		storage.Column{Name: "effect", Kind: storage.KindString},
		storage.Column{Name: "cause", Kind: storage.KindString},
		storage.Column{Name: "role", Kind: storage.KindString, Nullable: true},
		storage.Column{Name: "account", Kind: storage.KindString, Nullable: true},
		storage.Column{Name: "time", Kind: storage.KindTime, Nullable: true},
	)
	historySchema = storage.MustSchema(historyTable,
		storage.Column{Name: "key", Kind: storage.KindString}, // run/seq
		storage.Column{Name: "run_id", Kind: storage.KindString},
		storage.Column{Name: "seq", Kind: storage.KindInt},
		storage.Column{Name: "payload", Kind: storage.KindBytes}, // JSON workflow.HistoryEvent
	)
)

// ErrRunNotFound is returned for unknown run IDs.
var ErrRunNotFound = errors.New("provenance: run not found")

// NewRepository opens (creating if needed) the provenance repository in db.
// Repositories created by earlier versions are upgraded in place: the
// lineage indexes on edge effect/cause are backfilled when missing.
func NewRepository(db *storage.DB) (*Repository, error) {
	if db.Table(runsTable) == nil {
		if err := db.Apply(
			storage.CreateTableOp(runsSchema),
			storage.CreateTableOp(nodesSchema),
			storage.CreateTableOp(edgesSchema),
			storage.CreateIndexOp(nodesTable, "run_id"),
			storage.CreateIndexOp(edgesTable, "run_id"),
			storage.CreateIndexOp(runsTable, "workflow_id"),
		); err != nil {
			return nil, err
		}
	}
	// Lineage indexes (added after the first release): cross-run artifact
	// queries resolve via these instead of full edge scans.
	for _, col := range []string{"effect", "cause"} {
		if !db.Table(edgesTable).HasIndex(col) {
			if err := db.CreateIndex(edgesTable, col); err != nil {
				return nil, err
			}
		}
	}
	// History table (added with the event-sourced engine): repositories
	// written by earlier versions gain it — their old runs simply have no
	// history and are not resumable by replay.
	if db.Table(historyTable) == nil {
		if err := db.Apply(
			storage.CreateTableOp(historySchema),
			storage.CreateIndexOp(historyTable, "run_id"),
		); err != nil {
			return nil, err
		}
	}
	// Status index: the startup sweep probes for unfinished runs instead of
	// scanning the whole run table.
	if !db.Table(runsTable).HasIndex("status") {
		if err := db.CreateIndex(runsTable, "status"); err != nil {
			return nil, err
		}
	}
	return &Repository{db: db, src: db}, nil
}

// View returns a repository whose reads run against an immutable
// point-in-time snapshot of the database: queries scan without touching the
// writer lock, so graph reconstruction and paging never stall (or get
// stalled by) an active run's provenance stream. Acquisition is O(tables).
// Writes through the returned repository still reach the live database, but
// a view is meant for reads — its queries will not see them.
func (r *Repository) View() *Repository {
	return &Repository{db: r.db, src: r.db.View()}
}

// --- row builders, shared by Store and the BatchWriter so both persistence
// paths produce byte-identical rows. The append variants write into a caller
// value arena so the streaming writer's steady state allocates no row slices;
// the plain variants wrap them for the monolithic path. ---

func appendRunRow(dst []storage.Value, info RunInfo) []storage.Value {
	return append(dst,
		storage.S(info.RunID),
		storage.S(info.WorkflowID),
		storage.S(info.WorkflowName),
		storage.T(info.StartedAt),
		timeOrNull(info.FinishedAt),
		storage.S(string(info.Status)),
		storage.S(info.Error),
	)
}

func runRow(info RunInfo) storage.Row {
	return storage.Row(appendRunRow(make([]storage.Value, 0, 7), info))
}

func nodeKey(runID, nodeID string) string { return runID + "/" + nodeID }

func appendNodeRow(dst []storage.Value, runID string, n opm.Node, ann []byte) []storage.Value {
	return append(dst,
		storage.S(nodeKey(runID, n.ID)),
		storage.S(runID),
		storage.S(n.ID),
		storage.I(int64(n.Kind)),
		storage.S(n.Label),
		storage.S(n.Value),
		storage.Bytes(ann),
	)
}

func nodeRow(runID string, n opm.Node, annotations map[string]string) (storage.Row, error) {
	ann, err := encodeAnnotations(annotations)
	if err != nil {
		return nil, err
	}
	return storage.Row(appendNodeRow(make([]storage.Value, 0, 7), runID, n, ann)), nil
}

// edgeKey renders "runID/seq" with the sequence zero-padded to six digits —
// the persisted key format, so the rendering must never change. The manual
// formatting keeps the per-edge cost at the single string allocation.
func edgeKey(runID string, seq int) string {
	if seq < 0 || seq > 999999 {
		return fmt.Sprintf("%s/%06d", runID, seq) // out-of-range: defer to fmt's widening
	}
	var d [7]byte
	d[0] = '/'
	v := seq
	for i := 6; i >= 1; i-- {
		d[i] = byte('0' + v%10)
		v /= 10
	}
	return runID + string(d[:])
}

func appendEdgeRow(dst []storage.Value, runID string, seq int, e opm.Edge) []storage.Value {
	return append(dst,
		storage.S(edgeKey(runID, seq)),
		storage.S(runID),
		storage.I(int64(e.Kind)),
		storage.S(e.Effect),
		storage.S(e.Cause),
		storage.S(e.Role),
		storage.S(e.Account),
		timeOrNull(e.Time),
	)
}

func edgeRow(runID string, seq int, e opm.Edge) storage.Row {
	return storage.Row(appendEdgeRow(make([]storage.Value, 0, 8), runID, seq, e))
}

// Store persists a captured run and its graph atomically — the legacy
// monolithic path, kept for after-the-fact imports. Live runs stream through
// NewBatchWriter instead and arrive batch by batch while they execute.
func (r *Repository) Store(info RunInfo, g *opm.Graph) error {
	if info.RunID == "" {
		return fmt.Errorf("provenance: run has no ID")
	}
	ops := []storage.Op{storage.InsertOp(runsTable, runRow(info))}
	for _, n := range g.Nodes() {
		row, err := nodeRow(info.RunID, *n, n.Annotations)
		if err != nil {
			return err
		}
		ops = append(ops, storage.InsertOp(nodesTable, row))
	}
	for i, e := range g.Edges() {
		ops = append(ops, storage.InsertOp(edgesTable, edgeRow(info.RunID, i, e)))
	}
	return r.db.Apply(ops...)
}

func timeOrNull(t time.Time) storage.Value {
	if t.IsZero() {
		return storage.Null()
	}
	return storage.T(t)
}

// Run loads the summary of one run.
func (r *Repository) Run(runID string) (RunInfo, error) {
	row, err := r.src.Table(runsTable).Get(storage.S(runID))
	if err != nil {
		if errors.Is(err, storage.ErrNotFound) {
			return RunInfo{}, fmt.Errorf("%w: %q", ErrRunNotFound, runID)
		}
		return RunInfo{}, err
	}
	return rowToInfo(row), nil
}

func rowToInfo(row storage.Row) RunInfo {
	info := RunInfo{
		RunID:        row.Get(runsSchema, "run_id").Str(),
		WorkflowID:   row.Get(runsSchema, "workflow_id").Str(),
		WorkflowName: row.Get(runsSchema, "workflow_name").Str(),
		StartedAt:    row.Get(runsSchema, "started_at").Time(),
		Status:       RunStatus(row.Get(runsSchema, "status").Str()),
		Error:        row.Get(runsSchema, "error").Str(),
	}
	if v := row.Get(runsSchema, "finished_at"); !v.IsNull() {
		info.FinishedAt = v.Time()
	}
	return info
}

// Runs lists every run of a workflow, ordered by run ID.
func (r *Repository) Runs(workflowID string) ([]RunInfo, error) {
	rows, err := r.src.Table(runsTable).Lookup("workflow_id", storage.S(workflowID))
	if err != nil {
		return nil, err
	}
	out := make([]RunInfo, 0, len(rows))
	for _, row := range rows {
		out = append(out, rowToInfo(row))
	}
	return out, nil
}

// AllRuns lists every stored run in run-ID order.
func (r *Repository) AllRuns() []RunInfo {
	var out []RunInfo
	r.src.Table(runsTable).Scan(func(row storage.Row) bool {
		out = append(out, rowToInfo(row))
		return true
	})
	return out
}

// RunsPage returns up to limit runs with run ID strictly greater than after
// ("" starts at the beginning), in run-ID order, plus the cursor to pass as
// after for the next page ("" when this was the last page). This is the read
// API dashboards page through instead of materializing every run at once.
func (r *Repository) RunsPage(after string, limit int) ([]RunInfo, string, error) {
	if limit <= 0 {
		limit = 50
	}
	out := make([]RunInfo, 0, limit)
	more := false
	r.src.Table(runsTable).ScanFrom(storage.S(after), func(row storage.Row) bool {
		info := rowToInfo(row)
		if info.RunID == after {
			return true // ScanFrom is inclusive; pagination resumes after
		}
		if len(out) == limit {
			more = true
			return false
		}
		out = append(out, info)
		return true
	})
	next := ""
	if more && len(out) > 0 {
		next = out[len(out)-1].RunID
	}
	return out, next, nil
}

// NodesPage returns up to limit of a run's OPM nodes whose node ID is
// strictly greater than after (""), in node-ID order, with the next-page
// cursor. The rows are read by primary-key range, never a table scan.
func (r *Repository) NodesPage(runID, after string, limit int) ([]*opm.Node, string, error) {
	if _, err := r.Run(runID); err != nil {
		return nil, "", err
	}
	if limit <= 0 {
		limit = 500
	}
	out := make([]*opm.Node, 0, limit)
	more := false
	var scanErr error
	r.src.Table(nodesTable).ScanFrom(storage.S(nodeKey(runID, after)), func(row storage.Row) bool {
		if row.Get(nodesSchema, "run_id").Str() != runID {
			return false // walked past the run's key range
		}
		n, err := rowToNode(row)
		if err != nil {
			scanErr = err
			return false
		}
		if n.ID == after {
			return true
		}
		if len(out) == limit {
			more = true
			return false
		}
		out = append(out, n)
		return true
	})
	if scanErr != nil {
		return nil, "", scanErr
	}
	next := ""
	if more && len(out) > 0 {
		next = out[len(out)-1].ID
	}
	return out, next, nil
}

// EdgesPage returns up to limit of a run's edges with sequence number
// strictly greater than after (-1 starts at the beginning), in capture
// order, plus the cursor for the next page (-1 when exhausted).
func (r *Repository) EdgesPage(runID string, after, limit int) ([]opm.Edge, int, error) {
	if _, err := r.Run(runID); err != nil {
		return nil, -1, err
	}
	if limit <= 0 {
		limit = 500
	}
	out := make([]opm.Edge, 0, limit)
	next := -1
	seq := after
	r.src.Table(edgesTable).ScanFrom(storage.S(edgeKey(runID, after+1)), func(row storage.Row) bool {
		if row.Get(edgesSchema, "run_id").Str() != runID {
			return false
		}
		if len(out) == limit {
			next = seq
			return false
		}
		out = append(out, rowToEdge(row))
		seq++
		return true
	})
	return out, next, nil
}

func rowToNode(row storage.Row) (*opm.Node, error) {
	ann, err := decodeAnnotations(row.Get(nodesSchema, "annotations").Raw())
	if err != nil {
		return nil, err
	}
	return &opm.Node{
		ID:          row.Get(nodesSchema, "node_id").Str(),
		Kind:        opm.NodeKind(row.Get(nodesSchema, "kind").Int()),
		Label:       row.Get(nodesSchema, "label").Str(),
		Value:       row.Get(nodesSchema, "value").Str(),
		Annotations: ann,
	}, nil
}

func rowToEdge(row storage.Row) opm.Edge {
	e := opm.Edge{
		Kind:    opm.EdgeKind(row.Get(edgesSchema, "kind").Int()),
		Effect:  row.Get(edgesSchema, "effect").Str(),
		Cause:   row.Get(edgesSchema, "cause").Str(),
		Role:    row.Get(edgesSchema, "role").Str(),
		Account: row.Get(edgesSchema, "account").Str(),
	}
	if v := row.Get(edgesSchema, "time"); !v.IsNull() {
		e.Time = v.Time()
	}
	return e
}

// Graph reconstructs the OPM graph of a run.
func (r *Repository) Graph(runID string) (*opm.Graph, error) {
	if _, err := r.Run(runID); err != nil {
		return nil, err
	}
	g := opm.NewGraph()
	nodeRows, err := r.src.Table(nodesTable).Lookup("run_id", storage.S(runID))
	if err != nil {
		return nil, err
	}
	for _, row := range nodeRows {
		n, err := rowToNode(row)
		if err != nil {
			return nil, err
		}
		if err := g.AddNode(*n); err != nil {
			return nil, err
		}
	}
	edgeRows, err := r.src.Table(edgesTable).Lookup("run_id", storage.S(runID))
	if err != nil {
		return nil, err
	}
	for _, row := range edgeRows {
		if err := g.AddEdge(rowToEdge(row)); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// QualityOfProcess returns the quality annotations (dimension -> value)
// recorded on the named processor of a run. It reads the single node row
// directly instead of reconstructing the run's whole graph.
func (r *Repository) QualityOfProcess(runID, processor string) (map[string]string, error) {
	nid := "p:" + runID + "/" + processor
	row, err := r.src.Table(nodesTable).Get(storage.S(nodeKey(runID, nid)))
	if err != nil {
		if !errors.Is(err, storage.ErrNotFound) {
			return nil, err
		}
		// Distinguish "no such run" from "run has no such processor".
		if _, rerr := r.Run(runID); rerr != nil {
			return nil, rerr
		}
		return nil, fmt.Errorf("provenance: run %q has no processor %q", runID, processor)
	}
	ann, err := decodeAnnotations(row.Get(nodesSchema, "annotations").Raw())
	if err != nil {
		return nil, err
	}
	out := map[string]string{}
	for k, v := range ann {
		if len(k) > len(QualityAnnotationPrefix) && k[:len(QualityAnnotationPrefix)] == QualityAnnotationPrefix {
			out[k[len(QualityAnnotationPrefix):]] = v
		}
	}
	return out, nil
}

// UnionGraph merges the graphs of several runs into one multi-account OPM
// graph. Shared artifacts (identical data flowing through different runs)
// become single nodes, which is what makes cross-run lineage queries — "what
// has ever been derived from this dataset?" — possible.
func (r *Repository) UnionGraph(runIDs ...string) (*opm.Graph, error) {
	union := opm.NewGraph()
	for _, id := range runIDs {
		g, err := r.Graph(id)
		if err != nil {
			return nil, err
		}
		if err := union.Merge(g); err != nil {
			return nil, fmt.Errorf("provenance: merging run %q: %w", id, err)
		}
	}
	return union, nil
}

// runsWithEdge resolves run IDs via the secondary index on the given edge
// column, keeping only edges of the wanted kind.
func (r *Repository) runsWithEdge(column, nodeID string, kind opm.EdgeKind) ([]string, error) {
	rows, err := r.src.Table(edgesTable).Lookup(column, storage.S(nodeID))
	if err != nil {
		return nil, err
	}
	set := map[string]bool{}
	for _, row := range rows {
		if opm.EdgeKind(row.Get(edgesSchema, "kind").Int()) == kind {
			set[row.Get(edgesSchema, "run_id").Str()] = true
		}
	}
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out, nil
}

// RunsUsingArtifact returns the run IDs whose graphs contain a used edge on
// the given artifact ID — "which analyses consumed this dataset?", the
// cross-run reuse question long-term preservation exists to answer. The
// lookup is an index probe on edge cause, not a table scan.
func (r *Repository) RunsUsingArtifact(artifactID string) ([]string, error) {
	return r.runsWithEdge("cause", artifactID, opm.Used)
}

// RunsGeneratingArtifact returns the run IDs whose graphs generated the
// given artifact, via an index probe on edge effect.
func (r *Repository) RunsGeneratingArtifact(artifactID string) ([]string, error) {
	return r.runsWithEdge("effect", artifactID, opm.WasGeneratedBy)
}

// annEncoder reuses the sort and row scratch needed to build annotation
// blobs. Encode carves each blob out of an internal arena that stays valid
// until the next Reset, so a flush encoding many dirty nodes allocates
// nothing once warm. Output is byte-identical to encodeAnnotations.
type annEncoder struct {
	keys []string
	row  storage.Row
	buf  []byte
}

func (e *annEncoder) Reset() { e.buf = e.buf[:0] }

func (e *annEncoder) Encode(m map[string]string) []byte {
	e.keys = e.keys[:0]
	for k := range m {
		e.keys = append(e.keys, k)
	}
	sort.Strings(e.keys)
	e.row = e.row[:0]
	for _, k := range e.keys {
		e.row = append(e.row, storage.S(k), storage.S(m[k]))
	}
	start := len(e.buf)
	e.buf = storage.EncodeRow(e.buf, e.row)
	return e.buf[start:len(e.buf):len(e.buf)]
}

// annotation encoding: simple length-prefixed key/value pairs via the row
// codec, reusing the storage wire format.
func encodeAnnotations(m map[string]string) ([]byte, error) {
	row := make(storage.Row, 0, len(m)*2)
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys) // deterministic order
	for _, k := range keys {
		row = append(row, storage.S(k), storage.S(m[k]))
	}
	return storage.EncodeRow(nil, row), nil
}

func decodeAnnotations(blob []byte) (map[string]string, error) {
	out := map[string]string{}
	if len(blob) == 0 {
		return out, nil
	}
	row, _, err := storage.DecodeRow(blob)
	if err != nil {
		return nil, fmt.Errorf("provenance: decode annotations: %w", err)
	}
	if len(row)%2 != 0 {
		return nil, fmt.Errorf("provenance: odd annotation list")
	}
	for i := 0; i < len(row); i += 2 {
		out[row[i].Str()] = row[i+1].Str()
	}
	return out, nil
}
