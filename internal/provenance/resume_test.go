package provenance

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/opm"
	"repro/internal/workflow"
)

// canonicalRun renders a graph in a run-independent, order-independent form:
// the run ID is scrubbed to "RUN", the wall-clock "duration" annotation is
// dropped, and node/edge lines are sorted. Two runs over the same inputs are
// equivalent iff their canonical forms match — the "byte-identical" contract
// crash-resume is held to.
func canonicalRun(g *opm.Graph, runID string) string {
	scrub := func(s string) string { return strings.ReplaceAll(s, runID, "RUN") }
	var lines []string
	for _, n := range g.Nodes() {
		var anns []string
		for k, v := range n.Annotations {
			if k == "duration" {
				continue
			}
			anns = append(anns, k+"="+scrub(v))
		}
		sort.Strings(anns)
		lines = append(lines, fmt.Sprintf("N|%d|%s|%s|%s|%s",
			n.Kind, scrub(n.ID), scrub(n.Label), scrub(n.Value), strings.Join(anns, ",")))
	}
	for _, e := range g.Edges() {
		lines = append(lines, fmt.Sprintf("E|%d|%s|%s|%s|%s",
			e.Kind, scrub(e.Effect), scrub(e.Cause), e.Role, scrub(e.Account)))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

func detectionInputs() map[string]workflow.Data {
	return map[string]workflow.Data{"metadata": workflow.List(
		workflow.Scalar("Elachistocleis ovalis"),
		workflow.Scalar("Hyla faber"),
		workflow.Scalar("Scinax fuscomarginatus"),
	)}
}

func TestHistoryPersistsAndReloads(t *testing.T) {
	repo, _ := openRepo(t)
	col := NewCollector("curator")
	w := repo.NewBatchWriter(BatchWriterOptions{})
	col.AddSink(w)
	eng := workflow.NewEventEngine(detectionRegistry())
	eng.Workers = 4
	res, err := eng.Run(context.Background(), detectionDef(), detectionInputs(), NewHistoryCapture(col))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	history, err := repo.History(res.RunID)
	if err != nil {
		t.Fatal(err)
	}
	if len(history) == 0 {
		t.Fatal("no history persisted")
	}
	for i, ev := range history {
		if ev.Seq != i {
			t.Fatalf("history seq gap at %d: %+v", i, ev)
		}
	}
	if history[0].Type != workflow.HistoryRunStarted {
		t.Fatalf("first event = %+v", history[0])
	}
	last := history[len(history)-1]
	if last.Type != workflow.HistoryRunFinished || last.Status != "completed" {
		t.Fatalf("last event = %+v", last)
	}
	var normDone, elements int
	for _, ev := range history {
		if ev.Activity == "Normalize" {
			switch ev.Type {
			case workflow.HistoryActivityCompleted:
				normDone++
				if ev.Iterations != 3 || !ev.Outputs["clean"].IsList() {
					t.Fatalf("Normalize completion = %+v", ev)
				}
			case workflow.HistoryIterationElement:
				elements++
			}
		}
	}
	if normDone != 1 || elements != 3 {
		t.Fatalf("Normalize events: %d completions, %d elements", normDone, elements)
	}
	// The reloaded history resumes the (already-finished) run verbatim: no
	// service re-runs, both processors replay, outputs rebuild from history.
	res2, err := workflow.NewEventEngine(detectionRegistry()).Resume(
		context.Background(), detectionDef(), detectionInputs(), res.RunID, history)
	if err != nil {
		t.Fatalf("resume from reloaded history: %v", err)
	}
	if len(res2.Invocations) != 0 || len(res2.Replayed) != 2 {
		t.Fatalf("resume re-ran services: %v %v", res2.Invocations, res2.Replayed)
	}
	if res2.Outputs["summary"].String() != res.Outputs["summary"].String() {
		t.Fatalf("outputs diverged: %q vs %q", res2.Outputs["summary"], res.Outputs["summary"])
	}
}

func TestUnfinishedRunsAndMarkAbandoned(t *testing.T) {
	repo, _ := openRepo(t)
	now := time.Date(2014, 3, 31, 12, 0, 0, 0, time.UTC)
	for i, st := range []RunStatus{RunRunning, RunCompleted, RunRunning, RunFailed} {
		info := RunInfo{RunID: fmt.Sprintf("run-%d", i), WorkflowID: "wf-x",
			WorkflowName: "X", StartedAt: now, Status: st}
		if st != RunRunning {
			info.FinishedAt = now.Add(time.Minute)
		}
		if err := repo.Store(info, opm.NewGraph()); err != nil {
			t.Fatal(err)
		}
	}
	open, err := repo.UnfinishedRuns()
	if err != nil {
		t.Fatal(err)
	}
	if len(open) != 2 {
		t.Fatalf("unfinished = %+v", open)
	}
	if err := repo.MarkAbandoned("run-0", "no resume handler", now.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	info, err := repo.Run("run-0")
	if err != nil {
		t.Fatal(err)
	}
	if info.Status != RunAbandoned || info.Error != "no resume handler" || info.FinishedAt.IsZero() {
		t.Fatalf("abandoned info = %+v", info)
	}
	// Abandoning is single-shot: terminal runs are refused.
	if err := repo.MarkAbandoned("run-0", "again", now); err == nil {
		t.Fatal("re-abandon accepted")
	}
	if err := repo.MarkAbandoned("run-1", "completed run", now); err == nil {
		t.Fatal("abandoning a completed run accepted")
	}
	open, err = repo.UnfinishedRuns()
	if err != nil {
		t.Fatal(err)
	}
	if len(open) != 1 || open[0].RunID != "run-2" {
		t.Fatalf("unfinished after abandon = %+v", open)
	}
}

// TestCrashResumeConvergesAtEveryCut is the provenance-layer half of the
// kill-at-every-cut contract: cut the delta stream after every prefix length
// 1..N-1, resume by replaying the persisted history through the event
// engine, and require the final graph to be canonically identical to an
// uninterrupted baseline.
func TestCrashResumeConvergesAtEveryCut(t *testing.T) {
	// Baseline: uninterrupted run through a batch writer.
	baseRepo, _ := openRepo(t)
	baseCol := NewCollector("curator")
	baseW := baseRepo.NewBatchWriter(BatchWriterOptions{})
	baseCol.AddSink(baseW)
	baseRes, err := workflow.NewEventEngine(detectionRegistry()).Run(
		context.Background(), detectionDef(), detectionInputs(), NewHistoryCapture(baseCol))
	if err != nil {
		t.Fatal(err)
	}
	if err := baseW.Close(); err != nil {
		t.Fatal(err)
	}
	baseG, err := baseRepo.Graph(baseRes.RunID)
	if err != nil {
		t.Fatal(err)
	}
	want := canonicalRun(baseG, baseRes.RunID)
	total := int(baseW.Metrics().Enqueued)
	if total < 10 {
		t.Fatalf("suspiciously short stream: %d deltas", total)
	}

	for cut := 1; cut < total; cut++ {
		t.Run(fmt.Sprintf("cut=%d", cut), func(t *testing.T) {
			repo, _ := openRepo(t)
			col := NewCollector("curator")
			w := repo.NewBatchWriter(BatchWriterOptions{})
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			crash := NewCrashSink(w, cut, cancel)
			col.AddSink(crash)
			_, runErr := workflow.NewEventEngine(detectionRegistry()).Run(
				ctx, detectionDef(), detectionInputs(), NewHistoryCapture(col))
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			if !crash.Crashed() {
				t.Fatalf("stream of %d deltas never hit cut %d", total, cut)
			}
			runID := col.Info().RunID
			info, err := repo.Run(runID)
			if err != nil {
				t.Fatal(err)
			}
			if info.Status != RunRunning {
				// The cancel landed after the engine already finished; the
				// finalize was dropped regardless, so this cannot happen.
				t.Fatalf("crashed run (engine err %v) has status %q", runErr, info.Status)
			}

			// Resume is replay: feed the persisted history prefix back in.
			history, err := repo.History(runID)
			if err != nil {
				t.Fatal(err)
			}
			prefix, err := repo.Graph(runID)
			if err != nil {
				t.Fatal(err)
			}
			rcol := NewResumeCollector("curator", prefix, info)
			rw, err := repo.NewResumeWriter(runID, BatchWriterOptions{})
			if err != nil {
				t.Fatal(err)
			}
			rcol.AddSink(rw)
			if _, err := workflow.NewEventEngine(detectionRegistry()).Resume(
				context.Background(), detectionDef(), detectionInputs(), runID, history, NewHistoryCapture(rcol)); err != nil {
				t.Fatalf("resume after cut %d: %v", cut, err)
			}
			if err := rw.Close(); err != nil {
				t.Fatal(err)
			}
			final, err := repo.Run(runID)
			if err != nil {
				t.Fatal(err)
			}
			if final.Status != RunCompleted {
				t.Fatalf("resumed run status = %q (%s)", final.Status, final.Error)
			}
			if !final.StartedAt.Equal(info.StartedAt) {
				t.Fatalf("resume restamped StartedAt: %v -> %v", info.StartedAt, final.StartedAt)
			}
			g, err := repo.Graph(runID)
			if err != nil {
				t.Fatal(err)
			}
			if got := canonicalRun(g, runID); got != want {
				t.Errorf("cut %d: resumed graph differs from baseline\nwant:\n%s\ngot:\n%s", cut, want, got)
			}
		})
	}
}
