package provenance

import (
	"time"

	"repro/internal/opm"
	"repro/internal/workflow"
)

// RunWriter is the streaming persistence surface of one run: a delta Sink
// plus the lifecycle and instrumentation methods of BatchWriter. Both the
// single-repository BatchWriter and the shard router's lazily-routed writer
// satisfy it, so core can stream a run's provenance without knowing which
// physical repository will own the rows.
type RunWriter interface {
	Sink
	// Close stops the writer after flushing everything emitted so far.
	Close() error
	// Err returns the first persistence error, if any.
	Err() error
	// Metrics snapshots the writer's counters.
	Metrics() WriterMetrics
	// QueueDepth is the current number of queued, unflushed deltas.
	QueueDepth() int
}

// Repo is the provenance-repository surface consumed by core, the web
// service and the preservation manager. *Repository implements it directly;
// shard.ProvenanceRouter implements it by routing per-run operations to the
// owning shard and scatter-gathering cross-run queries.
type Repo interface {
	// RunWriter opens a streaming writer for a new run.
	RunWriter(opts BatchWriterOptions) (RunWriter, error)
	// ResumeRunWriter opens a streaming writer preloaded with the persisted
	// prefix of an interrupted run.
	ResumeRunWriter(runID string, opts BatchWriterOptions) (RunWriter, error)
	// Store persists a complete run monolithically.
	Store(info RunInfo, g *opm.Graph) error

	Run(runID string) (RunInfo, error)
	Runs(workflowID string) ([]RunInfo, error)
	AllRuns() []RunInfo
	RunsPage(after string, limit int) ([]RunInfo, string, error)
	NodesPage(runID, after string, limit int) ([]*opm.Node, string, error)
	EdgesPage(runID string, after, limit int) ([]opm.Edge, int, error)
	Graph(runID string) (*opm.Graph, error)
	UnionGraph(runIDs ...string) (*opm.Graph, error)
	QualityOfProcess(runID, processor string) (map[string]string, error)
	RunsUsingArtifact(artifactID string) ([]string, error)
	RunsGeneratingArtifact(artifactID string) ([]string, error)

	History(runID string) ([]workflow.HistoryEvent, error)
	UnfinishedRuns() ([]RunInfo, error)
	MarkAbandoned(runID, reason string, at time.Time) error

	// AdvanceRunFence durably moves the run's fencing token forward in the
	// repository that owns the run's history rows. Strictly monotonic
	// (storage.ErrStaleFence on a stale token); a writer opened with
	// BatchWriterOptions.FenceToken below the advanced value can no longer
	// commit. RunFenceToken reads the current token (0 = never fenced).
	AdvanceRunFence(runID string, token int64) error
	RunFenceToken(runID string) int64

	// Snapshot returns a read-only view pinned to the current state, for
	// lock-free paginated reads (the COW snapshot of storage.DB.View).
	Snapshot() Repo
}

// RunWriter implements Repo over the repository's BatchWriter.
func (r *Repository) RunWriter(opts BatchWriterOptions) (RunWriter, error) {
	return r.NewBatchWriter(opts), nil
}

// ResumeRunWriter implements Repo over the repository's resume writer.
func (r *Repository) ResumeRunWriter(runID string, opts BatchWriterOptions) (RunWriter, error) {
	return r.NewResumeWriter(runID, opts)
}

// RunFenceName is the storage-fence resource guarding a run's history
// stream. Exported so orchestration can hand the same name to
// BatchWriterOptions and the run's StorageQueue.
func RunFenceName(runID string) string { return "run/" + runID }

// AdvanceRunFence implements Repo: a strictly-monotonic durable token bump
// in this repository's storage.
func (r *Repository) AdvanceRunFence(runID string, token int64) error {
	return r.db.AdvanceFence(RunFenceName(runID), token)
}

// RunFenceToken implements Repo.
func (r *Repository) RunFenceToken(runID string) int64 {
	return r.db.FenceToken(RunFenceName(runID))
}

// Snapshot implements Repo; it is View with an interface return type.
func (r *Repository) Snapshot() Repo { return r.View() }

var _ Repo = (*Repository)(nil)
var _ RunWriter = (*BatchWriter)(nil)
