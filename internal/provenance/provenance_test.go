package provenance

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/opm"
	"repro/internal/storage"
	"repro/internal/workflow"
)

// detectionDef builds a two-step pipeline shaped like the case study:
// metadata -> normalize -> resolve -> summary.
func detectionDef() *workflow.Definition {
	d := &workflow.Definition{
		ID: "wf-detect", Name: "Outdated Species Name Detection",
		Inputs:  []workflow.Port{{Name: "metadata"}},
		Outputs: []workflow.Port{{Name: "summary"}},
		Processors: []*workflow.Processor{
			{Name: "Normalize", Service: "normalize",
				Inputs:  []workflow.Port{{Name: "raw"}},
				Outputs: []workflow.Port{{Name: "clean"}}},
			{Name: "Catalog_of_life", Service: "resolve",
				Inputs:  []workflow.Port{{Name: "name"}},
				Outputs: []workflow.Port{{Name: "status"}}},
		},
		Links: []workflow.Link{
			{Source: workflow.Endpoint{Port: "metadata"}, Target: workflow.Endpoint{Processor: "Normalize", Port: "raw"}},
			{Source: workflow.Endpoint{Processor: "Normalize", Port: "clean"}, Target: workflow.Endpoint{Processor: "Catalog_of_life", Port: "name"}},
			{Source: workflow.Endpoint{Processor: "Catalog_of_life", Port: "status"}, Target: workflow.Endpoint{Port: "summary"}},
		},
	}
	when := time.Date(2013, 11, 12, 19, 58, 9, 0, time.UTC)
	d.AnnotateProcessor("Catalog_of_life", workflow.QualityKey("reputation"), "1", "expert", when)
	d.AnnotateProcessor("Catalog_of_life", workflow.QualityKey("availability"), "0.9", "expert", when)
	return d
}

func detectionRegistry() *workflow.Registry {
	reg := workflow.NewRegistry()
	reg.Register("normalize", func(_ context.Context, c workflow.Call) (map[string]workflow.Data, error) {
		return map[string]workflow.Data{"clean": workflow.Scalar(strings.TrimSpace(c.Input("raw").String()))}, nil
	})
	reg.Register("resolve", func(_ context.Context, c workflow.Call) (map[string]workflow.Data, error) {
		name := c.Input("name").String()
		status := "accepted"
		if name == "Elachistocleis ovalis" {
			status = "outdated"
		}
		return map[string]workflow.Data{"status": workflow.Scalar(name + "=" + status)}, nil
	})
	return reg
}

func runCaptured(t *testing.T, input string) (*Collector, *workflow.RunResult) {
	t.Helper()
	col := NewCollector("curator")
	res, err := workflow.NewEngine(detectionRegistry()).Run(
		context.Background(), detectionDef(),
		map[string]workflow.Data{"metadata": workflow.Scalar(input)}, col)
	if err != nil {
		t.Fatal(err)
	}
	return col, res
}

func TestCollectorBuildsGraph(t *testing.T) {
	col, res := runCaptured(t, " Elachistocleis ovalis ")
	g := col.Graph()
	info := col.Info()
	if info.Status != RunCompleted || info.RunID != res.RunID {
		t.Fatalf("info = %+v", info)
	}
	if info.WorkflowName != "Outdated Species Name Detection" {
		t.Fatalf("workflow name = %q", info.WorkflowName)
	}
	// Two processes, one agent, ≥3 artifacts (raw, clean, status).
	if got := len(g.NodesOfKind(opm.KindProcess)); got != 2 {
		t.Fatalf("process nodes = %d", got)
	}
	if got := len(g.NodesOfKind(opm.KindAgent)); got != 1 {
		t.Fatalf("agent nodes = %d", got)
	}
	if got := len(g.NodesOfKind(opm.KindArtifact)); got < 3 {
		t.Fatalf("artifact nodes = %d", got)
	}
	// The quality annotations were merged onto the resolver process node.
	pn, ok := g.Node("p:" + res.RunID + "/Catalog_of_life")
	if !ok {
		t.Fatal("resolver process node missing")
	}
	if pn.Annotations["quality.reputation"] != "1" || pn.Annotations["quality.availability"] != "0.9" {
		t.Fatalf("quality annotations = %v", pn.Annotations)
	}
	if pn.Annotations["service"] != "resolve" || pn.Annotations["iterations"] != "1" {
		t.Fatalf("provenance annotations = %v", pn.Annotations)
	}
	// The graph is legal and the summary artifact derives from the input.
	if probs := g.CheckLegality(); len(probs) != 0 {
		t.Fatalf("illegal graph: %v", probs)
	}
	outArts := col.OutputArtifacts(res)
	sumArt := outArts["summary"]
	if sumArt == "" {
		t.Fatal("no summary artifact")
	}
	anc, err := g.Ancestors(sumArt)
	if err != nil {
		t.Fatal(err)
	}
	if len(anc) < 4 { // input + intermediate + 2 processes (+ agent)
		t.Fatalf("ancestors of summary = %v", anc)
	}
	// Derivation chain exists end-to-end.
	inputArt := artifactID(workflow.Scalar(" Elachistocleis ovalis "))
	if path := g.DerivationPath(sumArt, inputArt); len(path) != 3 {
		t.Fatalf("derivation path = %v", path)
	}
	// wasTriggeredBy inferred between the two processes.
	trigs := g.EdgesOfKind(opm.WasTriggeredBy)
	if len(trigs) != 1 || trigs[0].Effect != "p:"+res.RunID+"/Catalog_of_life" {
		t.Fatalf("triggers = %+v", trigs)
	}
	// Agent controls both processes.
	if got := g.ControllersOf("p:" + res.RunID + "/Normalize"); len(got) != 1 || got[0] != "ag:curator" {
		t.Fatalf("controllers = %v", got)
	}
}

func TestCollectorFailedRun(t *testing.T) {
	reg := detectionRegistry()
	reg.Register("resolve", func(_ context.Context, c workflow.Call) (map[string]workflow.Data, error) {
		return nil, errors.New("authority down")
	})
	col := NewCollector("")
	_, err := workflow.NewEngine(reg).Run(context.Background(), detectionDef(),
		map[string]workflow.Data{"metadata": workflow.Scalar("X y")}, col)
	if err == nil {
		t.Fatal("run succeeded")
	}
	info := col.Info()
	if info.Status != RunFailed || !strings.Contains(info.Error, "authority down") {
		t.Fatalf("info = %+v", info)
	}
	// The failed process node carries the error annotation.
	pn, ok := col.Graph().Node("p:" + info.RunID + "/Catalog_of_life")
	if !ok {
		t.Fatal("failed process node missing")
	}
	if !strings.Contains(pn.Annotations["error"], "authority down") {
		t.Fatalf("error annotation = %v", pn.Annotations)
	}
	if col.Agent != "workflow-engine" {
		t.Fatalf("default agent = %q", col.Agent)
	}
}

func TestArtifactSharing(t *testing.T) {
	// The same datum used twice maps to a single artifact node.
	col, res := runCaptured(t, "Hyla faber")
	g := col.Graph()
	// "Hyla faber" is both the raw input and (after TrimSpace) the clean
	// value — identical strings, so one artifact.
	id := artifactID(workflow.Scalar("Hyla faber"))
	if _, ok := g.Node(id); !ok {
		t.Fatal("shared artifact missing")
	}
	users := g.ProcessesUsing(id)
	if len(users) != 2 {
		t.Fatalf("shared artifact used by %v", users)
	}
	_ = res
}

func TestTruncateLongValues(t *testing.T) {
	long := strings.Repeat("x", 1000)
	col := NewCollector("a")
	col.OnEvent(workflow.Event{Type: workflow.EventWorkflowStarted, RunID: "r", Time: time.Now(),
		Inputs: map[string]workflow.Data{"in": workflow.Scalar(long)}})
	n, ok := col.Graph().Node(artifactID(workflow.Scalar(long)))
	if !ok {
		t.Fatal("artifact missing")
	}
	if len(n.Value) > maxArtifactValue+4 {
		t.Fatalf("value not truncated: %d bytes", len(n.Value))
	}
}

func openRepo(t *testing.T) (*Repository, *storage.DB) {
	t.Helper()
	db, err := storage.Open(t.TempDir(), storage.Options{Sync: storage.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	repo, err := NewRepository(db)
	if err != nil {
		t.Fatal(err)
	}
	return repo, db
}

func TestRepositoryStoreAndReload(t *testing.T) {
	repo, _ := openRepo(t)
	col, res := runCaptured(t, "Elachistocleis ovalis")
	if err := repo.Store(col.Info(), col.Graph()); err != nil {
		t.Fatal(err)
	}
	info, err := repo.Run(res.RunID)
	if err != nil {
		t.Fatal(err)
	}
	if info.Status != RunCompleted || info.WorkflowID != "wf-detect" {
		t.Fatalf("reloaded info = %+v", info)
	}
	if info.FinishedAt.IsZero() || info.FinishedAt.Before(info.StartedAt) {
		t.Fatalf("timestamps = %+v", info)
	}
	g, err := repo.Graph(res.RunID)
	if err != nil {
		t.Fatal(err)
	}
	orig := col.Graph()
	if g.NodeCount() != orig.NodeCount() || g.EdgeCount() != orig.EdgeCount() {
		t.Fatalf("graph reload: %d/%d nodes, %d/%d edges",
			g.NodeCount(), orig.NodeCount(), g.EdgeCount(), orig.EdgeCount())
	}
	// Quality annotations survive the round trip.
	q, err := repo.QualityOfProcess(res.RunID, "Catalog_of_life")
	if err != nil {
		t.Fatal(err)
	}
	if q["reputation"] != "1" || q["availability"] != "0.9" {
		t.Fatalf("quality = %v", q)
	}
	// Lineage still works on the reloaded graph.
	outArt := col.OutputArtifacts(res)["summary"]
	anc, err := g.Ancestors(outArt)
	if err != nil || len(anc) < 4 {
		t.Fatalf("ancestors after reload = %v, %v", anc, err)
	}
}

func TestRepositoryQueries(t *testing.T) {
	repo, _ := openRepo(t)
	for i := 0; i < 3; i++ {
		col, _ := runCaptured(t, "Hyla faber")
		if err := repo.Store(col.Info(), col.Graph()); err != nil {
			t.Fatal(err)
		}
	}
	runs, err := repo.Runs("wf-detect")
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 3 {
		t.Fatalf("runs = %d", len(runs))
	}
	if len(repo.AllRuns()) != 3 {
		t.Fatalf("AllRuns = %d", len(repo.AllRuns()))
	}
	if _, err := repo.Run("run-does-not-exist"); !errors.Is(err, ErrRunNotFound) {
		t.Fatalf("missing run: %v", err)
	}
	if _, err := repo.Graph("run-does-not-exist"); !errors.Is(err, ErrRunNotFound) {
		t.Fatalf("missing graph: %v", err)
	}
	if _, err := repo.QualityOfProcess(runs[0].RunID, "NoSuchProc"); err == nil {
		t.Fatal("quality of missing processor succeeded")
	}
	// Duplicate store is rejected (atomic batch).
	col, _ := runCaptured(t, "Hyla faber")
	if err := repo.Store(col.Info(), col.Graph()); err != nil {
		t.Fatal(err)
	}
	if err := repo.Store(col.Info(), col.Graph()); err == nil {
		t.Fatal("duplicate run stored")
	}
	if err := repo.Store(RunInfo{}, opm.NewGraph()); err == nil {
		t.Fatal("run without ID stored")
	}
}

func TestRepositorySurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	db, err := storage.Open(dir, storage.Options{Sync: storage.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	repo, err := NewRepository(db)
	if err != nil {
		t.Fatal(err)
	}
	col, res := runCaptured(t, "Hyla faber")
	if err := repo.Store(col.Info(), col.Graph()); err != nil {
		t.Fatal(err)
	}
	db.Close()

	db2, err := storage.Open(dir, storage.Options{Sync: storage.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	repo2, err := NewRepository(db2)
	if err != nil {
		t.Fatal(err)
	}
	g, err := repo2.Graph(res.RunID)
	if err != nil {
		t.Fatal(err)
	}
	if g.NodeCount() == 0 {
		t.Fatal("graph lost across reopen")
	}
}

func TestPerElementProvenance(t *testing.T) {
	// Feed a list through the detection pipeline: each element's result must
	// trace back to its own input name.
	col := NewCollector("curator")
	input := workflow.List(
		workflow.Scalar("Elachistocleis ovalis"),
		workflow.Scalar("Hyla faber"),
	)
	_, err := workflow.NewEngine(detectionRegistry()).Run(
		context.Background(), detectionDef(),
		map[string]workflow.Data{"metadata": input}, col)
	if err != nil {
		t.Fatal(err)
	}
	g := col.Graph()
	// The per-element result of the resolver for "Hyla faber" derives from
	// the element "Hyla faber" (not from the whole list).
	elemIn := artifactID(workflow.Scalar("Hyla faber"))
	elemOut := artifactID(workflow.Scalar("Hyla faber=accepted"))
	path := g.DerivationPath(elemOut, elemIn)
	if len(path) == 0 {
		t.Fatal("no element-level derivation path")
	}
	// And the other element's result must NOT derive from this input.
	otherOut := artifactID(workflow.Scalar("Elachistocleis ovalis=outdated"))
	if p := g.DerivationPath(otherOut, elemIn); p != nil {
		t.Fatalf("cross-element contamination: %v", p)
	}
	// Graph still legal.
	if probs := g.CheckLegality(); len(probs) != 0 {
		t.Fatalf("illegal: %v", probs)
	}
}

func TestPerElementProvenanceCap(t *testing.T) {
	col := NewCollector("x")
	col.MaxElements = 2
	items := make([]workflow.Data, 5)
	for i := range items {
		items[i] = workflow.Scalar(fmt.Sprintf("Generated name%d", i))
	}
	_, err := workflow.NewEngine(detectionRegistry()).Run(
		context.Background(), detectionDef(),
		map[string]workflow.Data{"metadata": workflow.List(items...)}, col)
	if err != nil {
		t.Fatal(err)
	}
	// Only the first 2 elements got derivation edges per processor; the
	// others appear solely inside lists.
	g := col.Graph()
	elem3Out := artifactID(workflow.Scalar("Generated name3=accepted"))
	if _, ok := g.Node(elem3Out); ok {
		// The node may exist via the resolve stage inputs of Summarize? No:
		// Summarize consumes the whole list, not elements. It must be absent.
		t.Fatal("element beyond cap was materialized")
	}
	// Disabled entirely with negative cap.
	col2 := NewCollector("x")
	col2.MaxElements = -1
	_, err = workflow.NewEngine(detectionRegistry()).Run(
		context.Background(), detectionDef(),
		map[string]workflow.Data{"metadata": workflow.List(items...)}, col2)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := col2.Graph().Node(artifactID(workflow.Scalar("Generated name0=accepted"))); ok {
		t.Fatal("element provenance not disabled")
	}
}

func TestUnionGraph(t *testing.T) {
	repo, _ := openRepo(t)
	col1, _ := runCaptured(t, "Hyla faber")
	col2, _ := runCaptured(t, "Hyla faber")
	if err := repo.Store(col1.Info(), col1.Graph()); err != nil {
		t.Fatal(err)
	}
	if err := repo.Store(col2.Info(), col2.Graph()); err != nil {
		t.Fatal(err)
	}
	union, err := repo.UnionGraph(col1.Info().RunID, col2.Info().RunID)
	if err != nil {
		t.Fatal(err)
	}
	// Shared input artifact, two per-run process chains.
	shared := artifactID(workflow.Scalar("Hyla faber"))
	users := union.ProcessesUsing(shared)
	if len(users) != 4 { // Normalize + Catalog_of_life, per run
		t.Fatalf("union users = %v", users)
	}
	if len(union.Accounts()) != 2 {
		t.Fatalf("union accounts = %v", union.Accounts())
	}
	if probs := union.CheckLegality(); len(probs) != 0 {
		t.Fatalf("union illegal: %v", probs)
	}
	// Cross-run lineage: descendants of the shared input span both runs.
	desc, err := union.Descendants(shared)
	if err != nil {
		t.Fatal(err)
	}
	runsSeen := map[string]bool{}
	for _, d := range desc {
		for _, run := range []string{col1.Info().RunID, col2.Info().RunID} {
			if strings.Contains(d, run) {
				runsSeen[run] = true
			}
		}
	}
	if len(runsSeen) != 2 {
		t.Fatalf("descendants span %d runs: %v", len(runsSeen), desc)
	}
	if _, err := repo.UnionGraph("run-nope"); !errors.Is(err, ErrRunNotFound) {
		t.Fatalf("missing run union: %v", err)
	}
}

func TestRunsUsingArtifact(t *testing.T) {
	repo, _ := openRepo(t)
	// Two runs over the same input datum share the input artifact.
	col1, _ := runCaptured(t, "Hyla faber")
	col2, _ := runCaptured(t, "Hyla faber")
	col3, _ := runCaptured(t, "Scinax fuscomarginatus")
	for _, c := range []*Collector{col1, col2, col3} {
		if err := repo.Store(c.Info(), c.Graph()); err != nil {
			t.Fatal(err)
		}
	}
	shared := artifactID(workflow.Scalar("Hyla faber"))
	runs, err := repo.RunsUsingArtifact(shared)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2 {
		t.Fatalf("runs using shared artifact = %v", runs)
	}
	if runs[0] > runs[1] {
		t.Fatal("unsorted runs")
	}
	other := artifactID(workflow.Scalar("Scinax fuscomarginatus"))
	runs, err = repo.RunsUsingArtifact(other)
	if err != nil || len(runs) != 1 {
		t.Fatalf("runs using other artifact = %v, %v", runs, err)
	}
	if got, _ := repo.RunsUsingArtifact("a:none"); len(got) != 0 {
		t.Fatalf("phantom artifact used by %v", got)
	}
	// Generators: each run generates its own summary artifact.
	outArt := col1.OutputArtifacts(&workflow.RunResult{Outputs: map[string]workflow.Data{
		"summary": workflow.Scalar("Hyla faber=accepted"),
	}})["summary"]
	gens, err := repo.RunsGeneratingArtifact(outArt)
	if err != nil {
		t.Fatal(err)
	}
	if len(gens) != 2 { // both Hyla runs generate the identical summary datum
		t.Fatalf("generating runs = %v", gens)
	}
}

func TestAnnotationCodec(t *testing.T) {
	m := map[string]string{"b": "2", "a": "1", "quality.accuracy": "0.93"}
	blob, err := encodeAnnotations(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeAnnotations(blob)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got["a"] != "1" || got["quality.accuracy"] != "0.93" {
		t.Fatalf("round trip = %v", got)
	}
	if got, err := decodeAnnotations(nil); err != nil || len(got) != 0 {
		t.Fatalf("empty decode = %v, %v", got, err)
	}
	if _, err := decodeAnnotations([]byte{0xFF, 0xFF}); err == nil {
		t.Fatal("garbage annotations accepted")
	}
}
