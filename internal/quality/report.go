package quality

import (
	"fmt"
	"sort"
	"strings"
)

// Report renders an assessment as the text block shown to end users (the
// paper's §IV.C output: "the original FNJV metadata, compared with an
// external authoritative source (reputation 1, availability 0.9) is 93%
// accurate").
func Report(a *Assessment) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Quality assessment — goal %q, subject %q\n", a.Goal, a.Subject)
	fmt.Fprintf(&b, "assessed at %s\n\n", a.At.Format("2006-01-02 15:04:05 MST"))

	dims := make([]string, 0, len(a.Dimensions))
	for d := range a.Dimensions {
		dims = append(dims, d)
	}
	sort.Strings(dims)
	fmt.Fprintf(&b, "%-16s %8s\n", "dimension", "score")
	for _, d := range dims {
		fmt.Fprintf(&b, "%-16s %8.3f\n", d, a.Dimensions[d])
	}
	if len(a.Missing) > 0 {
		fmt.Fprintf(&b, "\nunavailable dimensions: %s\n", strings.Join(a.Missing, ", "))
	}
	fmt.Fprintf(&b, "\nutility index: %.3f (%s)\n", a.Utility, acceptWord(a.Accepted))
	fmt.Fprintf(&b, "\nmetric detail:\n")
	for _, r := range a.Results {
		if r.Err != "" {
			fmt.Fprintf(&b, "  %-28s [%s] unavailable: %s\n", r.Metric, r.Dimension, r.Err)
			continue
		}
		fmt.Fprintf(&b, "  %-28s [%s] %.3f — %s\n", r.Metric, r.Dimension, r.Score.Value, r.Score.Detail)
	}
	return b.String()
}

func acceptWord(ok bool) string {
	if ok {
		return "accept"
	}
	return "reject"
}

// Summary renders one line per ranked subject.
func Summary(ranked []Ranked) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-4s %-32s %8s %s\n", "rank", "subject", "utility", "verdict")
	for i, r := range ranked {
		fmt.Fprintf(&b, "%-4d %-32s %8.3f %s\n", i+1, r.Subject, r.Assessment.Utility, acceptWord(r.Assessment.Accepted))
	}
	return b.String()
}
