package quality

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

// paperManager reproduces the §IV.C setup: species-name accuracy measured
// from counts, reputation and availability read from annotations.
func paperManager(t *testing.T) *Manager {
	t.Helper()
	m := NewManager()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(m.Register(RatioMetric("species-name-accuracy", DimAccuracy,
		"fraction of names still accepted by the authority",
		func(ctx *Context) (int, int, error) {
			okv, _ := ctx.Value("names.correct")
			tot, _ := ctx.Value("names.total")
			return okv.(int), tot.(int), nil
		})))
	must(m.Register(AnnotationMetric("authority-reputation", DimReputation)))
	must(m.Register(AnnotationMetric("authority-availability", DimAvailability)))
	return m
}

func paperContext() *Context {
	return &Context{
		Subject: "FNJV species-name metadata",
		Values: map[string]any{
			"names.correct": 1795, // 1929 - 134
			"names.total":   1929,
		},
		Annotations: map[string]string{
			"reputation":   "1",
			"availability": "0.9",
		},
		Now: time.Date(2013, 11, 12, 19, 58, 9, 0, time.UTC),
	}
}

func paperGoal() Goal {
	return Goal{
		Name: "long-term-preservation",
		Weights: map[string]float64{
			DimAccuracy:     2,
			DimReputation:   1,
			DimAvailability: 1,
		},
	}
}

func TestAssessPaperNumbers(t *testing.T) {
	m := paperManager(t)
	a, err := m.Assess(paperGoal(), paperContext())
	if err != nil {
		t.Fatal(err)
	}
	// 1795/1929 = 0.9305... — the paper reports "93% accurate".
	if acc := a.Dimensions[DimAccuracy]; acc < 0.93 || acc >= 0.94 {
		t.Fatalf("accuracy = %.4f, want ≈0.93", acc)
	}
	if a.Dimensions[DimReputation] != 1 {
		t.Fatalf("reputation = %v", a.Dimensions[DimReputation])
	}
	if a.Dimensions[DimAvailability] != 0.9 {
		t.Fatalf("availability = %v", a.Dimensions[DimAvailability])
	}
	want := (2*0.930533 + 1*1 + 1*0.9) / 4
	if diff := a.Utility - want; diff > 0.001 || diff < -0.001 {
		t.Fatalf("utility = %.4f, want %.4f", a.Utility, want)
	}
	if !a.Accepted {
		t.Fatal("high-quality subject rejected")
	}
	if len(a.Missing) != 0 {
		t.Fatalf("missing = %v", a.Missing)
	}
}

func TestAssessMissingDimension(t *testing.T) {
	m := paperManager(t)
	goal := paperGoal()
	goal.Weights[DimConsistency] = 1 // no metric registered for it
	a, err := m.Assess(goal, paperContext())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Missing) != 1 || a.Missing[0] != DimConsistency {
		t.Fatalf("missing = %v", a.Missing)
	}
	// Utility renormalizes over available dimensions only.
	if a.Utility <= 0 || a.Utility > 1 {
		t.Fatalf("utility = %f", a.Utility)
	}
}

func TestAssessFailingMetricIsReported(t *testing.T) {
	m := paperManager(t)
	ctx := paperContext()
	delete(ctx.Annotations, "availability")
	a, err := m.Assess(paperGoal(), ctx)
	if err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, r := range a.Results {
		if r.Metric == "authority-availability" && r.Err != "" {
			found = true
		}
	}
	if !found {
		t.Fatal("failing metric not surfaced")
	}
	// Dimension with only a failing metric is missing.
	if len(a.Missing) != 1 || a.Missing[0] != DimAvailability {
		t.Fatalf("missing = %v", a.Missing)
	}
}

func TestAssessValidation(t *testing.T) {
	m := paperManager(t)
	if _, err := m.Assess(Goal{Name: "empty"}, paperContext()); err == nil {
		t.Fatal("goal without weights accepted")
	}
	m2 := NewManager()
	if _, err := m2.Assess(paperGoal(), paperContext()); !errors.Is(err, ErrNoMetrics) {
		t.Fatalf("no metrics: %v", err)
	}
	if err := m.Register(Metric{}); err == nil {
		t.Fatal("empty metric registered")
	}
	if err := m.Register(AnnotationMetric("authority-reputation", DimReputation)); !errors.Is(err, ErrDuplicateMetric) {
		t.Fatalf("duplicate: %v", err)
	}
	// Nil context and zero Now are tolerated.
	m3 := NewManager()
	m3.Register(Metric{Name: "const", Dimension: "d", Compute: func(ctx *Context) (Score, error) {
		if ctx.Now.IsZero() {
			return Score{}, errors.New("Now not defaulted")
		}
		return Score{Value: 1}, nil
	}})
	if _, err := m3.Assess(Goal{Name: "g", Weights: map[string]float64{"d": 1}}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestScoreClamping(t *testing.T) {
	m := NewManager()
	m.Register(Metric{Name: "wild", Dimension: "d", Compute: func(*Context) (Score, error) {
		return Score{Value: 42}, nil
	}})
	a, err := m.Assess(Goal{Name: "g", Weights: map[string]float64{"d": 1}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.Dimensions["d"] != 1 {
		t.Fatalf("score not clamped: %f", a.Dimensions["d"])
	}
}

func TestUtilityBoundedProperty(t *testing.T) {
	f := func(ok, extra uint16, w1, w2 uint8) bool {
		total := int(ok) + int(extra)
		if total == 0 {
			total = 1
		}
		m := NewManager()
		m.Register(RatioMetric("r", "d1", "", func(*Context) (int, int, error) {
			return int(ok), total, nil
		}))
		m.Register(Metric{Name: "c", Dimension: "d2", Compute: func(*Context) (Score, error) {
			return Score{Value: 0.5}, nil
		}})
		goal := Goal{Name: "g", Weights: map[string]float64{
			"d1": float64(w1%10) + 0.1,
			"d2": float64(w2%10) + 0.1,
		}}
		a, err := m.Assess(goal, nil)
		if err != nil {
			return false
		}
		return a.Utility >= 0 && a.Utility <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRatioMetricEdgeCases(t *testing.T) {
	m := RatioMetric("r", DimAccuracy, "", func(*Context) (int, int, error) { return 0, 0, nil })
	s, err := m.Compute(&Context{})
	if err != nil || s.Value != 0 {
		t.Fatalf("zero-total ratio = %+v, %v", s, err)
	}
	mErr := RatioMetric("r2", DimAccuracy, "", func(*Context) (int, int, error) {
		return 0, 0, errors.New("source down")
	})
	if _, err := mErr.Compute(&Context{}); err == nil {
		t.Fatal("error swallowed")
	}
}

func TestAnnotationMetricErrors(t *testing.T) {
	m := AnnotationMetric("a", DimReputation)
	if _, err := m.Compute(&Context{Annotations: map[string]string{}}); err == nil {
		t.Fatal("missing annotation accepted")
	}
	if _, err := m.Compute(&Context{Annotations: map[string]string{"reputation": "high"}}); err == nil {
		t.Fatal("non-numeric annotation accepted")
	}
}

func TestObservedMetric(t *testing.T) {
	m := ObservedMetric("obs", DimAvailability, "client.availability")
	s, err := m.Compute(&Context{Values: map[string]any{"client.availability": 0.87}})
	if err != nil || s.Value != 0.87 {
		t.Fatalf("observed = %+v, %v", s, err)
	}
	if _, err := m.Compute(&Context{Values: map[string]any{}}); err == nil {
		t.Fatal("missing key accepted")
	}
	if _, err := m.Compute(&Context{Values: map[string]any{"client.availability": "x"}}); err == nil {
		t.Fatal("non-numeric value accepted")
	}
	s, err = m.Compute(&Context{Values: map[string]any{"client.availability": 1}})
	if err != nil || s.Value != 1 {
		t.Fatalf("int value = %+v, %v", s, err)
	}
}

func TestTimelinessMetric(t *testing.T) {
	now := time.Date(2014, 1, 1, 0, 0, 0, 0, time.UTC)
	m := TimelinessMetric("t", "last", 100*24*time.Hour)
	fresh, err := m.Compute(&Context{Now: now, Values: map[string]any{"last": now}})
	if err != nil || fresh.Value != 1 {
		t.Fatalf("fresh = %+v, %v", fresh, err)
	}
	half, _ := m.Compute(&Context{Now: now, Values: map[string]any{"last": now.Add(-50 * 24 * time.Hour)}})
	if half.Value < 0.49 || half.Value > 0.51 {
		t.Fatalf("half-age = %f", half.Value)
	}
	old, _ := m.Compute(&Context{Now: now, Values: map[string]any{"last": now.Add(-300 * 24 * time.Hour)}})
	if old.Value != 0 {
		t.Fatalf("stale = %f", old.Value)
	}
	future, _ := m.Compute(&Context{Now: now, Values: map[string]any{"last": now.Add(24 * time.Hour)}})
	if future.Value != 1 {
		t.Fatalf("future-dated = %f", future.Value)
	}
	if _, err := m.Compute(&Context{Now: now, Values: map[string]any{}}); err == nil {
		t.Fatal("missing key accepted")
	}
	if _, err := m.Compute(&Context{Now: now, Values: map[string]any{"last": "yesterday"}}); err == nil {
		t.Fatal("wrong type accepted")
	}
}

func TestRank(t *testing.T) {
	m := NewManager()
	m.Register(ObservedMetric("score", DimAccuracy, "v"))
	goal := Goal{Name: "g", Weights: map[string]float64{DimAccuracy: 1}, AcceptThreshold: 0.6}
	ctxs := []*Context{
		{Subject: "low", Values: map[string]any{"v": 0.2}},
		{Subject: "high", Values: map[string]any{"v": 0.9}},
		{Subject: "mid", Values: map[string]any{"v": 0.6}},
	}
	ranked, err := m.Rank(goal, ctxs)
	if err != nil {
		t.Fatal(err)
	}
	if ranked[0].Subject != "high" || ranked[1].Subject != "mid" || ranked[2].Subject != "low" {
		t.Fatalf("order = %v,%v,%v", ranked[0].Subject, ranked[1].Subject, ranked[2].Subject)
	}
	if !ranked[0].Assessment.Accepted || !ranked[1].Assessment.Accepted || ranked[2].Assessment.Accepted {
		t.Fatal("threshold application wrong")
	}
	// Ties break by subject.
	tie, err := m.Rank(goal, []*Context{
		{Subject: "b", Values: map[string]any{"v": 0.5}},
		{Subject: "a", Values: map[string]any{"v": 0.5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if tie[0].Subject != "a" {
		t.Fatalf("tie order = %v", tie[0].Subject)
	}
	// Error propagation.
	if _, err := m.Rank(Goal{Name: "g"}, ctxs); err == nil {
		t.Fatal("bad goal accepted in Rank")
	}
}

func TestCompare(t *testing.T) {
	before := &Assessment{
		Utility:    0.94,
		Dimensions: map[string]float64{DimAccuracy: 0.93, DimAvailability: 0.9, DimReputation: 1},
	}
	after := &Assessment{
		Utility:    0.90,
		Dimensions: map[string]float64{DimAccuracy: 0.85, DimAvailability: 0.95, "novel": 0.5},
	}
	deltas, du := Compare(before, after)
	if len(deltas) != 2 { // reputation and "novel" are one-sided, skipped
		t.Fatalf("deltas = %+v", deltas)
	}
	// Most-degraded first.
	if deltas[0].Dimension != DimAccuracy || deltas[0].Change > -0.079 {
		t.Fatalf("first delta = %+v", deltas[0])
	}
	if deltas[1].Dimension != DimAvailability || deltas[1].Change < 0.049 {
		t.Fatalf("second delta = %+v", deltas[1])
	}
	if du > -0.039 || du < -0.041 {
		t.Fatalf("utility change = %f", du)
	}
}

func TestReportRendering(t *testing.T) {
	m := paperManager(t)
	a, err := m.Assess(paperGoal(), paperContext())
	if err != nil {
		t.Fatal(err)
	}
	text := Report(a)
	for _, want := range []string{
		"FNJV species-name metadata",
		"accuracy",
		"0.93",
		"reputation",
		"availability",
		"0.900",
		"utility index",
		"accept",
		"1795 of 1929 (93.1%)",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("report missing %q:\n%s", want, text)
		}
	}
	ranked, _ := m.Rank(paperGoal(), []*Context{paperContext()})
	sum := Summary(ranked)
	if !strings.Contains(sum, "FNJV species-name metadata") || !strings.Contains(sum, "accept") {
		t.Errorf("summary:\n%s", sum)
	}
}

func TestReportShowsFailures(t *testing.T) {
	m := NewManager()
	m.Register(Metric{Name: "broken", Dimension: "d", Compute: func(*Context) (Score, error) {
		return Score{}, fmt.Errorf("no data")
	}})
	m.Register(Metric{Name: "works", Dimension: "d", Compute: func(*Context) (Score, error) {
		return Score{Value: 1}, nil
	}})
	a, err := m.Assess(Goal{Name: "g", Weights: map[string]float64{"d": 1, "ghost": 1}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	text := Report(a)
	if !strings.Contains(text, "unavailable: no data") || !strings.Contains(text, "unavailable dimensions: ghost") {
		t.Errorf("report:\n%s", text)
	}
}
