// Package quality implements the Data Quality Manager of the architecture:
// a user-extensible quality metamodel in the style of Lemos/Qbox — quality
// goals reference dimensions, dimensions are measured by metrics, and
// metrics are computed by pluggable measurement methods that may read the
// provenance repository, the adapter's workflow annotations, or external
// data sources. Assessments aggregate metric scores per dimension and into a
// single utility index used for scoring and ranking (as in Gamble & Goble's
// decision networks).
package quality

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"time"
)

// Canonical dimension names. Users may register metrics under any dimension
// name; these constants cover the ones the literature cites most and the
// two the paper's Listing 1 annotates.
const (
	DimAccuracy     = "accuracy"
	DimCompleteness = "completeness"
	DimTimeliness   = "timeliness"
	DimConsistency  = "consistency"
	DimReputation   = "reputation"
	DimAvailability = "availability"
)

// Score is the result of one metric: a value in [0,1] plus a human-readable
// explanation of how it was obtained.
type Score struct {
	Value  float64
	Detail string
}

// Context carries the inputs a measurement method may consult. Values is an
// open bag supplied by the caller (record sets, client stats, report rows);
// Annotations carries the quality annotations extracted from provenance for
// the subject under assessment (dimension -> value).
type Context struct {
	Subject     string
	Values      map[string]any
	Annotations map[string]string
	Now         time.Time
}

// Value fetches a context value.
func (c *Context) Value(key string) (any, bool) {
	v, ok := c.Values[key]
	return v, ok
}

// MetricFunc computes one metric.
type MetricFunc func(ctx *Context) (Score, error)

// Metric binds a named measurement method to a quality dimension.
type Metric struct {
	Name        string
	Dimension   string
	Description string
	Compute     MetricFunc
}

// Goal is a named quality goal: the dimensions the end user cares about and
// their relative weights (the paper: "quality metrics are computed as
// defined by end users").
type Goal struct {
	Name        string
	Description string
	Weights     map[string]float64
	// AcceptThreshold is the minimum utility for Accept (default 0.5).
	AcceptThreshold float64
}

// Manager registers metrics and runs assessments.
type Manager struct {
	metrics map[string]Metric
}

// Registration and assessment errors.
var (
	ErrDuplicateMetric = errors.New("quality: duplicate metric")
	ErrNoMetrics       = errors.New("quality: no metrics for goal dimensions")
)

// NewManager builds an empty manager.
func NewManager() *Manager { return &Manager{metrics: make(map[string]Metric)} }

// Register adds a metric. Metric names are unique.
func (m *Manager) Register(metric Metric) error {
	if metric.Name == "" || metric.Dimension == "" || metric.Compute == nil {
		return fmt.Errorf("quality: metric needs name, dimension and compute func")
	}
	if _, dup := m.metrics[metric.Name]; dup {
		return fmt.Errorf("%w: %q", ErrDuplicateMetric, metric.Name)
	}
	m.metrics[metric.Name] = metric
	return nil
}

// Metrics lists registered metrics sorted by name.
func (m *Manager) Metrics() []Metric {
	out := make([]Metric, 0, len(m.metrics))
	for _, mt := range m.metrics {
		out = append(out, mt)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// MetricResult is one computed metric inside an assessment.
type MetricResult struct {
	Metric    string
	Dimension string
	Score     Score
	Err       string // non-empty when the metric could not be computed
}

// Assessment is the outcome of assessing one subject against one goal.
type Assessment struct {
	Goal       string
	Subject    string
	At         time.Time
	Results    []MetricResult
	Dimensions map[string]float64 // mean score per dimension
	// Utility is the weight-normalized aggregate over the goal's dimensions
	// — the scoring/ranking index.
	Utility float64
	// Accepted applies the goal's accept threshold to Utility.
	Accepted bool
	// Missing lists goal dimensions no registered metric could measure (the
	// paper: "not all quality dimensions requested by the end user may be
	// available").
	Missing []string
}

// Assess computes every registered metric whose dimension the goal weights,
// aggregates per dimension, and derives the utility index.
func (m *Manager) Assess(goal Goal, ctx *Context) (*Assessment, error) {
	if len(goal.Weights) == 0 {
		return nil, fmt.Errorf("quality: goal %q has no weighted dimensions", goal.Name)
	}
	if ctx == nil {
		ctx = &Context{}
	}
	if ctx.Now.IsZero() {
		ctx.Now = time.Now()
	}
	a := &Assessment{
		Goal:       goal.Name,
		Subject:    ctx.Subject,
		At:         ctx.Now,
		Dimensions: map[string]float64{},
	}
	perDim := map[string][]float64{}
	for _, metric := range m.Metrics() {
		if _, wanted := goal.Weights[metric.Dimension]; !wanted {
			continue
		}
		res := MetricResult{Metric: metric.Name, Dimension: metric.Dimension}
		score, err := metric.Compute(ctx)
		if err != nil {
			res.Err = err.Error()
		} else {
			score.Value = clamp01(score.Value)
			res.Score = score
			perDim[metric.Dimension] = append(perDim[metric.Dimension], score.Value)
		}
		a.Results = append(a.Results, res)
	}
	if len(perDim) == 0 {
		return nil, fmt.Errorf("%w: goal %q", ErrNoMetrics, goal.Name)
	}
	var weightSum, weighted float64
	for dim, weight := range goal.Weights {
		vals, ok := perDim[dim]
		if !ok {
			a.Missing = append(a.Missing, dim)
			continue
		}
		mean := 0.0
		for _, v := range vals {
			mean += v
		}
		mean /= float64(len(vals))
		a.Dimensions[dim] = mean
		weighted += weight * mean
		weightSum += weight
	}
	sort.Strings(a.Missing)
	if weightSum > 0 {
		a.Utility = weighted / weightSum
	}
	threshold := goal.AcceptThreshold
	if threshold == 0 {
		threshold = 0.5
	}
	a.Accepted = a.Utility >= threshold
	return a, nil
}

func clamp01(x float64) float64 {
	if math.IsNaN(x) {
		return 0
	}
	return math.Max(0, math.Min(1, x))
}

// --- Built-in measurement-method constructors ---

// RatioMetric builds a metric from a correct/total counter: accuracy as "a
// percentage of correct names" (§IV.C), completeness as filled/expected, etc.
func RatioMetric(name, dimension, description string, count func(ctx *Context) (ok, total int, err error)) Metric {
	return Metric{
		Name: name, Dimension: dimension, Description: description,
		Compute: func(ctx *Context) (Score, error) {
			ok, total, err := count(ctx)
			if err != nil {
				return Score{}, err
			}
			if total <= 0 {
				return Score{Value: 0, Detail: "no items to assess"}, nil
			}
			v := float64(ok) / float64(total)
			return Score{Value: v, Detail: fmt.Sprintf("%d of %d (%.1f%%)", ok, total, 100*v)}, nil
		},
	}
}

// AnnotationMetric reads a dimension's value straight from the provenance
// annotations (the Workflow Adapter's Q(...) assertions — source (b) of the
// Data Quality Manager).
func AnnotationMetric(name, dimension string) Metric {
	return Metric{
		Name: name, Dimension: dimension,
		Description: "expert-asserted " + dimension + " from workflow annotations",
		Compute: func(ctx *Context) (Score, error) {
			raw, ok := ctx.Annotations[dimension]
			if !ok {
				return Score{}, fmt.Errorf("quality: no %q annotation on subject %q", dimension, ctx.Subject)
			}
			v, err := strconv.ParseFloat(raw, 64)
			if err != nil {
				return Score{}, fmt.Errorf("quality: annotation %q=%q is not numeric", dimension, raw)
			}
			return Score{Value: v, Detail: fmt.Sprintf("annotated %s=%s", dimension, raw)}, nil
		},
	}
}

// ObservedMetric reads a numeric value from the context's value bag, for
// measurements produced elsewhere (e.g. the authority client's observed
// availability — source (c), external data sources).
func ObservedMetric(name, dimension, valueKey string) Metric {
	return Metric{
		Name: name, Dimension: dimension,
		Description: "measured " + dimension + " from " + valueKey,
		Compute: func(ctx *Context) (Score, error) {
			raw, ok := ctx.Value(valueKey)
			if !ok {
				return Score{}, fmt.Errorf("quality: context has no %q", valueKey)
			}
			switch v := raw.(type) {
			case float64:
				return Score{Value: v, Detail: fmt.Sprintf("observed %s=%.3f", dimension, v)}, nil
			case int:
				return Score{Value: float64(v), Detail: fmt.Sprintf("observed %s=%d", dimension, v)}, nil
			default:
				return Score{}, fmt.Errorf("quality: context %q has non-numeric type %T", valueKey, raw)
			}
		},
	}
}

// TimelinessMetric scores freshness: 1 at age 0 decaying linearly to 0 at
// maxAge — "curated (meta)data that in the past was reliable may have its
// content degraded with time".
func TimelinessMetric(name, lastCuratedKey string, maxAge time.Duration) Metric {
	return Metric{
		Name: name, Dimension: DimTimeliness,
		Description: fmt.Sprintf("linear decay over %s since last curation", maxAge),
		Compute: func(ctx *Context) (Score, error) {
			raw, ok := ctx.Value(lastCuratedKey)
			if !ok {
				return Score{}, fmt.Errorf("quality: context has no %q", lastCuratedKey)
			}
			last, ok := raw.(time.Time)
			if !ok {
				return Score{}, fmt.Errorf("quality: %q is not a time.Time", lastCuratedKey)
			}
			age := ctx.Now.Sub(last)
			if age < 0 {
				age = 0
			}
			v := 1 - float64(age)/float64(maxAge)
			return Score{Value: clamp01(v), Detail: fmt.Sprintf("age %s of %s budget", age.Round(time.Second), maxAge)}, nil
		},
	}
}

// --- Ranking (Gamble & Goble-style scoring) ---

// Ranked pairs a subject with its assessment for ordering.
type Ranked struct {
	Subject    string
	Assessment *Assessment
}

// Delta describes how one dimension moved between two assessments.
type Delta struct {
	Dimension string
	Before    float64
	After     float64
	Change    float64
}

// Compare diffs two assessments of the same goal, returning per-dimension
// deltas sorted by most-negative change first (what degraded most), plus the
// utility change. Dimensions present in only one assessment are skipped.
func Compare(before, after *Assessment) (deltas []Delta, utilityChange float64) {
	for dim, b := range before.Dimensions {
		a, ok := after.Dimensions[dim]
		if !ok {
			continue
		}
		deltas = append(deltas, Delta{Dimension: dim, Before: b, After: a, Change: a - b})
	}
	sort.Slice(deltas, func(i, j int) bool {
		if deltas[i].Change != deltas[j].Change {
			return deltas[i].Change < deltas[j].Change
		}
		return deltas[i].Dimension < deltas[j].Dimension
	})
	return deltas, after.Utility - before.Utility
}

// Rank assesses each context against the goal and orders subjects by
// descending utility (ties by subject for determinism).
func (m *Manager) Rank(goal Goal, ctxs []*Context) ([]Ranked, error) {
	out := make([]Ranked, 0, len(ctxs))
	for _, ctx := range ctxs {
		a, err := m.Assess(goal, ctx)
		if err != nil {
			return nil, fmt.Errorf("quality: subject %q: %w", ctx.Subject, err)
		}
		out = append(out, Ranked{Subject: ctx.Subject, Assessment: a})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Assessment.Utility != out[j].Assessment.Utility {
			return out[i].Assessment.Utility > out[j].Assessment.Utility
		}
		return out[i].Subject < out[j].Subject
	})
	return out, nil
}
