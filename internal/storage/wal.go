package storage

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"time"
)

// SyncPolicy controls when the WAL calls fsync.
type SyncPolicy uint8

const (
	// SyncAlways fsyncs on every commit (durable, slowest).
	SyncAlways SyncPolicy = iota
	// SyncOnClose fsyncs only on Close and Snapshot (fast, loses the tail on crash).
	SyncOnClose
	// SyncNever never fsyncs (benchmarking only).
	SyncNever
)

// ErrCorrupt marks a WAL record that failed its CRC or framing check;
// recovery stops at the first corrupt record and truncates there.
var ErrCorrupt = errors.New("storage: corrupt wal record")

// Castagnoli is the package's single CRC32-C table, shared by the WAL, the
// snapshot codec, and external consumers that frame records the same way
// (the archive AIP codec). crc32.MakeTable memoizes internally, but a single
// package-level table makes the shared polynomial explicit.
var Castagnoli = crc32.MakeTable(crc32.Castagnoli)

// wal record framing:
//
//	4 bytes little-endian payload length
//	4 bytes little-endian CRC32 (Castagnoli) of the payload
//	payload
type wal struct {
	mu     sync.Mutex
	f      *os.File
	w      *bufio.Writer
	policy SyncPolicy
	delay  time.Duration
	size   int64
	crcTab *crc32.Table
}

func openWAL(path string, policy SyncPolicy) (*wal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open wal: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: stat wal: %w", err)
	}
	return &wal{
		f:      f,
		w:      bufio.NewWriterSize(f, 1<<16),
		policy: policy,
		size:   st.Size(),
		crcTab: Castagnoli,
	}, nil
}

// Append writes one framed record and applies the sync policy.
func (l *wal) Append(payload []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, l.crcTab))
	if _, err := l.w.Write(hdr[:]); err != nil {
		return fmt.Errorf("storage: wal append: %w", err)
	}
	if _, err := l.w.Write(payload); err != nil {
		return fmt.Errorf("storage: wal append: %w", err)
	}
	l.size += int64(8 + len(payload))
	if l.policy == SyncAlways {
		if err := l.w.Flush(); err != nil {
			return fmt.Errorf("storage: wal flush: %w", err)
		}
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("storage: wal sync: %w", err)
		}
		if l.delay > 0 {
			// Simulated device commit latency: occupies this WAL's commit
			// channel exactly like a slower fsync would (the lock is held),
			// without touching any other WAL. See Options.CommitDelay.
			time.Sleep(l.delay)
		}
	}
	return nil
}

// Size returns the current WAL length in bytes.
func (l *wal) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// Sync flushes buffers and fsyncs regardless of policy.
func (l *wal) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.w.Flush(); err != nil {
		return err
	}
	if l.policy == SyncNever {
		return nil
	}
	return l.f.Sync()
}

// Truncate discards all WAL contents (called after a snapshot).
func (l *wal) Truncate() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.w.Flush(); err != nil {
		return err
	}
	if err := l.f.Truncate(0); err != nil {
		return fmt.Errorf("storage: wal truncate: %w", err)
	}
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	l.w.Reset(l.f)
	l.size = 0
	return nil
}

// Close flushes, optionally fsyncs, and closes the file.
func (l *wal) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.w.Flush(); err != nil {
		l.f.Close()
		return err
	}
	if l.policy != SyncNever {
		if err := l.f.Sync(); err != nil {
			l.f.Close()
			return err
		}
	}
	return l.f.Close()
}

func newBufWriter(f *os.File) *bufio.Writer { return bufio.NewWriterSize(f, 1<<16) }

// replayWAL streams every intact record in the log at path to fn. A trailing
// torn or corrupt record ends replay silently (it was never acknowledged);
// replayWAL returns the byte offset of the last intact record boundary so the
// caller can truncate garbage.
func replayWAL(path string, fn func(payload []byte) error) (int64, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, fmt.Errorf("storage: open wal for replay: %w", err)
	}
	defer f.Close()
	tab := Castagnoli
	r := bufio.NewReaderSize(f, 1<<16)
	var off int64
	var hdr [8]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return off, nil // clean EOF or torn header: stop here
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		want := binary.LittleEndian.Uint32(hdr[4:8])
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			return off, nil // torn payload
		}
		if crc32.Checksum(payload, tab) != want {
			return off, nil // corrupt tail
		}
		if err := fn(payload); err != nil {
			return off, err
		}
		off += int64(8 + len(payload))
	}
}
