package storage

import "bytes"

// cowCtx is a copy-on-write ownership token. A node whose cow field points at
// a tree's current context may be mutated in place by that tree; any other
// node must be copied (adopting the context) before mutation. Cloning a tree
// hands BOTH trees fresh contexts, so whichever side writes a shared node
// first copies it and the other side never observes the change.
type cowCtx struct{ _ byte } // non-empty: distinct allocations must compare unequal

// btree is an in-memory B-tree keyed by []byte with arbitrary values. It is
// not safe for concurrent mutation; Table serializes access. clone gives a
// point-in-time copy in O(1) via structural sharing — the basis of DB.View's
// lock-free read snapshots.
type btree struct {
	root   *btreeNode
	degree int // minimum degree t: nodes hold t-1..2t-1 keys (root may hold fewer)
	size   int
	cow    *cowCtx
}

type btreeNode struct {
	keys     [][]byte
	vals     []any
	children []*btreeNode // nil for leaves
	cow      *cowCtx
}

const defaultBTreeDegree = 32

func newBTree() *btree {
	cow := new(cowCtx)
	return &btree{degree: defaultBTreeDegree, root: &btreeNode{cow: cow}, cow: cow}
}

// clone returns a point-in-time copy sharing every current node. Both trees
// get fresh ownership contexts, so each copies shared nodes on first write.
// The caller must hold the tree's writer lock for the clone call itself;
// afterwards reads of the clone need no coordination with writes to the
// original (writers never mutate a node a snapshot can reach).
func (t *btree) clone() *btree {
	out := *t
	t.cow = new(cowCtx)
	out.cow = new(cowCtx)
	return &out
}

// mutableFor returns a node the cow context owns: n itself when already
// owned, else a copy with fresh backing arrays (key slices and child
// pointers are shared — keys are never mutated in place, children are
// copied on their own first write). The caller links the copy into place.
func (n *btreeNode) mutableFor(cow *cowCtx) *btreeNode {
	if n.cow == cow {
		return n
	}
	out := &btreeNode{cow: cow}
	out.keys = append(make([][]byte, 0, cap(n.keys)), n.keys...)
	out.vals = append(make([]any, 0, cap(n.vals)), n.vals...)
	if len(n.children) > 0 {
		out.children = append(make([]*btreeNode, 0, cap(n.children)), n.children...)
	}
	return out
}

// mutableChild makes children[i] writable under n's context and re-links it.
// n itself must already be owned.
func (n *btreeNode) mutableChild(i int) *btreeNode {
	c := n.children[i].mutableFor(n.cow)
	n.children[i] = c
	return c
}

func (n *btreeNode) leaf() bool { return len(n.children) == 0 }

// find returns the index of key in n.keys (or insertion point) and whether
// it was an exact match.
func (n *btreeNode) find(key []byte) (int, bool) {
	lo, hi := 0, len(n.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		switch bytes.Compare(n.keys[mid], key) {
		case -1:
			lo = mid + 1
		case 1:
			hi = mid
		default:
			return mid, true
		}
	}
	return lo, false
}

// Get returns the value stored under key.
func (t *btree) Get(key []byte) (any, bool) {
	n := t.root
	for {
		i, ok := n.find(key)
		if ok {
			return n.vals[i], true
		}
		if n.leaf() {
			return nil, false
		}
		n = n.children[i]
	}
}

// Len reports the number of keys in the tree.
func (t *btree) Len() int { return t.size }

// Set inserts or replaces the value under key. It reports whether the key
// was newly inserted.
func (t *btree) Set(key []byte, val any) bool {
	t.root = t.root.mutableFor(t.cow)
	max := 2*t.degree - 1
	if len(t.root.keys) == max {
		old := t.root
		t.root = &btreeNode{children: []*btreeNode{old}, cow: t.cow}
		t.root.splitChild(0, t.degree)
	}
	inserted := t.root.insertNonFull(key, val, t.degree)
	if inserted {
		t.size++
	}
	return inserted
}

func (n *btreeNode) splitChild(i, degree int) {
	child := n.mutableChild(i)
	mid := degree - 1
	right := &btreeNode{
		cow:  n.cow,
		keys: append([][]byte(nil), child.keys[mid+1:]...),
		vals: append([]any(nil), child.vals[mid+1:]...),
	}
	if !child.leaf() {
		right.children = append([]*btreeNode(nil), child.children[mid+1:]...)
		child.children = child.children[:mid+1]
	}
	upKey, upVal := child.keys[mid], child.vals[mid]
	child.keys = child.keys[:mid]
	child.vals = child.vals[:mid]

	n.keys = append(n.keys, nil)
	copy(n.keys[i+1:], n.keys[i:])
	n.keys[i] = upKey
	n.vals = append(n.vals, nil)
	copy(n.vals[i+1:], n.vals[i:])
	n.vals[i] = upVal
	n.children = append(n.children, nil)
	copy(n.children[i+2:], n.children[i+1:])
	n.children[i+1] = right
}

// insertNonFull descends from an owned node, making each visited child
// writable before stepping into it.
func (n *btreeNode) insertNonFull(key []byte, val any, degree int) bool {
	for {
		i, ok := n.find(key)
		if ok {
			n.vals[i] = val
			return false
		}
		if n.leaf() {
			n.keys = append(n.keys, nil)
			copy(n.keys[i+1:], n.keys[i:])
			n.keys[i] = append([]byte(nil), key...)
			n.vals = append(n.vals, nil)
			copy(n.vals[i+1:], n.vals[i:])
			n.vals[i] = val
			return true
		}
		if len(n.children[i].keys) == 2*degree-1 {
			n.splitChild(i, degree)
			if c := bytes.Compare(key, n.keys[i]); c == 0 {
				n.vals[i] = val
				return false
			} else if c > 0 {
				i++
			}
		}
		n = n.mutableChild(i)
	}
}

// Delete removes key from the tree, reporting whether it was present.
func (t *btree) Delete(key []byte) bool {
	root := t.root.mutableFor(t.cow)
	t.root = root
	if !root.delete(key, t.degree) {
		return false
	}
	if len(root.keys) == 0 && !root.leaf() {
		t.root = root.children[0]
	}
	t.size--
	return true
}

// delete runs on an owned node; every child it mutates or descends into is
// made writable first.
func (n *btreeNode) delete(key []byte, degree int) bool {
	i, ok := n.find(key)
	if n.leaf() {
		if !ok {
			return false
		}
		n.keys = append(n.keys[:i], n.keys[i+1:]...)
		n.vals = append(n.vals[:i], n.vals[i+1:]...)
		return true
	}
	if ok {
		// Replace with predecessor or successor, or merge.
		if len(n.children[i].keys) >= degree {
			child := n.mutableChild(i)
			pk, pv := child.max()
			n.keys[i], n.vals[i] = pk, pv
			return child.delete(pk, degree)
		}
		if len(n.children[i+1].keys) >= degree {
			child := n.mutableChild(i + 1)
			sk, sv := child.min()
			n.keys[i], n.vals[i] = sk, sv
			return child.delete(sk, degree)
		}
		n.merge(i)
		return n.children[i].delete(key, degree)
	}
	// Descend, ensuring the child has ≥ degree keys first.
	if len(n.children[i].keys) < degree {
		i = n.fill(i, degree)
	}
	return n.mutableChild(i).delete(key, degree)
}

// fill ensures children[i] has at least degree keys, borrowing or merging.
// It returns the (possibly shifted) child index to descend into.
func (n *btreeNode) fill(i, degree int) int {
	switch {
	case i > 0 && len(n.children[i-1].keys) >= degree:
		n.borrowFromLeft(i)
	case i < len(n.children)-1 && len(n.children[i+1].keys) >= degree:
		n.borrowFromRight(i)
	case i < len(n.children)-1:
		n.merge(i)
	default:
		n.merge(i - 1)
		i--
	}
	return i
}

func (n *btreeNode) borrowFromLeft(i int) {
	child, left := n.mutableChild(i), n.mutableChild(i-1)
	child.keys = append([][]byte{n.keys[i-1]}, child.keys...)
	child.vals = append([]any{n.vals[i-1]}, child.vals...)
	n.keys[i-1] = left.keys[len(left.keys)-1]
	n.vals[i-1] = left.vals[len(left.vals)-1]
	left.keys = left.keys[:len(left.keys)-1]
	left.vals = left.vals[:len(left.vals)-1]
	if !child.leaf() {
		child.children = append([]*btreeNode{left.children[len(left.children)-1]}, child.children...)
		left.children = left.children[:len(left.children)-1]
	}
}

func (n *btreeNode) borrowFromRight(i int) {
	child, right := n.mutableChild(i), n.mutableChild(i+1)
	child.keys = append(child.keys, n.keys[i])
	child.vals = append(child.vals, n.vals[i])
	n.keys[i] = right.keys[0]
	n.vals[i] = right.vals[0]
	right.keys = right.keys[1:]
	right.vals = right.vals[1:]
	if !child.leaf() {
		child.children = append(child.children, right.children[0])
		right.children = right.children[1:]
	}
}

// merge folds children[i+1] and keys[i] into children[i].
func (n *btreeNode) merge(i int) {
	child := n.mutableChild(i)
	right := n.children[i+1] // read-only: its contents are copied into child
	child.keys = append(child.keys, n.keys[i])
	child.vals = append(child.vals, n.vals[i])
	child.keys = append(child.keys, right.keys...)
	child.vals = append(child.vals, right.vals...)
	child.children = append(child.children, right.children...)
	n.keys = append(n.keys[:i], n.keys[i+1:]...)
	n.vals = append(n.vals[:i], n.vals[i+1:]...)
	n.children = append(n.children[:i+1], n.children[i+2:]...)
}

func (n *btreeNode) min() ([]byte, any) {
	for !n.leaf() {
		n = n.children[0]
	}
	return n.keys[0], n.vals[0]
}

func (n *btreeNode) max() ([]byte, any) {
	for !n.leaf() {
		n = n.children[len(n.children)-1]
	}
	return n.keys[len(n.keys)-1], n.vals[len(n.vals)-1]
}

// Ascend walks keys in [from, to) in order (nil bounds are open) calling fn;
// fn returning false stops the walk.
func (t *btree) Ascend(from, to []byte, fn func(key []byte, val any) bool) {
	t.root.ascend(from, to, fn)
}

func (n *btreeNode) ascend(from, to []byte, fn func([]byte, any) bool) bool {
	start := 0
	if from != nil {
		start, _ = n.find(from)
	}
	for i := start; i < len(n.keys); i++ {
		if !n.leaf() {
			if !n.children[i].ascend(from, to, fn) {
				return false
			}
		}
		if to != nil && bytes.Compare(n.keys[i], to) >= 0 {
			return false
		}
		if from == nil || bytes.Compare(n.keys[i], from) >= 0 {
			if !fn(n.keys[i], n.vals[i]) {
				return false
			}
		}
	}
	if !n.leaf() {
		return n.children[len(n.children)-1].ascend(from, to, fn)
	}
	return true
}
