package storage

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// Options configures a DB.
type Options struct {
	// Sync selects the WAL durability policy. Default SyncAlways.
	Sync SyncPolicy
	// SnapshotEvery triggers an automatic snapshot once the WAL exceeds this
	// many bytes (0 disables automatic snapshots).
	SnapshotEvery int64
	// CommitDelay adds a deterministic pause to every SyncAlways commit, on
	// top of the real fsync, modeling the commit latency of the
	// preservation-grade storage a deployment would sit on (network volumes,
	// archival arrays). Load experiments use it so WAL-channel scaling
	// measurements don't depend on the CI host's disk-noise profile. 0 (the
	// default) means real fsync latency only.
	CommitDelay time.Duration
}

// DB is the embedded database: a set of tables, durable via WAL + snapshot.
//
// Concurrency: any number of readers OR one writer (guarded internally by an
// RWMutex). All acknowledged writes are recoverable under the chosen sync
// policy.
type DB struct {
	mu     sync.RWMutex
	dir    string
	opts   Options
	log    *wal
	tables map[string]*Table
	closed bool

	// encBuf is the reusable Apply payload buffer. Guarded by mu (held
	// exclusively for the whole Apply); safe to reuse because the WAL copies
	// the payload into its write buffer and applyPayload's decode copies
	// every string and byte slice into the stored rows.
	encBuf []byte
}

const (
	walFile      = "wal.log"
	snapshotFile = "snapshot.db"
)

// Operation codes in WAL/snapshot payloads.
const (
	opCreateTable byte = 1
	opCreateIndex byte = 2
	opInsert      byte = 3
	opUpdate      byte = 4
	opDelete      byte = 5
)

// Open opens (or creates) a database in dir, recovering state from the
// snapshot and WAL if present.
func Open(dir string, opts Options) (*DB, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: mkdir %q: %w", dir, err)
	}
	db := &DB{dir: dir, opts: opts, tables: make(map[string]*Table)}

	// 1. Load snapshot (same framed-op format as the WAL).
	snapPath := filepath.Join(dir, snapshotFile)
	if _, err := replayWAL(snapPath, db.applyPayload); err != nil {
		return nil, fmt.Errorf("storage: snapshot replay: %w", err)
	}

	// 2. Replay the WAL, truncating any torn tail.
	walPath := filepath.Join(dir, walFile)
	intact, err := replayWAL(walPath, db.applyPayload)
	if err != nil {
		return nil, fmt.Errorf("storage: wal replay: %w", err)
	}
	if st, err := os.Stat(walPath); err == nil && st.Size() > intact {
		if err := os.Truncate(walPath, intact); err != nil {
			return nil, fmt.Errorf("storage: truncate torn wal tail: %w", err)
		}
	}

	db.log, err = openWAL(walPath, opts.Sync)
	if err != nil {
		return nil, err
	}
	db.log.delay = opts.CommitDelay
	return db, nil
}

// Op is one logical mutation, built with the Insert/Update/Delete/
// CreateTable/CreateIndex constructors and applied atomically via Apply.
type Op struct {
	code   byte
	table  string
	row    Row     // insert/update
	pk     Value   // delete
	schema *Schema // create table
	column string  // create index
}

// InsertOp inserts row into table.
func InsertOp(table string, row Row) Op { return Op{code: opInsert, table: table, row: row} }

// UpdateOp replaces the row with row's primary key in table.
func UpdateOp(table string, row Row) Op { return Op{code: opUpdate, table: table, row: row} }

// DeleteOp removes the row with primary key pk from table.
func DeleteOp(table string, pk Value) Op { return Op{code: opDelete, table: table, pk: pk} }

// CreateTableOp creates a table from schema.
func CreateTableOp(schema *Schema) Op { return Op{code: opCreateTable, schema: schema} }

// CreateIndexOp creates a secondary index on table.column.
func CreateIndexOp(table, column string) Op {
	return Op{code: opCreateIndex, table: table, column: column}
}

type schemaJSON struct {
	Table   string `json:"table"`
	Columns []struct {
		Name     string `json:"name"`
		Kind     uint8  `json:"kind"`
		Nullable bool   `json:"nullable"`
	} `json:"columns"`
}

func encodeOp(dst []byte, op Op) ([]byte, error) {
	dst = append(dst, op.code)
	switch op.code {
	case opCreateTable:
		var sj schemaJSON
		sj.Table = op.schema.Table
		for _, c := range op.schema.Columns {
			sj.Columns = append(sj.Columns, struct {
				Name     string `json:"name"`
				Kind     uint8  `json:"kind"`
				Nullable bool   `json:"nullable"`
			}{c.Name, uint8(c.Kind), c.Nullable})
		}
		blob, err := json.Marshal(sj)
		if err != nil {
			return nil, err
		}
		dst = binary.AppendUvarint(dst, uint64(len(blob)))
		dst = append(dst, blob...)
	case opCreateIndex:
		dst = appendString(dst, op.table)
		dst = appendString(dst, op.column)
	case opInsert, opUpdate:
		dst = appendString(dst, op.table)
		dst = EncodeRow(dst, op.row)
	case opDelete:
		dst = appendString(dst, op.table)
		dst = EncodeRow(dst, Row{op.pk})
	default:
		return nil, fmt.Errorf("storage: unknown op code %d", op.code)
	}
	return dst, nil
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func readString(buf []byte) (string, int, error) {
	l, sz := binary.Uvarint(buf)
	if sz <= 0 || uint64(len(buf)-sz) < l {
		return "", 0, fmt.Errorf("storage: truncated string in op")
	}
	return string(buf[sz : sz+int(l)]), sz + int(l), nil
}

// applyPayload decodes one WAL record (a batch of ops) and applies it to the
// in-memory state. Used both for recovery replay and post-log application.
func (db *DB) applyPayload(payload []byte) error {
	n, sz := binary.Uvarint(payload)
	if sz <= 0 {
		return fmt.Errorf("storage: corrupt batch header")
	}
	off := sz
	for i := uint64(0); i < n; i++ {
		if off >= len(payload) {
			return fmt.Errorf("storage: truncated batch at op %d", i)
		}
		code := payload[off]
		off++
		switch code {
		case opCreateTable:
			l, sz := binary.Uvarint(payload[off:])
			if sz <= 0 || uint64(len(payload)-off-sz) < l {
				return fmt.Errorf("storage: truncated schema blob")
			}
			off += sz
			var sj schemaJSON
			if err := json.Unmarshal(payload[off:off+int(l)], &sj); err != nil {
				return fmt.Errorf("storage: decode schema: %w", err)
			}
			off += int(l)
			cols := make([]Column, len(sj.Columns))
			for i, c := range sj.Columns {
				cols[i] = Column{Name: c.Name, Kind: Kind(c.Kind), Nullable: c.Nullable}
			}
			schema, err := NewSchema(sj.Table, cols...)
			if err != nil {
				return err
			}
			if _, exists := db.tables[schema.Table]; !exists {
				db.tables[schema.Table] = newTable(schema, &db.mu)
			}
		case opCreateIndex:
			table, n, err := readString(payload[off:])
			if err != nil {
				return err
			}
			off += n
			col, n, err := readString(payload[off:])
			if err != nil {
				return err
			}
			off += n
			t, ok := db.tables[table]
			if !ok {
				return fmt.Errorf("storage: create index on unknown table %q", table)
			}
			if err := t.applyCreateIndex(col); err != nil {
				return err
			}
		case opInsert, opUpdate, opDelete:
			table, n, err := readString(payload[off:])
			if err != nil {
				return err
			}
			off += n
			row, n, err := DecodeRow(payload[off:])
			if err != nil {
				return err
			}
			off += n
			t, ok := db.tables[table]
			if !ok {
				return fmt.Errorf("storage: op on unknown table %q", table)
			}
			switch code {
			case opInsert:
				err = t.applyInsert(row)
			case opUpdate:
				err = t.applyUpdate(row)
			case opDelete:
				err = t.applyDelete(row[0])
			}
			if err != nil {
				return err
			}
		default:
			return fmt.Errorf("storage: unknown op code %d in batch", code)
		}
	}
	return nil
}

// validateOps checks every op against current state before anything is
// logged, so a batch either fully applies or is rejected up front.
func (db *DB) validateOps(ops []Op) error {
	// Track tables/rows created earlier in the same batch.
	created := map[string]*Schema{}
	pending := map[string]map[string]bool{} // table -> encoded pk -> exists after batch prefix
	exists := func(table string, pk Value) bool {
		if m := pending[table]; m != nil {
			if v, ok := m[string(EncodeKey(nil, pk))]; ok {
				return v
			}
		}
		t := db.tables[table]
		return t != nil && t.hasLocked(pk)
	}
	mark := func(table string, pk Value, present bool) {
		if pending[table] == nil {
			pending[table] = map[string]bool{}
		}
		pending[table][string(EncodeKey(nil, pk))] = present
	}
	schemaOf := func(table string) *Schema {
		if s := created[table]; s != nil {
			return s
		}
		if t := db.tables[table]; t != nil {
			return t.schema
		}
		return nil
	}
	for _, op := range ops {
		switch op.code {
		case opCreateTable:
			if op.schema == nil {
				return fmt.Errorf("storage: create table with nil schema")
			}
			if schemaOf(op.schema.Table) != nil {
				return fmt.Errorf("storage: table %q already exists", op.schema.Table)
			}
			created[op.schema.Table] = op.schema
		case opCreateIndex:
			s := schemaOf(op.table)
			if s == nil {
				return fmt.Errorf("storage: index on unknown table %q", op.table)
			}
			if s.Index(op.column) < 0 {
				return fmt.Errorf("storage: table %q has no column %q", op.table, op.column)
			}
		case opInsert:
			s := schemaOf(op.table)
			if s == nil {
				return fmt.Errorf("storage: insert into unknown table %q", op.table)
			}
			if err := s.Validate(op.row); err != nil {
				return err
			}
			if exists(op.table, op.row[0]) {
				return fmt.Errorf("%w: table %q pk %s", ErrDuplicate, op.table, op.row[0])
			}
			mark(op.table, op.row[0], true)
		case opUpdate:
			s := schemaOf(op.table)
			if s == nil {
				return fmt.Errorf("storage: update on unknown table %q", op.table)
			}
			if err := s.Validate(op.row); err != nil {
				return err
			}
			if !exists(op.table, op.row[0]) {
				return fmt.Errorf("%w: table %q pk %s", ErrNotFound, op.table, op.row[0])
			}
		case opDelete:
			if schemaOf(op.table) == nil {
				return fmt.Errorf("storage: delete on unknown table %q", op.table)
			}
			if !exists(op.table, op.pk) {
				return fmt.Errorf("%w: table %q pk %s", ErrNotFound, op.table, op.pk)
			}
			mark(op.table, op.pk, false)
		default:
			return fmt.Errorf("storage: unknown op code %d", op.code)
		}
	}
	return nil
}

// Apply validates, logs and applies a batch of operations atomically: either
// every op is durable and applied, or none is.
func (db *DB) Apply(ops ...Op) error {
	if len(ops) == 0 {
		return nil
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.applyLocked(ops)
}

// applyLocked is the shared validate/log/apply body of Apply and ApplyFenced.
// Callers hold db.mu exclusively.
func (db *DB) applyLocked(ops []Op) error {
	if db.closed {
		return fmt.Errorf("storage: db is closed")
	}
	if err := db.validateOps(ops); err != nil {
		return err
	}
	payload := binary.AppendUvarint(db.encBuf[:0], uint64(len(ops)))
	var err error
	for _, op := range ops {
		payload, err = encodeOp(payload, op)
		if err != nil {
			return err
		}
	}
	db.encBuf = payload
	if err := db.log.Append(payload); err != nil {
		return err
	}
	if err := db.applyPayload(payload); err != nil {
		// validateOps guarantees this cannot happen; if it does, state and
		// log have diverged and continuing would corrupt the database.
		panic(fmt.Sprintf("storage: post-log apply failed after validation: %v", err))
	}
	if db.opts.SnapshotEvery > 0 && db.log.size >= db.opts.SnapshotEvery {
		return db.snapshotLocked()
	}
	return nil
}

// CreateTable creates a new table.
func (db *DB) CreateTable(schema *Schema) error { return db.Apply(CreateTableOp(schema)) }

// CreateIndex creates a secondary index on table.column, backfilled from
// existing rows.
func (db *DB) CreateIndex(table, column string) error { return db.Apply(CreateIndexOp(table, column)) }

// Insert adds one row.
func (db *DB) Insert(table string, row Row) error { return db.Apply(InsertOp(table, row)) }

// Update replaces one row by primary key.
func (db *DB) Update(table string, row Row) error { return db.Apply(UpdateOp(table, row)) }

// Delete removes one row by primary key.
func (db *DB) Delete(table string, pk Value) error { return db.Apply(DeleteOp(table, pk)) }

// Table returns a read handle for the named table, or nil if absent.
// The handle must only be used for reads; mutations go through DB. Each
// read method is individually atomic with respect to writers (the handle
// shares the database lock); consistency across separate calls is not
// guaranteed while writers run.
func (db *DB) Table(name string) *Table {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.tables[name]
}

// Tables returns the names of all tables in lexical order of creation
// iteration (unordered).
func (db *DB) Tables() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	return names
}

// Sync flushes the WAL's buffered writes to disk and fsyncs, regardless of
// the configured sync policy (except SyncNever, which only flushes buffers).
// Group-committing writers call it to make a run's tail durable — e.g. the
// provenance BatchWriter's final flush — without paying fsync-per-Apply.
func (db *DB) Sync() error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.closed {
		return fmt.Errorf("storage: db is closed")
	}
	return db.log.Sync()
}

// Snapshot persists the full in-memory state and truncates the WAL.
func (db *DB) Snapshot() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.snapshotLocked()
}

func (db *DB) snapshotLocked() error {
	tmp := filepath.Join(db.dir, snapshotFile+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("storage: create snapshot: %w", err)
	}
	snap, err := openWALFromFile(f)
	if err != nil {
		f.Close()
		return err
	}
	writeBatch := func(ops ...Op) error {
		payload := binary.AppendUvarint(nil, uint64(len(ops)))
		for _, op := range ops {
			payload, err = encodeOp(payload, op)
			if err != nil {
				return err
			}
		}
		return snap.Append(payload)
	}
	for name, t := range db.tables {
		if err := writeBatch(CreateTableOp(t.schema)); err != nil {
			return err
		}
		var failed error
		t.scanLocked(func(r Row) bool {
			if err := writeBatch(InsertOp(name, r)); err != nil {
				failed = err
				return false
			}
			return true
		})
		if failed != nil {
			return failed
		}
		for col := range t.secondary {
			if err := writeBatch(CreateIndexOp(name, col)); err != nil {
				return err
			}
		}
	}
	if err := snap.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(db.dir, snapshotFile)); err != nil {
		return fmt.Errorf("storage: publish snapshot: %w", err)
	}
	return db.log.Truncate()
}

// openWALFromFile wraps an already-open file in the WAL framing writer; the
// snapshot writer reuses the WAL record format.
func openWALFromFile(f *os.File) (*wal, error) {
	return &wal{
		f:      f,
		w:      newBufWriter(f),
		policy: SyncOnClose,
		crcTab: Castagnoli,
	}, nil
}

// Close flushes and closes the database.
func (db *DB) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil
	}
	db.closed = true
	return db.log.Close()
}

// WALSize reports the current WAL length (for snapshot policies and tests).
func (db *DB) WALSize() int64 { return db.log.Size() }
