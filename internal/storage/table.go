package storage

import (
	"errors"
	"fmt"
	"sync"
)

// ErrNotFound is returned when a key or record does not exist.
var ErrNotFound = errors.New("storage: not found")

// keyBufs pools scratch buffers for EncodeKey on read and index-maintenance
// paths, so steady-state point lookups and row application do not allocate a
// fresh key per call. Safe because the B-tree copies keys on insert and
// lookups never retain the probe key.
var keyBufs = sync.Pool{New: func() any { b := make([]byte, 0, 128); return &b }}

func getKeyBuf() *[]byte  { return keyBufs.Get().(*[]byte) }
func putKeyBuf(b *[]byte) { keyBufs.Put(b) }

// ErrDuplicate is returned when inserting a primary key that already exists.
var ErrDuplicate = errors.New("storage: duplicate key")

// Table is one relation: a schema, a primary-key B-tree and any secondary
// indexes. All mutation goes through DB so it can be logged. Read methods
// share the database lock, so each call is atomic with respect to writers.
type Table struct {
	mu        *sync.RWMutex // the owning DB's lock; nil only in unit fixtures
	schema    *Schema
	primary   *btree            // encoded pk -> Row
	secondary map[string]*btree // column name -> (encoded value ++ encoded pk) -> pk Value
}

func newTable(schema *Schema, mu *sync.RWMutex) *Table {
	return &Table{
		mu:        mu,
		schema:    schema,
		primary:   newBTree(),
		secondary: make(map[string]*btree),
	}
}

func (t *Table) rlock() func() {
	if t.mu == nil {
		return func() {}
	}
	t.mu.RLock()
	return t.mu.RUnlock
}

// Schema returns the table schema.
func (t *Table) Schema() *Schema { return t.schema }

// Len reports the number of rows.
func (t *Table) Len() int {
	defer t.rlock()()
	return t.primary.Len()
}

// Get fetches the row with the given primary key.
func (t *Table) Get(pk Value) (Row, error) {
	defer t.rlock()()
	return t.getLocked(pk)
}

func (t *Table) getLocked(pk Value) (Row, error) {
	kb := getKeyBuf()
	*kb = EncodeKey((*kb)[:0], pk)
	v, ok := t.primary.Get(*kb)
	putKeyBuf(kb)
	if !ok {
		return nil, fmt.Errorf("%w: table %q pk %s", ErrNotFound, t.schema.Table, pk)
	}
	return v.(Row), nil
}

// Has reports whether a row with the given primary key exists.
func (t *Table) Has(pk Value) bool {
	defer t.rlock()()
	return t.hasLocked(pk)
}

// hasLocked is Has without locking, for use under the DB write lock.
func (t *Table) hasLocked(pk Value) bool {
	kb := getKeyBuf()
	*kb = EncodeKey((*kb)[:0], pk)
	_, ok := t.primary.Get(*kb)
	putKeyBuf(kb)
	return ok
}

// secondaryKey appends the composite (value, pk) key used in secondary trees
// so that duplicate column values coexist.
func secondaryKey(dst []byte, val, pk Value) []byte {
	return EncodeKey(EncodeKey(dst, val), pk)
}

func (t *Table) applyInsert(row Row) error {
	kb := getKeyBuf()
	defer putKeyBuf(kb)
	pkKey := EncodeKey((*kb)[:0], row[0])
	if _, exists := t.primary.Get(pkKey); exists {
		return fmt.Errorf("%w: table %q pk %s", ErrDuplicate, t.schema.Table, row[0])
	}
	t.primary.Set(pkKey, row)
	// pkKey was copied by Set; the buffer is free for the index keys.
	for col, idx := range t.secondary {
		ci := t.schema.Index(col)
		idx.Set(secondaryKey((*kb)[:0], row[ci], row[0]), row[0])
	}
	return nil
}

func (t *Table) applyUpdate(row Row) error {
	kb := getKeyBuf()
	defer putKeyBuf(kb)
	pkKey := EncodeKey((*kb)[:0], row[0])
	oldAny, exists := t.primary.Get(pkKey)
	if !exists {
		return fmt.Errorf("%w: table %q pk %s", ErrNotFound, t.schema.Table, row[0])
	}
	old := oldAny.(Row)
	t.primary.Set(pkKey, row)
	for col, idx := range t.secondary {
		ci := t.schema.Index(col)
		if !old[ci].Equal(row[ci]) {
			idx.Delete(secondaryKey((*kb)[:0], old[ci], row[0]))
			idx.Set(secondaryKey((*kb)[:0], row[ci], row[0]), row[0])
		}
	}
	return nil
}

func (t *Table) applyDelete(pk Value) error {
	kb := getKeyBuf()
	defer putKeyBuf(kb)
	pkKey := EncodeKey((*kb)[:0], pk)
	oldAny, exists := t.primary.Get(pkKey)
	if !exists {
		return fmt.Errorf("%w: table %q pk %s", ErrNotFound, t.schema.Table, pk)
	}
	old := oldAny.(Row)
	t.primary.Delete(pkKey)
	for col, idx := range t.secondary {
		ci := t.schema.Index(col)
		idx.Delete(secondaryKey((*kb)[:0], old[ci], pk))
	}
	return nil
}

func (t *Table) applyCreateIndex(col string) error {
	ci := t.schema.Index(col)
	if ci < 0 {
		return fmt.Errorf("storage: table %q has no column %q", t.schema.Table, col)
	}
	if _, exists := t.secondary[col]; exists {
		return nil // idempotent: replay may re-create
	}
	idx := newBTree()
	kb := getKeyBuf()
	defer putKeyBuf(kb)
	t.primary.Ascend(nil, nil, func(_ []byte, v any) bool {
		row := v.(Row)
		idx.Set(secondaryKey((*kb)[:0], row[ci], row[0]), row[0])
		return true
	})
	t.secondary[col] = idx
	return nil
}

// HasIndex reports whether a secondary index exists on col.
func (t *Table) HasIndex(col string) bool {
	defer t.rlock()()
	_, ok := t.secondary[col]
	return ok
}

// Scan walks every row in primary-key order under the read lock; fn
// returning false stops the scan. Rows must not be mutated by fn, and fn
// must not call DB write methods (the read lock is held).
func (t *Table) Scan(fn func(Row) bool) {
	defer t.rlock()()
	t.scanLocked(fn)
}

// ScanFrom walks rows in primary-key order starting at the first key >= from
// (inclusive); fn returning false stops the scan. It is the primitive behind
// paginated reads: resume from the last key of the previous page without
// re-walking the prefix. The same locking rules as Scan apply.
func (t *Table) ScanFrom(from Value, fn func(Row) bool) {
	defer t.rlock()()
	kb := getKeyBuf()
	defer putKeyBuf(kb)
	t.primary.Ascend(EncodeKey((*kb)[:0], from), nil, func(_ []byte, v any) bool {
		return fn(v.(Row))
	})
}

func (t *Table) scanLocked(fn func(Row) bool) {
	t.primary.Ascend(nil, nil, func(_ []byte, v any) bool {
		return fn(v.(Row))
	})
}

// Select returns every row matching pred, in primary-key order.
func (t *Table) Select(pred func(Row) bool) []Row {
	var out []Row
	t.Scan(func(r Row) bool {
		if pred(r) {
			out = append(out, r)
		}
		return true
	})
	return out
}

// Lookup uses the secondary index on col to return all rows whose column
// equals val. It returns ErrNotFound if no index exists on col.
func (t *Table) Lookup(col string, val Value) ([]Row, error) {
	defer t.rlock()()
	idx, ok := t.secondary[col]
	if !ok {
		return nil, fmt.Errorf("%w: table %q has no index on %q", ErrNotFound, t.schema.Table, col)
	}
	kb, kb2 := getKeyBuf(), getKeyBuf()
	defer putKeyBuf(kb)
	defer putKeyBuf(kb2)
	from := EncodeKey((*kb)[:0], val)
	to := append(append((*kb2)[:0], from...), 0xFF)
	var out []Row
	idx.Ascend(from, to, func(_ []byte, pkAny any) bool {
		row, err := t.getLocked(pkAny.(Value))
		if err == nil {
			out = append(out, row)
		}
		return true
	})
	return out, nil
}

// LookupRange uses the secondary index on col to return all rows whose
// column value lies in [lo, hi] (inclusive; NULL bounds are rejected), in
// ascending column order. It returns ErrNotFound if no index exists on col.
func (t *Table) LookupRange(col string, lo, hi Value) ([]Row, error) {
	defer t.rlock()()
	idx, ok := t.secondary[col]
	if !ok {
		return nil, fmt.Errorf("%w: table %q has no index on %q", ErrNotFound, t.schema.Table, col)
	}
	if lo.IsNull() || hi.IsNull() {
		return nil, fmt.Errorf("storage: LookupRange bounds must be non-null")
	}
	kb, kb2 := getKeyBuf(), getKeyBuf()
	defer putKeyBuf(kb)
	defer putKeyBuf(kb2)
	from := EncodeKey((*kb)[:0], lo)
	to := append(EncodeKey((*kb2)[:0], hi), 0xFF) // include all pk suffixes of hi
	var out []Row
	idx.Ascend(from, to, func(_ []byte, pkAny any) bool {
		row, err := t.getLocked(pkAny.(Value))
		if err == nil {
			out = append(out, row)
		}
		return true
	})
	return out, nil
}

// Count returns the number of rows matching pred (nil counts all rows).
func (t *Table) Count(pred func(Row) bool) int {
	if pred == nil {
		return t.Len()
	}
	n := 0
	t.Scan(func(r Row) bool {
		if pred(r) {
			n++
		}
		return true
	})
	return n
}
