package storage

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// TestConcurrentReadersAndWriter drives one writer against many concurrent
// readers; run with -race in CI. Readers must always see consistent rows
// (schema arity intact), and the writer must never lose an acknowledged
// write.
func TestConcurrentReadersAndWriter(t *testing.T) {
	db := openTestDB(t, Options{Sync: SyncNever})
	schema := MustSchema("t",
		Column{Name: "k", Kind: KindString},
		Column{Name: "v", Kind: KindInt},
		Column{Name: "s", Kind: KindString, Nullable: true})
	if err := db.CreateTable(schema); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateIndex("t", "s"); err != nil {
		t.Fatal(err)
	}

	const writes = 2000
	var done atomic.Bool
	var readerErr atomic.Value
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for !done.Load() {
				db.Table("t").Scan(func(row Row) bool {
					if len(row) != 3 {
						readerErr.Store(fmt.Errorf("short row: %v", row))
						return false
					}
					return true
				})
				if rows, err := db.Table("t").Lookup("s", S("bucket-1")); err == nil {
					for _, row := range rows {
						if row.Get(schema, "s").Str() != "bucket-1" {
							readerErr.Store(fmt.Errorf("index returned wrong row: %v", row))
						}
					}
				}
			}
		}(r)
	}
	for i := 0; i < writes; i++ {
		if err := db.Insert("t", Row{
			S(fmt.Sprintf("k%06d", i)), I(int64(i)), S(fmt.Sprintf("bucket-%d", i%7)),
		}); err != nil {
			t.Fatal(err)
		}
		if i%3 == 0 {
			row := Row{S(fmt.Sprintf("k%06d", i)), I(int64(-i)), S("bucket-1")}
			if err := db.Update("t", row); err != nil {
				t.Fatal(err)
			}
		}
	}
	done.Store(true)
	wg.Wait()
	if err := readerErr.Load(); err != nil {
		t.Fatal(err)
	}
	if db.Table("t").Len() != writes {
		t.Fatalf("rows = %d, want %d", db.Table("t").Len(), writes)
	}
}

// TestConcurrentWriters serializes through the internal lock; all writes
// must land exactly once.
func TestConcurrentWriters(t *testing.T) {
	db := openTestDB(t, Options{Sync: SyncNever})
	schema := MustSchema("t", Column{Name: "k", Kind: KindString})
	if err := db.CreateTable(schema); err != nil {
		t.Fatal(err)
	}
	const perWriter = 300
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if err := db.Insert("t", Row{S(fmt.Sprintf("w%d-%04d", w, i))}); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := db.Table("t").Len(); got != 8*perWriter {
		t.Fatalf("rows = %d, want %d", got, 8*perWriter)
	}
}
