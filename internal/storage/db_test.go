package storage

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func testSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema("recordings",
		Column{Name: "id", Kind: KindString},
		Column{Name: "species", Kind: KindString, Nullable: true},
		Column{Name: "year", Kind: KindInt, Nullable: true},
		Column{Name: "quality", Kind: KindFloat, Nullable: true},
	)
	if err != nil {
		t.Fatalf("NewSchema: %v", err)
	}
	return s
}

func openTestDB(t *testing.T, opts Options) *DB {
	t.Helper()
	db, err := Open(t.TempDir(), opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func TestDBBasicCRUD(t *testing.T) {
	db := openTestDB(t, Options{Sync: SyncOnClose})
	if err := db.CreateTable(testSchema(t)); err != nil {
		t.Fatalf("CreateTable: %v", err)
	}
	row := Row{S("r1"), S("Elachistocleis ovalis"), I(1978), F(0.9)}
	if err := db.Insert("recordings", row); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	got, err := db.Table("recordings").Get(S("r1"))
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if got.Get(db.Table("recordings").Schema(), "species").Str() != "Elachistocleis ovalis" {
		t.Fatalf("Get returned %v", got)
	}

	row[1] = S("Nomen inquirenda")
	if err := db.Update("recordings", row); err != nil {
		t.Fatalf("Update: %v", err)
	}
	got, _ = db.Table("recordings").Get(S("r1"))
	if got[1].Str() != "Nomen inquirenda" {
		t.Fatalf("after update species = %q", got[1].Str())
	}

	if err := db.Delete("recordings", S("r1")); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, err := db.Table("recordings").Get(S("r1")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after delete: %v, want ErrNotFound", err)
	}
}

func TestDBSchemaValidation(t *testing.T) {
	db := openTestDB(t, Options{Sync: SyncNever})
	if err := db.CreateTable(testSchema(t)); err != nil {
		t.Fatal(err)
	}
	// Wrong arity.
	if err := db.Insert("recordings", Row{S("x")}); err == nil {
		t.Fatal("short row accepted")
	}
	// Wrong kind.
	if err := db.Insert("recordings", Row{S("x"), I(1), I(1), F(0)}); err == nil {
		t.Fatal("wrong-kind row accepted")
	}
	// Null PK.
	if err := db.Insert("recordings", Row{Null(), S("a"), I(1), F(0)}); err == nil {
		t.Fatal("null primary key accepted")
	}
	// Nullable columns accept NULL.
	if err := db.Insert("recordings", Row{S("x"), Null(), Null(), Null()}); err != nil {
		t.Fatalf("nullable columns rejected NULL: %v", err)
	}
	// Duplicate PK.
	if err := db.Insert("recordings", Row{S("x"), Null(), Null(), Null()}); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate insert: %v, want ErrDuplicate", err)
	}
	// Unknown table.
	if err := db.Insert("nope", Row{S("x")}); err == nil {
		t.Fatal("insert into unknown table accepted")
	}
	// Update/delete of missing rows.
	if err := db.Update("recordings", Row{S("zz"), Null(), Null(), Null()}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("update missing: %v", err)
	}
	if err := db.Delete("recordings", S("zz")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("delete missing: %v", err)
	}
	// Duplicate table.
	if err := db.CreateTable(testSchema(t)); err == nil {
		t.Fatal("duplicate CreateTable accepted")
	}
}

func TestDBSecondaryIndex(t *testing.T) {
	db := openTestDB(t, Options{Sync: SyncNever})
	if err := db.CreateTable(testSchema(t)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		sp := fmt.Sprintf("species-%d", i%10)
		if err := db.Insert("recordings", Row{S(fmt.Sprintf("r%03d", i)), S(sp), I(int64(1960 + i)), Null()}); err != nil {
			t.Fatal(err)
		}
	}
	// Index created after data exists must backfill.
	if err := db.CreateIndex("recordings", "species"); err != nil {
		t.Fatalf("CreateIndex: %v", err)
	}
	rows, err := db.Table("recordings").Lookup("species", S("species-3"))
	if err != nil {
		t.Fatalf("Lookup: %v", err)
	}
	if len(rows) != 10 {
		t.Fatalf("Lookup returned %d rows, want 10", len(rows))
	}
	for _, r := range rows {
		if r[1].Str() != "species-3" {
			t.Fatalf("Lookup returned row with species %q", r[1].Str())
		}
	}
	// Index maintained on update.
	r := rows[0].Clone()
	r[1] = S("renamed")
	if err := db.Update("recordings", r); err != nil {
		t.Fatal(err)
	}
	rows, _ = db.Table("recordings").Lookup("species", S("species-3"))
	if len(rows) != 9 {
		t.Fatalf("after update Lookup returned %d rows, want 9", len(rows))
	}
	rows, _ = db.Table("recordings").Lookup("species", S("renamed"))
	if len(rows) != 1 {
		t.Fatalf("Lookup(renamed) returned %d rows, want 1", len(rows))
	}
	// Index maintained on delete.
	if err := db.Delete("recordings", rows[0][0]); err != nil {
		t.Fatal(err)
	}
	rows, _ = db.Table("recordings").Lookup("species", S("renamed"))
	if len(rows) != 0 {
		t.Fatalf("Lookup after delete returned %d rows", len(rows))
	}
	// Lookup without an index errors.
	if _, err := db.Table("recordings").Lookup("year", I(1970)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Lookup without index: %v", err)
	}
	// Index on unknown column rejected.
	if err := db.CreateIndex("recordings", "nope"); err == nil {
		t.Fatal("index on unknown column accepted")
	}
}

func TestDBRecoveryFromWAL(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable(testSchema(t)); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateIndex("recordings", "species"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := db.Insert("recordings", Row{S(fmt.Sprintf("r%02d", i)), S("sp"), I(int64(i)), Null()}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Delete("recordings", S("r00")); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(dir, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer db2.Close()
	tab := db2.Table("recordings")
	if tab == nil {
		t.Fatal("table lost after recovery")
	}
	if tab.Len() != 49 {
		t.Fatalf("recovered %d rows, want 49", tab.Len())
	}
	if tab.Has(S("r00")) {
		t.Fatal("deleted row resurrected by recovery")
	}
	rows, err := tab.Lookup("species", S("sp"))
	if err != nil {
		t.Fatalf("secondary index lost after recovery: %v", err)
	}
	if len(rows) != 49 {
		t.Fatalf("index recovered %d rows, want 49", len(rows))
	}
}

func TestDBRecoveryTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable(testSchema(t)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := db.Insert("recordings", Row{S(fmt.Sprintf("r%d", i)), Null(), Null(), Null()}); err != nil {
			t.Fatal(err)
		}
	}
	db.Close()

	// Simulate a crash mid-write: append garbage to the WAL.
	walPath := filepath.Join(dir, walFile)
	f, err := os.OpenFile(walPath, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x10, 0x00, 0x00, 0x00, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	db2, err := Open(dir, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatalf("reopen with torn tail: %v", err)
	}
	if db2.Table("recordings").Len() != 10 {
		t.Fatalf("recovered %d rows, want 10", db2.Table("recordings").Len())
	}
	// Writes after truncation still work and survive another cycle.
	if err := db2.Insert("recordings", Row{S("r10"), Null(), Null(), Null()}); err != nil {
		t.Fatal(err)
	}
	db2.Close()
	db3, err := Open(dir, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer db3.Close()
	if db3.Table("recordings").Len() != 11 {
		t.Fatalf("third open recovered %d rows, want 11", db3.Table("recordings").Len())
	}
}

func TestDBSnapshotAndRecovery(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{Sync: SyncOnClose})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable(testSchema(t)); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateIndex("recordings", "species"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if err := db.Insert("recordings", Row{S(fmt.Sprintf("r%03d", i)), S(fmt.Sprintf("sp%d", i%7)), I(int64(i)), Null()}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Snapshot(); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	if db.WALSize() != 0 {
		t.Fatalf("WAL not truncated after snapshot: %d bytes", db.WALSize())
	}
	// Post-snapshot writes land in the fresh WAL.
	if err := db.Insert("recordings", Row{S("r999"), S("sp0"), I(999), Null()}); err != nil {
		t.Fatal(err)
	}
	db.Close()

	db2, err := Open(dir, Options{Sync: SyncOnClose})
	if err != nil {
		t.Fatalf("reopen after snapshot: %v", err)
	}
	defer db2.Close()
	if got := db2.Table("recordings").Len(); got != 201 {
		t.Fatalf("recovered %d rows, want 201", got)
	}
	rows, err := db2.Table("recordings").Lookup("species", S("sp0"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 29+1 {
		t.Fatalf("index after snapshot recovery: %d rows, want 30", len(rows))
	}
}

func TestDBAutoSnapshot(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{Sync: SyncNever, SnapshotEvery: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable(testSchema(t)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if err := db.Insert("recordings", Row{S(fmt.Sprintf("r%04d", i)), S("some species name payload"), I(int64(i)), F(1)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, snapshotFile)); err != nil {
		t.Fatalf("auto snapshot not created: %v", err)
	}
	if db.WALSize() >= 1024*4 {
		t.Fatalf("WAL grew to %d despite auto snapshots", db.WALSize())
	}
	db.Close()
	db2, err := Open(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if db2.Table("recordings").Len() != 500 {
		t.Fatalf("recovered %d rows, want 500", db2.Table("recordings").Len())
	}
}

func TestDBAtomicBatch(t *testing.T) {
	db := openTestDB(t, Options{Sync: SyncNever})
	if err := db.CreateTable(testSchema(t)); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("recordings", Row{S("a"), Null(), Null(), Null()}); err != nil {
		t.Fatal(err)
	}
	// Batch where the *last* op conflicts: nothing must apply.
	err := db.Apply(
		InsertOp("recordings", Row{S("b"), Null(), Null(), Null()}),
		InsertOp("recordings", Row{S("a"), Null(), Null(), Null()}), // duplicate
	)
	if !errors.Is(err, ErrDuplicate) {
		t.Fatalf("batch with duplicate: %v", err)
	}
	if db.Table("recordings").Has(S("b")) {
		t.Fatal("partial batch applied: b exists")
	}
	// Batch that is internally consistent: create table + insert + index.
	s2, _ := NewSchema("updates", Column{Name: "id", Kind: KindString}, Column{Name: "ref", Kind: KindString, Nullable: true})
	err = db.Apply(
		CreateTableOp(s2),
		InsertOp("updates", Row{S("u1"), S("a")}),
		CreateIndexOp("updates", "ref"),
	)
	if err != nil {
		t.Fatalf("composite batch: %v", err)
	}
	rows, err := db.Table("updates").Lookup("ref", S("a"))
	if err != nil || len(rows) != 1 {
		t.Fatalf("Lookup after composite batch: %v %d", err, len(rows))
	}
	// Insert-then-delete of the same key within one batch is legal.
	if err := db.Apply(
		InsertOp("updates", Row{S("tmp"), Null()}),
		DeleteOp("updates", S("tmp")),
	); err != nil {
		t.Fatalf("insert+delete batch: %v", err)
	}
	if db.Table("updates").Has(S("tmp")) {
		t.Fatal("tmp row survived insert+delete batch")
	}
}

func TestDBViewAndScan(t *testing.T) {
	db := openTestDB(t, Options{Sync: SyncNever})
	if err := db.CreateTable(testSchema(t)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := db.Insert("recordings", Row{S(fmt.Sprintf("r%02d", i)), Null(), I(int64(i)), Null()}); err != nil {
			t.Fatal(err)
		}
	}
	var sum int64
	db.Table("recordings").Scan(func(r Row) bool {
		sum += r[2].Int()
		return true
	})
	if sum != 190 {
		t.Fatalf("sum = %d, want 190", sum)
	}
	sel := db.Table("recordings").Select(func(r Row) bool { return r[2].Int() >= 15 })
	if len(sel) != 5 {
		t.Fatalf("Select returned %d rows, want 5", len(sel))
	}
	if n := db.Table("recordings").Count(func(r Row) bool { return r[2].Int()%2 == 0 }); n != 10 {
		t.Fatalf("Count = %d, want 10", n)
	}
}

func TestDBClosedRejectsWrites(t *testing.T) {
	db := openTestDB(t, Options{Sync: SyncNever})
	if err := db.CreateTable(testSchema(t)); err != nil {
		t.Fatal(err)
	}
	db.Close()
	if err := db.Insert("recordings", Row{S("x"), Null(), Null(), Null()}); err == nil {
		t.Fatal("write accepted after Close")
	}
	if err := db.Close(); err != nil {
		t.Fatalf("double Close: %v", err)
	}
}

func TestSchemaConstructorValidation(t *testing.T) {
	if _, err := NewSchema(""); err == nil {
		t.Fatal("empty table name accepted")
	}
	if _, err := NewSchema("t"); err == nil {
		t.Fatal("zero columns accepted")
	}
	if _, err := NewSchema("t", Column{Name: "pk", Kind: KindString, Nullable: true}); err == nil {
		t.Fatal("nullable primary key accepted")
	}
	if _, err := NewSchema("t", Column{Name: "pk", Kind: KindString}, Column{Name: "pk", Kind: KindInt}); err == nil {
		t.Fatal("duplicate column accepted")
	}
	if _, err := NewSchema("t", Column{Name: "", Kind: KindString}); err == nil {
		t.Fatal("unnamed column accepted")
	}
	if _, err := NewSchema("t", Column{Name: "pk", Kind: KindNull}); err == nil {
		t.Fatal("null-kind column accepted")
	}
	s := MustSchema("t", Column{Name: "pk", Kind: KindString}, Column{Name: "v", Kind: KindTime, Nullable: true})
	if s.Index("v") != 1 || s.Index("missing") != -1 {
		t.Fatal("Index lookup broken")
	}
	if err := s.Validate(Row{S("k"), T(time.Now())}); err != nil {
		t.Fatalf("valid row rejected: %v", err)
	}
}
