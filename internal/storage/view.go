package storage

// TableSource hands out read handles for named tables. Both the live *DB
// (reads take the shared database lock) and a point-in-time *View (reads are
// lock-free against immutable copies) implement it, so repositories can run
// the same query code against either.
type TableSource interface {
	// Table returns a read handle for the named table, or nil if absent.
	Table(name string) *Table
}

// View is an immutable point-in-time read handle over every table in the
// database. Acquiring one is O(tables): each table's B-trees are cloned by
// reference (copy-on-write), so the view costs a few small allocations, not
// a data copy. Reads through a view never touch the database lock — the
// query-heavy API endpoints scan a view while writers keep committing — and
// always observe exactly the state at acquisition time.
type View struct {
	tables map[string]*Table
}

// View captures a consistent snapshot of all tables. It takes the writer
// lock only for the clone instant (cloning invalidates in-place ownership of
// the live trees, which must not race an Apply).
func (db *DB) View() *View {
	db.mu.Lock()
	defer db.mu.Unlock()
	tables := make(map[string]*Table, len(db.tables))
	for name, t := range db.tables {
		tables[name] = t.snapshotLocked()
	}
	return &View{tables: tables}
}

// Table returns the view's read handle for the named table, or nil if the
// table did not exist when the view was taken.
func (v *View) Table(name string) *Table { return v.tables[name] }

// Tables returns the names of all tables in the view (unordered).
func (v *View) Tables() []string {
	names := make([]string, 0, len(v.tables))
	for n := range v.tables {
		names = append(names, n)
	}
	return names
}

// snapshotLocked clones the table for lock-free reading. The returned handle
// has no mutex (rlock no-ops) because nothing can ever mutate it: the live
// side copies shared B-tree nodes before writing them. Caller holds the DB
// writer lock.
func (t *Table) snapshotLocked() *Table {
	out := &Table{
		schema:    t.schema,
		primary:   t.primary.clone(),
		secondary: make(map[string]*btree, len(t.secondary)),
	}
	for col, idx := range t.secondary {
		out.secondary[col] = idx.clone()
	}
	return out
}
