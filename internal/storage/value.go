// Package storage implements the embedded database engine that backs every
// repository in the preservation architecture: the data repository, the
// workflow repository and the data-provenance repository.
//
// The engine is deliberately small but complete: typed schemas, a binary row
// codec, an in-memory B-tree primary index with optional secondary indexes,
// a write-ahead log with CRC-framed records and group commit, snapshots, and
// crash recovery (snapshot load + WAL replay). It is single-process and
// single-writer, which matches the paper's deployment (one curation service
// in front of the collection database).
package storage

import (
	"fmt"
	"strconv"
	"time"
)

// Kind enumerates the column types supported by the engine.
type Kind uint8

// Supported column kinds.
const (
	KindNull Kind = iota
	KindString
	KindInt
	KindFloat
	KindBool
	KindTime
	KindBytes
)

// String returns the lowercase name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindString:
		return "string"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindBool:
		return "bool"
	case KindTime:
		return "time"
	case KindBytes:
		return "bytes"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Value is a dynamically typed cell. The zero Value is NULL.
type Value struct {
	kind Kind
	str  string
	i    int64
	f    float64
	b    bool
	t    time.Time
	raw  []byte
}

// Null returns the NULL value.
func Null() Value { return Value{} }

// S builds a string value.
func S(v string) Value { return Value{kind: KindString, str: v} }

// I builds an int value.
func I(v int64) Value { return Value{kind: KindInt, i: v} }

// F builds a float value.
func F(v float64) Value { return Value{kind: KindFloat, f: v} }

// B builds a bool value.
func B(v bool) Value { return Value{kind: KindBool, b: v} }

// T builds a time value (stored in UTC at microsecond precision).
func T(v time.Time) Value { return Value{kind: KindTime, t: v.UTC().Truncate(time.Microsecond)} }

// Bytes builds a raw bytes value; the slice is not copied.
func Bytes(v []byte) Value { return Value{kind: KindBytes, raw: v} }

// Kind reports the value's kind.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// Str returns the string payload (zero value if not a string).
func (v Value) Str() string { return v.str }

// Int returns the int payload.
func (v Value) Int() int64 { return v.i }

// Float returns the float payload.
func (v Value) Float() float64 { return v.f }

// Bool returns the bool payload.
func (v Value) Bool() bool { return v.b }

// Time returns the time payload.
func (v Value) Time() time.Time { return v.t }

// Raw returns the bytes payload.
func (v Value) Raw() []byte { return v.raw }

// String renders the value for display and debugging.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindString:
		return v.str
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindBool:
		return strconv.FormatBool(v.b)
	case KindTime:
		return v.t.Format(time.RFC3339Nano)
	case KindBytes:
		return fmt.Sprintf("%x", v.raw)
	default:
		return "?"
	}
}

// Equal reports deep equality of two values, including kind.
func (v Value) Equal(o Value) bool {
	if v.kind != o.kind {
		return false
	}
	switch v.kind {
	case KindNull:
		return true
	case KindString:
		return v.str == o.str
	case KindInt:
		return v.i == o.i
	case KindFloat:
		return v.f == o.f
	case KindBool:
		return v.b == o.b
	case KindTime:
		return v.t.Equal(o.t)
	case KindBytes:
		return string(v.raw) == string(o.raw)
	default:
		return false
	}
}

// Compare orders two values. NULL sorts before everything; values of
// different kinds order by kind; otherwise natural ordering applies.
func (v Value) Compare(o Value) int {
	if v.kind != o.kind {
		if v.kind < o.kind {
			return -1
		}
		return 1
	}
	switch v.kind {
	case KindNull:
		return 0
	case KindString:
		return compareOrdered(v.str, o.str)
	case KindInt:
		return compareOrdered(v.i, o.i)
	case KindFloat:
		return compareOrdered(v.f, o.f)
	case KindBool:
		switch {
		case v.b == o.b:
			return 0
		case !v.b:
			return -1
		default:
			return 1
		}
	case KindTime:
		switch {
		case v.t.Before(o.t):
			return -1
		case v.t.After(o.t):
			return 1
		default:
			return 0
		}
	case KindBytes:
		return compareOrdered(string(v.raw), string(o.raw))
	default:
		return 0
	}
}

func compareOrdered[T interface{ ~string | ~int64 | ~float64 }](a, b T) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// Column describes one field of a table schema.
type Column struct {
	Name     string
	Kind     Kind
	Nullable bool
}

// Schema is an ordered list of columns; column 0 is the primary key.
type Schema struct {
	Table   string
	Columns []Column
	byName  map[string]int
}

// NewSchema builds and validates a schema. The first column is the primary
// key and must be non-nullable.
func NewSchema(table string, cols ...Column) (*Schema, error) {
	if table == "" {
		return nil, fmt.Errorf("storage: schema needs a table name")
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("storage: schema %q needs at least one column", table)
	}
	if cols[0].Nullable {
		return nil, fmt.Errorf("storage: schema %q primary key %q must be non-nullable", table, cols[0].Name)
	}
	s := &Schema{Table: table, Columns: cols, byName: make(map[string]int, len(cols))}
	for i, c := range cols {
		if c.Name == "" {
			return nil, fmt.Errorf("storage: schema %q column %d has no name", table, i)
		}
		if c.Kind == KindNull {
			return nil, fmt.Errorf("storage: schema %q column %q cannot have kind null", table, c.Name)
		}
		if _, dup := s.byName[c.Name]; dup {
			return nil, fmt.Errorf("storage: schema %q duplicate column %q", table, c.Name)
		}
		s.byName[c.Name] = i
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error; for package-level schemas.
func MustSchema(table string, cols ...Column) *Schema {
	s, err := NewSchema(table, cols...)
	if err != nil {
		panic(err)
	}
	return s
}

// Index returns the position of the named column, or -1.
func (s *Schema) Index(name string) int {
	i, ok := s.byName[name]
	if !ok {
		return -1
	}
	return i
}

// Validate checks a row against the schema: arity, kinds and nullability.
func (s *Schema) Validate(row Row) error {
	if len(row) != len(s.Columns) {
		return fmt.Errorf("storage: table %q row has %d values, schema has %d columns", s.Table, len(row), len(s.Columns))
	}
	for i, c := range s.Columns {
		v := row[i]
		if v.IsNull() {
			if !c.Nullable {
				return fmt.Errorf("storage: table %q column %q is not nullable", s.Table, c.Name)
			}
			continue
		}
		if v.Kind() != c.Kind {
			return fmt.Errorf("storage: table %q column %q expects %s, got %s", s.Table, c.Name, c.Kind, v.Kind())
		}
	}
	return nil
}

// Row is one record, positional per the schema.
type Row []Value

// Clone returns a deep copy of the row (bytes payloads are copied).
func (r Row) Clone() Row {
	out := make(Row, len(r))
	for i, v := range r {
		if v.kind == KindBytes {
			cp := make([]byte, len(v.raw))
			copy(cp, v.raw)
			v.raw = cp
		}
		out[i] = v
	}
	return out
}

// Get returns the value at the named column per the schema, or NULL if the
// column does not exist.
func (r Row) Get(s *Schema, name string) Value {
	i := s.Index(name)
	if i < 0 || i >= len(r) {
		return Null()
	}
	return r[i]
}
