package storage

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestBTreeSetGet(t *testing.T) {
	bt := newBTree()
	for i := 0; i < 1000; i++ {
		k := []byte(fmt.Sprintf("key-%04d", i))
		if !bt.Set(k, i) {
			t.Fatalf("Set(%q) reported replace on first insert", k)
		}
	}
	if bt.Len() != 1000 {
		t.Fatalf("Len = %d, want 1000", bt.Len())
	}
	for i := 0; i < 1000; i++ {
		k := []byte(fmt.Sprintf("key-%04d", i))
		v, ok := bt.Get(k)
		if !ok || v.(int) != i {
			t.Fatalf("Get(%q) = %v,%v; want %d,true", k, v, ok, i)
		}
	}
	if _, ok := bt.Get([]byte("missing")); ok {
		t.Fatal("Get(missing) found a value")
	}
}

func TestBTreeReplace(t *testing.T) {
	bt := newBTree()
	bt.Set([]byte("a"), 1)
	if bt.Set([]byte("a"), 2) {
		t.Fatal("second Set of same key reported insert")
	}
	if bt.Len() != 1 {
		t.Fatalf("Len = %d after replace, want 1", bt.Len())
	}
	v, _ := bt.Get([]byte("a"))
	if v.(int) != 2 {
		t.Fatalf("Get = %v, want 2", v)
	}
}

func TestBTreeDelete(t *testing.T) {
	bt := newBTree()
	const n = 2000
	for i := 0; i < n; i++ {
		bt.Set([]byte(fmt.Sprintf("k%05d", i)), i)
	}
	// Delete evens.
	for i := 0; i < n; i += 2 {
		if !bt.Delete([]byte(fmt.Sprintf("k%05d", i))) {
			t.Fatalf("Delete(k%05d) failed", i)
		}
	}
	if bt.Len() != n/2 {
		t.Fatalf("Len = %d, want %d", bt.Len(), n/2)
	}
	for i := 0; i < n; i++ {
		_, ok := bt.Get([]byte(fmt.Sprintf("k%05d", i)))
		if want := i%2 == 1; ok != want {
			t.Fatalf("Get(k%05d) present=%v, want %v", i, ok, want)
		}
	}
	if bt.Delete([]byte("absent")) {
		t.Fatal("Delete(absent) reported success")
	}
}

func TestBTreeAscendRange(t *testing.T) {
	bt := newBTree()
	for i := 0; i < 100; i++ {
		bt.Set([]byte(fmt.Sprintf("%03d", i)), i)
	}
	var got []int
	bt.Ascend([]byte("010"), []byte("020"), func(_ []byte, v any) bool {
		got = append(got, v.(int))
		return true
	})
	if len(got) != 10 || got[0] != 10 || got[9] != 19 {
		t.Fatalf("range scan [010,020) = %v", got)
	}
	// Full scan is sorted.
	var keys []string
	bt.Ascend(nil, nil, func(k []byte, _ any) bool {
		keys = append(keys, string(k))
		return true
	})
	if !sort.StringsAreSorted(keys) {
		t.Fatal("full scan not sorted")
	}
	if len(keys) != 100 {
		t.Fatalf("full scan returned %d keys, want 100", len(keys))
	}
	// Early stop.
	count := 0
	bt.Ascend(nil, nil, func(_ []byte, _ any) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Fatalf("early stop visited %d, want 5", count)
	}
}

func TestBTreeRandomizedAgainstMap(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	bt := newBTree()
	ref := map[string]int{}
	for op := 0; op < 20000; op++ {
		k := fmt.Sprintf("%04d", rng.Intn(3000))
		switch rng.Intn(3) {
		case 0, 1:
			bt.Set([]byte(k), op)
			ref[k] = op
		case 2:
			delBT := bt.Delete([]byte(k))
			_, inRef := ref[k]
			if delBT != inRef {
				t.Fatalf("op %d: Delete(%q) = %v, map has %v", op, k, delBT, inRef)
			}
			delete(ref, k)
		}
	}
	if bt.Len() != len(ref) {
		t.Fatalf("Len = %d, map has %d", bt.Len(), len(ref))
	}
	for k, v := range ref {
		got, ok := bt.Get([]byte(k))
		if !ok || got.(int) != v {
			t.Fatalf("Get(%q) = %v,%v; want %d,true", k, got, ok, v)
		}
	}
	// Scan order must match sorted map keys.
	want := make([]string, 0, len(ref))
	for k := range ref {
		want = append(want, k)
	}
	sort.Strings(want)
	i := 0
	bt.Ascend(nil, nil, func(k []byte, _ any) bool {
		if string(k) != want[i] {
			t.Fatalf("scan position %d = %q, want %q", i, k, want[i])
		}
		i++
		return true
	})
	if i != len(want) {
		t.Fatalf("scan visited %d keys, want %d", i, len(want))
	}
}

func TestBTreePropertyInsertedKeysRetrievable(t *testing.T) {
	f := func(keys [][]byte) bool {
		bt := newBTree()
		seen := map[string]bool{}
		for _, k := range keys {
			bt.Set(k, string(k))
			seen[string(k)] = true
		}
		if bt.Len() != len(seen) {
			return false
		}
		for k := range seen {
			v, ok := bt.Get([]byte(k))
			if !ok || v.(string) != k {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBTreePropertyScanSorted(t *testing.T) {
	f := func(keys [][]byte) bool {
		bt := newBTree()
		for _, k := range keys {
			bt.Set(k, true)
		}
		var prev []byte
		ok := true
		bt.Ascend(nil, nil, func(k []byte, _ any) bool {
			if prev != nil && bytes.Compare(prev, k) >= 0 {
				ok = false
				return false
			}
			prev = append(prev[:0], k...)
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
