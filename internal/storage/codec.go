package storage

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"
)

// Row wire format:
//
//	uvarint column-count
//	per column: 1 byte kind, then a kind-specific payload:
//	  null   — nothing
//	  string — uvarint length + bytes
//	  int    — zig-zag varint
//	  float  — 8 bytes IEEE-754 big-endian
//	  bool   — 1 byte
//	  time   — zig-zag varint microseconds since Unix epoch (UTC)
//	  bytes  — uvarint length + bytes
//
// The format is self-describing (kind tags are stored) so WAL replay can
// decode rows written under an earlier, narrower schema.

// EncodeRow appends the wire encoding of row to dst and returns the result.
func EncodeRow(dst []byte, row Row) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(row)))
	for _, v := range row {
		dst = append(dst, byte(v.kind))
		switch v.kind {
		case KindNull:
		case KindString:
			dst = binary.AppendUvarint(dst, uint64(len(v.str)))
			dst = append(dst, v.str...)
		case KindInt:
			dst = binary.AppendVarint(dst, v.i)
		case KindFloat:
			dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(v.f))
		case KindBool:
			if v.b {
				dst = append(dst, 1)
			} else {
				dst = append(dst, 0)
			}
		case KindTime:
			dst = binary.AppendVarint(dst, v.t.UnixMicro())
		case KindBytes:
			dst = binary.AppendUvarint(dst, uint64(len(v.raw)))
			dst = append(dst, v.raw...)
		}
	}
	return dst
}

// DecodeRow parses a row from buf, returning the row and the number of bytes
// consumed.
func DecodeRow(buf []byte) (Row, int, error) {
	n, sz := binary.Uvarint(buf)
	if sz <= 0 {
		return nil, 0, fmt.Errorf("storage: corrupt row header")
	}
	if n > uint64(len(buf)) { // cheap sanity bound: ≥1 byte per column
		return nil, 0, fmt.Errorf("storage: corrupt row: %d columns in %d bytes", n, len(buf))
	}
	off := sz
	row := make(Row, 0, n)
	for c := uint64(0); c < n; c++ {
		if off >= len(buf) {
			return nil, 0, fmt.Errorf("storage: truncated row at column %d", c)
		}
		kind := Kind(buf[off])
		off++
		var v Value
		switch kind {
		case KindNull:
			v = Null()
		case KindString, KindBytes:
			l, sz := binary.Uvarint(buf[off:])
			if sz <= 0 || uint64(len(buf)-off-sz) < l {
				return nil, 0, fmt.Errorf("storage: truncated %s at column %d", kind, c)
			}
			off += sz
			payload := buf[off : off+int(l)]
			off += int(l)
			if kind == KindString {
				v = S(string(payload))
			} else {
				cp := make([]byte, len(payload))
				copy(cp, payload)
				v = Bytes(cp)
			}
		case KindInt:
			x, sz := binary.Varint(buf[off:])
			if sz <= 0 {
				return nil, 0, fmt.Errorf("storage: truncated int at column %d", c)
			}
			off += sz
			v = I(x)
		case KindFloat:
			if len(buf)-off < 8 {
				return nil, 0, fmt.Errorf("storage: truncated float at column %d", c)
			}
			v = F(math.Float64frombits(binary.BigEndian.Uint64(buf[off:])))
			off += 8
		case KindBool:
			if off >= len(buf) {
				return nil, 0, fmt.Errorf("storage: truncated bool at column %d", c)
			}
			v = B(buf[off] != 0)
			off++
		case KindTime:
			us, sz := binary.Varint(buf[off:])
			if sz <= 0 {
				return nil, 0, fmt.Errorf("storage: truncated time at column %d", c)
			}
			off += sz
			v = T(time.UnixMicro(us).UTC())
		default:
			return nil, 0, fmt.Errorf("storage: unknown kind %d at column %d", kind, c)
		}
		row = append(row, v)
	}
	return row, off, nil
}

// EncodeKey produces an order-preserving byte encoding of a value, used as a
// B-tree key: comparing encodings bytewise equals Value.Compare for values of
// the same kind.
func EncodeKey(dst []byte, v Value) []byte {
	dst = append(dst, byte(v.kind))
	switch v.kind {
	case KindNull:
	case KindString:
		dst = append(dst, v.str...)
		dst = append(dst, 0)
	case KindInt:
		dst = binary.BigEndian.AppendUint64(dst, uint64(v.i)^(1<<63))
	case KindFloat:
		bits := math.Float64bits(v.f)
		if v.f >= 0 {
			bits ^= 1 << 63
		} else {
			bits = ^bits
		}
		dst = binary.BigEndian.AppendUint64(dst, bits)
	case KindBool:
		if v.b {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
	case KindTime:
		dst = binary.BigEndian.AppendUint64(dst, uint64(v.t.UnixMicro())^(1<<63))
	case KindBytes:
		dst = append(dst, v.raw...)
		dst = append(dst, 0)
	}
	return dst
}
