//go:build race

package storage

// raceEnabled reports whether the race detector instruments this build.
// Allocation-count guards skip under -race: instrumentation changes the
// allocation profile, so the counts only hold in plain builds.
const raceEnabled = true
