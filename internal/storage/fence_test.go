package storage

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

func fenceDB(t testing.TB) *DB {
	t.Helper()
	db, err := Open(t.TempDir(), Options{Sync: SyncNever})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func fenceTestSchema(t testing.TB, db *DB, table string) {
	t.Helper()
	s, err := NewSchema(table,
		Column{Name: "key", Kind: KindString},
		Column{Name: "payload", Kind: KindString},
	)
	if err != nil {
		t.Fatalf("schema: %v", err)
	}
	if err := db.CreateTable(s); err != nil {
		t.Fatalf("create table: %v", err)
	}
}

func TestFenceTokenLifecycle(t *testing.T) {
	db := fenceDB(t)
	if got := db.FenceToken("run/r1"); got != 0 {
		t.Fatalf("fresh token = %d, want 0", got)
	}
	if err := db.AdvanceFence("run/r1", 1); err != nil {
		t.Fatalf("advance to 1: %v", err)
	}
	if got := db.FenceToken("run/r1"); got != 1 {
		t.Fatalf("token = %d, want 1", got)
	}
	// Strictly monotonic: re-advancing to the same or a lower token loses.
	if err := db.AdvanceFence("run/r1", 1); !errors.Is(err, ErrStaleFence) {
		t.Fatalf("advance to same token: err = %v, want ErrStaleFence", err)
	}
	if err := db.AdvanceFence("run/r1", 0); !errors.Is(err, ErrStaleFence) {
		t.Fatalf("advance backwards: err = %v, want ErrStaleFence", err)
	}
	if err := db.AdvanceFence("run/r1", 5); err != nil {
		t.Fatalf("advance to 5: %v", err)
	}
	// Fences are per-resource.
	if got := db.FenceToken("run/r2"); got != 0 {
		t.Fatalf("unrelated token = %d, want 0", got)
	}
}

func TestApplyFencedRejectsStaleToken(t *testing.T) {
	db := fenceDB(t)
	fenceTestSchema(t, db, "hist")
	// Before any advance, token 0 writes freely (the unorchestrated case).
	if err := db.ApplyFenced("run/r1", 0, InsertOp("hist", Row{S("a"), S("1")})); err != nil {
		t.Fatalf("apply at token 0: %v", err)
	}
	if err := db.AdvanceFence("run/r1", 2); err != nil {
		t.Fatalf("advance: %v", err)
	}
	// The old holder's writes are rejected with zero effect.
	err := db.ApplyFenced("run/r1", 1, InsertOp("hist", Row{S("b"), S("2")}))
	if !errors.Is(err, ErrStaleFence) {
		t.Fatalf("stale apply: err = %v, want ErrStaleFence", err)
	}
	if db.Table("hist").Has(S("b")) {
		t.Fatal("stale apply left a row behind")
	}
	// The new holder writes under the advanced token; equality is enough.
	if err := db.ApplyFenced("run/r1", 2, InsertOp("hist", Row{S("c"), S("3")})); err != nil {
		t.Fatalf("apply at current token: %v", err)
	}
	// A fence on one resource does not gate another.
	if err := db.ApplyFenced("run/r9", 0, InsertOp("hist", Row{S("d"), S("4")})); err != nil {
		t.Fatalf("apply under unrelated fence: %v", err)
	}
}

func TestFenceSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if err := db.AdvanceFence("run/r1", 7); err != nil {
		t.Fatalf("advance: %v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	db, err = Open(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer db.Close()
	if got := db.FenceToken("run/r1"); got != 7 {
		t.Fatalf("token after reopen = %d, want 7", got)
	}
	if err := db.AdvanceFence("run/r1", 7); !errors.Is(err, ErrStaleFence) {
		t.Fatalf("re-advance after reopen: err = %v, want ErrStaleFence", err)
	}
}

// TestFenceConcurrentAdvance pins the CAS property stealers rely on: many
// goroutines racing to advance to the same token — exactly one wins, the rest
// observe ErrStaleFence.
func TestFenceConcurrentAdvance(t *testing.T) {
	db := fenceDB(t)
	const racers = 8
	var wg sync.WaitGroup
	wins := make(chan int, racers)
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := db.AdvanceFence("run/contended", 1); err == nil {
				wins <- i
			} else if !errors.Is(err, ErrStaleFence) {
				t.Errorf("racer %d: unexpected error %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	close(wins)
	if n := len(wins); n != 1 {
		t.Fatalf("winners = %d, want exactly 1", n)
	}
}

// BenchmarkFencedAppend measures the cost the fencing check adds to a
// history-style append batch: the same 8-op insert batch applied unfenced
// (plain Apply) and fenced (ApplyFenced under an advanced token). The fenced
// path adds one B-tree point read under the already-held write lock.
func BenchmarkFencedAppend(b *testing.B) {
	const batch = 8
	run := func(b *testing.B, fenced bool) {
		db := fenceDB(b)
		fenceTestSchema(b, db, "hist")
		if fenced {
			if err := db.AdvanceFence("run/bench", 1); err != nil {
				b.Fatalf("advance: %v", err)
			}
		}
		payload := S(`{"kind":"iteration_element","activity":"Catalog_of_life","element":3}`)
		ops := make([]Op, batch)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := range ops {
				ops[j] = InsertOp("hist", Row{S(fmt.Sprintf("k%09d-%d", i, j)), payload})
			}
			var err error
			if fenced {
				err = db.ApplyFenced("run/bench", 1, ops...)
			} else {
				err = db.Apply(ops...)
			}
			if err != nil {
				b.Fatalf("apply: %v", err)
			}
		}
	}
	b.Run("unfenced", func(b *testing.B) { run(b, false) })
	b.Run("fenced", func(b *testing.B) { run(b, true) })
}
