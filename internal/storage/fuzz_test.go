package storage

import (
	"os"
	"testing"
	"time"
)

func writeFile(path string, data []byte) error { return os.WriteFile(path, data, 0o644) }

// FuzzDecodeRow asserts DecodeRow never panics and that successful decodes
// re-encode to something decodable (round-trip closure).
func FuzzDecodeRow(f *testing.F) {
	f.Add(EncodeRow(nil, Row{S("FNJV-00001"), I(42), F(3.14), B(true), Null()}))
	f.Add(EncodeRow(nil, Row{T(time.Unix(1000, 0)), Bytes([]byte{1, 2, 3})}))
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF})
	f.Add([]byte{0x01, 0x07})
	f.Fuzz(func(t *testing.T, data []byte) {
		row, n, err := DecodeRow(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		enc := EncodeRow(nil, row)
		row2, _, err := DecodeRow(enc)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(row2) != len(row) {
			t.Fatalf("round trip arity %d != %d", len(row2), len(row))
		}
		for i := range row {
			if !row[i].Equal(row2[i]) {
				t.Fatalf("column %d drifted: %v != %v", i, row[i], row2[i])
			}
		}
	})
}

// FuzzWALReplay asserts replay never panics or errors on arbitrary log
// bytes — a corrupt tail is data, not a crash.
func FuzzWALReplay(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x04, 0x00, 0x00, 0x00, 0xde, 0xad, 0xbe, 0xef, 1, 2, 3, 4})
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := dir + "/wal.log"
		if err := writeFile(path, data); err != nil {
			t.Fatal(err)
		}
		n := 0
		off, err := replayWAL(path, func(payload []byte) error {
			n++
			return nil
		})
		if err != nil {
			t.Fatalf("replay errored on garbage: %v", err)
		}
		if off < 0 || off > int64(len(data)) {
			t.Fatalf("intact offset %d out of [0,%d]", off, len(data))
		}
	})
}
