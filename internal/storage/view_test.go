package storage

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// TestBTreeCloneIsolation hammers a tree and its clone with divergent edits
// and checks neither side observes the other's writes.
func TestBTreeCloneIsolation(t *testing.T) {
	orig := newBTree()
	for i := 0; i < 5000; i++ {
		orig.Set([]byte(fmt.Sprintf("k%05d", i)), i)
	}
	snap := orig.clone()

	// Diverge: delete evens and rewrite odds in the original, leave the clone.
	for i := 0; i < 5000; i += 2 {
		orig.Delete([]byte(fmt.Sprintf("k%05d", i)))
	}
	for i := 1; i < 5000; i += 2 {
		orig.Set([]byte(fmt.Sprintf("k%05d", i)), -i)
	}
	// Insert fresh keys into the clone; the original must not see them.
	for i := 5000; i < 5200; i++ {
		snap.Set([]byte(fmt.Sprintf("k%05d", i)), i)
	}

	if snap.Len() != 5200 {
		t.Fatalf("clone Len = %d, want 5200", snap.Len())
	}
	if orig.Len() != 2500 {
		t.Fatalf("original Len = %d, want 2500", orig.Len())
	}
	for i := 0; i < 5000; i++ {
		k := []byte(fmt.Sprintf("k%05d", i))
		v, ok := snap.Get(k)
		if !ok || v.(int) != i {
			t.Fatalf("clone Get(%s) = %v,%v; want pre-divergence %d", k, v, ok, i)
		}
		ov, ook := orig.Get(k)
		if i%2 == 0 {
			if ook {
				t.Fatalf("original still has deleted key %s", k)
			}
		} else if !ook || ov.(int) != -i {
			t.Fatalf("original Get(%s) = %v,%v; want %d", k, ov, ook, -i)
		}
	}
	if _, ok := orig.Get([]byte("k05100")); ok {
		t.Fatal("original sees key inserted into the clone")
	}
}

// TestBTreeCloneRandomized replays random divergent op sequences against map
// references for both sides.
func TestBTreeCloneRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	bt := newBTree()
	ref := map[string]int{}
	for op := 0; op < 4000; op++ {
		k := fmt.Sprintf("%04d", rng.Intn(800))
		bt.Set([]byte(k), op)
		ref[k] = op
	}
	snap := bt.clone()
	snapRef := make(map[string]int, len(ref))
	for k, v := range ref {
		snapRef[k] = v
	}
	for op := 0; op < 8000; op++ {
		k := fmt.Sprintf("%04d", rng.Intn(1000))
		if rng.Intn(3) == 0 {
			bt.Delete([]byte(k))
			delete(ref, k)
		} else {
			bt.Set([]byte(k), -op)
			ref[k] = -op
		}
		// Occasionally mutate the snapshot too: clones are full trees.
		if op%5 == 0 {
			k2 := fmt.Sprintf("%04d", rng.Intn(1000))
			snap.Set([]byte(k2), op)
			snapRef[k2] = op
		}
	}
	check := func(name string, tr *btree, want map[string]int) {
		if tr.Len() != len(want) {
			t.Fatalf("%s Len = %d, want %d", name, tr.Len(), len(want))
		}
		for k, v := range want {
			got, ok := tr.Get([]byte(k))
			if !ok || got.(int) != v {
				t.Fatalf("%s Get(%s) = %v,%v; want %d", name, k, got, ok, v)
			}
		}
	}
	check("original", bt, ref)
	check("clone", snap, snapRef)
}

// TestDBViewSnapshotIsolation verifies a View is frozen at acquisition time
// while the live DB keeps changing, including secondary-index reads.
func TestDBViewSnapshotIsolation(t *testing.T) {
	db := openTestDB(t, Options{Sync: SyncNever})
	if err := db.CreateTable(testSchema(t)); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateIndex("recordings", "species"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		row := Row{S(fmt.Sprintf("r%03d", i)), S("sp-a"), I(int64(i)), Null()}
		if err := db.Insert("recordings", row); err != nil {
			t.Fatal(err)
		}
	}
	view := db.View()

	// Mutate the live DB after the view: delete half, retag the rest.
	for i := 0; i < 100; i += 2 {
		if err := db.Delete("recordings", S(fmt.Sprintf("r%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i < 100; i += 2 {
		row := Row{S(fmt.Sprintf("r%03d", i)), S("sp-b"), I(int64(i)), Null()}
		if err := db.Update("recordings", row); err != nil {
			t.Fatal(err)
		}
	}

	vt := view.Table("recordings")
	if vt.Len() != 100 {
		t.Fatalf("view Len = %d, want 100", vt.Len())
	}
	rows, err := vt.Lookup("species", S("sp-a"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 100 {
		t.Fatalf("view index Lookup(sp-a) = %d rows, want 100", len(rows))
	}
	if got, err := vt.Get(S("r000")); err != nil || got[1].Str() != "sp-a" {
		t.Fatalf("view Get(r000) = %v, %v; want sp-a row", got, err)
	}
	// Live side reflects the mutations.
	if n := db.Table("recordings").Len(); n != 50 {
		t.Fatalf("live Len = %d, want 50", n)
	}
	liveRows, err := db.Table("recordings").Lookup("species", S("sp-b"))
	if err != nil {
		t.Fatal(err)
	}
	if len(liveRows) != 50 {
		t.Fatalf("live index Lookup(sp-b) = %d rows, want 50", len(liveRows))
	}
	// A table created after the view is invisible through it.
	s2, err := NewSchema("later", Column{Name: "id", Kind: KindString})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable(s2); err != nil {
		t.Fatal(err)
	}
	if view.Table("later") != nil {
		t.Fatal("view sees table created after acquisition")
	}
	if len(view.Tables()) != 1 {
		t.Fatalf("view.Tables() = %v, want [recordings]", view.Tables())
	}
}

// TestDBViewConcurrentWithWriter scans views from many goroutines while a
// writer keeps committing — under -race this proves snapshot reads need no
// lock, and every scan must observe a consistent (full-batch) state.
func TestDBViewConcurrentWithWriter(t *testing.T) {
	db := openTestDB(t, Options{Sync: SyncNever})
	if err := db.CreateTable(testSchema(t)); err != nil {
		t.Fatal(err)
	}
	const rows = 200
	for i := 0; i < rows; i++ {
		if err := db.Insert("recordings", Row{S(fmt.Sprintf("r%03d", i)), Null(), I(0), Null()}); err != nil {
			t.Fatal(err)
		}
	}
	stop := make(chan struct{})
	var writerErr error
	var writerWG, wg sync.WaitGroup
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		for gen := int64(1); ; gen++ {
			select {
			case <-stop:
				return
			default:
			}
			// One atomic batch rewrites every row to the same generation.
			ops := make([]Op, 0, rows)
			for i := 0; i < rows; i++ {
				ops = append(ops, UpdateOp("recordings", Row{S(fmt.Sprintf("r%03d", i)), Null(), I(gen), Null()}))
			}
			if err := db.Apply(ops...); err != nil {
				writerErr = err
				return
			}
		}
	}()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 50; iter++ {
				v := db.View().Table("recordings")
				seen := map[int64]int{}
				n := 0
				v.Scan(func(r Row) bool {
					seen[r[2].Int()]++
					n++
					return true
				})
				if n != rows {
					t.Errorf("snapshot scan saw %d rows, want %d", n, rows)
					return
				}
				if len(seen) != 1 {
					t.Errorf("snapshot scan saw torn generations: %v", seen)
					return
				}
			}
		}()
	}
	// Let readers finish, then stop the writer.
	wg.Wait()
	close(stop)
	writerWG.Wait()
	if writerErr != nil {
		t.Fatalf("writer failed: %v", writerErr)
	}
}
