package storage

import (
	"errors"
	"fmt"
)

// ErrStaleFence is returned by ApplyFenced and AdvanceFence when the caller's
// fencing token is older than the durable token for the resource. A writer
// seeing it must stop: another holder has taken ownership and every further
// write from this holder would interleave with the new owner's.
var ErrStaleFence = errors.New("storage: stale fencing token")

// fencesTable holds one durable row per fenced resource: (name, token). It is
// created lazily by the first AdvanceFence and written through the normal op
// path, so WAL replay and snapshots restore tokens exactly like user data.
const fencesTable = "sys_fences"

func fencesSchema() *Schema {
	s, err := NewSchema(fencesTable,
		Column{Name: "name", Kind: KindString},
		Column{Name: "token", Kind: KindInt},
	)
	if err != nil {
		panic(err) // static schema; cannot fail
	}
	return s
}

// fenceTokenLocked reads the durable token for name; 0 when the fences table
// or the row is absent. Callers hold db.mu (read or write).
func (db *DB) fenceTokenLocked(name string) int64 {
	t := db.tables[fencesTable]
	if t == nil {
		return 0
	}
	row, err := t.getLocked(S(name))
	if err != nil {
		return 0
	}
	return row[1].Int()
}

// FenceToken returns the durable fencing token for name (0 if never advanced).
func (db *DB) FenceToken(name string) int64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.fenceTokenLocked(name)
}

// ApplyFenced is Apply guarded by a fencing token: the batch is validated,
// logged and applied only if token is at least the durable token for name.
// A holder whose lease was stolen (token advanced past its own) gets
// ErrStaleFence and zero writes — the check and the apply happen under one
// exclusive lock, so a stale holder can never interleave with the new owner.
// Equality is allowed: the current holder keeps writing under its own token.
func (db *DB) ApplyFenced(name string, token int64, ops ...Op) error {
	if len(ops) == 0 {
		return nil
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return fmt.Errorf("storage: db is closed")
	}
	if cur := db.fenceTokenLocked(name); token < cur {
		return fmt.Errorf("%w: %q token %d < %d", ErrStaleFence, name, token, cur)
	}
	return db.applyLocked(ops)
}

// AdvanceFence durably moves the token for name forward. Tokens are strictly
// monotonic: advancing to a token <= the stored one returns ErrStaleFence, so
// two stealers racing to the same token cannot both win. The write goes
// through the normal op path (WAL + snapshot) and is fsynced immediately —
// an acknowledged fence advance survives a crash even under SyncOnClose.
func (db *DB) AdvanceFence(name string, token int64) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return fmt.Errorf("storage: db is closed")
	}
	var ops []Op
	t := db.tables[fencesTable]
	if t == nil {
		ops = append(ops, CreateTableOp(fencesSchema()))
	}
	cur := db.fenceTokenLocked(name)
	if token <= cur {
		return fmt.Errorf("%w: advance %q to %d but token is %d", ErrStaleFence, name, token, cur)
	}
	row := Row{S(name), I(token)}
	if t != nil && t.hasLocked(S(name)) {
		ops = append(ops, UpdateOp(fencesTable, row))
	} else {
		ops = append(ops, InsertOp(fencesTable, row))
	}
	if err := db.applyLocked(ops); err != nil {
		return err
	}
	return db.log.Sync()
}
