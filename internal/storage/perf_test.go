package storage

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// perfRow mirrors the provenance node-row shape: a realistic mixed-kind row
// for the delta-encode hot path.
func perfRow() Row {
	return Row{
		S("run-000042/p:ingest"),
		S("run-000042"),
		S("process"),
		S("ingest"),
		T(time.UnixMicro(1700000000000000).UTC()),
		I(17),
		Bytes([]byte("k1\x00v1\x00k2\x00v2")),
	}
}

var (
	encSink []byte
	rowSink Row
)

// TestEncodeRowAllocs guards the steady-state delta-encode path: encoding a
// row into a warm buffer must not allocate. This is what lets Repository and
// BatchWriter reuse append buffers across flushes.
func TestEncodeRowAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts differ under -race")
	}
	row := perfRow()
	dst := EncodeRow(nil, row) // warm to full capacity
	if allocs := testing.AllocsPerRun(100, func() {
		encSink = EncodeRow(dst[:0], row)
	}); allocs != 0 {
		t.Fatalf("EncodeRow into warm buffer allocates %.1f/op, want 0", allocs)
	}
}

// TestEncodeKeyAllocs guards the point-read path: key encoding into a warm
// buffer must not allocate.
func TestEncodeKeyAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts differ under -race")
	}
	pk := S("run-000042/p:ingest")
	dst := EncodeKey(nil, pk)
	if allocs := testing.AllocsPerRun(100, func() {
		encSink = EncodeKey(dst[:0], pk)
	}); allocs != 0 {
		t.Fatalf("EncodeKey into warm buffer allocates %.1f/op, want 0", allocs)
	}
}

// TestTableGetAllocs guards the pooled-key read path end to end: a Table.Get
// should only allocate for the error-free return value plumbing, never for
// the probe key.
func TestTableGetAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts differ under -race")
	}
	schema, err := NewSchema("t", Column{Name: "id", Kind: KindString}, Column{Name: "n", Kind: KindInt})
	if err != nil {
		t.Fatal(err)
	}
	tbl := newTable(schema, nil)
	for i := 0; i < 1000; i++ {
		if err := tbl.applyInsert(Row{S(fmt.Sprintf("k%04d", i)), I(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	pk := S("k0500")
	if allocs := testing.AllocsPerRun(100, func() {
		row, err := tbl.Get(pk)
		if err != nil {
			t.Fatal(err)
		}
		rowSink = row
	}); allocs != 0 {
		t.Fatalf("Table.Get allocates %.1f/op, want 0", allocs)
	}
}

func BenchmarkEncodeRow(b *testing.B) {
	row := perfRow()
	dst := EncodeRow(nil, row)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = EncodeRow(dst[:0], row)
	}
	encSink = dst
}

func BenchmarkEncodeKey(b *testing.B) {
	pk := S("run-000042/p:ingest")
	dst := EncodeKey(nil, pk)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = EncodeKey(dst[:0], pk)
	}
	encSink = dst
}

func openBenchDB(b *testing.B) *DB {
	b.Helper()
	db, err := Open(b.TempDir(), Options{Sync: SyncNever})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { db.Close() })
	return db
}

// BenchmarkReadUnderWrite measures a full-table scan while a writer commits
// concurrently: "locked" scans through the live handle (shares the RWMutex
// with the writer), "snapshot" scans a View (lock-free after the O(tables)
// acquisition). The gap between the two is the read/write contention the
// snapshot path removes from the /api/v1 endpoints. The writer is paced at
// exactly one 50-update batch per scan (handed off through an unbuffered
// channel, applied while the scan runs) — a free-running writer would make
// ns/op and allocs/op measure the host's goroutine-scheduling ratio instead
// of the storage layer.
func BenchmarkReadUnderWrite(b *testing.B) {
	const rows = 2000
	for _, mode := range []string{"locked", "snapshot"} {
		b.Run(mode, func(b *testing.B) {
			db := openBenchDB(b)
			schema, err := NewSchema("recordings",
				Column{Name: "id", Kind: KindString},
				Column{Name: "species", Kind: KindString, Nullable: true},
				Column{Name: "year", Kind: KindInt, Nullable: true},
			)
			if err != nil {
				b.Fatal(err)
			}
			if err := db.CreateTable(schema); err != nil {
				b.Fatal(err)
			}
			for i := 0; i < rows; i++ {
				if err := db.Insert("recordings", Row{S(fmt.Sprintf("r%05d", i)), S("sp"), I(0)}); err != nil {
					b.Fatal(err)
				}
			}
			work := make(chan struct{})
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				gen := int64(1)
				for range work {
					ops := make([]Op, 0, 50)
					for i := 0; i < 50; i++ {
						ops = append(ops, UpdateOp("recordings",
							Row{S(fmt.Sprintf("r%05d", int(gen)*53%rows)), S("sp"), I(gen)}))
						gen++
					}
					if err := db.Apply(ops...); err != nil {
						return
					}
				}
			}()
			b.ReportAllocs()
			b.ResetTimer()
			n := 0
			for i := 0; i < b.N; i++ {
				work <- struct{}{} // writer applies one batch while we scan
				var tbl *Table
				if mode == "snapshot" {
					tbl = db.View().Table("recordings")
				} else {
					tbl = db.Table("recordings")
				}
				n = 0
				tbl.Scan(func(Row) bool { n++; return true })
				if n != rows {
					b.Fatalf("scan saw %d rows, want %d", n, rows)
				}
			}
			b.StopTimer()
			close(work)
			wg.Wait()
			b.ReportMetric(float64(rows)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
		})
	}
}
