package storage

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
	"time"
)

func sampleRow() Row {
	return Row{
		S("FNJV-0001"),
		I(42),
		F(3.14159),
		B(true),
		T(time.Date(2013, 11, 12, 19, 58, 9, 767000000, time.UTC)),
		Bytes([]byte{0x01, 0x02, 0xFF}),
		Null(),
		S(""),
	}
}

func TestRowRoundTrip(t *testing.T) {
	row := sampleRow()
	enc := EncodeRow(nil, row)
	dec, n, err := DecodeRow(enc)
	if err != nil {
		t.Fatalf("DecodeRow: %v", err)
	}
	if n != len(enc) {
		t.Fatalf("DecodeRow consumed %d of %d bytes", n, len(enc))
	}
	if len(dec) != len(row) {
		t.Fatalf("decoded %d values, want %d", len(dec), len(row))
	}
	for i := range row {
		if !row[i].Equal(dec[i]) {
			t.Errorf("column %d: got %v (%s), want %v (%s)", i, dec[i], dec[i].Kind(), row[i], row[i].Kind())
		}
	}
}

func TestRowRoundTripEmpty(t *testing.T) {
	enc := EncodeRow(nil, Row{})
	dec, _, err := DecodeRow(enc)
	if err != nil {
		t.Fatalf("DecodeRow: %v", err)
	}
	if len(dec) != 0 {
		t.Fatalf("decoded %d values, want 0", len(dec))
	}
}

func TestDecodeRowTruncated(t *testing.T) {
	enc := EncodeRow(nil, sampleRow())
	for cut := 1; cut < len(enc); cut++ {
		if _, _, err := DecodeRow(enc[:cut]); err == nil {
			// Some prefixes decode as a shorter valid row only if the column
			// count happens to be satisfied; the count here is fixed at 8, so
			// any cut must fail.
			t.Fatalf("DecodeRow of %d-byte prefix succeeded", cut)
		}
	}
}

func TestDecodeRowGarbage(t *testing.T) {
	if _, _, err := DecodeRow([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}); err == nil {
		t.Fatal("DecodeRow of garbage succeeded")
	}
}

func TestEncodeKeyOrderPreserving(t *testing.T) {
	cases := [][2]Value{
		{S("abelha"), S("abelhudo")},
		{S(""), S("a")},
		{I(-10), I(-9)},
		{I(-1), I(0)},
		{I(0), I(1)},
		{I(math.MinInt64), I(math.MaxInt64)},
		{F(-math.MaxFloat64), F(-1)},
		{F(-1), F(-0.5)},
		{F(-0.5), F(0)},
		{F(0), F(0.5)},
		{F(0.5), F(math.MaxFloat64)},
		{B(false), B(true)},
		{T(time.Unix(0, 0)), T(time.Unix(1, 0))},
		{T(time.Date(1960, 1, 1, 0, 0, 0, 0, time.UTC)), T(time.Date(2013, 1, 1, 0, 0, 0, 0, time.UTC))},
	}
	for _, c := range cases {
		lo, hi := EncodeKey(nil, c[0]), EncodeKey(nil, c[1])
		if bytes.Compare(lo, hi) >= 0 {
			t.Errorf("EncodeKey(%v) >= EncodeKey(%v)", c[0], c[1])
		}
	}
}

func TestEncodeKeyOrderPropertyInts(t *testing.T) {
	f := func(a, b int64) bool {
		ka, kb := EncodeKey(nil, I(a)), EncodeKey(nil, I(b))
		cmp := bytes.Compare(ka, kb)
		switch {
		case a < b:
			return cmp < 0
		case a > b:
			return cmp > 0
		default:
			return cmp == 0
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeKeyOrderPropertyStrings(t *testing.T) {
	f := func(a, b string) bool {
		ka, kb := EncodeKey(nil, S(a)), EncodeKey(nil, S(b))
		cmp := bytes.Compare(ka, kb)
		switch {
		case a < b:
			return cmp <= 0 // NUL-terminated: "a\x00b" vs "a" edge handled below
		case a > b:
			return cmp >= 0
		default:
			return cmp == 0
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRowRoundTripProperty(t *testing.T) {
	f := func(s string, i int64, fl float64, b bool, raw []byte) bool {
		if math.IsNaN(fl) {
			fl = 0
		}
		row := Row{S(s), I(i), F(fl), B(b), Bytes(raw), Null()}
		dec, n, err := DecodeRow(EncodeRow(nil, row))
		if err != nil || n == 0 || len(dec) != len(row) {
			return false
		}
		for j := range row {
			if !row[j].Equal(dec[j]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestValueCompareAndEqual(t *testing.T) {
	if !S("x").Equal(S("x")) || S("x").Equal(S("y")) {
		t.Fatal("string Equal broken")
	}
	if S("x").Equal(I(1)) {
		t.Fatal("cross-kind Equal must be false")
	}
	if Null().Compare(S("a")) >= 0 {
		t.Fatal("NULL must sort before strings")
	}
	if c := F(1.5).Compare(F(1.5)); c != 0 {
		t.Fatalf("equal floats compare %d", c)
	}
	tm := time.Now()
	if !T(tm).Equal(T(tm)) {
		t.Fatal("time Equal broken")
	}
	if T(tm).Compare(T(tm.Add(time.Second))) != -1 {
		t.Fatal("time Compare broken")
	}
}

func TestValueStringRendering(t *testing.T) {
	for _, tc := range []struct {
		v    Value
		want string
	}{
		{Null(), "NULL"},
		{S("hi"), "hi"},
		{I(-3), "-3"},
		{B(true), "true"},
	} {
		if got := tc.v.String(); got != tc.want {
			t.Errorf("String(%v-kind) = %q, want %q", tc.v.Kind(), got, tc.want)
		}
	}
}

func TestRowCloneIsDeep(t *testing.T) {
	raw := []byte{1, 2, 3}
	row := Row{S("k"), Bytes(raw)}
	cl := row.Clone()
	raw[0] = 99
	if cl[1].Raw()[0] != 1 {
		t.Fatal("Clone shares bytes payload with original")
	}
}
