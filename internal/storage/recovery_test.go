package storage

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// TestRandomizedCrashRecovery simulates crashes at arbitrary WAL byte
// offsets: after truncating the log mid-record, reopening must recover a
// consistent prefix of the committed history — never a corrupted or partial
// batch.
func TestRandomizedCrashRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 8; trial++ {
		dir := t.TempDir()
		db, err := Open(dir, Options{Sync: SyncAlways})
		if err != nil {
			t.Fatal(err)
		}
		schema := MustSchema("t",
			Column{Name: "k", Kind: KindString},
			Column{Name: "seq", Kind: KindInt},
			Column{Name: "payload", Kind: KindString, Nullable: true})
		if err := db.CreateTable(schema); err != nil {
			t.Fatal(err)
		}
		// Commit a mix of single ops and batches.
		committed := 0
		for i := 0; i < 60; i++ {
			if rng.Intn(4) == 0 {
				// Atomic pair.
				err = db.Apply(
					InsertOp("t", Row{S(fmt.Sprintf("k%04d-a", i)), I(int64(i)), S("batched")}),
					InsertOp("t", Row{S(fmt.Sprintf("k%04d-b", i)), I(int64(i)), S("batched")}),
				)
			} else {
				err = db.Insert("t", Row{S(fmt.Sprintf("k%04d", i)), I(int64(i)), S("single")})
			}
			if err != nil {
				t.Fatal(err)
			}
			committed++
		}
		db.Close()

		walPath := filepath.Join(dir, walFile)
		st, err := os.Stat(walPath)
		if err != nil {
			t.Fatal(err)
		}
		// Crash: truncate at a random offset.
		cut := rng.Int63n(st.Size() + 1)
		if err := os.Truncate(walPath, cut); err != nil {
			t.Fatal(err)
		}

		db2, err := Open(dir, Options{Sync: SyncAlways})
		if err != nil {
			t.Fatalf("trial %d: reopen after crash at %d/%d: %v", trial, cut, st.Size(), err)
		}
		tab := db2.Table("t")
		if tab == nil {
			// The create-table record itself was cut: acceptable only if cut
			// happened before the first record completed.
			if cut > 64 {
				t.Fatalf("trial %d: table lost with %d bytes intact", trial, cut)
			}
			db2.Close()
			continue
		}
		// Consistency: batched pairs are atomic — a/b exist together or not
		// at all; every surviving row decodes fully.
		for i := 0; i < 60; i++ {
			a := tab.Has(S(fmt.Sprintf("k%04d-a", i)))
			bb := tab.Has(S(fmt.Sprintf("k%04d-b", i)))
			if a != bb {
				t.Fatalf("trial %d: batch %d torn: a=%v b=%v", trial, i, a, bb)
			}
		}
		tab.Scan(func(r Row) bool {
			if len(r) != 3 || r[0].Kind() != KindString {
				t.Fatalf("trial %d: corrupt row %v", trial, r)
			}
			return true
		})
		// Recovery is a prefix: the set of present sequence numbers must be
		// downward closed over the insertion order (no gaps).
		present := map[int64]bool{}
		tab.Scan(func(r Row) bool {
			present[r[1].Int()] = true
			return true
		})
		maxSeq := int64(-1)
		for s := range present {
			if s > maxSeq {
				maxSeq = s
			}
		}
		for s := int64(0); s <= maxSeq; s++ {
			if !present[s] {
				t.Fatalf("trial %d: recovery gap at seq %d (max %d)", trial, s, maxSeq)
			}
		}
		// Post-recovery writes work.
		if err := db2.Insert("t", Row{S("post-crash"), I(999), Null()}); err != nil {
			t.Fatalf("trial %d: post-recovery insert: %v", trial, err)
		}
		db2.Close()
	}
}

func TestLookupRange(t *testing.T) {
	db := openTestDB(t, Options{Sync: SyncNever})
	if err := db.CreateTable(testSchema(t)); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateIndex("recordings", "year"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := db.Insert("recordings", Row{S(fmt.Sprintf("r%02d", i)), S("sp"), I(int64(1960 + i)), Null()}); err != nil {
			t.Fatal(err)
		}
	}
	rows, err := db.Table("recordings").LookupRange("year", I(1970), I(1979))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("range returned %d rows", len(rows))
	}
	for i, r := range rows {
		if y := r[2].Int(); y < 1970 || y > 1979 {
			t.Fatalf("row %d year %d out of range", i, y)
		}
		if i > 0 && rows[i-1][2].Int() > r[2].Int() {
			t.Fatal("range not ordered")
		}
	}
	// Inclusive bounds.
	rows, _ = db.Table("recordings").LookupRange("year", I(1960), I(1960))
	if len(rows) != 1 {
		t.Fatalf("point range = %d rows", len(rows))
	}
	// Empty range.
	rows, _ = db.Table("recordings").LookupRange("year", I(2100), I(2200))
	if len(rows) != 0 {
		t.Fatalf("empty range = %d rows", len(rows))
	}
	// No index.
	if _, err := db.Table("recordings").LookupRange("species", S("a"), S("b")); err == nil {
		t.Fatal("range on unindexed column accepted")
	}
	// Null bounds rejected.
	if _, err := db.Table("recordings").LookupRange("year", Null(), I(1970)); err == nil {
		t.Fatal("null bound accepted")
	}
}
