package resilience

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

var errBoom = errors.New("boom")

// fakeClock is a manually advanced clock for breaker cooldown tests.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func newTestBreaker(clk *fakeClock, transitions *[]string) *Breaker {
	return NewBreaker(BreakerOptions{
		Window:           10,
		MinSamples:       4,
		FailureThreshold: 0.5,
		Cooldown:         time.Minute,
		HalfOpenProbes:   2,
		Now:              clk.Now,
		OnStateChange: func(from, to State) {
			if transitions != nil {
				*transitions = append(*transitions, fmt.Sprintf("%s->%s", from, to))
			}
		},
	})
}

func TestBreakerOpensOnFailureRate(t *testing.T) {
	clk := &fakeClock{now: time.Unix(0, 0)}
	var trans []string
	b := newTestBreaker(clk, &trans)

	for i := 0; i < 3; i++ {
		if err := b.Do(func() error { return errBoom }); !errors.Is(err, errBoom) {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	if b.State() != Closed {
		t.Fatalf("tripped below MinSamples: %s", b.State())
	}
	if err := b.Do(func() error { return errBoom }); !errors.Is(err, errBoom) {
		t.Fatal(err)
	}
	if b.State() != Open {
		t.Fatalf("state after 4/4 failures = %s", b.State())
	}
	if err := b.Do(func() error { t.Error("called while open"); return nil }); !errors.Is(err, ErrOpen) {
		t.Fatalf("open breaker admitted a call: %v", err)
	}
	s := b.Snapshot()
	if s.Opens != 1 || s.Rejected != 1 || s.Failures != 4 {
		t.Fatalf("counters = %+v", s)
	}
	if len(trans) != 1 || trans[0] != "closed->open" {
		t.Fatalf("transitions = %v", trans)
	}
}

func TestBreakerHalfOpenRecovery(t *testing.T) {
	clk := &fakeClock{now: time.Unix(0, 0)}
	var trans []string
	b := newTestBreaker(clk, &trans)
	for i := 0; i < 4; i++ {
		b.Do(func() error { return errBoom })
	}
	if b.State() != Open {
		t.Fatalf("state = %s", b.State())
	}

	clk.Advance(time.Minute)
	if b.State() != HalfOpen {
		t.Fatalf("state after cooldown = %s", b.State())
	}
	// Probe 1 succeeds; the breaker stays half-open until HalfOpenProbes
	// consecutive successes.
	if err := b.Do(func() error { return nil }); err != nil {
		t.Fatal(err)
	}
	if b.State() != HalfOpen {
		t.Fatalf("state after 1 probe = %s", b.State())
	}
	if err := b.Do(func() error { return nil }); err != nil {
		t.Fatal(err)
	}
	if b.State() != Closed {
		t.Fatalf("state after %d probes = %s", 2, b.State())
	}
	want := []string{"closed->open", "open->half-open", "half-open->closed"}
	if fmt.Sprint(trans) != fmt.Sprint(want) {
		t.Fatalf("transitions = %v", trans)
	}
	// A fresh window: the pre-trip failures must not instantly re-trip.
	b.Do(func() error { return errBoom })
	if b.State() != Closed {
		t.Fatal("window not reset after close")
	}
}

func TestBreakerProbeFailureReopens(t *testing.T) {
	clk := &fakeClock{now: time.Unix(0, 0)}
	b := newTestBreaker(clk, nil)
	for i := 0; i < 4; i++ {
		b.Do(func() error { return errBoom })
	}
	clk.Advance(time.Minute)
	if err := b.Do(func() error { return errBoom }); !errors.Is(err, errBoom) {
		t.Fatal(err)
	}
	if b.State() != Open {
		t.Fatalf("state after failed probe = %s", b.State())
	}
	// And the cooldown restarts from the failed probe.
	clk.Advance(30 * time.Second)
	if b.State() != Open {
		t.Fatal("cooldown did not restart")
	}
}

func TestBreakerSingleProbeAtATime(t *testing.T) {
	clk := &fakeClock{now: time.Unix(0, 0)}
	b := newTestBreaker(clk, nil)
	for i := 0; i < 4; i++ {
		b.Do(func() error { return errBoom })
	}
	clk.Advance(time.Minute)
	if err := b.Allow(); err != nil {
		t.Fatal(err)
	}
	// While the first probe is in flight, further calls are rejected.
	if err := b.Allow(); !errors.Is(err, ErrOpen) {
		t.Fatalf("second concurrent probe admitted: %v", err)
	}
	b.Record(nil)
	if err := b.Allow(); err != nil {
		t.Fatalf("next probe after success: %v", err)
	}
}

func TestBreakerIsFailureClassifier(t *testing.T) {
	clk := &fakeClock{now: time.Unix(0, 0)}
	domain := errors.New("unknown name")
	b := NewBreaker(BreakerOptions{
		Window: 4, MinSamples: 2, FailureThreshold: 0.5,
		Now:       clk.Now,
		IsFailure: func(err error) bool { return err != nil && !errors.Is(err, domain) },
	})
	for i := 0; i < 8; i++ {
		b.Do(func() error { return domain })
	}
	if b.State() != Closed {
		t.Fatalf("domain errors tripped the breaker: %s", b.State())
	}
}

func TestBreakerConcurrent(t *testing.T) {
	clk := &fakeClock{now: time.Unix(0, 0)}
	b := NewBreaker(BreakerOptions{Window: 16, Cooldown: time.Millisecond, Now: time.Now})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				b.Do(func() error {
					if (i+j)%3 == 0 {
						return errBoom
					}
					return nil
				})
				b.State()
				b.Snapshot()
			}
		}()
	}
	wg.Wait()
	_ = clk
	s := b.Snapshot()
	if s.Allowed != s.Successes+s.Failures {
		t.Fatalf("outcome accounting off: %+v", s)
	}
}

func TestBulkheadLimitsConcurrency(t *testing.T) {
	b := NewBulkhead(2, 0)
	ctx := context.Background()
	if err := b.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	if err := b.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	if err := b.Acquire(ctx); !errors.Is(err, ErrSaturated) {
		t.Fatalf("third acquire = %v", err)
	}
	b.Release()
	if err := b.Acquire(ctx); err != nil {
		t.Fatalf("after release: %v", err)
	}
	c := b.Counters()
	if c["bulkhead.rejected"] != 1 || c["bulkhead.in_flight"] != 2 || c["bulkhead.limit"] != 2 {
		t.Fatalf("counters = %v", c)
	}
}

func TestBulkheadWaitsThenRejects(t *testing.T) {
	b := NewBulkhead(1, 10*time.Millisecond)
	ctx := context.Background()
	if err := b.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := b.Acquire(ctx); !errors.Is(err, ErrSaturated) {
		t.Fatalf("acquire = %v", err)
	}
	if time.Since(start) < 10*time.Millisecond {
		t.Fatal("did not wait for a slot")
	}
	// Context cancellation preempts the wait.
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	if err := b.Acquire(cctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled acquire = %v", err)
	}
}

func TestBulkheadDoConcurrent(t *testing.T) {
	b := NewBulkhead(3, time.Second)
	var wg sync.WaitGroup
	var peak, cur, mu = 0, 0, sync.Mutex{}
	for i := 0; i < 24; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			b.Do(context.Background(), func() error {
				mu.Lock()
				cur++
				if cur > peak {
					peak = cur
				}
				mu.Unlock()
				time.Sleep(time.Millisecond)
				mu.Lock()
				cur--
				mu.Unlock()
				return nil
			})
		}()
	}
	wg.Wait()
	if peak > 3 {
		t.Fatalf("peak concurrency %d exceeded bulkhead limit", peak)
	}
}

func TestBudgetDeadline(t *testing.T) {
	bgt := Budget{Timeout: 10 * time.Millisecond}
	err := bgt.Run(context.Background(), func(ctx context.Context) error {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(time.Second):
			return nil
		}
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("budget did not bound the call: %v", err)
	}
	// Parent cancellation propagates through the budgeted context.
	pctx, cancel := context.WithCancel(context.Background())
	cancel()
	err = Budget{Timeout: time.Hour}.Run(pctx, func(ctx context.Context) error { return ctx.Err() })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("parent cancellation lost: %v", err)
	}
	// Zero budget leaves the context unbounded.
	if err := (Budget{}).Run(context.Background(), func(ctx context.Context) error {
		if _, ok := ctx.Deadline(); ok {
			return errors.New("unexpected deadline")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}
