package resilience

import (
	"context"
	"time"
)

// Budget is a per-call deadline: Run derives a child context bounded by
// Timeout, so one slow remote call costs at most the budget instead of the
// caller's whole deadline — and cancellation still propagates from the
// parent context (a cancelled run cancels its in-flight resolutions).
type Budget struct {
	// Timeout bounds each call; 0 means no per-call bound (the parent
	// context alone governs).
	Timeout time.Duration
}

// Run invokes fn with the budgeted context.
func (b Budget) Run(ctx context.Context, fn func(context.Context) error) error {
	if b.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, b.Timeout)
		defer cancel()
	}
	return fn(ctx)
}
