// Package resilience provides the generic fault-tolerance primitives the
// preservation system wraps around remote authorities: a circuit breaker
// (closed / open / half-open with a sliding failure-rate window), a
// bounded-concurrency bulkhead, and per-call deadline budgets with context
// propagation. The package is dependency-free and policy-free — what counts
// as a failure, and what to do when a call is rejected, belongs to callers
// (see taxonomy.ResilientResolver for the resolution policy).
package resilience

import (
	"errors"
	"sync"
	"time"
)

// State is a circuit breaker state.
type State uint8

// Breaker states.
const (
	// Closed: calls flow normally; outcomes feed the failure-rate window.
	Closed State = iota
	// Open: calls are rejected immediately with ErrOpen until the cooldown
	// elapses.
	Open
	// HalfOpen: a limited number of probe calls are admitted; all probes
	// succeeding re-closes the breaker, any probe failing re-opens it.
	HalfOpen
)

// String names the state.
func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return "state(?)"
	}
}

// ErrOpen is returned by Allow/Do while the breaker rejects calls.
var ErrOpen = errors.New("resilience: circuit open")

// BreakerOptions tunes a Breaker. The zero value gets sane defaults.
type BreakerOptions struct {
	// Window is the number of most recent call outcomes the failure rate is
	// computed over (default 20).
	Window int
	// MinSamples is the minimum number of outcomes in the window before the
	// breaker may trip (default Window/2); prevents one early failure from
	// opening a cold breaker.
	MinSamples int
	// FailureThreshold is the failure rate in [0,1] that trips the breaker
	// (default 0.5).
	FailureThreshold float64
	// Cooldown is how long the breaker stays open before probing
	// (default 5s).
	Cooldown time.Duration
	// HalfOpenProbes is how many consecutive probe successes close the
	// breaker again (default 3). Probes run one at a time.
	HalfOpenProbes int
	// IsFailure classifies an error as an availability failure. The default
	// counts every non-nil error; callers should exclude domain errors (an
	// unknown name is an answer, not an outage).
	IsFailure func(error) bool
	// Now is the clock (default time.Now); tests inject a fake.
	Now func() time.Time
	// OnStateChange, when set, observes every transition. It is called
	// synchronously under the breaker's lock and must not call back into
	// the breaker.
	OnStateChange func(from, to State)
}

func (o *BreakerOptions) defaults() {
	if o.Window <= 0 {
		o.Window = 20
	}
	if o.MinSamples <= 0 {
		o.MinSamples = o.Window / 2
		if o.MinSamples < 1 {
			o.MinSamples = 1
		}
	}
	if o.FailureThreshold <= 0 {
		o.FailureThreshold = 0.5
	}
	if o.Cooldown <= 0 {
		o.Cooldown = 5 * time.Second
	}
	if o.HalfOpenProbes <= 0 {
		o.HalfOpenProbes = 3
	}
	if o.IsFailure == nil {
		o.IsFailure = func(err error) bool { return err != nil }
	}
	if o.Now == nil {
		o.Now = time.Now
	}
}

// BreakerCounters is a point-in-time reading of a breaker's activity.
type BreakerCounters struct {
	State     State
	Allowed   int64 // calls admitted (closed or as probes)
	Rejected  int64 // calls refused with ErrOpen
	Successes int64 // admitted calls that succeeded
	Failures  int64 // admitted calls that failed (per IsFailure)
	Opens     int64 // transitions into Open
	HalfOpens int64 // transitions into HalfOpen
	Closes    int64 // transitions back into Closed
}

// Counters renders the reading as named values for obs.FromRuntimeMetrics.
func (c BreakerCounters) Counters() map[string]float64 {
	return map[string]float64{
		"breaker.state":      float64(c.State),
		"breaker.allowed":    float64(c.Allowed),
		"breaker.rejected":   float64(c.Rejected),
		"breaker.successes":  float64(c.Successes),
		"breaker.failures":   float64(c.Failures),
		"breaker.opens":      float64(c.Opens),
		"breaker.half_opens": float64(c.HalfOpens),
		"breaker.closes":     float64(c.Closes),
	}
}

// Breaker is a circuit breaker. Use Do for paired admission/recording, or
// Allow + Record when the call site needs custom control flow. Safe for
// concurrent use.
type Breaker struct {
	opts BreakerOptions

	mu       sync.Mutex
	state    State
	window   []bool // ring of recent outcomes; true = failure
	widx     int
	wfill    int
	wfails   int
	openedAt time.Time
	probing  int // probes in flight while half-open
	probeOK  int // consecutive probe successes
	counters BreakerCounters
}

// NewBreaker builds a breaker in the Closed state.
func NewBreaker(opts BreakerOptions) *Breaker {
	opts.defaults()
	return &Breaker{opts: opts, window: make([]bool, opts.Window)}
}

// State returns the current state (transitioning Open→HalfOpen lazily if the
// cooldown has elapsed).
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.maybeProbeLocked()
	return b.state
}

// Snapshot returns the breaker's counters.
func (b *Breaker) Snapshot() BreakerCounters {
	b.mu.Lock()
	defer b.mu.Unlock()
	c := b.counters
	c.State = b.state
	return c
}

// Allow asks to admit one call: nil means proceed (and the caller MUST later
// call Record with the outcome), ErrOpen means the call is rejected.
func (b *Breaker) Allow() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.maybeProbeLocked()
	switch b.state {
	case Closed:
		b.counters.Allowed++
		return nil
	case HalfOpen:
		if b.probing > 0 {
			// One probe at a time: concurrent calls during recovery are
			// rejected rather than stampeding a barely-recovered service.
			b.counters.Rejected++
			return ErrOpen
		}
		b.probing++
		b.counters.Allowed++
		return nil
	default:
		b.counters.Rejected++
		return ErrOpen
	}
}

// Record reports the outcome of a call previously admitted by Allow.
func (b *Breaker) Record(err error) {
	failed := b.opts.IsFailure(err)
	b.mu.Lock()
	defer b.mu.Unlock()
	if failed {
		b.counters.Failures++
	} else {
		b.counters.Successes++
	}
	switch b.state {
	case HalfOpen:
		if b.probing > 0 {
			b.probing--
		}
		if failed {
			b.tripLocked()
			return
		}
		b.probeOK++
		if b.probeOK >= b.opts.HalfOpenProbes {
			b.transitionLocked(Closed)
			b.resetWindowLocked()
		}
	case Closed:
		b.pushLocked(failed)
		if b.wfill >= b.opts.MinSamples &&
			float64(b.wfails)/float64(b.wfill) >= b.opts.FailureThreshold {
			b.tripLocked()
		}
	default:
		// Late result from a call admitted before the trip: counted above,
		// no state effect.
	}
}

// Do admits, runs and records fn under the breaker.
func (b *Breaker) Do(fn func() error) error {
	if err := b.Allow(); err != nil {
		return err
	}
	err := fn()
	b.Record(err)
	return err
}

// maybeProbeLocked moves Open→HalfOpen once the cooldown has elapsed.
func (b *Breaker) maybeProbeLocked() {
	if b.state == Open && b.opts.Now().Sub(b.openedAt) >= b.opts.Cooldown {
		b.transitionLocked(HalfOpen)
		b.probing = 0
		b.probeOK = 0
	}
}

func (b *Breaker) tripLocked() {
	b.transitionLocked(Open)
	b.openedAt = b.opts.Now()
	b.probing = 0
	b.probeOK = 0
}

func (b *Breaker) transitionLocked(to State) {
	if b.state == to {
		return
	}
	from := b.state
	b.state = to
	switch to {
	case Open:
		b.counters.Opens++
	case HalfOpen:
		b.counters.HalfOpens++
	case Closed:
		b.counters.Closes++
	}
	if b.opts.OnStateChange != nil {
		b.opts.OnStateChange(from, to)
	}
}

func (b *Breaker) pushLocked(failed bool) {
	if b.window[b.widx] && b.wfill == len(b.window) {
		b.wfails--
	}
	b.window[b.widx] = failed
	b.widx = (b.widx + 1) % len(b.window)
	if b.wfill < len(b.window) {
		b.wfill++
	}
	if failed {
		b.wfails++
	}
}

func (b *Breaker) resetWindowLocked() {
	for i := range b.window {
		b.window[i] = false
	}
	b.widx, b.wfill, b.wfails = 0, 0, 0
}
