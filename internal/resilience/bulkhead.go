package resilience

import (
	"context"
	"errors"
	"sync/atomic"
	"time"
)

// ErrSaturated is returned when the bulkhead is full and the caller's
// admission wait expired.
var ErrSaturated = errors.New("resilience: bulkhead saturated")

// Bulkhead bounds how many calls may be in flight at once, isolating the
// rest of the system from a slow dependency: when the compartment floods,
// excess calls fail fast (or wait a bounded time) instead of accumulating
// goroutines behind an unresponsive service. Safe for concurrent use.
type Bulkhead struct {
	sem     chan struct{}
	maxWait time.Duration

	admitted atomic.Int64
	rejected atomic.Int64
}

// NewBulkhead builds a bulkhead admitting at most limit concurrent calls
// (limit < 1 is coerced to 1). maxWait is how long Acquire may wait for a
// slot when the compartment is full; 0 rejects immediately.
func NewBulkhead(limit int, maxWait time.Duration) *Bulkhead {
	if limit < 1 {
		limit = 1
	}
	return &Bulkhead{sem: make(chan struct{}, limit), maxWait: maxWait}
}

// Acquire takes a slot, waiting at most maxWait (and never past ctx).
// Callers must Release exactly once per successful Acquire.
func (b *Bulkhead) Acquire(ctx context.Context) error {
	select {
	case b.sem <- struct{}{}:
		b.admitted.Add(1)
		return nil
	default:
	}
	if b.maxWait <= 0 {
		b.rejected.Add(1)
		return ErrSaturated
	}
	t := time.NewTimer(b.maxWait)
	defer t.Stop()
	select {
	case b.sem <- struct{}{}:
		b.admitted.Add(1)
		return nil
	case <-t.C:
		b.rejected.Add(1)
		return ErrSaturated
	case <-ctx.Done():
		b.rejected.Add(1)
		return ctx.Err()
	}
}

// Release returns a slot taken by Acquire.
func (b *Bulkhead) Release() { <-b.sem }

// Do runs fn inside one slot.
func (b *Bulkhead) Do(ctx context.Context, fn func() error) error {
	if err := b.Acquire(ctx); err != nil {
		return err
	}
	defer b.Release()
	return fn()
}

// InFlight reports the slots currently held.
func (b *Bulkhead) InFlight() int { return len(b.sem) }

// Counters renders the bulkhead's activity for obs.FromRuntimeMetrics.
func (b *Bulkhead) Counters() map[string]float64 {
	return map[string]float64{
		"bulkhead.admitted":  float64(b.admitted.Load()),
		"bulkhead.rejected":  float64(b.rejected.Load()),
		"bulkhead.in_flight": float64(b.InFlight()),
		"bulkhead.limit":     float64(cap(b.sem)),
	}
}
