package telemetry

// TraceStore is the persisted-trace surface consumed by core and the web
// service. *SpanStore implements it directly; shard.TraceRouter implements
// it by routing each run's spans to the shard that owns the run.
type TraceStore interface {
	Count(runID string) (int, error)
	Append(runID string, spans []Span) error
	Spans(runID string) ([]Span, error)
	SpansPage(runID string, after, limit int) ([]Span, int, error)
	// Snapshot returns a read-only view pinned to the current state.
	Snapshot() TraceStore
}

// Snapshot implements TraceStore; it is View with an interface return type.
func (s *SpanStore) Snapshot() TraceStore { return s.View() }

var _ TraceStore = (*SpanStore)(nil)
