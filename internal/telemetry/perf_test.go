package telemetry

import (
	"context"
	"testing"
	"time"
)

// TestSpanStampAllocs guards the save-trace hot path: stamping a run ID onto
// a captured span slice must not allocate — it is one string assignment per
// span.
func TestSpanStampAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts differ under -race")
	}
	spans := make([]Span, 256)
	for i := range spans {
		spans[i] = Span{SpanID: spanID(int64(i)), Name: "op", Kind: "engine"}
	}
	if allocs := testing.AllocsPerRun(100, func() {
		StampTrace(spans, "run-000042")
	}); allocs != 0 {
		t.Fatalf("StampTrace allocates %.1f/op, want 0", allocs)
	}
}

// TestHistogramObserveAllocs guards latency recording: Observe is a handful
// of atomic ops and must never allocate, since it sits inside service
// invocation, flush, and resolution paths.
func TestHistogramObserveAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts differ under -race")
	}
	var h Histogram
	if allocs := testing.AllocsPerRun(100, func() {
		h.Observe(1500 * time.Microsecond)
	}); allocs != 0 {
		t.Fatalf("Histogram.Observe allocates %.1f/op, want 0", allocs)
	}
}

// TestSpanIDFormat pins the cheap span-ID renderer to fmt's "s-%06d".
func TestSpanIDFormat(t *testing.T) {
	cases := map[int64]string{
		1:       "s-000001",
		42:      "s-000042",
		99999:   "s-099999",
		123456:  "s-123456",
		999999:  "s-999999",
		1000000: "s-1000000",
	}
	for seq, want := range cases {
		if got := spanID(seq); got != want {
			t.Errorf("spanID(%d) = %q, want %q", seq, got, want)
		}
	}
}

// TestSpanKeyFormat pins the cheap span-key renderer to fmt's "%s/%08d".
func TestSpanKeyFormat(t *testing.T) {
	cases := map[int]string{
		0:         "r1/00000000",
		7:         "r1/00000007",
		12345678:  "r1/12345678",
		99999999:  "r1/99999999",
		100000000: "r1/100000000",
	}
	for seq, want := range cases {
		if got := spanKeyOf("r1", seq); got != want {
			t.Errorf("spanKeyOf(r1, %d) = %q, want %q", seq, got, want)
		}
	}
}

func BenchmarkSpanStamp(b *testing.B) {
	spans := make([]Span, 256)
	for i := range spans {
		spans[i] = Span{SpanID: spanID(int64(i)), Name: "op", Kind: "engine"}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		StampTrace(spans, "run-000042")
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			h.Observe(1500 * time.Microsecond)
		}
	})
}

// BenchmarkStartSpanFinish measures minting and recording one traced span —
// the fixed per-operation tracing tax.
func BenchmarkStartSpanFinish(b *testing.B) {
	tr := NewTracer(1 << 20)
	ctx := WithTracer(context.Background(), tr)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, sp := StartSpan(ctx, "op", "bench")
		sp.Finish()
	}
}
