package telemetry

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// HistBuckets is the number of fixed log₂ buckets in a Histogram. Bucket 0
// holds sub-microsecond observations; bucket i (i ≥ 1) holds durations in
// [2^(i-1), 2^i) microseconds. The top bucket is open-ended (≈ 36 minutes
// and beyond), which covers every latency this system can produce.
const HistBuckets = 32

// Histogram is a fixed-log-bucket latency histogram. Observe is lock-free
// (one atomic add per bucket plus the aggregates), so it can sit on hot
// paths — service invocations, flushes, resolutions — without serializing
// them. Quantiles are estimated from the bucket counts with linear
// interpolation inside the crossing bucket.
//
// The zero value is ready to use.
type Histogram struct {
	counts [HistBuckets]atomic.Int64
	count  atomic.Int64
	sumUS  atomic.Int64
	maxUS  atomic.Int64
}

// bucketOf maps a duration to its bucket index.
func bucketOf(d time.Duration) int {
	us := d.Microseconds()
	if us <= 0 {
		return 0
	}
	idx := bits.Len64(uint64(us)) // us in [2^(idx-1), 2^idx)
	if idx >= HistBuckets {
		idx = HistBuckets - 1
	}
	return idx
}

// Observe records one latency sample.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	us := d.Microseconds()
	h.counts[bucketOf(d)].Add(1)
	h.count.Add(1)
	h.sumUS.Add(us)
	for {
		cur := h.maxUS.Load()
		if us <= cur || h.maxUS.CompareAndSwap(cur, us) {
			break
		}
	}
}

// Snapshot captures a point-in-time reading. Buckets are read without a
// global lock, so a snapshot taken during heavy traffic may be off by the
// few samples in flight — fine for monitoring.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	for i := range h.counts {
		s.Buckets[i] = h.counts[i].Load()
	}
	s.Count = h.count.Load()
	s.SumUS = h.sumUS.Load()
	s.MaxUS = h.maxUS.Load()
	return s
}

// HistogramSnapshot is an immutable reading of a Histogram.
type HistogramSnapshot struct {
	Buckets [HistBuckets]int64
	Count   int64
	SumUS   int64
	MaxUS   int64
}

// bucketBounds returns the [lower, upper) bounds of bucket i in microseconds.
func bucketBounds(i int) (lower, upper float64) {
	if i <= 0 {
		return 0, 1
	}
	return float64(int64(1) << (i - 1)), float64(int64(1) << i)
}

// Quantile estimates the q-th latency quantile (0 < q ≤ 1) in microseconds,
// interpolating linearly within the crossing bucket and clamping to the
// observed maximum. Returns 0 when the histogram is empty.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q <= 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(s.Count)
	var cum float64
	for i, c := range s.Buckets {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if next >= target {
			lower, upper := bucketBounds(i)
			frac := (target - cum) / float64(c)
			est := lower + frac*(upper-lower)
			if est > float64(s.MaxUS) && s.MaxUS > 0 {
				est = float64(s.MaxUS)
			}
			return est
		}
		cum = next
	}
	return float64(s.MaxUS)
}

// MeanUS is the mean observed latency in microseconds.
func (s HistogramSnapshot) MeanUS() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.SumUS) / float64(s.Count)
}

// Counters renders the snapshot as named readings — count, mean, max, and
// the p50/p95/p99 estimates — under the given prefix, matching the counter
// surfaces fed to obs.FromRuntimeMetrics.
func (s HistogramSnapshot) Counters(prefix string) map[string]float64 {
	return map[string]float64{
		prefix + ".count":   float64(s.Count),
		prefix + ".mean_us": s.MeanUS(),
		prefix + ".max_us":  float64(s.MaxUS),
		prefix + ".p50_us":  s.Quantile(0.50),
		prefix + ".p95_us":  s.Quantile(0.95),
		prefix + ".p99_us":  s.Quantile(0.99),
	}
}

// MergeCounters copies src readings into dst (helper for subsystems that
// combine several histograms and flat counters into one surface).
func MergeCounters(dst map[string]float64, src map[string]float64) map[string]float64 {
	if dst == nil {
		dst = make(map[string]float64, len(src))
	}
	for k, v := range src {
		dst[k] = v
	}
	return dst
}
