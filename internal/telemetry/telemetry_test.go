package telemetry

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/storage"
)

func TestHistogramBuckets(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{500 * time.Nanosecond, 0},
		{time.Microsecond, 1},
		{2 * time.Microsecond, 2},
		{3 * time.Microsecond, 2},
		{4 * time.Microsecond, 3},
		{time.Millisecond, 10},             // 1000µs in [512, 1024)
		{time.Second, 20},                  // 1e6 µs in [2^19, 2^20)
		{100 * time.Hour, HistBuckets - 1}, // clamped to top bucket
	}
	for _, c := range cases {
		if got := bucketOf(c.d); got != c.want {
			t.Errorf("bucketOf(%v) = %d, want %d", c.d, got, c.want)
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	if got := h.Snapshot().Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram p50 = %v, want 0", got)
	}
	// 100 samples at 100µs, 10 at ~10ms: p50 lands in the 100µs bucket,
	// p99 in the 10ms bucket.
	for i := 0; i < 100; i++ {
		h.Observe(100 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(10 * time.Millisecond)
	}
	s := h.Snapshot()
	if s.Count != 110 {
		t.Fatalf("count = %d, want 110", s.Count)
	}
	p50 := s.Quantile(0.50)
	if p50 < 64 || p50 > 128 {
		t.Errorf("p50 = %v µs, want within [64, 128)", p50)
	}
	p99 := s.Quantile(0.99)
	if p99 < 8192 || p99 > 16384 {
		t.Errorf("p99 = %v µs, want within [8192, 16384]", p99)
	}
	if max := s.Quantile(1); max > float64(s.MaxUS) {
		t.Errorf("p100 = %v exceeds observed max %d", max, s.MaxUS)
	}
	if mean := s.MeanUS(); mean < 100 || mean > 2000 {
		t.Errorf("mean = %v µs out of plausible range", mean)
	}
	c := s.Counters("x")
	for _, k := range []string{"x.count", "x.mean_us", "x.max_us", "x.p50_us", "x.p95_us", "x.p99_us"} {
		if _, ok := c[k]; !ok {
			t.Errorf("Counters missing %q", k)
		}
	}
	if c["x.count"] != 110 {
		t.Errorf("x.count = %v, want 110", c["x.count"])
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(time.Duration(i) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got := h.Snapshot().Count; got != 8000 {
		t.Fatalf("count = %d, want 8000", got)
	}
}

func TestTracerParenting(t *testing.T) {
	tr := NewTracer(0)
	ctx := WithTracer(context.Background(), tr)

	ctx1, root := StartSpan(ctx, "run", "core")
	ctx2, child := StartSpan(ctx1, "processor", "engine")
	_, grand := StartSpan(ctx2, "element", "engine")
	grand.SetAttr("index", "0")
	grand.Finish()
	child.Finish()
	root.Finish()
	root.Finish() // double-finish records once

	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	// End order: grand, child, root.
	if spans[0].Name != "element" || spans[1].Name != "processor" || spans[2].Name != "run" {
		t.Fatalf("unexpected order: %v %v %v", spans[0].Name, spans[1].Name, spans[2].Name)
	}
	if spans[2].ParentID != "" {
		t.Errorf("root has parent %q", spans[2].ParentID)
	}
	if spans[1].ParentID != spans[2].SpanID {
		t.Errorf("child parent = %q, want %q", spans[1].ParentID, spans[2].SpanID)
	}
	if spans[0].ParentID != spans[1].SpanID {
		t.Errorf("grandchild parent = %q, want %q", spans[0].ParentID, spans[1].SpanID)
	}
	if spans[0].Attrs["index"] != "0" {
		t.Errorf("attr lost: %v", spans[0].Attrs)
	}
	if err := TreeComplete(spans); err != nil {
		t.Errorf("TreeComplete: %v", err)
	}
}

func TestStartSpanWithoutTracer(t *testing.T) {
	ctx, sp := StartSpan(context.Background(), "x", "y")
	if sp != nil {
		t.Fatalf("expected nil span without tracer")
	}
	sp.SetAttr("a", "b") // must not panic
	sp.Finish()
	if ctx != context.Background() {
		t.Fatalf("context should be unchanged")
	}
}

func TestTracerCapAndSince(t *testing.T) {
	tr := NewTracer(2)
	ctx := WithTracer(context.Background(), tr)
	for i := 0; i < 4; i++ {
		_, sp := StartSpan(ctx, fmt.Sprintf("s%d", i), "k")
		sp.Finish()
	}
	if got := tr.Len(); got != 2 {
		t.Fatalf("len = %d, want 2 (capped)", got)
	}
	if got := tr.Dropped(); got != 2 {
		t.Fatalf("dropped = %d, want 2", got)
	}
	since := tr.Since(1)
	if len(since) != 1 || since[0].Name != "s1" {
		t.Fatalf("Since(1) = %+v", since)
	}
}

func TestRing(t *testing.T) {
	r := NewRing(3)
	for i := 0; i < 5; i++ {
		r.Add(Span{SpanID: fmt.Sprintf("s%d", i)})
	}
	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("ring holds %d, want 3", len(snap))
	}
	if snap[0].SpanID != "s2" || snap[2].SpanID != "s4" {
		t.Fatalf("ring order wrong: %v %v %v", snap[0].SpanID, snap[1].SpanID, snap[2].SpanID)
	}
	if r.Total() != 5 {
		t.Fatalf("total = %d, want 5", r.Total())
	}
}

func TestBuildTreeOrphans(t *testing.T) {
	spans := []Span{
		{SpanID: "a", Name: "root"},
		{SpanID: "b", ParentID: "a"},
		{SpanID: "c", ParentID: "ghost"},
	}
	roots, orphans := BuildTree(spans)
	if len(roots) != 1 || len(orphans) != 1 {
		t.Fatalf("roots=%d orphans=%d, want 1/1", len(roots), len(orphans))
	}
	if err := TreeComplete(spans); err == nil {
		t.Fatalf("TreeComplete should fail with an orphan")
	}
}

func openStore(t *testing.T) (*storage.DB, *SpanStore) {
	t.Helper()
	db, err := storage.Open(t.TempDir(), storage.Options{Sync: storage.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	st, err := NewSpanStore(db)
	if err != nil {
		t.Fatal(err)
	}
	return db, st
}

func testSpans(n int, base time.Time) []Span {
	out := make([]Span, n)
	for i := range out {
		out[i] = Span{
			SpanID: fmt.Sprintf("s-%06d", i+1),
			Name:   fmt.Sprintf("op-%d", i),
			Kind:   "engine",
			Start:  base.Add(time.Duration(i) * time.Millisecond),
			End:    base.Add(time.Duration(i+1) * time.Millisecond),
			Attrs:  map[string]string{"index": fmt.Sprint(i)},
		}
		if i > 0 {
			out[i].ParentID = out[0].SpanID
		}
	}
	return out
}

func TestSpanStoreRoundTrip(t *testing.T) {
	_, st := openStore(t)
	base := time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)
	in := testSpans(5, base)
	if err := st.Append("run-000001", in); err != nil {
		t.Fatal(err)
	}
	out, err := st.Spans("run-000001")
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 5 {
		t.Fatalf("got %d spans, want 5", len(out))
	}
	for i, sp := range out {
		if sp.TraceID != "run-000001" {
			t.Errorf("span %d trace ID = %q", i, sp.TraceID)
		}
		if sp.SpanID != in[i].SpanID || sp.Name != in[i].Name || sp.Kind != in[i].Kind {
			t.Errorf("span %d mismatch: %+v vs %+v", i, sp, in[i])
		}
		if !sp.Start.Equal(in[i].Start) || !sp.End.Equal(in[i].End) {
			t.Errorf("span %d times drifted", i)
		}
		if sp.Attrs["index"] != fmt.Sprint(i) {
			t.Errorf("span %d attrs = %v", i, sp.Attrs)
		}
	}
	if err := TreeComplete(out); err != nil {
		t.Errorf("stored tree incomplete: %v", err)
	}
	if _, err := st.Spans("run-999999"); err == nil {
		t.Fatalf("missing run should error")
	}
}

func TestSpanStoreAppendContinues(t *testing.T) {
	_, st := openStore(t)
	base := time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)
	all := testSpans(6, base)
	if err := st.Append("run-000002", all[:4]); err != nil {
		t.Fatal(err)
	}
	// Resume session appends more spans under the same run.
	if err := st.Append("run-000002", all[4:]); err != nil {
		t.Fatal(err)
	}
	n, err := st.Count("run-000002")
	if err != nil {
		t.Fatal(err)
	}
	if n != 6 {
		t.Fatalf("count = %d, want 6", n)
	}
	out, err := st.Spans("run-000002")
	if err != nil {
		t.Fatal(err)
	}
	if out[4].SpanID != all[4].SpanID || out[5].SpanID != all[5].SpanID {
		t.Fatalf("resumed spans out of order: %v %v", out[4].SpanID, out[5].SpanID)
	}
}

func TestSpanStorePagination(t *testing.T) {
	_, st := openStore(t)
	base := time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)
	if err := st.Append("run-000003", testSpans(7, base)); err != nil {
		t.Fatal(err)
	}
	// A second run's rows must not leak into the first run's pages.
	if err := st.Append("run-000004", testSpans(3, base)); err != nil {
		t.Fatal(err)
	}
	var got []Span
	after := -1
	pages := 0
	for {
		page, next, err := st.SpansPage("run-000003", after, 3)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, page...)
		pages++
		if next < 0 {
			break
		}
		after = next
	}
	if len(got) != 7 {
		t.Fatalf("paged %d spans, want 7", len(got))
	}
	if pages != 3 {
		t.Fatalf("took %d pages, want 3", pages)
	}
	for i, sp := range got {
		if sp.Name != fmt.Sprintf("op-%d", i) {
			t.Fatalf("page order broken at %d: %q", i, sp.Name)
		}
	}
}

func TestSpanStorePersistence(t *testing.T) {
	dir := t.TempDir()
	db, err := storage.Open(dir, storage.Options{Sync: storage.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewSpanStore(db)
	if err != nil {
		t.Fatal(err)
	}
	base := time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)
	if err := st.Append("run-000005", testSpans(4, base)); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := storage.Open(dir, storage.Options{Sync: storage.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	st2, err := NewSpanStore(db2)
	if err != nil {
		t.Fatal(err)
	}
	out, err := st2.Spans("run-000005")
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 4 {
		t.Fatalf("after reopen got %d spans, want 4", len(out))
	}
}
