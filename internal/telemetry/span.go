// Package telemetry is the execution-tracing observability layer: spans
// describe where a run spent its time (one span per processor invocation,
// per iteration element, per provenance flush, per authority resolution,
// per scrub pass), fixed-log-bucket histograms summarize latency
// distributions as p50/p95/p99, and a persisted per-run span table keeps a
// finished run's span tree queryable forever next to its OPM graph.
//
// Tracing is context-threaded and zero-configuration at call sites:
// subsystems call StartSpan(ctx, ...) and get a no-op span when no tracer
// was minted upstream, so untraced execution pays only a context lookup.
// The trace context is minted at the API boundary (web middleware) or at
// core.RunDetection for CLI and experiment runs.
package telemetry

import (
	"context"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Span is one timed operation in a trace. TraceID groups spans of one run
// (the provenance run ID, stamped when the run ID is known); ParentID links
// the span into the tree ("" marks the root).
type Span struct {
	TraceID  string            `json:"trace_id,omitempty"`
	SpanID   string            `json:"span_id"`
	ParentID string            `json:"parent_id,omitempty"`
	Name     string            `json:"name"`
	Kind     string            `json:"kind"` // subsystem: engine, provenance-writer, taxonomy, archive-scrubber, core, api
	Start    time.Time         `json:"start"`
	End      time.Time         `json:"end"`
	Attrs    map[string]string `json:"attrs,omitempty"`

	tracer *Tracer
}

// Duration is the span's wall-clock time (zero until ended).
func (s Span) Duration() time.Duration {
	if s.End.IsZero() {
		return 0
	}
	return s.End.Sub(s.Start)
}

// Tracer mints spans and collects the finished ones, in end order, up to a
// cap (excess spans are counted as dropped, never grown unboundedly). A
// tracer is cheap: mint one per run or per API request.
type Tracer struct {
	seq atomic.Int64

	mu      sync.Mutex
	spans   []Span
	dropped int64
	max     int
}

// DefaultMaxSpans bounds a tracer's retained spans when no cap is given.
const DefaultMaxSpans = 65536

// NewTracer builds a tracer retaining up to max finished spans (<= 0 uses
// DefaultMaxSpans).
func NewTracer(max int) *Tracer {
	if max <= 0 {
		max = DefaultMaxSpans
	}
	return &Tracer{max: max}
}

// StartSpan opens a child of the context's current span (root when none) and
// returns a context carrying the new span for further nesting. End the span
// to record it.
func (t *Tracer) StartSpan(ctx context.Context, name, kind string) (context.Context, *Span) {
	sp := &Span{
		SpanID: spanID(t.seq.Add(1)),
		Name:   name,
		Kind:   kind,
		Start:  time.Now(),
		tracer: t,
	}
	if parent := SpanFrom(ctx); parent != nil {
		sp.ParentID = parent.SpanID
	}
	return context.WithValue(ctx, spanKey{}, sp), sp
}

// spanID renders "s-%06d" without fmt: one string allocation instead of the
// Sprintf machinery, since StartSpan sits on every traced hot path.
func spanID(seq int64) string {
	var b [16]byte
	buf := append(b[:0], 's', '-')
	if seq >= 0 {
		for div := int64(100000); div >= 10 && seq < div; div /= 10 {
			buf = append(buf, '0')
		}
	}
	buf = strconv.AppendInt(buf, seq, 10)
	return string(buf)
}

// record stores one finished span.
func (t *Tracer) record(sp Span) {
	sp.tracer = nil
	t.mu.Lock()
	if len(t.spans) >= t.max {
		t.dropped++
	} else {
		t.spans = append(t.spans, sp)
	}
	t.mu.Unlock()
}

// Len reports how many finished spans the tracer holds. Use with Since to
// slice out the spans of one phase on a shared tracer.
func (t *Tracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Since returns a copy of the finished spans recorded at index n and later
// (end order).
func (t *Tracer) Since(n int) []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	if n < 0 {
		n = 0
	}
	if n >= len(t.spans) {
		return nil
	}
	return append([]Span(nil), t.spans[n:]...)
}

// Spans returns a copy of every finished span in end order.
func (t *Tracer) Spans() []Span { return t.Since(0) }

// Dropped reports spans discarded over the retention cap.
func (t *Tracer) Dropped() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// SetAttr annotates the span. Safe on a nil span (no-op); call from the
// goroutine that owns the span, before End.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	if s.Attrs == nil {
		s.Attrs = map[string]string{}
	}
	s.Attrs[key] = value
}

// Finish stamps the end time and records the span with its tracer. Safe on
// a nil span; finishing twice records once.
func (s *Span) Finish() {
	if s == nil || s.tracer == nil {
		return
	}
	s.End = time.Now()
	t := s.tracer
	t.record(*s)
	s.tracer = nil
}

type (
	tracerKey struct{}
	spanKey   struct{}
)

// WithTracer returns a context carrying the tracer; downstream StartSpan
// calls record into it.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	return context.WithValue(ctx, tracerKey{}, t)
}

// TracerFrom extracts the context's tracer (nil when none).
func TracerFrom(ctx context.Context) *Tracer {
	t, _ := ctx.Value(tracerKey{}).(*Tracer)
	return t
}

// SpanFrom extracts the context's current span (nil when none).
func SpanFrom(ctx context.Context) *Span {
	sp, _ := ctx.Value(spanKey{}).(*Span)
	return sp
}

// StartSpan opens a span on the context's tracer. Without a tracer (or with
// a nil context) it returns the context unchanged and a nil span whose
// methods no-op — the zero-overhead path for untraced execution.
func StartSpan(ctx context.Context, name, kind string) (context.Context, *Span) {
	if ctx == nil {
		return ctx, nil
	}
	t := TracerFrom(ctx)
	if t == nil {
		return ctx, nil
	}
	return t.StartSpan(ctx, name, kind)
}

// Ring is a bounded, concurrency-safe buffer of recent finished spans — the
// process-wide "what just happened" view served by the web layer. Old spans
// are overwritten once capacity is reached.
type Ring struct {
	mu    sync.Mutex
	buf   []Span
	next  int
	total int64
}

// NewRing builds a ring holding up to capacity spans (<= 0 defaults to 4096).
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = 4096
	}
	return &Ring{buf: make([]Span, 0, capacity)}
}

// Add appends spans, overwriting the oldest beyond capacity.
func (r *Ring) Add(spans ...Span) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, sp := range spans {
		sp.tracer = nil
		if len(r.buf) < cap(r.buf) {
			r.buf = append(r.buf, sp)
		} else {
			r.buf[r.next] = sp
			r.next = (r.next + 1) % cap(r.buf)
		}
		r.total++
	}
}

// Snapshot returns the retained spans, oldest first.
func (r *Ring) Snapshot() []Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Span, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Total reports how many spans have ever been added.
func (r *Ring) Total() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}
