package telemetry

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/storage"
)

// SpanStore is the persisted per-run span table: a finished run's span tree
// is written once, keyed by run ID, and stays queryable forever next to the
// run's OPM graph in the same database. Spans are stored in end order with a
// monotonically increasing per-run sequence, so appends from a resumed run
// continue after the crash-session prefix.
type SpanStore struct {
	db *storage.DB
	// src is the read side: the live db, or an immutable storage.View for
	// stores produced by View(). Queries go through src; Append through db.
	src storage.TableSource
}

const spansTable = "trace_spans"

var spansSchema = storage.MustSchema(spansTable,
	storage.Column{Name: "key", Kind: storage.KindString}, // run/seq
	storage.Column{Name: "run_id", Kind: storage.KindString},
	storage.Column{Name: "span_id", Kind: storage.KindString},
	storage.Column{Name: "parent_id", Kind: storage.KindString, Nullable: true},
	storage.Column{Name: "name", Kind: storage.KindString},
	storage.Column{Name: "kind", Kind: storage.KindString, Nullable: true},
	storage.Column{Name: "start", Kind: storage.KindTime},
	storage.Column{Name: "end", Kind: storage.KindTime},
	storage.Column{Name: "attrs", Kind: storage.KindBytes, Nullable: true},
)

// ErrTraceNotFound is returned for run IDs with no persisted spans.
var ErrTraceNotFound = errors.New("telemetry: trace not found")

// NewSpanStore opens (creating if needed) the span table in db.
func NewSpanStore(db *storage.DB) (*SpanStore, error) {
	if db.Table(spansTable) == nil {
		if err := db.Apply(
			storage.CreateTableOp(spansSchema),
			storage.CreateIndexOp(spansTable, "run_id"),
		); err != nil {
			return nil, err
		}
	}
	return &SpanStore{db: db, src: db}, nil
}

// View returns a span store reading from an immutable point-in-time snapshot
// of the database, so trace pages never contend with a run's span appends.
func (s *SpanStore) View() *SpanStore {
	return &SpanStore{db: s.db, src: s.db.View()}
}

// spanKeyOf renders "runID/seq" with the sequence zero-padded to eight
// digits — the persisted key format, so the rendering must never change.
func spanKeyOf(runID string, seq int) string {
	if seq < 0 || seq > 99999999 {
		return fmt.Sprintf("%s/%08d", runID, seq) // out-of-range: defer to fmt's widening
	}
	var d [9]byte
	d[0] = '/'
	v := seq
	for i := 8; i >= 1; i-- {
		d[i] = byte('0' + v%10)
		v /= 10
	}
	return runID + string(d[:])
}

// Count reports how many spans are persisted for the run.
func (s *SpanStore) Count(runID string) (int, error) {
	rows, err := s.src.Table(spansTable).Lookup("run_id", storage.S(runID))
	if err != nil {
		return 0, err
	}
	return len(rows), nil
}

// Append persists spans under runID, continuing the run's sequence after any
// rows already stored (a resumed run's spans land after the crash-session
// prefix). Every span is stamped with the run as its trace ID. One atomic
// group commit.
func (s *SpanStore) Append(runID string, spans []Span) error {
	if runID == "" {
		return fmt.Errorf("telemetry: spans need a run ID")
	}
	if len(spans) == 0 {
		return nil
	}
	seq, err := s.Count(runID)
	if err != nil {
		return err
	}
	ops := make([]storage.Op, 0, len(spans))
	for _, sp := range spans {
		sp.TraceID = runID
		row, err := spanRow(runID, seq, sp)
		if err != nil {
			return err
		}
		ops = append(ops, storage.InsertOp(spansTable, row))
		seq++
	}
	return s.db.Apply(ops...)
}

func spanRow(runID string, seq int, sp Span) (storage.Row, error) {
	attrs, err := encodeAttrs(sp.Attrs)
	if err != nil {
		return nil, err
	}
	return storage.Row{
		storage.S(spanKeyOf(runID, seq)),
		storage.S(runID),
		storage.S(sp.SpanID),
		storage.S(sp.ParentID),
		storage.S(sp.Name),
		storage.S(sp.Kind),
		storage.T(sp.Start),
		storage.T(sp.End),
		storage.Bytes(attrs),
	}, nil
}

func rowToSpan(row storage.Row) (Span, error) {
	attrs, err := decodeAttrs(row.Get(spansSchema, "attrs").Raw())
	if err != nil {
		return Span{}, err
	}
	return Span{
		TraceID:  row.Get(spansSchema, "run_id").Str(),
		SpanID:   row.Get(spansSchema, "span_id").Str(),
		ParentID: row.Get(spansSchema, "parent_id").Str(),
		Name:     row.Get(spansSchema, "name").Str(),
		Kind:     row.Get(spansSchema, "kind").Str(),
		Start:    row.Get(spansSchema, "start").Time(),
		End:      row.Get(spansSchema, "end").Time(),
		Attrs:    attrs,
	}, nil
}

// Spans loads the run's full span list in stored (end) order.
func (s *SpanStore) Spans(runID string) ([]Span, error) {
	out, _, err := s.SpansPage(runID, -1, 0)
	if err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%w: %q", ErrTraceNotFound, runID)
	}
	return out, nil
}

// SpansPage returns up to limit spans with sequence number strictly greater
// than after (-1 starts at the beginning; limit <= 0 means no limit), in
// stored order, plus the cursor for the next page (-1 when exhausted). Rows
// are read by primary-key range, never a table scan.
func (s *SpanStore) SpansPage(runID string, after, limit int) ([]Span, int, error) {
	var out []Span
	next := -1
	seq := after
	var scanErr error
	s.src.Table(spansTable).ScanFrom(storage.S(spanKeyOf(runID, after+1)), func(row storage.Row) bool {
		if row.Get(spansSchema, "run_id").Str() != runID {
			return false // walked past the run's key range
		}
		if limit > 0 && len(out) == limit {
			next = seq
			return false
		}
		sp, err := rowToSpan(row)
		if err != nil {
			scanErr = err
			return false
		}
		out = append(out, sp)
		seq++
		return true
	})
	if scanErr != nil {
		return nil, -1, scanErr
	}
	return out, next, nil
}

// TraceNode is one span with its children — the tree form of a trace.
type TraceNode struct {
	Span     Span         `json:"span"`
	Children []*TraceNode `json:"children,omitempty"`
}

// BuildTree arranges spans into parent/child trees. Returns the roots
// (spans with no parent) and any orphans — spans whose parent is absent
// from the set, which a complete trace never has. Children are ordered by
// start time; roots and orphans by start time too.
func BuildTree(spans []Span) (roots []*TraceNode, orphans []Span) {
	nodes := make(map[string]*TraceNode, len(spans))
	for i := range spans {
		nodes[spans[i].SpanID] = &TraceNode{Span: spans[i]}
	}
	for i := range spans {
		sp := spans[i]
		n := nodes[sp.SpanID]
		switch {
		case sp.ParentID == "":
			roots = append(roots, n)
		default:
			parent, ok := nodes[sp.ParentID]
			if !ok {
				orphans = append(orphans, sp)
				continue
			}
			parent.Children = append(parent.Children, n)
		}
	}
	byStart := func(ns []*TraceNode) {
		sort.Slice(ns, func(i, j int) bool { return ns[i].Span.Start.Before(ns[j].Span.Start) })
	}
	byStart(roots)
	for _, n := range nodes {
		byStart(n.Children)
	}
	sort.Slice(orphans, func(i, j int) bool { return orphans[i].Start.Before(orphans[j].Start) })
	return roots, orphans
}

// attr encoding: length-prefixed key/value pairs via the storage row codec,
// in sorted key order so stored spans are deterministic.
func encodeAttrs(m map[string]string) ([]byte, error) {
	if len(m) == 0 {
		return nil, nil
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	row := make(storage.Row, 0, len(m)*2)
	for _, k := range keys {
		row = append(row, storage.S(k), storage.S(m[k]))
	}
	return storage.EncodeRow(nil, row), nil
}

func decodeAttrs(blob []byte) (map[string]string, error) {
	if len(blob) == 0 {
		return nil, nil
	}
	row, _, err := storage.DecodeRow(blob)
	if err != nil {
		return nil, fmt.Errorf("telemetry: decode attrs: %w", err)
	}
	if len(row)%2 != 0 {
		return nil, fmt.Errorf("telemetry: odd attr list")
	}
	out := make(map[string]string, len(row)/2)
	for i := 0; i < len(row); i += 2 {
		out[row[i].Str()] = row[i+1].Str()
	}
	return out, nil
}

// StampTrace sets TraceID on every span — used once the run ID is known
// (the engine mints run IDs after the tracer is created).
func StampTrace(spans []Span, traceID string) {
	for i := range spans {
		spans[i].TraceID = traceID
	}
}

// DetachExternalParents clears ParentID on spans whose parent is absent from
// the set. A run traced under an API request span records the request as its
// root's parent; persisted alone under the run ID, the run's own root must
// stand as the tree root. Broken in-run propagation still surfaces: it
// produces multiple roots, which TreeComplete rejects.
func DetachExternalParents(spans []Span) {
	ids := make(map[string]struct{}, len(spans))
	for i := range spans {
		ids[spans[i].SpanID] = struct{}{}
	}
	for i := range spans {
		if spans[i].ParentID == "" {
			continue
		}
		if _, ok := ids[spans[i].ParentID]; !ok {
			spans[i].ParentID = ""
		}
	}
}

// TreeComplete verifies the spans form one connected tree: exactly one root
// and no orphans. Returns a descriptive error otherwise — the check behind
// the "no orphan spans" acceptance test.
func TreeComplete(spans []Span) error {
	if len(spans) == 0 {
		return fmt.Errorf("telemetry: empty trace")
	}
	roots, orphans := BuildTree(spans)
	if len(orphans) > 0 {
		return fmt.Errorf("telemetry: %d orphan spans (first: %s %q parent %s)",
			len(orphans), orphans[0].SpanID, orphans[0].Name, orphans[0].ParentID)
	}
	if len(roots) != 1 {
		return fmt.Errorf("telemetry: %d roots, want 1", len(roots))
	}
	return nil
}

// SpanSince is a convenience for attributing elapsed time without a span:
// microseconds since t, for attrs.
func SpanSince(t time.Time) string { return fmt.Sprintf("%d", time.Since(t).Microseconds()) }
