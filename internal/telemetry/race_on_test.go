//go:build race

package telemetry

// raceEnabled reports whether the race detector instruments this build;
// allocation-count guards skip under -race.
const raceEnabled = true
