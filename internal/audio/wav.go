package audio

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Minimal PCM16 mono WAV codec — the digital format the paper lists among
// the collection's media (WAV, AIFF, MP3, ATRAC); WAV is the archival one.

// WriteWAV encodes the clip as 16-bit PCM mono RIFF/WAVE.
func WriteWAV(w io.Writer, c Clip) error {
	if c.SampleRate <= 0 {
		return fmt.Errorf("audio: sample rate %d", c.SampleRate)
	}
	dataLen := len(c.Samples) * 2
	var hdr [44]byte
	copy(hdr[0:4], "RIFF")
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(36+dataLen))
	copy(hdr[8:12], "WAVE")
	copy(hdr[12:16], "fmt ")
	binary.LittleEndian.PutUint32(hdr[16:20], 16) // PCM chunk size
	binary.LittleEndian.PutUint16(hdr[20:22], 1)  // PCM
	binary.LittleEndian.PutUint16(hdr[22:24], 1)  // mono
	binary.LittleEndian.PutUint32(hdr[24:28], uint32(c.SampleRate))
	binary.LittleEndian.PutUint32(hdr[28:32], uint32(c.SampleRate*2)) // byte rate
	binary.LittleEndian.PutUint16(hdr[32:34], 2)                      // block align
	binary.LittleEndian.PutUint16(hdr[34:36], 16)                     // bits/sample
	copy(hdr[36:40], "data")
	binary.LittleEndian.PutUint32(hdr[40:44], uint32(dataLen))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	buf := make([]byte, 2*len(c.Samples))
	for i, s := range c.Samples {
		v := int16(math.Round(clampF(s, -1, 1) * 32767))
		binary.LittleEndian.PutUint16(buf[2*i:], uint16(v))
	}
	_, err := w.Write(buf)
	return err
}

func clampF(x, lo, hi float64) float64 { return math.Max(lo, math.Min(hi, x)) }

// ReadWAV decodes a 16-bit PCM mono WAV produced by WriteWAV (it tolerates
// extra chunks before "data" but insists on PCM16 mono).
func ReadWAV(r io.Reader) (Clip, error) {
	var hdr [12]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Clip{}, fmt.Errorf("audio: short riff header: %w", err)
	}
	if string(hdr[0:4]) != "RIFF" || string(hdr[8:12]) != "WAVE" {
		return Clip{}, fmt.Errorf("audio: not a RIFF/WAVE file")
	}
	var sampleRate int
	var gotFmt bool
	for {
		var ch [8]byte
		if _, err := io.ReadFull(r, ch[:]); err != nil {
			return Clip{}, fmt.Errorf("audio: truncated chunk header: %w", err)
		}
		id := string(ch[0:4])
		size := binary.LittleEndian.Uint32(ch[4:8])
		switch id {
		case "fmt ":
			body, err := readChunk(r, size)
			if err != nil {
				return Clip{}, err
			}
			if len(body) < 16 {
				return Clip{}, fmt.Errorf("audio: short fmt chunk")
			}
			if binary.LittleEndian.Uint16(body[0:2]) != 1 {
				return Clip{}, fmt.Errorf("audio: only PCM supported")
			}
			if binary.LittleEndian.Uint16(body[2:4]) != 1 {
				return Clip{}, fmt.Errorf("audio: only mono supported")
			}
			if binary.LittleEndian.Uint16(body[14:16]) != 16 {
				return Clip{}, fmt.Errorf("audio: only 16-bit supported")
			}
			sampleRate = int(binary.LittleEndian.Uint32(body[4:8]))
			gotFmt = true
		case "data":
			if !gotFmt {
				return Clip{}, fmt.Errorf("audio: data before fmt")
			}
			if sampleRate <= 0 {
				return Clip{}, fmt.Errorf("audio: sample rate %d", sampleRate)
			}
			body, err := readChunk(r, size)
			if err != nil {
				return Clip{}, err
			}
			samples := make([]float64, len(body)/2)
			for i := range samples {
				v := int16(binary.LittleEndian.Uint16(body[2*i:]))
				samples[i] = float64(v) / 32767
			}
			return Clip{SampleRate: sampleRate, Samples: samples}, nil
		default:
			// Skip unknown chunk.
			if _, err := io.CopyN(io.Discard, r, int64(size)); err != nil {
				return Clip{}, err
			}
		}
	}
}

// readChunk reads a declared-size chunk body incrementally, so a corrupt
// header claiming a multi-gigabyte chunk costs only what the input actually
// contains instead of an up-front make([]byte, size).
func readChunk(r io.Reader, size uint32) ([]byte, error) {
	var buf bytes.Buffer
	if _, err := io.CopyN(&buf, r, int64(size)); err != nil {
		return nil, fmt.Errorf("audio: truncated chunk: %w", err)
	}
	return buf.Bytes(), nil
}
