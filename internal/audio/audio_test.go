package audio

import (
	"bytes"
	"fmt"
	"math"
	"testing"
)

func TestVoiceOfDeterministicAndSeparated(t *testing.T) {
	a := VoiceOf("Hyla faber")
	b := VoiceOf("Hyla faber")
	if a != b {
		t.Fatal("voice not deterministic")
	}
	c := VoiceOf("Scinax fuscomarginatus")
	if a == c {
		t.Fatal("different species share a voice")
	}
	if a.FundamentalHz < 400 || a.FundamentalHz > 4000 {
		t.Fatalf("fundamental = %f", a.FundamentalHz)
	}
	if a.PulseRateHz < 4 || a.PulseRateHz > 40 {
		t.Fatalf("pulse rate = %f", a.PulseRateHz)
	}
}

func TestSynthesizeShape(t *testing.T) {
	v := VoiceOf("Hyla faber")
	c := Synthesize(v, SynthesisParams{Duration: 0.5, Seed: 1})
	if c.SampleRate != 22050 {
		t.Fatalf("default sample rate = %d", c.SampleRate)
	}
	if got := c.Duration(); math.Abs(got-0.5) > 0.01 {
		t.Fatalf("duration = %f", got)
	}
	peak := 0.0
	for _, s := range c.Samples {
		if a := math.Abs(s); a > peak {
			peak = a
		}
	}
	if peak == 0 || peak > 1.0001 {
		t.Fatalf("peak = %f", peak)
	}
	// Same seed reproduces; different seed varies.
	c2 := Synthesize(v, SynthesisParams{Duration: 0.5, Seed: 1})
	c3 := Synthesize(v, SynthesisParams{Duration: 0.5, Seed: 2, NoiseLevel: 0.1})
	same := true
	for i := range c.Samples {
		if c.Samples[i] != c2.Samples[i] {
			same = false
			break
		}
	}
	if !same {
		t.Fatal("same seed differs")
	}
	diff := false
	for i := range c.Samples {
		if c.Samples[i] != c3.Samples[i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("noisy clip identical to clean one")
	}
}

func TestWAVRoundTrip(t *testing.T) {
	v := VoiceOf("Hyla faber")
	c := Synthesize(v, SynthesisParams{Duration: 0.3, Seed: 4})
	var buf bytes.Buffer
	if err := WriteWAV(&buf, c); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 44+2*len(c.Samples) {
		t.Fatalf("wav size = %d", buf.Len())
	}
	got, err := ReadWAV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.SampleRate != c.SampleRate || len(got.Samples) != len(c.Samples) {
		t.Fatalf("round trip shape: %d Hz %d samples", got.SampleRate, len(got.Samples))
	}
	// 16-bit quantization error only.
	for i := range c.Samples {
		if math.Abs(got.Samples[i]-c.Samples[i]) > 1.0/32000 {
			t.Fatalf("sample %d drifted: %f vs %f", i, got.Samples[i], c.Samples[i])
		}
	}
}

func TestReadWAVErrors(t *testing.T) {
	if _, err := ReadWAV(bytes.NewReader([]byte("not a wav"))); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadWAV(bytes.NewReader(append([]byte("RIFF0000WAVE"), []byte("data\x04\x00\x00\x00abcd")...))); err == nil {
		t.Fatal("data-before-fmt accepted")
	}
	if err := WriteWAV(&bytes.Buffer{}, Clip{}); err == nil {
		t.Fatal("zero sample rate accepted")
	}
}

// TestFFTAgainstNaiveDFT verifies the radix-2 FFT on random data.
func TestFFTAgainstNaiveDFT(t *testing.T) {
	const n = 64
	re := make([]float64, n)
	im := make([]float64, n)
	for i := range re {
		re[i] = math.Sin(float64(i)*0.7) + 0.3*math.Cos(float64(i)*2.1)
	}
	wantRe := make([]float64, n)
	wantIm := make([]float64, n)
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			ang := -2 * math.Pi * float64(k) * float64(j) / n
			wantRe[k] += re[j]*math.Cos(ang) - im[j]*math.Sin(ang)
			wantIm[k] += re[j]*math.Sin(ang) + im[j]*math.Cos(ang)
		}
	}
	FFT(re, im)
	for k := 0; k < n; k++ {
		if math.Abs(re[k]-wantRe[k]) > 1e-9 || math.Abs(im[k]-wantIm[k]) > 1e-9 {
			t.Fatalf("bin %d: (%f,%f) vs naive (%f,%f)", k, re[k], im[k], wantRe[k], wantIm[k])
		}
	}
}

func TestFFTPanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for non-power-of-two")
		}
	}()
	FFT(make([]float64, 12), make([]float64, 12))
}

func TestExtractRecoversVoiceParameters(t *testing.T) {
	for _, species := range []string{"Hyla faber", "Scinax fuscomarginatus", "Elachistocleis ovalis"} {
		v := VoiceOf(species)
		c := Synthesize(v, SynthesisParams{Duration: 1.5, Seed: 7, NoiseLevel: 0.02})
		f := Extract(c)
		// Dominant frequency within the sweep band around the fundamental.
		tol := math.Abs(v.SweepHz)/2 + 60
		if math.Abs(f.DominantHz-v.FundamentalHz) > tol {
			t.Errorf("%s: dominant %f vs fundamental %f (tol %f)", species, f.DominantHz, v.FundamentalHz, tol)
		}
		// Pulse rate within 20%.
		if f.PulseRateHz == 0 || math.Abs(f.PulseRateHz-v.PulseRateHz)/v.PulseRateHz > 0.25 {
			t.Errorf("%s: pulse rate %f vs voice %f", species, f.PulseRateHz, v.PulseRateHz)
		}
		if f.RMS <= 0 || f.CentroidHz <= 0 || f.BandwidthHz <= 0 {
			t.Errorf("%s: degenerate features %+v", species, f)
		}
	}
	// Empty clip.
	if f := Extract(Clip{}); f != (Features{}) {
		t.Fatalf("empty clip features = %+v", f)
	}
}

func buildIndex(tb testing.TB, nSpecies, clipsPer int, noise float64) *Index {
	tb.Helper()
	var clips []IndexedClip
	for s := 0; s < nSpecies; s++ {
		species := fmt.Sprintf("Species synthetica%d", s)
		v := VoiceOf(species)
		for c := 0; c < clipsPer; c++ {
			clip := Synthesize(v, SynthesisParams{
				Duration: 1.0, Seed: int64(s*1000 + c), NoiseLevel: noise,
			})
			clips = append(clips, IndexedClip{
				RecordID: fmt.Sprintf("R-%d-%d", s, c),
				Species:  species,
				Features: Extract(clip),
			})
		}
	}
	return NewIndex(clips)
}

func TestAcousticRetrievalCleanVsNoisy(t *testing.T) {
	clean := buildIndex(t, 12, 4, 0.01)
	accClean := clean.TopSpeciesAccuracy()
	if accClean < 0.8 {
		t.Fatalf("clean acoustic retrieval accuracy = %.2f, want ≥0.8", accClean)
	}
	// Heavy noise (legacy tape in the field): accuracy degrades — the
	// paper's "acoustic properties vary widely, hampering this kind of
	// retrieval".
	noisy := buildIndex(t, 12, 4, 0.8)
	accNoisy := noisy.TopSpeciesAccuracy()
	if accNoisy >= accClean {
		t.Fatalf("noise did not degrade retrieval: clean %.2f vs noisy %.2f", accClean, accNoisy)
	}
}

func TestIndexQuery(t *testing.T) {
	idx := buildIndex(t, 5, 3, 0.05)
	if idx.Len() != 15 {
		t.Fatalf("Len = %d", idx.Len())
	}
	probe := Extract(Synthesize(VoiceOf("Species synthetica2"), SynthesisParams{Duration: 1, Seed: 999, NoiseLevel: 0.05}))
	hits := idx.Query(probe, 3)
	if len(hits) != 3 {
		t.Fatalf("hits = %d", len(hits))
	}
	if hits[0].Species != "Species synthetica2" {
		t.Fatalf("nearest = %s (d=%.3f)", hits[0].Species, hits[0].Distance)
	}
	for i := 1; i < len(hits); i++ {
		if hits[i].Distance < hits[i-1].Distance {
			t.Fatal("hits unordered")
		}
	}
	// k=0 returns all.
	if got := idx.Query(probe, 0); len(got) != 15 {
		t.Fatalf("k=0 hits = %d", len(got))
	}
	// Tiny index.
	if acc := NewIndex(nil).TopSpeciesAccuracy(); acc != 0 {
		t.Fatalf("empty accuracy = %f", acc)
	}
}
