package audio

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzReadWAV drives the archival WAV decoder with truncated and corrupted
// input. The decoder guards the archive's read path (every restored clip
// passes through it), so the invariant is strict: arbitrary bytes must never
// panic or over-allocate, and anything it accepts must be a playable clip.
func FuzzReadWAV(f *testing.F) {
	// Seed with a real clip and targeted damage to it.
	var buf bytes.Buffer
	clip := Synthesize(VoiceOf("Boana albomarginata"), SynthesisParams{
		SampleRate: 8000, Duration: 0.05, NoiseLevel: 0.05, Seed: 7,
	})
	if err := WriteWAV(&buf, clip); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	for _, cut := range []int{0, 4, 11, 12, 20, 36, 44, len(valid) - 1} {
		f.Add(valid[:cut])
	}
	for _, flip := range []int{0, 8, 16, 21, 23, 35, 40} {
		mut := bytes.Clone(valid)
		mut[flip] ^= 0xFF
		f.Add(mut)
	}
	// Chunk header claiming a multi-gigabyte body on a tiny file.
	huge := bytes.Clone(valid[:20])
	binary.LittleEndian.PutUint32(huge[16:20], 0xFFFFFFF0)
	f.Add(huge)
	f.Add([]byte("RIFF"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := ReadWAV(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted input must be a well-formed clip that re-encodes.
		if c.SampleRate <= 0 {
			t.Fatalf("accepted clip with sample rate %d", c.SampleRate)
		}
		for i, s := range c.Samples {
			if s < -1.001 || s > 1.001 {
				t.Fatalf("sample %d out of range: %v", i, s)
			}
		}
		if err := WriteWAV(&out{}, c); err != nil {
			t.Fatalf("accepted clip does not re-encode: %v", err)
		}
	})
}

// out is a discard writer (avoids buffering fuzz-sized re-encodings).
type out struct{}

func (out) Write(p []byte) (int, error) { return len(p), nil }

// TestReadWAVHugeChunkClaim pins the incremental-read guard: a header
// claiming a ~4 GiB chunk on a 20-byte input must fail fast, not allocate.
func TestReadWAVHugeChunkClaim(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteWAV(&buf, Clip{SampleRate: 8000, Samples: make([]float64, 16)}); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()[:20]
	binary.LittleEndian.PutUint32(b[16:20], 0xFFFFFFF0)
	if _, err := ReadWAV(bytes.NewReader(b)); err == nil {
		t.Fatal("huge chunk claim accepted")
	}
}
