package audio

import "math"

// FFT computes the in-place radix-2 Cooley-Tukey FFT of the complex signal
// given as separate real/imag slices, whose length must be a power of two.
func FFT(re, im []float64) {
	n := len(re)
	if n != len(im) || n&(n-1) != 0 {
		panic("audio: FFT length must be a power of two with matching imag")
	}
	// Bit reversal.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j |= bit
		if i < j {
			re[i], re[j] = re[j], re[i]
			im[i], im[j] = im[j], im[i]
		}
	}
	for length := 2; length <= n; length <<= 1 {
		ang := -2 * math.Pi / float64(length)
		wRe, wIm := math.Cos(ang), math.Sin(ang)
		for start := 0; start < n; start += length {
			curRe, curIm := 1.0, 0.0
			for k := 0; k < length/2; k++ {
				i1, i2 := start+k, start+k+length/2
				evenRe, evenIm := re[i1], im[i1]
				oddRe := re[i2]*curRe - im[i2]*curIm
				oddIm := re[i2]*curIm + im[i2]*curRe
				re[i1], im[i1] = evenRe+oddRe, evenIm+oddIm
				re[i2], im[i2] = evenRe-oddRe, evenIm-oddIm
				curRe, curIm = curRe*wRe-curIm*wIm, curRe*wIm+curIm*wRe
			}
		}
	}
}

// PowerSpectrum returns |FFT|^2 of the (Hann-windowed, zero-padded) signal,
// bins 0..N/2, plus the bin width in Hz.
func PowerSpectrum(samples []float64, sampleRate int) (power []float64, hzPerBin float64) {
	n := 1
	for n < len(samples) {
		n <<= 1
	}
	re := make([]float64, n)
	im := make([]float64, n)
	// Hann window over the actual samples.
	for i, s := range samples {
		w := 0.5 * (1 - math.Cos(2*math.Pi*float64(i)/float64(len(samples))))
		re[i] = s * w
	}
	FFT(re, im)
	half := n/2 + 1
	power = make([]float64, half)
	for i := 0; i < half; i++ {
		power[i] = re[i]*re[i] + im[i]*im[i]
	}
	return power, float64(sampleRate) / float64(n)
}
