package audio

import (
	"math"
	"sort"
)

// Features is the acoustic feature vector used for similarity retrieval —
// the standard bioacoustic descriptors (dominant frequency, spectral
// centroid/bandwidth, pulse rate, energy).
type Features struct {
	DominantHz  float64
	CentroidHz  float64
	BandwidthHz float64
	PulseRateHz float64
	RMS         float64
}

// Extract computes the feature vector of a clip.
func Extract(c Clip) Features {
	if len(c.Samples) == 0 || c.SampleRate <= 0 {
		return Features{}
	}
	power, hzPerBin := PowerSpectrum(c.Samples, c.SampleRate)
	// Ignore DC and near-DC rumble.
	minBin := int(50/hzPerBin) + 1
	var f Features
	var total, weighted float64
	best := minBin
	for i := minBin; i < len(power); i++ {
		total += power[i]
		weighted += power[i] * float64(i)
		if power[i] > power[best] {
			best = i
		}
	}
	f.DominantHz = float64(best) * hzPerBin
	if total > 0 {
		centroidBin := weighted / total
		f.CentroidHz = centroidBin * hzPerBin
		var varsum float64
		for i := minBin; i < len(power); i++ {
			d := float64(i) - centroidBin
			varsum += power[i] * d * d
		}
		f.BandwidthHz = math.Sqrt(varsum/total) * hzPerBin
	}
	// RMS.
	var sq float64
	for _, s := range c.Samples {
		sq += s * s
	}
	f.RMS = math.Sqrt(sq / float64(len(c.Samples)))
	f.PulseRateHz = pulseRate(c)
	return f
}

// pulseRate estimates amplitude-modulation rate from the autocorrelation of
// the rectified, smoothed envelope.
func pulseRate(c Clip) float64 {
	// Envelope at ~200 Hz resolution.
	hop := c.SampleRate / 200
	if hop < 1 {
		hop = 1
	}
	var env []float64
	for start := 0; start+hop <= len(c.Samples); start += hop {
		sum := 0.0
		for _, s := range c.Samples[start : start+hop] {
			sum += math.Abs(s)
		}
		env = append(env, sum/float64(hop))
	}
	if len(env) < 16 {
		return 0
	}
	// Remove mean.
	mean := 0.0
	for _, e := range env {
		mean += e
	}
	mean /= float64(len(env))
	for i := range env {
		env[i] -= mean
	}
	// Autocorrelation over plausible pulse periods (2–60 Hz).
	envRate := float64(c.SampleRate) / float64(hop)
	minLag := int(envRate / 60)
	maxLag := int(envRate / 2)
	if maxLag >= len(env) {
		maxLag = len(env) - 1
	}
	if minLag < 1 {
		minLag = 1
	}
	corrs := make([]float64, maxLag+1)
	bestCorr := 0.0
	for lag := minLag; lag <= maxLag; lag++ {
		corr := 0.0
		for i := 0; i+lag < len(env); i++ {
			corr += env[i] * env[i+lag]
		}
		corrs[lag] = corr
		if corr > bestCorr {
			bestCorr = corr
		}
	}
	if bestCorr <= 0 {
		return 0
	}
	// Octave disambiguation: the double period correlates almost as well as
	// the true one, so take the smallest lag within 90% of the peak.
	for lag := minLag; lag <= maxLag; lag++ {
		if corrs[lag] >= 0.9*bestCorr {
			return envRate / float64(lag)
		}
	}
	return 0
}

// --- similarity retrieval ---

// IndexedClip pairs a feature vector with its record identity.
type IndexedClip struct {
	RecordID string
	Species  string
	Features Features
}

// Index is a nearest-neighbour index over acoustic features (linear scan
// with per-dimension normalization — adequate at collection scale).
type Index struct {
	clips []IndexedClip
	scale Features // per-dimension normalization factors
}

// NewIndex builds the index and computes normalization from the data.
func NewIndex(clips []IndexedClip) *Index {
	idx := &Index{clips: append([]IndexedClip(nil), clips...)}
	maxAbs := func(get func(Features) float64) float64 {
		m := 1e-9
		for _, c := range idx.clips {
			if v := math.Abs(get(c.Features)); v > m {
				m = v
			}
		}
		return m
	}
	idx.scale = Features{
		DominantHz:  maxAbs(func(f Features) float64 { return f.DominantHz }),
		CentroidHz:  maxAbs(func(f Features) float64 { return f.CentroidHz }),
		BandwidthHz: maxAbs(func(f Features) float64 { return f.BandwidthHz }),
		PulseRateHz: maxAbs(func(f Features) float64 { return f.PulseRateHz }),
		RMS:         maxAbs(func(f Features) float64 { return f.RMS }),
	}
	return idx
}

// Len reports the number of indexed clips.
func (idx *Index) Len() int { return len(idx.clips) }

func (idx *Index) distance(a, b Features) float64 {
	d := 0.0
	add := func(x, y, s float64) {
		v := (x - y) / s
		d += v * v
	}
	add(a.DominantHz, b.DominantHz, idx.scale.DominantHz)
	add(a.CentroidHz, b.CentroidHz, idx.scale.CentroidHz)
	add(a.BandwidthHz, b.BandwidthHz, idx.scale.BandwidthHz)
	add(a.PulseRateHz, b.PulseRateHz, idx.scale.PulseRateHz)
	add(a.RMS, b.RMS, idx.scale.RMS)
	return math.Sqrt(d)
}

// Hit is one retrieval result.
type Hit struct {
	IndexedClip
	Distance float64
}

// Query returns the k nearest clips to the feature vector, closest first.
func (idx *Index) Query(f Features, k int) []Hit {
	hits := make([]Hit, 0, len(idx.clips))
	for _, c := range idx.clips {
		hits = append(hits, Hit{IndexedClip: c, Distance: idx.distance(f, c.Features)})
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Distance != hits[j].Distance {
			return hits[i].Distance < hits[j].Distance
		}
		return hits[i].RecordID < hits[j].RecordID
	})
	if k > 0 && len(hits) > k {
		hits = hits[:k]
	}
	return hits
}

// TopSpeciesAccuracy evaluates retrieval: for each indexed clip, query the
// index (excluding the clip itself) and score 1 when the nearest neighbour
// is the same species. This measures how well acoustic features alone
// identify species — the paper's "hampered" retrieval mode.
func (idx *Index) TopSpeciesAccuracy() float64 {
	if len(idx.clips) < 2 {
		return 0
	}
	correct := 0
	for _, c := range idx.clips {
		hits := idx.Query(c.Features, 2)
		for _, h := range hits {
			if h.RecordID == c.RecordID {
				continue
			}
			if h.Species == c.Species {
				correct++
			}
			break
		}
	}
	return float64(correct) / float64(len(idx.clips))
}
