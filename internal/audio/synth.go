// Package audio implements the bioacoustic substrate of the collection: the
// sound recordings the FNJV preserves. It synthesizes species-specific
// vocalizations deterministically (each species gets a stable "voice" —
// fundamental frequency, pulse rate, sweep), encodes/decodes PCM WAV, and
// extracts spectral features (FFT-based dominant frequency, centroid,
// bandwidth, pulse rate) for the acoustic-similarity retrieval the paper's
// §II.C contrasts with metadata retrieval: "acoustic properties of animal
// sounds vary widely, hampering this kind of retrieval".
package audio

import (
	"hash/fnv"
	"math"
	"math/rand"
)

// Voice is the stable acoustic signature of a species: real vocalizations
// are stereotyped per species (that is why call playback works in the
// field), so the synthesizer derives one voice per species name.
type Voice struct {
	// FundamentalHz is the carrier frequency of the call.
	FundamentalHz float64
	// SweepHz is the linear frequency sweep over each pulse (can be negative).
	SweepHz float64
	// PulseRateHz is how many amplitude pulses per second the call carries.
	PulseRateHz float64
	// PulseDuty is the fraction of each pulse period with sound (0..1].
	PulseDuty float64
	// Harmonic2 is the relative amplitude of the second harmonic.
	Harmonic2 float64
}

// VoiceOf derives a deterministic voice from a species name. Different
// species get well-separated voices; the same name always maps to the same
// voice.
func VoiceOf(species string) Voice {
	h := fnv.New64a()
	h.Write([]byte(species))
	rng := rand.New(rand.NewSource(int64(h.Sum64())))
	return Voice{
		FundamentalHz: 400 + rng.Float64()*3600, // 0.4–4 kHz, typical for frogs/birds
		SweepHz:       (rng.Float64() - 0.5) * 800,
		PulseRateHz:   4 + rng.Float64()*36, // 4–40 pulses/s
		PulseDuty:     0.3 + rng.Float64()*0.5,
		Harmonic2:     rng.Float64() * 0.5,
	}
}

// Clip is a mono audio buffer.
type Clip struct {
	SampleRate int
	Samples    []float64 // in [-1, 1]
}

// Duration returns the clip length in seconds.
func (c Clip) Duration() float64 {
	if c.SampleRate == 0 {
		return 0
	}
	return float64(len(c.Samples)) / float64(c.SampleRate)
}

// SynthesisParams controls one synthesized recording.
type SynthesisParams struct {
	SampleRate int     // default 22050
	Duration   float64 // seconds, default 1.0
	// NoiseLevel is the RMS of the added background noise relative to the
	// call amplitude (field recordings are noisy; legacy tapes more so).
	NoiseLevel float64
	// Seed varies the individual rendition (same voice, different animal).
	Seed int64
}

// Synthesize renders one call of the voice: a pulsed, slightly swept tone
// with a second harmonic, plus background noise.
func Synthesize(v Voice, p SynthesisParams) Clip {
	sr := p.SampleRate
	if sr <= 0 {
		sr = 22050
	}
	dur := p.Duration
	if dur <= 0 {
		dur = 1.0
	}
	n := int(float64(sr) * dur)
	rng := rand.New(rand.NewSource(p.Seed))
	samples := make([]float64, n)
	phase := 0.0
	for i := 0; i < n; i++ {
		t := float64(i) / float64(sr)
		// Pulse envelope.
		pulsePos := math.Mod(t*v.PulseRateHz, 1.0)
		env := 0.0
		if pulsePos < v.PulseDuty {
			// Raised-cosine pulse shape.
			env = 0.5 * (1 - math.Cos(2*math.Pi*pulsePos/v.PulseDuty))
		}
		// Instantaneous frequency with sweep across the whole call.
		freq := v.FundamentalHz + v.SweepHz*(t/dur-0.5)
		phase += 2 * math.Pi * freq / float64(sr)
		s := math.Sin(phase) + v.Harmonic2*math.Sin(2*phase)
		samples[i] = env*s*0.7 + p.NoiseLevel*rng.NormFloat64()
	}
	// Normalize to [-1, 1].
	peak := 0.0
	for _, s := range samples {
		if a := math.Abs(s); a > peak {
			peak = a
		}
	}
	if peak > 1 {
		for i := range samples {
			samples[i] /= peak
		}
	}
	return Clip{SampleRate: sr, Samples: samples}
}
