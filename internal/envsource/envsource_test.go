package envsource

import (
	"errors"
	"testing"
	"time"
)

func TestNormalsDeterministic(t *testing.T) {
	s := NewSimulator()
	date := time.Date(1978, 1, 15, 0, 0, 0, 0, time.UTC)
	a, err := s.Normals(-22.9, -47.06, date)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Normals(-22.9, -47.06, date)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("non-deterministic normals: %+v vs %+v", a, b)
	}
}

func TestNormalsPlausible(t *testing.T) {
	s := NewSimulator()
	for _, tc := range []struct {
		lat, lon float64
		month    time.Month
	}{
		{-22.9, -47.06, time.January},
		{-22.9, -47.06, time.July},
		{-3.1, -60.0, time.March},
		{-34.6, -58.4, time.June},
		{10.5, -66.9, time.September},
	} {
		c, err := s.Normals(tc.lat, tc.lon, time.Date(1990, tc.month, 10, 0, 0, 0, 0, time.UTC))
		if err != nil {
			t.Fatalf("Normals(%v,%v): %v", tc.lat, tc.lon, err)
		}
		if c.TemperatureC < -10 || c.TemperatureC > 45 {
			t.Errorf("temperature %.1f°C implausible at %v,%v", c.TemperatureC, tc.lat, tc.lon)
		}
		if c.HumidityPct < 20 || c.HumidityPct > 100 {
			t.Errorf("humidity %.1f%% out of range", c.HumidityPct)
		}
		if c.Atmosphere == "" {
			t.Error("empty atmosphere")
		}
	}
}

func TestNormalsSeasonality(t *testing.T) {
	s := NewSimulator()
	jan, _ := s.Normals(-30, -55, time.Date(1990, 1, 15, 0, 0, 0, 0, time.UTC))
	jul, _ := s.Normals(-30, -55, time.Date(1990, 7, 15, 0, 0, 0, 0, time.UTC))
	if jan.TemperatureC <= jul.TemperatureC {
		t.Fatalf("southern-hemisphere January (%.1f) not warmer than July (%.1f)", jan.TemperatureC, jul.TemperatureC)
	}
	// Tropics warmer than temperate zone in the same month.
	eq, _ := s.Normals(-2, -60, time.Date(1990, 7, 15, 0, 0, 0, 0, time.UTC))
	if eq.TemperatureC <= jul.TemperatureC {
		t.Fatalf("equator (%.1f) not warmer than 30°S (%.1f)", eq.TemperatureC, jul.TemperatureC)
	}
}

func TestNormalsCoverage(t *testing.T) {
	s := NewSimulator()
	if _, err := s.Normals(48.8, 2.35, time.Now()); !errors.Is(err, ErrOutOfCoverage) {
		t.Fatalf("Paris served by Neotropical source: %v", err)
	}
	if _, err := s.Normals(-22.9, -47.06, time.Now()); err != nil {
		t.Fatalf("Campinas out of coverage: %v", err)
	}
}

func TestAtmosphereCategories(t *testing.T) {
	s := NewSimulator()
	seen := map[string]bool{}
	for lat := -50.0; lat < 20; lat += 1.7 {
		for _, m := range []time.Month{time.January, time.April, time.July, time.October} {
			c, err := s.Normals(lat, -55, time.Date(1985, m, 5, 0, 0, 0, 0, time.UTC))
			if err != nil {
				t.Fatal(err)
			}
			seen[c.Atmosphere] = true
		}
	}
	if len(seen) < 2 {
		t.Fatalf("atmosphere never varies: %v", seen)
	}
	for k := range seen {
		switch k {
		case "clear", "partly cloudy", "overcast", "rain":
		default:
			t.Fatalf("unknown atmosphere %q", k)
		}
	}
}
