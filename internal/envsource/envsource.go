// Package envsource simulates the authoritative environmental data source
// the paper used in stage-1 curation to "fill in missing fields ...
// concerning environmental conditions (e.g., humidity or temperature),
// obtained from authoritative sources, once location and date were defined".
//
// The simulator serves deterministic climate normals for any coordinate and
// date: a smooth function of latitude, elevation proxy and day-of-year, with
// reproducible station-level noise. It exercises exactly the pipeline code
// path a real normals service (e.g. WorldClim) would.
package envsource

import (
	"errors"
	"fmt"
	"math"
	"time"
)

// Conditions are the environmental fields of the FNJV schema (Table II,
// row 2: air temperature and atmospheric conditions, plus humidity which the
// paper names in §IV.B).
type Conditions struct {
	TemperatureC float64
	HumidityPct  float64
	// Atmosphere is a categorical description, e.g. "clear", "rain".
	Atmosphere string
}

// Source answers climate-normal queries. The interface lets the curation
// pipeline accept either this simulator or a future real client.
type Source interface {
	Normals(lat, lon float64, date time.Time) (Conditions, error)
}

// ErrOutOfCoverage is returned for coordinates outside the source coverage.
var ErrOutOfCoverage = errors.New("envsource: coordinates outside coverage")

// Simulator is a deterministic climate-normals source covering the
// Neotropics.
type Simulator struct {
	// Coverage is the served region; queries outside it fail.
	Coverage struct{ MinLat, MaxLat, MinLon, MaxLon float64 }
}

// NewSimulator builds a simulator covering the Neotropical region
// (southern Mexico through South America).
func NewSimulator() *Simulator {
	s := &Simulator{}
	s.Coverage.MinLat, s.Coverage.MaxLat = -56, 24
	s.Coverage.MinLon, s.Coverage.MaxLon = -110, -30
	return s
}

// Normals returns deterministic climate normals for a point and date.
func (s *Simulator) Normals(lat, lon float64, date time.Time) (Conditions, error) {
	if lat < s.Coverage.MinLat || lat > s.Coverage.MaxLat || lon < s.Coverage.MinLon || lon > s.Coverage.MaxLon {
		return Conditions{}, fmt.Errorf("%w: %.3f,%.3f", ErrOutOfCoverage, lat, lon)
	}
	doy := float64(date.YearDay())
	// Southern-hemisphere seasonality: warm around January, cool in July.
	season := math.Cos(2 * math.Pi * (doy - 15) / 365.25)
	if lat > 0 {
		season = -season
	}
	// Base temperature falls with |lat|; seasonal swing grows with |lat|.
	base := 28 - 0.45*math.Abs(lat)
	swing := 2 + 0.25*math.Abs(lat)
	noise := stationNoise(lat, lon)
	temp := base + swing*season + 3*noise

	// Humidity: wetter near the equator and in the local wet season.
	hum := 78 - 0.5*math.Abs(lat) + 10*season + 8*noise
	hum = clamp(hum, 20, 100)

	atmo := "clear"
	switch {
	case hum > 88:
		atmo = "rain"
	case hum > 78:
		atmo = "overcast"
	case hum > 68:
		atmo = "partly cloudy"
	}
	return Conditions{
		TemperatureC: round1(temp),
		HumidityPct:  round1(hum),
		Atmosphere:   atmo,
	}, nil
}

// stationNoise is a deterministic pseudo-random field in [-1, 1] that varies
// smoothly-ish with location, standing in for microclimate.
func stationNoise(lat, lon float64) float64 {
	x := math.Sin(lat*12.9898+lon*78.233) * 43758.5453
	return 2*(x-math.Floor(x)) - 1
}

func clamp(x, lo, hi float64) float64 {
	return math.Max(lo, math.Min(hi, x))
}

func round1(x float64) float64 { return math.Round(x*10) / 10 }
