package web

import (
	"context"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/shard"
)

// Tenancy at the HTTP boundary: every /api/v1 request may name its tenant in
// the X-Tenant header. The tenant scopes detection runs (run IDs are minted
// as "tenant:run-NNNNNN" and the workflow input is the tenant's slice of the
// collection) and is the key the per-tenant quota buckets charge. No header
// means the default tenant "" — the single-tenant behaviour of earlier
// versions, unchanged.

// TenantHeader is the request header naming the calling tenant.
const TenantHeader = "X-Tenant"

type tenantCtxKey struct{}

// TenantFrom returns the tenant the request authenticated as, "" for the
// default tenant.
func TenantFrom(ctx context.Context) string {
	t, _ := ctx.Value(tenantCtxKey{}).(string)
	return t
}

// withTenant stamps the tenant into the request context.
func withTenant(ctx context.Context, tenant string) context.Context {
	return context.WithValue(ctx, tenantCtxKey{}, tenant)
}

// requestClass names the quota weight class of a request: detection runs
// ("detect") execute a whole workflow and cost far more than a page read
// ("read"). The class is looked up in the quota table's cost map, so
// operators tune the weights without touching this code.
func requestClass(r *http.Request) string {
	if r.Method == http.MethodPost && r.URL.Path == "/api/v1/detect" {
		return "detect"
	}
	return "read"
}

// tenantGate validates the X-Tenant header, charges the tenant's quota
// bucket by the request's weight class, and either forwards the request with
// the tenant in its context or answers 429 with the standard error envelope.
// Requests without a header run as the default tenant; an ill-formed tenant
// name is a 400. When no quota table is configured the gate only validates
// and stamps the tenant.
func (s *Server) tenantGate(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		tenant := r.Header.Get(TenantHeader)
		if tenant != "" && !shard.ValidTenant(tenant) {
			badRequest(w, fmt.Errorf("invalid %s %q: want lowercase [a-z0-9-], at most 64 chars", TenantHeader, tenant))
			return
		}
		if q := s.System.Quotas; q != nil {
			d := q.AllowN(tenant, q.Cost(requestClass(r)))
			w.Header().Set("X-RateLimit-Limit", strconv.Itoa(d.Limit))
			w.Header().Set("X-RateLimit-Remaining", strconv.Itoa(d.Remaining))
			if !d.Allowed {
				secs := int(d.RetryAfter / time.Second)
				if d.RetryAfter%time.Second != 0 {
					secs++ // Retry-After is whole seconds, rounded up
				}
				w.Header().Set("Retry-After", strconv.Itoa(secs))
				writeAPIError(w, http.StatusTooManyRequests, "rate_limited",
					fmt.Sprintf("tenant %q exhausted its request quota; retry in %v", tenant, d.RetryAfter))
				return
			}
		}
		h(w, r.WithContext(withTenant(r.Context(), tenant)))
	}
}
