// Package web implements the FNJV web-site environment in which the paper's
// prototype ran (Fig. 2 is a screenshot of it): a dashboard over the
// collection, a detection page publishing the prototype's progress numbers,
// record pages with their update references and curation history, quality
// reports, provenance export, and a Linked-Data (N-Triples) export of the
// curated collection.
package web

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"html/template"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/curation"
	"repro/internal/fnjv"
	"repro/internal/linkeddata"
	"repro/internal/quality"
	"repro/internal/shard"
	"repro/internal/taxonomy"
)

func timeNow() time.Time { return time.Now() }

// Server serves the FNJV prototype UI and APIs. The HTML handlers and the
// /api/v1 JSON handlers are both thin renderers over the same Service.
type Server struct {
	System *System
	svc    *Service
	mux    *http.ServeMux
}

// System bundles what the handlers need.
type System struct {
	Core     *core.System
	Resolver taxonomy.Resolver
	// Checklist enables the Linked-Data shadow extraction endpoints; may be
	// nil.
	Checklist *taxonomy.Checklist
	// Preservation enables the /archive fixity views and the scrubber rows
	// of /metrics; may be nil when no archival store is configured.
	Preservation *core.PreservationManager
	// Resilient, when the Resolver is a taxonomy.ResilientResolver, exposes
	// its breaker/bulkhead/fallback counters on /metrics; may be nil.
	Resilient *taxonomy.ResilientResolver
	// Quotas, when set, rate-limits /api/v1 per tenant (X-Tenant header);
	// nil disables admission control.
	Quotas *shard.Quotas
	// Scheduler, when set, is this process's member of the orchestrator pool:
	// POST /api/v1/detect admits runs asynchronously (202 + run URL) instead
	// of executing in-request, and the scheduler's claim/rescue counters show
	// on /api/v1/metrics. Nil keeps the synchronous single-process behaviour.
	Scheduler *cluster.Scheduler

	mu          sync.Mutex
	lastOutcome *core.DetectionOutcome
}

// RecordOutcome publishes a detection outcome produced outside the request
// path — the scheduler draining admitted runs — so the quality and detect
// views reflect it exactly as a synchronous run's outcome would.
func (sys *System) RecordOutcome(out *core.DetectionOutcome) {
	if out == nil {
		return
	}
	sys.mu.Lock()
	sys.lastOutcome = out
	sys.mu.Unlock()
}

// NewServer builds the HTTP server.
func NewServer(sys *System) *Server {
	s := &Server{System: sys, svc: NewService(sys), mux: http.NewServeMux()}
	s.mux.HandleFunc("/", s.handleDashboard)
	s.mux.HandleFunc("/detect", s.handleDetect)
	s.mux.HandleFunc("/records", s.handleRecords)
	s.mux.HandleFunc("/record/", s.handleRecord)
	s.mux.HandleFunc("/quality", s.handleQuality)
	s.mux.HandleFunc("/review", s.handleReview)
	s.mux.HandleFunc("/review/act", s.handleReviewAct)
	s.mux.HandleFunc("/health", s.handleCollectionHealth)
	s.mux.HandleFunc("/provenance/", s.handleProvenance)
	s.mux.HandleFunc("/archive", s.handleArchive)
	s.mux.HandleFunc("/archive/", s.handleArchiveObject)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/export/ntriples", s.handleNTriples)
	s.mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	s.registerAPI()
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

var pageTmpl = template.Must(template.New("page").Parse(`<!doctype html>
<html><head><title>{{.Title}} — FNJV</title>
<style>
body{font-family:sans-serif;margin:2em;max-width:70em}
table{border-collapse:collapse}td,th{border:1px solid #999;padding:.3em .6em;text-align:left}
.num{font-variant-numeric:tabular-nums}
nav a{margin-right:1em}
.flag{color:#a40000}
</style></head>
<body>
<nav><a href="/">dashboard</a><a href="/detect">detect outdated names</a><a href="/records">search records</a><a href="/quality">quality</a><a href="/archive">archive</a><a href="/export/ntriples">linked data</a></nav>
<h1>{{.Title}}</h1>
{{.Body}}
</body></html>`))

func (s *Server) render(w http.ResponseWriter, title string, body string) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	pageTmpl.Execute(w, struct {
		Title string
		Body  template.HTML
	}{title, template.HTML(body)})
}

func esc(v string) string { return template.HTMLEscapeString(v) }

func (s *Server) handleDashboard(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	stats, err := s.System.Core.Records.Stats()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	var b strings.Builder
	fmt.Fprintf(&b, `<table>
<tr><th>records</th><td class=num>%d</td></tr>
<tr><th>distinct species names</th><td class=num>%d</td></tr>
<tr><th>with coordinates</th><td class=num>%d</td></tr>
<tr><th>with environmental fields</th><td class=num>%d</td></tr>
<tr><th>pending name updates</th><td class=num>%d</td></tr>
<tr><th>approved name updates</th><td class=num>%d</td></tr>
<tr><th>curation history entries</th><td class=num>%d</td></tr>
</table>`,
		stats.Records, stats.DistinctSpecies, stats.WithCoordinates, stats.WithEnvFields,
		s.System.Core.Ledger.CountUpdates(curation.ReviewPending),
		s.System.Core.Ledger.CountUpdates(curation.ReviewApproved),
		s.System.Core.Ledger.HistoryCount())
	// Runs are paged through the repository's cursor API: at production
	// scale the dashboard must not materialize every run ever captured.
	after := r.URL.Query().Get("after")
	limit, err := parsePageLimit(r.URL.Query().Get("limit"), 25)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	runs, next, err := s.svc.RunsPage(after, limit)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	b.WriteString("<h2>provenance runs</h2><table><tr><th>run</th><th>workflow</th><th>status</th><th>provenance</th></tr>")
	for _, info := range runs {
		fmt.Fprintf(&b, `<tr><td>%s</td><td>%s</td><td>%s</td><td><a href="/provenance/%s">OPM XML</a> <a href="/provenance/%s/edges">edges</a></td></tr>`,
			esc(info.RunID), esc(info.WorkflowName), esc(string(info.Status)), esc(info.RunID), esc(info.RunID))
	}
	b.WriteString("</table>")
	if next != "" {
		fmt.Fprintf(&b, `<p><a href="/?after=%s&limit=%d">next page</a></p>`, esc(next), limit)
	}
	s.render(w, "Collection dashboard", b.String())
}

// handleDetect runs the detection workflow (GET shows the last result;
// POST or ?run=1 triggers a new run) and renders the Fig. 2 progress block.
func (s *Server) handleDetect(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodPost || r.URL.Query().Get("run") == "1" {
		if _, err := s.svc.Detect(context.Background()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
	}
	outcome := s.svc.LastOutcome()
	if outcome == nil {
		s.render(w, "Detection of outdated species names",
			`<p>No run yet. <a href="/detect?run=1">Run detection now</a>.</p>`)
		return
	}
	var b strings.Builder
	fmt.Fprintf(&b, `<p><a href="/detect?run=1">Run again</a></p>
<table>
<tr><th>distinct species names in the database</th><td class=num>%d</td></tr>
<tr><th>records processed</th><td class=num>%d</td></tr>
<tr><th>species names detected as outdated</th><td class=num>%d (%.0f%%)</td></tr>
<tr><th>names unknown to the authority</th><td class=num>%d</td></tr>
<tr><th>authority unavailable for</th><td class=num>%d</td></tr>
<tr><th>answered from stale cache (degraded)</th><td class=num>%d</td></tr>
<tr><th>per-record updates flagged for biologists</th><td class="num flag">%d</td></tr>
</table>
<h2>updated species names</h2>
<table><tr><th>outdated name</th><th>current name</th></tr>`,
		outcome.DistinctNames, outcome.RecordsProcessed, outcome.Outdated,
		100*outcome.OutdatedFraction(), outcome.Unknown, outcome.Unavailable,
		outcome.Degraded, outcome.UpdatesCreated)
	names := make([]string, 0, len(outcome.Renames))
	for n := range outcome.Renames {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "<tr><td><i>%s</i></td><td><i>%s</i></td></tr>", esc(n), esc(outcome.Renames[n]))
	}
	b.WriteString("</table>")
	s.render(w, "Detection of outdated species names", b.String())
}

func (s *Server) handleRecords(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	var b strings.Builder
	b.WriteString(`<form method="get">
species <input name="species" value="` + esc(q.Get("species")) + `">
state <input name="state" value="` + esc(q.Get("state")) + `">
taxon <input name="taxon" value="` + esc(q.Get("taxon")) + `">
<button>search</button></form>`)
	if q.Get("species") != "" || q.Get("state") != "" || q.Get("taxon") != "" {
		recs, err := s.svc.SearchRecords(q.Get("species"), q.Get("state"), q.Get("taxon"), 200)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		fmt.Fprintf(&b, "<p>%d results (capped at 200)</p><table><tr><th>id</th><th>species</th><th>state</th><th>city</th><th>date</th></tr>", len(recs))
		for _, rec := range recs {
			date := ""
			if !rec.CollectDate.IsZero() {
				date = rec.CollectDate.Format("2006-01-02")
			}
			fmt.Fprintf(&b, `<tr><td><a href="/record/%s">%s</a></td><td><i>%s</i></td><td>%s</td><td>%s</td><td>%s</td></tr>`,
				esc(rec.ID), esc(rec.ID), esc(rec.Species), esc(rec.State), esc(rec.City), date)
		}
		b.WriteString("</table>")
	}
	s.render(w, "Metadata-based retrieval", b.String())
}

func (s *Server) handleRecord(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/record/")
	d, err := s.svc.Record(id)
	if errors.Is(err, errNotFound) {
		http.NotFound(w, r)
		return
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	rec, curated := d.Record, d.Curated
	var b strings.Builder
	fmt.Fprintf(&b, `<table>
<tr><th>stored (historical) name</th><td><i>%s</i></td></tr>
<tr><th>curated (current) name</th><td><i>%s</i></td></tr>
<tr><th>classification</th><td>%s / %s / %s / %s</td></tr>
<tr><th>where</th><td>%s, %s, %s (%s)</td></tr>
<tr><th>when</th><td>%s %s</td></tr>
<tr><th>recording</th><td>%s, %s, %s @ %.1f kHz, %ds</td></tr>
</table>`,
		esc(rec.Species), esc(curated),
		esc(rec.Phylum), esc(rec.Class), esc(rec.Order), esc(rec.Family),
		esc(rec.Country), esc(rec.State), esc(rec.City), esc(rec.Locality),
		rec.CollectDate.Format("2006-01-02"), esc(rec.CollectTime),
		esc(rec.RecordingDevice), esc(rec.MicrophoneModel), esc(rec.SoundFileFormat),
		rec.FrequencyKHz, rec.DurationSec)

	if updates := d.Updates; len(updates) > 0 {
		b.WriteString("<h2>name updates (original record unchanged)</h2><table><tr><th>original</th><th>updated</th><th>status</th><th>review</th></tr>")
		for _, u := range updates {
			fmt.Fprintf(&b, "<tr><td><i>%s</i></td><td><i>%s</i></td><td>%s</td><td>%s</td></tr>",
				esc(u.OriginalName), esc(u.UpdatedName), esc(u.Status), esc(u.Review))
		}
		b.WriteString("</table>")
	}
	if hist := d.History; len(hist) > 0 {
		b.WriteString("<h2>curation history</h2><table><tr><th>field</th><th>old</th><th>new</th><th>reason</th><th>actor</th></tr>")
		for _, h := range hist {
			fmt.Fprintf(&b, "<tr><td>%s</td><td>%s</td><td>%s</td><td>%s</td><td>%s</td></tr>",
				esc(h.Field), esc(h.OldValue), esc(h.NewValue), esc(h.Reason), esc(h.Actor))
		}
		b.WriteString("</table>")
	}
	s.render(w, "Record "+id, b.String())
}

func (s *Server) handleQuality(w http.ResponseWriter, r *http.Request) {
	outcome := s.svc.LastOutcome()
	if outcome == nil {
		s.render(w, "Quality assessment", `<p>No assessment yet — <a href="/detect?run=1">run detection first</a>.</p>`)
		return
	}
	s.render(w, "Quality assessment", "<pre>"+esc(quality.Report(outcome.Assessment))+"</pre>")
}

// handleCollectionHealth renders the collection-level quality assessment
// (completeness/consistency) — where should the next curation pass go?
func (s *Server) handleCollectionHealth(w http.ResponseWriter, r *http.Request) {
	a, facts, err := s.System.Core.AssessCollection(s.System.Checklist, time.Time{}, timeNow())
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	var b strings.Builder
	fmt.Fprintf(&b, `<table>
<tr><th>records</th><td class=num>%d</td></tr>
<tr><th>full identification</th><td class=num>%d</td></tr>
<tr><th>georeferenced</th><td class=num>%d</td></tr>
<tr><th>environmental fields</th><td class=num>%d</td></tr>
<tr><th>genus/binomial mismatches</th><td class=num>%d</td></tr>
<tr><th>classification mismatches</th><td class=num>%d</td></tr>
<tr><th>temporal violations</th><td class=num>%d</td></tr>
</table><h2>assessment</h2><pre>%s</pre>`,
		facts.Records, facts.WithIdentification, facts.WithCoordinates, facts.WithEnvironment,
		facts.GenusMismatch, facts.ClassificationMismatch, facts.TimeDomainViolation,
		esc(quality.Report(a)))
	s.render(w, "Collection health", b.String())
}

// handleReview lists pending name updates with approve/reject controls —
// the "flagged to be checked by biologists" queue.
func (s *Server) handleReview(w http.ResponseWriter, r *http.Request) {
	pending, err := s.System.Core.Ledger.Pending()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	var b strings.Builder
	fmt.Fprintf(&b, "<p>%d updates pending biologist review</p>", len(pending))
	if len(pending) > 0 {
		b.WriteString("<table><tr><th>update</th><th>record</th><th>original</th><th>proposed</th><th>status</th><th>reference</th><th></th></tr>")
		max := len(pending)
		if max > 100 {
			max = 100
		}
		for _, u := range pending[:max] {
			fmt.Fprintf(&b, `<tr><td>%s</td><td><a href="/record/%s">%s</a></td><td><i>%s</i></td><td><i>%s</i></td><td>%s</td><td>%s</td>
<td><form method="post" action="/review/act" style="display:inline">
<input type="hidden" name="id" value="%s">
<button name="verdict" value="approved">approve</button>
<button name="verdict" value="rejected">reject</button>
</form></td></tr>`,
				esc(u.ID), esc(u.RecordID), esc(u.RecordID), esc(u.OriginalName), esc(u.UpdatedName),
				esc(u.Status), esc(u.Reference), esc(u.ID))
		}
		b.WriteString("</table>")
		if len(pending) > max {
			fmt.Fprintf(&b, "<p>... and %d more</p>", len(pending)-max)
		}
	}
	s.render(w, "Biologist review queue", b.String())
}

// handleReviewAct records a curator verdict and logs approved renames.
func (s *Server) handleReviewAct(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	id := r.FormValue("id")
	verdict := r.FormValue("verdict")
	led := s.System.Core.Ledger
	u, err := led.Update(id)
	if err != nil {
		http.NotFound(w, r)
		return
	}
	if err := led.Resolve(id, verdict, "web-curator", timeNow()); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if verdict == curation.ReviewApproved {
		if err := led.LogChange(curation.HistoryEntry{
			RecordID: u.RecordID, Field: "species",
			OldValue: u.OriginalName, NewValue: u.UpdatedName,
			Reason: fmt.Sprintf("name-update:%s (%s)", u.Status, u.Reference),
			Actor:  "web-curator", At: timeNow(),
		}); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
	}
	http.Redirect(w, r, "/review", http.StatusSeeOther)
}

func (s *Server) handleProvenance(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/provenance/")
	if runID, ok := strings.CutSuffix(rest, "/edges"); ok {
		s.handleProvenanceEdges(w, r, runID)
		return
	}
	blob, _, err := s.svc.RunGraphXML(rest)
	if errors.Is(err, errNotFound) {
		http.NotFound(w, r)
		return
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/xml")
	w.Write(blob)
}

// handleProvenanceEdges renders one page of a run's dependency edges using
// the repository's cursor API — large runs (per-element derivations) never
// load whole into a response.
func (s *Server) handleProvenanceEdges(w http.ResponseWriter, r *http.Request, runID string) {
	after, err := parseSeqCursor(r.URL.Query().Get("after"))
	if err != nil {
		http.Error(w, "bad after cursor", http.StatusBadRequest)
		return
	}
	limit, err := parsePageLimit(r.URL.Query().Get("limit"), 100)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	edges, next, err := s.svc.RunEdgesPage(runID, after, limit)
	if errors.Is(err, errNotFound) {
		http.NotFound(w, r)
		return
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	var b strings.Builder
	fmt.Fprintf(&b, `<p>run <b>%s</b> — <a href="/provenance/%s">OPM XML</a></p>`, esc(runID), esc(runID))
	b.WriteString("<table><tr><th>kind</th><th>effect</th><th>cause</th><th>role</th></tr>")
	for _, e := range edges {
		fmt.Fprintf(&b, "<tr><td>%s</td><td>%s</td><td>%s</td><td>%s</td></tr>",
			esc(string(e.Kind)), esc(e.Effect), esc(e.Cause), esc(e.Role))
	}
	b.WriteString("</table>")
	if next >= 0 {
		fmt.Fprintf(&b, `<p><a href="/provenance/%s/edges?after=%d&limit=%d">next page</a></p>`, esc(runID), next, limit)
	}
	s.render(w, "Provenance edges", b.String())
}

// handleArchive renders the archival store's fixity dashboard: every AIP
// with its per-replica state, the quarantine list, and a scrub trigger
// (?scrub=1 / POST) that runs one audit pass inline.
func (s *Server) handleArchive(w http.ResponseWriter, r *http.Request) {
	var b strings.Builder
	if r.Method == http.MethodPost || r.URL.Query().Get("scrub") == "1" {
		rep, err := s.svc.Scrub(r.Context())
		if errors.Is(err, errNotFound) {
			s.render(w, "Archival store", "<p>No archival store configured.</p>")
			return
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		fmt.Fprintf(&b, `<p>scrub pass: <b>%d</b> objects, %d replicas re-hashed, %d corrupt, %d missing, <b>%d repaired</b>, %d unrecoverable (%.0f ms)</p>`,
			rep.Objects, rep.ReplicasChecked, rep.CorruptFound, rep.MissingFound,
			rep.Repaired, rep.Unrecoverable,
			float64(rep.FinishedAt.Sub(rep.StartedAt).Microseconds())/1000)
	} else {
		b.WriteString(`<p><a href="/archive?scrub=1">Run a scrub pass now</a></p>`)
	}
	limit, err := parsePageLimit(r.URL.Query().Get("limit"), 100)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	ov, err := s.svc.ArchiveOverview(limit)
	if errors.Is(err, errNotFound) {
		s.render(w, "Archival store", "<p>No archival store configured.</p>")
		return
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	fmt.Fprintf(&b, "<p>%d archived objects across %d replica volumes</p>", ov.Total, ov.Volumes)
	b.WriteString("<table><tr><th>package</th><th>label</th><th>media</th><th>size</th><th>replicas</th><th>fixity</th></tr>")
	for _, st := range ov.Objects {
		fixity := "healthy"
		if st.Damaged() {
			fixity = fmt.Sprintf(`<span class=flag>%d/%d healthy</span>`, st.Healthy(), len(st.Replicas))
		}
		fmt.Fprintf(&b, `<tr><td><a href="/archive/%s">%s</a></td><td>%s</td><td>%s</td><td class=num>%d</td><td class=num>%d</td><td>%s</td></tr>`,
			esc(st.ID), esc(st.ID[:12]), esc(st.Manifest.Label), esc(st.Manifest.MediaType),
			st.Manifest.Size, len(st.Replicas), fixity)
	}
	if ov.Truncated > 0 {
		fmt.Fprintf(&b, "<tr><td colspan=6>... and %d more</td></tr>", ov.Truncated)
	}
	b.WriteString("</table>")
	if len(ov.Quarantined) > 0 {
		fmt.Fprintf(&b, `<h2>quarantined (unrecoverable)</h2><p class=flag>%d objects lost every healthy replica; damaged bytes are preserved for forensics</p><table><tr><th>package</th></tr>`, len(ov.Quarantined))
		for _, id := range ov.Quarantined {
			fmt.Fprintf(&b, `<tr><td><a href="/archive/%s">%s</a></td></tr>`, esc(id), esc(id))
		}
		b.WriteString("</table>")
	}
	s.render(w, "Archival store", b.String())
}

// handleArchiveObject renders one AIP: its manifest, provenance links and
// per-volume replica fixity.
func (s *Server) handleArchiveObject(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/archive/")
	st, err := s.svc.ArchiveObject(id)
	if err != nil {
		http.NotFound(w, r)
		return
	}
	var b strings.Builder
	m := st.Manifest
	provLink := esc(m.RunID)
	if m.RunID != "" {
		provLink = fmt.Sprintf(`<a href="/provenance/%s">%s</a>`, esc(m.RunID), esc(m.RunID))
	}
	recLink := esc(m.SourceID)
	if m.SourceID != "" {
		recLink = fmt.Sprintf(`<a href="/record/%s">%s</a>`, esc(m.SourceID), esc(m.SourceID))
	}
	fmt.Fprintf(&b, `<table>
<tr><th>label</th><td>%s</td></tr>
<tr><th>media type</th><td>%s</td></tr>
<tr><th>size</th><td class=num>%d bytes</td></tr>
<tr><th>sha256</th><td><code>%s</code></td></tr>
<tr><th>source record</th><td>%s</td></tr>
<tr><th>provenance run</th><td>%s</td></tr>
<tr><th>archived at</th><td>%s</td></tr>
<tr><th>quarantined</th><td>%v</td></tr>
</table><h2>replicas</h2><table><tr><th>volume</th><th>state</th><th>detail</th></tr>`,
		esc(m.Label), esc(m.MediaType), m.Size, esc(m.SHA256),
		recLink, provLink, m.CreatedAt.Format(time.RFC3339), st.Quarantined)
	for _, rep := range st.Replicas {
		cls := ""
		if rep.State != "healthy" {
			cls = " class=flag"
		}
		fmt.Fprintf(&b, "<tr><td>%s</td><td%s>%s</td><td>%s</td></tr>",
			esc(rep.Volume), cls, esc(string(rep.State)), esc(rep.Detail))
	}
	b.WriteString("</table>")
	s.render(w, "Archived package "+id[:min(12, len(id))], b.String())
}

// handleMetrics snapshots the runtime counters of every instrumented
// subsystem — workflow engine (with queue-wait/exec latency quantiles),
// streaming provenance writer, archive scrubber — as obs.FromRuntimeMetrics
// observations, serialized as JSON, so audits and load are observable
// without reading experiment output.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.svc.Metrics(timeNow()))
}

func (s *Server) handleNTriples(w http.ResponseWriter, r *http.Request) {
	// Two-phase: collect records first, then consult the ledger — nesting
	// ledger reads inside the collection scan would hold two read locks at
	// once, which can deadlock against a concurrent writer.
	var recs []*fnjv.Record
	err := s.System.Core.Records.Scan(func(rec *fnjv.Record) bool {
		recs = append(recs, rec)
		return true
	})
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	store := linkeddata.NewStore()
	for _, rec := range recs {
		curated, err := curation.CuratedName(s.System.Core.Ledger, rec.ID, rec.Species)
		if err == nil {
			err = linkeddata.ExportRecord(store, rec, curated)
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
	}
	w.Header().Set("Content-Type", "application/n-triples")
	store.WriteNTriples(w)
}
