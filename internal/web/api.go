// The versioned JSON API (/api/v1/): machine access to everything the HTML
// pages show — records, runs, span trees, provenance nodes/edges, archive
// holdings and fixity, quality assessments, runtime metrics. All responses
// are JSON; errors use one envelope shape:
//
//	{"error": {"code": "...", "message": "..."}}
//
// with codes bad_request, not_found, method_not_allowed, and internal.
// Cursor pagination mirrors the repositories: string cursors for runs and
// nodes, integer sequence cursors for edges and spans; next_cursor is
// omitted on the last page. Immutable resources — the provenance graph and
// span tree of a finished run, AIP manifests — carry a content-hash ETag
// and honor If-None-Match with 304.
package web

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/provenance"
	"repro/internal/telemetry"
)

// maxPageLimit is the hard page-size ceiling of every paged endpoint.
const maxPageLimit = 500

// parsePageLimit validates a ?limit= value: empty means def; anything that
// is not a positive integer at most maxPageLimit is an error (the caller
// answers 400 — limits are never silently clamped).
func parsePageLimit(s string, def int) (int, error) {
	if s == "" {
		return def, nil
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("limit %q is not an integer", s)
	}
	if n <= 0 {
		return 0, fmt.Errorf("limit must be positive, got %d", n)
	}
	if n > maxPageLimit {
		return 0, fmt.Errorf("limit %d exceeds the maximum page size %d", n, maxPageLimit)
	}
	return n, nil
}

// parseSeqCursor validates an integer ?after= sequence cursor (-1 = start).
func parseSeqCursor(s string) (int, error) {
	if s == "" {
		return -1, nil
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("after cursor %q is not a non-negative integer", s)
	}
	return n, nil
}

// errorBody is the uniform API error envelope.
type errorBody struct {
	Error struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

func writeAPIError(w http.ResponseWriter, status int, code, msg string) {
	var body errorBody
	body.Error.Code = code
	body.Error.Message = msg
	blob, _ := json.MarshalIndent(body, "", "  ")
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(blob, '\n'))
}

// fail maps a service error onto the envelope: errNotFound becomes 404,
// anything else 500.
func fail(w http.ResponseWriter, err error) {
	if errors.Is(err, errNotFound) {
		writeAPIError(w, http.StatusNotFound, "not_found", err.Error())
		return
	}
	writeAPIError(w, http.StatusInternalServerError, "internal", err.Error())
}

func badRequest(w http.ResponseWriter, err error) {
	writeAPIError(w, http.StatusBadRequest, "bad_request", err.Error())
}

// writeJSON marshals v (indented, trailing newline) with 200.
func writeJSON(w http.ResponseWriter, v any) {
	blob, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		writeAPIError(w, http.StatusInternalServerError, "internal", err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(blob, '\n'))
}

// writeCacheable serves body with a content-hash ETag and answers 304 when
// the client's If-None-Match already names it. Only immutable
// representations go through here.
func writeCacheable(w http.ResponseWriter, r *http.Request, contentType string, body []byte) {
	sum := sha256.Sum256(body)
	etag := `"` + hex.EncodeToString(sum[:16]) + `"`
	w.Header().Set("ETag", etag)
	if etagMatches(r.Header.Get("If-None-Match"), etag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	w.Header().Set("Content-Type", contentType)
	w.Write(body)
}

// writeCacheableJSON is writeCacheable over a marshalled value.
func writeCacheableJSON(w http.ResponseWriter, r *http.Request, v any) {
	blob, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		writeAPIError(w, http.StatusInternalServerError, "internal", err.Error())
		return
	}
	writeCacheable(w, r, "application/json", append(blob, '\n'))
}

// etagMatches implements the If-None-Match comparison: a comma-separated
// candidate list, "*" matching anything, weak validators compared by value.
func etagMatches(header, etag string) bool {
	if header == "" {
		return false
	}
	for _, cand := range strings.Split(header, ",") {
		cand = strings.TrimSpace(cand)
		cand = strings.TrimPrefix(cand, "W/")
		if cand == "*" || cand == etag {
			return true
		}
	}
	return false
}

// registerAPI mounts the /api/v1 routes. Every handler runs under the
// tracing middleware, so API latency is observable in the span ring.
func (s *Server) registerAPI() {
	routes := map[string]http.HandlerFunc{
		"/api/v1/records":  s.requireGet(s.apiRecords),
		"/api/v1/records/": s.requireGet(s.apiRecord),
		"/api/v1/runs":     s.requireGet(s.apiRuns),
		"/api/v1/runs/":    s.requireGet(s.apiRun),
		"/api/v1/archive":  s.requireGet(s.apiArchive),
		"/api/v1/archive/": s.requireGet(s.apiArchiveObject),
		"/api/v1/quality":  s.requireGet(s.apiQuality),
		"/api/v1/metrics":  s.requireGet(s.apiMetrics),
		"/api/v1/workers":  s.requireGet(s.apiWorkers), // deprecated alias of /api/v1/cluster
		"/api/v1/cluster":  s.requireGet(s.apiCluster),
		"/api/v1/cluster/": s.requireGet(s.apiCluster),
		"/api/v1/detect":   s.apiDetect,
		"/api/v1/": func(w http.ResponseWriter, r *http.Request) {
			writeAPIError(w, http.StatusNotFound, "not_found", "no such API resource: "+r.URL.Path)
		},
	}
	for pattern, h := range routes {
		s.mux.HandleFunc(pattern, s.traced(s.tenantGate(h)))
	}
}

// traced mints a per-request tracer — the trace context of anything the
// handler triggers (a detection run, a scrub) starts at the API boundary —
// and drains the finished spans into the system's ring afterwards.
func (s *Server) traced(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		tr := telemetry.NewTracer(0)
		ctx := telemetry.WithTracer(r.Context(), tr)
		ctx, sp := telemetry.StartSpan(ctx, r.Method+" "+r.URL.Path, "api")
		h(w, r.WithContext(ctx))
		sp.Finish()
		if ring := s.System.Core.TraceRing; ring != nil {
			ring.Add(tr.Spans()...)
		}
	}
}

func (s *Server) requireGet(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			writeAPIError(w, http.StatusMethodNotAllowed, "method_not_allowed", r.Method+" not allowed")
			return
		}
		h(w, r)
	}
}

// ---- runs ----

type runJSON struct {
	RunID        string            `json:"run_id"`
	WorkflowID   string            `json:"workflow_id"`
	WorkflowName string            `json:"workflow_name"`
	Status       string            `json:"status"`
	StartedAt    time.Time         `json:"started_at"`
	FinishedAt   *time.Time        `json:"finished_at,omitempty"`
	Error        string            `json:"error,omitempty"`
	Links        map[string]string `json:"links"`
}

func runToJSON(info provenance.RunInfo) runJSON {
	base := "/api/v1/runs/" + info.RunID
	j := runJSON{
		RunID:        info.RunID,
		WorkflowID:   info.WorkflowID,
		WorkflowName: info.WorkflowName,
		Status:       string(info.Status),
		StartedAt:    info.StartedAt,
		Error:        info.Error,
		Links: map[string]string{
			"self":  base,
			"trace": base + "/trace",
			"spans": base + "/spans",
			"nodes": base + "/nodes",
			"edges": base + "/edges",
			"graph": base + "/graph",
		},
	}
	if !info.FinishedAt.IsZero() {
		t := info.FinishedAt
		j.FinishedAt = &t
	}
	return j
}

func (s *Server) apiRuns(w http.ResponseWriter, r *http.Request) {
	limit, err := parsePageLimit(r.URL.Query().Get("limit"), 25)
	if err != nil {
		badRequest(w, err)
		return
	}
	runs, next, err := s.svc.RunsPage(r.URL.Query().Get("after"), limit)
	if err != nil {
		fail(w, err)
		return
	}
	out := make([]runJSON, 0, len(runs))
	for _, info := range runs {
		out = append(out, runToJSON(info))
	}
	writeJSON(w, struct {
		Runs       []runJSON `json:"runs"`
		NextCursor string    `json:"next_cursor,omitempty"`
	}{out, next})
}

func (s *Server) apiRun(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/api/v1/runs/")
	runID, sub, _ := strings.Cut(rest, "/")
	if runID == "" {
		writeAPIError(w, http.StatusNotFound, "not_found", "run ID missing")
		return
	}
	switch sub {
	case "":
		info, err := s.svc.Run(runID)
		if err != nil {
			fail(w, err)
			return
		}
		writeJSON(w, runToJSON(info))
	case "trace":
		s.apiRunTrace(w, r, runID)
	case "spans":
		s.apiRunSpans(w, r, runID)
	case "nodes":
		s.apiRunNodes(w, r, runID)
	case "edges":
		s.apiRunEdges(w, r, runID)
	case "graph":
		s.apiRunGraph(w, r, runID)
	default:
		writeAPIError(w, http.StatusNotFound, "not_found", "no such run resource: "+sub)
	}
}

func (s *Server) apiRunTrace(w http.ResponseWriter, r *http.Request, runID string) {
	tr, err := s.svc.RunTrace(runID)
	if err != nil {
		fail(w, err)
		return
	}
	body := struct {
		RunID     string                 `json:"run_id"`
		Status    string                 `json:"status"`
		SpanCount int                    `json:"span_count"`
		Complete  bool                   `json:"complete"`
		Roots     []*telemetry.TraceNode `json:"roots"`
	}{runID, string(tr.Info.Status), len(tr.Spans), tr.Complete, tr.Roots}
	// A finished run's trace never changes again: cache by content hash.
	if RunFinished(tr.Info) {
		writeCacheableJSON(w, r, body)
		return
	}
	writeJSON(w, body)
}

func (s *Server) apiRunSpans(w http.ResponseWriter, r *http.Request, runID string) {
	limit, err := parsePageLimit(r.URL.Query().Get("limit"), 100)
	if err != nil {
		badRequest(w, err)
		return
	}
	after, err := parseSeqCursor(r.URL.Query().Get("after"))
	if err != nil {
		badRequest(w, err)
		return
	}
	spans, next, err := s.svc.RunSpansPage(runID, after, limit)
	if err != nil {
		fail(w, err)
		return
	}
	writeJSON(w, struct {
		RunID      string           `json:"run_id"`
		Spans      []telemetry.Span `json:"spans"`
		NextCursor *int             `json:"next_cursor,omitempty"`
	}{runID, spans, cursorPtr(next)})
}

type nodeJSON struct {
	ID          string            `json:"id"`
	Kind        string            `json:"kind"`
	Label       string            `json:"label,omitempty"`
	Value       string            `json:"value,omitempty"`
	Annotations map[string]string `json:"annotations,omitempty"`
}

func (s *Server) apiRunNodes(w http.ResponseWriter, r *http.Request, runID string) {
	limit, err := parsePageLimit(r.URL.Query().Get("limit"), 100)
	if err != nil {
		badRequest(w, err)
		return
	}
	nodes, next, err := s.svc.RunNodesPage(runID, r.URL.Query().Get("after"), limit)
	if err != nil {
		fail(w, err)
		return
	}
	out := make([]nodeJSON, 0, len(nodes))
	for _, n := range nodes {
		out = append(out, nodeJSON{
			ID: n.ID, Kind: n.Kind.String(), Label: n.Label, Value: n.Value, Annotations: n.Annotations,
		})
	}
	writeJSON(w, struct {
		RunID      string     `json:"run_id"`
		Nodes      []nodeJSON `json:"nodes"`
		NextCursor string     `json:"next_cursor,omitempty"`
	}{runID, out, next})
}

type edgeJSON struct {
	Kind   string `json:"kind"`
	Effect string `json:"effect"`
	Cause  string `json:"cause"`
	Role   string `json:"role,omitempty"`
}

func (s *Server) apiRunEdges(w http.ResponseWriter, r *http.Request, runID string) {
	limit, err := parsePageLimit(r.URL.Query().Get("limit"), 100)
	if err != nil {
		badRequest(w, err)
		return
	}
	after, err := parseSeqCursor(r.URL.Query().Get("after"))
	if err != nil {
		badRequest(w, err)
		return
	}
	edges, next, err := s.svc.RunEdgesPage(runID, after, limit)
	if err != nil {
		fail(w, err)
		return
	}
	out := make([]edgeJSON, 0, len(edges))
	for _, e := range edges {
		out = append(out, edgeJSON{Kind: e.Kind.String(), Effect: e.Effect, Cause: e.Cause, Role: e.Role})
	}
	writeJSON(w, struct {
		RunID      string     `json:"run_id"`
		Edges      []edgeJSON `json:"edges"`
		NextCursor *int       `json:"next_cursor,omitempty"`
	}{runID, out, cursorPtr(next)})
}

func (s *Server) apiRunGraph(w http.ResponseWriter, r *http.Request, runID string) {
	blob, info, err := s.svc.RunGraphXML(runID)
	if err != nil {
		fail(w, err)
		return
	}
	if RunFinished(info) {
		writeCacheable(w, r, "application/xml", blob)
		return
	}
	w.Header().Set("Content-Type", "application/xml")
	w.Write(blob)
}

func cursorPtr(n int) *int {
	if n < 0 {
		return nil
	}
	return &n
}

// ---- detect ----

// apiDetect (POST) triggers a detection run. With a scheduler attached the
// default is asynchronous: the run is admitted to the durable queue and the
// response is 202 Accepted with the run's URL — an orchestrator claims and
// executes it, and the client polls /api/v1/runs/{id} until the status turns
// terminal (admitted → claimed → running → completed|failed). ?wait=true
// forces the old synchronous behaviour; without a scheduler every request is
// synchronous. Synchronous runs trace from this request's boundary span
// down; the response links to the persisted trace.
func (s *Server) apiDetect(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", "POST")
		writeAPIError(w, http.StatusMethodNotAllowed, "method_not_allowed", "POST required")
		return
	}
	if s.svc.AsyncDetect() && r.URL.Query().Get("wait") != "true" {
		adm, err := s.svc.Admit(r.Context())
		if err != nil {
			fail(w, err)
			return
		}
		runURL := "/api/v1/runs/" + adm.RunID
		w.Header().Set("Location", runURL)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		writeJSON(w, struct {
			RunID  string            `json:"run_id"`
			Status string            `json:"status"`
			Links  map[string]string `json:"links"`
		}{adm.RunID, "admitted", map[string]string{
			"run":   runURL,
			"owner": "/api/v1/cluster/runs/" + adm.RunID + "/owner",
			"queue": "/api/v1/cluster/queues",
		}})
		return
	}
	// The run must survive a client disconnect: keep the request's tracer
	// (the API boundary context) but not its cancelation.
	ctx := r.Context()
	if tr := telemetry.TracerFrom(ctx); tr != nil {
		ctx = telemetry.WithTracer(context.Background(), tr)
	} else {
		ctx = context.Background()
	}
	outcome, err := s.svc.Detect(ctx)
	if err != nil {
		fail(w, err)
		return
	}
	writeJSON(w, struct {
		RunID         string            `json:"run_id"`
		DistinctNames int               `json:"distinct_names"`
		Outdated      int               `json:"outdated"`
		Unknown       int               `json:"unknown"`
		Unavailable   int               `json:"unavailable"`
		Degraded      int               `json:"degraded"`
		Updates       int               `json:"updates_created"`
		ElapsedUS     int64             `json:"elapsed_us"`
		Links         map[string]string `json:"links"`
	}{
		outcome.RunID, outcome.DistinctNames, outcome.Outdated, outcome.Unknown,
		outcome.Unavailable, outcome.Degraded, outcome.UpdatesCreated,
		outcome.Elapsed.Microseconds(),
		map[string]string{
			"run":   "/api/v1/runs/" + outcome.RunID,
			"trace": "/api/v1/runs/" + outcome.RunID + "/trace",
		},
	})
}

// ---- records ----

type recordJSON struct {
	ID          string `json:"id"`
	Species     string `json:"species"`
	Curated     string `json:"curated_name,omitempty"`
	Phylum      string `json:"phylum,omitempty"`
	Class       string `json:"class,omitempty"`
	Order       string `json:"order,omitempty"`
	Family      string `json:"family,omitempty"`
	Country     string `json:"country,omitempty"`
	State       string `json:"state,omitempty"`
	City        string `json:"city,omitempty"`
	CollectDate string `json:"collect_date,omitempty"`
}

func (s *Server) apiRecords(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	limit, err := parsePageLimit(q.Get("limit"), 100)
	if err != nil {
		badRequest(w, err)
		return
	}
	recs, err := s.svc.SearchRecords(q.Get("species"), q.Get("state"), q.Get("taxon"), limit)
	if err != nil {
		fail(w, err)
		return
	}
	out := make([]recordJSON, 0, len(recs))
	for _, rec := range recs {
		j := recordJSON{
			ID: rec.ID, Species: rec.Species,
			Phylum: rec.Phylum, Class: rec.Class, Order: rec.Order, Family: rec.Family,
			Country: rec.Country, State: rec.State, City: rec.City,
		}
		if !rec.CollectDate.IsZero() {
			j.CollectDate = rec.CollectDate.Format("2006-01-02")
		}
		out = append(out, j)
	}
	writeJSON(w, struct {
		Records []recordJSON `json:"records"`
		Count   int          `json:"count"`
	}{out, len(out)})
}

func (s *Server) apiRecord(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/api/v1/records/")
	d, err := s.svc.Record(id)
	if err != nil {
		fail(w, err)
		return
	}
	rec := d.Record
	type updateJSON struct {
		ID       string `json:"id"`
		Original string `json:"original_name"`
		Updated  string `json:"updated_name"`
		Status   string `json:"status"`
		Review   string `json:"review"`
	}
	type historyJSON struct {
		Field    string `json:"field"`
		OldValue string `json:"old_value"`
		NewValue string `json:"new_value"`
		Reason   string `json:"reason"`
		Actor    string `json:"actor"`
	}
	body := struct {
		recordJSON
		Updates []updateJSON  `json:"updates,omitempty"`
		History []historyJSON `json:"history,omitempty"`
	}{
		recordJSON: recordJSON{
			ID: rec.ID, Species: rec.Species, Curated: d.Curated,
			Phylum: rec.Phylum, Class: rec.Class, Order: rec.Order, Family: rec.Family,
			Country: rec.Country, State: rec.State, City: rec.City,
		},
	}
	if !rec.CollectDate.IsZero() {
		body.CollectDate = rec.CollectDate.Format("2006-01-02")
	}
	for _, u := range d.Updates {
		body.Updates = append(body.Updates, updateJSON{
			ID: u.ID, Original: u.OriginalName, Updated: u.UpdatedName, Status: u.Status, Review: u.Review,
		})
	}
	for _, h := range d.History {
		body.History = append(body.History, historyJSON{
			Field: h.Field, OldValue: h.OldValue, NewValue: h.NewValue, Reason: h.Reason, Actor: h.Actor,
		})
	}
	writeJSON(w, body)
}

// ---- archive ----

type replicaJSON struct {
	Volume string `json:"volume"`
	State  string `json:"state"`
	Detail string `json:"detail,omitempty"`
}

func (s *Server) apiArchive(w http.ResponseWriter, r *http.Request) {
	limit, err := parsePageLimit(r.URL.Query().Get("limit"), 100)
	if err != nil {
		badRequest(w, err)
		return
	}
	ov, err := s.svc.ArchiveOverview(limit)
	if err != nil {
		fail(w, err)
		return
	}
	type holdingJSON struct {
		ID          string `json:"id"`
		Label       string `json:"label,omitempty"`
		MediaType   string `json:"media_type,omitempty"`
		Size        int64  `json:"size"`
		Replicas    int    `json:"replicas"`
		Healthy     int    `json:"healthy"`
		Quarantined bool   `json:"quarantined,omitempty"`
	}
	holdings := make([]holdingJSON, 0, len(ov.Objects))
	for _, st := range ov.Objects {
		holdings = append(holdings, holdingJSON{
			ID: st.ID, Label: st.Manifest.Label, MediaType: st.Manifest.MediaType,
			Size: st.Manifest.Size, Replicas: len(st.Replicas), Healthy: st.Healthy(),
			Quarantined: st.Quarantined,
		})
	}
	writeJSON(w, struct {
		Volumes     int           `json:"volumes"`
		Total       int           `json:"total"`
		Holdings    []holdingJSON `json:"holdings"`
		Quarantined []string      `json:"quarantined,omitempty"`
		Truncated   int           `json:"truncated,omitempty"`
	}{ov.Volumes, ov.Total, holdings, ov.Quarantined, ov.Truncated})
}

func (s *Server) apiArchiveObject(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/api/v1/archive/")
	st, err := s.svc.ArchiveObject(id)
	if err != nil {
		fail(w, err)
		return
	}
	replicas := make([]replicaJSON, 0, len(st.Replicas))
	for _, rep := range st.Replicas {
		replicas = append(replicas, replicaJSON{Volume: rep.Volume, State: string(rep.State), Detail: rep.Detail})
	}
	// The manifest is content-addressed — immutable by construction — and
	// replica states only change when fixity changes, which a content-hash
	// ETag captures exactly.
	writeCacheableJSON(w, r, struct {
		Manifest    any           `json:"manifest"`
		Quarantined bool          `json:"quarantined"`
		Replicas    []replicaJSON `json:"replicas"`
	}{st.Manifest, st.Quarantined, replicas})
}

// ---- quality + metrics ----

func (s *Server) apiQuality(w http.ResponseWriter, r *http.Request) {
	outcome := s.svc.LastOutcome()
	if outcome == nil || outcome.Assessment == nil {
		writeAPIError(w, http.StatusNotFound, "not_found", "no assessment yet: run detection first")
		return
	}
	a := outcome.Assessment
	type resultJSON struct {
		Metric    string  `json:"metric"`
		Dimension string  `json:"dimension"`
		Score     float64 `json:"score"`
		Detail    string  `json:"detail,omitempty"`
		Error     string  `json:"error,omitempty"`
	}
	results := make([]resultJSON, 0, len(a.Results))
	for _, res := range a.Results {
		results = append(results, resultJSON{
			Metric: res.Metric, Dimension: res.Dimension,
			Score: res.Score.Value, Detail: res.Score.Detail, Error: res.Err,
		})
	}
	writeJSON(w, struct {
		Goal       string             `json:"goal"`
		Subject    string             `json:"subject"`
		At         time.Time          `json:"at"`
		Utility    float64            `json:"utility"`
		Accepted   bool               `json:"accepted"`
		Dimensions map[string]float64 `json:"dimensions"`
		Results    []resultJSON       `json:"results"`
		RunID      string             `json:"run_id"`
	}{a.Goal, a.Subject, a.At, a.Utility, a.Accepted, a.Dimensions, results, outcome.RunID})
}

func (s *Server) apiMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.svc.Metrics(timeNow()))
}
