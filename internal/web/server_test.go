package web

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/envsource"
	"repro/internal/fnjv"
	"repro/internal/geo"
	"repro/internal/linkeddata"
	"repro/internal/opm"
	"repro/internal/provenance"
	"repro/internal/storage"
	"repro/internal/taxonomy"
)

func testServer(t *testing.T) (*httptest.Server, *System, *taxonomy.Generated) {
	t.Helper()
	sys, err := core.Open(t.TempDir(), core.Options{Sync: storage.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })
	taxa, err := taxonomy.Generate(taxonomy.GeneratorSpec{
		Species: 100, OutdatedFraction: 0.07, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	col, err := fnjv.Generate(fnjv.CollectionSpec{
		Records: 400, Seed: 4, SyntaxErrorRate: 1e-12,
	}, taxa, geo.SyntheticGazetteer(10, 4), envsource.NewSimulator())
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Records.PutAll(col.Records); err != nil {
		t.Fatal(err)
	}
	wsys := &System{Core: sys, Resolver: taxa.Checklist, Checklist: taxa.Checklist}
	srv := httptest.NewServer(NewServer(wsys))
	t.Cleanup(srv.Close)
	return srv, wsys, taxa
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestDashboard(t *testing.T) {
	srv, _, _ := testServer(t)
	code, body := get(t, srv.URL+"/")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	for _, want := range []string{"Collection dashboard", "400", "distinct species names"} {
		if !strings.Contains(body, want) {
			t.Errorf("dashboard missing %q", want)
		}
	}
	if code, _ := get(t, srv.URL+"/nope"); code != http.StatusNotFound {
		t.Fatalf("unknown path: %d", code)
	}
	if code, body := get(t, srv.URL+"/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("healthz: %d %q", code, body)
	}
}

func seedProvRuns(t *testing.T, sys *core.System, ids ...string) {
	t.Helper()
	started := time.Date(2013, 11, 12, 19, 58, 9, 0, time.UTC)
	for _, id := range ids {
		g := opm.NewGraph()
		if err := g.Agent("ag:x", "x"); err != nil {
			t.Fatal(err)
		}
		if err := g.Process("p:"+id+"/step", "step"); err != nil {
			t.Fatal(err)
		}
		if err := g.Artifact("a:in", "input", "v"); err != nil {
			t.Fatal(err)
		}
		for _, e := range []opm.Edge{
			{Kind: opm.Used, Effect: "p:" + id + "/step", Cause: "a:in", Role: "in", Account: id},
			{Kind: opm.WasControlledBy, Effect: "p:" + id + "/step", Cause: "ag:x", Role: "executor", Account: id},
		} {
			if err := g.AddEdge(e); err != nil {
				t.Fatal(err)
			}
		}
		info := provenance.RunInfo{RunID: id, WorkflowID: "wf", WorkflowName: "W",
			StartedAt: started, FinishedAt: started.Add(time.Second), Status: provenance.RunCompleted}
		if err := sys.Provenance.Store(info, g); err != nil {
			t.Fatal(err)
		}
	}
}

func TestDashboardRunPagination(t *testing.T) {
	srv, wsys, _ := testServer(t)
	seedProvRuns(t, wsys.Core, "run-a", "run-b", "run-c")
	code, body := get(t, srv.URL+"/?limit=2")
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	for _, want := range []string{"/provenance/run-a", "/provenance/run-b", `/?after=run-b&limit=2`} {
		if !strings.Contains(body, want) {
			t.Errorf("page 1 missing %q", want)
		}
	}
	if strings.Contains(body, "/provenance/run-c") {
		t.Error("page 1 leaked run-c")
	}
	code, body = get(t, srv.URL+"/?after=run-b&limit=2")
	if code != 200 || !strings.Contains(body, "/provenance/run-c") {
		t.Fatalf("page 2: %d", code)
	}
	if strings.Contains(body, "next page") {
		t.Error("last page offers a next page")
	}
}

func TestProvenanceEdgesPage(t *testing.T) {
	srv, wsys, _ := testServer(t)
	seedProvRuns(t, wsys.Core, "run-a")
	code, body := get(t, srv.URL+"/provenance/run-a/edges?limit=1")
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	if !strings.Contains(body, "p:run-a/step") || !strings.Contains(body, "a:in") {
		t.Errorf("edge row missing: %s", body)
	}
	if !strings.Contains(body, "/provenance/run-a/edges?after=0&limit=1") {
		t.Error("next-page link missing")
	}
	code, body = get(t, srv.URL+"/provenance/run-a/edges?after=0&limit=1")
	if code != 200 || !strings.Contains(body, "ag:x") {
		t.Fatalf("page 2: %d", code)
	}
	if strings.Contains(body, "next page") {
		t.Error("exhausted cursor offers a next page")
	}
	if code, _ := get(t, srv.URL+"/provenance/run-nope/edges"); code != http.StatusNotFound {
		t.Fatalf("edges of unknown run: %d", code)
	}
	if code, _ := get(t, srv.URL+"/provenance/run-a/edges?after=zzz"); code != http.StatusBadRequest {
		t.Fatalf("bad cursor: %d", code)
	}
}

func TestDetectPage(t *testing.T) {
	srv, _, _ := testServer(t)
	// Before any run.
	code, body := get(t, srv.URL+"/detect")
	if code != 200 || !strings.Contains(body, "No run yet") {
		t.Fatalf("pre-run page: %d", code)
	}
	// Trigger a run (the Fig. 2 page).
	code, body = get(t, srv.URL+"/detect?run=1")
	if code != 200 {
		t.Fatalf("run status %d", code)
	}
	for _, want := range []string{
		"distinct species names in the database",
		"records processed",
		"detected as outdated",
		"updated species names",
		"flagged for biologists",
		"<td class=num>400</td>", // records processed
		"<td class=num>100</td>", // distinct names
	} {
		if !strings.Contains(body, want) {
			t.Errorf("detect page missing %q", want)
		}
	}
	// The quality page now renders the §IV.C report.
	code, body = get(t, srv.URL+"/quality")
	if code != 200 || !strings.Contains(body, "utility index") || !strings.Contains(body, "accuracy") {
		t.Fatalf("quality page: %d", code)
	}
	// Dashboard lists the run with a provenance link.
	_, dash := get(t, srv.URL+"/")
	if !strings.Contains(dash, "/provenance/run-") {
		t.Fatal("dashboard missing provenance link")
	}
}

func TestRecordsSearchAndDetail(t *testing.T) {
	srv, wsys, _ := testServer(t)
	// Pick a real species.
	var species, id string
	wsys.Core.Records.Scan(func(r *fnjv.Record) bool {
		species, id = r.Species, r.ID
		return false
	})
	code, body := get(t, srv.URL+"/records?species="+strings.ReplaceAll(species, " ", "+"))
	if code != 200 || !strings.Contains(body, id) {
		t.Fatalf("search: %d, missing %s", code, id)
	}
	// Empty search form renders without results.
	code, body = get(t, srv.URL+"/records")
	if code != 200 || strings.Contains(body, "results") {
		t.Fatalf("empty search: %d", code)
	}
	// Record detail.
	code, body = get(t, srv.URL+"/record/"+id)
	if code != 200 || !strings.Contains(body, species) || !strings.Contains(body, "curated (current) name") {
		t.Fatalf("record page: %d", code)
	}
	if code, _ := get(t, srv.URL+"/record/FNJV-99999"); code != http.StatusNotFound {
		t.Fatalf("missing record: %d", code)
	}
}

func TestRecordPageShowsUpdates(t *testing.T) {
	srv, wsys, taxa := testServer(t)
	// Run detection so updates exist.
	if code, _ := get(t, srv.URL+"/detect?run=1"); code != 200 {
		t.Fatal("run failed")
	}
	// Find a record with an outdated name.
	var target string
	wsys.Core.Records.Scan(func(r *fnjv.Record) bool {
		if taxa.OutdatedNames[r.Species] {
			target = r.ID
			return false
		}
		return true
	})
	if target == "" {
		t.Skip("no outdated record in sample")
	}
	code, body := get(t, srv.URL+"/record/"+target)
	if code != 200 || !strings.Contains(body, "name updates (original record unchanged)") {
		t.Fatalf("record with updates: %d", code)
	}
	if !strings.Contains(body, "pending") {
		t.Fatal("update review state missing")
	}
}

func TestReviewQueueUI(t *testing.T) {
	srv, wsys, _ := testServer(t)
	// Empty queue.
	code, body := get(t, srv.URL+"/review")
	if code != 200 || !strings.Contains(body, "0 updates pending") {
		t.Fatalf("empty queue: %d", code)
	}
	// After detection there are pending updates.
	get(t, srv.URL+"/detect?run=1")
	code, body = get(t, srv.URL+"/review")
	if code != 200 || strings.Contains(body, "0 updates pending") {
		t.Fatalf("queue after run: %d", code)
	}
	if !strings.Contains(body, "approve") || !strings.Contains(body, "reject") {
		t.Fatal("review controls missing")
	}
	pending, err := wsys.Core.Ledger.Pending()
	if err != nil || len(pending) == 0 {
		t.Fatalf("pending: %v %d", err, len(pending))
	}
	// Approve one via the form endpoint.
	resp, err := http.PostForm(srv.URL+"/review/act",
		map[string][]string{"id": {pending[0].ID}, "verdict": {"approved"}})
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK { // after redirect to /review
		t.Fatalf("approve status %d", resp.StatusCode)
	}
	u, err := wsys.Core.Ledger.Update(pending[0].ID)
	if err != nil || u.Review != "approved" {
		t.Fatalf("verdict not recorded: %+v %v", u, err)
	}
	// Approved rename entered the history.
	hist, err := wsys.Core.Ledger.History(pending[0].RecordID)
	if err != nil || len(hist) == 0 {
		t.Fatalf("history: %v %d", err, len(hist))
	}
	// Reject another.
	resp, err = http.PostForm(srv.URL+"/review/act",
		map[string][]string{"id": {pending[1].ID}, "verdict": {"rejected"}})
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	u, _ = wsys.Core.Ledger.Update(pending[1].ID)
	if u.Review != "rejected" {
		t.Fatalf("reject not recorded: %+v", u)
	}
	// Bad requests.
	if code, _ := get(t, srv.URL+"/review/act"); code != http.StatusMethodNotAllowed {
		t.Fatalf("GET act: %d", code)
	}
	resp, _ = http.PostForm(srv.URL+"/review/act", map[string][]string{"id": {"UPD-999999"}, "verdict": {"approved"}})
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing update act: %d", resp.StatusCode)
	}
	resp, _ = http.PostForm(srv.URL+"/review/act", map[string][]string{"id": {pending[0].ID}, "verdict": {"approved"}})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest { // already resolved
		t.Fatalf("double act: %d", resp.StatusCode)
	}
}

func TestProvenanceExport(t *testing.T) {
	srv, wsys, _ := testServer(t)
	get(t, srv.URL+"/detect?run=1")
	runs := wsys.Core.Provenance.AllRuns()
	if len(runs) == 0 {
		t.Fatal("no runs")
	}
	code, body := get(t, srv.URL+"/provenance/"+runs[0].RunID)
	if code != 200 || !strings.Contains(body, "<opmGraph>") || !strings.Contains(body, "Catalog_of_life") {
		t.Fatalf("provenance export: %d", code)
	}
	if code, _ := get(t, srv.URL+"/provenance/run-999999"); code != http.StatusNotFound {
		t.Fatalf("missing run export: %d", code)
	}
}

func TestCollectionHealthPage(t *testing.T) {
	srv, _, _ := testServer(t)
	code, body := get(t, srv.URL+"/health")
	if code != 200 {
		t.Fatalf("health page: %d", code)
	}
	for _, want := range []string{"Collection health", "georeferenced", "completeness", "consistency", "utility index"} {
		if !strings.Contains(body, want) {
			t.Errorf("health page missing %q", want)
		}
	}
}

func TestNTriplesExport(t *testing.T) {
	srv, _, _ := testServer(t)
	code, body := get(t, srv.URL+"/export/ntriples")
	if code != 200 {
		t.Fatalf("export: %d", code)
	}
	// Parses back and contains one recording per record.
	store, err := linkeddata.ReadNTriples(strings.NewReader(body))
	if err != nil {
		t.Fatalf("export not parseable: %v", err)
	}
	recs := store.Subjects(linkeddata.RDFType, linkeddata.IRI(linkeddata.TypeRecording))
	if len(recs) != 400 {
		t.Fatalf("exported %d recordings, want 400", len(recs))
	}
}
