package web

import (
	"context"
	"encoding/json"
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/archive"
	"repro/internal/core"
	"repro/internal/fnjv"
)

// withArchive attaches an archival store at LevelSimplifiedFormat to a test
// server's System and archives the first n records, returning their
// manifests.
func withArchive(t *testing.T, wsys *System, n int) []archive.Manifest {
	t.Helper()
	root := t.TempDir()
	vols := make([]string, 3)
	for i := range vols {
		vols[i] = filepath.Join(root, fmt.Sprintf("vol%d", i))
	}
	store, err := archive.OpenStore(vols)
	if err != nil {
		t.Fatal(err)
	}
	pm, err := wsys.Core.NewPreservationManager(store, core.LevelSimplifiedFormat)
	if err != nil {
		t.Fatal(err)
	}
	wsys.Preservation = pm
	var out []archive.Manifest
	var scanErr error
	err = wsys.Core.Records.Scan(func(rec *fnjv.Record) bool {
		if n == 0 {
			return false
		}
		n--
		ms, err := pm.Archive(rec, "")
		if err != nil {
			scanErr = err
			return false
		}
		out = append(out, ms...)
		return true
	})
	if err == nil {
		err = scanErr
	}
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestArchivePageListsObjectsAndFixity(t *testing.T) {
	srv, wsys, _ := testServer(t)
	manifests := withArchive(t, wsys, 5)

	code, body := get(t, srv.URL+"/archive")
	if code != 200 {
		t.Fatalf("GET /archive = %d", code)
	}
	if !strings.Contains(body, "archived objects across 3 replica volumes") {
		t.Fatalf("archive page missing summary:\n%s", body)
	}
	for _, m := range manifests {
		if !strings.Contains(body, m.ID[:12]) {
			t.Fatalf("archive page missing object %s", m.ID)
		}
	}
	if strings.Contains(body, "quarantined") {
		t.Fatal("healthy store shows a quarantine section")
	}

	// Damage one replica: the page shows the degraded fixity, the scrub
	// trigger repairs it.
	id := manifests[0].ID
	if err := archive.CorruptReplica(wsys.Preservation.Store.Volumes()[0], id, 40); err != nil {
		t.Fatal(err)
	}
	// Stat on the listing re-hashes, so damage shows before any scrub.
	_, body = get(t, srv.URL+"/archive")
	if !strings.Contains(body, "2/3 healthy") {
		t.Fatalf("damaged object not flagged:\n%s", body)
	}
	_, body = get(t, srv.URL+"/archive?scrub=1")
	if !strings.Contains(body, "<b>1 repaired</b>") {
		t.Fatalf("scrub trigger did not report the repair:\n%s", body)
	}
	if strings.Contains(body, "2/3 healthy") {
		t.Fatal("object still flagged after repair")
	}
}

func TestArchiveObjectPageShowsReplicas(t *testing.T) {
	srv, wsys, _ := testServer(t)
	manifests := withArchive(t, wsys, 2)
	m := manifests[0]

	code, body := get(t, srv.URL+"/archive/"+m.ID)
	if code != 200 {
		t.Fatalf("GET /archive/%s = %d", m.ID, code)
	}
	for _, want := range []string{m.SHA256, m.SourceID, "vol0", "vol1", "vol2"} {
		if !strings.Contains(body, want) {
			t.Fatalf("object page missing %q:\n%s", want, body)
		}
	}
	if got := strings.Count(body, ">healthy<"); got != 3 {
		t.Fatalf("healthy replica rows = %d, want 3", got)
	}

	if err := archive.DeleteReplica(wsys.Preservation.Store.Volumes()[2], m.ID); err != nil {
		t.Fatal(err)
	}
	_, body = get(t, srv.URL+"/archive/"+m.ID)
	if !strings.Contains(body, ">missing<") {
		t.Fatalf("deleted replica not shown missing:\n%s", body)
	}

	code, _ = get(t, srv.URL+"/archive/no-such-object")
	if code != 404 {
		t.Fatalf("GET unknown object = %d, want 404", code)
	}
}

func TestArchivePageSurfacesQuarantine(t *testing.T) {
	srv, wsys, _ := testServer(t)
	manifests := withArchive(t, wsys, 3)
	id := manifests[0].ID
	for _, vol := range wsys.Preservation.Store.Volumes() {
		if err := archive.CorruptReplica(vol, id, 10); err != nil {
			t.Fatal(err)
		}
	}
	_, body := get(t, srv.URL+"/archive?scrub=1")
	if !strings.Contains(body, "1 unrecoverable") {
		t.Fatalf("scrub did not report the unrecoverable object:\n%s", body)
	}
	if !strings.Contains(body, "quarantined (unrecoverable)") || !strings.Contains(body, id) {
		t.Fatalf("quarantined object not surfaced at /archive:\n%s", body)
	}
}

func TestArchivePagesWithoutStore(t *testing.T) {
	srv, _, _ := testServer(t)
	code, body := get(t, srv.URL+"/archive")
	if code != 200 || !strings.Contains(body, "No archival store configured") {
		t.Fatalf("GET /archive without store = %d:\n%s", code, body)
	}
	code, _ = get(t, srv.URL+"/archive/abc")
	if code != 404 {
		t.Fatalf("GET /archive/abc without store = %d, want 404", code)
	}
}

type metricsObs struct {
	ID           string             `json:"id"`
	Entity       string             `json:"entity"`
	Protocol     string             `json:"protocol"`
	Measurements map[string]float64 `json:"measurements"`
}

func TestMetricsEndpoint(t *testing.T) {
	srv, wsys, _ := testServer(t)
	withArchive(t, wsys, 4)
	if _, err := wsys.Preservation.VerifyArchive(context.Background()); err != nil {
		t.Fatal(err)
	}
	// /detect?run=1 records the outcome whose writer metrics the
	// provenance-writer row snapshots.
	if code, _ := get(t, srv.URL+"/detect?run=1"); code != 200 {
		t.Fatal("GET /detect?run=1 failed")
	}

	code, body := get(t, srv.URL+"/metrics")
	if code != 200 {
		t.Fatalf("GET /metrics = %d", code)
	}
	var out []metricsObs
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatalf("metrics is not JSON: %v\n%s", err, body)
	}
	got := map[string]metricsObs{}
	for _, o := range out {
		got[strings.TrimPrefix(o.Entity, "subsystem:")] = o
	}
	for _, want := range []string{"engine", "provenance-writer", "archive-scrubber"} {
		if _, ok := got[want]; !ok {
			t.Fatalf("metrics missing subsystem %q; have %v", want, body)
		}
	}
	if got["engine"].Measurements["engine.invocations"] < 1 {
		t.Fatalf("engine counters empty: %+v", got["engine"])
	}
	if got["archive-scrubber"].Measurements["archive.scrub.passes"] != 1 {
		t.Fatalf("scrubber counters: %+v", got["archive-scrubber"])
	}
	if got["archive-scrubber"].Measurements["archive.scrub.objects"] < 4 {
		t.Fatalf("scrubber scanned too few objects: %+v", got["archive-scrubber"])
	}
	if got["provenance-writer"].Measurements["provenance.writer.flushed"] < 1 {
		t.Fatalf("provenance-writer counters: %+v", got["provenance-writer"])
	}
	if got["engine"].Protocol == "" || got["engine"].ID == "" {
		t.Fatalf("observation shape: %+v", got["engine"])
	}
}
