package web

import (
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"

	"repro/internal/shard"
)

// quotaServer is testServer with a tight per-tenant quota attached.
func quotaServer(t *testing.T, rate, burst float64) (*httptest.Server, *System) {
	t.Helper()
	srv, wsys, _ := testServer(t)
	wsys.Quotas = shard.NewQuotas(shard.QuotaOptions{Rate: rate, Burst: burst})
	return srv, wsys
}

// TestAPITenantQuota is the per-tenant quota contract: a tenant that drains
// its bucket gets 429 with the standard error envelope, rate-limit headers
// and a Retry-After — while other tenants (and the default tenant) keep
// being served untouched.
func TestAPITenantQuota(t *testing.T) {
	srv, _ := quotaServer(t, 0.001, 3) // refill ~never within the test
	hdr := map[string]string{TenantHeader: "acme"}

	for i := 0; i < 3; i++ {
		resp := getResp(t, srv.URL+"/api/v1/runs", hdr)
		if resp.StatusCode != 200 {
			t.Fatalf("request %d within burst: status %d", i, resp.StatusCode)
		}
		wantRemaining := strconv.Itoa(3 - 1 - i)
		if got := resp.Header.Get("X-RateLimit-Remaining"); got != wantRemaining {
			t.Fatalf("request %d: X-RateLimit-Remaining %q, want %q", i, got, wantRemaining)
		}
		resp.Body.Close()
	}

	resp := getResp(t, srv.URL+"/api/v1/runs", hdr)
	if got := resp.Header.Get("X-RateLimit-Limit"); got != "3" {
		t.Fatalf("X-RateLimit-Limit %q, want 3", got)
	}
	if got := resp.Header.Get("Retry-After"); got == "" {
		t.Fatal("429 without Retry-After")
	} else if secs, err := strconv.Atoi(got); err != nil || secs < 1 {
		t.Fatalf("Retry-After %q not a positive integer", got)
	}
	wantEnvelope(t, resp, http.StatusTooManyRequests, "rate_limited")

	// The throttled tenant does not poison anyone else.
	other := getResp(t, srv.URL+"/api/v1/runs", map[string]string{TenantHeader: "umbrella"})
	if other.StatusCode != 200 {
		t.Fatalf("other tenant throttled: status %d", other.StatusCode)
	}
	other.Body.Close()
	def := getResp(t, srv.URL+"/api/v1/runs", nil)
	if def.StatusCode != 200 {
		t.Fatalf("default tenant throttled: status %d", def.StatusCode)
	}
	def.Body.Close()
}

// TestAPITenantValidation rejects ill-formed tenant names with 400 and the
// envelope, before any quota is charged.
func TestAPITenantValidation(t *testing.T) {
	srv, wsys := quotaServer(t, 50, 100)
	resp := getResp(t, srv.URL+"/api/v1/runs", map[string]string{TenantHeader: "Not A Tenant!"})
	wantEnvelope(t, resp, http.StatusBadRequest, "bad_request")
	if got := wsys.Quotas.Counters()["tenant.Not A Tenant!.requests"]; got != 0 {
		t.Fatalf("invalid tenant charged a bucket: %v", got)
	}
}

// TestAPINoQuotasConfigured pins that a server without a quota table serves
// tenant-tagged requests unthrottled (the pre-sharding default).
func TestAPINoQuotasConfigured(t *testing.T) {
	srv, _, _ := testServer(t)
	resp := getResp(t, srv.URL+"/api/v1/runs", map[string]string{TenantHeader: "acme"})
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-RateLimit-Limit"); got != "" {
		t.Fatalf("rate headers emitted without quotas: %q", got)
	}
	resp.Body.Close()
}
