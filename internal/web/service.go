package web

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/archive"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/curation"
	"repro/internal/fnjv"
	"repro/internal/obs"
	"repro/internal/opm"
	"repro/internal/provenance"
	"repro/internal/telemetry"
	"repro/internal/workflow"
)

// errNotFound marks a lookup miss; HTML handlers map it to http.NotFound and
// the JSON API to a not_found envelope.
var errNotFound = errors.New("web: not found")

// Service is the read/command layer both front ends consume: the HTML pages
// and the /api/v1 JSON handlers are thin renderers over these methods, so
// the two can never drift apart on what a "run", "trace" or "holding" is.
type Service struct {
	sys *System
}

// NewService wraps the shared system state.
func NewService(sys *System) *Service { return &Service{sys: sys} }

// Detect executes the detection workflow and caches the outcome for the
// quality and detect views. The supplied context carries any request-minted
// tracer, so API-triggered runs trace from the HTTP boundary down.
func (v *Service) Detect(ctx context.Context) (*core.DetectionOutcome, error) {
	outcome, err := v.sys.Core.RunDetection(ctx, v.sys.Resolver, core.RunOptions{Tenant: TenantFrom(ctx)})
	if err != nil {
		return nil, err
	}
	v.sys.mu.Lock()
	v.sys.lastOutcome = outcome
	v.sys.mu.Unlock()
	return outcome, nil
}

// LastOutcome returns the most recent detection outcome, nil before any run.
func (v *Service) LastOutcome() *core.DetectionOutcome {
	v.sys.mu.Lock()
	defer v.sys.mu.Unlock()
	return v.sys.lastOutcome
}

// Workers returns the live worker-pool view: per-worker liveness (sorted by
// worker ID) plus the pool's counters and dispatch-queue gauges.
func (v *Service) Workers() ([]workflow.WorkerInfo, map[string]float64) {
	reg := v.sys.Core.Workers
	return reg.Snapshot(), reg.Counters()
}

// Leases reports the run-ownership leases of the cluster lease store, sorted
// by resource — who orchestrates which run, at which fencing token. Empty on
// systems without a lease store.
func (v *Service) Leases() []cluster.Lease {
	if v.sys.Core.Leases == nil {
		return nil
	}
	leases := v.sys.Core.Leases.List()
	sort.Slice(leases, func(i, j int) bool { return leases[i].Resource < leases[j].Resource })
	return leases
}

// Orchestrators lists the scheduler pool's membership rows — every
// orchestrator that ever heartbeated, live or aged out — sorted by name.
func (v *Service) Orchestrators(now time.Time) []cluster.Member {
	if v.sys.Core.Leases == nil {
		return nil
	}
	return v.sys.Core.Leases.Members(now)
}

// RunLeases lists the run-ownership leases (membership rows excluded),
// sorted by resource.
func (v *Service) RunLeases() []cluster.Lease {
	if v.sys.Core.Leases == nil {
		return nil
	}
	return v.sys.Core.Leases.RunLeases()
}

// RunOwner resolves one run's ownership lease. errNotFound when the run was
// never claimed by any orchestrator.
func (v *Service) RunOwner(runID string) (cluster.Lease, error) {
	if v.sys.Core.Leases == nil {
		return cluster.Lease{}, fmt.Errorf("%w: no lease store configured", errNotFound)
	}
	l, ok := v.sys.Core.Leases.Get(runID)
	if !ok {
		return cluster.Lease{}, fmt.Errorf("%w: run %q has no ownership lease", errNotFound, runID)
	}
	return l, nil
}

// AdmissionStats is the admission queue's live view: depth plus the queued
// runs in FIFO order.
type AdmissionStats struct {
	Depth   int
	Pending []workflow.Admission
}

// Admissions snapshots the durable admission queue. errNotFound on systems
// opened without one.
func (v *Service) Admissions() (AdmissionStats, error) {
	q := v.sys.Core.Admissions
	if q == nil {
		return AdmissionStats{}, fmt.Errorf("%w: no admission queue configured", errNotFound)
	}
	pending, err := q.Pending()
	if err != nil {
		return AdmissionStats{}, err
	}
	return AdmissionStats{Depth: len(pending), Pending: pending}, nil
}

// AsyncDetect reports whether admitted runs will actually execute: a
// scheduler member is running in this process and the admission queue
// exists. Without it POST /api/v1/detect stays synchronous — admitting a run
// nobody drains would accept work into a black hole.
func (v *Service) AsyncDetect() bool {
	return v.sys.Scheduler != nil && v.sys.Core.Admissions != nil
}

// Admit records the intent to run detection for the context's tenant and
// returns the pre-minted run identity without executing anything.
func (v *Service) Admit(ctx context.Context) (workflow.Admission, error) {
	return v.sys.Core.AdmitDetection(core.RunOptions{Tenant: TenantFrom(ctx)})
}

// API reads run against immutable point-in-time snapshots
// (provenance.Repository.View / telemetry.SpanStore.View): dashboard scans
// never hold the storage read lock against a live run's provenance flushes,
// and multi-part responses (info + graph) are internally consistent because
// they come from one snapshot.

// RunsPage pages provenance runs through the repository cursor.
func (v *Service) RunsPage(after string, limit int) ([]provenance.RunInfo, string, error) {
	return v.sys.Core.Provenance.Snapshot().RunsPage(after, limit)
}

// Run loads one run's info; errNotFound when the ID is unknown.
func (v *Service) Run(runID string) (provenance.RunInfo, error) {
	return runInfoFrom(v.sys.Core.Provenance.Snapshot(), runID)
}

func runInfoFrom(repo provenance.Repo, runID string) (provenance.RunInfo, error) {
	info, err := repo.Run(runID)
	if err != nil {
		return provenance.RunInfo{}, fmt.Errorf("%w: run %q", errNotFound, runID)
	}
	return info, nil
}

// RunFinished reports whether the run can no longer change: completed,
// failed, or abandoned runs have immutable provenance and traces, which is
// what makes their API representations ETag-cacheable.
func RunFinished(info provenance.RunInfo) bool {
	return info.Status != provenance.RunRunning
}

// RunGraphXML serializes the run's OPM graph, returning the run info so the
// caller can decide cacheability.
func (v *Service) RunGraphXML(runID string) ([]byte, provenance.RunInfo, error) {
	repo := v.sys.Core.Provenance.Snapshot() // one snapshot: info and graph agree
	info, err := runInfoFrom(repo, runID)
	if err != nil {
		return nil, info, err
	}
	g, err := repo.Graph(runID)
	if err != nil {
		return nil, info, fmt.Errorf("%w: graph of run %q", errNotFound, runID)
	}
	blob, err := opm.MarshalXML(g)
	return blob, info, err
}

// RunNodesPage pages the run's provenance nodes.
func (v *Service) RunNodesPage(runID, after string, limit int) ([]*opm.Node, string, error) {
	repo := v.sys.Core.Provenance.Snapshot()
	if _, err := runInfoFrom(repo, runID); err != nil {
		return nil, "", err
	}
	return repo.NodesPage(runID, after, limit)
}

// RunEdgesPage pages the run's dependency edges.
func (v *Service) RunEdgesPage(runID string, after, limit int) ([]opm.Edge, int, error) {
	repo := v.sys.Core.Provenance.Snapshot()
	if _, err := runInfoFrom(repo, runID); err != nil {
		return nil, -1, err
	}
	return repo.EdgesPage(runID, after, limit)
}

// Trace is a run's persisted span tree plus the facts the API reports about
// it: how many spans, and whether they form one connected tree.
type Trace struct {
	Info     provenance.RunInfo
	Spans    []telemetry.Span
	Roots    []*telemetry.TraceNode
	Complete bool
}

// RunTrace loads the run's full persisted trace. errNotFound covers both an
// unknown run and a run that recorded no spans (untraced or crashed).
func (v *Service) RunTrace(runID string) (*Trace, error) {
	info, err := v.Run(runID)
	if err != nil {
		return nil, err
	}
	spans, err := v.sys.Core.Traces.Snapshot().Spans(runID)
	if errors.Is(err, telemetry.ErrTraceNotFound) {
		return nil, fmt.Errorf("%w: no trace recorded for run %q", errNotFound, runID)
	}
	if err != nil {
		return nil, err
	}
	roots, _ := telemetry.BuildTree(spans)
	return &Trace{
		Info:     info,
		Spans:    spans,
		Roots:    roots,
		Complete: telemetry.TreeComplete(spans) == nil,
	}, nil
}

// RunSpansPage pages the run's flat span list by sequence cursor.
func (v *Service) RunSpansPage(runID string, after, limit int) ([]telemetry.Span, int, error) {
	if _, err := v.Run(runID); err != nil {
		return nil, -1, err
	}
	spans, next, err := v.sys.Core.Traces.Snapshot().SpansPage(runID, after, limit)
	if err != nil {
		return nil, -1, err
	}
	if after < 0 && len(spans) == 0 {
		return nil, -1, fmt.Errorf("%w: no trace recorded for run %q", errNotFound, runID)
	}
	return spans, next, nil
}

// SearchRecords queries the collection by the dashboard's filter fields.
// Empty filters match everything (the limit still applies).
func (v *Service) SearchRecords(species, state, taxon string, limit int) ([]*fnjv.Record, error) {
	var preds []fnjv.Predicate
	if species != "" {
		preds = append(preds, fnjv.BySpeciesName(species))
	}
	if state != "" {
		preds = append(preds, fnjv.ByState(state))
	}
	if taxon != "" {
		preds = append(preds, fnjv.ByTaxon(taxon))
	}
	return v.sys.Core.Records.Query(fnjv.And(preds...), fnjv.QueryOptions{Limit: limit, OrderBy: "species"})
}

// RecordDetail is one record with its curation state.
type RecordDetail struct {
	Record  *fnjv.Record
	Curated string
	Updates []*curation.NameUpdate
	History []curation.HistoryEntry
}

// Record loads one record plus its curated name, pending/resolved updates
// and curation history.
func (v *Service) Record(id string) (*RecordDetail, error) {
	rec, err := v.sys.Core.Records.Get(id)
	if err != nil {
		return nil, fmt.Errorf("%w: record %q", errNotFound, id)
	}
	curated, err := curation.CuratedName(v.sys.Core.Ledger, rec.ID, rec.Species)
	if err != nil {
		return nil, err
	}
	d := &RecordDetail{Record: rec, Curated: curated}
	if ups, err := v.sys.Core.Ledger.UpdatesForRecord(rec.ID); err == nil {
		d.Updates = ups
	}
	if hist, err := v.sys.Core.Ledger.History(rec.ID); err == nil {
		d.History = hist
	}
	return d, nil
}

// ArchiveOverview is the holdings-and-fixity view of the archival store.
type ArchiveOverview struct {
	Volumes     int
	Total       int
	Objects     []archive.ObjectStatus
	Quarantined []string
	// Truncated is how many holdings the limit cut off.
	Truncated int
}

// ArchiveOverview stats up to limit holdings. errNotFound when no archival
// store is configured.
func (v *Service) ArchiveOverview(limit int) (*ArchiveOverview, error) {
	pm := v.sys.Preservation
	if pm == nil {
		return nil, fmt.Errorf("%w: no archival store configured", errNotFound)
	}
	ids, err := pm.Store.List()
	if err != nil {
		return nil, err
	}
	ov := &ArchiveOverview{Volumes: len(pm.Store.Volumes()), Total: len(ids)}
	for _, id := range ids {
		if limit > 0 && len(ov.Objects) == limit {
			ov.Truncated = len(ids) - limit
			break
		}
		ov.Objects = append(ov.Objects, pm.Store.Stat(id))
	}
	if q, err := pm.Store.ListQuarantined(); err == nil {
		ov.Quarantined = q
	}
	return ov, nil
}

// ArchiveObject stats one AIP across all replica volumes. errNotFound when
// no store is configured or no volume holds any trace of the ID.
func (v *Service) ArchiveObject(id string) (archive.ObjectStatus, error) {
	pm := v.sys.Preservation
	if pm == nil {
		return archive.ObjectStatus{}, fmt.Errorf("%w: no archival store configured", errNotFound)
	}
	st := pm.Store.Stat(id)
	if st.Healthy() == 0 && !st.Quarantined {
		found := false
		for _, rep := range st.Replicas {
			if rep.State != archive.ReplicaMissing {
				found = true
			}
		}
		if !found {
			return archive.ObjectStatus{}, fmt.Errorf("%w: package %q", errNotFound, id)
		}
	}
	return st, nil
}

// Scrub runs one fixity audit pass inline.
func (v *Service) Scrub(ctx context.Context) (archive.ScrubReport, error) {
	pm := v.sys.Preservation
	if pm == nil {
		return archive.ScrubReport{}, fmt.Errorf("%w: no archival store configured", errNotFound)
	}
	return pm.VerifyArchive(ctx)
}

// MetricsEntry is one subsystem's runtime counters as an observation — the
// shape both /metrics and /api/v1/metrics serve.
type MetricsEntry struct {
	ID           string             `json:"id"`
	Entity       string             `json:"entity"`
	At           time.Time          `json:"at"`
	Protocol     string             `json:"protocol"`
	Measurements map[string]float64 `json:"measurements"`
}

// Metrics snapshots every instrumented subsystem — workflow engine (with its
// queue-wait/exec latency quantiles), crash recovery, streaming provenance
// writer, archive scrubber, resolution resilience — as observations, sorted
// by subsystem name.
func (v *Service) Metrics(at time.Time) []MetricsEntry {
	subsystems := map[string]map[string]float64{
		// Idle until a detection run replaces it below: each run executes on
		// its own engine and reports that engine's snapshot in the outcome.
		"engine": v.sys.Core.Engine.Metrics().Counters(),
		// Crash-recovery activity: runs resumed, runs abandoned, sweeps.
		"recovery": core.RecoveryCounters(),
		// Worker-pool liveness and dispatch-queue gauges, live across runs.
		"workers": v.sys.Core.Workers.Counters(),
	}
	v.sys.mu.Lock()
	if o := v.sys.lastOutcome; o != nil {
		subsystems["engine"] = o.EngineMetrics.Counters()
		subsystems["provenance-writer"] = o.ProvenanceWriter.Counters()
	}
	v.sys.mu.Unlock()
	if pm := v.sys.Preservation; pm != nil {
		subsystems["archive-scrubber"] = pm.ScrubCounters()
	}
	if c := v.sys.Core.Cluster; c != nil {
		subsystems["shard-router"] = c.Counters()
	}
	if ls := v.sys.Core.Leases; ls != nil {
		// Run-ownership gauges: total/live leases and the highest fencing
		// token handed out (the cluster's ownership epoch high-water mark).
		leases := ls.List()
		live, maxToken := 0, int64(0)
		for _, l := range leases {
			if l.Live(at) {
				live++
			}
			if l.Token > maxToken {
				maxToken = l.Token
			}
		}
		subsystems["cluster-leases"] = map[string]float64{
			"leases.total":     float64(len(leases)),
			"leases.live":      float64(live),
			"leases.max_token": float64(maxToken),
		}
	}
	if sch := v.sys.Scheduler; sch != nil {
		// Claim/complete/rescue/interrupted counts of this process's pool
		// member.
		subsystems["cluster-scheduler"] = sch.Counters()
	}
	if aq := v.sys.Core.Admissions; aq != nil {
		subsystems["admission-queue"] = map[string]float64{
			"admissions.depth": float64(aq.Depth()),
		}
	}
	if q := v.sys.Quotas; q != nil {
		// Includes the weighted per-tenant spend (tenant.<name>.spent).
		subsystems["tenant-quotas"] = q.Counters()
	}
	if rr := v.sys.Resilient; rr != nil {
		subsystems["resolution-resilience"] = rr.Counters()
	}
	names := make([]string, 0, len(subsystems))
	for name := range subsystems {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]MetricsEntry, 0, len(names))
	for _, name := range names {
		o := obs.FromRuntimeMetrics(name, at, subsystems[name])
		ms := make(map[string]float64, len(o.Measurements))
		for _, m := range o.Measurements {
			ms[m.Characteristic] = m.Number
		}
		out = append(out, MetricsEntry{
			ID: o.ID, Entity: o.Entity.ID, At: o.At, Protocol: o.Protocol, Measurements: ms,
		})
	}
	return out
}
