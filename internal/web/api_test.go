package web

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/archive"
	"repro/internal/core"
	"repro/internal/fnjv"
	"repro/internal/telemetry"
)

// getResp performs a GET returning the full response (for header checks).
func getResp(t *testing.T, url string, headers map[string]string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// decodeJSON asserts status and Content-Type, then decodes the body into v.
func decodeJSON(t *testing.T, resp *http.Response, wantStatus int, v any) {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("status %d, want %d", resp.StatusCode, wantStatus)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type %q, want application/json", ct)
	}
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("decode: %v", err)
		}
	}
}

// wantEnvelope asserts the uniform error envelope shape and code.
func wantEnvelope(t *testing.T, resp *http.Response, status int, code string) {
	t.Helper()
	var body errorBody
	decodeJSON(t, resp, status, &body)
	if body.Error.Code != code {
		t.Fatalf("error code %q, want %q", body.Error.Code, code)
	}
	if body.Error.Message == "" {
		t.Fatal("error envelope without a message")
	}
}

func TestAPIRunsPagination(t *testing.T) {
	srv, wsys, _ := testServer(t)
	seedProvRuns(t, wsys.Core, "run-a", "run-b", "run-c")

	var page struct {
		Runs []struct {
			RunID  string            `json:"run_id"`
			Status string            `json:"status"`
			Links  map[string]string `json:"links"`
		} `json:"runs"`
		NextCursor string `json:"next_cursor"`
	}
	decodeJSON(t, getResp(t, srv.URL+"/api/v1/runs?limit=2", nil), 200, &page)
	if len(page.Runs) != 2 || page.Runs[0].RunID != "run-a" || page.Runs[1].RunID != "run-b" {
		t.Fatalf("page 1: %+v", page.Runs)
	}
	if page.NextCursor != "run-b" {
		t.Fatalf("next_cursor %q, want run-b", page.NextCursor)
	}
	if page.Runs[0].Links["trace"] != "/api/v1/runs/run-a/trace" {
		t.Fatalf("trace link: %q", page.Runs[0].Links["trace"])
	}
	page.Runs, page.NextCursor = nil, ""
	decodeJSON(t, getResp(t, srv.URL+"/api/v1/runs?limit=2&after=run-b", nil), 200, &page)
	if len(page.Runs) != 1 || page.Runs[0].RunID != "run-c" || page.NextCursor != "" {
		t.Fatalf("page 2: %+v next=%q", page.Runs, page.NextCursor)
	}

	// Hardened limit parsing: zero, negative, junk, and oversized limits are
	// 400s with the envelope — never silently clamped.
	for _, bad := range []string{"0", "-1", "zzz", "501", "99999999999999999999"} {
		wantEnvelope(t, getResp(t, srv.URL+"/api/v1/runs?limit="+bad, nil), http.StatusBadRequest, "bad_request")
	}
}

func TestAPIRunDetailAndErrors(t *testing.T) {
	srv, wsys, _ := testServer(t)
	seedProvRuns(t, wsys.Core, "run-a")

	var run struct {
		RunID      string `json:"run_id"`
		Status     string `json:"status"`
		WorkflowID string `json:"workflow_id"`
	}
	decodeJSON(t, getResp(t, srv.URL+"/api/v1/runs/run-a", nil), 200, &run)
	if run.RunID != "run-a" || run.Status != "completed" || run.WorkflowID != "wf" {
		t.Fatalf("run detail: %+v", run)
	}

	wantEnvelope(t, getResp(t, srv.URL+"/api/v1/runs/run-nope", nil), http.StatusNotFound, "not_found")
	wantEnvelope(t, getResp(t, srv.URL+"/api/v1/runs/run-a/bogus", nil), http.StatusNotFound, "not_found")
	wantEnvelope(t, getResp(t, srv.URL+"/api/v1/zzz", nil), http.StatusNotFound, "not_found")
	wantEnvelope(t, getResp(t, srv.URL+"/api/v1/runs/run-a/edges?after=zzz", nil), http.StatusBadRequest, "bad_request")

	// Method gating: writes to read-only resources are 405s.
	resp, err := http.Post(srv.URL+"/api/v1/runs", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	wantEnvelope(t, resp, http.StatusMethodNotAllowed, "method_not_allowed")
	if allow := resp.Header.Get("Allow"); !strings.Contains(allow, "GET") {
		t.Fatalf("Allow header %q", allow)
	}
}

func TestAPIRunGraphETag(t *testing.T) {
	srv, wsys, _ := testServer(t)
	seedProvRuns(t, wsys.Core, "run-a")

	resp := getResp(t, srv.URL+"/api/v1/runs/run-a/graph", nil)
	defer resp.Body.Close()
	if resp.StatusCode != 200 || resp.Header.Get("Content-Type") != "application/xml" {
		t.Fatalf("graph: %d %q", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	etag := resp.Header.Get("ETag")
	if etag == "" || !strings.HasPrefix(etag, `"`) {
		t.Fatalf("finished run's graph has no ETag: %q", etag)
	}
	// Conditional revalidation: the graph of a completed run is immutable.
	resp2 := getResp(t, srv.URL+"/api/v1/runs/run-a/graph", map[string]string{"If-None-Match": etag})
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotModified {
		t.Fatalf("If-None-Match revalidation: %d, want 304", resp2.StatusCode)
	}
	// A non-matching validator still gets the body.
	resp3 := getResp(t, srv.URL+"/api/v1/runs/run-a/graph", map[string]string{"If-None-Match": `"stale"`})
	resp3.Body.Close()
	if resp3.StatusCode != 200 {
		t.Fatalf("stale validator: %d", resp3.StatusCode)
	}
}

func TestAPIEdgesAndNodesPagination(t *testing.T) {
	srv, wsys, _ := testServer(t)
	seedProvRuns(t, wsys.Core, "run-a")

	var edges struct {
		Edges []struct {
			Kind   string `json:"kind"`
			Effect string `json:"effect"`
		} `json:"edges"`
		NextCursor *int `json:"next_cursor"`
	}
	decodeJSON(t, getResp(t, srv.URL+"/api/v1/runs/run-a/edges?limit=1", nil), 200, &edges)
	if len(edges.Edges) != 1 || edges.NextCursor == nil {
		t.Fatalf("edges page 1: %+v", edges)
	}
	after := *edges.NextCursor
	edges.Edges, edges.NextCursor = nil, nil
	decodeJSON(t, getResp(t, fmt.Sprintf("%s/api/v1/runs/run-a/edges?limit=1&after=%d", srv.URL, after), nil), 200, &edges)
	if len(edges.Edges) != 1 || edges.NextCursor != nil {
		t.Fatalf("edges page 2 should be last: %+v", edges)
	}

	var nodes struct {
		Nodes []struct {
			ID   string `json:"id"`
			Kind string `json:"kind"`
		} `json:"nodes"`
		NextCursor string `json:"next_cursor"`
	}
	decodeJSON(t, getResp(t, srv.URL+"/api/v1/runs/run-a/nodes?limit=2", nil), 200, &nodes)
	if len(nodes.Nodes) != 2 || nodes.NextCursor == "" {
		t.Fatalf("nodes page 1: %+v", nodes)
	}
	cursor := nodes.NextCursor
	nodes.Nodes, nodes.NextCursor = nil, ""
	decodeJSON(t, getResp(t, srv.URL+"/api/v1/runs/run-a/nodes?limit=2&after="+cursor, nil), 200, &nodes)
	if len(nodes.Nodes) != 1 || nodes.NextCursor != "" {
		t.Fatalf("nodes page 2: %+v", nodes)
	}
}

// TestAPIDetectAndTrace is the API-boundary trace-propagation contract: a
// run triggered through POST /api/v1/detect is queryable as one complete
// span tree via /api/v1/runs/{id}/trace, and its flat span pages walk the
// same spans.
func TestAPIDetectAndTrace(t *testing.T) {
	srv, wsys, _ := testServer(t)

	resp, err := http.Post(srv.URL+"/api/v1/detect", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var det struct {
		RunID         string            `json:"run_id"`
		DistinctNames int               `json:"distinct_names"`
		Links         map[string]string `json:"links"`
	}
	decodeJSON(t, resp, 200, &det)
	if det.RunID == "" || det.DistinctNames != 100 {
		t.Fatalf("detect: %+v", det)
	}

	var trace struct {
		RunID     string `json:"run_id"`
		Status    string `json:"status"`
		SpanCount int    `json:"span_count"`
		Complete  bool   `json:"complete"`
		Roots     []struct {
			Span struct {
				Name string `json:"name"`
				Kind string `json:"kind"`
			} `json:"span"`
			Children []json.RawMessage `json:"children"`
		} `json:"roots"`
	}
	tresp := getResp(t, srv.URL+det.Links["trace"], nil)
	etag := tresp.Header.Get("ETag")
	decodeJSON(t, tresp, 200, &trace)
	if !trace.Complete {
		t.Fatal("API-triggered run's trace is not a connected tree")
	}
	if len(trace.Roots) != 1 || trace.Roots[0].Span.Name != "run-detection" || trace.Roots[0].Span.Kind != "core" {
		t.Fatalf("trace root: %+v", trace.Roots)
	}
	// A real detection run records at least root + workflow + per-processor
	// + element spans.
	if trace.SpanCount < 4 {
		t.Fatalf("span_count %d too small", trace.SpanCount)
	}
	if len(trace.Roots[0].Children) == 0 {
		t.Fatal("root span has no children")
	}
	// A completed run's trace is immutable — ETag + 304.
	if etag == "" {
		t.Fatal("completed run's trace has no ETag")
	}
	r304 := getResp(t, srv.URL+det.Links["trace"], map[string]string{"If-None-Match": etag})
	r304.Body.Close()
	if r304.StatusCode != http.StatusNotModified {
		t.Fatalf("trace revalidation: %d, want 304", r304.StatusCode)
	}

	// Walk the flat span pages; the union must cover span_count exactly.
	total, after := 0, -1
	for {
		var page struct {
			Spans      []telemetry.Span `json:"spans"`
			NextCursor *int             `json:"next_cursor"`
		}
		url := fmt.Sprintf("%s/api/v1/runs/%s/spans?limit=3", srv.URL, det.RunID)
		if after >= 0 {
			url += fmt.Sprintf("&after=%d", after)
		}
		decodeJSON(t, getResp(t, url, nil), 200, &page)
		total += len(page.Spans)
		for _, sp := range page.Spans {
			if sp.TraceID != det.RunID {
				t.Fatalf("span %s carries trace %q, want %q", sp.SpanID, sp.TraceID, det.RunID)
			}
		}
		if page.NextCursor == nil {
			break
		}
		after = *page.NextCursor
	}
	if total != trace.SpanCount {
		t.Fatalf("span pages yielded %d spans, trace reports %d", total, trace.SpanCount)
	}

	// GET on the action endpoint is rejected.
	wantEnvelope(t, getResp(t, srv.URL+"/api/v1/detect", nil), http.StatusMethodNotAllowed, "method_not_allowed")
	// A seeded run with no trace 404s.
	seedProvRuns(t, wsys.Core, "run-untraced")
	wantEnvelope(t, getResp(t, srv.URL+"/api/v1/runs/run-untraced/trace", nil), http.StatusNotFound, "not_found")
}

func TestAPIRecords(t *testing.T) {
	srv, wsys, _ := testServer(t)
	var species, id string
	wsys.Core.Records.Scan(func(r *fnjv.Record) bool {
		species, id = r.Species, r.ID
		return false
	})

	var list struct {
		Records []recordJSON `json:"records"`
		Count   int          `json:"count"`
	}
	decodeJSON(t, getResp(t, srv.URL+"/api/v1/records?species="+strings.ReplaceAll(species, " ", "+"), nil), 200, &list)
	if list.Count == 0 || list.Count != len(list.Records) {
		t.Fatalf("records list: %+v", list)
	}
	found := false
	for _, rec := range list.Records {
		if rec.ID == id {
			found = true
		}
		if rec.Species != species {
			t.Fatalf("filter leaked species %q", rec.Species)
		}
	}
	if !found {
		t.Fatalf("record %s missing from filtered list", id)
	}

	// Unfiltered listing respects the limit.
	decodeJSON(t, getResp(t, srv.URL+"/api/v1/records?limit=5", nil), 200, &list)
	if list.Count != 5 {
		t.Fatalf("limited list: %d", list.Count)
	}
	wantEnvelope(t, getResp(t, srv.URL+"/api/v1/records?limit=-3", nil), http.StatusBadRequest, "bad_request")

	var detail struct {
		recordJSON
		History []json.RawMessage `json:"history"`
	}
	decodeJSON(t, getResp(t, srv.URL+"/api/v1/records/"+id, nil), 200, &detail)
	if detail.ID != id || detail.Curated == "" {
		t.Fatalf("record detail: %+v", detail.recordJSON)
	}
	wantEnvelope(t, getResp(t, srv.URL+"/api/v1/records/FNJV-99999", nil), http.StatusNotFound, "not_found")
}

func TestAPIQualityAndMetrics(t *testing.T) {
	srv, _, _ := testServer(t)

	// No assessment before the first run.
	wantEnvelope(t, getResp(t, srv.URL+"/api/v1/quality", nil), http.StatusNotFound, "not_found")

	resp, err := http.Post(srv.URL+"/api/v1/detect", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	decodeJSON(t, resp, 200, nil)

	var q struct {
		Goal       string             `json:"goal"`
		Utility    float64            `json:"utility"`
		Dimensions map[string]float64 `json:"dimensions"`
		RunID      string             `json:"run_id"`
	}
	decodeJSON(t, getResp(t, srv.URL+"/api/v1/quality", nil), 200, &q)
	if q.Utility <= 0 || len(q.Dimensions) == 0 || q.RunID == "" {
		t.Fatalf("quality: %+v", q)
	}

	// /api/v1/metrics reports the engine's latency quantiles per subsystem.
	var ms []MetricsEntry
	decodeJSON(t, getResp(t, srv.URL+"/api/v1/metrics", nil), 200, &ms)
	byEntity := map[string]map[string]float64{}
	for _, m := range ms {
		byEntity[m.Entity] = m.Measurements
	}
	eng, ok := byEntity["subsystem:engine"]
	if !ok {
		t.Fatalf("no engine entry in %v", byEntity)
	}
	for _, k := range []string{"engine.exec.p50_us", "engine.exec.p95_us", "engine.exec.p99_us",
		"engine.queue_wait.p50_us", "engine.queue_wait.p95_us", "engine.queue_wait.p99_us"} {
		if _, ok := eng[k]; !ok {
			t.Errorf("engine metrics missing %s", k)
		}
	}
	if eng["engine.exec.p95_us"] < eng["engine.exec.p50_us"] {
		t.Error("p95 below p50")
	}
	if pw, ok := byEntity["subsystem:provenance-writer"]; !ok {
		t.Error("no provenance-writer entry")
	} else if _, ok := pw["provenance.writer.flush.p99_us"]; !ok {
		t.Error("provenance-writer metrics missing flush p99")
	}
}

// TestAPIWorkers covers the worker-pool view: before any run the pool is
// empty but well-formed; after a detection run the registry reports the
// run's workers (exited, not killed) and the queue gauges read drained.
func TestAPIWorkers(t *testing.T) {
	srv, wsys, _ := testServer(t)

	var pool struct {
		Counters map[string]float64 `json:"counters"`
		Workers  []struct {
			ID     string `json:"id"`
			RunID  string `json:"run_id"`
			Tasks  int    `json:"tasks"`
			Alive  bool   `json:"alive"`
			Killed bool   `json:"killed"`
		} `json:"workers"`
		Leases []struct {
			Resource string `json:"resource"`
			Holder   string `json:"holder"`
			Token    int64  `json:"token"`
			Live     bool   `json:"live"`
		} `json:"leases"`
	}
	decodeJSON(t, getResp(t, srv.URL+"/api/v1/workers", nil), 200, &pool)
	if len(pool.Workers) != 0 || pool.Counters["workers.started"] != 0 {
		t.Fatalf("pool before any run: %+v", pool)
	}
	if len(pool.Leases) != 0 {
		t.Fatalf("leases before any orchestrated run: %+v", pool.Leases)
	}

	resp, err := http.Post(srv.URL+"/api/v1/detect", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	decodeJSON(t, resp, 200, nil)

	decodeJSON(t, getResp(t, srv.URL+"/api/v1/workers", nil), 200, &pool)
	if pool.Counters["workers.started"] < 1 || pool.Counters["workers.exited"] < 1 {
		t.Fatalf("pool counters after run: %v", pool.Counters)
	}
	if pool.Counters["queue.depth"] != 0 || pool.Counters["queue.in_flight"] != 0 {
		t.Fatalf("queue not drained: %v", pool.Counters)
	}
	if len(pool.Workers) == 0 {
		t.Fatal("no workers recorded")
	}
	tasks := 0
	for _, wk := range pool.Workers {
		if wk.ID == "" || wk.RunID == "" {
			t.Fatalf("malformed worker: %+v", wk)
		}
		if wk.Alive || wk.Killed {
			t.Fatalf("worker not cleanly exited: %+v", wk)
		}
		tasks += wk.Tasks
	}
	if tasks == 0 {
		t.Fatal("workers report zero tasks for a completed run")
	}

	// A held run lease surfaces in the payload with its fencing token.
	if _, err := wsys.Core.Leases.Acquire("run-x", "orch-api", time.Minute); err != nil {
		t.Fatal(err)
	}
	decodeJSON(t, getResp(t, srv.URL+"/api/v1/workers", nil), 200, &pool)
	if len(pool.Leases) != 1 {
		t.Fatalf("leases = %+v, want the acquired one", pool.Leases)
	}
	if l := pool.Leases[0]; l.Resource != "run-x" || l.Holder != "orch-api" || l.Token != 1 || !l.Live {
		t.Fatalf("lease payload = %+v", l)
	}

	// The same gauges flow through /api/v1/metrics as a subsystem.
	var ms []MetricsEntry
	decodeJSON(t, getResp(t, srv.URL+"/api/v1/metrics", nil), 200, &ms)
	found := false
	for _, m := range ms {
		if m.Entity == "subsystem:workers" {
			found = true
			if m.Measurements["workers.tasks_total"] < 1 {
				t.Fatalf("workers subsystem measurements: %v", m.Measurements)
			}
		}
	}
	if !found {
		t.Fatal("no workers subsystem in /api/v1/metrics")
	}
}

func TestAPIArchive(t *testing.T) {
	srv, wsys, _ := testServer(t)

	// Without an archival store, archive resources are 404s with envelopes.
	wantEnvelope(t, getResp(t, srv.URL+"/api/v1/archive", nil), http.StatusNotFound, "not_found")
	wantEnvelope(t, getResp(t, srv.URL+"/api/v1/archive/abc", nil), http.StatusNotFound, "not_found")

	// Wire a three-volume store and archive one record's metadata.
	vols := []string{t.TempDir(), t.TempDir(), t.TempDir()}
	store, err := archive.OpenStore(vols)
	if err != nil {
		t.Fatal(err)
	}
	pm, err := wsys.Core.NewPreservationManager(store, core.LevelDocumentation)
	if err != nil {
		t.Fatal(err)
	}
	wsys.Preservation = pm
	var rec *fnjv.Record
	wsys.Core.Records.Scan(func(r *fnjv.Record) bool { rec = r; return false })
	man, err := pm.ArchiveRecord(rec, "")
	if err != nil {
		t.Fatal(err)
	}

	var ov struct {
		Volumes  int `json:"volumes"`
		Total    int `json:"total"`
		Holdings []struct {
			ID       string `json:"id"`
			Replicas int    `json:"replicas"`
			Healthy  int    `json:"healthy"`
		} `json:"holdings"`
	}
	decodeJSON(t, getResp(t, srv.URL+"/api/v1/archive", nil), 200, &ov)
	if ov.Volumes != 3 || ov.Total != 1 || len(ov.Holdings) != 1 {
		t.Fatalf("overview: %+v", ov)
	}
	if h := ov.Holdings[0]; h.ID != man.ID || h.Healthy != 3 {
		t.Fatalf("holding: %+v", h)
	}

	resp := getResp(t, srv.URL+"/api/v1/archive/"+man.ID, nil)
	etag := resp.Header.Get("ETag")
	var obj struct {
		Manifest struct {
			ID     string `json:"id"`
			SHA256 string `json:"sha256"`
		} `json:"manifest"`
		Replicas []replicaJSON `json:"replicas"`
	}
	decodeJSON(t, resp, 200, &obj)
	if obj.Manifest.ID != man.ID || obj.Manifest.SHA256 != man.SHA256 || len(obj.Replicas) != 3 {
		t.Fatalf("object: %+v", obj)
	}
	if etag == "" {
		t.Fatal("AIP manifest response has no ETag")
	}
	r304 := getResp(t, srv.URL+"/api/v1/archive/"+man.ID, map[string]string{"If-None-Match": etag})
	r304.Body.Close()
	if r304.StatusCode != http.StatusNotModified {
		t.Fatalf("manifest revalidation: %d, want 304", r304.StatusCode)
	}
}
