// The /api/v1/cluster resource tree: the control surface of the scheduler
// pool. What used to be one grab-bag /api/v1/workers payload is now a
// resource per concern —
//
//	/api/v1/cluster               index + pool summary
//	/api/v1/cluster/orchestrators membership rows (cursor-paginated)
//	/api/v1/cluster/leases        run-ownership leases (cursor-paginated)
//	/api/v1/cluster/queues        admission queue + worker dispatch gauges
//	/api/v1/cluster/runs/{id}/owner  one run's ownership lease
//
// — under the standard envelope, pagination, and error conventions of the
// rest of /api/v1. /api/v1/workers survives as a deprecated alias of the old
// combined payload (Deprecation + Link headers name the successor).
package web

import (
	"net/http"
	"strings"
	"time"

	"repro/internal/workflow"
)

// leaseJSON is the wire shape of one fenced lease, shared by every endpoint
// that renders ownership.
type leaseJSON struct {
	Resource string    `json:"resource"`
	Holder   string    `json:"holder"`
	Token    int64     `json:"token"`
	Expires  time.Time `json:"expires"`
	Live     bool      `json:"live"`
}

// apiCluster dispatches the /api/v1/cluster subtree.
func (s *Server) apiCluster(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(strings.TrimPrefix(r.URL.Path, "/api/v1/cluster"), "/")
	switch {
	case rest == "":
		s.apiClusterIndex(w, r)
	case rest == "orchestrators":
		s.apiClusterOrchestrators(w, r)
	case rest == "leases":
		s.apiClusterLeases(w, r)
	case rest == "queues":
		s.apiClusterQueues(w, r)
	case strings.HasPrefix(rest, "runs/"):
		runID, sub, ok := strings.Cut(strings.TrimPrefix(rest, "runs/"), "/")
		if runID == "" || !ok || sub != "owner" {
			writeAPIError(w, http.StatusNotFound, "not_found", "no such cluster resource: "+rest)
			return
		}
		s.apiClusterRunOwner(w, r, runID)
	default:
		writeAPIError(w, http.StatusNotFound, "not_found", "no such cluster resource: "+rest)
	}
}

// apiClusterIndex summarizes the pool and links the child resources.
func (s *Server) apiClusterIndex(w http.ResponseWriter, r *http.Request) {
	now := timeNow()
	liveMembers, totalMembers := 0, 0
	for _, m := range s.svc.Orchestrators(now) {
		totalMembers++
		if m.Live {
			liveMembers++
		}
	}
	liveLeases, totalLeases := 0, 0
	for _, l := range s.svc.RunLeases() {
		totalLeases++
		if l.Live(now) {
			liveLeases++
		}
	}
	depth := 0
	if st, err := s.svc.Admissions(); err == nil {
		depth = st.Depth
	}
	writeJSON(w, struct {
		Orchestrators struct {
			Total int `json:"total"`
			Live  int `json:"live"`
		} `json:"orchestrators"`
		Leases struct {
			Total int `json:"total"`
			Live  int `json:"live"`
		} `json:"leases"`
		QueueDepth  int               `json:"queue_depth"`
		AsyncDetect bool              `json:"async_detect"`
		Links       map[string]string `json:"links"`
	}{
		struct {
			Total int `json:"total"`
			Live  int `json:"live"`
		}{totalMembers, liveMembers},
		struct {
			Total int `json:"total"`
			Live  int `json:"live"`
		}{totalLeases, liveLeases},
		depth,
		s.svc.AsyncDetect(),
		map[string]string{
			"orchestrators": "/api/v1/cluster/orchestrators",
			"leases":        "/api/v1/cluster/leases",
			"queues":        "/api/v1/cluster/queues",
		},
	})
}

// apiClusterOrchestrators pages the membership rows by name cursor.
func (s *Server) apiClusterOrchestrators(w http.ResponseWriter, r *http.Request) {
	limit, err := parsePageLimit(r.URL.Query().Get("limit"), 100)
	if err != nil {
		badRequest(w, err)
		return
	}
	after := r.URL.Query().Get("after")
	type memberJSON struct {
		Name    string    `json:"name"`
		Token   int64     `json:"token"`
		Expires time.Time `json:"expires"`
		Live    bool      `json:"live"`
	}
	members := s.svc.Orchestrators(timeNow())
	out := make([]memberJSON, 0, limit)
	next := ""
	for _, m := range members {
		if after != "" && m.Name <= after {
			continue
		}
		if len(out) == limit {
			next = out[len(out)-1].Name
			break
		}
		out = append(out, memberJSON{Name: m.Name, Token: m.Token, Expires: m.Expires, Live: m.Live})
	}
	writeJSON(w, struct {
		Orchestrators []memberJSON `json:"orchestrators"`
		NextCursor    string       `json:"next_cursor,omitempty"`
	}{out, next})
}

// apiClusterLeases pages the run-ownership leases by resource cursor.
func (s *Server) apiClusterLeases(w http.ResponseWriter, r *http.Request) {
	limit, err := parsePageLimit(r.URL.Query().Get("limit"), 100)
	if err != nil {
		badRequest(w, err)
		return
	}
	after := r.URL.Query().Get("after")
	now := timeNow()
	out := make([]leaseJSON, 0, limit)
	next := ""
	for _, l := range s.svc.RunLeases() {
		if after != "" && l.Resource <= after {
			continue
		}
		if len(out) == limit {
			next = out[len(out)-1].Resource
			break
		}
		out = append(out, leaseJSON{
			Resource: l.Resource, Holder: l.Holder, Token: l.Token,
			Expires: l.Expires, Live: l.Live(now),
		})
	}
	writeJSON(w, struct {
		Leases     []leaseJSON `json:"leases"`
		NextCursor string      `json:"next_cursor,omitempty"`
	}{out, next})
}

// apiClusterQueues reports the admission queue (depth + FIFO contents) and
// the worker pool's dispatch gauges.
func (s *Server) apiClusterQueues(w http.ResponseWriter, r *http.Request) {
	type admissionJSON struct {
		RunID      string            `json:"run_id"`
		Tenant     string            `json:"tenant,omitempty"`
		EnqueuedAt time.Time         `json:"enqueued_at"`
		Links      map[string]string `json:"links"`
	}
	pending := []admissionJSON{}
	depth := 0
	if st, err := s.svc.Admissions(); err == nil {
		depth = st.Depth
		for _, adm := range st.Pending {
			pending = append(pending, admissionJSON{
				RunID: adm.RunID, Tenant: adm.Tenant, EnqueuedAt: adm.EnqueuedAt,
				Links: map[string]string{
					"run":   "/api/v1/runs/" + adm.RunID,
					"owner": "/api/v1/cluster/runs/" + adm.RunID + "/owner",
				},
			})
		}
	}
	_, counters := s.svc.Workers()
	writeJSON(w, struct {
		Admissions struct {
			Depth   int             `json:"depth"`
			Pending []admissionJSON `json:"pending"`
		} `json:"admissions"`
		Dispatch map[string]float64 `json:"dispatch"`
	}{
		struct {
			Depth   int             `json:"depth"`
			Pending []admissionJSON `json:"pending"`
		}{depth, pending},
		counters,
	})
}

// apiClusterRunOwner answers one run's ownership: 404 when no orchestrator
// ever claimed it.
func (s *Server) apiClusterRunOwner(w http.ResponseWriter, r *http.Request, runID string) {
	l, err := s.svc.RunOwner(runID)
	if err != nil {
		fail(w, err)
		return
	}
	writeJSON(w, struct {
		RunID string            `json:"run_id"`
		Owner leaseJSON         `json:"owner"`
		Links map[string]string `json:"links"`
	}{
		runID,
		leaseJSON{
			Resource: l.Resource, Holder: l.Holder, Token: l.Token,
			Expires: l.Expires, Live: l.Live(timeNow()),
		},
		map[string]string{"run": "/api/v1/runs/" + runID},
	})
}

// apiWorkers is the deprecated alias of the retired combined endpoint: the
// exact pre-cluster payload (pool counters, per-worker liveness, every lease
// including membership rows) with deprecation headers pointing clients at
// the /api/v1/cluster tree. It reads through the same service methods as its
// successors, so alias and successor can never disagree on the data.
func (s *Server) apiWorkers(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Deprecation", "true")
	w.Header().Set("Link", `</api/v1/cluster>; rel="successor-version"`)
	workers, counters := s.svc.Workers()
	if workers == nil {
		workers = []workflow.WorkerInfo{}
	}
	now := timeNow()
	leases := []leaseJSON{}
	for _, l := range s.svc.Leases() {
		leases = append(leases, leaseJSON{
			Resource: l.Resource, Holder: l.Holder, Token: l.Token,
			Expires: l.Expires, Live: l.Live(now),
		})
	}
	writeJSON(w, struct {
		Counters map[string]float64    `json:"counters"`
		Workers  []workflow.WorkerInfo `json:"workers"`
		Leases   []leaseJSON           `json:"leases"`
	}{counters, workers, leases})
}
