package web

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
)

// clusterServer is testServer with membership rows and run-ownership leases
// seeded, so every /api/v1/cluster resource has content.
func clusterServer(t *testing.T) (*httptest.Server, *System) {
	t.Helper()
	srv, wsys, _ := testServer(t)
	leases := wsys.Core.Leases
	for _, name := range []string{"orch-a", "orch-b", "orch-c"} {
		if _, err := leases.Heartbeat(name, time.Minute); err != nil {
			t.Fatal(err)
		}
	}
	for _, run := range []string{"run-x", "run-y"} {
		if _, err := leases.Acquire(run, "orch-a", time.Minute); err != nil {
			t.Fatal(err)
		}
	}
	return srv, wsys
}

// TestClusterIndex is the /api/v1/cluster contract: pool summary plus links
// to every child resource.
func TestClusterIndex(t *testing.T) {
	srv, _ := clusterServer(t)
	var body struct {
		Orchestrators struct{ Total, Live int } `json:"orchestrators"`
		Leases        struct{ Total, Live int } `json:"leases"`
		QueueDepth    int                       `json:"queue_depth"`
		AsyncDetect   bool                      `json:"async_detect"`
		Links         map[string]string         `json:"links"`
	}
	decodeJSON(t, getResp(t, srv.URL+"/api/v1/cluster", nil), 200, &body)
	if body.Orchestrators.Total != 3 || body.Orchestrators.Live != 3 {
		t.Fatalf("orchestrators %+v, want 3/3", body.Orchestrators)
	}
	if body.Leases.Total != 2 || body.Leases.Live != 2 {
		t.Fatalf("leases %+v, want 2/2", body.Leases)
	}
	if body.AsyncDetect {
		t.Fatal("async_detect true without a scheduler attached")
	}
	for _, rel := range []string{"orchestrators", "leases", "queues"} {
		if body.Links[rel] != "/api/v1/cluster/"+rel {
			t.Fatalf("link %q = %q", rel, body.Links[rel])
		}
	}
	// Method and path contracts.
	resp, err := http.Post(srv.URL+"/api/v1/cluster", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	wantEnvelope(t, resp, http.StatusMethodNotAllowed, "method_not_allowed")
	wantEnvelope(t, getResp(t, srv.URL+"/api/v1/cluster/nope", nil), http.StatusNotFound, "not_found")
}

// TestClusterOrchestratorsPagination pages the membership rows with a name
// cursor and pins the 400 contract for bad limits.
func TestClusterOrchestratorsPagination(t *testing.T) {
	srv, _ := clusterServer(t)
	var page struct {
		Orchestrators []struct {
			Name  string `json:"name"`
			Token int64  `json:"token"`
			Live  bool   `json:"live"`
		} `json:"orchestrators"`
		NextCursor string `json:"next_cursor"`
	}
	decodeJSON(t, getResp(t, srv.URL+"/api/v1/cluster/orchestrators?limit=2", nil), 200, &page)
	if len(page.Orchestrators) != 2 || page.Orchestrators[0].Name != "orch-a" || page.Orchestrators[1].Name != "orch-b" {
		t.Fatalf("page 1: %+v", page.Orchestrators)
	}
	if page.NextCursor != "orch-b" {
		t.Fatalf("next_cursor %q, want orch-b", page.NextCursor)
	}
	if !page.Orchestrators[0].Live || page.Orchestrators[0].Token == 0 {
		t.Fatalf("member row incomplete: %+v", page.Orchestrators[0])
	}
	page.Orchestrators, page.NextCursor = nil, ""
	decodeJSON(t, getResp(t, srv.URL+"/api/v1/cluster/orchestrators?limit=2&after=orch-b", nil), 200, &page)
	if len(page.Orchestrators) != 1 || page.Orchestrators[0].Name != "orch-c" || page.NextCursor != "" {
		t.Fatalf("page 2: %+v next=%q", page.Orchestrators, page.NextCursor)
	}
	wantEnvelope(t, getResp(t, srv.URL+"/api/v1/cluster/orchestrators?limit=0", nil),
		http.StatusBadRequest, "bad_request")
	wantEnvelope(t, getResp(t, srv.URL+"/api/v1/cluster/orchestrators?limit=501", nil),
		http.StatusBadRequest, "bad_request")
}

// TestClusterLeasesPagination pages the run-ownership leases and pins that
// membership rows never leak into them.
func TestClusterLeasesPagination(t *testing.T) {
	srv, _ := clusterServer(t)
	var page struct {
		Leases []struct {
			Resource string `json:"resource"`
			Holder   string `json:"holder"`
			Token    int64  `json:"token"`
			Live     bool   `json:"live"`
		} `json:"leases"`
		NextCursor string `json:"next_cursor"`
	}
	decodeJSON(t, getResp(t, srv.URL+"/api/v1/cluster/leases?limit=1", nil), 200, &page)
	if len(page.Leases) != 1 || page.Leases[0].Resource != "run-x" || page.NextCursor != "run-x" {
		t.Fatalf("page 1: %+v next=%q", page.Leases, page.NextCursor)
	}
	if page.Leases[0].Holder != "orch-a" || !page.Leases[0].Live {
		t.Fatalf("lease row incomplete: %+v", page.Leases[0])
	}
	page.Leases, page.NextCursor = nil, ""
	decodeJSON(t, getResp(t, srv.URL+"/api/v1/cluster/leases?after=run-x", nil), 200, &page)
	if len(page.Leases) != 1 || page.Leases[0].Resource != "run-y" || page.NextCursor != "" {
		t.Fatalf("page 2: %+v", page.Leases)
	}
	for _, l := range page.Leases {
		if strings.HasPrefix(l.Resource, cluster.OrchestratorPrefix) {
			t.Fatalf("membership row leaked into run leases: %+v", l)
		}
	}
}

// TestClusterQueues pins the admission queue view: FIFO order, per-run
// links, and the worker dispatch gauges riding along.
func TestClusterQueues(t *testing.T) {
	srv, wsys := clusterServer(t)
	admA, err := wsys.Core.AdmitDetection(core.RunOptions{Tenant: "acme"})
	if err != nil {
		t.Fatal(err)
	}
	admB, err := wsys.Core.AdmitDetection(core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var body struct {
		Admissions struct {
			Depth   int `json:"depth"`
			Pending []struct {
				RunID  string            `json:"run_id"`
				Tenant string            `json:"tenant"`
				Links  map[string]string `json:"links"`
			} `json:"pending"`
		} `json:"admissions"`
		Dispatch map[string]float64 `json:"dispatch"`
	}
	decodeJSON(t, getResp(t, srv.URL+"/api/v1/cluster/queues", nil), 200, &body)
	if body.Admissions.Depth != 2 || len(body.Admissions.Pending) != 2 {
		t.Fatalf("depth %d pending %d, want 2/2", body.Admissions.Depth, len(body.Admissions.Pending))
	}
	if body.Admissions.Pending[0].RunID != admA.RunID || body.Admissions.Pending[1].RunID != admB.RunID {
		t.Fatalf("queue order %+v, want FIFO %s then %s", body.Admissions.Pending, admA.RunID, admB.RunID)
	}
	if body.Admissions.Pending[0].Tenant != "acme" {
		t.Fatalf("tenant %q, want acme", body.Admissions.Pending[0].Tenant)
	}
	if got := body.Admissions.Pending[0].Links["run"]; got != "/api/v1/runs/"+admA.RunID {
		t.Fatalf("run link %q", got)
	}
	if body.Dispatch == nil {
		t.Fatal("dispatch gauges missing")
	}
}

// TestClusterRunOwner pins the per-run ownership resource: the lease when
// claimed, 404 with the envelope when never claimed, 404 on bad subpaths.
func TestClusterRunOwner(t *testing.T) {
	srv, _ := clusterServer(t)
	var body struct {
		RunID string `json:"run_id"`
		Owner struct {
			Holder string `json:"holder"`
			Token  int64  `json:"token"`
			Live   bool   `json:"live"`
		} `json:"owner"`
		Links map[string]string `json:"links"`
	}
	decodeJSON(t, getResp(t, srv.URL+"/api/v1/cluster/runs/run-x/owner", nil), 200, &body)
	if body.RunID != "run-x" || body.Owner.Holder != "orch-a" || !body.Owner.Live {
		t.Fatalf("owner: %+v", body)
	}
	if body.Links["run"] != "/api/v1/runs/run-x" {
		t.Fatalf("run link %q", body.Links["run"])
	}
	wantEnvelope(t, getResp(t, srv.URL+"/api/v1/cluster/runs/run-unclaimed/owner", nil),
		http.StatusNotFound, "not_found")
	wantEnvelope(t, getResp(t, srv.URL+"/api/v1/cluster/runs/run-x", nil),
		http.StatusNotFound, "not_found")
	wantEnvelope(t, getResp(t, srv.URL+"/api/v1/cluster/runs/run-x/leases", nil),
		http.StatusNotFound, "not_found")
}

// TestWorkersAliasParity pins the deprecation contract: /api/v1/workers
// still serves the combined payload, carries Deprecation + successor Link
// headers, and agrees with the /api/v1/cluster resources on every lease.
func TestWorkersAliasParity(t *testing.T) {
	srv, _ := clusterServer(t)
	resp := getResp(t, srv.URL+"/api/v1/workers", nil)
	if resp.Header.Get("Deprecation") != "true" {
		t.Fatal("alias missing Deprecation header")
	}
	if link := resp.Header.Get("Link"); !strings.Contains(link, "/api/v1/cluster") {
		t.Fatalf("alias Link header %q does not name the successor", link)
	}
	var workers struct {
		Counters map[string]float64 `json:"counters"`
		Leases   []struct {
			Resource string `json:"resource"`
			Holder   string `json:"holder"`
			Token    int64  `json:"token"`
		} `json:"leases"`
	}
	decodeJSON(t, resp, 200, &workers)
	if len(workers.Leases) != 5 { // 3 membership rows + 2 run leases
		t.Fatalf("alias leases %d, want 5", len(workers.Leases))
	}
	// Rebuild the same set from the successor resources.
	type row struct {
		holder string
		token  int64
	}
	fromCluster := map[string]row{}
	var members struct {
		Orchestrators []struct {
			Name  string `json:"name"`
			Token int64  `json:"token"`
		} `json:"orchestrators"`
	}
	decodeJSON(t, getResp(t, srv.URL+"/api/v1/cluster/orchestrators", nil), 200, &members)
	for _, m := range members.Orchestrators {
		fromCluster[cluster.MemberResource(m.Name)] = row{m.Name, m.Token}
	}
	var leases struct {
		Leases []struct {
			Resource string `json:"resource"`
			Holder   string `json:"holder"`
			Token    int64  `json:"token"`
		} `json:"leases"`
	}
	decodeJSON(t, getResp(t, srv.URL+"/api/v1/cluster/leases", nil), 200, &leases)
	for _, l := range leases.Leases {
		fromCluster[l.Resource] = row{l.Holder, l.Token}
	}
	for _, l := range workers.Leases {
		got, ok := fromCluster[l.Resource]
		if !ok {
			t.Fatalf("alias lease %q absent from /api/v1/cluster", l.Resource)
		}
		if got.token != l.Token {
			t.Fatalf("lease %q token: alias %d, cluster %d", l.Resource, l.Token, got.token)
		}
	}
}

// TestClusterQuota pins that the cluster tree sits behind the same tenant
// quota gate as the rest of /api/v1.
func TestClusterQuota(t *testing.T) {
	srv, _ := quotaServer(t, 0.001, 1)
	hdr := map[string]string{TenantHeader: "acme"}
	resp := getResp(t, srv.URL+"/api/v1/cluster", hdr)
	if resp.StatusCode != 200 {
		t.Fatalf("first request: status %d", resp.StatusCode)
	}
	resp.Body.Close()
	resp = getResp(t, srv.URL+"/api/v1/cluster", hdr)
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	wantEnvelope(t, resp, http.StatusTooManyRequests, "rate_limited")
}

// TestAsyncDetect pins the redesigned POST /api/v1/detect: with a scheduler
// attached the response is 202 Accepted + the run's URL, the scheduler
// executes the admitted run to completion under its pre-minted ID, and
// ?wait=true still forces the synchronous path.
func TestAsyncDetect(t *testing.T) {
	srv, wsys, taxa := testServer(t)
	sys := wsys.Core
	var outcomes atomic.Int32
	backend := sys.SchedulerBackend(taxa.Checklist, core.RunOptions{}, func(*core.DetectionOutcome) { outcomes.Add(1) })
	sched := &cluster.Scheduler{
		Name: "orch-web", Leases: sys.Leases, Backend: backend,
		TTL: 500 * time.Millisecond, Poll: 10 * time.Millisecond,
	}
	if err := sched.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sched.Stop)
	wsys.Scheduler = sched

	resp, err := http.Post(srv.URL+"/api/v1/detect", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	loc := resp.Header.Get("Location")
	var accepted struct {
		RunID  string            `json:"run_id"`
		Status string            `json:"status"`
		Links  map[string]string `json:"links"`
	}
	decodeJSON(t, resp, http.StatusAccepted, &accepted)
	if accepted.Status != "admitted" || accepted.RunID == "" {
		t.Fatalf("accepted body: %+v", accepted)
	}
	if want := "/api/v1/runs/" + accepted.RunID; loc != want || accepted.Links["run"] != want {
		t.Fatalf("Location %q links %+v, want %q", loc, accepted.Links, want)
	}

	// The scheduler drains the admission; the run URL turns terminal. Until
	// an orchestrator claims the run there is no run row yet — 404 means
	// "still queued", part of the documented admitted→claimed transition.
	deadline := time.Now().Add(30 * time.Second)
	for {
		var run struct {
			Status string `json:"status"`
		}
		poll := getResp(t, srv.URL+loc, nil)
		if poll.StatusCode == http.StatusNotFound {
			poll.Body.Close()
			run.Status = "admitted"
		} else {
			decodeJSON(t, poll, 200, &run)
		}
		if run.Status == "completed" {
			break
		}
		if run.Status == "failed" || run.Status == "abandoned" {
			t.Fatalf("admitted run ended %q", run.Status)
		}
		if time.Now().After(deadline) {
			t.Fatalf("admitted run still %q after 30s", run.Status)
		}
		time.Sleep(20 * time.Millisecond)
	}
	// The outcome callback fires on the scheduler goroutine after the run
	// row turns terminal — give the settle a moment.
	for outcomes.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := outcomes.Load(); n != 1 {
		t.Fatalf("scheduler produced %d outcomes, want 1", n)
	}

	// ?wait=true keeps the synchronous contract: 200 with run stats inline.
	resp, err = http.Post(srv.URL+"/api/v1/detect?wait=true", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var sync struct {
		RunID         string `json:"run_id"`
		DistinctNames int    `json:"distinct_names"`
	}
	decodeJSON(t, resp, 200, &sync)
	if sync.RunID == "" || sync.DistinctNames != 100 {
		t.Fatalf("sync body: %+v", sync)
	}
}

// TestDetectStaysSyncWithoutScheduler pins the compatibility default: no
// scheduler in the process means POST /api/v1/detect blocks and answers 200
// exactly as before the redesign.
func TestDetectStaysSyncWithoutScheduler(t *testing.T) {
	srv, _, _ := testServer(t)
	resp, err := http.Post(srv.URL+"/api/v1/detect", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out struct {
		RunID string `json:"run_id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.RunID == "" {
		t.Fatal("sync detect without run_id")
	}
}
