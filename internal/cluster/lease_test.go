package cluster

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/storage"
)

func leaseStore(t *testing.T) (*Store, *storage.DB) {
	t.Helper()
	db, err := storage.Open(t.TempDir(), storage.Options{Sync: storage.SyncNever})
	if err != nil {
		t.Fatalf("open db: %v", err)
	}
	t.Cleanup(func() { db.Close() })
	s, err := NewStore(db)
	if err != nil {
		t.Fatalf("new store: %v", err)
	}
	return s, db
}

func TestLeaseAcquireRenewRelease(t *testing.T) {
	s, _ := leaseStore(t)
	l, err := s.Acquire("run/r1", "orch-a", time.Minute)
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	if l.Token != 1 || l.Holder != "orch-a" {
		t.Fatalf("lease = %+v, want token 1 holder orch-a", l)
	}
	// A live lease is exclusive — even against its own holder.
	if _, err := s.Acquire("run/r1", "orch-b", time.Minute); !errors.Is(err, ErrLeaseHeld) {
		t.Fatalf("second acquire: err = %v, want ErrLeaseHeld", err)
	}
	if _, err := s.Acquire("run/r1", "orch-a", time.Minute); !errors.Is(err, ErrLeaseHeld) {
		t.Fatalf("self re-acquire: err = %v, want ErrLeaseHeld", err)
	}
	l2, err := s.Renew(l, 2*time.Minute)
	if err != nil {
		t.Fatalf("renew: %v", err)
	}
	if l2.Token != l.Token {
		t.Fatalf("renew changed token: %d -> %d", l.Token, l2.Token)
	}
	if !l2.Expires.After(l.Expires) {
		t.Fatalf("renew did not extend: %s -> %s", l.Expires, l2.Expires)
	}
	if err := s.Release(l2); err != nil {
		t.Fatalf("release: %v", err)
	}
	// Released leases are immediately re-acquirable, at a bumped token.
	l3, err := s.Acquire("run/r1", "orch-b", time.Minute)
	if err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
	if l3.Token != l.Token+1 {
		t.Fatalf("token after release = %d, want %d", l3.Token, l.Token+1)
	}
}

func TestLeaseStealAfterExpiry(t *testing.T) {
	s, _ := leaseStore(t)
	l, err := s.Acquire("run/r1", "orch-a", time.Minute)
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	if err := s.Expire("run/r1"); err != nil {
		t.Fatalf("expire: %v", err)
	}
	stolen, err := s.Acquire("run/r1", "orch-b", time.Minute)
	if err != nil {
		t.Fatalf("steal: %v", err)
	}
	if stolen.Token != l.Token+1 {
		t.Fatalf("stolen token = %d, want %d", stolen.Token, l.Token+1)
	}
	// The old holder's heartbeat and release now fail closed.
	if _, err := s.Renew(l, time.Minute); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("stale renew: err = %v, want ErrLeaseLost", err)
	}
	if err := s.Release(l); err != nil {
		t.Fatalf("stale release should be a no-op, got %v", err)
	}
	if cur, ok := s.Get("run/r1"); !ok || cur.Holder != "orch-b" || !cur.Live(time.Now()) {
		t.Fatalf("lease after stale release = %+v, want live orch-b", cur)
	}
}

// TestLeaseConcurrentStealers pins the tentpole CAS: many stealers race for
// one expired lease — exactly one wins, every loser sees ErrLeaseHeld, and
// the winning token is exactly prev+1. Two independent Store instances share
// the DB, modeling two standby orchestrator processes.
func TestLeaseConcurrentStealers(t *testing.T) {
	s, db := leaseStore(t)
	if _, err := s.Acquire("run/r1", "orch-dead", time.Minute); err != nil {
		t.Fatalf("seed acquire: %v", err)
	}
	if err := s.Expire("run/r1"); err != nil {
		t.Fatalf("expire: %v", err)
	}
	s2, err := NewStore(db)
	if err != nil {
		t.Fatalf("second store: %v", err)
	}
	stores := []*Store{s, s2}
	const racers = 8
	var wg sync.WaitGroup
	wins := make(chan Lease, racers)
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			l, err := stores[i%len(stores)].Acquire("run/r1", "orch-standby", time.Minute)
			switch {
			case err == nil:
				wins <- l
			case !errors.Is(err, ErrLeaseHeld):
				t.Errorf("stealer %d: unexpected error %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	close(wins)
	var won []Lease
	for l := range wins {
		won = append(won, l)
	}
	if len(won) != 1 {
		t.Fatalf("winners = %d, want exactly 1", len(won))
	}
	if won[0].Token != 2 {
		t.Fatalf("winning token = %d, want 2", won[0].Token)
	}
}

func TestLeaseSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	db, err := storage.Open(dir, storage.Options{Sync: storage.SyncNever})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	s, err := NewStore(db)
	if err != nil {
		t.Fatalf("store: %v", err)
	}
	l, err := s.Acquire("run/r1", "orch-a", time.Hour)
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	db, err = storage.Open(dir, storage.Options{Sync: storage.SyncNever})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer db.Close()
	s, err = NewStore(db)
	if err != nil {
		t.Fatalf("store after reopen: %v", err)
	}
	cur, ok := s.Get("run/r1")
	if !ok || cur.Holder != l.Holder || cur.Token != l.Token {
		t.Fatalf("lease after reopen = %+v ok=%v, want %+v", cur, ok, l)
	}
	// Token continuity across restart: a steal still bumps, never reuses.
	if err := s.Expire("run/r1"); err != nil {
		t.Fatalf("expire: %v", err)
	}
	stolen, err := s.Acquire("run/r1", "orch-b", time.Hour)
	if err != nil {
		t.Fatalf("steal after reopen: %v", err)
	}
	if stolen.Token != l.Token+1 {
		t.Fatalf("token after reopen steal = %d, want %d", stolen.Token, l.Token+1)
	}
}
