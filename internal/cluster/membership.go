package cluster

import (
	"errors"
	"sort"
	"strings"
	"time"
)

// Membership: each orchestrator in the pool announces liveness by holding a
// lease on "orchestrator/<name>" in the shared lease store, renewed on the
// same TTL/3 cadence as run leases. Membership is therefore observable by
// every peer (and the API) with a plain lease scan — no separate gossip or
// registry — and a dead orchestrator's row ages out exactly like an abandoned
// run lease. The member lease token counts the orchestrator's sessions:
// every (re)join bumps it.

// OrchestratorPrefix namespaces membership resources in the lease table,
// keeping them disjoint from run leases (which are keyed by bare run ID).
const OrchestratorPrefix = "orchestrator/"

// MemberResource is the lease resource announcing the named orchestrator.
func MemberResource(name string) string { return OrchestratorPrefix + name }

// Member is one orchestrator's membership row as observed in the lease store.
type Member struct {
	// Name of the orchestrator process.
	Name string
	// Token is the membership fencing token — the orchestrator's session
	// count (bumped on every join after a death or clean leave).
	Token int64
	// Expires is when the membership lapses unless renewed.
	Expires time.Time
	// Live reports whether the row was unexpired at observation time.
	Live bool
}

// Heartbeat announces (or renews) the named orchestrator's membership for
// ttl. First call acquires the membership lease; subsequent calls renew it.
// If the previous session's row is still live under another incarnation —
// the name is genuinely held by someone else — ErrLeaseHeld propagates.
func (s *Store) Heartbeat(name string, ttl time.Duration) (Lease, error) {
	res := MemberResource(name)
	if cur, ok := s.Get(res); ok && cur.Live(s.now()) && cur.Holder == name {
		renewed, err := s.Renew(cur, ttl)
		if err == nil {
			return renewed, nil
		}
		if !errors.Is(err, ErrLeaseLost) {
			return Lease{}, err
		}
		// Lost between Get and Renew: fall through and re-acquire.
	}
	return s.Acquire(res, name, ttl)
}

// Leave expires the orchestrator's membership row in place (clean shutdown).
// The token survives, so a rejoin is visibly a new session.
func (s *Store) Leave(name string) {
	if cur, ok := s.Get(MemberResource(name)); ok {
		_ = s.Release(cur)
	}
}

// Members lists every orchestrator that ever announced itself, sorted by
// name, with liveness evaluated at now. Callers wanting only the live pool
// filter on Member.Live.
func (s *Store) Members(now time.Time) []Member {
	var out []Member
	for _, l := range s.List() {
		if !strings.HasPrefix(l.Resource, OrchestratorPrefix) {
			continue
		}
		out = append(out, Member{
			Name:    strings.TrimPrefix(l.Resource, OrchestratorPrefix),
			Token:   l.Token,
			Expires: l.Expires,
			Live:    l.Live(now),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// RunLeases lists the non-membership leases (run ownership rows), in
// resource order — the /cluster/leases view.
func (s *Store) RunLeases() []Lease {
	var out []Lease
	for _, l := range s.List() {
		if strings.HasPrefix(l.Resource, OrchestratorPrefix) {
			continue
		}
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Resource < out[j].Resource })
	return out
}
