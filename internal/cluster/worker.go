package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"repro/internal/workflow"
)

// Worker is the out-of-process half of the gateway protocol: it long-polls
// /cluster/v1/dequeue, invokes each task against its own service registry —
// the same retry/backoff/output-check pipeline the in-process pool runs
// (workflow.InvokeRemote) — and reports the result back. Run it from a
// separate process (cmd/worker) pointed at an orchestrator's gateway; the
// orchestrator folds its reports into history through the same channel as
// the local pool, so where an element executed is invisible in the record.
type Worker struct {
	// Gateway is the orchestrator's base URL (e.g. "http://host:8080").
	Gateway string
	// Name identifies this worker; the registry tracks it as "r-<name>".
	Name string
	// Registry holds the worker's own service implementations.
	Registry *workflow.Registry
	// Client is the HTTP client (default: one with generous timeouts for
	// long polls).
	Client *http.Client
	// Poll is the long-poll window per dequeue (default 5s).
	Poll time.Duration

	// Tasks counts completed invocations (successes and failures reported).
	Tasks atomic.Int64
}

func (w *Worker) client() *http.Client {
	if w.Client != nil {
		return w.Client
	}
	return &http.Client{Timeout: 60 * time.Second}
}

func (w *Worker) post(ctx context.Context, path string, in any, out any) (int, error) {
	body, err := json.Marshal(in)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.Gateway+path, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.client().Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNoContent {
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode, nil
	}
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return resp.StatusCode, fmt.Errorf("cluster: %s: %s: %s", path, resp.Status, b)
	}
	if out != nil {
		return resp.StatusCode, json.NewDecoder(resp.Body).Decode(out)
	}
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, nil
}

// Run pulls and executes tasks until ctx is cancelled. Transient gateway
// errors (orchestrator restarting, network blips) are absorbed with a short
// backoff — the worker is stateless, so reattaching is just the next poll.
func (w *Worker) Run(ctx context.Context) error {
	poll := w.Poll
	if poll <= 0 {
		poll = 5 * time.Second
	}
	if _, err := w.post(ctx, "/cluster/v1/register", pullRequest{Worker: w.Name}, nil); err != nil && ctx.Err() == nil {
		return fmt.Errorf("cluster: registering with gateway: %w", err)
	}
	for {
		if ctx.Err() != nil {
			return nil
		}
		var task pullResponse
		status, err := w.post(ctx, "/cluster/v1/dequeue", pullRequest{Worker: w.Name, WaitMS: poll.Milliseconds()}, &task)
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			select {
			case <-ctx.Done():
				return nil
			case <-time.After(200 * time.Millisecond):
			}
			continue
		}
		if status == http.StatusNoContent {
			continue
		}
		w.execute(ctx, task)
	}
}

// execute runs one task and reports it. A ctx cancellation mid-task fails
// the task back to the queue (the cross-process analogue of a killed pool
// worker) so a live worker can pick it up.
func (w *Worker) execute(ctx context.Context, task pullResponse) {
	rt := workflow.RemoteTask{Task: task.Task, Processor: task.Processor, Inputs: task.Inputs}
	out, err := workflow.InvokeRemote(ctx, w.Registry, rt, func(attempt int) {
		_, _ = w.post(ctx, "/cluster/v1/retry", reportRequest{
			Worker: w.Name, RunID: task.RunID, Task: task.Task, Attempt: attempt,
		}, nil)
	})
	if err != nil && ctx.Err() != nil {
		// Dying mid-task: hand it back instead of reporting a cancellation
		// the orchestrator would treat as the task's real outcome.
		rctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_, _ = w.post(rctx, "/cluster/v1/fail", reportRequest{Worker: w.Name, RunID: task.RunID, Task: task.Task}, nil)
		return
	}
	report := reportRequest{
		Worker: w.Name, RunID: task.RunID, Task: task.Task,
		Inputs: rt.Inputs, Outputs: out,
	}
	if err != nil {
		report.Error = err.Error()
	}
	_, _ = w.post(ctx, "/cluster/v1/complete", report, nil)
	w.Tasks.Add(1)
}
