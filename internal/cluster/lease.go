// Package cluster provides cross-process execution primitives: fenced run
// leases for orchestrator failover, and the HTTP gateway/worker pair that
// lets a separate process pull tasks from a run's queue.
//
// Ownership is built on storage fences (storage.AdvanceFence /
// storage.ApplyFenced): a lease's token is the durable fence token of
// "lease/<resource>" in the lease database. Acquiring or stealing a lease is
// a strictly-monotonic fence advance — a compare-and-swap the storage layer
// arbitrates under its write lock — so two concurrent stealers can never
// both win, and a holder whose lease was stolen gets ErrStaleFence on its
// next write rather than silently corrupting shared state.
package cluster

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/storage"
)

// ErrLeaseHeld is returned by Acquire when the resource has a live lease
// owned by someone else.
var ErrLeaseHeld = errors.New("cluster: lease held")

// ErrLeaseLost is returned by Renew/Release when the lease was stolen: the
// durable token moved past the caller's. The holder must stop writing.
var ErrLeaseLost = errors.New("cluster: lease lost")

// leaseTable holds one row per leased resource:
// (resource, holder, token, expires-unixnano).
const leaseTable = "cluster_leases"

// Lease is a held (or observed) claim on a resource. Token is the fencing
// token every write under this lease must carry.
type Lease struct {
	Resource string
	Holder   string
	Token    int64
	Expires  time.Time
}

// Live reports whether the lease is unexpired at now.
func (l Lease) Live(now time.Time) bool { return now.Before(l.Expires) }

// Store manages leases in one storage.DB (the meta database in a sharded
// deployment). Multiple Stores — in one process or several — may share the
// same DB; the fence CAS arbitrates between them.
type Store struct {
	db  *storage.DB
	now func() time.Time
}

// NewStore opens a lease store over db, creating the lease table if absent.
func NewStore(db *storage.DB) (*Store, error) {
	if db.Table(leaseTable) == nil {
		s, err := storage.NewSchema(leaseTable,
			storage.Column{Name: "resource", Kind: storage.KindString},
			storage.Column{Name: "holder", Kind: storage.KindString},
			storage.Column{Name: "token", Kind: storage.KindInt},
			storage.Column{Name: "expires", Kind: storage.KindInt},
		)
		if err != nil {
			return nil, err
		}
		if err := db.CreateTable(s); err != nil && db.Table(leaseTable) == nil {
			// A concurrent NewStore on the same DB may have created it first;
			// only a failure that left no table behind is real.
			return nil, err
		}
	}
	return &Store{db: db, now: time.Now}, nil
}

// SetClock replaces the wall clock (tests and chaos harnesses only).
func (s *Store) SetClock(now func() time.Time) { s.now = now }

// FenceName is the storage-fence resource backing the lease on resource.
// Exported so a lease holder can fence *other* state in the lease database
// under the same token — e.g. a run's dispatch queue: once the lease is
// stolen (this fence advanced), every fenced write from the old holder fails
// with storage.ErrStaleFence at the same instant its lease dies.
func FenceName(resource string) string { return "lease/" + resource }

func fenceName(resource string) string { return FenceName(resource) }

func leaseFromRow(r storage.Row) Lease {
	return Lease{
		Resource: r[0].Str(),
		Holder:   r[1].Str(),
		Token:    r[2].Int(),
		Expires:  time.Unix(0, r[3].Int()),
	}
}

// Get returns the current lease row for resource, if any.
func (s *Store) Get(resource string) (Lease, bool) {
	t := s.db.Table(leaseTable)
	if t == nil {
		return Lease{}, false
	}
	row, err := t.Get(storage.S(resource))
	if err != nil {
		return Lease{}, false
	}
	return leaseFromRow(row), true
}

// List returns every lease row, in resource order.
func (s *Store) List() []Lease {
	t := s.db.Table(leaseTable)
	if t == nil {
		return nil
	}
	var out []Lease
	t.Scan(func(r storage.Row) bool {
		out = append(out, leaseFromRow(r))
		return true
	})
	return out
}

// Acquire claims resource for holder with the given ttl. It succeeds when the
// resource has no lease or only an expired one, bumping the fencing token by
// exactly one; a live lease owned by anyone (including holder itself — a
// holder extends via Renew, not re-Acquire) returns ErrLeaseHeld. Of N
// concurrent acquirers of the same expired lease, exactly one wins: the token
// bump is a storage-fence CAS.
func (s *Store) Acquire(resource, holder string, ttl time.Duration) (Lease, error) {
	now := s.now()
	prev, exists := s.Get(resource)
	if exists && prev.Live(now) {
		return Lease{}, fmt.Errorf("%w: %q held by %q until %s",
			ErrLeaseHeld, resource, prev.Holder, prev.Expires.Format(time.RFC3339Nano))
	}
	token := s.db.FenceToken(fenceName(resource)) + 1
	if err := s.db.AdvanceFence(fenceName(resource), token); err != nil {
		if errors.Is(err, storage.ErrStaleFence) {
			return Lease{}, fmt.Errorf("%w: %q lost the steal race", ErrLeaseHeld, resource)
		}
		return Lease{}, err
	}
	l := Lease{Resource: resource, Holder: holder, Token: token, Expires: now.Add(ttl)}
	if err := s.putFenced(l, exists); err != nil {
		if errors.Is(err, storage.ErrStaleFence) {
			// An even newer stealer advanced past us between the CAS and the
			// row write; it owns the lease now.
			return Lease{}, fmt.Errorf("%w: %q re-stolen at token %d", ErrLeaseHeld, resource, token)
		}
		return Lease{}, err
	}
	return l, nil
}

// Renew extends a held lease by ttl from now. If the lease was stolen (the
// fence moved past l.Token) it returns ErrLeaseLost and the holder must stop.
func (s *Store) Renew(l Lease, ttl time.Duration) (Lease, error) {
	cur, exists := s.Get(l.Resource)
	if !exists || cur.Token != l.Token || cur.Holder != l.Holder {
		return Lease{}, fmt.Errorf("%w: %q renewed at token %d", ErrLeaseLost, l.Resource, l.Token)
	}
	l.Expires = s.now().Add(ttl)
	if err := s.putFenced(l, true); err != nil {
		if errors.Is(err, storage.ErrStaleFence) {
			return Lease{}, fmt.Errorf("%w: %q stolen during renew", ErrLeaseLost, l.Resource)
		}
		return Lease{}, err
	}
	return l, nil
}

// Release marks the lease expired immediately (without deleting the row, so
// token monotonicity survives for the next acquirer). Releasing a lease that
// was already stolen is a no-op: the thief owns it now.
func (s *Store) Release(l Lease) error {
	cur, exists := s.Get(l.Resource)
	if !exists || cur.Token != l.Token || cur.Holder != l.Holder {
		return nil
	}
	l.Expires = s.now().Add(-time.Nanosecond)
	err := s.putFenced(l, true)
	if errors.Is(err, storage.ErrStaleFence) {
		return nil
	}
	return err
}

// Expire forces the lease on resource to read as expired, leaving holder and
// token untouched — the chaos/test hook standing in for "the holder stopped
// heartbeating", without waiting a real TTL out.
func (s *Store) Expire(resource string) error {
	cur, exists := s.Get(resource)
	if !exists {
		return fmt.Errorf("cluster: expire of unknown lease %q", resource)
	}
	cur.Expires = s.now().Add(-time.Nanosecond)
	err := s.putFenced(cur, true)
	if errors.Is(err, storage.ErrStaleFence) {
		return nil
	}
	return err
}

// putFenced writes the lease row under its own token, so a row write racing
// a newer steal loses at the storage layer.
func (s *Store) putFenced(l Lease, update bool) error {
	row := storage.Row{
		storage.S(l.Resource), storage.S(l.Holder),
		storage.I(l.Token), storage.I(l.Expires.UnixNano()),
	}
	op := storage.InsertOp(leaseTable, row)
	if update {
		op = storage.UpdateOp(leaseTable, row)
	}
	return s.db.ApplyFenced(fenceName(l.Resource), l.Token, op)
}
