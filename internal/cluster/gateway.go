package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/workflow"
)

// Server is the orchestrator-side gateway for out-of-process workers: it
// implements workflow.RunGateway, so every engine run of the hosting process
// is announced to it, and serves the /cluster/v1 HTTP surface a Worker pulls
// tasks through. The embedded database is single-process, so remote workers
// reach a run's queue via the process that owns it — the gateway is that
// doorway; delivery semantics (FIFO, leases, redelivery, report dedup) are
// the queue's own, unchanged.
type Server struct {
	// Stats, when set, tracks remote workers next to the in-process pool in
	// the same registry (/api/v1/workers shows both).
	Stats *workflow.WorkerRegistry

	mu   sync.Mutex
	runs map[string]*workflow.RunHandle
	wake chan struct{}
}

// NewServer builds a gateway; register it as core.System.Gateway (or any
// EventEngine.Gateway) and mount Handler() on an HTTP server.
func NewServer(stats *workflow.WorkerRegistry) *Server {
	return &Server{Stats: stats, runs: map[string]*workflow.RunHandle{}, wake: make(chan struct{})}
}

// RunStarted implements workflow.RunGateway.
func (g *Server) RunStarted(h *workflow.RunHandle) {
	g.mu.Lock()
	g.runs[h.RunID()] = h
	close(g.wake)
	g.wake = make(chan struct{})
	g.mu.Unlock()
}

// RunFinished implements workflow.RunGateway.
func (g *Server) RunFinished(runID string) {
	g.mu.Lock()
	delete(g.runs, runID)
	g.mu.Unlock()
}

// Runs lists the run IDs currently open for remote pulling, sorted.
func (g *Server) Runs() []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]string, 0, len(g.runs))
	for id := range g.runs {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

func (g *Server) pick() (*workflow.RunHandle, <-chan struct{}) {
	g.mu.Lock()
	defer g.mu.Unlock()
	ids := make([]string, 0, len(g.runs))
	for id := range g.runs {
		ids = append(ids, id)
	}
	if len(ids) == 0 {
		return nil, g.wake
	}
	sort.Strings(ids)
	return g.runs[ids[0]], g.wake
}

// remoteID is the registry namespace for out-of-process workers.
func remoteID(name string) string { return "r-" + name }

// dequeueAny hands the next task of any live run to the named worker,
// blocking until ctx is done. ok=false means the window closed with nothing
// ready (the HTTP layer answers 204 and the worker re-polls).
func (g *Server) dequeueAny(ctx context.Context, name string) (string, workflow.RemoteTask, bool) {
	for {
		h, wake := g.pick()
		if h == nil {
			select {
			case <-ctx.Done():
				return "", workflow.RemoteTask{}, false
			case <-wake:
				continue
			}
		}
		wid := g.Stats.RegisterRemote(name, h.RunID())
		// A bounded per-run try keeps the poll responsive to runs that start
		// (or close) while we block on an idle queue.
		tctx, cancel := context.WithTimeout(ctx, 250*time.Millisecond)
		rt, err := h.Dequeue(tctx, wid)
		cancel()
		if err == nil {
			return h.RunID(), rt, true
		}
		if ctx.Err() != nil {
			return "", workflow.RemoteTask{}, false
		}
	}
}

// wire types of the /cluster/v1 protocol.
type (
	pullRequest struct {
		Worker string `json:"worker"`
		WaitMS int64  `json:"wait_ms"`
	}
	pullResponse struct {
		RunID     string                   `json:"run_id"`
		Task      workflow.Task            `json:"task"`
		Processor *workflow.Processor      `json:"processor"`
		Inputs    map[string]workflow.Data `json:"inputs"`
	}
	reportRequest struct {
		Worker  string                   `json:"worker"`
		RunID   string                   `json:"run_id"`
		Task    workflow.Task            `json:"task"`
		Inputs  map[string]workflow.Data `json:"inputs,omitempty"`
		Outputs map[string]workflow.Data `json:"outputs,omitempty"`
		Error   string                   `json:"error,omitempty"`
		Attempt int                      `json:"attempt,omitempty"`
	}
)

// Handler returns the gateway's HTTP surface, rooted at /cluster/v1/.
func (g *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/cluster/v1/register", g.handleRegister)
	mux.HandleFunc("/cluster/v1/dequeue", g.handleDequeue)
	mux.HandleFunc("/cluster/v1/complete", g.handleComplete)
	mux.HandleFunc("/cluster/v1/fail", g.handleFail)
	mux.HandleFunc("/cluster/v1/retry", g.handleRetry)
	mux.HandleFunc("/cluster/v1/runs", g.handleRuns)
	return mux
}

// ServeHTTP lets the Server be mounted directly.
func (g *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { g.Handler().ServeHTTP(w, r) }

func decode(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return false
	}
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		http.Error(w, fmt.Sprintf("bad request: %v", err), http.StatusBadRequest)
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

func (g *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req pullRequest
	if !decode(w, r, &req) {
		return
	}
	writeJSON(w, map[string]string{"id": g.Stats.RegisterRemote(req.Worker, "")})
}

func (g *Server) handleRuns(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]any{"runs": g.Runs()})
}

func (g *Server) handleDequeue(w http.ResponseWriter, r *http.Request) {
	var req pullRequest
	if !decode(w, r, &req) {
		return
	}
	wait := time.Duration(req.WaitMS) * time.Millisecond
	if wait <= 0 || wait > 30*time.Second {
		wait = 30 * time.Second
	}
	ctx, cancel := context.WithTimeout(r.Context(), wait)
	defer cancel()
	runID, rt, ok := g.dequeueAny(ctx, req.Worker)
	if !ok {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	writeJSON(w, pullResponse{RunID: runID, Task: rt.Task, Processor: rt.Processor, Inputs: rt.Inputs})
}

// handle resolves the run a report belongs to. A missing run is not an
// error: the run finished while the worker was computing (its redelivered
// task completed elsewhere) and the report is moot.
func (g *Server) handle(runID string) *workflow.RunHandle {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.runs[runID]
}

func (g *Server) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req reportRequest
	if !decode(w, r, &req) {
		return
	}
	if h := g.handle(req.RunID); h != nil {
		var taskErr error
		if req.Error != "" {
			taskErr = errors.New(req.Error)
		}
		h.Complete(req.Task, remoteID(req.Worker), req.Inputs, req.Outputs, taskErr)
	}
	w.WriteHeader(http.StatusOK)
}

func (g *Server) handleFail(w http.ResponseWriter, r *http.Request) {
	var req reportRequest
	if !decode(w, r, &req) {
		return
	}
	if h := g.handle(req.RunID); h != nil {
		h.Fail(req.Task, remoteID(req.Worker))
	}
	w.WriteHeader(http.StatusOK)
}

func (g *Server) handleRetry(w http.ResponseWriter, r *http.Request) {
	var req reportRequest
	if !decode(w, r, &req) {
		return
	}
	if h := g.handle(req.RunID); h != nil {
		h.RetryNotify(req.Task, remoteID(req.Worker), req.Attempt)
	}
	w.WriteHeader(http.StatusOK)
}
