package cluster

import (
	"context"
	"errors"
	"hash/fnv"
	"math/rand"
	"sync"
	"time"

	"repro/internal/workflow"
)

// ErrRunInterrupted is how a SchedulerBackend reports an execution that died
// mid-run leaving a resumable prefix (the in-process stand-in for a process
// death, e.g. core's CrashError). The scheduler backs the run off until its
// abandoned lease ages out, then any live peer rescues it.
var ErrRunInterrupted = errors.New("cluster: run interrupted")

// SchedulerBackend is the execution surface a Scheduler drives. core.System
// provides the canonical implementation; the interface exists because core
// already imports cluster, so the dependency must point this way.
//
// Every method that executes a run claims the run's lease first (fenced
// Acquire + history-fence bump) and reads run state only after the claim —
// claim-before-read — so N schedulers calling concurrently resolve to
// exactly one executor per run; the losers get ErrLeaseHeld.
type SchedulerBackend interface {
	// PendingAdmissions lists the admitted-but-unstarted runs, FIFO.
	PendingAdmissions() ([]workflow.Admission, error)
	// ExecuteAdmission claims the admitted run and carries it to a terminal
	// state under the orchestrator's name, removing the admission row once
	// the run can no longer need rescuing. Returns ErrLeaseHeld when a peer
	// owns the run, ErrRunInterrupted when execution died resumably.
	ExecuteAdmission(ctx context.Context, adm workflow.Admission, orchestrator string) error
	// RescueCandidates lists unfinished runs whose ownership lapsed: a lease
	// row exists (the run was orchestrated) but is no longer live. Runs that
	// never took a lease are the startup sweep's business, not the pool's.
	RescueCandidates() ([]string, error)
	// RescueRun claims the lapsed run and resumes it to completion under the
	// orchestrator's name (pure history replay), clearing any admission row.
	RescueRun(ctx context.Context, runID, orchestrator string) error
}

// SchedulerEvent is one observable scheduler action, for harnesses and logs.
type SchedulerEvent struct {
	// Kind is one of claim, complete, rescue, interrupted, lost, error.
	Kind string
	// Orchestrator is the emitting scheduler's name.
	Orchestrator string
	// Run is the subject run ID (empty for scheduler-level errors).
	Run string
	// Token is the fencing token observed after the action, when relevant.
	Token int64
	// Err carries the failure for lost/interrupted/error events.
	Err error
}

// Scheduler is one member of the self-healing orchestrator pool. Each member
// heartbeats its membership row, drains the shared admission queue, and
// rescues runs whose owner died — all arbitrated through the fenced lease
// store, so any number of peers converge without coordination beyond it:
//
//	admitted --claim--> running --complete--> finished
//	    ^                  |crash
//	    |                  v
//	    +---(lease ages out; any peer re-claims via rescue)---+
//
// Claim losses back off exponentially with deterministic per-member jitter
// (anti-herd): when K peers watch the same lapsed run, the winner is decided
// by the fence CAS and the losers spread their retries instead of stampeding
// every TTL.
type Scheduler struct {
	// Name identifies this orchestrator in leases and membership.
	Name string
	// Leases is the shared lease store (membership + run ownership).
	Leases *Store
	// Backend executes and rescues runs.
	Backend SchedulerBackend
	// TTL is the membership lease time-to-live (default 2s); run-lease TTLs
	// are the backend's business.
	TTL time.Duration
	// Poll is the control-loop tick (default TTL/4).
	Poll time.Duration
	// Seed perturbs the jitter stream; the member name is mixed in, so peers
	// sharing a seed still de-correlate.
	Seed int64
	// OnEvent, when set, observes scheduler actions (chaos harness, logs).
	// Called synchronously from the control loop.
	OnEvent func(SchedulerEvent)

	mu       sync.Mutex
	rng      *rand.Rand
	backoff  map[string]*backoffState
	counters map[string]int64
	running  bool
	dead     bool

	ctx    context.Context
	cancel context.CancelFunc
	die    chan struct{}
	wg     sync.WaitGroup
}

// backoffState tracks one resource's claim-retry schedule.
type backoffState struct {
	until time.Time
	delay time.Duration
}

func (s *Scheduler) ttl() time.Duration {
	if s.TTL > 0 {
		return s.TTL
	}
	return 2 * time.Second
}

func (s *Scheduler) poll() time.Duration {
	if s.Poll > 0 {
		return s.Poll
	}
	return s.ttl() / 4
}

// Start joins the pool: the first heartbeat announces membership, then the
// heartbeat and control loops run until Stop or Kill.
func (s *Scheduler) Start() error {
	if s.Name == "" || s.Leases == nil || s.Backend == nil {
		return errors.New("cluster: scheduler needs Name, Leases and Backend")
	}
	s.mu.Lock()
	if s.running || s.dead {
		s.mu.Unlock()
		return errors.New("cluster: scheduler already started")
	}
	h := fnv.New64a()
	h.Write([]byte(s.Name))
	s.rng = rand.New(rand.NewSource(s.Seed ^ int64(h.Sum64())))
	s.backoff = map[string]*backoffState{}
	if s.counters == nil {
		s.counters = map[string]int64{}
	}
	s.ctx, s.cancel = context.WithCancel(context.Background())
	s.die = make(chan struct{})
	s.running = true
	s.mu.Unlock()

	if _, err := s.Leases.Heartbeat(s.Name, s.ttl()); err != nil {
		s.mu.Lock()
		s.running = false
		s.mu.Unlock()
		return err
	}
	s.wg.Add(2)
	go s.heartbeatLoop()
	go s.controlLoop()
	return nil
}

// Stop leaves the pool cleanly: loops wind down, in-flight work finishes,
// and the membership row is expired in place so peers see the departure
// immediately instead of waiting out the TTL.
func (s *Scheduler) Stop() {
	s.mu.Lock()
	if !s.running {
		s.mu.Unlock()
		return
	}
	s.running = false
	close(s.die)
	s.mu.Unlock()
	s.wg.Wait()
	s.cancel()
	s.Leases.Leave(s.Name)
}

// Kill simulates this orchestrator's death: loops stop scheduling and
// heartbeating but nothing is released — the membership row and any held run
// leases age out exactly as a crashed process's would, and peers steal them.
// In-flight backend work is not cancelled (a real death would not have
// politely finalized a run either way; resumable interruption comes from the
// run's own crash path).
func (s *Scheduler) Kill() {
	s.mu.Lock()
	if !s.running {
		s.mu.Unlock()
		return
	}
	s.running = false
	s.dead = true
	close(s.die)
	s.mu.Unlock()
	s.wg.Wait()
}

// Counters snapshots the scheduler's activity counters for metrics.
func (s *Scheduler) Counters() map[string]float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]float64, len(s.counters))
	for k, v := range s.counters {
		out["scheduler."+k] = float64(v)
	}
	return out
}

func (s *Scheduler) count(k string) {
	s.mu.Lock()
	s.counters[k]++
	s.mu.Unlock()
}

func (s *Scheduler) emit(ev SchedulerEvent) {
	ev.Orchestrator = s.Name
	if s.OnEvent != nil {
		s.OnEvent(ev)
	}
}

// sleep waits d or until the scheduler dies; false means dying.
func (s *Scheduler) sleep(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-s.die:
		return false
	case <-t.C:
		return true
	}
}

func (s *Scheduler) heartbeatLoop() {
	defer s.wg.Done()
	interval := s.ttl() / 3
	if interval <= 0 {
		interval = time.Millisecond
	}
	for s.sleep(interval) {
		if _, err := s.Leases.Heartbeat(s.Name, s.ttl()); err != nil {
			// Another incarnation holds our name: observe and keep trying —
			// the row ages out if they die, and claims stay safe regardless
			// (run ownership is arbitrated per run, not per member).
			s.count("heartbeat_errors")
			s.emit(SchedulerEvent{Kind: "error", Err: err})
		}
	}
}

// jittered returns d scaled by a uniform factor in [0.5, 1.5).
func (s *Scheduler) jittered(d time.Duration) time.Duration {
	s.mu.Lock()
	f := 0.5 + s.rng.Float64()
	s.mu.Unlock()
	return time.Duration(float64(d) * f)
}

// backingOff reports whether resource is backing off at now.
func (s *Scheduler) backingOff(resource string, now time.Time) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.backoff[resource]
	return b != nil && now.Before(b.until)
}

// armBackoff arms (or doubles) the resource's backoff, jittered.
func (s *Scheduler) armBackoff(resource string, now time.Time) {
	base := s.poll()
	s.mu.Lock()
	b := s.backoff[resource]
	if b == nil {
		b = &backoffState{delay: base}
		s.backoff[resource] = b
	} else {
		b.delay *= 2
		if max := 16 * base; b.delay > max {
			b.delay = max
		}
	}
	f := 0.5 + s.rng.Float64()
	b.until = now.Add(time.Duration(float64(b.delay) * f))
	s.mu.Unlock()
}

// clearBackoff forgets the resource's schedule (it was won or vanished).
func (s *Scheduler) clearBackoff(resource string) {
	s.mu.Lock()
	delete(s.backoff, resource)
	s.mu.Unlock()
}

func (s *Scheduler) controlLoop() {
	defer s.wg.Done()
	for {
		if !s.sleep(s.jittered(s.poll())) {
			return
		}
		s.count("ticks")
		s.drainAdmissions()
		select {
		case <-s.die:
			return
		default:
		}
		s.rescueLapsed()
	}
}

// shuffled returns a copy of items in this member's own random order: peers
// scanning the same queue start from different ends, so the first claim
// attempts spread across the pool instead of stampeding the head item.
func shuffled[T any](rng *rand.Rand, mu *sync.Mutex, items []T) []T {
	out := make([]T, len(items))
	copy(out, items)
	mu.Lock()
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	mu.Unlock()
	return out
}

func (s *Scheduler) drainAdmissions() {
	pending, err := s.Backend.PendingAdmissions()
	if err != nil {
		s.count("errors")
		s.emit(SchedulerEvent{Kind: "error", Err: err})
		return
	}
	now := time.Now()
	for _, adm := range shuffled(s.rng, &s.mu, pending) {
		select {
		case <-s.die:
			return
		default:
		}
		if s.backingOff(adm.RunID, now) {
			continue
		}
		s.runOne(adm.RunID, "complete", func() error {
			return s.Backend.ExecuteAdmission(s.ctx, adm, s.Name)
		})
		now = time.Now()
	}
}

func (s *Scheduler) rescueLapsed() {
	candidates, err := s.Backend.RescueCandidates()
	if err != nil {
		s.count("errors")
		s.emit(SchedulerEvent{Kind: "error", Err: err})
		return
	}
	now := time.Now()
	for _, runID := range shuffled(s.rng, &s.mu, candidates) {
		select {
		case <-s.die:
			return
		default:
		}
		if s.backingOff(runID, now) {
			continue
		}
		s.runOne(runID, "rescue", func() error {
			return s.Backend.RescueRun(s.ctx, runID, s.Name)
		})
		now = time.Now()
	}
}

// runOne executes one claim-and-run attempt and classifies the outcome.
func (s *Scheduler) runOne(runID, successKind string, do func() error) {
	s.count("claims")
	err := do()
	token := s.Leases.db.FenceToken(FenceName(runID))
	switch {
	case err == nil:
		s.count(successKind + "d")
		s.clearBackoff(runID)
		s.emit(SchedulerEvent{Kind: successKind, Run: runID, Token: token})
	case errors.Is(err, ErrLeaseHeld) || errors.Is(err, ErrLeaseLost):
		// A peer owns the run (or stole it mid-flight): their success is the
		// pool's success. Back off so the next look is staggered.
		s.count("lost")
		s.armBackoff(runID, time.Now())
		s.emit(SchedulerEvent{Kind: "lost", Run: runID, Token: token, Err: err})
	case errors.Is(err, ErrRunInterrupted):
		// The run died resumably under our claim (chaos crash cut). Its lease
		// was abandoned, not released: back off past the expiry and let any
		// live peer — possibly us — rescue it.
		s.count("interrupted")
		s.armBackoff(runID, time.Now())
		s.emit(SchedulerEvent{Kind: "interrupted", Run: runID, Token: token, Err: err})
	default:
		s.count("errors")
		s.armBackoff(runID, time.Now())
		s.emit(SchedulerEvent{Kind: "error", Run: runID, Token: token, Err: err})
	}
}
