package cluster_test

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/workflow"
)

// fanDef is a single fan-out stage: "work" over every element of "in".
func fanDef() *workflow.Definition {
	return &workflow.Definition{
		ID: "wf-fan", Name: "fan",
		Inputs:  []workflow.Port{{Name: "in", Depth: 1}},
		Outputs: []workflow.Port{{Name: "out", Depth: 1}},
		Processors: []*workflow.Processor{
			{Name: "A", Service: "work",
				Inputs:  []workflow.Port{{Name: "x"}},
				Outputs: []workflow.Port{{Name: "y"}}},
		},
		Links: []workflow.Link{
			{Source: workflow.Endpoint{Port: "in"}, Target: workflow.Endpoint{Processor: "A", Port: "x"}},
			{Source: workflow.Endpoint{Processor: "A", Port: "y"}, Target: workflow.Endpoint{Port: "out"}},
		},
	}
}

// workReg registers the "work" service: uppercase with a fixed latency.
// Orchestrator and worker get semantically identical registries — only the
// latency differs, which must never show in the run's outputs.
func workReg(delay time.Duration) *workflow.Registry {
	reg := workflow.NewRegistry()
	reg.Register("work", func(_ context.Context, c workflow.Call) (map[string]workflow.Data, error) {
		time.Sleep(delay)
		return map[string]workflow.Data{"y": workflow.Scalar(strings.ToUpper(c.Input("x").String()))}, nil
	})
	return reg
}

// TestRemoteWorkerExecutesRun attaches an out-of-process worker (real HTTP,
// httptest server) to an engine run through the gateway and checks the
// cross-process contract: the run's outputs are exactly what an all-local
// run produces, the remote worker actually executed a share of the tasks,
// and the registry tracked it under the remote namespace.
func TestRemoteWorkerExecutesRun(t *testing.T) {
	stats := workflow.NewWorkerRegistry()
	gw := cluster.NewServer(stats)
	srv := httptest.NewServer(gw)
	defer srv.Close()

	// The single local worker is slow; the remote one is fast and should
	// win most of the 16 elements over real HTTP round-trips.
	eng := workflow.NewEventEngine(workReg(40 * time.Millisecond))
	eng.Workers = 1
	eng.Stats = stats
	eng.Gateway = gw

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	w := &cluster.Worker{Gateway: srv.URL, Name: "alpha", Registry: workReg(time.Millisecond), Poll: 2 * time.Second}
	done := make(chan struct{})
	go func() { defer close(done); _ = w.Run(ctx) }()

	const n = 16
	items := make([]workflow.Data, n)
	want := make([]string, n)
	for i := range items {
		items[i] = workflow.Scalar(fmt.Sprintf("item%02d", i))
		want[i] = fmt.Sprintf("ITEM%02d", i)
	}
	res, err := eng.Run(ctx, fanDef(), map[string]workflow.Data{"in": workflow.List(items...)})
	if err != nil {
		t.Fatal(err)
	}
	got := make([]string, 0, n)
	for _, d := range res.Outputs["out"].Items() {
		got = append(got, d.String())
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("outputs = %v, want %v", got, want)
	}
	if w.Tasks.Load() == 0 {
		t.Error("remote worker executed no tasks")
	}
	var remote *workflow.WorkerInfo
	for _, info := range stats.Snapshot() {
		if info.Remote {
			i := info
			remote = &i
		}
	}
	if remote == nil {
		t.Fatal("no remote worker in the registry snapshot")
	}
	if remote.ID != "r-alpha" {
		t.Errorf("remote worker ID = %q, want r-alpha", remote.ID)
	}

	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("worker did not stop on cancel")
	}
}

// TestGatewayReportAfterRunFinished pins the late-report contract: a report
// for a run the gateway no longer tracks is a 200 no-op, not an error — the
// run finished while the worker was computing and the redelivered task's
// result already folded in elsewhere.
func TestGatewayReportAfterRunFinished(t *testing.T) {
	gw := cluster.NewServer(workflow.NewWorkerRegistry())
	srv := httptest.NewServer(gw)
	defer srv.Close()

	if got := gw.Runs(); len(got) != 0 {
		t.Fatalf("fresh gateway lists runs: %v", got)
	}
	resp, err := http.Post(srv.URL+"/cluster/v1/complete", "application/json",
		strings.NewReader(`{"worker":"late","run_id":"gone","task":{"ID":"gone/A#-1"},"outputs":{}}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("late report status = %s, want 200 no-op", resp.Status)
	}
}
