package cluster

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/workflow"
)

// fakeBackend is an in-memory SchedulerBackend that arbitrates execution
// through the real lease store — claim-before-read, exactly like core — so
// scheduler tests exercise the genuine contention paths without a full
// detection system.
type fakeBackend struct {
	leases *Store
	ttl    time.Duration

	mu          sync.Mutex
	pending     map[string]workflow.Admission
	crashOnce   map[string]bool // interrupted on first execution attempt
	interrupted map[string]bool // lease abandoned, awaiting rescue
	executed    map[string][]string
}

func newFakeBackend(leases *Store, ttl time.Duration) *fakeBackend {
	return &fakeBackend{
		leases: leases, ttl: ttl,
		pending:     map[string]workflow.Admission{},
		crashOnce:   map[string]bool{},
		interrupted: map[string]bool{},
		executed:    map[string][]string{},
	}
}

func (b *fakeBackend) admit(runID string, crash bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.pending[runID] = workflow.Admission{RunID: runID}
	if crash {
		b.crashOnce[runID] = true
	}
}

func (b *fakeBackend) PendingAdmissions() ([]workflow.Admission, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]workflow.Admission, 0, len(b.pending))
	for _, a := range b.pending {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].RunID < out[j].RunID })
	return out, nil
}

func (b *fakeBackend) ExecuteAdmission(_ context.Context, adm workflow.Admission, orch string) error {
	l, err := b.leases.Acquire(adm.RunID, orch, b.ttl)
	if err != nil {
		return err
	}
	b.mu.Lock()
	if _, still := b.pending[adm.RunID]; !still {
		// Claim-before-read: we won an expired lease on a run a peer already
		// finished. Nothing to execute.
		b.mu.Unlock()
		return b.leases.Release(l)
	}
	if b.interrupted[adm.RunID] {
		// An earlier attempt died mid-run: executing the admission now IS the
		// resume (core converges both paths on history replay).
		delete(b.interrupted, adm.RunID)
		delete(b.pending, adm.RunID)
		b.executed[adm.RunID] = append(b.executed[adm.RunID], orch)
		b.mu.Unlock()
		return b.leases.Release(l)
	}
	if b.crashOnce[adm.RunID] {
		delete(b.crashOnce, adm.RunID)
		b.interrupted[adm.RunID] = true
		b.mu.Unlock()
		// Abandon: the lease ages out like a dead process's.
		return fmt.Errorf("%w: chaos cut", ErrRunInterrupted)
	}
	delete(b.pending, adm.RunID)
	b.executed[adm.RunID] = append(b.executed[adm.RunID], orch)
	b.mu.Unlock()
	return b.leases.Release(l)
}

func (b *fakeBackend) RescueCandidates() ([]string, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := time.Now()
	var out []string
	for id := range b.interrupted {
		if l, ok := b.leases.Get(id); ok && !l.Live(now) {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out, nil
}

func (b *fakeBackend) RescueRun(_ context.Context, runID, orch string) error {
	l, err := b.leases.Acquire(runID, orch, b.ttl)
	if err != nil {
		return err
	}
	b.mu.Lock()
	if !b.interrupted[runID] {
		b.mu.Unlock()
		return b.leases.Release(l)
	}
	delete(b.interrupted, runID)
	delete(b.pending, runID)
	b.executed[runID] = append(b.executed[runID], orch)
	b.mu.Unlock()
	return b.leases.Release(l)
}

func (b *fakeBackend) done() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.pending) == 0 && len(b.interrupted) == 0
}

func (b *fakeBackend) executions() map[string][]string {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make(map[string][]string, len(b.executed))
	for k, v := range b.executed {
		out[k] = append([]string(nil), v...)
	}
	return out
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestSchedulerMembership(t *testing.T) {
	store, _ := leaseStore(t)
	be := newFakeBackend(store, 50*time.Millisecond)
	a := &Scheduler{Name: "orch-a", Leases: store, Backend: be, TTL: 60 * time.Millisecond, Seed: 1}
	b := &Scheduler{Name: "orch-b", Leases: store, Backend: be, TTL: 60 * time.Millisecond, Seed: 1}
	if err := a.Start(); err != nil {
		t.Fatal(err)
	}
	if err := b.Start(); err != nil {
		t.Fatal(err)
	}
	members := store.Members(time.Now())
	if len(members) != 2 || members[0].Name != "orch-a" || members[1].Name != "orch-b" {
		t.Fatalf("members = %+v, want orch-a + orch-b", members)
	}
	for _, m := range members {
		if !m.Live {
			t.Fatalf("member %s not live", m.Name)
		}
	}

	// A clean Stop leaves immediately: the row expires in place.
	b.Stop()
	for _, m := range store.Members(time.Now()) {
		if m.Name == "orch-b" && m.Live {
			t.Fatal("stopped member still live")
		}
	}

	// A kill leaves the row to age out: live until the TTL passes, then dead
	// — while the survivor keeps renewing.
	a.Kill()
	waitFor(t, time.Second, func() bool {
		for _, m := range store.Members(time.Now()) {
			if m.Name == "orch-a" {
				return !m.Live
			}
		}
		return false
	}, "killed member to age out")
}

// TestSchedulerClaimRace is the arbitration contract under -race: N peers
// drain the same admission queue concurrently and every run executes exactly
// once — the lease CAS picks the winner, losers observe ErrLeaseHeld.
func TestSchedulerClaimRace(t *testing.T) {
	store, _ := leaseStore(t)
	be := newFakeBackend(store, 80*time.Millisecond)
	const runs = 12
	for i := 0; i < runs; i++ {
		be.admit(fmt.Sprintf("run-%06d", i), false)
	}
	var pool []*Scheduler
	for i := 0; i < 3; i++ {
		s := &Scheduler{
			Name: fmt.Sprintf("orch-%d", i), Leases: store, Backend: be,
			TTL: 80 * time.Millisecond, Poll: 5 * time.Millisecond, Seed: int64(i),
		}
		if err := s.Start(); err != nil {
			t.Fatal(err)
		}
		pool = append(pool, s)
	}
	defer func() {
		for _, s := range pool {
			s.Stop()
		}
	}()
	waitFor(t, 10*time.Second, be.done, "all admissions drained")
	for id, orchs := range be.executions() {
		if len(orchs) != 1 {
			t.Fatalf("run %s executed %d times by %v", id, len(orchs), orchs)
		}
	}
	if n := len(be.executions()); n != runs {
		t.Fatalf("executed %d runs, want %d", n, runs)
	}
}

// TestSchedulerRescue covers the self-healing loop: a run interrupted
// mid-execution (lease abandoned) is rescued by a surviving peer after the
// lease ages out, even when the orchestrator that claimed it first is dead.
func TestSchedulerRescue(t *testing.T) {
	store, _ := leaseStore(t)
	be := newFakeBackend(store, 60*time.Millisecond)
	be.admit("run-000001", true) // first executor is interrupted
	be.admit("run-000002", false)

	a := &Scheduler{Name: "orch-a", Leases: store, Backend: be,
		TTL: 60 * time.Millisecond, Poll: 5 * time.Millisecond, Seed: 7}
	b := &Scheduler{Name: "orch-b", Leases: store, Backend: be,
		TTL: 60 * time.Millisecond, Poll: 5 * time.Millisecond, Seed: 8}
	var mu sync.Mutex
	var interruptedBy string
	hook := func(ev SchedulerEvent) {
		if ev.Kind == "interrupted" {
			mu.Lock()
			if interruptedBy == "" {
				interruptedBy = ev.Orchestrator
			}
			mu.Unlock()
		}
	}
	a.OnEvent, b.OnEvent = hook, hook
	if err := a.Start(); err != nil {
		t.Fatal(err)
	}
	if err := b.Start(); err != nil {
		t.Fatal(err)
	}
	defer a.Stop()
	defer b.Stop()

	// As soon as one orchestrator has been interrupted mid-run, kill it: the
	// rescue must come from the survivor or not at all.
	waitFor(t, 10*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return interruptedBy != ""
	}, "a run to be interrupted")
	mu.Lock()
	victim := interruptedBy
	mu.Unlock()
	killed := a
	survivor := b
	if victim == "orch-b" {
		killed, survivor = b, a
	}
	killed.Kill()

	waitFor(t, 10*time.Second, be.done, "survivor to rescue and drain everything")
	for id, orchs := range be.executions() {
		if len(orchs) != 1 {
			t.Fatalf("run %s executed %d times by %v", id, len(orchs), orchs)
		}
	}
	if got := be.executions()["run-000001"][0]; got != survivor.Name {
		t.Fatalf("rescue executed by %s, want survivor %s", got, survivor.Name)
	}
	// The rescued run's fence token moved past the abandoned claim: token 1
	// was the interrupted claim, the rescue stole at ≥2.
	if l, ok := store.Get("run-000001"); !ok || l.Token < 2 {
		t.Fatalf("rescued lease = %+v, want token ≥ 2", l)
	}
}
