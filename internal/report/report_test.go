package report

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/curation"
	"repro/internal/envsource"
	"repro/internal/fnjv"
	"repro/internal/geo"
	"repro/internal/storage"
	"repro/internal/taxonomy"
)

func buildEverything(t *testing.T) (*core.System, *taxonomy.Generated, *core.DetectionOutcome, *curation.PipelineReport, []core.QualitySample) {
	t.Helper()
	sys, err := core.Open(t.TempDir(), core.Options{Sync: storage.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })
	taxa, err := taxonomy.Generate(taxonomy.GeneratorSpec{Species: 100, OutdatedFraction: 0.07, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	gaz := geo.SyntheticGazetteer(10, 13)
	env := envsource.NewSimulator()
	col, err := fnjv.Generate(fnjv.CollectionSpec{Records: 500, Seed: 13}, taxa, gaz, env)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Records.PutAll(col.Records); err != nil {
		t.Fatal(err)
	}
	pipeline, err := (&curation.Pipeline{
		Checklist: taxa.Checklist,
		Gazetteer: gaz,
		EnvSource: env,
		Ledger:    sys.Ledger,
		Spatial:   &geo.OutlierParams{},
	}).Run(context.Background(), sys.Records)
	if err != nil {
		t.Fatal(err)
	}
	mon, err := core.NewMonitor(sys, taxa.Checklist, core.RunOptions{SkipLedger: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := mon.ReassessOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	outcome, err := sys.RunDetection(context.Background(), taxa.Checklist, core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return sys, taxa, outcome, pipeline, mon.History()
}

func TestFullReport(t *testing.T) {
	sys, taxa, outcome, pipeline, samples := buildEverything(t)
	now := time.Date(2014, 1, 15, 10, 0, 0, 0, time.UTC)
	a, facts, err := sys.AssessCollection(taxa.Checklist, now.AddDate(0, -3, 0), now)
	if err != nil {
		t.Fatal(err)
	}
	md := New("FNJV curation report", now).
		AddFacts(facts).
		AddPipeline(pipeline).
		AddDetection(outcome).
		AddAssessment("Species-name quality (§IV.C)", outcome.Assessment).
		AddAssessment("Collection health", a).
		AddSpatial(pipeline.Spatial, 5).
		AddTrend(samples).
		Markdown()

	for _, want := range []string{
		"# FNJV curation report",
		"_Generated 2014-01-15",
		"## Collection facts",
		"| records | 500 |",
		"## Curation pipeline",
		"| clean |",
		"| geocode |",
		"## Outdated species name detection",
		"| distinct species names analyzed | 100 |",
		"### Updated species names",
		"## Species-name quality (§IV.C)",
		"| accuracy |",
		"utility **0.9",
		"(accept)",
		"## Collection health",
		"| completeness |",
		"## Stage-2 spatial audit",
		"## Quality over time",
		"Net accuracy change",
	} {
		if !strings.Contains(md, want) {
			t.Errorf("report missing %q", want)
		}
	}
	// Markdown tables are well formed: every table row line has balanced pipes.
	for _, line := range strings.Split(md, "\n") {
		if strings.HasPrefix(line, "|") && !strings.HasSuffix(line, "|") {
			t.Errorf("unterminated table row: %q", line)
		}
	}
}

func TestTrendEmptyAndDegrading(t *testing.T) {
	md := New("r", time.Unix(0, 0).UTC()).AddTrend(nil).Markdown()
	if !strings.Contains(md, "No reassessments") {
		t.Error("empty trend text missing")
	}
	samples := []core.QualitySample{
		{RunID: "run-1", At: time.Unix(0, 0).UTC(), Accuracy: 0.93, Utility: 0.94, Outdated: 7},
		{RunID: "run-2", At: time.Unix(3600, 0).UTC(), Accuracy: 0.90, Utility: 0.92, Outdated: 10},
	}
	md = New("r", time.Unix(0, 0).UTC()).AddTrend(samples).Markdown()
	if !strings.Contains(md, "**-0.0300**") {
		t.Errorf("delta missing:\n%s", md)
	}
	if !strings.Contains(md, "Quality is degrading") {
		t.Error("degradation warning missing")
	}
}
