// Package report renders curation and quality results as a Markdown
// document — the deliverable the paper describes showing to expert users
// ("these results were shown to expert users, helping them to better
// understand their data"). A report composes sections from the detection
// outcome, quality assessments, the curation pipeline, the spatial audit and
// the monitor's quality time series.
package report

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/curation"
	"repro/internal/quality"
)

// Builder accumulates sections and renders Markdown.
type Builder struct {
	title    string
	at       time.Time
	sections []string
}

// New starts a report.
func New(title string, at time.Time) *Builder {
	return &Builder{title: title, at: at}
}

func (b *Builder) add(heading, body string) *Builder {
	b.sections = append(b.sections, "## "+heading+"\n\n"+strings.TrimRight(body, "\n")+"\n")
	return b
}

// AddDetection renders the Fig. 2 block.
func (b *Builder) AddDetection(o *core.DetectionOutcome) *Builder {
	var s strings.Builder
	fmt.Fprintf(&s, "| metric | value |\n|---|---|\n")
	fmt.Fprintf(&s, "| run | `%s` (workflow v%d) |\n", o.RunID, o.WorkflowVersion)
	fmt.Fprintf(&s, "| records processed | %d |\n", o.RecordsProcessed)
	fmt.Fprintf(&s, "| distinct species names analyzed | %d |\n", o.DistinctNames)
	fmt.Fprintf(&s, "| outdated species names | %d (%.0f%%) |\n", o.Outdated, 100*o.OutdatedFraction())
	fmt.Fprintf(&s, "| unknown to the authority | %d |\n", o.Unknown)
	fmt.Fprintf(&s, "| authority unavailable for | %d |\n", o.Unavailable)
	fmt.Fprintf(&s, "| per-record updates (pending review) | %d |\n", o.UpdatesCreated)
	fmt.Fprintf(&s, "| elapsed | %s |\n", o.Elapsed.Round(time.Millisecond))
	if len(o.Renames) > 0 {
		fmt.Fprintf(&s, "\n### Updated species names\n\n| outdated | current |\n|---|---|\n")
		names := make([]string, 0, len(o.Renames))
		for n := range o.Renames {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Fprintf(&s, "| *%s* | *%s* |\n", n, o.Renames[n])
		}
	}
	return b.add("Outdated species name detection", s.String())
}

// AddAssessment renders one quality assessment as a table.
func (b *Builder) AddAssessment(heading string, a *quality.Assessment) *Builder {
	var s strings.Builder
	fmt.Fprintf(&s, "Goal **%s**, subject **%s** — utility **%.3f** (%s).\n\n",
		a.Goal, a.Subject, a.Utility, verdict(a.Accepted))
	fmt.Fprintf(&s, "| dimension | score |\n|---|---|\n")
	dims := make([]string, 0, len(a.Dimensions))
	for d := range a.Dimensions {
		dims = append(dims, d)
	}
	sort.Strings(dims)
	for _, d := range dims {
		fmt.Fprintf(&s, "| %s | %.3f |\n", d, a.Dimensions[d])
	}
	if len(a.Missing) > 0 {
		fmt.Fprintf(&s, "\nUnavailable dimensions: %s.\n", strings.Join(a.Missing, ", "))
	}
	fmt.Fprintf(&s, "\n<details><summary>metric detail</summary>\n\n| metric | dimension | score | note |\n|---|---|---|---|\n")
	for _, r := range a.Results {
		if r.Err != "" {
			fmt.Fprintf(&s, "| %s | %s | — | unavailable: %s |\n", r.Metric, r.Dimension, r.Err)
			continue
		}
		fmt.Fprintf(&s, "| %s | %s | %.3f | %s |\n", r.Metric, r.Dimension, r.Score.Value, r.Score.Detail)
	}
	s.WriteString("\n</details>\n")
	return b.add(heading, s.String())
}

func verdict(ok bool) string {
	if ok {
		return "accept"
	}
	return "reject"
}

// AddPipeline renders a stage-by-stage curation summary.
func (b *Builder) AddPipeline(r *curation.PipelineReport) *Builder {
	var s strings.Builder
	fmt.Fprintf(&s, "| stage | result |\n|---|---|\n")
	if r.Clean != nil {
		fmt.Fprintf(&s, "| clean | %d checked, %d repaired, %d flagged |\n",
			r.Clean.RecordsChecked, r.Clean.Repaired, r.Clean.FlaggedOnly)
	}
	if r.Geocode != nil {
		fmt.Fprintf(&s, "| geocode | %d added, %d ambiguous (curator queue), %d unknown |\n",
			r.Geocode.Geocoded, r.Geocode.Ambiguous, r.Geocode.Unknown)
	}
	if r.GapFill != nil {
		fmt.Fprintf(&s, "| gap-fill | %d environmental fields completed |\n", r.GapFill.Filled)
	}
	if r.Detect != nil {
		fmt.Fprintf(&s, "| detect | %d/%d names outdated (%.0f%%) |\n",
			r.Detect.OutdatedNames, r.Detect.DistinctNames, 100*r.Detect.OutdatedFraction())
	}
	if r.Review != nil {
		fmt.Fprintf(&s, "| review | %d approved, %d rejected, %d deferred |\n",
			r.Review.Approved, r.Review.Rejected, r.Review.Deferred)
	}
	if r.Spatial != nil {
		fmt.Fprintf(&s, "| spatial audit | %d anomalies over %d species |\n",
			len(r.Spatial.Flagged), r.Spatial.SpeciesTested)
	}
	fmt.Fprintf(&s, "| elapsed | %s |\n", r.Elapsed.Round(time.Millisecond))
	return b.add("Curation pipeline", s.String())
}

// AddSpatial renders the top anomalies of a stage-2 audit.
func (b *Builder) AddSpatial(r *curation.SpatialReport, top int) *Builder {
	var s strings.Builder
	fmt.Fprintf(&s, "%d georeferenced records; %d species tested; %d anomalies flagged.\n",
		r.RecordsWithCoords, r.SpeciesTested, len(r.Flagged))
	if len(r.Flagged) > 0 {
		fmt.Fprintf(&s, "\n| record | species | distance | threshold | range area |\n|---|---|---|---|---|\n")
		if top <= 0 || top > len(r.Flagged) {
			top = len(r.Flagged)
		}
		for _, o := range r.Flagged[:top] {
			area := "—"
			if sr, ok := r.RangeOf(o.Species); ok {
				area = fmt.Sprintf("%.0f km²", sr.AreaKm2)
			}
			fmt.Fprintf(&s, "| %s | *%s* | %.0f km | %.0f km | %s |\n",
				o.RecordID, o.Species, o.DistanceKm, o.ThresholdKm, area)
		}
	}
	return b.add("Stage-2 spatial audit", s.String())
}

// AddTrend renders the monitor's quality time series.
func (b *Builder) AddTrend(samples []core.QualitySample) *Builder {
	var s strings.Builder
	if len(samples) == 0 {
		s.WriteString("No reassessments recorded yet.\n")
		return b.add("Quality over time", s.String())
	}
	fmt.Fprintf(&s, "| run | at | accuracy | utility | outdated |\n|---|---|---|---|---|\n")
	for _, q := range samples {
		fmt.Fprintf(&s, "| `%s` | %s | %.4f | %.4f | %d |\n",
			q.RunID, q.At.Format("2006-01-02 15:04"), q.Accuracy, q.Utility, q.Outdated)
	}
	first, last := samples[0], samples[len(samples)-1]
	fmt.Fprintf(&s, "\nNet accuracy change over %d samples: **%+.4f**.\n",
		len(samples), last.Accuracy-first.Accuracy)
	if last.Accuracy < first.Accuracy {
		s.WriteString("Quality is degrading — taxonomic knowledge has evolved; schedule a curation pass.\n")
	}
	return b.add("Quality over time", s.String())
}

// AddFacts renders collection statistics.
func (b *Builder) AddFacts(facts core.CollectionFacts) *Builder {
	var s strings.Builder
	pct := func(n int) string {
		if facts.Records == 0 {
			return "0%"
		}
		return fmt.Sprintf("%.1f%%", 100*float64(n)/float64(facts.Records))
	}
	fmt.Fprintf(&s, "| fact | count | share |\n|---|---|---|\n")
	fmt.Fprintf(&s, "| records | %d | |\n", facts.Records)
	fmt.Fprintf(&s, "| with full identification | %d | %s |\n", facts.WithIdentification, pct(facts.WithIdentification))
	fmt.Fprintf(&s, "| with gazetteer place | %d | %s |\n", facts.WithWhere, pct(facts.WithWhere))
	fmt.Fprintf(&s, "| georeferenced | %d | %s |\n", facts.WithCoordinates, pct(facts.WithCoordinates))
	fmt.Fprintf(&s, "| with environmental fields | %d | %s |\n", facts.WithEnvironment, pct(facts.WithEnvironment))
	fmt.Fprintf(&s, "| genus/binomial mismatches | %d | %s |\n", facts.GenusMismatch, pct(facts.GenusMismatch))
	fmt.Fprintf(&s, "| classification mismatches | %d | %s |\n", facts.ClassificationMismatch, pct(facts.ClassificationMismatch))
	fmt.Fprintf(&s, "| temporal domain violations | %d | %s |\n", facts.TimeDomainViolation, pct(facts.TimeDomainViolation))
	return b.add("Collection facts", s.String())
}

// Markdown renders the full document.
func (b *Builder) Markdown() string {
	var s strings.Builder
	fmt.Fprintf(&s, "# %s\n\n_Generated %s._\n\n", b.title, b.at.Format("2006-01-02 15:04 MST"))
	for _, sec := range b.sections {
		s.WriteString(sec)
		s.WriteString("\n")
	}
	return s.String()
}
