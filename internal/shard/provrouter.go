package shard

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/opm"
	"repro/internal/provenance"
	"repro/internal/workflow"
)

// ProvenanceRouter implements provenance.Repo across the cluster. A run's
// entire state — run row, nodes, edges, history — lives on the shard that
// owns its run ID, so every per-run operation is a single-shard call;
// run listings and lineage fan-out scatter-gather and merge under the same
// ordering and cursor contracts as the single Repository.
type ProvenanceRouter struct {
	c *Cluster
	// views pins one read-only repository view per shard when this router is
	// itself a snapshot (viewErrs holds the per-shard error for shards that
	// were down at snapshot time). Nil on the live router.
	views    []*provenance.Repository
	viewErrs []error
}

var _ provenance.Repo = (*ProvenanceRouter)(nil)

// repoAt resolves shard i's repository: the pinned view on snapshots, the
// live repository otherwise.
func (p *ProvenanceRouter) repoAt(i int) (*provenance.Repository, error) {
	if p.views != nil {
		if p.viewErrs[i] != nil {
			return nil, p.viewErrs[i]
		}
		return p.views[i], nil
	}
	return p.c.shards[i].provRepo()
}

// ownerRepo resolves the repository owning runID.
func (p *ProvenanceRouter) ownerRepo(runID string) (*provenance.Repository, *Shard, error) {
	sh := p.c.owner(runID)
	repo, err := p.repoAt(sh.id)
	return repo, sh, err
}

// Snapshot implements provenance.Repo: a router over one pinned view per
// shard. Shards down at snapshot time stay erroring in the snapshot.
func (p *ProvenanceRouter) Snapshot() provenance.Repo {
	n := len(p.c.shards)
	s := &ProvenanceRouter{c: p.c, views: make([]*provenance.Repository, n), viewErrs: make([]error, n)}
	for i := range p.c.shards {
		repo, err := p.repoAt(i)
		if err != nil {
			s.viewErrs[i] = err
			continue
		}
		s.views[i] = repo.View()
	}
	return s
}

// RunWriter implements provenance.Repo with a lazily-routed writer: deltas
// buffer until the first one names the run, then stream to the owning
// shard's BatchWriter (see routedWriter).
func (p *ProvenanceRouter) RunWriter(opts provenance.BatchWriterOptions) (provenance.RunWriter, error) {
	return &routedWriter{router: p, opts: opts}, nil
}

// ResumeRunWriter implements provenance.Repo; the run ID is known, so the
// writer routes immediately.
func (p *ProvenanceRouter) ResumeRunWriter(runID string, opts provenance.BatchWriterOptions) (provenance.RunWriter, error) {
	repo, sh, err := p.ownerRepo(runID)
	if err != nil {
		sh.note(err)
		return nil, err
	}
	w, err := repo.NewResumeWriter(runID, opts)
	sh.note(err)
	if err != nil {
		return nil, err
	}
	return w, nil
}

// Store implements provenance.Repo on the shard owning info.RunID.
func (p *ProvenanceRouter) Store(info provenance.RunInfo, g *opm.Graph) error {
	repo, sh, err := p.ownerRepo(info.RunID)
	if err != nil {
		sh.note(err)
		return err
	}
	err = repo.Store(info, g)
	sh.note(err)
	return err
}

// Run implements provenance.Repo.
func (p *ProvenanceRouter) Run(runID string) (provenance.RunInfo, error) {
	repo, sh, err := p.ownerRepo(runID)
	if err != nil {
		sh.note(err)
		return provenance.RunInfo{}, err
	}
	info, err := repo.Run(runID)
	sh.note(err)
	return info, err
}

// Runs implements provenance.Repo, merging per-shard answers in run-ID
// order.
func (p *ProvenanceRouter) Runs(workflowID string) ([]provenance.RunInfo, error) {
	pages, err := gather(p.c, "provenance.Runs", func(sh *Shard) ([]provenance.RunInfo, error) {
		repo, rerr := p.repoAt(sh.id)
		if rerr != nil {
			return nil, rerr
		}
		return repo.Runs(workflowID)
	})
	if err != nil {
		return nil, err
	}
	return mergeRuns(pages), nil
}

// AllRuns implements provenance.Repo. The interface carries no error, so
// shards that fail mid-gather contribute nothing; use RunsPage for listings
// that must surface shard loss.
func (p *ProvenanceRouter) AllRuns() []provenance.RunInfo {
	pages, _ := gather(p.c, "provenance.AllRuns", func(sh *Shard) ([]provenance.RunInfo, error) {
		repo, rerr := p.repoAt(sh.id)
		if rerr != nil {
			return nil, rerr
		}
		return repo.AllRuns(), nil
	})
	return mergeRuns(pages)
}

// RunsPage implements provenance.Repo: every shard answers the same
// (after, limit) page, the merge keeps run-ID order, and the next cursor is
// the last emitted run ID — exactly the single-repository contract, so
// cursors stay valid and non-duplicating while shards take writes.
func (p *ProvenanceRouter) RunsPage(after string, limit int) ([]provenance.RunInfo, string, error) {
	type page struct {
		runs []provenance.RunInfo
		next string
	}
	pages, err := gather(p.c, "provenance.RunsPage", func(sh *Shard) (page, error) {
		repo, rerr := p.repoAt(sh.id)
		if rerr != nil {
			return page{}, rerr
		}
		runs, next, perr := repo.RunsPage(after, limit)
		return page{runs: runs, next: next}, perr
	})
	if err != nil {
		return nil, "", err
	}
	var all []provenance.RunInfo
	more := false
	for _, pg := range pages {
		all = append(all, pg.runs...)
		if pg.next != "" {
			more = true
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].RunID < all[j].RunID })
	if limit > 0 && len(all) > limit {
		all = all[:limit]
		more = true
	}
	next := ""
	if more && len(all) > 0 {
		next = all[len(all)-1].RunID
	}
	return all, next, nil
}

// NodesPage implements provenance.Repo.
func (p *ProvenanceRouter) NodesPage(runID, after string, limit int) ([]*opm.Node, string, error) {
	repo, sh, err := p.ownerRepo(runID)
	if err != nil {
		sh.note(err)
		return nil, "", err
	}
	nodes, next, err := repo.NodesPage(runID, after, limit)
	sh.note(err)
	return nodes, next, err
}

// EdgesPage implements provenance.Repo.
func (p *ProvenanceRouter) EdgesPage(runID string, after, limit int) ([]opm.Edge, int, error) {
	repo, sh, err := p.ownerRepo(runID)
	if err != nil {
		sh.note(err)
		return nil, 0, err
	}
	edges, next, err := repo.EdgesPage(runID, after, limit)
	sh.note(err)
	return edges, next, err
}

// Graph implements provenance.Repo.
func (p *ProvenanceRouter) Graph(runID string) (*opm.Graph, error) {
	repo, sh, err := p.ownerRepo(runID)
	if err != nil {
		sh.note(err)
		return nil, err
	}
	g, err := repo.Graph(runID)
	sh.note(err)
	return g, err
}

// UnionGraph implements provenance.Repo with the same merge semantics as the
// single repository, fetching each run's graph from its owner.
func (p *ProvenanceRouter) UnionGraph(runIDs ...string) (*opm.Graph, error) {
	union := opm.NewGraph()
	for _, id := range runIDs {
		g, err := p.Graph(id)
		if err != nil {
			return nil, err
		}
		if err := union.Merge(g); err != nil {
			return nil, fmt.Errorf("provenance: merging run %q: %w", id, err)
		}
	}
	return union, nil
}

// QualityOfProcess implements provenance.Repo.
func (p *ProvenanceRouter) QualityOfProcess(runID, processor string) (map[string]string, error) {
	repo, sh, err := p.ownerRepo(runID)
	if err != nil {
		sh.note(err)
		return nil, err
	}
	q, err := repo.QualityOfProcess(runID, processor)
	sh.note(err)
	return q, err
}

// RunsUsingArtifact implements provenance.Repo: lineage fan-out across every
// shard, merged sorted and deduplicated.
func (p *ProvenanceRouter) RunsUsingArtifact(artifactID string) ([]string, error) {
	return p.lineageFanOut("provenance.RunsUsingArtifact", func(repo *provenance.Repository) ([]string, error) {
		return repo.RunsUsingArtifact(artifactID)
	})
}

// RunsGeneratingArtifact implements provenance.Repo.
func (p *ProvenanceRouter) RunsGeneratingArtifact(artifactID string) ([]string, error) {
	return p.lineageFanOut("provenance.RunsGeneratingArtifact", func(repo *provenance.Repository) ([]string, error) {
		return repo.RunsGeneratingArtifact(artifactID)
	})
}

func (p *ProvenanceRouter) lineageFanOut(op string, fn func(*provenance.Repository) ([]string, error)) ([]string, error) {
	lists, err := gather(p.c, op, func(sh *Shard) ([]string, error) {
		repo, rerr := p.repoAt(sh.id)
		if rerr != nil {
			return nil, rerr
		}
		return fn(repo)
	})
	if err != nil {
		return nil, err
	}
	var all []string
	for _, l := range lists {
		all = append(all, l...)
	}
	sort.Strings(all)
	out := all[:0]
	for i, id := range all {
		if i == 0 || id != all[i-1] {
			out = append(out, id)
		}
	}
	return out, nil
}

// History implements provenance.Repo.
func (p *ProvenanceRouter) History(runID string) ([]workflow.HistoryEvent, error) {
	repo, sh, err := p.ownerRepo(runID)
	if err != nil {
		sh.note(err)
		return nil, err
	}
	evs, err := repo.History(runID)
	sh.note(err)
	return evs, err
}

// UnfinishedRuns implements provenance.Repo.
func (p *ProvenanceRouter) UnfinishedRuns() ([]provenance.RunInfo, error) {
	pages, err := gather(p.c, "provenance.UnfinishedRuns", func(sh *Shard) ([]provenance.RunInfo, error) {
		repo, rerr := p.repoAt(sh.id)
		if rerr != nil {
			return nil, rerr
		}
		return repo.UnfinishedRuns()
	})
	if err != nil {
		return nil, err
	}
	return mergeRuns(pages), nil
}

// AdvanceRunFence implements provenance.Repo on the shard owning the run's
// history rows, so the fence sits in the same storage the fenced writer
// commits to.
func (p *ProvenanceRouter) AdvanceRunFence(runID string, token int64) error {
	repo, sh, err := p.ownerRepo(runID)
	if err != nil {
		sh.note(err)
		return err
	}
	err = repo.AdvanceRunFence(runID, token)
	sh.note(err)
	return err
}

// RunFenceToken implements provenance.Repo; 0 when the owning shard is down
// (the caller cannot write there anyway).
func (p *ProvenanceRouter) RunFenceToken(runID string) int64 {
	repo, sh, err := p.ownerRepo(runID)
	if err != nil {
		sh.note(err)
		return 0
	}
	return repo.RunFenceToken(runID)
}

// MarkAbandoned implements provenance.Repo.
func (p *ProvenanceRouter) MarkAbandoned(runID, reason string, at time.Time) error {
	repo, sh, err := p.ownerRepo(runID)
	if err != nil {
		sh.note(err)
		return err
	}
	err = repo.MarkAbandoned(runID, reason, at)
	sh.note(err)
	return err
}

// mergeRuns flattens per-shard run lists into one run-ID-ordered list.
func mergeRuns(pages [][]provenance.RunInfo) []provenance.RunInfo {
	var all []provenance.RunInfo
	for _, pg := range pages {
		all = append(all, pg...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].RunID < all[j].RunID })
	return all
}
