package shard

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/archive"
	"repro/internal/fnjv"
	"repro/internal/provenance"
	"repro/internal/storage"
	"repro/internal/telemetry"
)

// Options configures Open.
type Options struct {
	// Shards is the shard count on first open; 0 adopts the persisted map.
	Shards int
	// VNodes is the virtual-point count per shard (DefaultVNodes if 0).
	VNodes int
	// Sync is the WAL policy of every shard database.
	Sync storage.SyncPolicy
	// CommitDelay is forwarded to every shard database's WAL (simulated
	// device commit latency; see storage.Options.CommitDelay).
	CommitDelay time.Duration
	// Deadline bounds each scatter-gather leg (default 2s).
	Deadline time.Duration
	// ArchiveReplicas is the replica-volume count of each shard's AIP store
	// (default 2 — the minimum at which self-repair means anything).
	ArchiveReplicas int
}

// Cluster is a set of shard instances under one persisted map, plus the
// routers that make them look like one storage/provenance/trace/archive
// layer. All routers are safe for concurrent use.
type Cluster struct {
	dir      string
	m        Map
	ring     *Ring
	deadline time.Duration
	shards   []*Shard

	records *RecordRouter
	prov    *ProvenanceRouter
	traces  *TraceRouter
	archive *ArchiveRouter
}

// Shard is one partition: its own database (records, provenance, traces,
// history) plus a replicated AIP store and scrubber. The database-backed
// components are swapped atomically on Stop/Rejoin; the AIP store lives on
// the filesystem and survives both.
type Shard struct {
	id    int
	dir   string
	sync  storage.SyncPolicy
	delay time.Duration

	arch     *archive.Store
	scrubber *archive.Scrubber

	mu    sync.RWMutex
	down  bool
	db    *storage.DB
	recs  *fnjv.Store
	prov  *provenance.Repository
	spans *telemetry.SpanStore

	ops  atomic.Int64
	errs atomic.Int64
}

// Open opens (or creates) a sharded cluster rooted at dir. The shard map is
// persisted on first open; later opens must agree with it.
func Open(dir string, opts Options) (*Cluster, error) {
	m, err := loadOrInitMap(dir, opts.Shards, opts.VNodes)
	if err != nil {
		return nil, err
	}
	deadline := opts.Deadline
	if deadline <= 0 {
		deadline = 2 * time.Second
	}
	replicas := opts.ArchiveReplicas
	if replicas <= 0 {
		replicas = 2
	}
	c := &Cluster{dir: dir, m: m, ring: NewRing(m.Shards, m.VNodes), deadline: deadline}
	for i := 0; i < m.Shards; i++ {
		sh := &Shard{id: i, dir: filepath.Join(dir, "shards", shardName(i)), sync: opts.Sync, delay: opts.CommitDelay}
		volumes := make([]string, replicas)
		for v := range volumes {
			volumes[v] = filepath.Join(sh.dir, fmt.Sprintf("vol-%d", v))
		}
		if err := os.MkdirAll(sh.dir, 0o755); err != nil {
			c.Close()
			return nil, err
		}
		if sh.arch, err = archive.OpenStore(volumes); err != nil {
			c.Close()
			return nil, err
		}
		if err := sh.open(); err != nil {
			c.Close()
			return nil, err
		}
		c.shards = append(c.shards, sh)
	}
	c.records = &RecordRouter{c: c}
	c.prov = &ProvenanceRouter{c: c}
	c.traces = &TraceRouter{c: c}
	c.archive = &ArchiveRouter{c: c}
	// Audit runs route by their own run ID, so every shard's scrubber records
	// through the router, not its local repository.
	for _, sh := range c.shards {
		sh.scrubber = &archive.Scrubber{
			Store:   sh.arch,
			Auditor: &archive.ProvenanceAuditor{Repo: c.prov, Agent: "archive-scrubber"},
		}
	}
	return c, nil
}

// open (re)opens the shard's database-backed components.
func (s *Shard) open() error {
	db, err := storage.Open(filepath.Join(s.dir, "db"), storage.Options{Sync: s.sync, CommitDelay: s.delay})
	if err != nil {
		return fmt.Errorf("shard: open %s: %w", shardName(s.id), err)
	}
	recs, err := fnjv.NewStore(db)
	var prov *provenance.Repository
	if err == nil {
		prov, err = provenance.NewRepository(db)
	}
	var spans *telemetry.SpanStore
	if err == nil {
		spans, err = telemetry.NewSpanStore(db)
	}
	if err != nil {
		db.Close()
		return fmt.Errorf("shard: open %s: %w", shardName(s.id), err)
	}
	s.mu.Lock()
	s.db, s.recs, s.prov, s.spans = db, recs, prov, spans
	s.down = false
	s.mu.Unlock()
	return nil
}

// Close closes every shard database. The cluster is unusable afterwards.
func (c *Cluster) Close() error {
	var errs []error
	for _, sh := range c.shards {
		sh.mu.Lock()
		db := sh.db
		sh.db = nil
		sh.down = true
		sh.mu.Unlock()
		if db != nil {
			if err := db.Close(); err != nil {
				errs = append(errs, err)
			}
		}
	}
	return errors.Join(errs...)
}

// N returns the shard count.
func (c *Cluster) N() int { return len(c.shards) }

// OwnerIndex returns the index of the shard owning the given ID.
func (c *Cluster) OwnerIndex(id string) int { return c.ring.Owner(RouteKey(id)) }

// owner returns the shard owning the given ID.
func (c *Cluster) owner(id string) *Shard { return c.shards[c.OwnerIndex(id)] }

// Records returns the sharded collection store.
func (c *Cluster) Records() *RecordRouter { return c.records }

// Provenance returns the sharded provenance repository.
func (c *Cluster) Provenance() *ProvenanceRouter { return c.prov }

// Traces returns the sharded span store.
func (c *Cluster) Traces() *TraceRouter { return c.traces }

// Archive returns the sharded AIP store.
func (c *Cluster) Archive() *ArchiveRouter { return c.archive }

// Scrubbers returns every shard's archive scrubber, in shard order.
func (c *Cluster) Scrubbers() []*archive.Scrubber {
	out := make([]*archive.Scrubber, len(c.shards))
	for i, sh := range c.shards {
		out[i] = sh.scrubber
	}
	return out
}

// StopShard marks shard i down and closes its database, simulating a shard
// loss: in-flight operations error out, later routed operations fail fast
// with ErrShardDown, other shards keep serving.
func (c *Cluster) StopShard(i int) error {
	if i < 0 || i >= len(c.shards) {
		return fmt.Errorf("shard: no shard %d", i)
	}
	sh := c.shards[i]
	sh.mu.Lock()
	if sh.down {
		sh.mu.Unlock()
		return nil
	}
	sh.down = true
	db := sh.db
	sh.db = nil
	sh.mu.Unlock()
	if db != nil {
		return db.Close()
	}
	return nil
}

// RejoinShard reopens a stopped shard's database (replaying its WAL) and
// marks it available again.
func (c *Cluster) RejoinShard(i int) error {
	if i < 0 || i >= len(c.shards) {
		return fmt.Errorf("shard: no shard %d", i)
	}
	sh := c.shards[i]
	sh.mu.RLock()
	down := sh.down
	sh.mu.RUnlock()
	if !down {
		return nil
	}
	return sh.open()
}

// Down reports whether shard i is currently marked unavailable.
func (c *Cluster) Down(i int) bool {
	sh := c.shards[i]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.down
}

// Counters renders per-shard routing gauges for the metrics bridge: routed
// operations, routed errors, and availability per shard.
func (c *Cluster) Counters() map[string]float64 {
	out := make(map[string]float64, 3*len(c.shards)+1)
	out["shards"] = float64(len(c.shards))
	for i, sh := range c.shards {
		name := shardName(sh.id)
		out[name+".ops"] = float64(sh.ops.Load())
		out[name+".errors"] = float64(sh.errs.Load())
		down := 0.0
		if c.Down(i) {
			down = 1
		}
		out[name+".down"] = down
	}
	return out
}

// note records one routed operation against the shard's gauges.
func (s *Shard) note(err error) {
	s.ops.Add(1)
	if err != nil {
		s.errs.Add(1)
	}
}

func (s *Shard) downErr() error {
	return fmt.Errorf("%w: %s", ErrShardDown, shardName(s.id))
}

// provRepo returns the shard's live provenance repository, or ErrShardDown.
func (s *Shard) provRepo() (*provenance.Repository, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.down {
		return nil, s.downErr()
	}
	return s.prov, nil
}

// recordStore returns the shard's live record store, or ErrShardDown.
func (s *Shard) recordStore() (*fnjv.Store, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.down {
		return nil, s.downErr()
	}
	return s.recs, nil
}

// spanStore returns the shard's live span store, or ErrShardDown.
func (s *Shard) spanStore() (*telemetry.SpanStore, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.down {
		return nil, s.downErr()
	}
	return s.spans, nil
}

// archStore returns the shard's AIP store, or ErrShardDown. The store itself
// survives Stop/Rejoin, but a down shard refuses archive traffic too: the
// shard is the failure domain, not the individual backend.
func (s *Shard) archStore() (*archive.Store, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.down {
		return nil, s.downErr()
	}
	return s.arch, nil
}
