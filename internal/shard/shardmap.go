package shard

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// Map is the persisted shard topology. It is written once when a cluster
// directory is initialised and must match on every reopen: the ring is a
// pure function of (Shards, VNodes), so pinning both keeps every ID minted
// under this map routable forever. Changing either without migrating data
// would silently orphan rows, so Open refuses a mismatch.
type Map struct {
	Version int `json:"version"`
	Shards  int `json:"shards"`
	VNodes  int `json:"vnodes"`
}

const mapFile = "shardmap.json"

// mapVersion is the current shardmap.json schema version.
const mapVersion = 1

// loadOrInitMap reads dir's shard map, creating it with the requested
// topology on first open. A requested topology of 0 shards adopts whatever
// the file says; a non-zero request must match the file exactly.
func loadOrInitMap(dir string, shards, vnodes int) (Map, error) {
	path := filepath.Join(dir, mapFile)
	blob, err := os.ReadFile(path)
	switch {
	case err == nil:
		var m Map
		if err := json.Unmarshal(blob, &m); err != nil {
			return Map{}, fmt.Errorf("shard: parse %s: %w", path, err)
		}
		if m.Version != mapVersion {
			return Map{}, fmt.Errorf("shard: %s has version %d, want %d", path, m.Version, mapVersion)
		}
		if m.Shards <= 0 {
			return Map{}, fmt.Errorf("shard: %s declares %d shards", path, m.Shards)
		}
		if shards != 0 && shards != m.Shards {
			return Map{}, fmt.Errorf("shard: directory is mapped to %d shards, cannot open with %d (resharding needs a migration)", m.Shards, shards)
		}
		if vnodes != 0 && m.VNodes != vnodes {
			return Map{}, fmt.Errorf("shard: directory is mapped with %d vnodes, cannot open with %d", m.VNodes, vnodes)
		}
		return m, nil
	case os.IsNotExist(err):
		if shards <= 0 {
			return Map{}, fmt.Errorf("shard: no %s in %s and no shard count requested", mapFile, dir)
		}
		if vnodes <= 0 {
			vnodes = DefaultVNodes
		}
		m := Map{Version: mapVersion, Shards: shards, VNodes: vnodes}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return Map{}, err
		}
		out, err := json.MarshalIndent(m, "", "  ")
		if err != nil {
			return Map{}, err
		}
		if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
			return Map{}, fmt.Errorf("shard: write %s: %w", path, err)
		}
		return m, nil
	default:
		return Map{}, fmt.Errorf("shard: read %s: %w", path, err)
	}
}
