package shard

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/fnjv"
	"repro/internal/opm"
	"repro/internal/provenance"
)

func openCluster(t *testing.T, dir string, shards int) *Cluster {
	t.Helper()
	c, err := Open(dir, Options{Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestRingDeterministicAndBalanced(t *testing.T) {
	r1 := NewRing(4, DefaultVNodes)
	r2 := NewRing(4, DefaultVNodes)
	counts := make([]int, 4)
	for i := 0; i < 4000; i++ {
		key := fmt.Sprintf("key-%d", i)
		o := r1.Owner(key)
		if o2 := r2.Owner(key); o2 != o {
			t.Fatalf("ring not deterministic: %s -> %d vs %d", key, o, o2)
		}
		counts[o]++
	}
	for s, n := range counts {
		// Perfect balance is 1000/shard; consistent hashing should land
		// every shard within a loose factor of it.
		if n < 400 || n > 2000 {
			t.Fatalf("shard %d owns %d of 4000 keys — ring badly unbalanced %v", s, n, counts)
		}
	}
}

func TestRouteKeyTenantAffinity(t *testing.T) {
	// Every ID of one tenant routes by the tenant, so the whole tenant
	// lands on one shard.
	if RouteKey("acme:run-000001") != "acme" || RouteKey("acme:xc-77") != "acme" {
		t.Fatal("tenant-qualified IDs must route by tenant")
	}
	// Legacy unqualified IDs route by themselves (spread across shards).
	if RouteKey("run-000001") != "run-000001" {
		t.Fatal("unqualified IDs must route by full ID")
	}
	r := NewRing(4, DefaultVNodes)
	want := r.Owner("acme")
	for i := 0; i < 50; i++ {
		if got := r.Owner(RouteKey(fmt.Sprintf("acme:run-%06d", i))); got != want {
			t.Fatalf("tenant acme split across shards: %d vs %d", got, want)
		}
	}
}

func TestValidTenant(t *testing.T) {
	for _, ok := range []string{"acme", "a-1", "tenant-42"} {
		if !ValidTenant(ok) {
			t.Errorf("ValidTenant(%q) = false", ok)
		}
	}
	for _, bad := range []string{"", "ACME", "a:b", "a b", "ü", string(make([]byte, 65))} {
		if ValidTenant(bad) {
			t.Errorf("ValidTenant(%q) = true", bad)
		}
	}
}

func TestShardMapPersistedAndEnforced(t *testing.T) {
	dir := t.TempDir()
	c := openCluster(t, dir, 4)
	if c.N() != 4 {
		t.Fatalf("N = %d, want 4", c.N())
	}
	c.Close()

	// Reopen with 0 adopts the persisted topology.
	c2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if c2.N() != 4 {
		t.Fatalf("adopted N = %d, want 4", c2.N())
	}
	c2.Close()

	// Reopen with a different shard count must refuse, not silently reshard.
	if _, err := Open(dir, Options{Shards: 2}); err == nil {
		t.Fatal("open with mismatched shard count succeeded")
	}
}

func TestRecordRouterMatchesSingleStoreSemantics(t *testing.T) {
	c := openCluster(t, t.TempDir(), 4)
	recs := c.Records()
	var put []*fnjv.Record
	for i := 0; i < 40; i++ {
		r := &fnjv.Record{
			ID:      fmt.Sprintf("xc-%03d", i),
			Species: fmt.Sprintf("Boana sp%d", i%7),
			State:   []string{"SP", "MG", "RJ"}[i%3],
		}
		put = append(put, r)
	}
	if err := recs.PutAll(put); err != nil {
		t.Fatal(err)
	}
	if n := recs.Len(); n != 40 {
		t.Fatalf("Len = %d, want 40", n)
	}
	// Records actually spread: no shard should hold everything.
	owners := map[int]int{}
	for _, r := range put {
		owners[c.OwnerIndex(r.ID)]++
	}
	if len(owners) < 2 {
		t.Fatalf("all records on one shard: %v", owners)
	}
	got, err := recs.Get("xc-017")
	if err != nil || got.Species != "Boana sp3" {
		t.Fatalf("Get: %+v, %v", got, err)
	}
	// Scan visits everything; ordering is by ID as in the single store.
	var scanned []string
	if err := recs.Scan(func(r *fnjv.Record) bool {
		scanned = append(scanned, r.ID)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(scanned) != 40 || scanned[0] != "xc-000" || scanned[39] != "xc-039" {
		t.Fatalf("Scan order broken: %d records, first %s last %s", len(scanned), scanned[0], scanned[len(scanned)-1])
	}
	// Query with a limit: global top-k by ID.
	q, err := recs.Query(fnjv.ByState("SP"), fnjv.QueryOptions{Limit: 5, OrderBy: "id"})
	if err != nil {
		t.Fatal(err)
	}
	if len(q) != 5 || q[0].ID != "xc-000" || q[4].ID != "xc-012" {
		ids := make([]string, len(q))
		for i, r := range q {
			ids[i] = r.ID
		}
		t.Fatalf("Query top-5 = %v", ids)
	}
	stats, err := recs.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != 40 || stats.DistinctSpecies != 7 {
		t.Fatalf("Stats = %+v", stats)
	}
}

func storeRun(t *testing.T, repo provenance.Repo, runID string) {
	t.Helper()
	g := opm.NewGraph()
	if err := g.Process("p1", "proc"); err != nil {
		t.Fatal(err)
	}
	err := repo.Store(provenance.RunInfo{
		RunID: runID, WorkflowID: "wf", WorkflowName: "wf",
		StartedAt: time.Unix(1700000000, 0), FinishedAt: time.Unix(1700000001, 0),
		Status: provenance.RunCompleted,
	}, g)
	if err != nil {
		t.Fatal(err)
	}
}

func TestProvenanceRouterRunLookupAndMerge(t *testing.T) {
	c := openCluster(t, t.TempDir(), 4)
	prov := c.Provenance()
	var ids []string
	for i := 0; i < 12; i++ {
		id := fmt.Sprintf("run-%06d", i)
		storeRun(t, prov, id)
		ids = append(ids, id)
	}
	for _, id := range ids {
		info, err := prov.Run(id)
		if err != nil || info.RunID != id {
			t.Fatalf("Run(%s): %+v, %v", id, info, err)
		}
	}
	all := prov.AllRuns()
	if len(all) != 12 {
		t.Fatalf("AllRuns = %d, want 12", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i-1].RunID >= all[i].RunID {
			t.Fatalf("AllRuns not sorted: %s >= %s", all[i-1].RunID, all[i].RunID)
		}
	}
	runs, err := prov.Runs("wf")
	if err != nil || len(runs) != 12 {
		t.Fatalf("Runs(wf) = %d, %v", len(runs), err)
	}
	// Snapshot pins a point in time across all shards.
	snap := prov.Snapshot()
	storeRun(t, prov, "run-999999")
	if got := len(snap.AllRuns()); got != 12 {
		t.Fatalf("snapshot saw a later write: %d runs", got)
	}
	if got := len(prov.AllRuns()); got != 13 {
		t.Fatalf("live view = %d runs, want 13", got)
	}
}

func TestRoutedWriterRoutesByRunID(t *testing.T) {
	c := openCluster(t, t.TempDir(), 4)
	prov := c.Provenance()
	w, err := prov.RunWriter(provenance.BatchWriterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	runID := "acme:run-000001"
	info := provenance.RunInfo{RunID: runID, WorkflowID: "wf", WorkflowName: "wf",
		StartedAt: time.Unix(1700000000, 0), Status: provenance.RunRunning}
	if err := w.Emit(provenance.Delta{Kind: provenance.DeltaRunStarted, Info: info}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := prov.Run(runID)
	if err != nil || got.RunID != runID {
		t.Fatalf("routed run lookup: %+v, %v", got, err)
	}
	// The run physically lives on the tenant's shard.
	sh := c.shards[c.OwnerIndex(runID)]
	repo, err := sh.provRepo()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := repo.Run(runID); err != nil {
		t.Fatalf("run not on owning shard: %v", err)
	}
}

func TestRoutedWriterRefusesUnroutedDeltas(t *testing.T) {
	c := openCluster(t, t.TempDir(), 2)
	w, err := c.Provenance().RunWriter(provenance.BatchWriterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Emit(provenance.Delta{}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); !errors.Is(err, ErrUnroutedDeltas) {
		t.Fatalf("Close = %v, want ErrUnroutedDeltas", err)
	}
}

func TestStopShardFailsFastAndRejoinRecovers(t *testing.T) {
	c := openCluster(t, t.TempDir(), 4)
	prov := c.Provenance()
	storeRun(t, prov, "acme:run-000001")
	down := c.OwnerIndex("acme:run-000001")
	if err := c.StopShard(down); err != nil {
		t.Fatal(err)
	}

	// Affected tenant: visible degraded error, bounded latency — not a hang.
	start := time.Now()
	_, err := prov.Run("acme:run-000001")
	if !errors.Is(err, ErrShardDown) {
		t.Fatalf("query on down shard: %v, want ErrShardDown", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("down-shard query took %v — should fail fast", d)
	}

	// A tenant on another shard keeps serving.
	other := ""
	for i := 0; i < 100; i++ {
		tn := fmt.Sprintf("t%d", i)
		if c.OwnerIndex(tn+":x") != down {
			other = tn
			break
		}
	}
	storeRun(t, prov, other+":run-000001")
	if _, err := prov.Run(other + ":run-000001"); err != nil {
		t.Fatalf("unaffected tenant failed: %v", err)
	}

	// Fan-outs surface the loss instead of silently shrinking.
	if _, _, err := prov.RunsPage("", 10); err == nil {
		t.Fatal("RunsPage over a down shard must error")
	}

	// Rejoin replays the WAL: the pre-stop run is back.
	if err := c.RejoinShard(down); err != nil {
		t.Fatal(err)
	}
	if c.Down(down) {
		t.Fatal("shard still down after rejoin")
	}
	if _, err := prov.Run("acme:run-000001"); err != nil {
		t.Fatalf("run lost across stop/rejoin: %v", err)
	}
	if _, _, err := prov.RunsPage("", 10); err != nil {
		t.Fatalf("RunsPage after rejoin: %v", err)
	}
}

func TestQuotasThrottlePerTenant(t *testing.T) {
	q := NewQuotas(QuotaOptions{Rate: 100, Burst: 3})
	clock := time.Unix(1700000000, 0)
	q.now = func() time.Time { return clock }
	for i := 0; i < 3; i++ {
		if d := q.Allow("acme"); !d.Allowed {
			t.Fatalf("request %d throttled within burst", i)
		}
	}
	d := q.Allow("acme")
	if d.Allowed {
		t.Fatal("4th request allowed past burst")
	}
	if d.RetryAfter <= 0 {
		t.Fatalf("RetryAfter = %v", d.RetryAfter)
	}
	// Other tenants are untouched.
	if d := q.Allow("umbrella"); !d.Allowed {
		t.Fatal("other tenant throttled")
	}
	// Tokens refill with time.
	clock = clock.Add(50 * time.Millisecond) // 100/s * 0.05s = 5 tokens, capped at burst
	if d := q.Allow("acme"); !d.Allowed {
		t.Fatal("refilled bucket still throttled")
	}
	counters := q.Counters()
	if counters["tenant.acme.throttled"] != 1 {
		t.Fatalf("throttled counter = %v", counters["tenant.acme.throttled"])
	}
}
