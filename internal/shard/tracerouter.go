package shard

import (
	"repro/internal/telemetry"
)

// TraceRouter implements telemetry.TraceStore across the cluster: a run's
// span tree lives on the shard that owns the run ID, next to its provenance.
type TraceRouter struct {
	c *Cluster
	// views/viewErrs pin per-shard snapshot views, as in ProvenanceRouter.
	views    []*telemetry.SpanStore
	viewErrs []error
}

var _ telemetry.TraceStore = (*TraceRouter)(nil)

func (t *TraceRouter) storeFor(runID string) (*telemetry.SpanStore, *Shard, error) {
	sh := t.c.owner(runID)
	if t.views != nil {
		if t.viewErrs[sh.id] != nil {
			return nil, sh, t.viewErrs[sh.id]
		}
		return t.views[sh.id], sh, nil
	}
	st, err := sh.spanStore()
	return st, sh, err
}

// Snapshot implements telemetry.TraceStore.
func (t *TraceRouter) Snapshot() telemetry.TraceStore {
	n := len(t.c.shards)
	s := &TraceRouter{c: t.c, views: make([]*telemetry.SpanStore, n), viewErrs: make([]error, n)}
	for i, sh := range t.c.shards {
		st, err := sh.spanStore()
		if err != nil {
			s.viewErrs[i] = err
			continue
		}
		s.views[i] = st.View()
	}
	return s
}

// Count implements telemetry.TraceStore.
func (t *TraceRouter) Count(runID string) (int, error) {
	st, sh, err := t.storeFor(runID)
	if err != nil {
		sh.note(err)
		return 0, err
	}
	n, err := st.Count(runID)
	sh.note(err)
	return n, err
}

// Append implements telemetry.TraceStore.
func (t *TraceRouter) Append(runID string, spans []telemetry.Span) error {
	st, sh, err := t.storeFor(runID)
	if err != nil {
		sh.note(err)
		return err
	}
	err = st.Append(runID, spans)
	sh.note(err)
	return err
}

// Spans implements telemetry.TraceStore.
func (t *TraceRouter) Spans(runID string) ([]telemetry.Span, error) {
	st, sh, err := t.storeFor(runID)
	if err != nil {
		sh.note(err)
		return nil, err
	}
	spans, err := st.Spans(runID)
	sh.note(err)
	return spans, err
}

// SpansPage implements telemetry.TraceStore.
func (t *TraceRouter) SpansPage(runID string, after, limit int) ([]telemetry.Span, int, error) {
	st, sh, err := t.storeFor(runID)
	if err != nil {
		sh.note(err)
		return nil, 0, err
	}
	spans, next, err := st.SpansPage(runID, after, limit)
	sh.note(err)
	return spans, next, err
}
