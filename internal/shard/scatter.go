package shard

import (
	"errors"
	"fmt"
	"time"
)

// legResult carries one shard's answer back to the gathering goroutine.
type legResult[T any] struct {
	idx int
	val T
	err error
}

// gather fans fn out to every shard and collects the answers in shard order,
// bounding the wait by the cluster deadline. A leg that misses the deadline
// reports ErrShardTimeout (its goroutine is abandoned — shard stores are
// safe under concurrent use, and a stuck leg must not stall the caller).
// The error joins every failed leg; vals holds the successful answers with
// zero values in failed slots.
func gather[T any](c *Cluster, op string, fn func(sh *Shard) (T, error)) ([]T, error) {
	n := len(c.shards)
	vals := make([]T, n)
	errs := make([]error, n)
	results := make(chan legResult[T], n)
	for i, sh := range c.shards {
		go func(i int, sh *Shard) {
			v, err := fn(sh)
			sh.note(err)
			results <- legResult[T]{idx: i, val: v, err: err}
		}(i, sh)
	}
	timer := time.NewTimer(c.deadline)
	defer timer.Stop()
	got := make([]bool, n)
	for collected := 0; collected < n; {
		select {
		case r := <-results:
			vals[r.idx], errs[r.idx] = r.val, r.err
			got[r.idx] = true
			collected++
		case <-timer.C:
			for i := range got {
				if !got[i] {
					errs[i] = fmt.Errorf("%w: %s during %s", ErrShardTimeout, shardName(i), op)
				}
			}
			collected = n
		}
	}
	var failed []error
	for i, err := range errs {
		if err != nil {
			failed = append(failed, fmt.Errorf("%s: %s: %w", op, shardName(i), err))
		}
	}
	return vals, errors.Join(failed...)
}
