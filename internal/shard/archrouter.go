package shard

import (
	"sort"
	"time"

	"repro/internal/archive"
)

// ArchiveRouter implements archive.Holdings across the cluster: every AIP
// routes by its content address (computed before routing, exactly as the
// store computes it), listings merge across shards, and each shard's
// scrubber audits only its own volumes.
type ArchiveRouter struct {
	c *Cluster
}

var _ archive.Holdings = (*ArchiveRouter)(nil)

func (a *ArchiveRouter) ownerOf(id string) (*archive.Store, *Shard, error) {
	sh := a.c.owner(id)
	st, err := sh.archStore()
	return st, sh, err
}

// Put implements archive.Holdings: the content address decides the owning
// shard, so re-archiving identical bytes stays idempotent on one shard.
func (a *ArchiveRouter) Put(payload []byte, meta archive.Meta) (archive.Manifest, error) {
	id := archive.NewManifest(payload, meta, time.Time{}).ID
	st, sh, err := a.ownerOf(id)
	if err != nil {
		sh.note(err)
		return archive.Manifest{}, err
	}
	m, err := st.Put(payload, meta)
	sh.note(err)
	return m, err
}

// Get implements archive.Holdings.
func (a *ArchiveRouter) Get(id string) (archive.Manifest, []byte, error) {
	st, sh, err := a.ownerOf(id)
	if err != nil {
		sh.note(err)
		return archive.Manifest{}, nil, err
	}
	m, payload, err := st.Get(id)
	sh.note(err)
	return m, payload, err
}

// Stat implements archive.Holdings. A down shard reports every replica
// missing — the caller sees degraded status, not a hang.
func (a *ArchiveRouter) Stat(id string) archive.ObjectStatus {
	st, sh, err := a.ownerOf(id)
	if err != nil {
		sh.note(err)
		return archive.ObjectStatus{ID: id}
	}
	status := st.Stat(id)
	sh.note(nil)
	return status
}

// List implements archive.Holdings.
func (a *ArchiveRouter) List() ([]string, error) {
	return a.listFanOut("archive.List", (*archive.Store).List)
}

// ListQuarantined implements archive.Holdings.
func (a *ArchiveRouter) ListQuarantined() ([]string, error) {
	return a.listFanOut("archive.ListQuarantined", (*archive.Store).ListQuarantined)
}

func (a *ArchiveRouter) listFanOut(op string, fn func(*archive.Store) ([]string, error)) ([]string, error) {
	lists, err := gather(a.c, op, func(sh *Shard) ([]string, error) {
		st, serr := sh.archStore()
		if serr != nil {
			return nil, serr
		}
		return fn(st)
	})
	if err != nil {
		return nil, err
	}
	var all []string
	for _, l := range lists {
		all = append(all, l...)
	}
	sort.Strings(all)
	return all, nil
}

// Scrubbers returns the per-shard scrubbers, in shard order — audits run
// shard-by-shard, each scoped to its own volumes.
func (a *ArchiveRouter) Scrubbers() []*archive.Scrubber {
	return a.c.Scrubbers()
}

// Volumes implements archive.Holdings: every shard's replica volumes, in
// shard order.
func (a *ArchiveRouter) Volumes() []string {
	var out []string
	for _, sh := range a.c.shards {
		out = append(out, sh.arch.Volumes()...)
	}
	return out
}
