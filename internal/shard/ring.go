package shard

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Ring is a consistent-hash ring over shard IDs: each shard projects VNodes
// virtual points onto a 64-bit circle and a key is owned by the first point
// clockwise of its hash. With enough virtual points the keyspace splits
// near-uniformly, and adding a shard moves only ~1/N of the keys — the
// property a future resharding migration will lean on. The ring is immutable
// after construction; shard membership changes go through the persisted Map.
type Ring struct {
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash  uint64
	shard int
}

// DefaultVNodes is the virtual-point count per shard when the Map does not
// say otherwise. 64 points keep the per-shard keyspace share within a few
// percent of uniform at small N.
const DefaultVNodes = 64

// NewRing builds the ring for `shards` shards with `vnodes` virtual points
// each (DefaultVNodes if vnodes <= 0).
func NewRing(shards, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	r := &Ring{points: make([]ringPoint, 0, shards*vnodes)}
	for s := 0; s < shards; s++ {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash:  hash64(fmt.Sprintf("%s#%03d", shardName(s), v)),
				shard: s,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].shard < r.points[j].shard
	})
	return r
}

// Owner returns the shard that owns the given routing key.
func (r *Ring) Owner(key string) int {
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].shard
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return mix64(h.Sum64())
}

// mix64 is the splitmix64 finalizer. Raw FNV-1a keeps sequential IDs
// ("run-000001", "run-000002", ...) within a tiny window of the circle —
// the trailing-byte differences move the hash by far less than an arc
// width, so whole ID sequences collapse onto one shard. The avalanche
// spreads single-bit input differences across all 64 bits.
func mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}
