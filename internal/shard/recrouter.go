package shard

import (
	"sort"
	"strings"

	"repro/internal/fnjv"
)

// RecordRouter implements fnjv.Records across the cluster: per-ID operations
// go to the owning shard, collection-wide operations scatter-gather and
// merge back into the store's ascending-ID contract.
type RecordRouter struct {
	c *Cluster
}

var _ fnjv.Records = (*RecordRouter)(nil)

// Put implements fnjv.Records.
func (r *RecordRouter) Put(rec *fnjv.Record) error {
	sh := r.c.owner(rec.ID)
	st, err := sh.recordStore()
	if err == nil {
		err = st.Put(rec)
	}
	sh.note(err)
	return err
}

// PutAll implements fnjv.Records, batching each shard's slice through its
// own store so ingest keeps the per-shard batch-apply fast path.
func (r *RecordRouter) PutAll(records []*fnjv.Record) error {
	byShard := make(map[int][]*fnjv.Record)
	for _, rec := range records {
		idx := r.c.OwnerIndex(rec.ID)
		byShard[idx] = append(byShard[idx], rec)
	}
	_, err := gather(r.c, "records.PutAll", func(sh *Shard) (struct{}, error) {
		batch := byShard[sh.id]
		if len(batch) == 0 {
			return struct{}{}, nil
		}
		st, serr := sh.recordStore()
		if serr != nil {
			return struct{}{}, serr
		}
		return struct{}{}, st.PutAll(batch)
	})
	return err
}

// Get implements fnjv.Records.
func (r *RecordRouter) Get(id string) (*fnjv.Record, error) {
	sh := r.c.owner(id)
	st, err := sh.recordStore()
	if err != nil {
		sh.note(err)
		return nil, err
	}
	rec, err := st.Get(id)
	sh.note(err)
	return rec, err
}

// Update implements fnjv.Records.
func (r *RecordRouter) Update(rec *fnjv.Record) error {
	sh := r.c.owner(rec.ID)
	st, err := sh.recordStore()
	if err == nil {
		err = st.Update(rec)
	}
	sh.note(err)
	return err
}

// Len implements fnjv.Records.
func (r *RecordRouter) Len() int {
	counts, _ := gather(r.c, "records.Len", func(sh *Shard) (int, error) {
		st, err := sh.recordStore()
		if err != nil {
			return 0, err
		}
		return st.Len(), nil
	})
	total := 0
	for _, n := range counts {
		total += n
	}
	return total
}

// all gathers every shard's records merged into ascending-ID order.
func (r *RecordRouter) all(op string) ([]*fnjv.Record, error) {
	lists, err := gather(r.c, op, func(sh *Shard) ([]*fnjv.Record, error) {
		st, serr := sh.recordStore()
		if serr != nil {
			return nil, serr
		}
		var out []*fnjv.Record
		serr = st.Scan(func(rec *fnjv.Record) bool {
			out = append(out, rec)
			return true
		})
		return out, serr
	})
	if err != nil {
		return nil, err
	}
	var all []*fnjv.Record
	for _, l := range lists {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].ID < all[j].ID })
	return all, nil
}

// Scan implements fnjv.Records. The merge materialises each shard's records
// before visiting — the price of keeping the single-store ascending-ID
// contract over hash-spread rows.
func (r *RecordRouter) Scan(fn func(*fnjv.Record) bool) error {
	all, err := r.all("records.Scan")
	if err != nil {
		return err
	}
	for _, rec := range all {
		if !fn(rec) {
			break
		}
	}
	return nil
}

// ScanTenant visits one tenant's records in ascending-ID order. Tenant
// affinity pins every tenant-qualified ID to a single shard, so the scan
// touches only that shard — a tenant keeps serving while unrelated shards
// are down, and pays no scatter-gather for its own working set.
func (r *RecordRouter) ScanTenant(tenant string, fn func(*fnjv.Record) bool) error {
	prefix := tenant + Sep
	sh := r.c.owner(prefix)
	st, err := sh.recordStore()
	if err != nil {
		sh.note(err)
		return err
	}
	err = st.Scan(func(rec *fnjv.Record) bool {
		if !strings.HasPrefix(rec.ID, prefix) {
			return true
		}
		return fn(rec)
	})
	sh.note(err)
	return err
}

// BySpecies implements fnjv.Records.
func (r *RecordRouter) BySpecies(name string) ([]*fnjv.Record, error) {
	return r.indexFanOut("records.BySpecies", func(st *fnjv.Store) ([]*fnjv.Record, error) {
		return st.BySpecies(name)
	})
}

// ByState implements fnjv.Records.
func (r *RecordRouter) ByState(state string) ([]*fnjv.Record, error) {
	return r.indexFanOut("records.ByState", func(st *fnjv.Store) ([]*fnjv.Record, error) {
		return st.ByState(state)
	})
}

func (r *RecordRouter) indexFanOut(op string, fn func(*fnjv.Store) ([]*fnjv.Record, error)) ([]*fnjv.Record, error) {
	lists, err := gather(r.c, op, func(sh *Shard) ([]*fnjv.Record, error) {
		st, serr := sh.recordStore()
		if serr != nil {
			return nil, serr
		}
		return fn(st)
	})
	if err != nil {
		return nil, err
	}
	var all []*fnjv.Record
	for _, l := range lists {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].ID < all[j].ID })
	return all, nil
}

// DistinctSpecies implements fnjv.Records, summing per-shard counts.
func (r *RecordRouter) DistinctSpecies() (map[string]int, error) {
	maps, err := gather(r.c, "records.DistinctSpecies", func(sh *Shard) (map[string]int, error) {
		st, serr := sh.recordStore()
		if serr != nil {
			return nil, serr
		}
		return st.DistinctSpecies()
	})
	if err != nil {
		return nil, err
	}
	out := make(map[string]int)
	for _, m := range maps {
		for k, v := range m {
			out[k] += v
		}
	}
	return out, nil
}

// Stats implements fnjv.Records. Additive fields sum across shards; the
// distinct-species count needs the cross-shard union, since one species'
// records can hash to several shards.
func (r *RecordRouter) Stats() (fnjv.Stats, error) {
	stats, err := gather(r.c, "records.Stats", func(sh *Shard) (fnjv.Stats, error) {
		st, serr := sh.recordStore()
		if serr != nil {
			return fnjv.Stats{}, serr
		}
		return st.Stats()
	})
	if err != nil {
		return fnjv.Stats{}, err
	}
	var out fnjv.Stats
	for _, s := range stats {
		out.Records += s.Records
		out.WithCoordinates += s.WithCoordinates
		out.WithEnvFields += s.WithEnvFields
		out.WithHabitat += s.WithHabitat
	}
	distinct, err := r.DistinctSpecies()
	if err != nil {
		return fnjv.Stats{}, err
	}
	out.DistinctSpecies = len(distinct)
	return out, nil
}

// Query implements fnjv.Records: each shard answers the same predicate and
// ordering with the same limit (a global top-k is always contained in the
// union of per-shard top-ks), then the merge re-sorts with the store's
// comparators and truncates.
func (r *RecordRouter) Query(pred fnjv.Predicate, opts fnjv.QueryOptions) ([]*fnjv.Record, error) {
	lists, err := gather(r.c, "records.Query", func(sh *Shard) ([]*fnjv.Record, error) {
		st, serr := sh.recordStore()
		if serr != nil {
			return nil, serr
		}
		return st.Query(pred, opts)
	})
	if err != nil {
		return nil, err
	}
	var all []*fnjv.Record
	for _, l := range lists {
		all = append(all, l...)
	}
	if err := fnjv.SortRecords(all, opts.OrderBy); err != nil {
		return nil, err
	}
	if opts.Limit > 0 && len(all) > opts.Limit {
		all = all[:opts.Limit]
	}
	return all, nil
}
