// Package shard partitions the preservation system's hot state — collection
// records, provenance runs/history, persisted traces, and archive holdings —
// across N shard instances, each owning its own storage WAL/B-tree,
// provenance repository, span store, and replicated AIP store with scrubber.
//
// Placement is consistent hashing over the routing key of an ID: a
// tenant-qualified ID ("<tenant>:<rest>") routes by its tenant, giving every
// tenant shard affinity (fault isolation: losing one shard degrades only the
// tenants it hosts); an unqualified legacy ID routes by the full ID, spreading
// a single-tenant workload across all shards. The ring and shard count are
// persisted in shardmap.json so IDs stay routable across restarts.
//
// The routers (ProvenanceRouter, RecordRouter, TraceRouter, ArchiveRouter)
// implement the same interfaces the single-store types implement
// (provenance.Repo, fnjv.Records, telemetry.TraceStore, archive.Holdings),
// so core, the workflow engine, and the web service run unchanged on top.
// Per-run/per-record operations go straight to the owning shard; cross-shard
// operations (run listings, lineage fan-out, collection scans, stats)
// scatter-gather with a per-shard deadline and merge under the same ordering
// and cursor contracts as the unsharded stores.
package shard

import (
	"errors"
	"fmt"
	"strings"
)

// ErrShardDown marks an operation that touched a shard currently marked
// unavailable (stopped by chaos, crashed, or still rejoining). Callers see
// it quickly — routed operations never hang on a dead shard.
var ErrShardDown = errors.New("shard: shard unavailable")

// ErrShardTimeout marks a scatter-gather leg that missed its per-shard
// deadline.
var ErrShardTimeout = errors.New("shard: deadline exceeded")

// Sep separates the tenant qualifier from the rest of an ID. ":" is safe in
// URL path segments and cannot appear in legacy run/record IDs.
const Sep = ":"

// Split breaks a possibly tenant-qualified ID into its tenant and the
// unqualified rest. IDs without a qualifier belong to the default tenant "".
func Split(id string) (tenant, rest string) {
	if i := strings.Index(id, Sep); i >= 0 {
		return id[:i], id[i+1:]
	}
	return "", id
}

// Qualify prefixes id with the tenant qualifier; the default tenant ""
// leaves the ID untouched (legacy format).
func Qualify(tenant, id string) string {
	if tenant == "" {
		return id
	}
	return tenant + Sep + id
}

// RouteKey is the consistent-hashing key of an ID: the tenant when the ID is
// tenant-qualified (tenant affinity), the full ID otherwise (spread).
func RouteKey(id string) string {
	if tenant, _ := Split(id); tenant != "" {
		return tenant
	}
	return id
}

// ValidTenant reports whether t is an acceptable tenant identifier on the
// public surface: 1-64 characters of lowercase letters, digits and dashes.
// The default tenant is the empty string and is never sent on the wire.
func ValidTenant(t string) bool {
	if len(t) == 0 || len(t) > 64 {
		return false
	}
	for i := 0; i < len(t); i++ {
		c := t[i]
		if c >= 'a' && c <= 'z' || c >= '0' && c <= '9' || c == '-' {
			continue
		}
		return false
	}
	return true
}

// shardName renders the canonical shard identifier used in directories,
// metrics and errors.
func shardName(id int) string { return fmt.Sprintf("shard-%04d", id) }
