package shard

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/opm"
	"repro/internal/provenance"
)

// TestCrossShardPaginationUnderConcurrentWrites is the property test behind
// the router's cursor contract: a pagination sequence started at any moment
// stays valid while every shard concurrently receives new runs. The walk
// must (a) never deliver the same run twice, (b) deliver runs in strictly
// ascending RunID order, and (c) deliver every run that existed before the
// walk started — concurrent inserts may or may not appear, but can never
// displace pre-existing runs or invalidate a cursor.
func TestCrossShardPaginationUnderConcurrentWrites(t *testing.T) {
	c := openCluster(t, t.TempDir(), 4)
	prov := c.Provenance()

	mkRun := func(id string) provenance.RunInfo {
		return provenance.RunInfo{
			RunID: id, WorkflowID: "wf", WorkflowName: "wf",
			StartedAt: time.Unix(1700000000, 0), FinishedAt: time.Unix(1700000001, 0),
			Status: provenance.RunCompleted,
		}
	}
	store := func(id string) error {
		g := opm.NewGraph()
		if err := g.Process("p", "proc"); err != nil {
			return err
		}
		return prov.Store(mkRun(id), g)
	}

	// Seed a known baseline across every shard.
	baseline := map[string]bool{}
	for i := 0; i < 60; i++ {
		id := fmt.Sprintf("seed-%06d", i)
		if err := store(id); err != nil {
			t.Fatal(err)
		}
		baseline[id] = true
	}

	// Writers keep inserting fresh runs (random IDs, so they land before,
	// between and after the reader's cursor position) for the whole walk.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				id := fmt.Sprintf("live-%06d-w%d-%d", rng.Intn(1000000), w, i)
				if err := store(id); err != nil {
					t.Errorf("concurrent store: %v", err)
					return
				}
			}
		}(w)
	}

	// The reader walks the full listing in small pages, re-minting the
	// cursor each step exactly as an API client would.
	seen := map[string]bool{}
	last := ""
	after := ""
	for pages := 0; ; pages++ {
		if pages > 10000 {
			t.Fatal("pagination did not terminate")
		}
		runs, next, err := prov.RunsPage(after, 7)
		if err != nil {
			t.Fatal(err)
		}
		for _, info := range runs {
			if seen[info.RunID] {
				t.Fatalf("run %s delivered twice", info.RunID)
			}
			seen[info.RunID] = true
			if last != "" && info.RunID <= last {
				t.Fatalf("page out of order: %s after %s", info.RunID, last)
			}
			last = info.RunID
		}
		if next == "" {
			break
		}
		after = next
	}
	close(stop)
	wg.Wait()

	for id := range baseline {
		if !seen[id] {
			t.Fatalf("pre-existing run %s skipped by the walk", id)
		}
	}

	// A second, quiescent walk must deliver exactly the final run set.
	total := len(prov.AllRuns())
	count := 0
	after = ""
	for {
		runs, next, err := prov.RunsPage(after, 11)
		if err != nil {
			t.Fatal(err)
		}
		count += len(runs)
		if next == "" {
			break
		}
		after = next
	}
	if count != total {
		t.Fatalf("quiescent walk saw %d runs, repository holds %d", count, total)
	}
}
