package shard

import (
	"errors"
	"sync"

	"repro/internal/provenance"
)

// ErrUnroutedDeltas is returned by Close when a writer saw deltas but none
// of them ever named a run — there is no shard to persist them on.
var ErrUnroutedDeltas = errors.New("shard: writer closed with unroutable deltas")

// routedWriter is a provenance.RunWriter that learns its destination from
// the stream itself: the capture layer emits DeltaRunStarted first, and its
// run ID picks the owning shard. Deltas seen before the run is named (there
// are none in practice, but the contract does not promise it) buffer in
// order and replay into the real writer once it exists. After routing, every
// call is a direct delegate to the owning shard's BatchWriter.
type routedWriter struct {
	router *ProvenanceRouter
	opts   provenance.BatchWriterOptions

	mu    sync.Mutex
	buf   []provenance.Delta
	inner provenance.RunWriter
	err   error
}

var _ provenance.RunWriter = (*routedWriter)(nil)

// deltaRunID extracts the run identity a delta carries, if any.
func deltaRunID(d provenance.Delta) string {
	if d.Info.RunID != "" {
		return d.Info.RunID
	}
	if d.History != nil {
		return d.History.RunID
	}
	return ""
}

// Emit implements provenance.Sink.
func (w *routedWriter) Emit(d provenance.Delta) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	if w.inner == nil {
		runID := deltaRunID(d)
		if runID == "" {
			w.buf = append(w.buf, d)
			return nil
		}
		repo, sh, err := w.router.ownerRepo(runID)
		if err != nil {
			sh.note(err)
			w.err = err
			return err
		}
		w.inner = repo.NewBatchWriter(w.opts)
		sh.note(nil)
		for _, buffered := range w.buf {
			if err := w.inner.Emit(buffered); err != nil {
				w.err = err
				return err
			}
		}
		w.buf = nil
	}
	return w.inner.Emit(d)
}

// Close implements provenance.RunWriter.
func (w *routedWriter) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.inner != nil {
		return w.inner.Close()
	}
	if w.err != nil {
		return w.err
	}
	if len(w.buf) > 0 {
		w.err = ErrUnroutedDeltas
		return w.err
	}
	return nil
}

// Err implements provenance.RunWriter.
func (w *routedWriter) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.inner != nil {
		return w.inner.Err()
	}
	return w.err
}

// Metrics implements provenance.RunWriter.
func (w *routedWriter) Metrics() provenance.WriterMetrics {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.inner != nil {
		return w.inner.Metrics()
	}
	return provenance.WriterMetrics{}
}

// QueueDepth implements provenance.RunWriter.
func (w *routedWriter) QueueDepth() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.inner != nil {
		return w.inner.QueueDepth()
	}
	return len(w.buf)
}
