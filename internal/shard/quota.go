package shard

import (
	"math"
	"sort"
	"sync"
	"time"
)

// QuotaOptions configures per-tenant rate limits.
type QuotaOptions struct {
	// Rate is the sustained request budget per tenant, in tokens/second
	// (default 50).
	Rate float64
	// Burst is the bucket capacity — how far a tenant can run ahead of the
	// sustained rate (default 2×Rate, minimum 1).
	Burst float64
	// Costs maps a request class to its token cost, so expensive operations
	// (a detection run walks the whole collection and the authority) spend
	// proportionally more of the tenant's budget than a page read. Classes
	// absent from the table — and the empty class — cost DefaultCost.
	Costs map[string]float64
}

// DefaultCost is the token cost of a request class with no Costs entry.
const DefaultCost = 1

// Quotas enforces a weighted token bucket per tenant: every admitted request
// spends its class's cost in tokens, tokens refill continuously at Rate, and
// a tenant that drains its bucket is throttled until it refills — other
// tenants' buckets are untouched. Safe for concurrent use.
type Quotas struct {
	rate  float64
	burst float64
	costs map[string]float64
	// now is the clock, swappable in tests.
	now func() time.Time

	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens    float64
	spent     float64
	requests  int64
	throttled int64
	last      time.Time
}

// NewQuotas builds a quota table with the given limits.
func NewQuotas(opts QuotaOptions) *Quotas {
	rate := opts.Rate
	if rate <= 0 {
		rate = 50
	}
	burst := opts.Burst
	if burst <= 0 {
		burst = math.Max(1, 2*rate)
	}
	costs := make(map[string]float64, len(opts.Costs))
	for class, c := range opts.Costs {
		if c > 0 {
			costs[class] = c
		}
	}
	return &Quotas{rate: rate, burst: burst, costs: costs, now: time.Now, buckets: make(map[string]*bucket)}
}

// Cost returns the token cost of a request class: its Costs entry, or
// DefaultCost when the class has none.
func (q *Quotas) Cost(class string) float64 {
	if c, ok := q.costs[class]; ok {
		return c
	}
	return DefaultCost
}

// Decision is the outcome of one admission check.
type Decision struct {
	// Allowed reports whether the request may proceed.
	Allowed bool
	// Limit is the bucket capacity (the X-RateLimit-Limit header).
	Limit int
	// Remaining is the whole tokens left after this decision.
	Remaining int
	// RetryAfter is how long a throttled tenant must wait for enough tokens;
	// zero when Allowed.
	RetryAfter time.Duration
}

// Allow spends one token from the tenant's bucket — the unweighted admission
// check every plain read uses.
func (q *Quotas) Allow(tenant string) Decision {
	return q.AllowN(tenant, DefaultCost)
}

// AllowN spends cost tokens from the tenant's bucket, creating a full bucket
// on first sight. The default tenant "" has a bucket like any other. A cost
// above the bucket capacity could never be admitted; it is capped at the
// capacity so the class is expensive-but-possible (one full refill buys one).
func (q *Quotas) AllowN(tenant string, cost float64) Decision {
	if cost <= 0 {
		cost = DefaultCost
	}
	if cost > q.burst {
		cost = q.burst
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	now := q.now()
	b := q.buckets[tenant]
	if b == nil {
		b = &bucket{tokens: q.burst, last: now}
		q.buckets[tenant] = b
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens = math.Min(q.burst, b.tokens+dt*q.rate)
		b.last = now
	}
	b.requests++
	d := Decision{Limit: int(q.burst)}
	if b.tokens >= cost {
		b.tokens -= cost
		b.spent += cost
		d.Allowed = true
		d.Remaining = int(b.tokens)
		return d
	}
	b.throttled++
	d.RetryAfter = time.Duration((cost - b.tokens) / q.rate * float64(time.Second))
	if d.RetryAfter < time.Millisecond {
		d.RetryAfter = time.Millisecond
	}
	return d
}

// Counters renders per-tenant admission gauges for the metrics bridge:
// requests seen, requests throttled, and the weighted token spend.
func (q *Quotas) Counters() map[string]float64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make(map[string]float64, 3*len(q.buckets)+2)
	out["rate"] = q.rate
	out["burst"] = q.burst
	tenants := make([]string, 0, len(q.buckets))
	for t := range q.buckets {
		tenants = append(tenants, t)
	}
	sort.Strings(tenants)
	for _, t := range tenants {
		name := t
		if name == "" {
			name = "default"
		}
		b := q.buckets[t]
		out["tenant."+name+".requests"] = float64(b.requests)
		out["tenant."+name+".throttled"] = float64(b.throttled)
		out["tenant."+name+".spent"] = b.spent
	}
	return out
}
