package workflow

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func upperReg() *Registry {
	reg := NewRegistry()
	reg.Register("upper", func(_ context.Context, c Call) (map[string]Data, error) {
		return map[string]Data{"y": Scalar(strings.ToUpper(c.Input("x").String()))}, nil
	})
	reg.Register("exclaim", func(_ context.Context, c Call) (map[string]Data, error) {
		return map[string]Data{"y": Scalar(c.Input("x").String() + "!")}, nil
	})
	reg.Register("concat", func(_ context.Context, c Call) (map[string]Data, error) {
		return map[string]Data{"y": Scalar(c.Input("a").String() + c.Input("b").String())}, nil
	})
	return reg
}

func TestEngineLinear(t *testing.T) {
	d := linearDef()
	d.Processors[0].Service = "upper"
	d.Processors[1].Service = "exclaim"
	eng := NewEngine(upperReg())
	res, err := eng.Run(context.Background(), d, map[string]Data{"in": Scalar("hello")})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Outputs["out"].String(); got != "HELLO!" {
		t.Fatalf("out = %q", got)
	}
	if res.Invocations["A"] != 1 || res.Invocations["B"] != 1 {
		t.Fatalf("invocations = %v", res.Invocations)
	}
	if res.RunID == "" || res.FinishedAt.Before(res.StartedAt) {
		t.Fatalf("result metadata: %+v", res)
	}
}

func TestEngineDiamond(t *testing.T) {
	// in -> A, in -> B, (A,B) -> C -> out: exercises fan-out and a join.
	d := &Definition{
		ID: "wf-diamond", Name: "diamond",
		Inputs:  []Port{{Name: "in"}},
		Outputs: []Port{{Name: "out"}},
		Processors: []*Processor{
			{Name: "A", Service: "upper", Inputs: []Port{{Name: "x"}}, Outputs: []Port{{Name: "y"}}},
			{Name: "B", Service: "exclaim", Inputs: []Port{{Name: "x"}}, Outputs: []Port{{Name: "y"}}},
			{Name: "C", Service: "concat", Inputs: []Port{{Name: "a"}, {Name: "b"}}, Outputs: []Port{{Name: "y"}}},
		},
		Links: []Link{
			{Source: Endpoint{Port: "in"}, Target: Endpoint{Processor: "A", Port: "x"}},
			{Source: Endpoint{Port: "in"}, Target: Endpoint{Processor: "B", Port: "x"}},
			{Source: Endpoint{Processor: "A", Port: "y"}, Target: Endpoint{Processor: "C", Port: "a"}},
			{Source: Endpoint{Processor: "B", Port: "y"}, Target: Endpoint{Processor: "C", Port: "b"}},
			{Source: Endpoint{Processor: "C", Port: "y"}, Target: Endpoint{Port: "out"}},
		},
	}
	res, err := NewEngine(upperReg()).Run(context.Background(), d, map[string]Data{"in": Scalar("ab")})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Outputs["out"].String(); got != "ABab!" {
		t.Fatalf("out = %q", got)
	}
}

func TestEngineParallelism(t *testing.T) {
	// N independent slow processors must overlap in time.
	const n = 8
	var cur, max int32
	reg := NewRegistry()
	reg.Register("slow", func(_ context.Context, c Call) (map[string]Data, error) {
		v := atomic.AddInt32(&cur, 1)
		for {
			m := atomic.LoadInt32(&max)
			if v <= m || atomic.CompareAndSwapInt32(&max, m, v) {
				break
			}
		}
		time.Sleep(20 * time.Millisecond)
		atomic.AddInt32(&cur, -1)
		return map[string]Data{"y": c.Input("x")}, nil
	})
	d := &Definition{ID: "wf-par", Name: "par", Inputs: []Port{{Name: "in"}}}
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("P%d", i)
		d.Processors = append(d.Processors, &Processor{
			Name: name, Service: "slow",
			Inputs: []Port{{Name: "x"}}, Outputs: []Port{{Name: "y"}},
		})
		out := fmt.Sprintf("out%d", i)
		d.Outputs = append(d.Outputs, Port{Name: out})
		d.Links = append(d.Links,
			Link{Source: Endpoint{Port: "in"}, Target: Endpoint{Processor: name, Port: "x"}},
			Link{Source: Endpoint{Processor: name, Port: "y"}, Target: Endpoint{Port: out}},
		)
	}
	if _, err := NewEngine(reg).Run(context.Background(), d, map[string]Data{"in": Scalar("v")}); err != nil {
		t.Fatal(err)
	}
	if atomic.LoadInt32(&max) < 2 {
		t.Fatalf("max concurrency = %d, want ≥2", max)
	}
	// With Parallel=1 concurrency must not exceed 1.
	atomic.StoreInt32(&max, 0)
	eng := NewEngine(reg)
	eng.Parallel = 1
	if _, err := eng.Run(context.Background(), d, map[string]Data{"in": Scalar("v")}); err != nil {
		t.Fatal(err)
	}
	if atomic.LoadInt32(&max) != 1 {
		t.Fatalf("bounded run reached concurrency %d", max)
	}
}

func TestEngineImplicitIteration(t *testing.T) {
	d := linearDef()
	d.Processors[0].Service = "upper"
	d.Processors[1].Service = "exclaim"
	// Feed a list into a scalar-port pipeline: both processors iterate.
	in := List(Scalar("a"), Scalar("b"), Scalar("c"))
	res, err := NewEngine(upperReg()).Run(context.Background(), d, map[string]Data{"in": in})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Outputs["out"].String(); got != "[A!, B!, C!]" {
		t.Fatalf("out = %q", got)
	}
	if res.Invocations["A"] != 3 || res.Invocations["B"] != 3 {
		t.Fatalf("invocations = %v", res.Invocations)
	}
}

func TestEngineIterationBroadcast(t *testing.T) {
	// concat(a: list, b: scalar) broadcasts b across the iteration.
	d := &Definition{
		ID: "wf-bcast", Name: "bcast",
		Inputs:  []Port{{Name: "many"}, {Name: "one"}},
		Outputs: []Port{{Name: "out"}},
		Processors: []*Processor{
			{Name: "C", Service: "concat", Inputs: []Port{{Name: "a"}, {Name: "b"}}, Outputs: []Port{{Name: "y"}}},
		},
		Links: []Link{
			{Source: Endpoint{Port: "many"}, Target: Endpoint{Processor: "C", Port: "a"}},
			{Source: Endpoint{Port: "one"}, Target: Endpoint{Processor: "C", Port: "b"}},
			{Source: Endpoint{Processor: "C", Port: "y"}, Target: Endpoint{Port: "out"}},
		},
	}
	res, err := NewEngine(upperReg()).Run(context.Background(), d, map[string]Data{
		"many": List(Scalar("x"), Scalar("y")),
		"one":  Scalar("-suffix"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Outputs["out"].String(); got != "[x-suffix, y-suffix]" {
		t.Fatalf("out = %q", got)
	}
}

func TestEngineIterationLengthMismatch(t *testing.T) {
	d := &Definition{
		ID: "wf-mismatch", Name: "mismatch",
		Inputs:  []Port{{Name: "p"}, {Name: "q"}},
		Outputs: []Port{{Name: "out"}},
		Processors: []*Processor{
			{Name: "C", Service: "concat", Inputs: []Port{{Name: "a"}, {Name: "b"}}, Outputs: []Port{{Name: "y"}}},
		},
		Links: []Link{
			{Source: Endpoint{Port: "p"}, Target: Endpoint{Processor: "C", Port: "a"}},
			{Source: Endpoint{Port: "q"}, Target: Endpoint{Processor: "C", Port: "b"}},
			{Source: Endpoint{Processor: "C", Port: "y"}, Target: Endpoint{Port: "out"}},
		},
	}
	_, err := NewEngine(upperReg()).Run(context.Background(), d, map[string]Data{
		"p": List(Scalar("x"), Scalar("y")),
		"q": List(Scalar("1"), Scalar("2"), Scalar("3")),
	})
	if err == nil || !strings.Contains(err.Error(), "length mismatch") {
		t.Fatalf("mismatch not detected: %v", err)
	}
}

func TestEngineDepthTooDeep(t *testing.T) {
	d := linearDef()
	d.Processors[0].Service = "upper"
	d.Processors[1].Service = "exclaim"
	_, err := NewEngine(upperReg()).Run(context.Background(), d, map[string]Data{
		"in": List(List(Scalar("a"))),
	})
	if err == nil || !strings.Contains(err.Error(), "depth") {
		t.Fatalf("excess depth not detected: %v", err)
	}
}

func TestEngineProcessorFailure(t *testing.T) {
	reg := upperReg()
	boom := errors.New("boom")
	reg.Register("fail", func(_ context.Context, c Call) (map[string]Data, error) {
		return nil, boom
	})
	d := linearDef()
	d.Processors[0].Service = "fail"
	d.Processors[1].Service = "exclaim"
	var events []Event
	var mu sync.Mutex
	_, err := NewEngine(reg).Run(context.Background(), d, map[string]Data{"in": Scalar("x")},
		ListenerFunc(func(e Event) { mu.Lock(); events = append(events, e); mu.Unlock() }))
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("failure not propagated: %v", err)
	}
	var sawFailed, sawWfFailed bool
	for _, e := range events {
		if e.Type == EventProcessorFailed && e.Processor == "A" && e.Err != "" {
			sawFailed = true
		}
		if e.Type == EventWorkflowFailed {
			sawWfFailed = true
		}
		if e.Type == EventProcessorStarted && e.Processor == "B" {
			t.Fatal("downstream processor B started after upstream failure")
		}
	}
	if !sawFailed || !sawWfFailed {
		t.Fatalf("failure events missing: failed=%v wfFailed=%v", sawFailed, sawWfFailed)
	}
}

func TestEngineMissingOutputDetected(t *testing.T) {
	reg := NewRegistry()
	reg.Register("empty", func(_ context.Context, c Call) (map[string]Data, error) {
		return map[string]Data{}, nil
	})
	d := &Definition{
		ID: "wf-noout", Name: "noout",
		Inputs:  []Port{{Name: "in"}},
		Outputs: []Port{{Name: "out"}},
		Processors: []*Processor{
			{Name: "A", Service: "empty", Inputs: []Port{{Name: "x"}}, Outputs: []Port{{Name: "y"}}},
		},
		Links: []Link{
			{Source: Endpoint{Port: "in"}, Target: Endpoint{Processor: "A", Port: "x"}},
			{Source: Endpoint{Processor: "A", Port: "y"}, Target: Endpoint{Port: "out"}},
		},
	}
	_, err := NewEngine(reg).Run(context.Background(), d, map[string]Data{"in": Scalar("x")})
	if err == nil || !strings.Contains(err.Error(), "omitted output") {
		t.Fatalf("missing output not detected: %v", err)
	}
}

func TestEngineEventOrder(t *testing.T) {
	d := linearDef()
	d.Processors[0].Service = "upper"
	d.Processors[1].Service = "exclaim"
	var mu sync.Mutex
	var types []EventType
	_, err := NewEngine(upperReg()).Run(context.Background(), d, map[string]Data{"in": Scalar("x")},
		ListenerFunc(func(e Event) { mu.Lock(); types = append(types, e.Type); mu.Unlock() }))
	if err != nil {
		t.Fatal(err)
	}
	want := []EventType{EventWorkflowStarted, EventProcessorStarted, EventProcessorCompleted,
		EventProcessorStarted, EventProcessorCompleted, EventWorkflowCompleted}
	if len(types) != len(want) {
		t.Fatalf("got %d events, want %d: %v", len(types), len(want), types)
	}
	for i := range want {
		if types[i] != want[i] {
			t.Fatalf("event %d = %v, want %v", i, types[i], want[i])
		}
	}
}

func TestEngineEventCarriesAnnotations(t *testing.T) {
	d := linearDef()
	d.Processors[0].Service = "upper"
	d.Processors[1].Service = "exclaim"
	when := time.Date(2013, 11, 12, 19, 58, 9, 0, time.UTC)
	d.AnnotateProcessor("A", QualityKey("reputation"), "1", "expert", when)
	var got map[string]string
	var mu sync.Mutex
	_, err := NewEngine(upperReg()).Run(context.Background(), d, map[string]Data{"in": Scalar("x")},
		ListenerFunc(func(e Event) {
			if e.Type == EventProcessorCompleted && e.Processor == "A" {
				mu.Lock()
				got = QualityAnnotations(e.Annotations)
				mu.Unlock()
			}
		}))
	if err != nil {
		t.Fatal(err)
	}
	if got["reputation"] != "1" {
		t.Fatalf("annotations on event = %v", got)
	}
}

func TestEngineRejections(t *testing.T) {
	eng := NewEngine(upperReg())
	d := linearDef()
	d.Processors[0].Service = "upper"
	d.Processors[1].Service = "exclaim"
	// Missing workflow input.
	if _, err := eng.Run(context.Background(), d, nil); !errors.Is(err, ErrMissingInput) {
		t.Fatalf("missing input: %v", err)
	}
	// Unregistered service.
	d2 := linearDef() // svcA/svcB unregistered
	if _, err := eng.Run(context.Background(), d2, map[string]Data{"in": Scalar("x")}); err == nil ||
		!strings.Contains(err.Error(), "unregistered service") {
		t.Fatalf("unregistered service: %v", err)
	}
	// Invalid definition.
	d3 := linearDef()
	d3.Name = ""
	if _, err := eng.Run(context.Background(), d3, map[string]Data{"in": Scalar("x")}); !errors.Is(err, ErrInvalid) {
		t.Fatalf("invalid def: %v", err)
	}
}

func TestEngineContextCancellation(t *testing.T) {
	reg := NewRegistry()
	started := make(chan struct{})
	reg.Register("block", func(ctx context.Context, c Call) (map[string]Data, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	})
	d := &Definition{
		ID: "wf-cancel", Name: "cancel",
		Inputs:  []Port{{Name: "in"}},
		Outputs: []Port{{Name: "out"}},
		Processors: []*Processor{
			{Name: "A", Service: "block", Inputs: []Port{{Name: "x"}}, Outputs: []Port{{Name: "y"}}},
		},
		Links: []Link{
			{Source: Endpoint{Port: "in"}, Target: Endpoint{Processor: "A", Port: "x"}},
			{Source: Endpoint{Processor: "A", Port: "y"}, Target: Endpoint{Port: "out"}},
		},
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		<-started
		cancel()
	}()
	_, err := NewEngine(reg).Run(ctx, d, map[string]Data{"in": Scalar("x")})
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("cancellation: %v", err)
	}
}

func TestProcessorRetries(t *testing.T) {
	var calls int32
	reg := NewRegistry()
	reg.Register("flaky", func(_ context.Context, c Call) (map[string]Data, error) {
		n := atomic.AddInt32(&calls, 1)
		if n%3 != 0 { // succeeds every 3rd attempt
			return nil, errors.New("transient")
		}
		return map[string]Data{"y": c.Input("x")}, nil
	})
	d := &Definition{
		ID: "wf-retry", Name: "retry",
		Inputs:  []Port{{Name: "in"}},
		Outputs: []Port{{Name: "out"}},
		Processors: []*Processor{
			{Name: "A", Service: "flaky", Retries: 4,
				Inputs: []Port{{Name: "x"}}, Outputs: []Port{{Name: "y"}}},
		},
		Links: []Link{
			{Source: Endpoint{Port: "in"}, Target: Endpoint{Processor: "A", Port: "x"}},
			{Source: Endpoint{Processor: "A", Port: "y"}, Target: Endpoint{Port: "out"}},
		},
	}
	res, err := NewEngine(reg).Run(context.Background(), d, map[string]Data{"in": Scalar("v")})
	if err != nil {
		t.Fatalf("retrying run failed: %v", err)
	}
	if res.Outputs["out"].String() != "v" {
		t.Fatalf("out = %q", res.Outputs["out"])
	}
	if atomic.LoadInt32(&calls) != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
	// With zero retries the same workflow fails.
	atomic.StoreInt32(&calls, 0)
	d.Processors[0].Retries = 0
	if _, err := NewEngine(reg).Run(context.Background(), d, map[string]Data{"in": Scalar("v")}); err == nil {
		t.Fatal("fail-fast run succeeded")
	}
	// Retries exhausted -> error mentions attempts.
	atomic.StoreInt32(&calls, 0)
	d.Processors[0].Retries = 1
	_, err = NewEngine(reg).Run(context.Background(), d, map[string]Data{"in": Scalar("v")})
	if err == nil || !strings.Contains(err.Error(), "after 2 attempts") {
		t.Fatalf("exhausted retries error: %v", err)
	}
	// Retries survive XML round-trip.
	d.Processors[0].Retries = 4
	blob, err := MarshalXML(d)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalXML(blob)
	if err != nil {
		t.Fatal(err)
	}
	if back.Processors[0].Retries != 4 {
		t.Fatalf("retries lost over XML: %d", back.Processors[0].Retries)
	}
	// ...and Clone.
	if d.Clone().Processors[0].Retries != 4 {
		t.Fatal("retries lost in Clone")
	}
}

func TestRetryPerIterationElement(t *testing.T) {
	// Each list element gets its own retry budget.
	var mu sync.Mutex
	failures := map[string]int{}
	reg := NewRegistry()
	reg.Register("flaky", func(_ context.Context, c Call) (map[string]Data, error) {
		v := c.Input("x").String()
		mu.Lock()
		defer mu.Unlock()
		if failures[v] < 1 {
			failures[v]++
			return nil, errors.New("first attempt always fails")
		}
		return map[string]Data{"y": Scalar(strings.ToUpper(v))}, nil
	})
	d := &Definition{
		ID: "wf-iter-retry", Name: "iter-retry",
		Inputs:  []Port{{Name: "in", Depth: 1}},
		Outputs: []Port{{Name: "out", Depth: 1}},
		Processors: []*Processor{
			{Name: "A", Service: "flaky", Retries: 2,
				Inputs: []Port{{Name: "x"}}, Outputs: []Port{{Name: "y"}}},
		},
		Links: []Link{
			{Source: Endpoint{Port: "in"}, Target: Endpoint{Processor: "A", Port: "x"}},
			{Source: Endpoint{Processor: "A", Port: "y"}, Target: Endpoint{Port: "out"}},
		},
	}
	res, err := NewEngine(reg).Run(context.Background(), d,
		map[string]Data{"in": List(Scalar("a"), Scalar("b"), Scalar("c"))})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Outputs["out"].String(); got != "[A, B, C]" {
		t.Fatalf("out = %q", got)
	}
}

func iterDef(retries int) *Definition {
	return &Definition{
		ID: "wf-iter", Name: "iter",
		Inputs:  []Port{{Name: "in", Depth: 1}},
		Outputs: []Port{{Name: "out", Depth: 1}},
		Processors: []*Processor{
			{Name: "A", Service: "work", Retries: retries,
				Inputs: []Port{{Name: "x"}}, Outputs: []Port{{Name: "y"}}},
		},
		Links: []Link{
			{Source: Endpoint{Port: "in"}, Target: Endpoint{Processor: "A", Port: "x"}},
			{Source: Endpoint{Processor: "A", Port: "y"}, Target: Endpoint{Port: "out"}},
		},
	}
}

func TestParallelIterationMatchesSequential(t *testing.T) {
	// Later elements finish first (reverse latency), so any ordering bug in
	// the parallel collector shows up as scrambled outputs or traces.
	const n = 24
	reg := NewRegistry()
	reg.Register("work", func(_ context.Context, c Call) (map[string]Data, error) {
		v := c.Input("x").String()
		var idx int
		fmt.Sscanf(v, "item%02d", &idx)
		time.Sleep(time.Duration(n-idx) * 300 * time.Microsecond)
		return map[string]Data{"y": Scalar(strings.ToUpper(v))}, nil
	})
	items := make([]Data, n)
	for i := range items {
		items[i] = Scalar(fmt.Sprintf("item%02d", i))
	}
	in := map[string]Data{"in": List(items...)}

	type capture struct {
		out      string
		elements string
	}
	runWith := func(parallel int) capture {
		var mu sync.Mutex
		var elems string
		eng := NewEngine(reg)
		eng.Parallel = parallel
		res, err := eng.Run(context.Background(), iterDef(0), in,
			ListenerFunc(func(e Event) {
				if e.Type == EventProcessorCompleted && e.Processor == "A" {
					mu.Lock()
					elems = fmt.Sprintf("%+v", e.Elements)
					mu.Unlock()
				}
			}))
		if err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		if res.Invocations["A"] != n {
			t.Fatalf("parallel=%d: invocations = %d", parallel, res.Invocations["A"])
		}
		return capture{out: res.Outputs["out"].String(), elements: elems}
	}

	want := runWith(0) // sequential reference
	if want.elements == "" || !strings.Contains(want.elements, "Index:0") {
		t.Fatalf("reference trace missing: %q", want.elements)
	}
	for _, parallel := range []int{1, 4, 32} {
		got := runWith(parallel)
		if got.out != want.out {
			t.Errorf("parallel=%d outputs diverge:\n got %s\nwant %s", parallel, got.out, want.out)
		}
		if got.elements != want.elements {
			t.Errorf("parallel=%d element traces diverge from sequential run", parallel)
		}
	}
}

func TestEngineUnifiedBudgetBoundsElements(t *testing.T) {
	// Three iterating processors share one engine-wide budget of 2. The old
	// processor-only semaphore design would either deadlock here (processors
	// holding slots while their elements wait for slots) or let 3×budget
	// elements run at once. The unified budget must (a) finish and (b) keep
	// total in-flight service calls ≤ 2.
	const procs, elems, budget = 3, 8, 2
	var cur, max int32
	reg := NewRegistry()
	reg.Register("slow", func(_ context.Context, c Call) (map[string]Data, error) {
		v := atomic.AddInt32(&cur, 1)
		for {
			m := atomic.LoadInt32(&max)
			if v <= m || atomic.CompareAndSwapInt32(&max, m, v) {
				break
			}
		}
		time.Sleep(2 * time.Millisecond)
		atomic.AddInt32(&cur, -1)
		return map[string]Data{"y": c.Input("x")}, nil
	})
	d := &Definition{ID: "wf-budget", Name: "budget", Inputs: []Port{{Name: "in", Depth: 1}}}
	for i := 0; i < procs; i++ {
		name := fmt.Sprintf("P%d", i)
		out := fmt.Sprintf("out%d", i)
		d.Processors = append(d.Processors, &Processor{
			Name: name, Service: "slow",
			Inputs: []Port{{Name: "x"}}, Outputs: []Port{{Name: "y"}},
		})
		d.Outputs = append(d.Outputs, Port{Name: out, Depth: 1})
		d.Links = append(d.Links,
			Link{Source: Endpoint{Port: "in"}, Target: Endpoint{Processor: name, Port: "x"}},
			Link{Source: Endpoint{Processor: name, Port: "y"}, Target: Endpoint{Port: out}},
		)
	}
	items := make([]Data, elems)
	for i := range items {
		items[i] = Scalar(fmt.Sprintf("v%d", i))
	}
	eng := NewEngine(reg)
	eng.Parallel = budget
	done := make(chan error, 1)
	go func() {
		_, err := eng.Run(context.Background(), d, map[string]Data{"in": List(items...)})
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("unified budget deadlocked")
	}
	if got := atomic.LoadInt32(&max); got > budget {
		t.Fatalf("concurrency reached %d, budget %d", got, budget)
	}
	m := eng.Metrics()
	if m.Invocations != procs*elems || m.ElementsDispatched != procs*elems {
		t.Fatalf("metrics = %+v", m)
	}
	if m.InFlight != 0 || m.PeakInFlight > budget || m.PeakInFlight < 1 {
		t.Fatalf("in-flight gauge = %+v", m)
	}
}

func TestParallelIterationFailFast(t *testing.T) {
	// Element 5 fails; everything else blocks until cancelled. The run must
	// report the sequential engine's error shape and cancel the stragglers.
	const n, failAt = 12, 5
	var started, cancelled int32
	boom := errors.New("boom")
	reg := NewRegistry()
	reg.Register("work", func(ctx context.Context, c Call) (map[string]Data, error) {
		atomic.AddInt32(&started, 1)
		if c.Input("x").String() == fmt.Sprintf("item%02d", failAt) {
			return nil, boom
		}
		select {
		case <-ctx.Done():
			atomic.AddInt32(&cancelled, 1)
			return nil, ctx.Err()
		case <-time.After(5 * time.Second):
			return map[string]Data{"y": c.Input("x")}, nil
		}
	})
	items := make([]Data, n)
	for i := range items {
		items[i] = Scalar(fmt.Sprintf("item%02d", i))
	}
	eng := NewEngine(reg)
	eng.Parallel = 8
	start := time.Now()
	_, err := eng.Run(context.Background(), iterDef(0), map[string]Data{"in": List(items...)})
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("failure not propagated: %v", err)
	}
	if !strings.Contains(err.Error(), fmt.Sprintf("iteration %d:", failAt)) {
		t.Fatalf("error shape = %v", err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("fail-fast took %s — cancellation did not reach in-flight elements", elapsed)
	}
	if atomic.LoadInt32(&cancelled) == 0 {
		t.Fatal("no in-flight element observed cancellation")
	}
}

func TestBackoffDelay(t *testing.T) {
	p := &Processor{RetryBase: 10 * time.Millisecond, RetryCap: 40 * time.Millisecond}
	for attempt, wantCeil := range map[int]time.Duration{
		1: 10 * time.Millisecond,
		2: 20 * time.Millisecond,
		3: 40 * time.Millisecond,
		4: 40 * time.Millisecond, // capped
		9: 40 * time.Millisecond,
	} {
		for trial := 0; trial < 50; trial++ {
			d := backoffDelay(p, attempt)
			if d <= 0 || d > wantCeil {
				t.Fatalf("attempt %d: delay %s outside (0, %s]", attempt, d, wantCeil)
			}
		}
	}
	// Zero base: no backoff at all (the historical default).
	if d := backoffDelay(&Processor{Retries: 3}, 1); d != 0 {
		t.Fatalf("zero-base delay = %s", d)
	}
	// Base without cap defaults the ceiling, not the disable switch.
	if d := backoffDelay(&Processor{RetryBase: time.Millisecond}, 1); d <= 0 || d > time.Millisecond {
		t.Fatalf("uncapped first delay = %s", d)
	}
}

func TestRetryBackoffSleepsAndHonorsCancel(t *testing.T) {
	var calls int32
	reg := NewRegistry()
	reg.Register("flaky", func(_ context.Context, c Call) (map[string]Data, error) {
		if atomic.AddInt32(&calls, 1) < 3 {
			return nil, errors.New("transient")
		}
		return map[string]Data{"y": c.Input("x")}, nil
	})
	d := iterDef(0)
	d.Processors[0].Service = "flaky"
	d.Processors[0].Retries = 4
	d.Processors[0].RetryBase = 5 * time.Millisecond
	d.Processors[0].RetryCap = 10 * time.Millisecond
	// Scalar input: single invocation with two backoff sleeps.
	d.Inputs = []Port{{Name: "in"}}
	d.Outputs = []Port{{Name: "out"}}
	res, err := NewEngine(reg).Run(context.Background(), d, map[string]Data{"in": Scalar("v")})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outputs["out"].String() != "v" {
		t.Fatalf("out = %q", res.Outputs["out"])
	}
	// Cancellation during backoff aborts promptly instead of sleeping on.
	atomic.StoreInt32(&calls, -1000000)
	d.Processors[0].RetryBase = 10 * time.Second
	d.Processors[0].RetryCap = 10 * time.Second
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = NewEngine(reg).Run(ctx, d, map[string]Data{"in": Scalar("v")})
	if err == nil {
		t.Fatal("cancelled backoff run succeeded")
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("backoff ignored context cancellation")
	}
}

func TestRetryBackoffXMLAndClone(t *testing.T) {
	d := iterDef(3)
	d.Processors[0].RetryBase = 250 * time.Millisecond
	d.Processors[0].RetryCap = 4 * time.Second
	blob, err := MarshalXML(d)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalXML(blob)
	if err != nil {
		t.Fatal(err)
	}
	if p := back.Processors[0]; p.RetryBase != 250*time.Millisecond || p.RetryCap != 4*time.Second {
		t.Fatalf("backoff lost over XML: base=%s cap=%s", p.RetryBase, p.RetryCap)
	}
	if p := d.Clone().Processors[0]; p.RetryBase != 250*time.Millisecond || p.RetryCap != 4*time.Second {
		t.Fatalf("backoff lost in Clone: base=%s cap=%s", p.RetryBase, p.RetryCap)
	}
}

func TestRegistry(t *testing.T) {
	reg := NewRegistry()
	if _, ok := reg.Lookup("x"); ok {
		t.Fatal("empty registry resolved a name")
	}
	reg.Register("x", func(_ context.Context, c Call) (map[string]Data, error) { return nil, nil })
	if _, ok := reg.Lookup("x"); !ok {
		t.Fatal("registered service not found")
	}
	if len(reg.Names()) != 1 {
		t.Fatalf("Names = %v", reg.Names())
	}
}

func TestEventTypeString(t *testing.T) {
	for _, tt := range []EventType{EventWorkflowStarted, EventProcessorStarted, EventProcessorCompleted,
		EventProcessorFailed, EventWorkflowCompleted, EventWorkflowFailed} {
		if strings.HasPrefix(tt.String(), "event(") {
			t.Fatalf("missing name for %d", tt)
		}
	}
}
