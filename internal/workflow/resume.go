package workflow

import "context"

// Checkpoint records the durable completion of one processor: the outputs it
// produced and how many service invocations produced them. The provenance
// layer streams one checkpoint per completed processor into the run's delta
// stream; after a crash, the checkpoints recovered from the crash-consistent
// prefix tell Resume which processors can be replayed instead of re-executed.
type Checkpoint struct {
	Processor  string
	Iterations int
	Outputs    map[string]Data
}

// Resume re-executes def under an existing run identity, skipping the
// processors named in completed: their recorded outputs are delivered to
// downstream ports exactly as if they had just finished, but no service is
// invoked and no processor events are emitted for them. Only the remainder
// of the dataflow runs. Listeners observe a fresh workflow-started event
// (carrying the original runID) followed by events for the re-executed
// processors, so a provenance collector preloaded with the crash-consistent
// prefix converges on the same graph an uninterrupted run produces.
//
// The checkpoints must form a causally closed set — every upstream of a
// checkpointed processor checkpointed too. Checkpoints streamed in delta
// order guarantee this: a processor's checkpoint is always persisted after
// its upstreams' (the engine only starts a processor once its inputs exist).
func (e *Engine) Resume(ctx context.Context, def *Definition, inputs map[string]Data, runID string, completed []Checkpoint, listeners ...Listener) (*RunResult, error) {
	return e.run(ctx, def, inputs, runID, completed, listeners)
}
