package workflow

import (
	"context"
	"strings"
	"testing"
)

// innerDef: in -> upper -> exclaim -> out (reuses upperReg services).
func innerDef() *Definition {
	d := linearDef()
	d.ID, d.Name = "wf-inner", "inner"
	d.Processors[0].Service = "upper"
	d.Processors[1].Service = "exclaim"
	return d
}

func TestNestedWorkflowExecution(t *testing.T) {
	reg := upperReg()
	proc, err := RegisterNested(reg, "shout", innerDef())
	if err != nil {
		t.Fatal(err)
	}
	if proc.Service != "nested:shout" || !IsNestedService(proc.Service) {
		t.Fatalf("nested service = %q", proc.Service)
	}
	if len(proc.Inputs) != 1 || proc.Inputs[0].Name != "in" {
		t.Fatalf("nested ports = %+v", proc.Inputs)
	}
	// Outer workflow: wrap the nested processor between two exclaims.
	outer := &Definition{
		ID: "wf-outer", Name: "outer",
		Inputs:  []Port{{Name: "x"}},
		Outputs: []Port{{Name: "y"}},
		Processors: []*Processor{
			proc,
			{Name: "Tail", Service: "exclaim", Inputs: []Port{{Name: "x"}}, Outputs: []Port{{Name: "y"}}},
		},
		Links: []Link{
			{Source: Endpoint{Port: "x"}, Target: Endpoint{Processor: "shout", Port: "in"}},
			{Source: Endpoint{Processor: "shout", Port: "out"}, Target: Endpoint{Processor: "Tail", Port: "x"}},
			{Source: Endpoint{Processor: "Tail", Port: "y"}, Target: Endpoint{Port: "y"}},
		},
	}
	res, err := NewEngine(reg).Run(context.Background(), outer, map[string]Data{"x": Scalar("hi")})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Outputs["y"].String(); got != "HI!!" {
		t.Fatalf("nested result = %q", got)
	}
}

func TestNestedWorkflowIterates(t *testing.T) {
	reg := upperReg()
	proc, err := RegisterNested(reg, "shout", innerDef())
	if err != nil {
		t.Fatal(err)
	}
	outer := &Definition{
		ID: "wf-outer-iter", Name: "outer-iter",
		Inputs:     []Port{{Name: "x", Depth: 1}},
		Outputs:    []Port{{Name: "y", Depth: 1}},
		Processors: []*Processor{proc},
		Links: []Link{
			{Source: Endpoint{Port: "x"}, Target: Endpoint{Processor: "shout", Port: "in"}},
			{Source: Endpoint{Processor: "shout", Port: "out"}, Target: Endpoint{Port: "y"}},
		},
	}
	res, err := NewEngine(reg).Run(context.Background(), outer,
		map[string]Data{"x": List(Scalar("a"), Scalar("b"))})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Outputs["y"].String(); got != "[A!, B!]" {
		t.Fatalf("iterated nested result = %q", got)
	}
}

func TestNestedWorkflowFailurePropagates(t *testing.T) {
	reg := upperReg()
	bad := innerDef()
	bad.Processors[1].Service = "unregistered"
	// Registration validates structure only; the missing service surfaces at
	// run time with the nested workflow's name in the error.
	proc, err := RegisterNested(reg, "broken", bad)
	if err != nil {
		t.Fatal(err)
	}
	outer := &Definition{
		ID: "wf-outer-bad", Name: "outer-bad",
		Inputs:     []Port{{Name: "x"}},
		Outputs:    []Port{{Name: "y"}},
		Processors: []*Processor{proc},
		Links: []Link{
			{Source: Endpoint{Port: "x"}, Target: Endpoint{Processor: "broken", Port: "in"}},
			{Source: Endpoint{Processor: "broken", Port: "out"}, Target: Endpoint{Port: "y"}},
		},
	}
	_, err = NewEngine(reg).Run(context.Background(), outer, map[string]Data{"x": Scalar("a")})
	if err == nil || !strings.Contains(err.Error(), `nested workflow "broken"`) {
		t.Fatalf("nested failure: %v", err)
	}
}

func TestRegisterNestedValidates(t *testing.T) {
	reg := upperReg()
	bad := innerDef()
	bad.Name = ""
	if _, err := RegisterNested(reg, "x", bad); err == nil {
		t.Fatal("invalid nested definition registered")
	}
}

func TestRegisterNestedIsolatedFromMutation(t *testing.T) {
	reg := upperReg()
	inner := innerDef()
	if _, err := RegisterNested(reg, "shout", inner); err != nil {
		t.Fatal(err)
	}
	// Mutating the original definition after registration must not affect
	// the registered copy.
	inner.Processors[0].Service = "nonexistent"
	outer := &Definition{
		ID: "wf-outer2", Name: "outer2",
		Inputs:  []Port{{Name: "x"}},
		Outputs: []Port{{Name: "y"}},
		Processors: []*Processor{
			{Name: "shout", Service: "nested:shout",
				Inputs: []Port{{Name: "in"}}, Outputs: []Port{{Name: "out"}}},
		},
		Links: []Link{
			{Source: Endpoint{Port: "x"}, Target: Endpoint{Processor: "shout", Port: "in"}},
			{Source: Endpoint{Processor: "shout", Port: "out"}, Target: Endpoint{Port: "y"}},
		},
	}
	res, err := NewEngine(reg).Run(context.Background(), outer, map[string]Data{"x": Scalar("ok")})
	if err != nil {
		t.Fatalf("mutation leaked into registered nested def: %v", err)
	}
	if res.Outputs["y"].String() != "OK!" {
		t.Fatalf("result = %q", res.Outputs["y"])
	}
}
