package workflow

import (
	"context"
	"fmt"
	"strings"
	"sync"
)

// Nested workflows, as in Taverna: a processor whose implementation is
// another dataflow. The sub-workflow's workflow inputs/outputs become the
// processor's ports, and the engine recurses. Nesting composes with implicit
// iteration — a nested processor with scalar ports iterates element-wise
// over list inputs like any service.
//
// Registration model: nested definitions are registered on the Registry
// under a service name via RegisterNested, so specifications stay plain
// (processors still reference services by name) and XML round-trips without
// a new schema.

// NestedPrefix marks registry names that resolve to nested definitions.
const NestedPrefix = "nested:"

// RegisterNested binds def as a callable service named NestedPrefix+name.
// The definition is validated and cloned at registration time. The returned
// processor template carries ports matching the sub-workflow's boundary, for
// convenience when building the outer definition.
func RegisterNested(reg *Registry, name string, def *Definition) (*Processor, error) {
	if err := Validate(def); err != nil {
		return nil, fmt.Errorf("workflow: nested %q: %w", name, err)
	}
	cp := def.Clone()
	service := NestedPrefix + name
	var engOnce sync.Once
	var eng *Engine
	reg.Register(service, func(ctx context.Context, call Call) (map[string]Data, error) {
		engOnce.Do(func() { eng = NewEngine(reg) })
		res, err := eng.Run(ctx, cp, call.Inputs)
		if err != nil {
			return nil, fmt.Errorf("nested workflow %q: %w", name, err)
		}
		return res.Outputs, nil
	})
	proc := &Processor{
		Name:    name,
		Service: service,
		Inputs:  append([]Port(nil), cp.Inputs...),
		Outputs: append([]Port(nil), cp.Outputs...),
	}
	return proc, nil
}

// IsNestedService reports whether a service name denotes a nested workflow.
func IsNestedService(service string) bool { return strings.HasPrefix(service, NestedPrefix) }
