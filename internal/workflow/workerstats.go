package workflow

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// WorkerRegistry tracks the event-sourced engine's worker pool and queue
// gauges across runs, for the /metrics bridge and the /api/v1/workers
// endpoint. One registry is shared process-wide (core.System owns it); every
// method is safe on a nil receiver so the engine can run unobserved.
type WorkerRegistry struct {
	mu      sync.Mutex
	nextID  int64
	workers map[string]*WorkerInfo

	// queue gauges, engine-driven: ready (enqueued, not yet dequeued) and
	// leased (dequeued, not yet done) task counts across live runs.
	queueDepth int64
	inFlight   int64

	// cumulative counters
	started    int64
	exited     int64
	killed     int64
	tasksTotal int64
}

// WorkerInfo is one worker's liveness snapshot.
type WorkerInfo struct {
	ID         string    `json:"id"`
	RunID      string    `json:"run_id"`
	Tasks      int64     `json:"tasks"`
	Busy       bool      `json:"busy"`
	Alive      bool      `json:"alive"`
	Killed     bool      `json:"killed"`
	Remote     bool      `json:"remote,omitempty"`
	LastActive time.Time `json:"last_active"`
}

// NewWorkerRegistry returns an empty registry.
func NewWorkerRegistry() *WorkerRegistry {
	return &WorkerRegistry{workers: make(map[string]*WorkerInfo)}
}

// Register mints a process-unique worker ID ("w-1", "w-2", ...) bound to a
// run and marks it alive. On a nil registry it returns "" and the engine
// falls back to run-local worker names.
func (r *WorkerRegistry) Register(runID string) string {
	if r == nil {
		return ""
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.nextID++
	r.started++
	id := fmt.Sprintf("w-%d", r.nextID)
	r.workers[id] = &WorkerInfo{ID: id, RunID: runID, Alive: true, LastActive: time.Now()}
	return id
}

// RegisterRemote tracks an out-of-process worker under its self-chosen name,
// prefixed "r-" to keep the namespace disjoint from pool workers. Re-
// registering the same name (a worker reconnecting) revives the existing row.
func (r *WorkerRegistry) RegisterRemote(name, runID string) string {
	if r == nil {
		return "r-" + name
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	id := "r-" + name
	if w := r.workers[id]; w != nil {
		w.Alive = true
		w.RunID = runID
		w.LastActive = time.Now()
		return id
	}
	r.started++
	r.workers[id] = &WorkerInfo{ID: id, RunID: runID, Alive: true, Remote: true, LastActive: time.Now()}
	return id
}

// TaskStarted marks a worker busy with one dequeued task.
func (r *WorkerRegistry) TaskStarted(workerID string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.queueDepth--
	r.inFlight++
	if w := r.workers[workerID]; w != nil {
		w.Busy = true
		w.LastActive = time.Now()
	}
}

// TaskDone marks a worker's current task finished.
func (r *WorkerRegistry) TaskDone(workerID string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.inFlight--
	r.tasksTotal++
	if w := r.workers[workerID]; w != nil {
		w.Busy = false
		w.Tasks++
		w.LastActive = time.Now()
	}
}

// TaskRequeued returns a dequeued-but-unfinished task to the ready gauge
// (a killed worker Nacked it).
func (r *WorkerRegistry) TaskRequeued(workerID string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.inFlight--
	r.queueDepth++
	if w := r.workers[workerID]; w != nil {
		w.Busy = false
	}
}

// TasksEnqueued bumps the ready gauge by n freshly enqueued tasks.
func (r *WorkerRegistry) TasksEnqueued(n int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.queueDepth += int64(n)
}

// Exited marks a worker done; killed workers (chaos trials) are counted
// separately.
func (r *WorkerRegistry) Exited(workerID string, wasKilled bool) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.exited++
	if wasKilled {
		r.killed++
	}
	if w := r.workers[workerID]; w != nil {
		w.Alive = false
		w.Busy = false
		w.Killed = wasKilled
		w.LastActive = time.Now()
	}
}

// Counters exports the registry as flat observation counters for the obs
// bridge ("workers.*" pool counters plus the "queue.*" dispatch gauges).
func (r *WorkerRegistry) Counters() map[string]float64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var alive, busy int64
	for _, w := range r.workers {
		if w.Alive {
			alive++
			if w.Busy {
				busy++
			}
		}
	}
	return map[string]float64{
		"workers.alive":       float64(alive),
		"workers.busy":        float64(busy),
		"workers.started":     float64(r.started),
		"workers.exited":      float64(r.exited),
		"workers.killed":      float64(r.killed),
		"workers.tasks_total": float64(r.tasksTotal),
		"queue.depth":         float64(max64(r.queueDepth, 0)),
		"queue.in_flight":     float64(max64(r.inFlight, 0)),
	}
}

// Snapshot returns every tracked worker, sorted by ID, for the API layer.
func (r *WorkerRegistry) Snapshot() []WorkerInfo {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]WorkerInfo, 0, len(r.workers))
	for _, w := range r.workers {
		out = append(out, *w)
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i].ID) != len(out[j].ID) {
			return len(out[i].ID) < len(out[j].ID)
		}
		return out[i].ID < out[j].ID
	})
	return out
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
