package workflow

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"
)

// Workflow decay detection, after Zhao et al. ("Why workflows break",
// e-Science 2012), which the paper's conclusion cites to argue that quality
// assessment must be continuous: workflows rot when third-party services
// vanish or change, when example inputs disappear, and when their
// descriptions go stale. DecayDetector diagnoses a stored definition against
// the current registry, optional external health probes, a staleness budget
// for annotations, and an optional golden run.

// DecayKind classifies one decay finding.
type DecayKind uint8

// Decay kinds, ordered roughly by severity.
const (
	// DecayInvalid: the definition no longer validates structurally.
	DecayInvalid DecayKind = iota
	// DecayMissingService: a processor references a service absent from the
	// registry (the "third-party resource is missing" case).
	DecayMissingService
	// DecayUnhealthyService: the service exists but its health probe fails
	// (dead endpoint, authority offline).
	DecayUnhealthyService
	// DecayStaleAnnotation: a quality annotation is older than the staleness
	// budget — its assertion can no longer be trusted.
	DecayStaleAnnotation
	// DecayOutputDrift: re-executing the workflow on golden inputs no longer
	// reproduces the golden outputs (the "third-party resource changed"
	// case).
	DecayOutputDrift
	// DecayExecutionFailure: the golden run failed outright.
	DecayExecutionFailure
)

// String names the decay kind.
func (k DecayKind) String() string {
	switch k {
	case DecayInvalid:
		return "invalid-definition"
	case DecayMissingService:
		return "missing-service"
	case DecayUnhealthyService:
		return "unhealthy-service"
	case DecayStaleAnnotation:
		return "stale-annotation"
	case DecayOutputDrift:
		return "output-drift"
	case DecayExecutionFailure:
		return "execution-failure"
	default:
		return fmt.Sprintf("decay(%d)", uint8(k))
	}
}

// DecayFinding is one diagnosed problem.
type DecayFinding struct {
	Kind      DecayKind
	Processor string // "" for workflow-level findings
	Detail    string
}

// HealthProbe checks whether the external resource behind a processor is
// alive. A nil error means healthy.
type HealthProbe func(proc *Processor) error

// DecayDetector diagnoses workflow decay.
type DecayDetector struct {
	Registry *Registry
	// Probe, when set, is called for every processor (e.g. hitting the
	// authority's /healthz).
	Probe HealthProbe
	// MaxAnnotationAge is the staleness budget for quality annotations
	// (0 disables the check).
	MaxAnnotationAge time.Duration
	// Now supplies the clock (defaults to time.Now).
	Now func() time.Time
}

// Check diagnoses def without executing it. Findings are ordered by kind,
// then processor.
func (d *DecayDetector) Check(def *Definition) []DecayFinding {
	now := time.Now
	if d.Now != nil {
		now = d.Now
	}
	var out []DecayFinding
	if err := Validate(def); err != nil {
		out = append(out, DecayFinding{Kind: DecayInvalid, Detail: err.Error()})
		// Structural breakage makes other checks unreliable; stop here.
		return out
	}
	for _, p := range def.Processors {
		if d.Registry != nil {
			if _, ok := d.Registry.Lookup(p.Service); !ok {
				out = append(out, DecayFinding{
					Kind: DecayMissingService, Processor: p.Name,
					Detail: fmt.Sprintf("service %q is not registered", p.Service),
				})
				continue
			}
		}
		if d.Probe != nil {
			if err := d.Probe(p); err != nil {
				out = append(out, DecayFinding{
					Kind: DecayUnhealthyService, Processor: p.Name,
					Detail: fmt.Sprintf("health probe failed: %v", err),
				})
			}
		}
		if d.MaxAnnotationAge > 0 {
			for _, a := range p.Annotations {
				if QualityDimension(a.Key) == "" || a.Date.IsZero() {
					continue
				}
				if age := now().Sub(a.Date); age > d.MaxAnnotationAge {
					out = append(out, DecayFinding{
						Kind: DecayStaleAnnotation, Processor: p.Name,
						Detail: fmt.Sprintf("%s asserted %s ago (budget %s)", a.Key, age.Round(time.Hour), d.MaxAnnotationAge),
					})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].Processor < out[j].Processor
	})
	return out
}

// GoldenRun re-executes def on golden inputs and compares each output to the
// recorded golden value, reporting drift or execution failure. A clean run
// returns no findings.
func (d *DecayDetector) GoldenRun(ctx context.Context, def *Definition, inputs, golden map[string]Data) []DecayFinding {
	if d.Registry == nil {
		return []DecayFinding{{Kind: DecayExecutionFailure, Detail: "no registry to execute against"}}
	}
	eng := NewEngine(d.Registry)
	res, err := eng.Run(ctx, def, inputs)
	if err != nil {
		return []DecayFinding{{Kind: DecayExecutionFailure, Detail: err.Error()}}
	}
	var out []DecayFinding
	ports := make([]string, 0, len(golden))
	for port := range golden {
		ports = append(ports, port)
	}
	sort.Strings(ports)
	for _, port := range ports {
		got, ok := res.Outputs[port]
		if !ok {
			out = append(out, DecayFinding{
				Kind: DecayOutputDrift, Detail: fmt.Sprintf("output %q missing from run", port),
			})
			continue
		}
		if got.String() != golden[port].String() {
			out = append(out, DecayFinding{
				Kind:   DecayOutputDrift,
				Detail: fmt.Sprintf("output %q drifted: golden %d bytes, got %d bytes", port, len(golden[port].String()), len(got.String())),
			})
		}
	}
	return out
}

// ErrDecayed is a convenience sentinel for callers that treat any finding as
// fatal.
var ErrDecayed = errors.New("workflow: definition has decayed")

// MustBeFresh returns ErrDecayed (wrapped with the first finding) if Check
// reports anything.
func (d *DecayDetector) MustBeFresh(def *Definition) error {
	findings := d.Check(def)
	if len(findings) == 0 {
		return nil
	}
	return fmt.Errorf("%w: %s (%d findings)", ErrDecayed, findings[0].Detail, len(findings))
}
