package workflow

import (
	"bytes"
	"encoding/json"
)

// MarshalJSON encodes a Data unambiguously: scalars as JSON strings, lists as
// JSON arrays (recursively). This is the wire format checkpoints use to
// persist processor outputs, so it must round-trip exactly through
// UnmarshalJSON.
func (d Data) MarshalJSON() ([]byte, error) {
	if !d.isList {
		return json.Marshal(d.scalar)
	}
	if d.list == nil {
		return []byte("[]"), nil
	}
	return json.Marshal(d.list)
}

// UnmarshalJSON decodes the MarshalJSON form: a JSON string becomes a scalar,
// a JSON array becomes a list.
func (d *Data) UnmarshalJSON(b []byte) error {
	if t := bytes.TrimLeft(b, " \t\r\n"); len(t) > 0 && t[0] == '[' {
		items := []Data{}
		if err := json.Unmarshal(b, &items); err != nil {
			return err
		}
		*d = Data{list: items, isList: true}
		return nil
	}
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	*d = Data{scalar: s}
	return nil
}
