package workflow

import (
	"strings"
	"testing"
	"time"

	"repro/internal/storage"
)

func annotatedDef() *Definition {
	d := linearDef()
	d.Description = "detect outdated species names"
	d.Processors[0].Name = "Catalog_of_life"
	d.Processors[0].Config = map[string]string{"url": "http://localhost:9090", "fuzzy": "2"}
	when := time.Date(2013, 11, 12, 19, 58, 9, 767000000, time.UTC)
	d.Links[0].Target.Processor = "Catalog_of_life"
	d.Links[1].Source.Processor = "Catalog_of_life"
	d.AnnotateProcessor("Catalog_of_life", QualityKey("reputation"), "1", "expert", when)
	d.AnnotateProcessor("Catalog_of_life", QualityKey("availability"), "0.9", "expert", when)
	d.Annotate("author", "FNJV curation team", "cmbm", when)
	return d
}

func TestXMLRoundTrip(t *testing.T) {
	d := annotatedDef()
	blob, err := MarshalXML(d)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalXML(blob)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != d.ID || got.Name != d.Name || got.Description != d.Description {
		t.Fatalf("header lost: %+v", got)
	}
	if len(got.Processors) != 2 || got.Processors[0].Name != "Catalog_of_life" {
		t.Fatalf("processors lost: %+v", got.Processors)
	}
	p := got.Processors[0]
	if p.Config["url"] != "http://localhost:9090" || p.Config["fuzzy"] != "2" {
		t.Fatalf("config lost: %v", p.Config)
	}
	q := QualityAnnotations(p.Annotations)
	if q["reputation"] != "1" || q["availability"] != "0.9" {
		t.Fatalf("quality annotations lost: %v", q)
	}
	if !p.Annotations[0].Date.Equal(time.Date(2013, 11, 12, 19, 58, 9, 767000000, time.UTC)) {
		t.Fatalf("annotation date = %v", p.Annotations[0].Date)
	}
	if len(got.Links) != len(d.Links) {
		t.Fatalf("links lost: %d vs %d", len(got.Links), len(d.Links))
	}
	if len(got.Annotations) != 1 || got.Annotations[0].Value != "FNJV curation team" {
		t.Fatalf("workflow annotations lost: %+v", got.Annotations)
	}
	// The round-tripped definition must still validate.
	if err := Validate(got); err != nil {
		t.Fatalf("round-tripped definition invalid: %v", err)
	}
}

func TestXMLListing1Shape(t *testing.T) {
	// The serialized form must carry the paper's Listing 1 content: a
	// processor named Catalog_of_life annotated Q(reputation): 1 and
	// Q(availability): 0.9.
	blob, err := MarshalXML(annotatedDef())
	if err != nil {
		t.Fatal(err)
	}
	s := string(blob)
	for _, want := range []string{
		"<name>Catalog_of_life</name>",
		"Q(reputation): 1;",
		"Q(availability): 0.9;",
		"<annotationAssertion>",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("serialized workflow missing %q", want)
		}
	}
}

func TestXMLUnmarshalErrors(t *testing.T) {
	if _, err := UnmarshalXML([]byte("not xml at all <")); err == nil {
		t.Fatal("garbage accepted")
	}
	// Annotation without a key separator.
	bad := `<workflow id="x" name="x" version="1"><annotations><annotationAssertion><text>noseparator</text><date></date></annotationAssertion></annotations></workflow>`
	if _, err := UnmarshalXML([]byte(bad)); err == nil {
		t.Fatal("keyless annotation accepted")
	}
	// Bad date.
	bad2 := `<workflow id="x" name="x" version="1"><annotations><annotationAssertion><text>k: v</text><date>yesterday</date></annotationAssertion></annotations></workflow>`
	if _, err := UnmarshalXML([]byte(bad2)); err == nil {
		t.Fatal("bad date accepted")
	}
}

func TestRepositoryPublishGet(t *testing.T) {
	db, err := storage.Open(t.TempDir(), storage.Options{Sync: storage.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	repo, err := NewRepository(db)
	if err != nil {
		t.Fatal(err)
	}
	d := annotatedDef()
	v1, err := repo.Publish(d)
	if err != nil {
		t.Fatal(err)
	}
	if v1 != 1 {
		t.Fatalf("first version = %d", v1)
	}
	// Publishing again bumps the version.
	d.Description = "revised"
	v2, err := repo.Publish(d)
	if err != nil {
		t.Fatal(err)
	}
	if v2 != 2 {
		t.Fatalf("second version = %d", v2)
	}
	got, err := repo.Get(d.ID, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got.Description != "detect outdated species names" || got.Version != 1 {
		t.Fatalf("v1 = %q v%d", got.Description, got.Version)
	}
	latest, err := repo.Latest(d.ID)
	if err != nil {
		t.Fatal(err)
	}
	if latest.Description != "revised" || latest.Version != 2 {
		t.Fatalf("latest = %q v%d", latest.Description, latest.Version)
	}
	vs, err := repo.Versions(d.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 2 || vs[0].Version != 1 || vs[1].Version != 2 {
		t.Fatalf("versions = %+v", vs)
	}
	all, err := repo.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 1 || all[0].Version != 2 {
		t.Fatalf("List = %+v", all)
	}
}

func TestRepositoryErrors(t *testing.T) {
	db, err := storage.Open(t.TempDir(), storage.Options{Sync: storage.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	repo, err := NewRepository(db)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := repo.Get("missing", 1); err == nil {
		t.Fatal("Get(missing) succeeded")
	}
	if _, err := repo.Latest("missing"); err == nil {
		t.Fatal("Latest(missing) succeeded")
	}
	if _, err := repo.Versions("missing"); err == nil {
		t.Fatal("Versions(missing) succeeded")
	}
	// Invalid definitions are rejected at publish time.
	bad := annotatedDef()
	bad.Name = ""
	if _, err := repo.Publish(bad); err == nil {
		t.Fatal("invalid definition published")
	}
	noID := annotatedDef()
	noID.ID = ""
	if _, err := repo.Publish(noID); err == nil {
		t.Fatal("definition without ID published")
	}
}

func TestRepositorySurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	db, err := storage.Open(dir, storage.Options{Sync: storage.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	repo, err := NewRepository(db)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := repo.Publish(annotatedDef()); err != nil {
		t.Fatal(err)
	}
	db.Close()

	db2, err := storage.Open(dir, storage.Options{Sync: storage.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	repo2, err := NewRepository(db2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := repo2.Latest("wf-linear")
	if err != nil {
		t.Fatal(err)
	}
	q := QualityAnnotations(got.Processors[0].Annotations)
	if q["reputation"] != "1" {
		t.Fatalf("annotations lost across reopen: %v", q)
	}
}
