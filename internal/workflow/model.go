// Package workflow implements the scientific-workflow substrate of the
// architecture: a dataflow model in the spirit of Taverna (processors with
// typed ports connected by data links), structural validation, a parallel
// execution engine that emits provenance events, per-element implicit
// iteration over lists, free-form annotations (the vehicle for the Workflow
// Adapter's quality metadata), an XML serialization comparable to t2flow
// (Listing 1), and a versioned workflow repository.
package workflow

import (
	"fmt"
	"strings"
	"time"
)

// Data is a value flowing through the dataflow: either a scalar string or a
// list of Data (Taverna's string-centric data model). The zero Data is the
// empty scalar.
type Data struct {
	list   []Data
	scalar string
	isList bool
}

// Scalar builds a scalar datum.
func Scalar(s string) Data { return Data{scalar: s} }

// List builds a list datum (the elements are not copied).
func List(items ...Data) Data { return Data{list: items, isList: true} }

// IsList reports whether d is a list.
func (d Data) IsList() bool { return d.isList }

// String returns the scalar payload; for a list it renders the elements
// comma-separated in brackets.
func (d Data) String() string {
	if !d.isList {
		return d.scalar
	}
	parts := make([]string, len(d.list))
	for i, e := range d.list {
		parts[i] = e.String()
	}
	return "[" + strings.Join(parts, ", ") + "]"
}

// Items returns the list elements (nil for scalars).
func (d Data) Items() []Data { return d.list }

// Len returns the list length, or 1 for a scalar.
func (d Data) Len() int {
	if d.isList {
		return len(d.list)
	}
	return 1
}

// Depth reports the nesting depth: 0 for a scalar, 1 for a list of scalars,
// etc. An empty list has depth 1.
func (d Data) Depth() int {
	depth := 0
	for d.isList {
		depth++
		if len(d.list) == 0 {
			break
		}
		d = d.list[0]
	}
	return depth
}

// Port is a named input or output with a declared nesting depth
// (0 = scalar, 1 = list of scalars, ...).
type Port struct {
	Name  string
	Depth int
}

// Annotation is one key/value assertion attached to a workflow or processor
// — Taverna annotation beans. The Workflow Adapter writes quality
// annotations (Q(reputation), Q(availability)) through this mechanism.
type Annotation struct {
	Key    string
	Value  string
	Author string
	Date   time.Time
}

// QualityPrefix marks annotation keys that carry quality metadata, matching
// the paper's Listing 1 syntax "Q(reputation): 1".
const QualityPrefix = "Q("

// QualityKey builds the annotation key for a quality dimension, e.g.
// QualityKey("reputation") == "Q(reputation)".
func QualityKey(dimension string) string { return QualityPrefix + dimension + ")" }

// QualityDimension extracts the dimension from a quality annotation key, or
// "" if the key is not a quality annotation.
func QualityDimension(key string) string {
	if strings.HasPrefix(key, QualityPrefix) && strings.HasSuffix(key, ")") {
		return key[len(QualityPrefix) : len(key)-1]
	}
	return ""
}

// Processor is one step of the dataflow, bound to a registered service.
type Processor struct {
	Name        string
	Service     string // registry key of the implementation
	Inputs      []Port
	Outputs     []Port
	Annotations []Annotation
	// Config carries static service parameters (e.g. authority URL).
	Config map[string]string
	// Retries is the number of extra attempts per invocation when the
	// service errors (Taverna-style per-processor retry; 0 = fail fast).
	Retries int
	// RetryBase, when positive, enables exponential backoff with full
	// jitter between retry attempts: the k-th retry sleeps a uniform draw
	// from (0, min(RetryBase·2^(k-1), RetryCap)]. Zero keeps the historical
	// immediate retry.
	RetryBase time.Duration
	// RetryCap bounds the backoff growth (default 30s when RetryBase > 0).
	RetryCap time.Duration
}

// InputPort returns the input port with the given name.
func (p *Processor) InputPort(name string) (Port, bool) {
	for _, q := range p.Inputs {
		if q.Name == name {
			return q, true
		}
	}
	return Port{}, false
}

// OutputPort returns the output port with the given name.
func (p *Processor) OutputPort(name string) (Port, bool) {
	for _, q := range p.Outputs {
		if q.Name == name {
			return q, true
		}
	}
	return Port{}, false
}

// Endpoint names one side of a data link. Processor=="" refers to the
// workflow boundary (a workflow input or output port).
type Endpoint struct {
	Processor string
	Port      string
}

// String renders "processor.port" or ":port" for the boundary.
func (e Endpoint) String() string {
	if e.Processor == "" {
		return ":" + e.Port
	}
	return e.Processor + "." + e.Port
}

// Link is one data dependency: Source's datum flows to Target.
type Link struct {
	Source Endpoint
	Target Endpoint
}

// Definition is a complete workflow specification.
type Definition struct {
	ID          string
	Name        string
	Description string
	Version     int
	Inputs      []Port
	Outputs     []Port
	Processors  []*Processor
	Links       []Link
	Annotations []Annotation
}

// Processor returns the named processor.
func (d *Definition) Processor(name string) (*Processor, bool) {
	for _, p := range d.Processors {
		if p.Name == name {
			return p, true
		}
	}
	return nil, false
}

// Annotate appends a workflow-level annotation.
func (d *Definition) Annotate(key, value, author string, when time.Time) {
	d.Annotations = append(d.Annotations, Annotation{Key: key, Value: value, Author: author, Date: when})
}

// AnnotateProcessor appends an annotation to the named processor.
func (d *Definition) AnnotateProcessor(proc, key, value, author string, when time.Time) error {
	p, ok := d.Processor(proc)
	if !ok {
		return fmt.Errorf("workflow: no processor %q in %q", proc, d.Name)
	}
	p.Annotations = append(p.Annotations, Annotation{Key: key, Value: value, Author: author, Date: when})
	return nil
}

// QualityAnnotations collects the quality annotations (Q(...) keys) of an
// annotation list as a dimension→value map.
func QualityAnnotations(anns []Annotation) map[string]string {
	out := map[string]string{}
	for _, a := range anns {
		if dim := QualityDimension(a.Key); dim != "" {
			out[dim] = a.Value
		}
	}
	return out
}

// Clone returns a deep copy of the definition, so adapters can instrument a
// workflow without mutating the repository's copy.
func (d *Definition) Clone() *Definition {
	out := &Definition{
		ID:          d.ID,
		Name:        d.Name,
		Description: d.Description,
		Version:     d.Version,
		Inputs:      append([]Port(nil), d.Inputs...),
		Outputs:     append([]Port(nil), d.Outputs...),
		Links:       append([]Link(nil), d.Links...),
		Annotations: append([]Annotation(nil), d.Annotations...),
	}
	for _, p := range d.Processors {
		cp := &Processor{
			Name:        p.Name,
			Service:     p.Service,
			Inputs:      append([]Port(nil), p.Inputs...),
			Outputs:     append([]Port(nil), p.Outputs...),
			Annotations: append([]Annotation(nil), p.Annotations...),
			Retries:     p.Retries,
			RetryBase:   p.RetryBase,
			RetryCap:    p.RetryCap,
		}
		if p.Config != nil {
			cp.Config = make(map[string]string, len(p.Config))
			for k, v := range p.Config {
				cp.Config[k] = v
			}
		}
		out.Processors = append(out.Processors, cp)
	}
	return out
}
