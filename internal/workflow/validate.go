package workflow

import (
	"errors"
	"fmt"
)

// ErrInvalid wraps all structural validation failures.
var ErrInvalid = errors.New("workflow: invalid definition")

// Validate checks the structural well-formedness of a definition:
//
//   - non-empty name; unique processor and port names
//   - every link references existing endpoints with compatible direction
//   - every processor input and every workflow output has exactly one
//     incoming link
//   - the dataflow graph is acyclic
func Validate(d *Definition) error {
	if d.Name == "" {
		return fmt.Errorf("%w: workflow has no name", ErrInvalid)
	}
	procs := map[string]*Processor{}
	for _, p := range d.Processors {
		if p.Name == "" {
			return fmt.Errorf("%w: processor with empty name", ErrInvalid)
		}
		if _, dup := procs[p.Name]; dup {
			return fmt.Errorf("%w: duplicate processor %q", ErrInvalid, p.Name)
		}
		if p.Service == "" {
			return fmt.Errorf("%w: processor %q has no service", ErrInvalid, p.Name)
		}
		if err := uniquePorts(p.Inputs); err != nil {
			return fmt.Errorf("%w: processor %q inputs: %v", ErrInvalid, p.Name, err)
		}
		if err := uniquePorts(p.Outputs); err != nil {
			return fmt.Errorf("%w: processor %q outputs: %v", ErrInvalid, p.Name, err)
		}
		procs[p.Name] = p
	}
	if err := uniquePorts(d.Inputs); err != nil {
		return fmt.Errorf("%w: workflow inputs: %v", ErrInvalid, err)
	}
	if err := uniquePorts(d.Outputs); err != nil {
		return fmt.Errorf("%w: workflow outputs: %v", ErrInvalid, err)
	}

	wfIn := portSet(d.Inputs)
	wfOut := portSet(d.Outputs)

	// Link endpoint resolution + fan-in counting.
	fanIn := map[string]int{} // target endpoint -> count
	for _, l := range d.Links {
		// Source must be a workflow input or a processor output.
		if l.Source.Processor == "" {
			if !wfIn[l.Source.Port] {
				return fmt.Errorf("%w: link source %s is not a workflow input", ErrInvalid, l.Source)
			}
		} else {
			sp, ok := procs[l.Source.Processor]
			if !ok {
				return fmt.Errorf("%w: link source %s references unknown processor", ErrInvalid, l.Source)
			}
			if _, ok := sp.OutputPort(l.Source.Port); !ok {
				return fmt.Errorf("%w: link source %s is not an output port", ErrInvalid, l.Source)
			}
		}
		// Target must be a workflow output or a processor input.
		if l.Target.Processor == "" {
			if !wfOut[l.Target.Port] {
				return fmt.Errorf("%w: link target %s is not a workflow output", ErrInvalid, l.Target)
			}
		} else {
			tp, ok := procs[l.Target.Processor]
			if !ok {
				return fmt.Errorf("%w: link target %s references unknown processor", ErrInvalid, l.Target)
			}
			if _, ok := tp.InputPort(l.Target.Port); !ok {
				return fmt.Errorf("%w: link target %s is not an input port", ErrInvalid, l.Target)
			}
		}
		fanIn[l.Target.String()]++
		if fanIn[l.Target.String()] > 1 {
			return fmt.Errorf("%w: target %s has multiple incoming links", ErrInvalid, l.Target)
		}
	}

	// Completeness: every processor input and workflow output is fed.
	for _, p := range d.Processors {
		for _, in := range p.Inputs {
			ep := Endpoint{Processor: p.Name, Port: in.Name}
			if fanIn[ep.String()] == 0 {
				return fmt.Errorf("%w: processor input %s is unconnected", ErrInvalid, ep)
			}
		}
	}
	for _, out := range d.Outputs {
		ep := Endpoint{Port: out.Name}
		if fanIn[ep.String()] == 0 {
			return fmt.Errorf("%w: workflow output %s is unconnected", ErrInvalid, ep)
		}
	}

	if _, err := topoOrder(d); err != nil {
		return err
	}
	return nil
}

func uniquePorts(ports []Port) error {
	seen := map[string]bool{}
	for _, p := range ports {
		if p.Name == "" {
			return fmt.Errorf("port with empty name")
		}
		if p.Depth < 0 || p.Depth > 3 {
			return fmt.Errorf("port %q has unsupported depth %d", p.Name, p.Depth)
		}
		if seen[p.Name] {
			return fmt.Errorf("duplicate port %q", p.Name)
		}
		seen[p.Name] = true
	}
	return nil
}

func portSet(ports []Port) map[string]bool {
	s := make(map[string]bool, len(ports))
	for _, p := range ports {
		s[p.Name] = true
	}
	return s
}

// topoOrder returns the processors in a topological order of the dataflow
// graph, or an error naming a processor on a cycle.
func topoOrder(d *Definition) ([]*Processor, error) {
	deps := map[string]map[string]bool{} // processor -> upstream processors
	for _, p := range d.Processors {
		deps[p.Name] = map[string]bool{}
	}
	for _, l := range d.Links {
		if l.Source.Processor != "" && l.Target.Processor != "" {
			deps[l.Target.Processor][l.Source.Processor] = true
		}
	}
	var order []*Processor
	done := map[string]bool{}
	for len(order) < len(d.Processors) {
		progressed := false
		for _, p := range d.Processors {
			if done[p.Name] {
				continue
			}
			ready := true
			for up := range deps[p.Name] {
				if !done[up] {
					ready = false
					break
				}
			}
			if ready {
				order = append(order, p)
				done[p.Name] = true
				progressed = true
			}
		}
		if !progressed {
			for _, p := range d.Processors {
				if !done[p.Name] {
					return nil, fmt.Errorf("%w: cycle involving processor %q", ErrInvalid, p.Name)
				}
			}
		}
	}
	return order, nil
}
