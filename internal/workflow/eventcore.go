package workflow

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// EventEngine is the event-sourced successor of Engine: every run appends an
// ordered history of typed events (history.go) from a single orchestrator
// goroutine, while N workers pull activity tasks from a TaskQueue and report
// results back. Provenance, telemetry, and crash recovery are projections of
// the history stream; resuming a killed run is Resume — replay the persisted
// prefix, re-enqueue only the missing tasks, append after it.
type EventEngine struct {
	registry *Registry
	// Workers is the worker-pool size (minimum 1). With the in-memory queue
	// this bounds concurrent service invocations exactly as Engine.Parallel
	// bounds them in the legacy engine.
	Workers int
	// NewQueue supplies the dispatch backend per run; nil means an in-memory
	// FIFO (NewMemoryQueue).
	NewQueue func(runID string) TaskQueue
	// Stats, when set, receives worker liveness and queue gauges for the
	// /metrics bridge. All WorkerRegistry methods are nil-safe.
	Stats *WorkerRegistry
	// KillWorker is the chaos hook: called after each dequeue with the
	// worker's ID and completed-task count; returning true makes the worker
	// Nack the task and exit (the last live worker always survives so the
	// run can finish).
	KillWorker func(workerID string, tasksDone int) bool
	// RunIDPrefix is prepended to minted run IDs. Multi-tenant callers set it
	// to "tenant:" so the run ID itself carries the routing key; explicit run
	// IDs are used as-is.
	RunIDPrefix string
	// Gateway, when set, is told when runs start and finish so out-of-process
	// workers can attach to the run's queue (cluster.Server implements it).
	// Remote workers pull tasks through the RunHandle and report through the
	// same orchestrator channel as the in-process pool.
	Gateway RunGateway

	metrics engineMetrics
}

// RunGateway observes run lifecycles on behalf of out-of-process workers.
type RunGateway interface {
	// RunStarted is called before the first task is enqueued; the handle
	// stays valid until RunFinished.
	RunStarted(h *RunHandle)
	// RunFinished is called after the run's queue has closed and drained.
	RunFinished(runID string)
}

// MintRunID returns a fresh engine-unique run ID with the given prefix —
// the same counter execute uses, exported so orchestrated callers can know
// the run's identity (for lease acquisition and fence installation) before
// the run starts.
func MintRunID(prefix string) string {
	return prefix + fmt.Sprintf("run-%06d", atomic.AddInt64(&runCounter, 1))
}

// NewEventEngine builds an event-sourced engine over the given registry.
func NewEventEngine(reg *Registry) *EventEngine { return &EventEngine{registry: reg} }

// Metrics returns the engine's cumulative instrumentation counters.
func (e *EventEngine) Metrics() MetricsSnapshot {
	return MetricsSnapshot{
		Invocations:        e.metrics.invocations.Load(),
		ElementsDispatched: e.metrics.elementsDispatched.Load(),
		InFlight:           e.metrics.inFlight.Load(),
		PeakInFlight:       e.metrics.peakInFlight.Load(),
		QueueWait:          e.metrics.queueWait.Snapshot(),
		Exec:               e.metrics.exec.Snapshot(),
	}
}

// Run validates and executes def, streaming history events to the listeners.
func (e *EventEngine) Run(ctx context.Context, def *Definition, inputs map[string]Data, listeners ...HistoryListener) (*RunResult, error) {
	return e.execute(ctx, def, inputs, "", nil, listeners)
}

// Resume re-executes a run from its persisted history prefix under the
// original run ID: completed activities replay their recorded outputs,
// partially-complete iterations re-enqueue only the elements with no
// iteration-element event, and new events append after the prefix. An empty
// prefix is a full re-execution under the original identity.
func (e *EventEngine) Resume(ctx context.Context, def *Definition, inputs map[string]Data, runID string, history []HistoryEvent, listeners ...HistoryListener) (*RunResult, error) {
	return e.execute(ctx, def, inputs, runID, history, listeners)
}

// foldedActivity is the per-processor digest of a history prefix.
type foldedActivity struct {
	scheduled  bool
	done       bool
	inputs     map[string]Data
	outputs    map[string]Data
	iterations int
	elements   map[int]ElementTrace
}

// foldedRun is the digest of a whole prefix.
type foldedRun struct {
	hasStart bool
	acts     map[string]*foldedActivity
	// finished is the prefix's run-finished event when the run already
	// completed durably before the crash; resume degenerates to replaying it.
	finished *HistoryEvent
}

func (f *foldedRun) act(name string) *foldedActivity {
	a := f.acts[name]
	if a == nil {
		a = &foldedActivity{}
		f.acts[name] = a
	}
	return a
}

// foldHistory digests a persisted prefix into resumable state, returning the
// prefix in Seq order. An activity-failed event in the prefix un-does the
// activity (it will re-execute, reusing any surviving elements); a
// run-finished event means the run completed durably and resume degenerates
// to replaying that terminal event.
func foldHistory(def *Definition, history []HistoryEvent) ([]HistoryEvent, *foldedRun, error) {
	f := &foldedRun{acts: map[string]*foldedActivity{}}
	if len(history) == 0 {
		return nil, f, nil
	}
	evs := append([]HistoryEvent(nil), history...)
	sort.Slice(evs, func(i, j int) bool { return evs[i].Seq < evs[j].Seq })
	for _, ev := range evs {
		if f.finished != nil {
			return nil, nil, fmt.Errorf("workflow: run %q history continues past run-finished", ev.RunID)
		}
		if ev.Activity != "" {
			if _, ok := def.Processor(ev.Activity); !ok {
				return nil, nil, fmt.Errorf("workflow: history for unknown processor %q", ev.Activity)
			}
		}
		switch ev.Type {
		case HistoryRunStarted:
			f.hasStart = true
		case HistoryActivityScheduled:
			a := f.act(ev.Activity)
			a.scheduled = true
			a.inputs = ev.Inputs
		case HistoryIterationElement:
			a := f.act(ev.Activity)
			if a.elements == nil {
				a.elements = map[int]ElementTrace{}
			}
			a.elements[ev.Element] = ElementTrace{Index: ev.Element, Inputs: ev.Inputs, Outputs: ev.Outputs}
		case HistoryActivityCompleted:
			a := f.act(ev.Activity)
			a.done = true
			a.outputs = ev.Outputs
			a.iterations = ev.Iterations
		case HistoryActivityFailed:
			f.act(ev.Activity).done = false
		case HistoryRunFinished:
			ev := ev
			f.finished = &ev
		}
	}
	return evs, f, nil
}

// finalizeFromHistory resumes a run whose history already holds run-finished:
// the run completed durably before the crash, so nothing re-executes. The
// terminal event is replayed through OnHistoryEvent (not folded silently like
// the rest of the prefix) so projections repair whatever finalization the
// crash cut off — completion-rule inference, the run record's terminal status
// — all of it idempotent against state already persisted.
func finalizeFromHistory(def *Definition, runID string, prefix []HistoryEvent, folded *foldedRun, listeners []HistoryListener) (*RunResult, error) {
	fin := folded.finished
	for _, l := range listeners {
		if pf, ok := l.(HistoryPrefixer); ok {
			pf.OnHistoryPrefix(prefix[:len(prefix)-1])
		}
	}
	for _, l := range listeners {
		l.OnHistoryEvent(*fin)
	}
	if fin.Status == "failed" {
		return nil, fmt.Errorf("workflow: run %q already failed: %s", runID, fin.Err)
	}
	now := time.Now()
	res := &RunResult{
		RunID: runID, Outputs: map[string]Data{},
		StartedAt: now, FinishedAt: now,
		Invocations: map[string]int{},
	}
	for _, out := range def.Outputs {
		d, ok := fin.Outputs[out.Name]
		if !ok {
			return nil, fmt.Errorf("workflow: finished history for run %q lacks output %q", runID, out.Name)
		}
		res.Outputs[out.Name] = d
	}
	for _, p := range def.Processors {
		if a := folded.acts[p.Name]; a != nil && a.done {
			res.Replayed = append(res.Replayed, p.Name)
		}
	}
	return res, nil
}

// workerMsg is one worker->orchestrator report.
type workerMsg struct {
	retry   bool // retry-backoff notification, not a completion
	task    Task
	worker  string
	attempt int
	callIn  map[string]Data
	out     map[string]Data
	err     error
}

// activity is the orchestrator's live state for one scheduled processor.
// Fields set before task enqueue (p, fn, inputs, iterating, ctx) are
// read-only afterwards and safe for workers to read; everything else is
// orchestrator-only.
type activity struct {
	p         *Processor
	fn        ServiceFunc
	inputs    map[string]Data
	iterating bool
	n         int // element count when iterating
	ctx       context.Context
	cancelAct context.CancelFunc
	span      *telemetry.Span
	start     time.Time

	collected map[string][]Data
	seen      []bool
	expected  int // fresh tasks enqueued this execution
	reported  int
	fresh     int // fresh service invocations (for RunResult.Invocations)
	started   bool
	outputs   map[string]Data // staged non-iterating result

	realIdx, cancelIdx int
	realErr, cancelErr error
}

// eventRun is the mutable state of one event-sourced execution. The
// orchestrator goroutine owns every field; workers only read the acts map
// (guarded by mu) and the immutable activity fields noted above.
type eventRun struct {
	e         *EventEngine
	def       *Definition
	runID     string
	listeners []HistoryListener
	q         TaskQueue
	runCtx    context.Context
	cancelRun context.CancelFunc
	folded    *foldedRun

	mu   sync.RWMutex
	acts map[string]*activity

	nextSeq   int
	values    map[string]Data
	remaining map[string]int
	active    int // activities scheduled but not settled
	failErr   error
	result    *RunResult
	msgs      chan workerMsg
	// accepted marks task IDs whose completion report the orchestrator has
	// folded in. Lease-TTL redelivery means a task can legitimately complete
	// twice (the first holder's Ack after expiry is a no-op and its report
	// still arrives); only the first report per task ID counts, so duplicate
	// deliveries can never double-append history.
	accepted map[string]bool
	// done closes when the orchestration loop exits; remote reports select
	// against it instead of blocking on msgs forever.
	done chan struct{}
}

// prefixRecorded reports whether the replayed prefix already holds the
// result this task would produce. The folded prefix is immutable once the
// run starts, so workers may read it lock-free.
func (r *eventRun) prefixRecorded(t Task) bool {
	fa := r.folded.acts[t.Activity]
	if fa == nil {
		return false
	}
	if t.Element < 0 {
		return fa.done
	}
	_, seen := fa.elements[t.Element]
	return seen
}

func (r *eventRun) activity(name string) *activity {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.acts[name]
}

func (r *eventRun) setActivity(name string, a *activity) {
	r.mu.Lock()
	r.acts[name] = a
	r.mu.Unlock()
}

// append stamps and emits one history event. Only the orchestrator calls it,
// so listeners observe a totally ordered stream.
func (r *eventRun) append(ev HistoryEvent) {
	ev.Seq = r.nextSeq
	r.nextSeq++
	ev.Time = time.Now()
	ev.RunID = r.runID
	ev.WorkflowID = r.def.ID
	ev.WorkflowName = r.def.Name
	for _, l := range r.listeners {
		l.OnHistoryEvent(ev)
	}
}

func (e *EventEngine) execute(ctx context.Context, def *Definition, inputs map[string]Data, runID string, history []HistoryEvent, listeners []HistoryListener) (*RunResult, error) {
	if err := Validate(def); err != nil {
		return nil, err
	}
	for _, in := range def.Inputs {
		if _, ok := inputs[in.Name]; !ok {
			return nil, fmt.Errorf("%w: %q", ErrMissingInput, in.Name)
		}
	}
	for _, p := range def.Processors {
		if _, ok := e.registry.Lookup(p.Service); !ok {
			return nil, fmt.Errorf("workflow: processor %q needs unregistered service %q", p.Name, p.Service)
		}
	}
	prefix, folded, err := foldHistory(def, history)
	if err != nil {
		return nil, err
	}
	if runID == "" {
		runID = MintRunID(e.RunIDPrefix)
	}
	if folded.finished != nil {
		return finalizeFromHistory(def, runID, prefix, folded, listeners)
	}

	var q TaskQueue
	if e.NewQueue != nil {
		q = e.NewQueue(runID)
	} else {
		q = NewMemoryQueue()
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	runCtx, wfSpan := telemetry.StartSpan(runCtx, "workflow:"+def.Name, "engine")
	defer wfSpan.Finish()
	wfSpan.SetAttr("run_id", runID)
	wfSpan.SetAttr("workflow_id", def.ID)
	wfSpan.SetAttr("processors", strconv.Itoa(len(def.Processors)))

	workers := e.Workers
	if workers < 1 {
		workers = 1
	}
	r := &eventRun{
		e: e, def: def, runID: runID, listeners: listeners, q: q,
		runCtx: runCtx, cancelRun: cancel, folded: folded,
		acts:      map[string]*activity{},
		values:    map[string]Data{},
		remaining: map[string]int{},
		msgs:      make(chan workerMsg, workers*2+4),
		accepted:  map[string]bool{},
		done:      make(chan struct{}),
		result: &RunResult{
			RunID:       runID,
			Outputs:     map[string]Data{},
			StartedAt:   time.Now(),
			Invocations: map[string]int{},
		},
	}

	// A durable queue reopened across a crash can redeliver tasks whose
	// results the prefix already records. Seed the report dedup with their
	// task IDs so a late completion folds in nowhere; workers additionally
	// drain them at dequeue without invoking the service.
	for name, fa := range folded.acts {
		if fa.done {
			r.accepted[TaskID(runID, name, -1)] = true
		}
		for i := range fa.elements {
			r.accepted[TaskID(runID, name, i)] = true
		}
	}

	// Hand the replayed prefix to projections before any new event, then
	// continue the sequence after it. A prefix always carries run-started
	// (it is the first event appended), so only fresh runs re-open.
	if len(prefix) > 0 {
		for _, l := range listeners {
			if pf, ok := l.(HistoryPrefixer); ok {
				pf.OnHistoryPrefix(prefix)
			}
		}
		r.nextSeq = prefix[len(prefix)-1].Seq + 1
	}
	if !folded.hasStart {
		r.append(HistoryEvent{Type: HistoryRunStarted, Inputs: inputs, Annotations: def.Annotations})
	}

	// Seed the dataflow: workflow inputs, zero-input processors, and the
	// recorded outputs of prefix-completed activities (definition order
	// keeps replay deterministic).
	for name, d := range inputs {
		r.values[Endpoint{Port: name}.String()] = d
	}
	for _, p := range def.Processors {
		r.remaining[p.Name] = len(p.Inputs)
	}
	var ready []*Processor
	for _, p := range def.Processors {
		if len(p.Inputs) == 0 {
			ready = append(ready, p)
		}
	}
	for _, l := range def.Links {
		if l.Source.Processor == "" {
			ready = append(ready, r.deliver(l, inputs[l.Source.Port])...)
		}
	}
	replayed := 0
	for _, p := range def.Processors {
		fa := folded.acts[p.Name]
		if fa == nil || !fa.done {
			continue
		}
		r.result.Replayed = append(r.result.Replayed, p.Name)
		replayed++
		for _, l := range def.Links {
			if l.Source.Processor != p.Name {
				continue
			}
			d, ok := fa.outputs[l.Source.Port]
			if !ok {
				return nil, fmt.Errorf("workflow: history for %q lacks output %q", p.Name, l.Source.Port)
			}
			ready = append(ready, r.deliver(l, d)...)
		}
	}
	if replayed > 0 {
		wfSpan.SetAttr("replayed", strconv.Itoa(replayed))
		live := ready[:0]
		for _, p := range ready {
			if fa := folded.acts[p.Name]; fa == nil || !fa.done {
				live = append(live, p)
			}
		}
		ready = live
	}

	// Start the worker pool, then schedule the ready frontier and run the
	// orchestration loop until every scheduled activity settles.
	var wg sync.WaitGroup
	var alive atomic.Int64
	alive.Store(int64(workers))
	for i := 0; i < workers; i++ {
		id := e.Stats.Register(runID)
		if id == "" {
			id = fmt.Sprintf("w%d", i+1)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.worker(id, &alive)
		}()
	}
	if e.Gateway != nil {
		e.Gateway.RunStarted(&RunHandle{r: r})
	}
	for _, p := range ready {
		r.schedule(p)
	}
	for r.active > 0 {
		r.handle(<-r.msgs)
	}
	close(r.done) // unblock any remote report racing the loop exit

	if r.failErr == nil {
		for _, out := range def.Outputs {
			v, ok := r.values[Endpoint{Port: out.Name}.String()]
			if !ok {
				r.failErr = fmt.Errorf("workflow: output %q was never produced", out.Name)
				break
			}
			r.result.Outputs[out.Name] = v
		}
	}
	if r.failErr != nil {
		wfSpan.SetAttr("error", r.failErr.Error())
		r.append(HistoryEvent{Type: HistoryRunFinished, Status: "failed", Err: r.failErr.Error()})
	} else {
		r.append(HistoryEvent{Type: HistoryRunFinished, Status: "completed", Outputs: r.result.Outputs})
	}
	q.Close()
	wg.Wait() // all worker spans recorded before the run returns
	if e.Gateway != nil {
		e.Gateway.RunFinished(runID)
	}
	r.result.FinishedAt = time.Now()
	return r.result, r.failErr
}

// schedule binds a processor's inputs, appends its scheduled event, and
// enqueues its tasks — only the elements the prefix does not already record.
func (r *eventRun) schedule(p *Processor) {
	if r.failErr != nil {
		return // parity with the legacy engine: no events after a failure
	}
	fa := r.folded.acts[p.Name]
	inputs := map[string]Data{}
	if fa != nil && fa.scheduled && fa.inputs != nil {
		inputs = fa.inputs // event-sourced: the recorded binding is the truth
	} else {
		for _, in := range p.Inputs {
			inputs[in.Name] = r.values[Endpoint{Processor: p.Name, Port: in.Name}.String()]
		}
	}
	fn, _ := r.e.registry.Lookup(p.Service)
	sctx, span := telemetry.StartSpan(r.runCtx, "processor:"+p.Name, "engine")
	span.SetAttr("service", p.Service)
	actx, acancel := context.WithCancel(sctx)
	a := &activity{
		p: p, fn: fn, inputs: inputs, ctx: actx, cancelAct: acancel,
		span: span, start: time.Now(), realIdx: -1, cancelIdx: -1,
	}
	r.setActivity(p.Name, a)
	r.active++

	iterating, n, shapeErr := iterationShape(p, inputs)
	if fa == nil || !fa.scheduled {
		ev := HistoryEvent{
			Type: HistoryActivityScheduled, Activity: p.Name, Service: p.Service,
			Inputs: inputs, Annotations: p.Annotations, Elements: -1,
		}
		if shapeErr == nil && iterating {
			ev.Elements = n
		}
		r.append(ev)
		if IsNestedService(p.Service) {
			r.append(HistoryEvent{Type: HistorySubWorkflow, Activity: p.Name, Service: p.Service})
		}
	}
	if shapeErr != nil {
		r.failActivity(a, 0, shapeErr)
		return
	}
	a.iterating, a.n = iterating, n
	if !iterating {
		a.expected = 1
		r.enqueue(Task{ID: TaskID(r.runID, p.Name, -1), RunID: r.runID, Activity: p.Name, Element: -1})
		return
	}
	a.collected = map[string][]Data{}
	for _, port := range p.Outputs {
		a.collected[port.Name] = make([]Data, n)
	}
	a.seen = make([]bool, n)
	if fa != nil {
		for i, el := range fa.elements {
			if i < 0 || i >= n {
				continue
			}
			a.seen[i] = true
			for _, port := range p.Outputs {
				a.collected[port.Name][i] = el.Outputs[port.Name]
			}
		}
	}
	for i := 0; i < n; i++ {
		if a.seen[i] {
			continue
		}
		a.expected++
		r.enqueue(Task{ID: TaskID(r.runID, p.Name, i), RunID: r.runID, Activity: p.Name, Element: i})
	}
	if a.expected == 0 {
		r.settle(a) // every element replayed from the prefix (or n == 0)
	}
}

func (r *eventRun) enqueue(t Task) {
	t.EnqueuedAt = time.Now()
	if err := r.q.Enqueue(t); err != nil {
		if r.failErr == nil {
			r.failErr = fmt.Errorf("workflow: enqueue %q: %w", t.ID, err)
			r.cancelRun()
		}
		return
	}
	r.e.Stats.TasksEnqueued(1)
}

// handle folds one worker report into the owning activity.
func (r *eventRun) handle(msg workerMsg) {
	a := r.activity(msg.task.Activity)
	if a == nil {
		return
	}
	if !a.started {
		a.started = true
		r.append(HistoryEvent{
			Type: HistoryActivityStarted, Activity: a.p.Name,
			Service: a.p.Service, Worker: msg.worker, Element: -1,
		})
	}
	if msg.retry {
		r.append(HistoryEvent{
			Type: HistoryRetryBackoff, Activity: a.p.Name, Worker: msg.worker,
			Element: msg.task.Element, Attempt: msg.attempt,
		})
		return
	}
	if r.accepted[msg.task.ID] {
		// Duplicate delivery (an expired lease redelivered work the original
		// holder also finished): exactly one report per task may fold in.
		return
	}
	r.accepted[msg.task.ID] = true
	a.reported++
	switch {
	case msg.err != nil:
		i := msg.task.Element
		if i < 0 {
			i = 0
		}
		if errors.Is(msg.err, context.Canceled) || errors.Is(msg.err, context.DeadlineExceeded) {
			if a.cancelIdx == -1 || i < a.cancelIdx {
				a.cancelIdx, a.cancelErr = i, msg.err
			}
		} else if a.realIdx == -1 || i < a.realIdx {
			a.realIdx, a.realErr = i, msg.err
		}
		a.cancelAct()
	case msg.task.Element >= 0:
		r.append(HistoryEvent{
			Type: HistoryIterationElement, Activity: a.p.Name, Worker: msg.worker,
			Element: msg.task.Element, Inputs: msg.callIn, Outputs: msg.out,
		})
		for _, port := range a.p.Outputs {
			a.collected[port.Name][msg.task.Element] = msg.out[port.Name]
		}
		a.seen[msg.task.Element] = true
		a.fresh++
	default:
		a.outputs = msg.out
		a.fresh++
	}
	if a.reported == a.expected {
		r.settle(a)
	}
}

// settle closes an activity: failure precedence mirrors iterateParallel
// (lowest real error index, then a bare run-cancellation, then the lowest
// cancellation fallout), success collects outputs, appends the completed
// event, and delivers downstream.
func (r *eventRun) settle(a *activity) {
	if a.iterating {
		switch {
		case a.realIdx >= 0:
			r.failActivity(a, a.realIdx+1, fmt.Errorf("iteration %d: %w", a.realIdx, a.realErr))
			return
		case r.runCtx.Err() != nil:
			done := a.cancelIdx
			if done < 0 {
				done = 0
			}
			r.failActivity(a, done, r.runCtx.Err())
			return
		case a.cancelIdx >= 0:
			r.failActivity(a, a.cancelIdx+1, fmt.Errorf("iteration %d: %w", a.cancelIdx, a.cancelErr))
			return
		}
	} else if a.realIdx >= 0 {
		r.failActivity(a, 1, a.realErr)
		return
	} else if a.cancelIdx >= 0 {
		r.failActivity(a, 1, a.cancelErr)
		return
	}

	iterations := 1
	outputs := a.outputs
	if a.iterating {
		iterations = a.n
		outputs = collectOutputs(a.collected)
	}
	a.span.SetAttr("iterations", strconv.Itoa(iterations))
	a.span.Finish()
	a.cancelAct()
	r.append(HistoryEvent{
		Type: HistoryActivityCompleted, Activity: a.p.Name, Outputs: outputs,
		Iterations: iterations, Duration: time.Since(a.start),
	})
	r.result.Invocations[a.p.Name] += a.fresh
	var ready []*Processor
	for _, l := range r.def.Links {
		if l.Source.Processor != a.p.Name {
			continue
		}
		d, ok := outputs[l.Source.Port]
		if !ok {
			if r.failErr == nil {
				r.failErr = fmt.Errorf("workflow: processor %q did not produce output %q", a.p.Name, l.Source.Port)
				r.cancelRun()
			}
			r.active--
			return
		}
		ready = append(ready, r.deliver(l, d)...)
	}
	r.active--
	if r.failErr != nil {
		return
	}
	for _, p := range ready {
		r.schedule(p)
	}
}

// failActivity closes an activity with an error and fails the run (first
// failure wins, exactly like the legacy engine).
func (r *eventRun) failActivity(a *activity, iterations int, err error) {
	a.span.SetAttr("iterations", strconv.Itoa(iterations))
	a.span.SetAttr("error", err.Error())
	a.span.Finish()
	a.cancelAct()
	r.append(HistoryEvent{
		Type: HistoryActivityFailed, Activity: a.p.Name, Iterations: iterations,
		Duration: time.Since(a.start), Err: err.Error(),
	})
	if r.failErr == nil {
		r.failErr = fmt.Errorf("workflow: processor %q: %w", a.p.Name, err)
		r.cancelRun()
	}
	r.active--
}

// deliver binds a datum to a link target, returning processors that became
// ready. Prefix-completed activities are never re-scheduled.
func (r *eventRun) deliver(l Link, d Data) []*Processor {
	key := l.Target.String()
	if _, dup := r.values[key]; dup {
		return nil
	}
	r.values[key] = d
	if l.Target.Processor == "" {
		return nil
	}
	r.remaining[l.Target.Processor]--
	if r.remaining[l.Target.Processor] == 0 {
		if fa := r.folded.acts[l.Target.Processor]; fa != nil && fa.done {
			return nil
		}
		if p, ok := r.def.Processor(l.Target.Processor); ok {
			return []*Processor{p}
		}
	}
	return nil
}

// worker is one pool goroutine: dequeue, (maybe die — chaos), drain or
// invoke, ack, report. Every dequeued task produces exactly one eventual
// done-report: a killed worker Nacks its task, so the queue redelivers it to
// a surviving worker.
func (r *eventRun) worker(id string, alive *atomic.Int64) {
	stats := r.e.Stats
	tasksDone := 0
	for {
		t, err := r.q.Dequeue(context.Background())
		if err != nil {
			stats.Exited(id, false)
			return
		}
		stats.TaskStarted(id)
		if kill := r.e.KillWorker; kill != nil && kill(id, tasksDone) {
			if alive.Add(-1) >= 1 {
				r.q.Nack(t.ID)
				stats.TaskRequeued(id)
				stats.Exited(id, true)
				return
			}
			alive.Add(1) // the last live worker shrugs the kill off
		}
		a := r.activity(t.Activity)
		if a == nil || r.prefixRecorded(t) {
			// Stale content of a durable queue reopened across a crash: the
			// activity (or this element) already completed in the replayed
			// prefix. Drain it without a service call.
			r.q.Ack(t.ID)
			stats.TaskDone(id)
			tasksDone++
			continue
		}
		if err := a.ctx.Err(); err != nil {
			// Drained without a span or a service call, like the legacy
			// parallel iterator after cancellation.
			r.q.Ack(t.ID)
			stats.TaskDone(id)
			r.msgs <- workerMsg{task: t, worker: id, err: err}
			tasksDone++
			continue
		}
		var callIn map[string]Data
		var name string
		if t.Element >= 0 {
			callIn = elementInputs(a.p, a.inputs, t.Element)
			name = elementSpanName(a.p, t.Element)
			r.e.metrics.elementsDispatched.Add(1)
		} else {
			callIn = a.inputs
			name = "invoke:" + a.p.Name
		}
		cctx, sp := telemetry.StartSpan(a.ctx, name, "engine")
		m := &r.e.metrics
		wait := time.Since(t.EnqueuedAt)
		m.queueWait.Observe(wait)
		m.invocations.Add(1)
		cur := m.inFlight.Add(1)
		for {
			peak := m.peakInFlight.Load()
			if cur <= peak || m.peakInFlight.CompareAndSwap(peak, cur) {
				break
			}
		}
		execStart := time.Now()
		out, err := callWithRetryNotify(cctx, a.fn, a.p, Call{Inputs: callIn, Config: a.p.Config}, func(attempt int) {
			r.msgs <- workerMsg{retry: true, task: t, worker: id, attempt: attempt}
		})
		if err == nil {
			err = checkOutputs(a.p, out)
		}
		exec := time.Since(execStart)
		m.exec.Observe(exec)
		m.inFlight.Add(-1)
		if sp != nil {
			sp.SetAttr("service", a.p.Service)
			sp.SetAttr("queue_wait_us", strconv.FormatInt(wait.Microseconds(), 10))
			sp.SetAttr("exec_us", strconv.FormatInt(exec.Microseconds(), 10))
			sp.SetAttr("worker", id)
			if err != nil {
				sp.SetAttr("error", err.Error())
			}
		}
		sp.Finish()
		r.q.Ack(t.ID)
		stats.TaskDone(id)
		r.msgs <- workerMsg{task: t, worker: id, callIn: callIn, out: out, err: err}
		tasksDone++
	}
}

// callWithRetryNotify is callWithRetry with a pre-backoff callback so the
// orchestrator can append retry-backoff events. Semantics and error text are
// identical to callWithRetry.
func callWithRetryNotify(ctx context.Context, fn ServiceFunc, p *Processor, call Call, notify func(attempt int)) (map[string]Data, error) {
	var lastErr error
	for attempt := 0; attempt <= p.Retries; attempt++ {
		if attempt > 0 {
			if notify != nil {
				notify(attempt)
			}
			if err := sleepBackoff(ctx, backoffDelay(p, attempt)); err != nil {
				return nil, err
			}
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		out, err := fn(ctx, call)
		if err == nil {
			return out, nil
		}
		if ctx.Err() != nil {
			return nil, err
		}
		lastErr = err
	}
	if p.Retries > 0 {
		return nil, fmt.Errorf("after %d attempts: %w", p.Retries+1, lastErr)
	}
	return nil, lastErr
}
