package workflow

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// Call is one service invocation: the bound inputs plus the processor's
// static configuration.
type Call struct {
	Inputs map[string]Data
	Config map[string]string
}

// Input returns the named input (zero Data when absent).
func (c Call) Input(name string) Data { return c.Inputs[name] }

// ServiceFunc implements a processor. It must be safe for concurrent use:
// the engine may invoke it from several goroutines (iteration elements and
// independent processors run in parallel).
type ServiceFunc func(ctx context.Context, call Call) (map[string]Data, error)

// Registry maps service names to implementations. Workflows reference
// services by name, decoupling specifications from code — this is what lets
// the Workflow Adapter rewrite specifications without touching the model.
type Registry struct {
	mu sync.RWMutex
	m  map[string]ServiceFunc
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry { return &Registry{m: make(map[string]ServiceFunc)} }

// Register binds a service name; re-registration replaces.
func (r *Registry) Register(name string, fn ServiceFunc) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.m[name] = fn
}

// Lookup resolves a service name.
func (r *Registry) Lookup(name string) (ServiceFunc, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	fn, ok := r.m[name]
	return fn, ok
}

// Names returns the registered service names (unordered).
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.m))
	for n := range r.m {
		out = append(out, n)
	}
	return out
}

// EventType classifies execution events.
type EventType uint8

// Execution event types, emitted in causal order per run.
const (
	EventWorkflowStarted EventType = iota
	EventProcessorStarted
	EventProcessorCompleted
	EventProcessorFailed
	EventWorkflowCompleted
	EventWorkflowFailed
)

// String names the event type.
func (t EventType) String() string {
	switch t {
	case EventWorkflowStarted:
		return "workflow-started"
	case EventProcessorStarted:
		return "processor-started"
	case EventProcessorCompleted:
		return "processor-completed"
	case EventProcessorFailed:
		return "processor-failed"
	case EventWorkflowCompleted:
		return "workflow-completed"
	case EventWorkflowFailed:
		return "workflow-failed"
	default:
		return fmt.Sprintf("event(%d)", uint8(t))
	}
}

// ElementTrace records one element of an implicit iteration: the per-element
// inputs and outputs of a single service invocation. It enables fine-grained
// provenance — "which input name produced this particular result" — instead
// of only list-to-list derivation.
type ElementTrace struct {
	Index   int
	Inputs  map[string]Data
	Outputs map[string]Data
}

// Event is one observation of workflow execution — the raw material the
// Provenance Manager turns into OPM graphs.
type Event struct {
	Type         EventType
	Time         time.Time
	RunID        string
	WorkflowID   string
	WorkflowName string
	Processor    string // "" for workflow-level events
	Service      string
	Annotations  []Annotation // processor (or workflow) annotations
	Inputs       map[string]Data
	Outputs      map[string]Data
	Iterations   int // number of service invocations (≥1 once completed)
	// Elements carries the per-element traces of an implicit iteration
	// (nil for single invocations).
	Elements []ElementTrace
	Duration time.Duration
	Err      string
}

// Listener observes execution events. OnEvent is called synchronously from
// the engine; implementations must be safe for concurrent calls (independent
// processors complete in parallel).
type Listener interface {
	OnEvent(Event)
}

// ListenerFunc adapts a function to Listener.
type ListenerFunc func(Event)

// OnEvent implements Listener.
func (f ListenerFunc) OnEvent(e Event) { f(e) }

// RunResult summarizes one workflow execution.
type RunResult struct {
	RunID      string
	Outputs    map[string]Data
	StartedAt  time.Time
	FinishedAt time.Time
	// Invocations counts service calls per processor (iteration elements
	// count individually). Processors fully replayed from a history prefix
	// do not appear here — no service ran for them in this execution.
	Invocations map[string]int
	// Replayed lists the processors whose outputs a resumed run replayed
	// from its history prefix instead of re-executing (definition order).
	Replayed []string
}

// Engine executes workflow definitions against a service registry.
type Engine struct {
	registry *Registry
	// Parallel is the engine-wide concurrency budget: the maximum number of
	// service invocations in flight at once, shared by processor launches
	// AND implicit-iteration elements. A slot is held only for the duration
	// of one service call — never while a processor is blocked waiting on
	// its iteration elements — so the budget cannot deadlock no matter how
	// processors and iterations nest.
	//
	// 0 preserves the historical default: unbounded processor concurrency
	// with strictly sequential iteration. With Parallel ≥ 1, iteration
	// elements are dispatched concurrently under the budget (Parallel == 1
	// is fully sequential execution). Nested workflows run on their own
	// engine and do not consume the outer budget.
	Parallel int

	metrics engineMetrics
}

// NewEngine builds an engine over the given registry.
func NewEngine(reg *Registry) *Engine { return &Engine{registry: reg} }

// engineMetrics counts engine activity across runs. All fields are atomics:
// the hot path never takes a lock to record them.
type engineMetrics struct {
	invocations        atomic.Int64 // service calls started
	elementsDispatched atomic.Int64 // implicit-iteration elements dispatched
	elementsCoalesced  atomic.Int64 // reserved: elements served from upstream coalescing
	inFlight           atomic.Int64 // service calls currently executing
	peakInFlight       atomic.Int64 // high-water mark of inFlight

	// Latency distributions, split at the budget gate: queueWait is time a
	// call spent blocked on a Parallel slot, exec is the service call itself
	// (including per-processor retries).
	queueWait telemetry.Histogram
	exec      telemetry.Histogram
}

// MetricsSnapshot is a point-in-time reading of the engine's counters,
// cumulative over every run the engine has executed.
type MetricsSnapshot struct {
	Invocations        int64 // service calls started
	ElementsDispatched int64 // iteration elements dispatched to workers
	InFlight           int64 // service calls executing right now
	PeakInFlight       int64 // high-water mark of concurrent calls
	// QueueWait and Exec are the latency distributions of the budget gate
	// and the service calls themselves (p50/p95/p99 via Counters).
	QueueWait telemetry.HistogramSnapshot
	Exec      telemetry.HistogramSnapshot
}

// Counters renders the snapshot as named readings for
// obs.FromRuntimeMetrics, matching the provenance writer's and archive
// scrubber's counter surfaces. Histogram quantiles appear under
// engine.exec.* and engine.queue_wait.*.
func (m MetricsSnapshot) Counters() map[string]float64 {
	c := map[string]float64{
		"engine.invocations":         float64(m.Invocations),
		"engine.elements_dispatched": float64(m.ElementsDispatched),
		"engine.in_flight":           float64(m.InFlight),
		"engine.peak_in_flight":      float64(m.PeakInFlight),
	}
	c = telemetry.MergeCounters(c, m.Exec.Counters("engine.exec"))
	return telemetry.MergeCounters(c, m.QueueWait.Counters("engine.queue_wait"))
}

// Metrics returns the engine's cumulative instrumentation counters.
func (e *Engine) Metrics() MetricsSnapshot {
	return MetricsSnapshot{
		Invocations:        e.metrics.invocations.Load(),
		ElementsDispatched: e.metrics.elementsDispatched.Load(),
		InFlight:           e.metrics.inFlight.Load(),
		PeakInFlight:       e.metrics.peakInFlight.Load(),
		QueueWait:          e.metrics.queueWait.Snapshot(),
		Exec:               e.metrics.exec.Snapshot(),
	}
}

var runCounter int64

// ErrMissingInput is returned when Run is not given a required workflow input.
var ErrMissingInput = errors.New("workflow: missing workflow input")

// Run validates and executes def with the given workflow inputs, notifying
// every listener of each execution event. It returns when the run completes
// or fails; on failure the partial result carries whatever completed.
func (e *Engine) Run(ctx context.Context, def *Definition, inputs map[string]Data, listeners ...Listener) (*RunResult, error) {
	return e.run(ctx, def, inputs, "", listeners)
}

// run executes def. A non-empty runID reuses an existing run identity
// instead of minting one. Crash recovery lives in the event-sourced engine
// (EventEngine.Resume) — this legacy path always executes from scratch.
func (e *Engine) run(ctx context.Context, def *Definition, inputs map[string]Data, runID string, listeners []Listener) (*RunResult, error) {
	if err := Validate(def); err != nil {
		return nil, err
	}
	for _, in := range def.Inputs {
		if _, ok := inputs[in.Name]; !ok {
			return nil, fmt.Errorf("%w: %q", ErrMissingInput, in.Name)
		}
	}
	for _, p := range def.Processors {
		if _, ok := e.registry.Lookup(p.Service); !ok {
			return nil, fmt.Errorf("workflow: processor %q needs unregistered service %q", p.Name, p.Service)
		}
	}
	if runID == "" {
		runID = fmt.Sprintf("run-%06d", atomic.AddInt64(&runCounter, 1))
	}
	st := &runState{
		engine:    e,
		def:       def,
		runID:     runID,
		listeners: listeners,
		values:    map[string]Data{},
		remaining: map[string]int{},
		result: &RunResult{
			RunID:       runID,
			Outputs:     map[string]Data{},
			StartedAt:   time.Now(),
			Invocations: map[string]int{},
		},
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	st.cancel = cancel

	// The workflow span roots every processor and element span of this run.
	// The engine mints run IDs after callers start tracing, so the span
	// carries the run ID as an attribute; callers stamp TraceID afterwards.
	ctx, wfSpan := telemetry.StartSpan(ctx, "workflow:"+def.Name, "engine")
	defer wfSpan.Finish()
	wfSpan.SetAttr("run_id", runID)
	wfSpan.SetAttr("workflow_id", def.ID)
	wfSpan.SetAttr("processors", strconv.Itoa(len(def.Processors)))

	st.emit(Event{Type: EventWorkflowStarted, RunID: runID, WorkflowID: def.ID,
		WorkflowName: def.Name, Annotations: def.Annotations, Inputs: inputs, Time: time.Now()})

	// Seed workflow inputs.
	st.mu.Lock()
	for name, d := range inputs {
		st.values[Endpoint{Port: name}.String()] = d
	}
	for _, p := range def.Processors {
		st.remaining[p.Name] = len(p.Inputs)
	}
	// Deliver every link whose source is a workflow input; also find
	// zero-input processors.
	var ready []*Processor
	for _, p := range def.Processors {
		if len(p.Inputs) == 0 {
			ready = append(ready, p)
		}
	}
	for _, l := range def.Links {
		if l.Source.Processor == "" {
			if procs := st.deliverLocked(l, inputs[l.Source.Port]); procs != nil {
				ready = append(ready, procs...)
			}
		}
	}
	st.mu.Unlock()

	var sem chan struct{}
	if e.Parallel > 0 {
		sem = make(chan struct{}, e.Parallel)
	}
	st.sem = sem
	for _, p := range ready {
		st.launch(ctx, p)
	}
	st.wg.Wait()

	st.mu.Lock()
	defer st.mu.Unlock()
	st.result.FinishedAt = time.Now()
	if st.err != nil {
		wfSpan.SetAttr("error", st.err.Error())
		st.emit(Event{Type: EventWorkflowFailed, RunID: runID, WorkflowID: def.ID,
			WorkflowName: def.Name, Err: st.err.Error(), Time: time.Now()})
		return st.result, st.err
	}
	// Collect workflow outputs.
	for _, out := range def.Outputs {
		v, ok := st.values[Endpoint{Port: out.Name}.String()]
		if !ok {
			st.err = fmt.Errorf("workflow: output %q was never produced", out.Name)
			st.emit(Event{Type: EventWorkflowFailed, RunID: runID, WorkflowID: def.ID,
				WorkflowName: def.Name, Err: st.err.Error(), Time: time.Now()})
			return st.result, st.err
		}
		st.result.Outputs[out.Name] = v
	}
	st.emit(Event{Type: EventWorkflowCompleted, RunID: runID, WorkflowID: def.ID,
		WorkflowName: def.Name, Outputs: st.result.Outputs, Time: time.Now()})
	return st.result, nil
}

// runState is the mutable state of one execution.
type runState struct {
	engine    *Engine
	def       *Definition
	runID     string
	listeners []Listener
	// sem is the engine-wide slot budget (nil = unlimited). Slots are
	// acquired around individual service calls only — see Engine.Parallel.
	sem chan struct{}

	mu        sync.Mutex
	values    map[string]Data // endpoint -> datum
	remaining map[string]int  // processor -> inputs not yet bound
	err       error
	result    *RunResult
	wg        sync.WaitGroup
	cancel    context.CancelFunc
}

func (st *runState) emit(ev Event) {
	for _, l := range st.listeners {
		l.OnEvent(ev)
	}
}

// acquire takes one budget slot, or returns early when ctx is done. A nil
// budget admits immediately.
func (st *runState) acquire(ctx context.Context) error {
	if st.sem == nil {
		return ctx.Err()
	}
	select {
	case st.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (st *runState) release() {
	if st.sem != nil {
		<-st.sem
	}
}

// call runs one slot-gated service invocation: it blocks for a budget slot,
// tracks the in-flight gauge, and invokes the service with retry. This is
// the ONLY place execution holds a budget slot, which is what makes the
// unified budget deadlock-free: nothing waits on other work while holding
// a slot. Each call records its queue-wait (slot acquisition) and execute
// time separately — into the engine histograms always, and onto a span
// named name when the run is traced.
func (st *runState) call(ctx context.Context, name string, fn ServiceFunc, p *Processor, c Call) (map[string]Data, error) {
	ctx, sp := telemetry.StartSpan(ctx, name, "engine")
	defer sp.Finish()
	m := &st.engine.metrics
	waitStart := time.Now()
	if err := st.acquire(ctx); err != nil {
		sp.SetAttr("error", err.Error())
		return nil, err
	}
	defer st.release()
	wait := time.Since(waitStart)
	m.queueWait.Observe(wait)
	m.invocations.Add(1)
	cur := m.inFlight.Add(1)
	for {
		peak := m.peakInFlight.Load()
		if cur <= peak || m.peakInFlight.CompareAndSwap(peak, cur) {
			break
		}
	}
	defer m.inFlight.Add(-1)
	execStart := time.Now()
	out, err := callWithRetry(ctx, fn, p, c)
	exec := time.Since(execStart)
	m.exec.Observe(exec)
	if sp != nil {
		sp.SetAttr("service", p.Service)
		sp.SetAttr("queue_wait_us", strconv.FormatInt(wait.Microseconds(), 10))
		sp.SetAttr("exec_us", strconv.FormatInt(exec.Microseconds(), 10))
		if err != nil {
			sp.SetAttr("error", err.Error())
		}
	}
	return out, err
}

// deliverLocked binds a datum to a link target, returning any processors
// that became ready. Caller holds st.mu.
func (st *runState) deliverLocked(l Link, d Data) []*Processor {
	key := l.Target.String()
	if _, dup := st.values[key]; dup {
		return nil // validation guarantees single fan-in; defensive
	}
	st.values[key] = d
	if l.Target.Processor == "" {
		return nil
	}
	st.remaining[l.Target.Processor]--
	if st.remaining[l.Target.Processor] == 0 {
		if p, ok := st.def.Processor(l.Target.Processor); ok {
			return []*Processor{p}
		}
	}
	return nil
}

func (st *runState) launch(ctx context.Context, p *Processor) {
	st.wg.Add(1)
	go func() {
		defer st.wg.Done()
		st.runProcessor(ctx, p)
	}()
}

func (st *runState) runProcessor(ctx context.Context, p *Processor) {
	st.mu.Lock()
	if st.err != nil {
		st.mu.Unlock()
		return
	}
	inputs := map[string]Data{}
	for _, in := range p.Inputs {
		inputs[in.Name] = st.values[Endpoint{Processor: p.Name, Port: in.Name}.String()]
	}
	st.mu.Unlock()

	// The processor span parents this processor's invocation and element
	// spans. Downstream launches reuse the incoming ctx so sibling processors
	// all parent to the workflow span, not to whichever processor fired last.
	pctx, psp := telemetry.StartSpan(ctx, "processor:"+p.Name, "engine")
	psp.SetAttr("service", p.Service)

	st.emit(Event{Type: EventProcessorStarted, RunID: st.runID, WorkflowID: st.def.ID,
		WorkflowName: st.def.Name, Processor: p.Name, Service: p.Service,
		Annotations: p.Annotations, Inputs: inputs, Time: time.Now()})

	fn, _ := st.engine.registry.Lookup(p.Service)
	start := time.Now()
	outputs, iterations, elements, err := st.invoke(pctx, fn, p, inputs)
	elapsed := time.Since(start)
	psp.SetAttr("iterations", strconv.Itoa(iterations))

	if err != nil {
		psp.SetAttr("error", err.Error())
		psp.Finish()
		st.emit(Event{Type: EventProcessorFailed, RunID: st.runID, WorkflowID: st.def.ID,
			WorkflowName: st.def.Name, Processor: p.Name, Service: p.Service,
			Annotations: p.Annotations, Inputs: inputs, Iterations: iterations,
			Duration: elapsed, Err: err.Error(), Time: time.Now()})
		st.mu.Lock()
		if st.err == nil {
			st.err = fmt.Errorf("workflow: processor %q: %w", p.Name, err)
			st.cancel()
		}
		st.mu.Unlock()
		return
	}
	psp.Finish()

	st.emit(Event{Type: EventProcessorCompleted, RunID: st.runID, WorkflowID: st.def.ID,
		WorkflowName: st.def.Name, Processor: p.Name, Service: p.Service,
		Annotations: p.Annotations, Inputs: inputs, Outputs: outputs,
		Iterations: iterations, Elements: elements, Duration: elapsed, Time: time.Now()})

	st.mu.Lock()
	st.result.Invocations[p.Name] += iterations
	var ready []*Processor
	for _, l := range st.def.Links {
		if l.Source.Processor != p.Name {
			continue
		}
		d, ok := outputs[l.Source.Port]
		if !ok {
			if st.err == nil {
				st.err = fmt.Errorf("workflow: processor %q did not produce output %q", p.Name, l.Source.Port)
				st.cancel()
			}
			st.mu.Unlock()
			return
		}
		ready = append(ready, st.deliverLocked(l, d)...)
	}
	st.mu.Unlock()
	for _, next := range ready {
		st.launch(ctx, next)
	}
}

// callWithRetry invokes the service, retrying up to p.Retries extra times on
// error. Retries back off exponentially with full jitter when the processor
// configures RetryBase (see backoffDelay); the zero default retries
// immediately, as the engine always has. Context cancellation is never
// retried, and the backoff sleep aborts as soon as the context is done.
func callWithRetry(ctx context.Context, fn ServiceFunc, p *Processor, call Call) (map[string]Data, error) {
	var lastErr error
	for attempt := 0; attempt <= p.Retries; attempt++ {
		if attempt > 0 {
			if err := sleepBackoff(ctx, backoffDelay(p, attempt)); err != nil {
				return nil, err
			}
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		out, err := fn(ctx, call)
		if err == nil {
			return out, nil
		}
		if ctx.Err() != nil {
			return nil, err
		}
		lastErr = err
	}
	if p.Retries > 0 {
		return nil, fmt.Errorf("after %d attempts: %w", p.Retries+1, lastErr)
	}
	return nil, lastErr
}

// backoffDelay computes the pause before retry attempt n (n ≥ 1):
// exponential growth from p.RetryBase, capped at p.RetryCap (default 30s
// when a base is set), with full jitter — a uniform draw over (0, delay] so
// concurrent retries against a struggling authority spread out instead of
// hammering it in lockstep. Zero RetryBase means no backoff.
func backoffDelay(p *Processor, attempt int) time.Duration {
	if p.RetryBase <= 0 {
		return 0
	}
	ceiling := p.RetryCap
	if ceiling <= 0 {
		ceiling = 30 * time.Second
	}
	d := p.RetryBase
	for i := 1; i < attempt && d < ceiling; i++ {
		d *= 2
	}
	if d > ceiling {
		d = ceiling
	}
	return time.Duration(rand.Int63n(int64(d))) + 1
}

// sleepBackoff sleeps for d, returning early with the context error if ctx
// finishes first. Zero and negative d return immediately.
func sleepBackoff(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func checkOutputs(p *Processor, out map[string]Data) error {
	for _, port := range p.Outputs {
		if _, ok := out[port.Name]; !ok {
			return fmt.Errorf("service %q omitted output %q", p.Service, port.Name)
		}
	}
	return nil
}
