package workflow

import (
	"errors"
	"strings"
	"testing"
	"time"
)

// linearDef builds in -> A -> B -> out.
func linearDef() *Definition {
	return &Definition{
		ID:      "wf-linear",
		Name:    "linear",
		Inputs:  []Port{{Name: "in"}},
		Outputs: []Port{{Name: "out"}},
		Processors: []*Processor{
			{Name: "A", Service: "svcA", Inputs: []Port{{Name: "x"}}, Outputs: []Port{{Name: "y"}}},
			{Name: "B", Service: "svcB", Inputs: []Port{{Name: "x"}}, Outputs: []Port{{Name: "y"}}},
		},
		Links: []Link{
			{Source: Endpoint{Port: "in"}, Target: Endpoint{Processor: "A", Port: "x"}},
			{Source: Endpoint{Processor: "A", Port: "y"}, Target: Endpoint{Processor: "B", Port: "x"}},
			{Source: Endpoint{Processor: "B", Port: "y"}, Target: Endpoint{Port: "out"}},
		},
	}
}

func TestValidateOK(t *testing.T) {
	if err := Validate(linearDef()); err != nil {
		t.Fatalf("valid workflow rejected: %v", err)
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Definition)
		want   string
	}{
		{"no name", func(d *Definition) { d.Name = "" }, "no name"},
		{"dup processor", func(d *Definition) { d.Processors = append(d.Processors, d.Processors[0]) }, "duplicate processor"},
		{"no service", func(d *Definition) { d.Processors[0].Service = "" }, "no service"},
		{"dup port", func(d *Definition) { d.Processors[0].Inputs = append(d.Processors[0].Inputs, Port{Name: "x"}) }, "duplicate port"},
		{"empty port", func(d *Definition) { d.Inputs = append(d.Inputs, Port{}) }, "empty name"},
		{"bad depth", func(d *Definition) { d.Inputs[0].Depth = 7 }, "unsupported depth"},
		{"bad source", func(d *Definition) { d.Links[0].Source.Port = "nope" }, "not a workflow input"},
		{"unknown source proc", func(d *Definition) { d.Links[1].Source.Processor = "ZZ" }, "unknown processor"},
		{"source not output", func(d *Definition) { d.Links[1].Source.Port = "x" }, "not an output port"},
		{"bad target", func(d *Definition) { d.Links[2].Target.Port = "nope" }, "not a workflow output"},
		{"unknown target proc", func(d *Definition) { d.Links[1].Target.Processor = "ZZ" }, "unknown processor"},
		{"target not input", func(d *Definition) { d.Links[1].Target.Port = "y" }, "not an input port"},
		{"double fan-in", func(d *Definition) {
			d.Links = append(d.Links, Link{Source: Endpoint{Port: "in"}, Target: Endpoint{Processor: "B", Port: "x"}})
		}, "multiple incoming"},
		{"unconnected input", func(d *Definition) { d.Links = d.Links[1:] }, "unconnected"},
		{"unconnected output", func(d *Definition) { d.Links = d.Links[:2] }, "unconnected"},
	}
	for _, tc := range cases {
		d := linearDef()
		tc.mutate(d)
		err := Validate(d)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !errors.Is(err, ErrInvalid) {
			t.Errorf("%s: error %v is not ErrInvalid", tc.name, err)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestValidateCycle(t *testing.T) {
	d := linearDef()
	// Feed B's output back into A: A.x is already fed by the workflow input,
	// so rewire A to take B's output instead.
	d.Links[0] = Link{Source: Endpoint{Processor: "B", Port: "y"}, Target: Endpoint{Processor: "A", Port: "x"}}
	err := Validate(d)
	if err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("cycle not detected: %v", err)
	}
}

func TestTopoOrder(t *testing.T) {
	d := linearDef()
	order, err := topoOrder(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0].Name != "A" || order[1].Name != "B" {
		t.Fatalf("topo order = %v", []string{order[0].Name, order[1].Name})
	}
}

func TestQualityKeys(t *testing.T) {
	k := QualityKey("reputation")
	if k != "Q(reputation)" {
		t.Fatalf("QualityKey = %q", k)
	}
	if QualityDimension(k) != "reputation" {
		t.Fatalf("QualityDimension = %q", QualityDimension(k))
	}
	if QualityDimension("author") != "" {
		t.Fatal("non-quality key parsed as quality")
	}
	anns := []Annotation{
		{Key: "Q(reputation)", Value: "1"},
		{Key: "Q(availability)", Value: "0.9"},
		{Key: "author", Value: "renato"},
	}
	q := QualityAnnotations(anns)
	if len(q) != 2 || q["reputation"] != "1" || q["availability"] != "0.9" {
		t.Fatalf("QualityAnnotations = %v", q)
	}
}

func TestDefinitionCloneIsDeep(t *testing.T) {
	d := linearDef()
	d.Processors[0].Config = map[string]string{"url": "http://a"}
	d.AnnotateProcessor("A", "Q(reputation)", "1", "expert", time.Now())
	cp := d.Clone()
	cp.Processors[0].Config["url"] = "http://b"
	cp.Processors[0].Annotations[0].Value = "0"
	cp.Links[0].Source.Port = "mutated"
	if d.Processors[0].Config["url"] != "http://a" {
		t.Fatal("Clone shares Config")
	}
	if d.Processors[0].Annotations[0].Value != "1" {
		t.Fatal("Clone shares Annotations")
	}
	if d.Links[0].Source.Port != "in" {
		t.Fatal("Clone shares Links")
	}
}

func TestDataModel(t *testing.T) {
	s := Scalar("hello")
	if s.IsList() || s.String() != "hello" || s.Depth() != 0 || s.Len() != 1 {
		t.Fatalf("scalar = %+v", s)
	}
	l := List(Scalar("a"), Scalar("b"))
	if !l.IsList() || l.Depth() != 1 || l.Len() != 2 || l.String() != "[a, b]" {
		t.Fatalf("list = %+v depth=%d", l, l.Depth())
	}
	nested := List(List(Scalar("a")))
	if nested.Depth() != 2 {
		t.Fatalf("nested depth = %d", nested.Depth())
	}
	if List().Depth() != 1 {
		t.Fatalf("empty list depth = %d", List().Depth())
	}
}

func TestAnnotateHelpers(t *testing.T) {
	d := linearDef()
	when := time.Date(2013, 11, 12, 19, 58, 9, 0, time.UTC)
	d.Annotate("author", "renato", "renato", when)
	if len(d.Annotations) != 1 || d.Annotations[0].Key != "author" {
		t.Fatalf("Annotate: %+v", d.Annotations)
	}
	if err := d.AnnotateProcessor("A", "Q(reputation)", "1", "expert", when); err != nil {
		t.Fatal(err)
	}
	if err := d.AnnotateProcessor("ZZ", "k", "v", "a", when); err == nil {
		t.Fatal("AnnotateProcessor on unknown processor succeeded")
	}
	p, _ := d.Processor("A")
	if len(p.Annotations) != 1 {
		t.Fatalf("processor annotations: %+v", p.Annotations)
	}
	if _, ok := p.InputPort("x"); !ok {
		t.Fatal("InputPort(x) missing")
	}
	if _, ok := p.OutputPort("zz"); ok {
		t.Fatal("OutputPort(zz) found")
	}
	if (Endpoint{Port: "p"}).String() != ":p" || (Endpoint{Processor: "A", Port: "p"}).String() != "A.p" {
		t.Fatal("Endpoint.String wrong")
	}
}
