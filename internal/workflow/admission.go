package workflow

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/storage"
)

// Admission is one admitted-but-unstarted run: the caller minted the run ID
// and recorded the intent to execute durably, but no orchestrator has claimed
// it yet. Options is an opaque blob the admitting layer round-trips (core
// serializes the run options there); the queue never interprets it.
type Admission struct {
	RunID      string
	Tenant     string
	Options    string
	EnqueuedAt time.Time
}

// admissionTable holds one row per pending admission, FIFO-ordered by a
// zero-padded sequence key (same scheme as StorageQueue rows).
const admissionTable = "wf_admissions"

func admissionSchema() *storage.Schema {
	return storage.MustSchema(admissionTable,
		storage.Column{Name: "key", Kind: storage.KindString},
		storage.Column{Name: "run_id", Kind: storage.KindString},
		storage.Column{Name: "tenant", Kind: storage.KindString},
		storage.Column{Name: "options", Kind: storage.KindString},
		storage.Column{Name: "enqueued_at", Kind: storage.KindTime},
	)
}

// AdmissionQueue is the durable queue of admitted-but-unstarted runs: the
// handoff point between the admission surface (POST /api/v1/detect) and the
// scheduler pool. A row survives process death — whichever orchestrator is
// alive next drains it — and is removed only when its run has been carried to
// a terminal state. Ordering is FIFO by admission time. Safe for concurrent
// use; arbitration between orchestrators happens at the run lease, not here.
type AdmissionQueue struct {
	db     *storage.DB
	schema *storage.Schema

	mu  sync.Mutex
	seq int64 // next tail key ordinal
}

// NewAdmissionQueue opens (or creates) the admission table in db and recovers
// the tail ordinal past any surviving rows.
func NewAdmissionQueue(db *storage.DB) (*AdmissionQueue, error) {
	schema := admissionSchema()
	if db.Table(admissionTable) == nil {
		if err := db.CreateTable(schema); err != nil && db.Table(admissionTable) == nil {
			return nil, fmt.Errorf("workflow: create admission table: %w", err)
		}
	}
	q := &AdmissionQueue{db: db, schema: schema}
	db.Table(admissionTable).Scan(func(r storage.Row) bool {
		var ord int64
		fmt.Sscanf(r.Get(schema, "key").Str(), "%012d", &ord)
		if ord >= q.seq {
			q.seq = ord + 1
		}
		return true
	})
	return q, nil
}

// Add appends one admission to the tail. The run ID must be unique across
// pending admissions (it is the leased resource arbitrating execution).
func (q *AdmissionQueue) Add(a Admission) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if a.RunID == "" {
		return fmt.Errorf("workflow: admission without a run ID")
	}
	if _, ok := q.findLocked(a.RunID); ok {
		return fmt.Errorf("workflow: run %s already admitted", a.RunID)
	}
	if a.EnqueuedAt.IsZero() {
		a.EnqueuedAt = time.Now()
	}
	key := fmt.Sprintf("%012d", q.seq)
	err := q.db.Apply(storage.InsertOp(admissionTable, storage.Row{
		storage.S(key), storage.S(a.RunID), storage.S(a.Tenant),
		storage.S(a.Options), storage.T(a.EnqueuedAt),
	}))
	if err != nil {
		return fmt.Errorf("workflow: admit %s: %w", a.RunID, err)
	}
	q.seq++
	return nil
}

func (q *AdmissionQueue) fromRow(r storage.Row) Admission {
	return Admission{
		RunID:      r.Get(q.schema, "run_id").Str(),
		Tenant:     r.Get(q.schema, "tenant").Str(),
		Options:    r.Get(q.schema, "options").Str(),
		EnqueuedAt: r.Get(q.schema, "enqueued_at").Time(),
	}
}

// findLocked returns the row key of the admission for runID. Callers hold q.mu.
func (q *AdmissionQueue) findLocked(runID string) (string, bool) {
	var key string
	found := false
	q.db.Table(admissionTable).Scan(func(r storage.Row) bool {
		if r.Get(q.schema, "run_id").Str() == runID {
			key = r.Get(q.schema, "key").Str()
			found = true
			return false
		}
		return true
	})
	return key, found
}

// Get returns the pending admission for runID, if any.
func (q *AdmissionQueue) Get(runID string) (Admission, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	var out Admission
	found := false
	q.db.Table(admissionTable).Scan(func(r storage.Row) bool {
		if r.Get(q.schema, "run_id").Str() == runID {
			out = q.fromRow(r)
			found = true
			return false
		}
		return true
	})
	return out, found
}

// Pending lists every pending admission in FIFO order.
func (q *AdmissionQueue) Pending() ([]Admission, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	var out []Admission
	q.db.Table(admissionTable).Scan(func(r storage.Row) bool {
		out = append(out, q.fromRow(r))
		return true
	})
	return out, nil
}

// Remove deletes the admission for runID; removing an absent admission is an
// idempotent no-op (two orchestrators may both observe a run's completion).
func (q *AdmissionQueue) Remove(runID string) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	key, ok := q.findLocked(runID)
	if !ok {
		return nil
	}
	if err := q.db.Apply(storage.DeleteOp(admissionTable, storage.S(key))); err != nil {
		return fmt.Errorf("workflow: remove admission %s: %w", runID, err)
	}
	return nil
}

// Depth is the number of pending admissions.
func (q *AdmissionQueue) Depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.db.Table(admissionTable).Len()
}
