package workflow

import (
	"context"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
)

// TestEngineWideFanOutStress runs a wide diamond — one source feeding many
// parallel processors joined by a collector — to shake out scheduling races
// (run under -race in CI).
func TestEngineWideFanOutStress(t *testing.T) {
	const width = 60
	reg := NewRegistry()
	var calls int64
	reg.Register("work", func(_ context.Context, c Call) (map[string]Data, error) {
		atomic.AddInt64(&calls, 1)
		return map[string]Data{"y": Scalar(strings.ToUpper(c.Input("x").String()))}, nil
	})
	reg.Register("join", func(_ context.Context, c Call) (map[string]Data, error) {
		total := 0
		for i := 0; i < width; i++ {
			total += c.Input(fmt.Sprintf("in%d", i)).Len()
		}
		return map[string]Data{"out": Scalar(fmt.Sprintf("%d", total))}, nil
	})

	join := &Processor{Name: "Join", Service: "join", Outputs: []Port{{Name: "out"}}}
	d := &Definition{
		ID: "wf-stress", Name: "stress",
		Inputs:  []Port{{Name: "in", Depth: 1}},
		Outputs: []Port{{Name: "out"}},
	}
	for i := 0; i < width; i++ {
		name := fmt.Sprintf("W%02d", i)
		d.Processors = append(d.Processors, &Processor{
			Name: name, Service: "work",
			Inputs:  []Port{{Name: "x"}}, // scalar: iterates over the list input
			Outputs: []Port{{Name: "y"}},
		})
		join.Inputs = append(join.Inputs, Port{Name: fmt.Sprintf("in%d", i), Depth: 1})
		d.Links = append(d.Links,
			Link{Source: Endpoint{Port: "in"}, Target: Endpoint{Processor: name, Port: "x"}},
			Link{Source: Endpoint{Processor: name, Port: "y"}, Target: Endpoint{Processor: "Join", Port: fmt.Sprintf("in%d", i)}},
		)
	}
	d.Processors = append(d.Processors, join)
	d.Links = append(d.Links, Link{Source: Endpoint{Processor: "Join", Port: "out"}, Target: Endpoint{Port: "out"}})

	items := make([]Data, 25)
	for i := range items {
		items[i] = Scalar(fmt.Sprintf("item%02d", i))
	}
	var listeners []Listener
	var events int64
	listeners = append(listeners, ListenerFunc(func(Event) { atomic.AddInt64(&events, 1) }))

	for round := 0; round < 5; round++ {
		atomic.StoreInt64(&calls, 0)
		res, err := NewEngine(reg).Run(context.Background(), d, map[string]Data{"in": List(items...)}, listeners...)
		if err != nil {
			t.Fatal(err)
		}
		if got := res.Outputs["out"].String(); got != fmt.Sprintf("%d", width*len(items)) {
			t.Fatalf("round %d: out = %q", round, got)
		}
		if atomic.LoadInt64(&calls) != int64(width*len(items)+0) {
			t.Fatalf("round %d: %d work calls", round, calls)
		}
	}
	if atomic.LoadInt64(&events) == 0 {
		t.Fatal("no events observed")
	}
}
