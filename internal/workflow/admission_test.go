package workflow

import (
	"fmt"
	"testing"

	"repro/internal/storage"
)

func admissionDB(t testing.TB) *storage.DB {
	t.Helper()
	db, err := storage.Open(t.TempDir(), storage.Options{Sync: storage.SyncNever})
	if err != nil {
		t.Fatalf("open db: %v", err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func TestAdmissionQueueFIFO(t *testing.T) {
	db := admissionDB(t)
	q, err := NewAdmissionQueue(db)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := q.Add(Admission{RunID: fmt.Sprintf("run-%06d", i), Tenant: "acme"}); err != nil {
			t.Fatalf("add %d: %v", i, err)
		}
	}
	if q.Depth() != 5 {
		t.Fatalf("depth %d, want 5", q.Depth())
	}
	pending, err := q.Pending()
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range pending {
		if want := fmt.Sprintf("run-%06d", i); a.RunID != want {
			t.Fatalf("pending[%d] = %s, want %s (FIFO order)", i, a.RunID, want)
		}
		if a.Tenant != "acme" {
			t.Fatalf("pending[%d] tenant %q", i, a.Tenant)
		}
	}
	// Duplicate admission of a pending run is refused: the run ID is the
	// leased resource, two rows would race themselves.
	if err := q.Add(Admission{RunID: "run-000002"}); err == nil {
		t.Fatal("duplicate admission accepted")
	}
	if err := q.Remove("run-000002"); err != nil {
		t.Fatal(err)
	}
	if err := q.Remove("run-000002"); err != nil {
		t.Fatalf("idempotent remove: %v", err)
	}
	if q.Depth() != 4 {
		t.Fatalf("depth after remove %d, want 4", q.Depth())
	}
	if _, ok := q.Get("run-000002"); ok {
		t.Fatal("removed admission still readable")
	}
	if a, ok := q.Get("run-000003"); !ok || a.RunID != "run-000003" {
		t.Fatalf("Get(run-000003) = %+v, %v", a, ok)
	}
}

// TestAdmissionQueueDurability pins the handoff contract: admissions written
// by one process (queue instance) are drained by the next, in order, and the
// tail ordinal never reuses keys.
func TestAdmissionQueueDurability(t *testing.T) {
	db := admissionDB(t)
	q1, err := NewAdmissionQueue(db)
	if err != nil {
		t.Fatal(err)
	}
	if err := q1.Add(Admission{RunID: "run-000001", Options: `{"parallel":4}`}); err != nil {
		t.Fatal(err)
	}
	if err := q1.Add(Admission{RunID: "run-000002"}); err != nil {
		t.Fatal(err)
	}

	// A second queue over the same DB — the surviving orchestrator — sees
	// both rows and appends after them.
	q2, err := NewAdmissionQueue(db)
	if err != nil {
		t.Fatal(err)
	}
	if err := q2.Add(Admission{RunID: "run-000003"}); err != nil {
		t.Fatal(err)
	}
	pending, err := q2.Pending()
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 3 {
		t.Fatalf("pending %d, want 3", len(pending))
	}
	if pending[0].Options != `{"parallel":4}` {
		t.Fatalf("options not round-tripped: %q", pending[0].Options)
	}
	for i, want := range []string{"run-000001", "run-000002", "run-000003"} {
		if pending[i].RunID != want {
			t.Fatalf("pending[%d] = %s, want %s", i, pending[i].RunID, want)
		}
	}
}

// BenchmarkAdmission measures the admit→claim→complete row lifecycle of the
// durable admission queue — the fixed per-run overhead the scheduler path
// adds on top of detection itself.
func BenchmarkAdmission(b *testing.B) {
	db := admissionDB(b)
	q, err := NewAdmissionQueue(db)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		id := fmt.Sprintf("run-%09d", i)
		if err := q.Add(Admission{RunID: id, Tenant: "bench"}); err != nil {
			b.Fatal(err)
		}
		if _, err := q.Pending(); err != nil {
			b.Fatal(err)
		}
		if err := q.Remove(id); err != nil {
			b.Fatal(err)
		}
	}
}
