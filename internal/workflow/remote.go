package workflow

import (
	"context"
	"fmt"
	"time"
)

// RemoteTask is one unit of work handed to an out-of-process worker: the
// queue task, the processor definition it belongs to (service name, config,
// retry policy — everything the remote side needs to invoke its own
// registered implementation), and the fully-bound element inputs.
type RemoteTask struct {
	Task      Task            `json:"task"`
	Processor *Processor      `json:"processor"`
	Inputs    map[string]Data `json:"inputs"`
}

// RunHandle is the orchestrator-side attachment point for remote workers: a
// live run's queue plus the report channel into the orchestration loop. The
// engine hands one to its Gateway per run; it is valid until RunFinished.
//
// Remote workers are full peers of the in-process pool: they pull from the
// same TaskQueue (FIFO, leases, redelivery) and their reports fold into
// history through the same orchestrator goroutine, so graph byte-identity
// holds regardless of where an element executed.
type RunHandle struct {
	r *eventRun
}

// RunID returns the run this handle serves.
func (h *RunHandle) RunID() string { return h.r.runID }

// Dequeue leases the next task for a remote worker, blocking until one is
// ready, ctx is done, or the queue closes (ErrQueueClosed: the run is
// draining — the worker should detach). Tasks whose activity was already
// cancelled are drained inline, exactly as the in-process worker loop drains
// them, and never reach the remote side.
func (h *RunHandle) Dequeue(ctx context.Context, worker string) (RemoteTask, error) {
	for {
		t, err := h.r.q.Dequeue(ctx)
		if err != nil {
			return RemoteTask{}, err
		}
		h.r.e.Stats.TaskStarted(worker)
		a := h.r.activity(t.Activity)
		if a == nil || h.r.prefixRecorded(t) {
			// A task this orchestrator never scheduled, or whose result the
			// replayed prefix already records — stale queue content from a
			// previous owner; drain it without shipping it out.
			h.r.q.Ack(t.ID)
			h.r.e.Stats.TaskDone(worker)
			continue
		}
		if err := a.ctx.Err(); err != nil {
			h.r.q.Ack(t.ID)
			h.r.e.Stats.TaskDone(worker)
			h.report(workerMsg{task: t, worker: worker, err: err})
			continue
		}
		callIn := a.inputs
		if t.Element >= 0 {
			callIn = elementInputs(a.p, a.inputs, t.Element)
			h.r.e.metrics.elementsDispatched.Add(1)
		}
		h.r.e.metrics.invocations.Add(1)
		h.r.e.metrics.queueWait.Observe(time.Since(t.EnqueuedAt))
		return RemoteTask{Task: t, Processor: a.p, Inputs: callIn}, nil
	}
}

// Complete acks the task and folds the remote result into the run. A nil
// taskErr still runs the declared-output check the in-process worker applies,
// so a misbehaving remote service fails the activity identically.
func (h *RunHandle) Complete(t Task, worker string, callIn, out map[string]Data, taskErr error) {
	if a := h.r.activity(t.Activity); a != nil && taskErr == nil {
		taskErr = checkOutputs(a.p, out)
	}
	h.r.q.Ack(t.ID)
	h.r.e.Stats.TaskDone(worker)
	h.report(workerMsg{task: t, worker: worker, callIn: callIn, out: out, err: taskErr})
}

// Fail nacks the task back to the queue tail (a remote worker shutting down
// mid-task, the cross-process analogue of a killed pool worker).
func (h *RunHandle) Fail(t Task, worker string) {
	h.r.q.Nack(t.ID)
	h.r.e.Stats.TaskRequeued(worker)
}

// RetryNotify appends a retry-backoff event for a remote attempt, mirroring
// the in-process notify callback.
func (h *RunHandle) RetryNotify(t Task, worker string, attempt int) {
	h.report(workerMsg{retry: true, task: t, worker: worker, attempt: attempt})
}

// report delivers a message to the orchestration loop, giving up once the
// loop has exited (a late report from a task whose redelivery already
// completed — the dedup would discard it anyway).
func (h *RunHandle) report(m workerMsg) {
	select {
	case h.r.msgs <- m:
	case <-h.r.done:
	}
}

// InvokeRemote executes one RemoteTask against a local registry — the worker
// side of the remote protocol, shared by cluster.Worker and tests. It runs
// the same retry/backoff/output-check pipeline as the in-process pool.
func InvokeRemote(ctx context.Context, reg *Registry, rt RemoteTask, notify func(attempt int)) (map[string]Data, error) {
	p := rt.Processor
	fn, ok := reg.Lookup(p.Service)
	if !ok {
		return nil, fmt.Errorf("workflow: remote worker has no service %q", p.Service)
	}
	out, err := callWithRetryNotify(ctx, fn, p, Call{Inputs: rt.Inputs, Config: p.Config}, notify)
	if err == nil {
		err = checkOutputs(p, out)
	}
	return out, err
}
