package workflow

import "fmt"

// Static depth analysis, after Taverna's iteration-strategy checking: given
// the declared depths of workflow inputs, propagate effective depths through
// the dataflow, computing each processor's iteration delta (how many levels
// of implicit iteration the engine will apply) and flagging wirings that can
// never execute (depth gaps the single-level iteration cannot bridge) before
// any service runs.

// DepthAnalysis is the result of AnalyzeDepths.
type DepthAnalysis struct {
	// IterationDelta maps each processor to the number of implicit-iteration
	// levels the engine will apply (0 = single invocation, 1 = element-wise).
	IterationDelta map[string]int
	// OutputDepth maps each workflow output port to its effective depth.
	OutputDepth map[string]int
	// Warnings lists workflow outputs whose effective depth differs from the
	// declared depth — legal at run time, but usually a specification bug.
	Warnings []string
}

// AnalyzeDepths computes effective depths. It assumes def is structurally
// valid (call Validate first); it returns an error for depth gaps the engine
// cannot bridge (an input deeper than declared+1, or shallower than
// declared).
func AnalyzeDepths(def *Definition) (*DepthAnalysis, error) {
	order, err := topoOrder(def)
	if err != nil {
		return nil, err
	}
	// Effective depth per source endpoint.
	eff := map[string]int{}
	for _, in := range def.Inputs {
		eff[Endpoint{Port: in.Name}.String()] = in.Depth
	}
	// Incoming link per target endpoint.
	incoming := map[string]Link{}
	for _, l := range def.Links {
		incoming[l.Target.String()] = l
	}

	out := &DepthAnalysis{
		IterationDelta: map[string]int{},
		OutputDepth:    map[string]int{},
	}
	for _, p := range order {
		delta := 0
		for _, in := range p.Inputs {
			link, ok := incoming[Endpoint{Processor: p.Name, Port: in.Name}.String()]
			if !ok {
				return nil, fmt.Errorf("workflow: input %s.%s unconnected", p.Name, in.Name)
			}
			actual, ok := eff[link.Source.String()]
			if !ok {
				return nil, fmt.Errorf("workflow: source %s has no computed depth", link.Source)
			}
			diff := actual - in.Depth
			switch {
			case diff == 0:
				// exact or broadcast
			case diff == 1:
				delta = 1
			case diff > 1:
				return nil, fmt.Errorf("workflow: processor %q input %q receives depth %d but declares %d — %d levels of iteration needed, engine supports 1",
					p.Name, in.Name, actual, in.Depth, diff)
			default:
				return nil, fmt.Errorf("workflow: processor %q input %q receives depth %d but declares %d — value too shallow",
					p.Name, in.Name, actual, in.Depth)
			}
		}
		out.IterationDelta[p.Name] = delta
		for _, op := range p.Outputs {
			eff[Endpoint{Processor: p.Name, Port: op.Name}.String()] = op.Depth + delta
		}
	}
	for _, wout := range def.Outputs {
		link, ok := incoming[Endpoint{Port: wout.Name}.String()]
		if !ok {
			return nil, fmt.Errorf("workflow: output %q unconnected", wout.Name)
		}
		actual, ok := eff[link.Source.String()]
		if !ok {
			return nil, fmt.Errorf("workflow: output %q fed by source with no computed depth", wout.Name)
		}
		out.OutputDepth[wout.Name] = actual
		if actual != wout.Depth {
			out.Warnings = append(out.Warnings, fmt.Sprintf(
				"output %q declared depth %d but will receive depth %d", wout.Name, wout.Depth, actual))
		}
	}
	return out, nil
}
