package workflow

import (
	"context"
	"encoding/json"
	"reflect"
	"testing"
)

func TestDataJSONRoundTrip(t *testing.T) {
	cases := []Data{
		Scalar(""),
		Scalar("Vanellus chilensis"),
		List(),
		List(Scalar("a"), Scalar("b")),
		List(List(Scalar("x")), List(), Scalar("y")),
	}
	for _, in := range cases {
		b, err := json.Marshal(in)
		if err != nil {
			t.Fatalf("marshal %v: %v", in, err)
		}
		var out Data
		if err := json.Unmarshal(b, &out); err != nil {
			t.Fatalf("unmarshal %s: %v", b, err)
		}
		if out.String() != in.String() || out.IsList() != in.IsList() || out.Depth() != in.Depth() {
			t.Fatalf("round trip %v -> %s -> %v", in, b, out)
		}
	}
	var m map[string]Data
	if err := json.Unmarshal([]byte(`{"y": ["a", ["b"]]}`), &m); err != nil {
		t.Fatal(err)
	}
	if m["y"].String() != "[a, [b]]" {
		t.Fatalf("map decode: %v", m["y"])
	}
}

func TestEngineResumeReplaysCheckpoints(t *testing.T) {
	d := linearDef()
	d.Processors[0].Service = "upper"
	d.Processors[1].Service = "exclaim"
	reg := upperReg()
	// If the replayed processor is ever invoked, fail loudly.
	reg.Register("upper", func(_ context.Context, c Call) (map[string]Data, error) {
		t.Error("checkpointed processor A was re-invoked")
		return map[string]Data{"y": Scalar("WRONG")}, nil
	})
	eng := NewEngine(reg)

	var events []EventType
	listener := ListenerFunc(func(ev Event) { events = append(events, ev.Type) })
	cp := []Checkpoint{{Processor: "A", Iterations: 1, Outputs: map[string]Data{"y": Scalar("HELLO")}}}
	res, err := eng.Resume(context.Background(), d, map[string]Data{"in": Scalar("hello")}, "run-resumed", cp, listener)
	if err != nil {
		t.Fatal(err)
	}
	if res.RunID != "run-resumed" {
		t.Fatalf("run ID not reused: %q", res.RunID)
	}
	if got := res.Outputs["out"].String(); got != "HELLO!" {
		t.Fatalf("out = %q", got)
	}
	if res.Invocations["A"] != 0 || res.Invocations["B"] != 1 {
		t.Fatalf("invocations = %v", res.Invocations)
	}
	if !reflect.DeepEqual(res.Replayed, []string{"A"}) {
		t.Fatalf("replayed = %v", res.Replayed)
	}
	for _, ev := range events {
		if ev == EventProcessorStarted || ev == EventProcessorCompleted {
			// Only B may appear; A is replayed silently.
		}
	}
	want := []EventType{EventWorkflowStarted, EventProcessorStarted, EventProcessorCompleted, EventWorkflowCompleted}
	if !reflect.DeepEqual(events, want) {
		t.Fatalf("events = %v", events)
	}
}

func TestEngineResumeAllCheckpointed(t *testing.T) {
	d := linearDef()
	d.Processors[0].Service = "upper"
	d.Processors[1].Service = "exclaim"
	eng := NewEngine(upperReg())
	cps := []Checkpoint{
		{Processor: "A", Iterations: 1, Outputs: map[string]Data{"y": Scalar("HELLO")}},
		{Processor: "B", Iterations: 1, Outputs: map[string]Data{"y": Scalar("HELLO!")}},
	}
	res, err := eng.Resume(context.Background(), d, map[string]Data{"in": Scalar("hello")}, "run-full", cps)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Outputs["out"].String(); got != "HELLO!" {
		t.Fatalf("out = %q", got)
	}
	if len(res.Invocations) != 0 {
		t.Fatalf("no services should run, got %v", res.Invocations)
	}
}

func TestEngineResumeRejectsBadCheckpoints(t *testing.T) {
	d := linearDef()
	d.Processors[0].Service = "upper"
	d.Processors[1].Service = "exclaim"
	eng := NewEngine(upperReg())
	in := map[string]Data{"in": Scalar("x")}
	if _, err := eng.Resume(context.Background(), d, in, "r", []Checkpoint{{Processor: "nope"}}); err == nil {
		t.Fatal("unknown processor accepted")
	}
	bad := []Checkpoint{{Processor: "A", Outputs: map[string]Data{}}}
	if _, err := eng.Resume(context.Background(), d, in, "r", bad); err == nil {
		t.Fatal("checkpoint missing a linked output accepted")
	}
}
