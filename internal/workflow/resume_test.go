package workflow

import (
	"context"
	"encoding/json"
	"reflect"
	"testing"
)

func TestDataJSONRoundTrip(t *testing.T) {
	cases := []Data{
		Scalar(""),
		Scalar("Vanellus chilensis"),
		List(),
		List(Scalar("a"), Scalar("b")),
		List(List(Scalar("x")), List(), Scalar("y")),
	}
	for _, in := range cases {
		b, err := json.Marshal(in)
		if err != nil {
			t.Fatalf("marshal %v: %v", in, err)
		}
		var out Data
		if err := json.Unmarshal(b, &out); err != nil {
			t.Fatalf("unmarshal %s: %v", b, err)
		}
		if out.String() != in.String() || out.IsList() != in.IsList() || out.Depth() != in.Depth() {
			t.Fatalf("round trip %v -> %s -> %v", in, b, out)
		}
	}
	var m map[string]Data
	if err := json.Unmarshal([]byte(`{"y": ["a", ["b"]]}`), &m); err != nil {
		t.Fatal(err)
	}
	if m["y"].String() != "[a, [b]]" {
		t.Fatalf("map decode: %v", m["y"])
	}
}

// recordHistory runs fn with a listener that captures the full history
// stream.
func recordHistory() (*[]HistoryEvent, HistoryListener) {
	var evs []HistoryEvent
	return &evs, HistoryListenerFunc(func(ev HistoryEvent) { evs = append(evs, ev) })
}

func TestEventEngineResumeReplaysPrefix(t *testing.T) {
	d := linearDef()
	d.Processors[0].Service = "upper"
	d.Processors[1].Service = "exclaim"
	reg := upperReg()
	// If the replayed processor is ever invoked, fail loudly.
	reg.Register("upper", func(_ context.Context, c Call) (map[string]Data, error) {
		t.Error("prefix-completed processor A was re-invoked")
		return map[string]Data{"y": Scalar("WRONG")}, nil
	})
	eng := NewEventEngine(reg)

	// History prefix: A scheduled, started, and completed before the crash.
	prefix := []HistoryEvent{
		{Seq: 0, Type: HistoryRunStarted, RunID: "run-resumed",
			Inputs: map[string]Data{"in": Scalar("hello")}},
		{Seq: 1, Type: HistoryActivityScheduled, RunID: "run-resumed", Activity: "A",
			Service: "upper", Inputs: map[string]Data{"x": Scalar("hello")}, Elements: -1},
		{Seq: 2, Type: HistoryActivityStarted, RunID: "run-resumed", Activity: "A", Worker: "w1"},
		{Seq: 3, Type: HistoryActivityCompleted, RunID: "run-resumed", Activity: "A",
			Iterations: 1, Outputs: map[string]Data{"y": Scalar("HELLO")}},
	}
	var events []HistoryEventType
	listener := HistoryListenerFunc(func(ev HistoryEvent) { events = append(events, ev.Type) })
	res, err := eng.Resume(context.Background(), d, map[string]Data{"in": Scalar("hello")}, "run-resumed", prefix, listener)
	if err != nil {
		t.Fatal(err)
	}
	if res.RunID != "run-resumed" {
		t.Fatalf("run ID not reused: %q", res.RunID)
	}
	if got := res.Outputs["out"].String(); got != "HELLO!" {
		t.Fatalf("out = %q", got)
	}
	if res.Invocations["A"] != 0 || res.Invocations["B"] != 1 {
		t.Fatalf("invocations = %v", res.Invocations)
	}
	if !reflect.DeepEqual(res.Replayed, []string{"A"}) {
		t.Fatalf("replayed = %v", res.Replayed)
	}
	// Fresh events continue the sequence: only B executes, then run-finished.
	want := []HistoryEventType{HistoryActivityScheduled, HistoryActivityStarted, HistoryActivityCompleted, HistoryRunFinished}
	if !reflect.DeepEqual(events, want) {
		t.Fatalf("fresh events = %v", events)
	}
}

func TestEventEngineResumeAllCompleted(t *testing.T) {
	d := linearDef()
	d.Processors[0].Service = "upper"
	d.Processors[1].Service = "exclaim"
	eng := NewEventEngine(upperReg())
	prefix := []HistoryEvent{
		{Seq: 0, Type: HistoryRunStarted, RunID: "run-full"},
		{Seq: 1, Type: HistoryActivityScheduled, RunID: "run-full", Activity: "A", Service: "upper", Elements: -1},
		{Seq: 2, Type: HistoryActivityCompleted, RunID: "run-full", Activity: "A",
			Iterations: 1, Outputs: map[string]Data{"y": Scalar("HELLO")}},
		{Seq: 3, Type: HistoryActivityScheduled, RunID: "run-full", Activity: "B", Service: "exclaim", Elements: -1},
		{Seq: 4, Type: HistoryActivityCompleted, RunID: "run-full", Activity: "B",
			Iterations: 1, Outputs: map[string]Data{"y": Scalar("HELLO!")}},
	}
	evs, listener := recordHistory()
	res, err := eng.Resume(context.Background(), d, map[string]Data{"in": Scalar("hello")}, "run-full", prefix, listener)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Outputs["out"].String(); got != "HELLO!" {
		t.Fatalf("out = %q", got)
	}
	if len(res.Invocations) != 0 {
		t.Fatalf("no services should run, got %v", res.Invocations)
	}
	if len(*evs) != 1 || (*evs)[0].Type != HistoryRunFinished || (*evs)[0].Seq != 5 {
		t.Fatalf("fresh events = %+v", *evs)
	}
}

// TestEventEngineResumeFinishedHistory covers the degenerate replay: the run
// finished durably before the crash, so resume only re-delivers the terminal
// event (letting projections repair finalization) and rebuilds the result
// from history — no service runs, no fresh events append.
func TestEventEngineResumeFinishedHistory(t *testing.T) {
	d := linearDef()
	d.Processors[0].Service = "upper"
	d.Processors[1].Service = "exclaim"
	reg := upperReg()
	reg.Register("upper", func(_ context.Context, c Call) (map[string]Data, error) {
		t.Error("finished run re-invoked a service")
		return nil, nil
	})
	eng := NewEventEngine(reg)
	prefix := []HistoryEvent{
		{Seq: 0, Type: HistoryRunStarted, RunID: "run-fin"},
		{Seq: 1, Type: HistoryActivityScheduled, RunID: "run-fin", Activity: "A", Service: "upper", Elements: -1},
		{Seq: 2, Type: HistoryActivityCompleted, RunID: "run-fin", Activity: "A",
			Iterations: 1, Outputs: map[string]Data{"y": Scalar("HELLO")}},
		{Seq: 3, Type: HistoryActivityScheduled, RunID: "run-fin", Activity: "B", Service: "exclaim", Elements: -1},
		{Seq: 4, Type: HistoryActivityCompleted, RunID: "run-fin", Activity: "B",
			Iterations: 1, Outputs: map[string]Data{"y": Scalar("HELLO!")}},
		{Seq: 5, Type: HistoryRunFinished, RunID: "run-fin", Status: "completed",
			Outputs: map[string]Data{"out": Scalar("HELLO!")}},
	}
	evs, listener := recordHistory()
	res, err := eng.Resume(context.Background(), d, map[string]Data{"in": Scalar("hello")}, "run-fin", prefix, listener)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Outputs["out"].String(); got != "HELLO!" {
		t.Fatalf("out = %q", got)
	}
	if len(res.Invocations) != 0 || !reflect.DeepEqual(res.Replayed, []string{"A", "B"}) {
		t.Fatalf("invocations %v, replayed %v", res.Invocations, res.Replayed)
	}
	// The only event delivered is the replayed terminal event, same seq.
	if len(*evs) != 1 || (*evs)[0].Type != HistoryRunFinished || (*evs)[0].Seq != 5 {
		t.Fatalf("delivered events = %+v", *evs)
	}
	failed := append(append([]HistoryEvent(nil), prefix[:5]...),
		HistoryEvent{Seq: 5, Type: HistoryRunFinished, RunID: "run-fin", Status: "failed", Err: "workflow: processor \"B\": boom"})
	if _, err := eng.Resume(context.Background(), d, map[string]Data{"in": Scalar("hello")}, "run-fin", failed); err == nil {
		t.Fatal("failed terminal event resumed without error")
	}
}

func TestEventEngineResumeRejectsBadHistory(t *testing.T) {
	d := linearDef()
	d.Processors[0].Service = "upper"
	d.Processors[1].Service = "exclaim"
	eng := NewEventEngine(upperReg())
	in := map[string]Data{"in": Scalar("x")}
	bad := []HistoryEvent{{Seq: 0, Type: HistoryActivityScheduled, Activity: "nope"}}
	if _, err := eng.Resume(context.Background(), d, in, "r", bad); err == nil {
		t.Fatal("history for unknown processor accepted")
	}
	done := []HistoryEvent{{Seq: 0, Type: HistoryRunFinished, RunID: "r", Status: "completed"}}
	if _, err := eng.Resume(context.Background(), d, in, "r", done); err == nil {
		t.Fatal("finished history lacking the workflow outputs accepted")
	}
	after := []HistoryEvent{
		{Seq: 0, Type: HistoryRunFinished, RunID: "r", Status: "completed"},
		{Seq: 1, Type: HistoryRunStarted, RunID: "r"},
	}
	if _, err := eng.Resume(context.Background(), d, in, "r", after); err == nil {
		t.Fatal("history continuing past run-finished accepted")
	}
	lacking := []HistoryEvent{
		{Seq: 0, Type: HistoryRunStarted, RunID: "r"},
		{Seq: 1, Type: HistoryActivityScheduled, Activity: "A", Service: "upper", Elements: -1},
		{Seq: 2, Type: HistoryActivityCompleted, Activity: "A", Iterations: 1, Outputs: map[string]Data{}},
	}
	if _, err := eng.Resume(context.Background(), d, in, "r", lacking); err == nil {
		t.Fatal("completed activity missing a linked output accepted")
	}
}

// TestEventEngineMatchesLegacy pins the bridge the whole refactor rests on:
// the projector applied to the event engine's history stream yields the same
// legacy execution events (up to timing) as the in-process engine, for both
// scalar pipelines and implicit iteration, at several worker counts.
func TestEventEngineMatchesLegacy(t *testing.T) {
	d := linearDef()
	d.Processors[0].Service = "upper"
	d.Processors[1].Service = "exclaim"
	in := map[string]Data{"in": Scalar("hello")}

	legacyEng := NewEngine(upperReg())
	var legacy []Event
	if _, err := legacyEng.Run(context.Background(), d, in, ListenerFunc(func(ev Event) { legacy = append(legacy, ev) })); err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 4, 16} {
		eng := NewEventEngine(upperReg())
		eng.Workers = workers
		var proj Projector
		var got []Event
		res, err := eng.Run(context.Background(), d, in, HistoryListenerFunc(func(hev HistoryEvent) {
			if ev, ok := proj.Apply(hev); ok {
				got = append(got, ev)
			}
		}))
		if err != nil {
			t.Fatal(err)
		}
		if res.Outputs["out"].String() != "HELLO!" {
			t.Fatalf("workers=%d: out = %q", workers, res.Outputs["out"])
		}
		if len(got) != len(legacy) {
			t.Fatalf("workers=%d: %d projected events vs %d legacy", workers, len(got), len(legacy))
		}
		for i := range got {
			g, l := got[i], legacy[i]
			if g.Type != l.Type || g.Processor != l.Processor || g.Service != l.Service ||
				g.Iterations != l.Iterations || !reflect.DeepEqual(dataStrings(g.Outputs), dataStrings(l.Outputs)) {
				t.Fatalf("workers=%d event %d:\n got %+v\nwant %+v", workers, i, g, l)
			}
		}
	}
}

func TestEventEngineIterationAndElementEvents(t *testing.T) {
	d := &Definition{
		ID:      "wf-iter",
		Name:    "iter",
		Inputs:  []Port{{Name: "names", Depth: 1}},
		Outputs: []Port{{Name: "out", Depth: 1}},
		Processors: []*Processor{
			{Name: "Upper", Service: "upper", Inputs: []Port{{Name: "x"}}, Outputs: []Port{{Name: "y"}}},
		},
		Links: []Link{
			{Source: Endpoint{Port: "names"}, Target: Endpoint{Processor: "Upper", Port: "x"}},
			{Source: Endpoint{Processor: "Upper", Port: "y"}, Target: Endpoint{Port: "out"}},
		},
	}
	eng := NewEventEngine(upperReg())
	eng.Workers = 4
	evs, listener := recordHistory()
	res, err := eng.Run(context.Background(), d,
		map[string]Data{"names": List(Scalar("a"), Scalar("b"), Scalar("c"))}, listener)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Outputs["out"].String(); got != "[A, B, C]" {
		t.Fatalf("out = %q", got)
	}
	elements := 0
	var sched HistoryEvent
	for _, ev := range *evs {
		switch ev.Type {
		case HistoryIterationElement:
			elements++
			if ev.Worker == "" {
				t.Fatalf("element event without worker: %+v", ev)
			}
		case HistoryActivityScheduled:
			sched = ev
		}
	}
	if elements != 3 {
		t.Fatalf("iteration-element events = %d, want 3", elements)
	}
	if sched.Elements != 3 {
		t.Fatalf("scheduled planned elements = %d, want 3", sched.Elements)
	}
	// Seqs are dense from 0 and the stream is closed.
	for i, ev := range *evs {
		if ev.Seq != i {
			t.Fatalf("seq gap at %d: %+v", i, ev)
		}
	}
	if last := (*evs)[len(*evs)-1]; last.Type != HistoryRunFinished || last.Status != "completed" {
		t.Fatalf("last event: %+v", last)
	}
}

func dataStrings(m map[string]Data) map[string]string {
	if m == nil {
		return nil
	}
	out := make(map[string]string, len(m))
	for k, v := range m {
		out[k] = v.String()
	}
	return out
}
