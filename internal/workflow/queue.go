package workflow

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrQueueClosed is returned by Enqueue after Close, and by Dequeue once the
// queue is closed AND drained (remaining ready tasks are still handed out
// after Close so in-flight runs can finish their tail).
var ErrQueueClosed = errors.New("workflow: task queue closed")

// Task is one unit of activity work pulled by a worker: a single invocation
// of a processor's service — either one iteration element (Element >= 0) or
// the whole non-iterating call (Element == -1).
type Task struct {
	ID       string // stable across redeliveries: runID/activity#element
	RunID    string
	Activity string
	Element  int // iteration index, or -1 for a single non-iterating call
	// Attempt counts deliveries of this task (0 on first enqueue); a Nack
	// re-enqueues the same ID with Attempt+1.
	Attempt    int
	EnqueuedAt time.Time
}

// TaskID builds the stable task identifier for an activity element.
func TaskID(runID, activity string, element int) string {
	return fmt.Sprintf("%s/%s#%d", runID, activity, element)
}

// TaskQueue is the pluggable dispatch backend of the event-sourced engine.
// Both implementations (MemoryQueue, StorageQueue) satisfy one contract,
// pinned by RunQueueContract in queue_contract_test.go:
//
//   - Enqueue appends to the tail; order of delivery is FIFO.
//   - Dequeue blocks until a task is ready, the ctx is done, or the queue is
//     closed and drained. A dequeued task is leased (counted by InFlight)
//     until Ack or Nack.
//   - Ack removes a leased task permanently; Nack returns it to the tail
//     with Attempt+1 under the same ID.
//   - Depth counts ready (not yet dequeued) tasks; InFlight counts leased.
//   - Close stops new enqueues immediately but lets Dequeue drain what is
//     already ready.
type TaskQueue interface {
	Enqueue(t Task) error
	Dequeue(ctx context.Context) (Task, error)
	Ack(id string) error
	Nack(id string) error
	Depth() int
	InFlight() int
	Close() error
}

// MemoryQueue is the in-process TaskQueue: a mutex-guarded FIFO with a
// broadcast wake channel. It is the default backend of EventEngine.
type MemoryQueue struct {
	mu     sync.Mutex
	ready  []Task
	leased map[string]Task
	closed bool
	wake   chan struct{} // closed-and-replaced to broadcast state changes
}

// NewMemoryQueue returns an empty in-memory task queue.
func NewMemoryQueue() *MemoryQueue {
	return &MemoryQueue{leased: make(map[string]Task), wake: make(chan struct{})}
}

// broadcastLocked wakes every blocked Dequeue. Callers hold q.mu.
func (q *MemoryQueue) broadcastLocked() {
	close(q.wake)
	q.wake = make(chan struct{})
}

// Enqueue implements TaskQueue.
func (q *MemoryQueue) Enqueue(t Task) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrQueueClosed
	}
	if t.EnqueuedAt.IsZero() {
		t.EnqueuedAt = time.Now()
	}
	q.ready = append(q.ready, t)
	q.broadcastLocked()
	return nil
}

// Dequeue implements TaskQueue.
func (q *MemoryQueue) Dequeue(ctx context.Context) (Task, error) {
	for {
		q.mu.Lock()
		if len(q.ready) > 0 {
			t := q.ready[0]
			q.ready = q.ready[1:]
			q.leased[t.ID] = t
			q.mu.Unlock()
			return t, nil
		}
		if q.closed {
			q.mu.Unlock()
			return Task{}, ErrQueueClosed
		}
		wake := q.wake
		q.mu.Unlock()
		select {
		case <-ctx.Done():
			return Task{}, ctx.Err()
		case <-wake:
		}
	}
}

// Ack implements TaskQueue.
func (q *MemoryQueue) Ack(id string) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if _, ok := q.leased[id]; !ok {
		return fmt.Errorf("workflow: ack of unleased task %q", id)
	}
	delete(q.leased, id)
	return nil
}

// Nack implements TaskQueue.
func (q *MemoryQueue) Nack(id string) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	t, ok := q.leased[id]
	if !ok {
		return fmt.Errorf("workflow: nack of unleased task %q", id)
	}
	delete(q.leased, id)
	t.Attempt++
	t.EnqueuedAt = time.Now()
	q.ready = append(q.ready, t)
	q.broadcastLocked()
	return nil
}

// Depth implements TaskQueue.
func (q *MemoryQueue) Depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.ready)
}

// InFlight implements TaskQueue.
func (q *MemoryQueue) InFlight() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.leased)
}

// Close implements TaskQueue.
func (q *MemoryQueue) Close() error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if !q.closed {
		q.closed = true
		q.broadcastLocked()
	}
	return nil
}
