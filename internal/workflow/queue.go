package workflow

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrQueueClosed is returned by Enqueue after Close, and by Dequeue once the
// queue is closed AND drained (remaining ready tasks are still handed out
// after Close so in-flight runs can finish their tail).
var ErrQueueClosed = errors.New("workflow: task queue closed")

// Task is one unit of activity work pulled by a worker: a single invocation
// of a processor's service — either one iteration element (Element >= 0) or
// the whole non-iterating call (Element == -1).
type Task struct {
	ID       string // stable across redeliveries: runID/activity#element
	RunID    string
	Activity string
	Element  int // iteration index, or -1 for a single non-iterating call
	// Attempt counts deliveries of this task (0 on first enqueue); a Nack
	// re-enqueues the same ID with Attempt+1.
	Attempt    int
	EnqueuedAt time.Time
}

// TaskID builds the stable task identifier for an activity element.
func TaskID(runID, activity string, element int) string {
	return fmt.Sprintf("%s/%s#%d", runID, activity, element)
}

// TaskQueue is the pluggable dispatch backend of the event-sourced engine.
// Both implementations (MemoryQueue, StorageQueue) satisfy one contract,
// pinned by RunQueueContract in queue_contract_test.go:
//
//   - Enqueue appends to the tail; order of delivery is FIFO.
//   - Dequeue blocks until a task is ready, the ctx is done, or the queue is
//     closed and drained. A dequeued task is leased (counted by InFlight)
//     until Ack or Nack.
//   - Ack removes a leased task permanently; Nack returns it to the tail
//     with Attempt+1 under the same ID.
//   - Depth counts ready (not yet dequeued) tasks; InFlight counts leased.
//   - Close stops new enqueues immediately but lets Dequeue drain what is
//     already ready.
type TaskQueue interface {
	Enqueue(t Task) error
	Dequeue(ctx context.Context) (Task, error)
	Ack(id string) error
	Nack(id string) error
	Depth() int
	InFlight() int
	Close() error
}

// MemoryQueue is the in-process TaskQueue: a mutex-guarded FIFO with a
// broadcast wake channel. It is the default backend of EventEngine.
type MemoryQueue struct {
	mu       sync.Mutex
	ready    []Task
	leased   map[string]memLease
	leaseTTL time.Duration // 0 = leases never expire
	expiring int           // leases with a non-zero deadline outstanding
	closed   bool
	wake     chan struct{} // closed-and-replaced to broadcast state changes
}

// memLease is one outstanding delivery; a zero expires never times out.
type memLease struct {
	t       Task
	expires time.Time
}

// NewMemoryQueue returns an empty in-memory task queue.
func NewMemoryQueue() *MemoryQueue {
	return &MemoryQueue{leased: make(map[string]memLease), wake: make(chan struct{})}
}

// SetLeaseTTL bounds how long a dequeued task may stay unacknowledged: a
// lease older than ttl is reclaimed by the next Dequeue and the task is
// redelivered at the tail with Attempt+1, exactly as a Nack would — the
// original holder's late Ack is then an idempotent no-op. Zero (the default)
// restores leases that never expire, adding no cost to the hot dispatch
// path. Only leases taken after the call carry the new TTL.
func (q *MemoryQueue) SetLeaseTTL(ttl time.Duration) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.leaseTTL = ttl
}

// reclaimLocked returns expired leases to the tail, bumping Attempt. Callers
// hold q.mu and have checked q.expiring > 0, keeping the no-TTL dispatch
// path free of clock reads and map sweeps. Reports whether anything was
// reclaimed.
func (q *MemoryQueue) reclaimLocked(now time.Time) bool {
	reclaimed := false
	for id, l := range q.leased {
		if l.expires.IsZero() || now.Before(l.expires) {
			continue
		}
		delete(q.leased, id)
		q.expiring--
		t := l.t
		t.Attempt++
		t.EnqueuedAt = now
		q.ready = append(q.ready, t)
		reclaimed = true
	}
	return reclaimed
}

// nextExpiryLocked returns the earliest lease deadline, zero when no lease
// can expire. Callers hold q.mu.
func (q *MemoryQueue) nextExpiryLocked() time.Time {
	var min time.Time
	if q.expiring == 0 {
		return min
	}
	for _, l := range q.leased {
		if l.expires.IsZero() {
			continue
		}
		if min.IsZero() || l.expires.Before(min) {
			min = l.expires
		}
	}
	return min
}

// broadcastLocked wakes every blocked Dequeue. Callers hold q.mu.
func (q *MemoryQueue) broadcastLocked() {
	close(q.wake)
	q.wake = make(chan struct{})
}

// Enqueue implements TaskQueue.
func (q *MemoryQueue) Enqueue(t Task) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrQueueClosed
	}
	if t.EnqueuedAt.IsZero() {
		t.EnqueuedAt = time.Now()
	}
	q.ready = append(q.ready, t)
	q.broadcastLocked()
	return nil
}

// Dequeue implements TaskQueue.
func (q *MemoryQueue) Dequeue(ctx context.Context) (Task, error) {
	for {
		q.mu.Lock()
		if q.expiring > 0 && q.reclaimLocked(time.Now()) {
			q.broadcastLocked() // other blocked dequeuers may take the rest
		}
		if len(q.ready) > 0 {
			t := q.ready[0]
			q.ready = q.ready[1:]
			l := memLease{t: t}
			if q.leaseTTL > 0 {
				l.expires = time.Now().Add(q.leaseTTL)
				q.expiring++
			}
			q.leased[t.ID] = l
			q.mu.Unlock()
			return t, nil
		}
		if q.closed {
			q.mu.Unlock()
			return Task{}, ErrQueueClosed
		}
		wake := q.wake
		expiry := q.nextExpiryLocked()
		q.mu.Unlock()
		var timer *time.Timer
		var timerC <-chan time.Time
		if !expiry.IsZero() {
			timer = time.NewTimer(time.Until(expiry))
			timerC = timer.C
		}
		select {
		case <-ctx.Done():
			if timer != nil {
				timer.Stop()
			}
			return Task{}, ctx.Err()
		case <-wake:
		case <-timerC:
		}
		if timer != nil {
			timer.Stop()
		}
	}
}

// Ack implements TaskQueue. Acking a task this holder no longer leases — it
// was never dequeued, already acked, or the lease expired and the task now
// belongs to whoever reclaims it — is an idempotent no-op: the ownership
// transfer already happened and completing the stolen copy here would race
// the new holder. Redelivery of completed work is absorbed by the engine's
// per-task report dedup, not prevented at the queue.
func (q *MemoryQueue) Ack(id string) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	l, ok := q.leased[id]
	if !ok {
		return nil
	}
	if !l.expires.IsZero() && !time.Now().Before(l.expires) {
		return nil // expired: the task is reclaimable, not completable
	}
	delete(q.leased, id)
	if !l.expires.IsZero() {
		q.expiring--
	}
	return nil
}

// Nack implements TaskQueue. Like Ack, nacking an unleased or expired task is
// an idempotent no-op — an expired lease is already on its way back to the
// tail via reclaim, and re-enqueueing it here would duplicate the delivery.
func (q *MemoryQueue) Nack(id string) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	l, ok := q.leased[id]
	if !ok {
		return nil
	}
	if !l.expires.IsZero() && !time.Now().Before(l.expires) {
		return nil // expired: reclaim owns the redelivery
	}
	delete(q.leased, id)
	if !l.expires.IsZero() {
		q.expiring--
	}
	t := l.t
	t.Attempt++
	t.EnqueuedAt = time.Now()
	q.ready = append(q.ready, t)
	q.broadcastLocked()
	return nil
}

// Depth implements TaskQueue.
func (q *MemoryQueue) Depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.ready)
}

// InFlight implements TaskQueue.
func (q *MemoryQueue) InFlight() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.leased)
}

// Close implements TaskQueue.
func (q *MemoryQueue) Close() error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if !q.closed {
		q.closed = true
		q.broadcastLocked()
	}
	return nil
}
