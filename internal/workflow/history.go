package workflow

import (
	"sort"
	"time"
)

// This file defines the event-sourced core's source of truth: every run is an
// append-only history of typed events, and everything else the system derives
// from a run — OPM provenance deltas, telemetry spans, crash recovery — is a
// deterministic projection of that stream. The engine (eventcore.go) appends
// events from a single orchestrator goroutine, so a run's history is totally
// ordered and its Seq numbers are dense from 0.
//
// Resume is replay: fold the persisted history prefix back into engine state,
// re-enqueue only the activity tasks the prefix does not record as finished,
// and append new events after the prefix. No checkpoint side-channel exists.

// HistoryEventType classifies one history event. The values are the wire
// format (JSON payloads store them verbatim), so they must never change.
type HistoryEventType string

// History event types, appended in causal order per run.
const (
	// HistoryRunStarted opens the run: workflow identity, inputs, annotations.
	HistoryRunStarted HistoryEventType = "run-started"
	// HistoryActivityScheduled records that a processor's inputs were bound
	// and its tasks enqueued. Inputs and Annotations are those of the
	// processor; Elements is the planned invocation count (-1 for a single
	// non-iterating call).
	HistoryActivityScheduled HistoryEventType = "activity-scheduled"
	// HistoryActivityStarted records the first worker pickup of an activity.
	HistoryActivityStarted HistoryEventType = "activity-started"
	// HistoryIterationElement records the durable completion of ONE implicit
	// iteration element: Element is the index, Inputs/Outputs the per-element
	// call data. Resume re-enqueues only elements with no such event.
	HistoryIterationElement HistoryEventType = "iteration-element"
	// HistoryActivityCompleted closes an activity successfully: collected
	// Outputs and the invocation count.
	HistoryActivityCompleted HistoryEventType = "activity-completed"
	// HistoryActivityFailed closes an activity with an error.
	HistoryActivityFailed HistoryEventType = "activity-failed"
	// HistorySubWorkflow marks a scheduled activity as a nested dataflow
	// (its service resolves through RegisterNested).
	HistorySubWorkflow HistoryEventType = "sub-workflow"
	// HistoryRetryBackoff records one retry pause of a service invocation.
	HistoryRetryBackoff HistoryEventType = "retry-backoff"
	// HistoryRunFinished closes the run; Status is "completed" or "failed".
	// It is always the last event of a history.
	HistoryRunFinished HistoryEventType = "run-finished"
)

// HistoryEvent is one immutable entry of a run's history stream. Unused
// fields are zero; the JSON encoding (via the Data codec) is the persisted
// payload format in the provenance repository's history table.
type HistoryEvent struct {
	Seq  int              `json:"seq"`
	Type HistoryEventType `json:"type"`
	Time time.Time        `json:"time"`

	RunID        string `json:"run_id"`
	WorkflowID   string `json:"workflow_id,omitempty"`
	WorkflowName string `json:"workflow_name,omitempty"`

	// Activity is the processor name ("" for run-level events); Service its
	// registry key; Worker the ID of the worker that produced the event.
	Activity string `json:"activity,omitempty"`
	Service  string `json:"service,omitempty"`
	Worker   string `json:"worker,omitempty"`

	// Element is the iteration index (-1 when not element-scoped), Elements
	// the planned invocation count of a scheduled activity (-1 for a single
	// call), Iterations the invocation count of a finished activity, and
	// Attempt the retry ordinal of a retry-backoff event.
	Element    int `json:"element,omitempty"`
	Elements   int `json:"elements,omitempty"`
	Iterations int `json:"iterations,omitempty"`
	Attempt    int `json:"attempt,omitempty"`

	Inputs      map[string]Data `json:"inputs,omitempty"`
	Outputs     map[string]Data `json:"outputs,omitempty"`
	Annotations []Annotation    `json:"annotations,omitempty"`

	Duration time.Duration `json:"duration,omitempty"`
	// Status is "completed" or "failed" on run-finished events.
	Status string `json:"status,omitempty"`
	Err    string `json:"error,omitempty"`
}

// HistoryListener observes a run's history stream. OnHistoryEvent is called
// synchronously from the engine's orchestrator goroutine, in Seq order, so
// implementations observe a totally ordered stream and need no locking
// against the engine (they must still be safe against their own readers).
type HistoryListener interface {
	OnHistoryEvent(HistoryEvent)
}

// HistoryListenerFunc adapts a function to HistoryListener.
type HistoryListenerFunc func(HistoryEvent)

// OnHistoryEvent implements HistoryListener.
func (f HistoryListenerFunc) OnHistoryEvent(ev HistoryEvent) { f(ev) }

// HistoryPrefixer is an optional HistoryListener extension: before a resumed
// run appends its first new event, the engine hands the replayed prefix to
// every listener implementing it, so projections can fold the prefix into
// their state without re-emitting what is already persisted.
type HistoryPrefixer interface {
	OnHistoryPrefix([]HistoryEvent)
}

// Projector folds a history stream into the legacy execution Events the
// Provenance Manager consumes. It is the deterministic bridge between the
// event-sourced core and every downstream consumer of workflow.Event: the
// same history prefix always projects to the same event sequence, which is
// what makes resume-as-replay byte-identical.
//
// A Projector is stateful (scheduled inputs and accumulated iteration
// elements buffer between events) and not safe for concurrent use.
type Projector struct {
	acts map[string]*projActivity
}

type projActivity struct {
	scheduled HistoryEvent
	elements  []ElementTrace
}

// Apply folds one history event. When the event projects to a legacy
// execution Event, it returns (event, true); bookkeeping events
// (activity-started, iteration-element, sub-workflow, retry-backoff) fold
// into state and return (Event{}, false).
func (p *Projector) Apply(ev HistoryEvent) (Event, bool) {
	if p.acts == nil {
		p.acts = make(map[string]*projActivity)
	}
	switch ev.Type {
	case HistoryRunStarted:
		return Event{
			Type: EventWorkflowStarted, Time: ev.Time, RunID: ev.RunID,
			WorkflowID: ev.WorkflowID, WorkflowName: ev.WorkflowName,
			Annotations: ev.Annotations, Inputs: ev.Inputs,
		}, true

	case HistoryActivityScheduled:
		p.acts[ev.Activity] = &projActivity{scheduled: ev}
		return Event{
			Type: EventProcessorStarted, Time: ev.Time, RunID: ev.RunID,
			WorkflowID: ev.WorkflowID, WorkflowName: ev.WorkflowName,
			Processor: ev.Activity, Service: ev.Service,
			Annotations: ev.Annotations, Inputs: ev.Inputs,
		}, true

	case HistoryIterationElement:
		if a := p.acts[ev.Activity]; a != nil {
			a.elements = append(a.elements, ElementTrace{
				Index: ev.Element, Inputs: ev.Inputs, Outputs: ev.Outputs,
			})
		}
		return Event{}, false

	case HistoryActivityCompleted, HistoryActivityFailed:
		a := p.acts[ev.Activity]
		if a == nil {
			a = &projActivity{}
		}
		out := Event{
			Type: EventProcessorCompleted, Time: ev.Time, RunID: ev.RunID,
			WorkflowID: ev.WorkflowID, WorkflowName: ev.WorkflowName,
			Processor: ev.Activity, Service: a.scheduled.Service,
			Annotations: a.scheduled.Annotations, Inputs: a.scheduled.Inputs,
			Outputs: ev.Outputs, Iterations: ev.Iterations, Duration: ev.Duration,
		}
		if len(a.elements) > 0 {
			sort.Slice(a.elements, func(i, j int) bool { return a.elements[i].Index < a.elements[j].Index })
			out.Elements = a.elements
		}
		if ev.Type == HistoryActivityFailed {
			out.Type = EventProcessorFailed
			out.Err = ev.Err
			out.Outputs = nil
			out.Elements = nil
		}
		delete(p.acts, ev.Activity)
		return out, true

	case HistoryRunFinished:
		if ev.Status == "failed" {
			return Event{
				Type: EventWorkflowFailed, Time: ev.Time, RunID: ev.RunID,
				WorkflowID: ev.WorkflowID, WorkflowName: ev.WorkflowName, Err: ev.Err,
			}, true
		}
		return Event{
			Type: EventWorkflowCompleted, Time: ev.Time, RunID: ev.RunID,
			WorkflowID: ev.WorkflowID, WorkflowName: ev.WorkflowName, Outputs: ev.Outputs,
		}, true
	}
	// activity-started, sub-workflow, retry-backoff: execution bookkeeping
	// with no legacy-event projection.
	return Event{}, false
}
