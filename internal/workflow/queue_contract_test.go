package workflow

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/storage"
)

// queueBackends enumerates the TaskQueue implementations under the shared
// contract. Every behavioural guarantee the engine relies on is pinned here
// once and asserted against both.
func queueBackends(t *testing.T) map[string]func(t *testing.T) TaskQueue {
	return map[string]func(t *testing.T) TaskQueue{
		"memory": func(t *testing.T) TaskQueue { return NewMemoryQueue() },
		"storage": func(t *testing.T) TaskQueue {
			db, err := storage.Open(t.TempDir(), storage.Options{})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { db.Close() })
			q, err := NewStorageQueue(db, "contract")
			if err != nil {
				t.Fatal(err)
			}
			return q
		},
	}
}

func task(i int) Task {
	return Task{ID: TaskID("run-q", "P", i), RunID: "run-q", Activity: "P", Element: i, EnqueuedAt: time.Now()}
}

func TestQueueContractFIFO(t *testing.T) {
	for name, mk := range queueBackends(t) {
		t.Run(name, func(t *testing.T) {
			q := mk(t)
			for i := 0; i < 5; i++ {
				if err := q.Enqueue(task(i)); err != nil {
					t.Fatal(err)
				}
			}
			if d := q.Depth(); d != 5 {
				t.Fatalf("depth = %d, want 5", d)
			}
			for i := 0; i < 5; i++ {
				got, err := q.Dequeue(context.Background())
				if err != nil {
					t.Fatal(err)
				}
				if got.Element != i {
					t.Fatalf("dequeue %d: element %d, FIFO broken", i, got.Element)
				}
				if err := q.Ack(got.ID); err != nil {
					t.Fatal(err)
				}
			}
			if q.Depth() != 0 || q.InFlight() != 0 {
				t.Fatalf("drained queue: depth=%d inflight=%d", q.Depth(), q.InFlight())
			}
		})
	}
}

func TestQueueContractLeaseAccounting(t *testing.T) {
	for name, mk := range queueBackends(t) {
		t.Run(name, func(t *testing.T) {
			q := mk(t)
			q.Enqueue(task(0))
			q.Enqueue(task(1))
			got, err := q.Dequeue(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if q.Depth() != 1 || q.InFlight() != 1 {
				t.Fatalf("after dequeue: depth=%d inflight=%d", q.Depth(), q.InFlight())
			}
			if err := q.Ack(got.ID); err != nil {
				t.Fatal(err)
			}
			if q.InFlight() != 0 {
				t.Fatalf("after ack: inflight=%d", q.InFlight())
			}
			// Pinned: a double Ack (or an Ack/Nack of anything unleased) is
			// an idempotent no-op, not an error — and it must not disturb
			// the still-queued task.
			if err := q.Ack(got.ID); err != nil {
				t.Fatalf("double ack: %v, want idempotent nil", err)
			}
			if err := q.Nack(got.ID); err != nil {
				t.Fatalf("nack of acked task: %v, want idempotent nil", err)
			}
			if q.Depth() != 1 || q.InFlight() != 0 {
				t.Fatalf("after idempotent no-ops: depth=%d inflight=%d, want 1/0", q.Depth(), q.InFlight())
			}
		})
	}
}

func TestQueueContractNackRedelivers(t *testing.T) {
	for name, mk := range queueBackends(t) {
		t.Run(name, func(t *testing.T) {
			q := mk(t)
			q.Enqueue(task(0))
			q.Enqueue(task(1))
			first, err := q.Dequeue(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if err := q.Nack(first.ID); err != nil {
				t.Fatal(err)
			}
			// The nacked task moves to the tail with a bumped attempt.
			second, _ := q.Dequeue(context.Background())
			if second.Element != 1 {
				t.Fatalf("nacked task did not yield the head: got element %d", second.Element)
			}
			redelivered, _ := q.Dequeue(context.Background())
			if redelivered.ID != first.ID {
				t.Fatalf("redelivered ID %q, want %q", redelivered.ID, first.ID)
			}
			if redelivered.Attempt != first.Attempt+1 {
				t.Fatalf("redelivered attempt = %d, want %d", redelivered.Attempt, first.Attempt+1)
			}
		})
	}
}

func TestQueueContractBlockingDequeue(t *testing.T) {
	for name, mk := range queueBackends(t) {
		t.Run(name, func(t *testing.T) {
			q := mk(t)
			got := make(chan Task, 1)
			go func() {
				tk, err := q.Dequeue(context.Background())
				if err == nil {
					got <- tk
				}
			}()
			time.Sleep(20 * time.Millisecond) // let the dequeuer block
			if err := q.Enqueue(task(7)); err != nil {
				t.Fatal(err)
			}
			select {
			case tk := <-got:
				if tk.Element != 7 {
					t.Fatalf("woken dequeue got element %d", tk.Element)
				}
			case <-time.After(2 * time.Second):
				t.Fatal("enqueue did not wake the blocked dequeue")
			}
		})
	}
}

func TestQueueContractDequeueHonoursContext(t *testing.T) {
	for name, mk := range queueBackends(t) {
		t.Run(name, func(t *testing.T) {
			q := mk(t)
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
			defer cancel()
			if _, err := q.Dequeue(ctx); !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("err = %v, want deadline exceeded", err)
			}
		})
	}
}

func TestQueueContractCloseDrains(t *testing.T) {
	for name, mk := range queueBackends(t) {
		t.Run(name, func(t *testing.T) {
			q := mk(t)
			q.Enqueue(task(0))
			if err := q.Close(); err != nil {
				t.Fatal(err)
			}
			if err := q.Enqueue(task(1)); !errors.Is(err, ErrQueueClosed) {
				t.Fatalf("enqueue after close: %v", err)
			}
			// Already-ready work still drains...
			tk, err := q.Dequeue(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if err := q.Ack(tk.ID); err != nil {
				t.Fatal(err)
			}
			// ...then dequeue reports closure.
			if _, err := q.Dequeue(context.Background()); !errors.Is(err, ErrQueueClosed) {
				t.Fatalf("dequeue on drained closed queue: %v", err)
			}
		})
	}
}

// TestQueueContractLeaseExpiry pins the lease-timeout contract on both
// backends: a dequeued task that is never acknowledged is redelivered —
// exactly once — to another dequeuer after the TTL, with Attempt+1, and the
// original holder's late Ack is an idempotent no-op that cannot
// double-complete the stolen task.
func TestQueueContractLeaseExpiry(t *testing.T) {
	for name, mk := range queueBackends(t) {
		t.Run(name, func(t *testing.T) {
			q := mk(t)
			q.(interface{ SetLeaseTTL(time.Duration) }).SetLeaseTTL(30 * time.Millisecond)
			if err := q.Enqueue(task(0)); err != nil {
				t.Fatal(err)
			}
			// Dequeuer A takes the task and dies without acking.
			first, err := q.Dequeue(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if q.InFlight() != 1 {
				t.Fatalf("inflight = %d, want 1", q.InFlight())
			}
			// Dequeuer B blocks; the expiry timer, not an enqueue, must wake
			// it with the reclaimed task.
			redelivered, err := q.Dequeue(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if redelivered.ID != first.ID {
				t.Fatalf("redelivered ID %q, want %q", redelivered.ID, first.ID)
			}
			if redelivered.Attempt != first.Attempt+1 {
				t.Fatalf("redelivered attempt = %d, want %d", redelivered.Attempt, first.Attempt+1)
			}
			if err := q.Ack(redelivered.ID); err != nil {
				t.Fatalf("new holder's ack: %v", err)
			}
			// The original holder's lease is gone; its late ack and nack
			// must be no-ops — in particular the nack must NOT resurrect
			// the task the new holder already completed.
			if err := q.Ack(first.ID); err != nil {
				t.Fatalf("late ack after expiry: %v, want idempotent nil", err)
			}
			if err := q.Nack(first.ID); err != nil {
				t.Fatalf("late nack after expiry: %v, want idempotent nil", err)
			}
			// Exactly once: nothing left to deliver.
			if q.Depth() != 0 || q.InFlight() != 0 {
				t.Fatalf("leftovers: depth=%d inflight=%d", q.Depth(), q.InFlight())
			}
			ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
			defer cancel()
			if _, err := q.Dequeue(ctx); !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("expired task delivered a second time: %v", err)
			}
		})
	}
}

// TestQueueContractExpiredAckCannotComplete pins the stolen-task half of the
// idempotency contract: once a lease has expired, the original holder's Ack
// arrives too late to complete the task — it is a no-op, and the task is
// still redelivered to the next dequeuer with a bumped attempt.
func TestQueueContractExpiredAckCannotComplete(t *testing.T) {
	for name, mk := range queueBackends(t) {
		t.Run(name, func(t *testing.T) {
			q := mk(t)
			q.(interface{ SetLeaseTTL(time.Duration) }).SetLeaseTTL(20 * time.Millisecond)
			if err := q.Enqueue(task(0)); err != nil {
				t.Fatal(err)
			}
			first, err := q.Dequeue(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			time.Sleep(40 * time.Millisecond) // lease expires, nothing reclaims yet
			if err := q.Ack(first.ID); err != nil {
				t.Fatalf("expired ack: %v, want idempotent nil", err)
			}
			// The ack must not have consumed the task: it comes back.
			redelivered, err := q.Dequeue(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if redelivered.ID != first.ID || redelivered.Attempt != first.Attempt+1 {
				t.Fatalf("redelivered = %+v, want ID %q attempt %d", redelivered, first.ID, first.Attempt+1)
			}
			if err := q.Ack(redelivered.ID); err != nil {
				t.Fatalf("new holder's ack: %v", err)
			}
		})
	}
}

// TestQueueContractConcurrentLeaseStealers races two dequeuers for one
// expired lease on both backends: exactly one must win the reclaimed task,
// the other must still be empty-handed at its deadline. Runs under -race via
// the workflow package's slot in `make race`.
func TestQueueContractConcurrentLeaseStealers(t *testing.T) {
	for name, mk := range queueBackends(t) {
		t.Run(name, func(t *testing.T) {
			q := mk(t)
			q.(interface{ SetLeaseTTL(time.Duration) }).SetLeaseTTL(100 * time.Millisecond)
			if err := q.Enqueue(task(0)); err != nil {
				t.Fatal(err)
			}
			// The doomed holder takes the lease and never acks.
			first, err := q.Dequeue(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			wins := make(chan Task, 2)
			losses := make(chan error, 2)
			for i := 0; i < 2; i++ {
				go func() {
					ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
					defer cancel()
					tk, err := q.Dequeue(ctx)
					if err != nil {
						losses <- err
						return
					}
					// Ack inside the goroutine: the stolen lease carries the
					// TTL too, and it must not expire into the loser's hands
					// while the test inspects the winner.
					if err := q.Ack(tk.ID); err != nil {
						t.Errorf("winner's ack: %v", err)
					}
					wins <- tk
				}()
			}
			var stolen Task
			select {
			case stolen = <-wins:
			case <-time.After(2 * time.Second):
				t.Fatal("no stealer won the expired lease")
			}
			if stolen.ID != first.ID || stolen.Attempt != first.Attempt+1 {
				t.Fatalf("stolen = %+v, want ID %q attempt %d", stolen, first.ID, first.Attempt+1)
			}
			select {
			case dup := <-wins:
				t.Fatalf("both stealers won: second got %+v", dup)
			case err := <-losses:
				if !errors.Is(err, context.DeadlineExceeded) {
					t.Fatalf("loser error = %v, want deadline exceeded", err)
				}
			case <-time.After(2 * time.Second):
				t.Fatal("losing stealer neither timed out nor returned")
			}
			if q.Depth() != 0 || q.InFlight() != 0 {
				t.Fatalf("leftovers: depth=%d inflight=%d", q.Depth(), q.InFlight())
			}
		})
	}
}

// TestQueueLeaseTTLZeroNeverExpires pins the default: without SetLeaseTTL a
// lease outlives any wait, so a slow worker is never double-delivered.
func TestQueueLeaseTTLZeroNeverExpires(t *testing.T) {
	for name, mk := range queueBackends(t) {
		t.Run(name, func(t *testing.T) {
			q := mk(t)
			q.Enqueue(task(0))
			first, err := q.Dequeue(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Millisecond)
			defer cancel()
			if _, err := q.Dequeue(ctx); !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("unexpired lease redelivered: %v", err)
			}
			if err := q.Ack(first.ID); err != nil {
				t.Fatalf("slow ack rejected: %v", err)
			}
		})
	}
}

// TestStorageQueueRecoversAcrossReopen is storage-only: a crashed process's
// ready AND leased tasks must all come back ready on reopen.
func TestStorageQueueRecoversAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	db, err := storage.Open(dir, storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	q, err := NewStorageQueue(db, "crash")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := q.Enqueue(task(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Lease two (simulating workers mid-task at crash time), ack one.
	t0, _ := q.Dequeue(context.Background())
	t1, _ := q.Dequeue(context.Background())
	if err := q.Ack(t0.ID); err != nil {
		t.Fatal(err)
	}
	_ = t1 // leased, never acked — the "crash" strands it
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := storage.Open(dir, storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	q2, err := NewStorageQueue(db2, "crash")
	if err != nil {
		t.Fatal(err)
	}
	if d := q2.Depth(); d != 3 {
		t.Fatalf("recovered depth = %d, want 3 (acked task must stay gone)", d)
	}
	seen := map[string]bool{}
	for i := 0; i < 3; i++ {
		tk, err := q2.Dequeue(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		seen[tk.ID] = true
	}
	if seen[t0.ID] {
		t.Fatal("acked task resurrected after reopen")
	}
	if !seen[t1.ID] {
		t.Fatal("stranded lease not redelivered after reopen")
	}
	// New tail ordinals must not collide with recovered rows.
	if err := q2.Enqueue(Task{ID: TaskID("run-q", "P", 9), RunID: "run-q", Activity: "P", Element: 9}); err != nil {
		t.Fatal(err)
	}
	ids := map[string]int{}
	for i := 0; i < 1; i++ {
		tk, err := q2.Dequeue(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		ids[tk.ID]++
	}
	for id, n := range ids {
		if n != 1 {
			t.Fatalf("task %s delivered %d times", id, n)
		}
	}
}

func TestQueueContractConcurrentWorkers(t *testing.T) {
	for name, mk := range queueBackends(t) {
		t.Run(name, func(t *testing.T) {
			q := mk(t)
			const n = 64
			for i := 0; i < n; i++ {
				if err := q.Enqueue(task(i)); err != nil {
					t.Fatal(err)
				}
			}
			got := make(chan int, n)
			for w := 0; w < 8; w++ {
				go func() {
					for {
						tk, err := q.Dequeue(context.Background())
						if err != nil {
							return
						}
						if err := q.Ack(tk.ID); err != nil {
							t.Errorf("ack: %v", err)
						}
						got <- tk.Element
					}
				}()
			}
			seen := map[int]bool{}
			for i := 0; i < n; i++ {
				select {
				case e := <-got:
					if seen[e] {
						t.Fatalf("element %d delivered twice", e)
					}
					seen[e] = true
				case <-time.After(5 * time.Second):
					t.Fatalf("stalled after %d deliveries", i)
				}
			}
			q.Close()
			if q.Depth() != 0 || q.InFlight() != 0 {
				t.Fatalf("leftovers: depth=%d inflight=%d", q.Depth(), q.InFlight())
			}
		})
	}
}
