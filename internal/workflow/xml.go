package workflow

import (
	"encoding/xml"
	"fmt"
	"strings"
	"time"
)

// XML serialization of workflow definitions, shaped after Taverna's t2flow
// files: processors carry <annotations> with <annotationAssertion> entries
// whose text uses the "Q(dimension): value" syntax shown in the paper's
// Listing 1.

type xmlWorkflow struct {
	XMLName     xml.Name        `xml:"workflow"`
	ID          string          `xml:"id,attr"`
	Name        string          `xml:"name,attr"`
	Version     int             `xml:"version,attr"`
	Description string          `xml:"description,omitempty"`
	Inputs      []xmlPort       `xml:"inputPorts>port"`
	Outputs     []xmlPort       `xml:"outputPorts>port"`
	Processors  []xmlProcessor  `xml:"processors>processor"`
	Links       []xmlLink       `xml:"datalinks>datalink"`
	Annotations []xmlAnnotation `xml:"annotations>annotationAssertion"`
}

type xmlPort struct {
	Name  string `xml:"name,attr"`
	Depth int    `xml:"depth,attr"`
}

type xmlProcessor struct {
	Name        string          `xml:"name"`
	Service     string          `xml:"service"`
	Retries     int             `xml:"retries,omitempty"`
	RetryBaseMS int64           `xml:"retryBaseMs,omitempty"`
	RetryCapMS  int64           `xml:"retryCapMs,omitempty"`
	Inputs      []xmlPort       `xml:"inputPorts>port"`
	Outputs     []xmlPort       `xml:"outputPorts>port"`
	Config      []xmlConfig     `xml:"config>entry,omitempty"`
	Annotations []xmlAnnotation `xml:"annotations>annotationAssertion"`
}

type xmlConfig struct {
	Key   string `xml:"key,attr"`
	Value string `xml:",chardata"`
}

type xmlAnnotation struct {
	Text   string `xml:"text"`
	Date   string `xml:"date"`
	Author string `xml:"creator,omitempty"`
}

type xmlLink struct {
	SourceProc string `xml:"source>processor"`
	SourcePort string `xml:"source>port"`
	TargetProc string `xml:"sink>processor"`
	TargetPort string `xml:"sink>port"`
}

const annotationDateLayout = "2006-01-02 15:04:05.000 MST"

func annToXML(a Annotation) xmlAnnotation {
	return xmlAnnotation{
		Text:   a.Key + ": " + a.Value + ";",
		Date:   a.Date.UTC().Format(annotationDateLayout),
		Author: a.Author,
	}
}

func annFromXML(x xmlAnnotation) (Annotation, error) {
	text := strings.TrimSuffix(strings.TrimSpace(x.Text), ";")
	key, value, found := strings.Cut(text, ":")
	if !found {
		return Annotation{}, fmt.Errorf("workflow: annotation text %q has no key", x.Text)
	}
	a := Annotation{Key: strings.TrimSpace(key), Value: strings.TrimSpace(value), Author: x.Author}
	if x.Date != "" {
		t, err := time.Parse(annotationDateLayout, x.Date)
		if err != nil {
			return Annotation{}, fmt.Errorf("workflow: annotation date %q: %w", x.Date, err)
		}
		a.Date = t
	}
	return a, nil
}

func portsToXML(ports []Port) []xmlPort {
	out := make([]xmlPort, len(ports))
	for i, p := range ports {
		out[i] = xmlPort(p)
	}
	return out
}

func portsFromXML(ports []xmlPort) []Port {
	out := make([]Port, len(ports))
	for i, p := range ports {
		out[i] = Port(p)
	}
	return out
}

// MarshalXML serializes a definition to its t2flow-like XML form.
func MarshalXML(d *Definition) ([]byte, error) {
	x := xmlWorkflow{
		ID:          d.ID,
		Name:        d.Name,
		Version:     d.Version,
		Description: d.Description,
		Inputs:      portsToXML(d.Inputs),
		Outputs:     portsToXML(d.Outputs),
	}
	for _, a := range d.Annotations {
		x.Annotations = append(x.Annotations, annToXML(a))
	}
	for _, p := range d.Processors {
		xp := xmlProcessor{
			Name:        p.Name,
			Service:     p.Service,
			Retries:     p.Retries,
			RetryBaseMS: p.RetryBase.Milliseconds(),
			RetryCapMS:  p.RetryCap.Milliseconds(),
			Inputs:      portsToXML(p.Inputs),
			Outputs:     portsToXML(p.Outputs),
		}
		for k, v := range p.Config {
			xp.Config = append(xp.Config, xmlConfig{Key: k, Value: v})
		}
		// Deterministic config order.
		for i := 0; i < len(xp.Config); i++ {
			for j := i + 1; j < len(xp.Config); j++ {
				if xp.Config[j].Key < xp.Config[i].Key {
					xp.Config[i], xp.Config[j] = xp.Config[j], xp.Config[i]
				}
			}
		}
		for _, a := range p.Annotations {
			xp.Annotations = append(xp.Annotations, annToXML(a))
		}
		x.Processors = append(x.Processors, xp)
	}
	for _, l := range d.Links {
		x.Links = append(x.Links, xmlLink{
			SourceProc: l.Source.Processor, SourcePort: l.Source.Port,
			TargetProc: l.Target.Processor, TargetPort: l.Target.Port,
		})
	}
	blob, err := xml.MarshalIndent(x, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("workflow: marshal: %w", err)
	}
	return append([]byte(xml.Header), blob...), nil
}

// UnmarshalXML parses a definition from its XML form.
func UnmarshalXML(blob []byte) (*Definition, error) {
	var x xmlWorkflow
	if err := xml.Unmarshal(blob, &x); err != nil {
		return nil, fmt.Errorf("workflow: unmarshal: %w", err)
	}
	d := &Definition{
		ID:          x.ID,
		Name:        x.Name,
		Version:     x.Version,
		Description: x.Description,
		Inputs:      portsFromXML(x.Inputs),
		Outputs:     portsFromXML(x.Outputs),
	}
	for _, xa := range x.Annotations {
		a, err := annFromXML(xa)
		if err != nil {
			return nil, err
		}
		d.Annotations = append(d.Annotations, a)
	}
	for _, xp := range x.Processors {
		p := &Processor{
			Name:      xp.Name,
			Service:   xp.Service,
			Retries:   xp.Retries,
			RetryBase: time.Duration(xp.RetryBaseMS) * time.Millisecond,
			RetryCap:  time.Duration(xp.RetryCapMS) * time.Millisecond,
			Inputs:    portsFromXML(xp.Inputs),
			Outputs:   portsFromXML(xp.Outputs),
		}
		if len(xp.Config) > 0 {
			p.Config = make(map[string]string, len(xp.Config))
			for _, c := range xp.Config {
				p.Config[c.Key] = c.Value
			}
		}
		for _, xa := range xp.Annotations {
			a, err := annFromXML(xa)
			if err != nil {
				return nil, err
			}
			p.Annotations = append(p.Annotations, a)
		}
		d.Processors = append(d.Processors, p)
	}
	for _, xl := range x.Links {
		d.Links = append(d.Links, Link{
			Source: Endpoint{Processor: xl.SourceProc, Port: xl.SourcePort},
			Target: Endpoint{Processor: xl.TargetProc, Port: xl.TargetPort},
		})
	}
	return d, nil
}
