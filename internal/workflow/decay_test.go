package workflow

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

func freshDetector() (*DecayDetector, *Registry) {
	reg := upperReg()
	return &DecayDetector{Registry: reg}, reg
}

func decayDef() *Definition {
	d := linearDef()
	d.Processors[0].Service = "upper"
	d.Processors[1].Service = "exclaim"
	return d
}

func TestDecayCleanWorkflow(t *testing.T) {
	det, _ := freshDetector()
	if findings := det.Check(decayDef()); len(findings) != 0 {
		t.Fatalf("healthy workflow flagged: %+v", findings)
	}
	if err := det.MustBeFresh(decayDef()); err != nil {
		t.Fatalf("MustBeFresh: %v", err)
	}
}

func TestDecayInvalidDefinition(t *testing.T) {
	det, _ := freshDetector()
	d := decayDef()
	d.Links = d.Links[1:] // unconnected input
	findings := det.Check(d)
	if len(findings) != 1 || findings[0].Kind != DecayInvalid {
		t.Fatalf("findings = %+v", findings)
	}
	if err := det.MustBeFresh(d); !errors.Is(err, ErrDecayed) {
		t.Fatalf("MustBeFresh: %v", err)
	}
}

func TestDecayMissingService(t *testing.T) {
	det, reg := freshDetector()
	_ = reg
	d := decayDef()
	d.Processors[1].Service = "retired.service"
	findings := det.Check(d)
	if len(findings) != 1 || findings[0].Kind != DecayMissingService || findings[0].Processor != "B" {
		t.Fatalf("findings = %+v", findings)
	}
}

func TestDecayUnhealthyService(t *testing.T) {
	det, _ := freshDetector()
	det.Probe = func(p *Processor) error {
		if p.Name == "A" {
			return errors.New("connection refused")
		}
		return nil
	}
	findings := det.Check(decayDef())
	if len(findings) != 1 || findings[0].Kind != DecayUnhealthyService || findings[0].Processor != "A" {
		t.Fatalf("findings = %+v", findings)
	}
	if !strings.Contains(findings[0].Detail, "connection refused") {
		t.Fatalf("detail = %q", findings[0].Detail)
	}
}

func TestDecayStaleAnnotations(t *testing.T) {
	det, _ := freshDetector()
	det.MaxAnnotationAge = 365 * 24 * time.Hour
	now := time.Date(2015, 6, 1, 0, 0, 0, 0, time.UTC)
	det.Now = func() time.Time { return now }
	d := decayDef()
	// One fresh, one stale quality annotation, one non-quality annotation
	// (ignored even if old).
	d.AnnotateProcessor("A", QualityKey("availability"), "0.9", "expert", now.AddDate(-2, 0, 0))
	d.AnnotateProcessor("A", QualityKey("reputation"), "1", "expert", now.AddDate(0, -1, 0))
	d.AnnotateProcessor("B", "author", "renato", "renato", now.AddDate(-10, 0, 0))
	findings := det.Check(d)
	if len(findings) != 1 || findings[0].Kind != DecayStaleAnnotation || findings[0].Processor != "A" {
		t.Fatalf("findings = %+v", findings)
	}
	if !strings.Contains(findings[0].Detail, "Q(availability)") {
		t.Fatalf("detail = %q", findings[0].Detail)
	}
}

func TestDecayFindingsOrdered(t *testing.T) {
	det, _ := freshDetector()
	det.Probe = func(p *Processor) error { return errors.New("down") }
	d := decayDef()
	d.Processors[1].Service = "gone"
	findings := det.Check(d)
	// Missing-service for B sorts before unhealthy for A? Kinds: missing(1) < unhealthy(2).
	if len(findings) != 2 {
		t.Fatalf("findings = %+v", findings)
	}
	if findings[0].Kind != DecayMissingService || findings[1].Kind != DecayUnhealthyService {
		t.Fatalf("order = %v,%v", findings[0].Kind, findings[1].Kind)
	}
}

func TestGoldenRunDetectsDrift(t *testing.T) {
	det, reg := freshDetector()
	d := decayDef()
	inputs := map[string]Data{"in": Scalar("hello")}
	golden := map[string]Data{"out": Scalar("HELLO!")}
	if findings := det.GoldenRun(context.Background(), d, inputs, golden); len(findings) != 0 {
		t.Fatalf("clean golden run flagged: %+v", findings)
	}
	// The upstream service changes behaviour: drift.
	reg.Register("upper", func(_ context.Context, c Call) (map[string]Data, error) {
		return map[string]Data{"y": Scalar("changed:" + c.Input("x").String())}, nil
	})
	findings := det.GoldenRun(context.Background(), d, inputs, golden)
	if len(findings) != 1 || findings[0].Kind != DecayOutputDrift {
		t.Fatalf("drift findings = %+v", findings)
	}
	// The service dies: execution failure.
	reg.Register("upper", func(_ context.Context, c Call) (map[string]Data, error) {
		return nil, errors.New("endpoint retired")
	})
	findings = det.GoldenRun(context.Background(), d, inputs, golden)
	if len(findings) != 1 || findings[0].Kind != DecayExecutionFailure {
		t.Fatalf("failure findings = %+v", findings)
	}
	// Golden port never produced.
	reg2 := upperReg()
	det2 := &DecayDetector{Registry: reg2}
	findings = det2.GoldenRun(context.Background(), d, inputs, map[string]Data{"nonexistent": Scalar("x")})
	if len(findings) != 1 || findings[0].Kind != DecayOutputDrift ||
		!strings.Contains(findings[0].Detail, "missing from run") {
		t.Fatalf("missing-port findings = %+v", findings)
	}
	// No registry at all.
	det3 := &DecayDetector{}
	if findings := det3.GoldenRun(context.Background(), d, inputs, golden); len(findings) != 1 ||
		findings[0].Kind != DecayExecutionFailure {
		t.Fatalf("no-registry findings = %+v", findings)
	}
}

func TestDecayKindStrings(t *testing.T) {
	for _, k := range []DecayKind{DecayInvalid, DecayMissingService, DecayUnhealthyService,
		DecayStaleAnnotation, DecayOutputDrift, DecayExecutionFailure} {
		if strings.HasPrefix(k.String(), "decay(") {
			t.Fatalf("kind %d unnamed", k)
		}
	}
}
