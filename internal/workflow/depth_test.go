package workflow

import (
	"context"
	"strings"
	"testing"
)

type ctxType = context.Context

func ctxBG() context.Context { return context.Background() }

// detectionShape mirrors the case-study workflow: list input, scalar
// resolver (iterates), list-consuming summarizer.
func detectionShape() *Definition {
	return &Definition{
		ID: "wf-shape", Name: "shape",
		Inputs:  []Port{{Name: "names", Depth: 1}},
		Outputs: []Port{{Name: "summary", Depth: 0}},
		Processors: []*Processor{
			{Name: "Resolve", Service: "svc",
				Inputs:  []Port{{Name: "name", Depth: 0}},
				Outputs: []Port{{Name: "result", Depth: 0}}},
			{Name: "Summarize", Service: "svc",
				Inputs:  []Port{{Name: "results", Depth: 1}},
				Outputs: []Port{{Name: "summary", Depth: 0}}},
		},
		Links: []Link{
			{Source: Endpoint{Port: "names"}, Target: Endpoint{Processor: "Resolve", Port: "name"}},
			{Source: Endpoint{Processor: "Resolve", Port: "result"}, Target: Endpoint{Processor: "Summarize", Port: "results"}},
			{Source: Endpoint{Processor: "Summarize", Port: "summary"}, Target: Endpoint{Port: "summary"}},
		},
	}
}

func TestAnalyzeDepthsDetectionShape(t *testing.T) {
	a, err := AnalyzeDepths(detectionShape())
	if err != nil {
		t.Fatal(err)
	}
	if a.IterationDelta["Resolve"] != 1 {
		t.Fatalf("Resolve delta = %d, want 1 (iterates)", a.IterationDelta["Resolve"])
	}
	if a.IterationDelta["Summarize"] != 0 {
		t.Fatalf("Summarize delta = %d, want 0 (consumes the list)", a.IterationDelta["Summarize"])
	}
	if a.OutputDepth["summary"] != 0 {
		t.Fatalf("output depth = %d", a.OutputDepth["summary"])
	}
	if len(a.Warnings) != 0 {
		t.Fatalf("warnings = %v", a.Warnings)
	}
}

func TestAnalyzeDepthsWarnsOnOutputMismatch(t *testing.T) {
	d := linearDef() // scalar pipeline
	d.Inputs[0].Depth = 1
	// Output "out" declared depth 0 but A and B iterate, producing depth 1.
	a, err := AnalyzeDepths(d)
	if err != nil {
		t.Fatal(err)
	}
	if a.IterationDelta["A"] != 1 || a.IterationDelta["B"] != 1 {
		t.Fatalf("deltas = %v", a.IterationDelta)
	}
	if a.OutputDepth["out"] != 1 {
		t.Fatalf("output depth = %d", a.OutputDepth["out"])
	}
	if len(a.Warnings) != 1 || !strings.Contains(a.Warnings[0], `output "out"`) {
		t.Fatalf("warnings = %v", a.Warnings)
	}
}

func TestAnalyzeDepthsRejectsDeepGap(t *testing.T) {
	d := detectionShape()
	d.Inputs[0].Depth = 2 // list of lists into a scalar port: needs 2 levels
	_, err := AnalyzeDepths(d)
	if err == nil || !strings.Contains(err.Error(), "engine supports 1") {
		t.Fatalf("deep gap: %v", err)
	}
}

func TestAnalyzeDepthsRejectsTooShallow(t *testing.T) {
	d := detectionShape()
	d.Inputs[0].Depth = 0 // scalar into Summarize's list port via Resolve
	// Resolve: input declared 0, actual 0 → delta 0, result depth 0.
	// Summarize: results declared 1, actual 0 → too shallow.
	_, err := AnalyzeDepths(d)
	if err == nil || !strings.Contains(err.Error(), "too shallow") {
		t.Fatalf("shallow gap: %v", err)
	}
}

func TestAnalyzeDepthsMatchesEngineBehaviour(t *testing.T) {
	// The analysis must agree with what the engine actually does: predicted
	// iteration counts equal the run's invocation counts, and the predicted
	// output depth equals the produced datum's depth.
	d := detectionShape()
	a, err := AnalyzeDepths(d)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	reg.Register("svc", func(_ ctxType, c Call) (map[string]Data, error) {
		out := map[string]Data{}
		// Echo a scalar on every declared output port.
		for _, port := range []string{"result", "summary"} {
			out[port] = Scalar("x")
		}
		return out, nil
	})
	res, err := NewEngine(reg).Run(ctxBG(), d, map[string]Data{
		"names": List(Scalar("a"), Scalar("b"), Scalar("c")),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Predicted: Resolve iterates (3 invocations), Summarize once.
	if res.Invocations["Resolve"] != 3 || res.Invocations["Summarize"] != 1 {
		t.Fatalf("invocations = %v (analysis deltas %v)", res.Invocations, a.IterationDelta)
	}
	if got := res.Outputs["summary"].Depth(); got != a.OutputDepth["summary"] {
		t.Fatalf("output depth %d, analysis predicted %d", got, a.OutputDepth["summary"])
	}
}
