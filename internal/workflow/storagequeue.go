package workflow

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/storage"
)

// StorageQueue is the durable TaskQueue backend: tasks live in a storage
// table, so a queue reopened after a crash redelivers every task that was
// ready or leased when the process died (leases are process-local and reset
// to ready on open). Blocking dequeues coordinate in-process through the
// same broadcast-channel scheme as MemoryQueue; durability comes from the
// table, not the channel.
type StorageQueue struct {
	db     *storage.DB
	table  string
	schema *storage.Schema

	mu       sync.Mutex
	seq      int64 // next tail key ordinal
	closed   bool
	leased   map[string]storageLease // task ID -> lease
	leaseTTL time.Duration           // 0 = leases never expire
	wake     chan struct{}

	// fenceName/fenceToken, when set, route every queue write through
	// storage.ApplyFenced: a queue held by an orchestrator whose run lease
	// was stolen stops being able to mutate shared state mid-operation.
	fenceName  string
	fenceToken int64
}

// storageLease is one outstanding delivery; a zero expires never times out.
type storageLease struct {
	key     string // row key of the leased task
	expires time.Time
}

// storageQueueSchema builds the schema for one named queue table.
func storageQueueSchema(table string) *storage.Schema {
	return storage.MustSchema(table,
		storage.Column{Name: "key", Kind: storage.KindString},
		storage.Column{Name: "id", Kind: storage.KindString},
		storage.Column{Name: "run_id", Kind: storage.KindString},
		storage.Column{Name: "activity", Kind: storage.KindString},
		storage.Column{Name: "element", Kind: storage.KindInt},
		storage.Column{Name: "attempt", Kind: storage.KindInt},
		storage.Column{Name: "enqueued_at", Kind: storage.KindTime},
	)
}

// NewStorageQueue opens (or creates) the queue table "wfq_<name>" in db and
// recovers any tasks a previous process left behind: rows are FIFO-ordered
// by their zero-padded key, and all of them — leases do not survive the
// process — come back ready.
func NewStorageQueue(db *storage.DB, name string) (*StorageQueue, error) {
	table := "wfq_" + name
	schema := storageQueueSchema(table)
	if db.Table(table) == nil {
		if err := db.CreateTable(schema); err != nil {
			return nil, fmt.Errorf("workflow: create queue table %s: %w", table, err)
		}
	}
	q := &StorageQueue{
		db:     db,
		table:  table,
		schema: schema,
		leased: make(map[string]storageLease),
		wake:   make(chan struct{}),
	}
	// Recover the tail ordinal past every surviving row.
	tbl := db.Table(table)
	tbl.Scan(func(r storage.Row) bool {
		var ord int64
		fmt.Sscanf(r.Get(schema, "key").Str(), "%012d", &ord)
		if ord >= q.seq {
			q.seq = ord + 1
		}
		return true
	})
	return q, nil
}

func (q *StorageQueue) broadcastLocked() {
	close(q.wake)
	q.wake = make(chan struct{})
}

// SetFence makes every subsequent queue write carry the given fencing token
// (storage.ApplyFenced against name). Once the token is stale — the run's
// lease was stolen and the fence advanced — every Enqueue/Ack/Nack/reclaim
// from this process fails with storage.ErrStaleFence instead of interleaving
// with the new owner's queue. An empty name clears the fence.
func (q *StorageQueue) SetFence(name string, token int64) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.fenceName, q.fenceToken = name, token
}

// applyLocked routes a queue mutation through the fence when one is set.
// Callers hold q.mu.
func (q *StorageQueue) applyLocked(ops ...storage.Op) error {
	if q.fenceName != "" {
		return q.db.ApplyFenced(q.fenceName, q.fenceToken, ops...)
	}
	return q.db.Apply(ops...)
}

// SetLeaseTTL bounds how long a dequeued task may stay unacknowledged: a
// lease older than ttl is reclaimed by the next Dequeue and the task moves
// back to the tail with Attempt+1 (the same row rewrite a Nack performs) —
// the original holder's late Ack is then an idempotent no-op. Zero (the
// default) restores leases that never expire. Only leases taken after the
// call carry the new TTL.
func (q *StorageQueue) SetLeaseTTL(ttl time.Duration) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.leaseTTL = ttl
}

// reclaimLocked moves expired leases back to the tail with Attempt+1.
// Callers hold q.mu. Reports whether anything was reclaimed.
func (q *StorageQueue) reclaimLocked(now time.Time) (bool, error) {
	reclaimed := false
	for id, l := range q.leased {
		if l.expires.IsZero() || now.Before(l.expires) {
			continue
		}
		row, err := q.db.Table(q.table).Get(storage.S(l.key))
		if err != nil {
			return reclaimed, fmt.Errorf("workflow: reclaim %q: leased row %s: %w", id, l.key, err)
		}
		t := Task{
			ID:         row.Get(q.schema, "id").Str(),
			RunID:      row.Get(q.schema, "run_id").Str(),
			Activity:   row.Get(q.schema, "activity").Str(),
			Element:    int(row.Get(q.schema, "element").Int()),
			Attempt:    int(row.Get(q.schema, "attempt").Int()) + 1,
			EnqueuedAt: now,
		}
		if err := q.applyLocked(storage.DeleteOp(q.table, storage.S(l.key))); err != nil {
			return reclaimed, fmt.Errorf("workflow: reclaim %q: %w", id, err)
		}
		delete(q.leased, id)
		if err := q.insertLocked(t); err != nil {
			return reclaimed, err
		}
		reclaimed = true
	}
	return reclaimed, nil
}

// nextExpiryLocked returns the earliest lease deadline, zero when no lease
// can expire. Callers hold q.mu.
func (q *StorageQueue) nextExpiryLocked() time.Time {
	var min time.Time
	for _, l := range q.leased {
		if l.expires.IsZero() {
			continue
		}
		if min.IsZero() || l.expires.Before(min) {
			min = l.expires
		}
	}
	return min
}

func (q *StorageQueue) rowKey(ord int64) string {
	return fmt.Sprintf("%012d", ord)
}

func (q *StorageQueue) insertLocked(t Task) error {
	key := q.rowKey(q.seq)
	err := q.applyLocked(storage.InsertOp(q.table, storage.Row{
		storage.S(key), storage.S(t.ID), storage.S(t.RunID), storage.S(t.Activity),
		storage.I(int64(t.Element)), storage.I(int64(t.Attempt)), storage.T(t.EnqueuedAt),
	}))
	if err != nil {
		return fmt.Errorf("workflow: enqueue %q: %w", t.ID, err)
	}
	q.seq++
	return nil
}

// Enqueue implements TaskQueue.
func (q *StorageQueue) Enqueue(t Task) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrQueueClosed
	}
	if t.EnqueuedAt.IsZero() {
		t.EnqueuedAt = time.Now()
	}
	if err := q.insertLocked(t); err != nil {
		return err
	}
	q.broadcastLocked()
	return nil
}

// takeLocked pops the FIFO head that is not currently leased by this
// process, or returns ok=false when none is ready.
func (q *StorageQueue) takeLocked() (Task, bool) {
	leasedKeys := make(map[string]bool, len(q.leased))
	for _, l := range q.leased {
		leasedKeys[l.key] = true
	}
	var t Task
	var key string
	found := false
	q.db.Table(q.table).Scan(func(r storage.Row) bool {
		k := r.Get(q.schema, "key").Str()
		if leasedKeys[k] {
			return true
		}
		key = k
		t = Task{
			ID:         r.Get(q.schema, "id").Str(),
			RunID:      r.Get(q.schema, "run_id").Str(),
			Activity:   r.Get(q.schema, "activity").Str(),
			Element:    int(r.Get(q.schema, "element").Int()),
			Attempt:    int(r.Get(q.schema, "attempt").Int()),
			EnqueuedAt: r.Get(q.schema, "enqueued_at").Time(),
		}
		found = true
		return false
	})
	if !found {
		return Task{}, false
	}
	l := storageLease{key: key}
	if q.leaseTTL > 0 {
		l.expires = time.Now().Add(q.leaseTTL)
	}
	q.leased[t.ID] = l
	return t, true
}

// Dequeue implements TaskQueue.
func (q *StorageQueue) Dequeue(ctx context.Context) (Task, error) {
	for {
		q.mu.Lock()
		reclaimed, err := q.reclaimLocked(time.Now())
		if err != nil {
			q.mu.Unlock()
			return Task{}, err
		}
		if reclaimed {
			q.broadcastLocked() // other blocked dequeuers may take the rest
		}
		if t, ok := q.takeLocked(); ok {
			q.mu.Unlock()
			return t, nil
		}
		if q.closed {
			q.mu.Unlock()
			return Task{}, ErrQueueClosed
		}
		wake := q.wake
		expiry := q.nextExpiryLocked()
		q.mu.Unlock()
		var timer *time.Timer
		var timerC <-chan time.Time
		if !expiry.IsZero() {
			timer = time.NewTimer(time.Until(expiry))
			timerC = timer.C
		}
		select {
		case <-ctx.Done():
			if timer != nil {
				timer.Stop()
			}
			return Task{}, ctx.Err()
		case <-wake:
		case <-timerC:
		}
		if timer != nil {
			timer.Stop()
		}
	}
}

// Ack implements TaskQueue. Acking a task this holder no longer leases — or
// holds only an expired lease on — is an idempotent no-op: after expiry the
// task belongs to whoever reclaims it, and deleting the row here would
// double-complete a stolen task under the new holder. Redelivery of already-
// completed work is absorbed by the engine's per-task report dedup.
func (q *StorageQueue) Ack(id string) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	l, ok := q.leased[id]
	if !ok {
		return nil
	}
	if !l.expires.IsZero() && !time.Now().Before(l.expires) {
		return nil // expired: the row is reclaimable, not completable
	}
	if err := q.applyLocked(storage.DeleteOp(q.table, storage.S(l.key))); err != nil {
		return fmt.Errorf("workflow: ack %q: %w", id, err)
	}
	delete(q.leased, id)
	return nil
}

// Nack implements TaskQueue. Like Ack, nacking an unleased or expired task
// is an idempotent no-op — reclaim owns the redelivery of expired leases,
// and rewriting the row here would resurrect a task a new holder may already
// have completed.
func (q *StorageQueue) Nack(id string) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	l, ok := q.leased[id]
	if !ok {
		return nil
	}
	if !l.expires.IsZero() && !time.Now().Before(l.expires) {
		return nil // expired: reclaim owns the redelivery
	}
	key := l.key
	// Re-read the row before moving it to the tail with a bumped attempt.
	row, err := q.db.Table(q.table).Get(storage.S(key))
	if err != nil {
		return fmt.Errorf("workflow: nack %q: leased row %s: %w", id, key, err)
	}
	t := Task{
		ID:         row.Get(q.schema, "id").Str(),
		RunID:      row.Get(q.schema, "run_id").Str(),
		Activity:   row.Get(q.schema, "activity").Str(),
		Element:    int(row.Get(q.schema, "element").Int()),
		Attempt:    int(row.Get(q.schema, "attempt").Int()) + 1,
		EnqueuedAt: time.Now(),
	}
	if err := q.applyLocked(storage.DeleteOp(q.table, storage.S(key))); err != nil {
		return fmt.Errorf("workflow: nack %q: %w", id, err)
	}
	delete(q.leased, id)
	if err := q.insertLocked(t); err != nil {
		return err
	}
	q.broadcastLocked()
	return nil
}

// Depth implements TaskQueue.
func (q *StorageQueue) Depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.db.Table(q.table).Len() - len(q.leased)
}

// InFlight implements TaskQueue.
func (q *StorageQueue) InFlight() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.leased)
}

// Close implements TaskQueue.
func (q *StorageQueue) Close() error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if !q.closed {
		q.closed = true
		q.broadcastLocked()
	}
	return nil
}
