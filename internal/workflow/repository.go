package workflow

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/storage"
)

// Repository is the Workflow Repository of the architecture (Fig. 1): a
// versioned store of workflow definitions backed by the embedded database.
// Publishing never overwrites — each publish creates a new version, so the
// provenance of any past run can always be traced back to the exact
// specification that produced it.
type Repository struct {
	db *storage.DB
	// pub serializes Publish's read-latest-then-insert so concurrent
	// publishers (parallel detection runs) never mint the same version.
	pub sync.Mutex
}

const wfTable = "workflows"

var wfSchema = storage.MustSchema(wfTable,
	storage.Column{Name: "key", Kind: storage.KindString}, // id@version
	storage.Column{Name: "id", Kind: storage.KindString},
	storage.Column{Name: "name", Kind: storage.KindString},
	storage.Column{Name: "version", Kind: storage.KindInt},
	storage.Column{Name: "published_at", Kind: storage.KindTime},
	storage.Column{Name: "xml", Kind: storage.KindBytes},
)

// ErrWorkflowNotFound is returned for unknown workflow IDs or versions.
var ErrWorkflowNotFound = errors.New("workflow: not found in repository")

// NewRepository opens (creating if needed) the workflow repository inside db.
func NewRepository(db *storage.DB) (*Repository, error) {
	if db.Table(wfTable) == nil {
		if err := db.Apply(
			storage.CreateTableOp(wfSchema),
			storage.CreateIndexOp(wfTable, "id"),
		); err != nil {
			return nil, err
		}
	}
	return &Repository{db: db}, nil
}

func wfKey(id string, version int) string { return fmt.Sprintf("%s@%06d", id, version) }

// Publish validates def and stores it as the next version of def.ID,
// returning the assigned version number. def itself is not mutated.
func (r *Repository) Publish(def *Definition) (int, error) {
	if def.ID == "" {
		return 0, fmt.Errorf("workflow: cannot publish a definition without an ID")
	}
	if err := Validate(def); err != nil {
		return 0, err
	}
	r.pub.Lock()
	defer r.pub.Unlock()
	latest, err := r.LatestVersion(def.ID)
	if err != nil && !errors.Is(err, ErrWorkflowNotFound) {
		return 0, err
	}
	version := latest + 1
	cp := def.Clone()
	cp.Version = version
	blob, err := MarshalXML(cp)
	if err != nil {
		return 0, err
	}
	row := storage.Row{
		storage.S(wfKey(def.ID, version)),
		storage.S(def.ID),
		storage.S(def.Name),
		storage.I(int64(version)),
		storage.T(time.Now()),
		storage.Bytes(blob),
	}
	if err := r.db.Insert(wfTable, row); err != nil {
		return 0, err
	}
	return version, nil
}

// Get loads one exact version.
func (r *Repository) Get(id string, version int) (*Definition, error) {
	row, err := r.db.Table(wfTable).Get(storage.S(wfKey(id, version)))
	if err != nil {
		if errors.Is(err, storage.ErrNotFound) {
			return nil, fmt.Errorf("%w: %s v%d", ErrWorkflowNotFound, id, version)
		}
		return nil, err
	}
	return UnmarshalXML(row.Get(wfSchema, "xml").Raw())
}

// Latest loads the newest version of id.
func (r *Repository) Latest(id string) (*Definition, error) {
	v, err := r.LatestVersion(id)
	if err != nil {
		return nil, err
	}
	return r.Get(id, v)
}

// LatestVersion returns the highest published version of id.
func (r *Repository) LatestVersion(id string) (int, error) {
	rows, err := r.db.Table(wfTable).Lookup("id", storage.S(id))
	if err != nil {
		return 0, err
	}
	if len(rows) == 0 {
		return 0, fmt.Errorf("%w: %s", ErrWorkflowNotFound, id)
	}
	max := 0
	for _, row := range rows {
		if v := int(row.Get(wfSchema, "version").Int()); v > max {
			max = v
		}
	}
	return max, nil
}

// VersionInfo summarizes one stored version.
type VersionInfo struct {
	ID          string
	Name        string
	Version     int
	PublishedAt time.Time
}

// Versions lists all versions of id in ascending order.
func (r *Repository) Versions(id string) ([]VersionInfo, error) {
	rows, err := r.db.Table(wfTable).Lookup("id", storage.S(id))
	if err != nil {
		return nil, err
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("%w: %s", ErrWorkflowNotFound, id)
	}
	out := make([]VersionInfo, 0, len(rows))
	for _, row := range rows {
		out = append(out, VersionInfo{
			ID:          row.Get(wfSchema, "id").Str(),
			Name:        row.Get(wfSchema, "name").Str(),
			Version:     int(row.Get(wfSchema, "version").Int()),
			PublishedAt: row.Get(wfSchema, "published_at").Time(),
		})
	}
	for i := 0; i < len(out); i++ {
		for j := i + 1; j < len(out); j++ {
			if out[j].Version < out[i].Version {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	return out, nil
}

// List returns the latest VersionInfo of every stored workflow, ordered by
// workflow ID.
func (r *Repository) List() ([]VersionInfo, error) {
	latest := map[string]VersionInfo{}
	r.db.Table(wfTable).Scan(func(row storage.Row) bool {
		vi := VersionInfo{
			ID:          row.Get(wfSchema, "id").Str(),
			Name:        row.Get(wfSchema, "name").Str(),
			Version:     int(row.Get(wfSchema, "version").Int()),
			PublishedAt: row.Get(wfSchema, "published_at").Time(),
		}
		if cur, ok := latest[vi.ID]; !ok || vi.Version > cur.Version {
			latest[vi.ID] = vi
		}
		return true
	})
	out := make([]VersionInfo, 0, len(latest))
	for _, vi := range latest {
		out = append(out, vi)
	}
	for i := 0; i < len(out); i++ {
		for j := i + 1; j < len(out); j++ {
			if out[j].ID < out[i].ID {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	return out, nil
}
