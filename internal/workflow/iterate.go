package workflow

import (
	"context"
	"errors"
	"fmt"
	"sync"
)

// This file implements service invocation with implicit iteration — the
// Taverna dot-product semantics the detection workflow leans on: checking
// 1 929 species names is ONE processor whose scalar input port receives a
// depth-1 list, so the engine calls the service once per element.
//
// Two execution strategies share one contract:
//
//   - sequential (Engine.Parallel == 0): the historical element-by-element
//     loop;
//   - parallel (Engine.Parallel ≥ 1): elements are dispatched across a
//     worker pool gated by the engine-wide slot budget.
//
// The contract, which keeps OPM provenance byte-identical between the two:
//
//   1. element i's outputs land at index i of every collected output list;
//   2. the ElementTrace slice is complete and index-ordered;
//   3. the first (lowest-index) element failure cancels the remaining
//      elements and is reported as the sequential engine reports it:
//      "iteration %d: <cause>" with Iterations == index+1.

// invoke runs the service, applying implicit iteration: any input whose
// actual depth exceeds the declared port depth by one drives element-wise
// (dot-product) iteration, with equal lengths required and non-iterated
// inputs broadcast. Outputs of iterated invocations are collected into
// lists, as in Taverna.
func (st *runState) invoke(ctx context.Context, fn ServiceFunc, p *Processor, inputs map[string]Data) (map[string]Data, int, []ElementTrace, error) {
	iterating, n, err := iterationShape(p, inputs)
	if err != nil {
		return nil, 0, nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, 0, nil, err
	}
	if !iterating {
		out, err := st.call(ctx, "invoke:"+p.Name, fn, p, Call{Inputs: inputs, Config: p.Config})
		if err != nil {
			return nil, 1, nil, err
		}
		if err := checkOutputs(p, out); err != nil {
			return nil, 1, nil, err
		}
		return out, 1, nil, nil
	}
	if st.sem == nil {
		return st.iterateSequential(ctx, fn, p, inputs, n)
	}
	return st.iterateParallel(ctx, fn, p, inputs, n)
}

// iterationShape decides whether p's bound inputs drive implicit iteration
// and, if so, over how many elements: any input whose actual depth exceeds
// the declared port depth by one iterates, all iterated inputs must agree on
// length, and anything else is a shape error. Both engines share this, so a
// scheduled activity's planned element count always matches what the legacy
// engine would have executed.
func iterationShape(p *Processor, inputs map[string]Data) (bool, int, error) {
	iterating := false
	n := -1
	for _, port := range p.Inputs {
		d := inputs[port.Name]
		switch d.Depth() {
		case port.Depth:
			// exact match: broadcast if others iterate
		case port.Depth + 1:
			iterating = true
			if n == -1 {
				n = len(d.Items())
			} else if n != len(d.Items()) {
				return false, 0, fmt.Errorf("iteration length mismatch on port %q: %d vs %d", port.Name, len(d.Items()), n)
			}
		default:
			return false, 0, fmt.Errorf("port %q expects depth %d, got depth %d", port.Name, port.Depth, d.Depth())
		}
	}
	return iterating, n, nil
}

// elementSpanName names the span of one implicit-iteration element.
func elementSpanName(p *Processor, i int) string {
	return fmt.Sprintf("element:%s[%d]", p.Name, i)
}

// elementInputs binds the i-th element of every iterated input, broadcasting
// the rest.
func elementInputs(p *Processor, inputs map[string]Data, i int) map[string]Data {
	callIn := make(map[string]Data, len(p.Inputs))
	for _, port := range p.Inputs {
		d := inputs[port.Name]
		if d.Depth() == port.Depth+1 {
			callIn[port.Name] = d.Items()[i]
		} else {
			callIn[port.Name] = d
		}
	}
	return callIn
}

// collectOutputs turns the per-port element slices into list data.
func collectOutputs(collected map[string][]Data) map[string]Data {
	outputs := make(map[string]Data, len(collected))
	for name, items := range collected {
		outputs[name] = List(items...)
	}
	return outputs
}

// iterateSequential is the historical element-by-element loop, used when no
// concurrency budget is configured.
func (st *runState) iterateSequential(ctx context.Context, fn ServiceFunc, p *Processor, inputs map[string]Data, n int) (map[string]Data, int, []ElementTrace, error) {
	collected := map[string][]Data{}
	for _, port := range p.Outputs {
		collected[port.Name] = make([]Data, n)
	}
	elements := make([]ElementTrace, 0, n)
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return nil, i, nil, err
		}
		callIn := elementInputs(p, inputs, i)
		st.engine.metrics.elementsDispatched.Add(1)
		out, err := st.call(ctx, elementSpanName(p, i), fn, p, Call{Inputs: callIn, Config: p.Config})
		if err != nil {
			return nil, i + 1, nil, fmt.Errorf("iteration %d: %w", i, err)
		}
		if err := checkOutputs(p, out); err != nil {
			return nil, i + 1, nil, fmt.Errorf("iteration %d: %w", i, err)
		}
		for _, port := range p.Outputs {
			collected[port.Name][i] = out[port.Name]
		}
		elements = append(elements, ElementTrace{Index: i, Inputs: callIn, Outputs: out})
	}
	return collectOutputs(collected), n, elements, nil
}

// iterateParallel dispatches the n elements across min(n, Engine.Parallel)
// workers. Each element's service call is slot-gated by runState.call, so
// total in-flight invocations — across every processor and iteration of the
// run — never exceed the engine budget. The parent processor goroutine holds
// no slot while it waits here.
//
// Fail-fast: the first failure cancels the element context; workers drain
// the remaining indices without calling the service. Among concurrent
// failures, the lowest index wins so the reported error is the one the
// sequential engine would have hit first. Cancellation fallout (elements
// aborted because a sibling failed) never masks the root cause.
func (st *runState) iterateParallel(ctx context.Context, fn ServiceFunc, p *Processor, inputs map[string]Data, n int) (map[string]Data, int, []ElementTrace, error) {
	collected := map[string][]Data{}
	for _, port := range p.Outputs {
		collected[port.Name] = make([]Data, n)
	}
	elements := make([]ElementTrace, n)

	elemCtx, cancelElems := context.WithCancel(ctx)
	defer cancelElems()

	var (
		failMu    sync.Mutex
		realIdx   = -1 // lowest index with a genuine service/output error
		realErr   error
		cancelIdx = -1 // lowest index aborted by cancellation
		cancelErr error
	)
	fail := func(i int, err error) {
		failMu.Lock()
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			if cancelIdx == -1 || i < cancelIdx {
				cancelIdx, cancelErr = i, err
			}
		} else if realIdx == -1 || i < realIdx {
			realIdx, realErr = i, err
		}
		failMu.Unlock()
		cancelElems()
	}

	indices := make(chan int, n)
	for i := 0; i < n; i++ {
		indices <- i
	}
	close(indices)

	workers := st.engine.Parallel
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range indices {
				if err := elemCtx.Err(); err != nil {
					fail(i, err)
					continue // drain cheaply once cancelled
				}
				callIn := elementInputs(p, inputs, i)
				st.engine.metrics.elementsDispatched.Add(1)
				out, err := st.call(elemCtx, elementSpanName(p, i), fn, p, Call{Inputs: callIn, Config: p.Config})
				if err == nil {
					err = checkOutputs(p, out)
				}
				if err != nil {
					fail(i, err)
					continue
				}
				for _, port := range p.Outputs {
					collected[port.Name][i] = out[port.Name]
				}
				elements[i] = ElementTrace{Index: i, Inputs: callIn, Outputs: out}
			}
		}()
	}
	wg.Wait()

	switch {
	case realIdx >= 0:
		return nil, realIdx + 1, nil, fmt.Errorf("iteration %d: %w", realIdx, realErr)
	case ctx.Err() != nil:
		// The run itself was cancelled: report it bare, like the
		// sequential pre-element check does.
		done := cancelIdx
		if done < 0 {
			done = 0
		}
		return nil, done, nil, ctx.Err()
	case cancelIdx >= 0:
		// A service returned a cancellation error of its own accord.
		return nil, cancelIdx + 1, nil, fmt.Errorf("iteration %d: %w", cancelIdx, cancelErr)
	}
	return collectOutputs(collected), n, elements, nil
}
