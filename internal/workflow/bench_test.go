package workflow

import (
	"context"
	"encoding/json"
	"fmt"
	"testing"

	"repro/internal/storage"
)

// benchTask builds a representative dispatch task.
func benchTask(i int) Task {
	return Task{
		ID:       TaskID("bench-run", "Resolve", i),
		RunID:    "bench-run",
		Activity: "Resolve",
		Element:  i,
	}
}

// BenchmarkQueueDispatch measures one full dispatch cycle — Enqueue, Dequeue,
// Ack — through each TaskQueue backend. This is the per-task overhead the
// worker pool adds on top of the service call itself.
func BenchmarkQueueDispatch(b *testing.B) {
	b.Run("memory", func(b *testing.B) {
		q := NewMemoryQueue()
		defer q.Close()
		benchDispatch(b, q)
	})
	b.Run("storage", func(b *testing.B) {
		db, err := storage.Open(b.TempDir(), storage.Options{Sync: storage.SyncNever})
		if err != nil {
			b.Fatal(err)
		}
		defer db.Close()
		q, err := NewStorageQueue(db, "bench")
		if err != nil {
			b.Fatal(err)
		}
		defer q.Close()
		benchDispatch(b, q)
	})
}

func benchDispatch(b *testing.B, q TaskQueue) {
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := benchTask(i)
		if err := q.Enqueue(t); err != nil {
			b.Fatal(err)
		}
		got, err := q.Dequeue(ctx)
		if err != nil {
			b.Fatal(err)
		}
		if err := q.Ack(got.ID); err != nil {
			b.Fatal(err)
		}
	}
}

// benchHistoryEvent is a representative mid-run event: an iteration element
// completing with a scalar output, the most common event in a detection run.
func benchHistoryEvent(i int) HistoryEvent {
	return HistoryEvent{
		Type:     HistoryIterationElement,
		Activity: "Resolve",
		Service:  "Catalog_of_life",
		Element:  i,
		Outputs:  map[string]Data{"resolved": Scalar(fmt.Sprintf("Hyla faber %d", i))},
	}
}

// BenchmarkHistoryAppend measures the two costs of the history stream: the
// orchestrator's append (stamp sequence/time/run identity, fan out to
// listeners) and the JSON encoding the provenance layer pays to persist each
// event.
func BenchmarkHistoryAppend(b *testing.B) {
	b.Run("stamp-fanout", func(b *testing.B) {
		var last HistoryEvent
		r := &eventRun{
			def:       &Definition{ID: "wf-bench", Name: "Bench"},
			runID:     "bench-run",
			listeners: []HistoryListener{HistoryListenerFunc(func(ev HistoryEvent) { last = ev })},
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r.append(benchHistoryEvent(i))
		}
		if last.Seq != b.N-1 {
			b.Fatalf("listener saw seq %d, want %d", last.Seq, b.N-1)
		}
	})
	b.Run("json-encode", func(b *testing.B) {
		ev := benchHistoryEvent(0)
		ev.Seq, ev.RunID, ev.WorkflowID, ev.WorkflowName = 7, "bench-run", "wf-bench", "Bench"
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := json.Marshal(&ev); err != nil {
				b.Fatal(err)
			}
		}
	})
}
