package opm

import (
	"strings"
	"testing"
)

func TestMarshalDot(t *testing.T) {
	g := caseStudyGraph(t)
	g.InferDerivations()
	dot := MarshalDot(g)
	for _, want := range []string{
		"digraph opm",
		"shape=box",     // process
		"shape=octagon", // agent
		"shape=ellipse", // artifact
		`label="used(input)"`,
		`label="wasControlledBy(operator)"`,
		"style=dashed", // inferred derivation
		"FNJV sound metadata",
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("dot missing %q:\n%s", want, dot)
		}
	}
	// IDs with punctuation are sanitized: no raw colons in identifiers.
	for _, line := range strings.Split(dot, "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "n_") {
			id := strings.FieldsFunc(trimmed, func(r rune) bool { return r == ' ' || r == '[' })[0]
			if strings.ContainsAny(id, ":/.") {
				t.Fatalf("unsanitized dot id %q", id)
			}
		}
	}
}

func TestDotStringEscaping(t *testing.T) {
	if dotString(`a"b`) != `"a\"b"` {
		t.Fatalf("quote escape: %s", dotString(`a"b`))
	}
	if dotID("p:run/1") == dotID("p:run_1") {
		t.Fatal("dotID collisions for distinct IDs")
	}
}
