package opm

import (
	"fmt"
	"strings"
)

// MarshalDot renders the graph in Graphviz DOT form using OPM's customary
// shapes: ellipses for artifacts, rectangles for processes, octagons for
// agents; edges are labeled with their dependency kind and role.
func MarshalDot(g *Graph) string {
	var b strings.Builder
	b.WriteString("digraph opm {\n  rankdir=BT;\n")
	for _, n := range g.Nodes() {
		shape := "ellipse"
		switch n.Kind {
		case KindProcess:
			shape = "box"
		case KindAgent:
			shape = "octagon"
		}
		label := n.Label
		if label == "" {
			label = n.ID
		}
		fmt.Fprintf(&b, "  %s [shape=%s,label=%s];\n", dotID(n.ID), shape, dotString(label))
	}
	for _, e := range g.Edges() {
		label := e.Kind.String()
		if e.Role != "" {
			label += "(" + e.Role + ")"
		}
		style := ""
		if e.Kind == WasDerivedFrom || e.Kind == WasTriggeredBy {
			style = ",style=dashed" // inferred/multi-step edges render dashed
		}
		fmt.Fprintf(&b, "  %s -> %s [label=%s%s];\n", dotID(e.Effect), dotID(e.Cause), dotString(label), style)
	}
	b.WriteString("}\n")
	return b.String()
}

// dotID produces a safe DOT node identifier for an arbitrary node ID.
func dotID(id string) string {
	var b strings.Builder
	b.WriteString("n_")
	for _, r := range id {
		if (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9') {
			b.WriteRune(r)
		} else {
			fmt.Fprintf(&b, "_%02x", r)
		}
	}
	return b.String()
}

func dotString(s string) string {
	return `"` + strings.NewReplacer(`"`, `\"`, "\n", `\n`).Replace(s) + `"`
}
