package opm

import (
	"errors"
	"strings"
	"testing"
	"time"
)

// caseStudyGraph builds the Fig. 3 provenance shape: metadata artifact ->
// detection process (controlled by curator, using the authority list) ->
// summary artifact.
func caseStudyGraph(t *testing.T) *Graph {
	t.Helper()
	g := NewGraph()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(g.Artifact("a:metadata", "FNJV sound metadata", "11898 records"))
	must(g.Artifact("a:checklist", "Catalogue of Life", "species list"))
	must(g.Artifact("a:summary", "updated species names", "134 outdated"))
	must(g.Process("p:detect", "Outdated Species Name Detection"))
	must(g.Agent("ag:curator", "FNJV curator"))
	must(g.AddEdge(Edge{Kind: Used, Effect: "p:detect", Cause: "a:metadata", Role: "input"}))
	must(g.AddEdge(Edge{Kind: Used, Effect: "p:detect", Cause: "a:checklist", Role: "authority"}))
	must(g.AddEdge(Edge{Kind: WasGeneratedBy, Effect: "a:summary", Cause: "p:detect", Role: "output"}))
	must(g.AddEdge(Edge{Kind: WasControlledBy, Effect: "p:detect", Cause: "ag:curator", Role: "operator"}))
	return g
}

func TestGraphBasics(t *testing.T) {
	g := caseStudyGraph(t)
	if g.NodeCount() != 5 || g.EdgeCount() != 4 {
		t.Fatalf("counts = %d nodes %d edges", g.NodeCount(), g.EdgeCount())
	}
	if len(g.NodesOfKind(KindArtifact)) != 3 {
		t.Fatal("artifact count wrong")
	}
	if len(g.EdgesOfKind(Used)) != 2 {
		t.Fatal("used count wrong")
	}
	n, ok := g.Node("a:summary")
	if !ok || n.Label != "updated species names" {
		t.Fatalf("Node = %+v", n)
	}
	if err := g.Annotate("a:summary", "quality.accuracy", "0.93"); err != nil {
		t.Fatal(err)
	}
	n, _ = g.Node("a:summary")
	if n.Annotations["quality.accuracy"] != "0.93" {
		t.Fatal("annotation not stored")
	}
	if err := g.Annotate("missing", "k", "v"); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("Annotate missing: %v", err)
	}
}

func TestGraphNodeValidation(t *testing.T) {
	g := NewGraph()
	if err := g.Artifact("a", "x", ""); err != nil {
		t.Fatal(err)
	}
	if err := g.Artifact("a", "x", ""); !errors.Is(err, ErrDuplicateNode) {
		t.Fatalf("duplicate: %v", err)
	}
	if err := g.AddNode(Node{Kind: KindAgent}); err == nil {
		t.Fatal("empty ID accepted")
	}
}

func TestEdgeTypeConstraints(t *testing.T) {
	g := NewGraph()
	g.Artifact("a1", "", "")
	g.Artifact("a2", "", "")
	g.Process("p1", "")
	g.Process("p2", "")
	g.Agent("ag", "")
	// Wrong endpoint kinds.
	bad := []Edge{
		{Kind: Used, Effect: "a1", Cause: "a2", Role: "r"},           // effect must be process
		{Kind: Used, Effect: "p1", Cause: "p2", Role: "r"},           // cause must be artifact
		{Kind: WasGeneratedBy, Effect: "p1", Cause: "a1", Role: "r"}, // reversed
		{Kind: WasControlledBy, Effect: "a1", Cause: "ag", Role: "r"},
		{Kind: WasTriggeredBy, Effect: "p1", Cause: "a1"},
		{Kind: WasDerivedFrom, Effect: "a1", Cause: "p1"},
	}
	for i, e := range bad {
		if err := g.AddEdge(e); !errors.Is(err, ErrBadEdge) {
			t.Errorf("bad edge %d accepted: %v", i, err)
		}
	}
	// Missing role on role-required kinds.
	if err := g.AddEdge(Edge{Kind: Used, Effect: "p1", Cause: "a1"}); !errors.Is(err, ErrBadEdge) {
		t.Fatalf("role-less used accepted: %v", err)
	}
	// Unknown nodes.
	if err := g.AddEdge(Edge{Kind: Used, Effect: "zz", Cause: "a1", Role: "r"}); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("unknown effect: %v", err)
	}
	if err := g.AddEdge(Edge{Kind: Used, Effect: "p1", Cause: "zz", Role: "r"}); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("unknown cause: %v", err)
	}
	// Duplicates are silently deduplicated.
	if err := g.AddEdge(Edge{Kind: Used, Effect: "p1", Cause: "a1", Role: "r"}); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(Edge{Kind: Used, Effect: "p1", Cause: "a1", Role: "r"}); err != nil {
		t.Fatal(err)
	}
	if got := len(g.EdgesOfKind(Used)); got != 1 {
		t.Fatalf("dedup failed: %d used edges", got)
	}
}

func TestInferTriggers(t *testing.T) {
	g := NewGraph()
	g.Process("p1", "")
	g.Process("p2", "")
	g.Artifact("a", "", "")
	g.AddEdge(Edge{Kind: WasGeneratedBy, Effect: "a", Cause: "p1", Role: "out"})
	g.AddEdge(Edge{Kind: Used, Effect: "p2", Cause: "a", Role: "in"})
	if added := g.InferTriggers(); added != 1 {
		t.Fatalf("InferTriggers added %d", added)
	}
	trigs := g.EdgesOfKind(WasTriggeredBy)
	if len(trigs) != 1 || trigs[0].Effect != "p2" || trigs[0].Cause != "p1" {
		t.Fatalf("triggers = %+v", trigs)
	}
	// Idempotent.
	if added := g.InferTriggers(); added != 0 {
		t.Fatalf("second InferTriggers added %d", added)
	}
}

func TestInferDerivations(t *testing.T) {
	g := caseStudyGraph(t)
	added := g.InferDerivations()
	if added != 2 {
		t.Fatalf("InferDerivations added %d, want 2", added)
	}
	devs := g.EdgesOfKind(WasDerivedFrom)
	causes := map[string]bool{}
	for _, e := range devs {
		if e.Effect != "a:summary" {
			t.Fatalf("unexpected derivation effect %q", e.Effect)
		}
		causes[e.Cause] = true
	}
	if !causes["a:metadata"] || !causes["a:checklist"] {
		t.Fatalf("derivation causes = %v", causes)
	}
}

func TestLineageQueries(t *testing.T) {
	g := caseStudyGraph(t)
	g.InferDerivations()
	anc, err := g.Ancestors("a:summary")
	if err != nil {
		t.Fatal(err)
	}
	wantAnc := []string{"a:checklist", "a:metadata", "ag:curator", "p:detect"}
	if strings.Join(anc, ",") != strings.Join(wantAnc, ",") {
		t.Fatalf("ancestors = %v, want %v", anc, wantAnc)
	}
	desc, err := g.Descendants("a:metadata")
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(desc, ",")
	if !strings.Contains(joined, "a:summary") || !strings.Contains(joined, "p:detect") {
		t.Fatalf("descendants = %v", desc)
	}
	if _, err := g.Ancestors("missing"); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("Ancestors(missing): %v", err)
	}
	if _, err := g.Descendants("missing"); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("Descendants(missing): %v", err)
	}
	path := g.DerivationPath("a:summary", "a:metadata")
	if len(path) != 2 || path[0] != "a:summary" || path[1] != "a:metadata" {
		t.Fatalf("derivation path = %v", path)
	}
	if g.DerivationPath("a:metadata", "a:summary") != nil {
		t.Fatal("reverse derivation path exists")
	}
	if got := g.ProcessesUsing("a:metadata"); len(got) != 1 || got[0] != "p:detect" {
		t.Fatalf("ProcessesUsing = %v", got)
	}
	if gen, ok := g.GeneratorOf("a:summary", ""); !ok || gen != "p:detect" {
		t.Fatalf("GeneratorOf = %q,%v", gen, ok)
	}
	if _, ok := g.GeneratorOf("a:metadata", ""); ok {
		t.Fatal("input artifact has a generator")
	}
	if got := g.ControllersOf("p:detect"); len(got) != 1 || got[0] != "ag:curator" {
		t.Fatalf("ControllersOf = %v", got)
	}
}

func TestMultiStepDerivationChain(t *testing.T) {
	// a3 <- p2 <- a2 <- p1 <- a1: path a3 -> a2 -> a1 after inference.
	g := NewGraph()
	g.Artifact("a1", "", "")
	g.Artifact("a2", "", "")
	g.Artifact("a3", "", "")
	g.Process("p1", "")
	g.Process("p2", "")
	g.AddEdge(Edge{Kind: Used, Effect: "p1", Cause: "a1", Role: "in"})
	g.AddEdge(Edge{Kind: WasGeneratedBy, Effect: "a2", Cause: "p1", Role: "out"})
	g.AddEdge(Edge{Kind: Used, Effect: "p2", Cause: "a2", Role: "in"})
	g.AddEdge(Edge{Kind: WasGeneratedBy, Effect: "a3", Cause: "p2", Role: "out"})
	g.InferDerivations()
	path := g.DerivationPath("a3", "a1")
	if len(path) != 3 || path[0] != "a3" || path[1] != "a2" || path[2] != "a1" {
		t.Fatalf("chain path = %v", path)
	}
}

func TestAccountsAndViews(t *testing.T) {
	g := NewGraph()
	g.Artifact("a", "", "")
	g.Process("p", "")
	g.AddEdge(Edge{Kind: Used, Effect: "p", Cause: "a", Role: "in", Account: "run1"})
	g.AddEdge(Edge{Kind: Used, Effect: "p", Cause: "a", Role: "in", Account: "run2"})
	accounts := g.Accounts()
	if len(accounts) != 2 || accounts[0] != "run1" || accounts[1] != "run2" {
		t.Fatalf("accounts = %v", accounts)
	}
	if v := g.View("run1"); len(v) != 1 || v[0].Account != "run1" {
		t.Fatalf("view = %+v", v)
	}
	if v := g.View("zzz"); len(v) != 0 {
		t.Fatalf("empty view = %+v", v)
	}
}

func TestMerge(t *testing.T) {
	g1 := NewGraph()
	g1.Artifact("a:shared", "input", "data")
	g1.Process("p:run1", "run 1")
	g1.Annotate("a:shared", "origin", "field")
	g1.AddEdge(Edge{Kind: Used, Effect: "p:run1", Cause: "a:shared", Role: "in", Account: "run1"})

	g2 := NewGraph()
	g2.Artifact("a:shared", "input", "data")
	g2.Artifact("a:out2", "output 2", "")
	g2.Process("p:run2", "run 2")
	g2.Annotate("a:shared", "origin", "ignored-duplicate")
	g2.Annotate("a:shared", "extra", "kept")
	g2.AddEdge(Edge{Kind: Used, Effect: "p:run2", Cause: "a:shared", Role: "in", Account: "run2"})
	g2.AddEdge(Edge{Kind: WasGeneratedBy, Effect: "a:out2", Cause: "p:run2", Role: "out", Account: "run2"})

	if err := g1.Merge(g2); err != nil {
		t.Fatal(err)
	}
	if g1.NodeCount() != 4 {
		t.Fatalf("merged nodes = %d", g1.NodeCount())
	}
	if g1.EdgeCount() != 3 {
		t.Fatalf("merged edges = %d", g1.EdgeCount())
	}
	// Annotation merge: first writer wins, gaps filled.
	n, _ := g1.Node("a:shared")
	if n.Annotations["origin"] != "field" || n.Annotations["extra"] != "kept" {
		t.Fatalf("merged annotations = %v", n.Annotations)
	}
	// Shared artifact now used by both runs.
	if got := g1.ProcessesUsing("a:shared"); len(got) != 2 {
		t.Fatalf("users after merge = %v", got)
	}
	// Accounts kept distinct.
	if len(g1.Accounts()) != 2 {
		t.Fatalf("accounts = %v", g1.Accounts())
	}
	// Merging the same graph again is a no-op (dedup).
	if err := g1.Merge(g2); err != nil {
		t.Fatal(err)
	}
	if g1.EdgeCount() != 3 {
		t.Fatalf("re-merge changed edges: %d", g1.EdgeCount())
	}
	// Kind conflicts are rejected.
	g3 := NewGraph()
	g3.Process("a:shared", "impostor")
	if err := g1.Merge(g3); err == nil {
		t.Fatal("kind conflict accepted")
	}
	// Merged graphs of distinct accounts are still legal even if both
	// generate the same artifact.
	gA := NewGraph()
	gA.Artifact("a", "", "")
	gA.Process("p1", "")
	gA.AddEdge(Edge{Kind: WasGeneratedBy, Effect: "a", Cause: "p1", Role: "out", Account: "r1"})
	gB := NewGraph()
	gB.Artifact("a", "", "")
	gB.Process("p2", "")
	gB.AddEdge(Edge{Kind: WasGeneratedBy, Effect: "a", Cause: "p2", Role: "out", Account: "r2"})
	if err := gA.Merge(gB); err != nil {
		t.Fatal(err)
	}
	if probs := gA.CheckLegality(); len(probs) != 0 {
		t.Fatalf("multi-account generation flagged: %v", probs)
	}
}

func TestCheckLegality(t *testing.T) {
	g := NewGraph()
	g.Artifact("a", "", "")
	g.Process("p1", "")
	g.Process("p2", "")
	g.AddEdge(Edge{Kind: WasGeneratedBy, Effect: "a", Cause: "p1", Role: "out"})
	if probs := g.CheckLegality(); len(probs) != 0 {
		t.Fatalf("legal graph flagged: %v", probs)
	}
	// Second generator in the same account: illegal.
	g.AddEdge(Edge{Kind: WasGeneratedBy, Effect: "a", Cause: "p2", Role: "out"})
	if probs := g.CheckLegality(); len(probs) != 1 {
		t.Fatalf("violation not flagged: %v", probs)
	}
	// But two generators in different accounts are fine.
	g2 := NewGraph()
	g2.Artifact("a", "", "")
	g2.Process("p1", "")
	g2.Process("p2", "")
	g2.AddEdge(Edge{Kind: WasGeneratedBy, Effect: "a", Cause: "p1", Role: "out", Account: "acc1"})
	g2.AddEdge(Edge{Kind: WasGeneratedBy, Effect: "a", Cause: "p2", Role: "out", Account: "acc2"})
	if probs := g2.CheckLegality(); len(probs) != 0 {
		t.Fatalf("cross-account generation flagged: %v", probs)
	}
}

func TestXMLRoundTripOPM(t *testing.T) {
	g := caseStudyGraph(t)
	g.Annotate("a:summary", "quality.accuracy", "0.93")
	when := time.Date(2013, 11, 12, 19, 58, 9, 0, time.UTC)
	g.AddEdge(Edge{Kind: WasDerivedFrom, Effect: "a:summary", Cause: "a:metadata", Time: when, Account: "run1"})
	blob, err := MarshalXML(g)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalXML(blob)
	if err != nil {
		t.Fatal(err)
	}
	if got.NodeCount() != g.NodeCount() || got.EdgeCount() != g.EdgeCount() {
		t.Fatalf("round trip: %d/%d nodes, %d/%d edges", got.NodeCount(), g.NodeCount(), got.EdgeCount(), g.EdgeCount())
	}
	n, _ := got.Node("a:summary")
	if n.Annotations["quality.accuracy"] != "0.93" {
		t.Fatal("annotation lost over XML")
	}
	var found bool
	for _, e := range got.EdgesOfKind(WasDerivedFrom) {
		if e.Account == "run1" && e.Time.Equal(when) {
			found = true
		}
	}
	if !found {
		t.Fatal("edge account/time lost over XML")
	}
	if _, err := UnmarshalXML([]byte("<bogus")); err == nil {
		t.Fatal("garbage XML accepted")
	}
}

func TestJSONRoundTripOPM(t *testing.T) {
	g := caseStudyGraph(t)
	g.Annotate("p:detect", "service", "col.resolve")
	blob, err := MarshalJSON(g)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalJSON(blob)
	if err != nil {
		t.Fatal(err)
	}
	if got.NodeCount() != g.NodeCount() || got.EdgeCount() != g.EdgeCount() {
		t.Fatal("JSON round trip lost elements")
	}
	n, _ := got.Node("p:detect")
	if n.Annotations["service"] != "col.resolve" {
		t.Fatal("annotation lost over JSON")
	}
	if _, err := UnmarshalJSON([]byte("{")); err == nil {
		t.Fatal("garbage JSON accepted")
	}
}

func TestKindStrings(t *testing.T) {
	if KindArtifact.String() != "artifact" || KindProcess.String() != "process" || KindAgent.String() != "agent" {
		t.Fatal("node kind strings")
	}
	for _, k := range []EdgeKind{Used, WasGeneratedBy, WasControlledBy, WasTriggeredBy, WasDerivedFrom} {
		if strings.HasPrefix(k.String(), "edge(") {
			t.Fatalf("edge kind %d has no name", k)
		}
	}
	if _, err := edgeKindFromString("nope"); err == nil {
		t.Fatal("unknown edge kind parsed")
	}
}
