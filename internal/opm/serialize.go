package opm

import (
	"encoding/json"
	"encoding/xml"
	"fmt"
	"sort"
	"time"
)

// Serialization of OPM graphs in two interchange forms: an XML dialect
// shaped after the OPM XML schema, and a compact JSON form for embedding in
// reports.

type xmlGraph struct {
	XMLName   xml.Name  `xml:"opmGraph"`
	Artifacts []xmlNode `xml:"artifacts>artifact"`
	Processes []xmlNode `xml:"processes>process"`
	Agents    []xmlNode `xml:"agents>agent"`
	Deps      []xmlEdge `xml:"causalDependencies>dependency"`
}

type xmlNode struct {
	ID          string   `xml:"id,attr"`
	Label       string   `xml:"label,omitempty"`
	Value       string   `xml:"value,omitempty"`
	Annotations []xmlAnn `xml:"annotation,omitempty"`
}

type xmlAnn struct {
	Key   string `xml:"key,attr"`
	Value string `xml:",chardata"`
}

type xmlEdge struct {
	Kind    string `xml:"type,attr"`
	Effect  string `xml:"effect"`
	Cause   string `xml:"cause"`
	Role    string `xml:"role,omitempty"`
	Account string `xml:"account,omitempty"`
	Time    string `xml:"time,omitempty"`
}

func nodeToXML(n *Node) xmlNode {
	x := xmlNode{ID: n.ID, Label: n.Label, Value: n.Value}
	keys := make([]string, 0, len(n.Annotations))
	for k := range n.Annotations {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		x.Annotations = append(x.Annotations, xmlAnn{Key: k, Value: n.Annotations[k]})
	}
	return x
}

// MarshalXML serializes the graph.
func MarshalXML(g *Graph) ([]byte, error) {
	var x xmlGraph
	for _, n := range g.Nodes() {
		xn := nodeToXML(n)
		switch n.Kind {
		case KindArtifact:
			x.Artifacts = append(x.Artifacts, xn)
		case KindProcess:
			x.Processes = append(x.Processes, xn)
		case KindAgent:
			x.Agents = append(x.Agents, xn)
		}
	}
	for _, e := range g.Edges() {
		xe := xmlEdge{Kind: e.Kind.String(), Effect: e.Effect, Cause: e.Cause, Role: e.Role, Account: e.Account}
		if !e.Time.IsZero() {
			xe.Time = e.Time.UTC().Format(time.RFC3339Nano)
		}
		x.Deps = append(x.Deps, xe)
	}
	blob, err := xml.MarshalIndent(x, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("opm: marshal: %w", err)
	}
	return append([]byte(xml.Header), blob...), nil
}

func edgeKindFromString(s string) (EdgeKind, error) {
	switch s {
	case "used":
		return Used, nil
	case "wasGeneratedBy":
		return WasGeneratedBy, nil
	case "wasControlledBy":
		return WasControlledBy, nil
	case "wasTriggeredBy":
		return WasTriggeredBy, nil
	case "wasDerivedFrom":
		return WasDerivedFrom, nil
	default:
		return 0, fmt.Errorf("opm: unknown edge kind %q", s)
	}
}

// UnmarshalXML parses a graph serialized by MarshalXML.
func UnmarshalXML(blob []byte) (*Graph, error) {
	var x xmlGraph
	if err := xml.Unmarshal(blob, &x); err != nil {
		return nil, fmt.Errorf("opm: unmarshal: %w", err)
	}
	g := NewGraph()
	addAll := func(kind NodeKind, nodes []xmlNode) error {
		for _, xn := range nodes {
			n := Node{ID: xn.ID, Kind: kind, Label: xn.Label, Value: xn.Value, Annotations: map[string]string{}}
			for _, a := range xn.Annotations {
				n.Annotations[a.Key] = a.Value
			}
			if err := g.AddNode(n); err != nil {
				return err
			}
		}
		return nil
	}
	if err := addAll(KindArtifact, x.Artifacts); err != nil {
		return nil, err
	}
	if err := addAll(KindProcess, x.Processes); err != nil {
		return nil, err
	}
	if err := addAll(KindAgent, x.Agents); err != nil {
		return nil, err
	}
	for _, xe := range x.Deps {
		kind, err := edgeKindFromString(xe.Kind)
		if err != nil {
			return nil, err
		}
		e := Edge{Kind: kind, Effect: xe.Effect, Cause: xe.Cause, Role: xe.Role, Account: xe.Account}
		if xe.Time != "" {
			t, err := time.Parse(time.RFC3339Nano, xe.Time)
			if err != nil {
				return nil, fmt.Errorf("opm: edge time %q: %w", xe.Time, err)
			}
			e.Time = t
		}
		if err := g.AddEdge(e); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// jsonGraph mirrors the JSON form.
type jsonGraph struct {
	Nodes []jsonNode `json:"nodes"`
	Edges []jsonEdge `json:"edges"`
}

type jsonNode struct {
	ID          string            `json:"id"`
	Kind        string            `json:"kind"`
	Label       string            `json:"label,omitempty"`
	Value       string            `json:"value,omitempty"`
	Annotations map[string]string `json:"annotations,omitempty"`
}

type jsonEdge struct {
	Kind    string     `json:"kind"`
	Effect  string     `json:"effect"`
	Cause   string     `json:"cause"`
	Role    string     `json:"role,omitempty"`
	Account string     `json:"account,omitempty"`
	Time    *time.Time `json:"time,omitempty"`
}

// MarshalJSON serializes the graph as JSON.
func MarshalJSON(g *Graph) ([]byte, error) {
	var j jsonGraph
	for _, n := range g.Nodes() {
		jn := jsonNode{ID: n.ID, Kind: n.Kind.String(), Label: n.Label, Value: n.Value}
		if len(n.Annotations) > 0 {
			jn.Annotations = n.Annotations
		}
		j.Nodes = append(j.Nodes, jn)
	}
	for _, e := range g.Edges() {
		je := jsonEdge{Kind: e.Kind.String(), Effect: e.Effect, Cause: e.Cause, Role: e.Role, Account: e.Account}
		if !e.Time.IsZero() {
			t := e.Time
			je.Time = &t
		}
		j.Edges = append(j.Edges, je)
	}
	return json.MarshalIndent(j, "", "  ")
}

// UnmarshalJSON parses a graph serialized by MarshalJSON.
func UnmarshalJSON(blob []byte) (*Graph, error) {
	var j jsonGraph
	if err := json.Unmarshal(blob, &j); err != nil {
		return nil, fmt.Errorf("opm: unmarshal json: %w", err)
	}
	g := NewGraph()
	for _, jn := range j.Nodes {
		var kind NodeKind
		switch jn.Kind {
		case "artifact":
			kind = KindArtifact
		case "process":
			kind = KindProcess
		case "agent":
			kind = KindAgent
		default:
			return nil, fmt.Errorf("opm: unknown node kind %q", jn.Kind)
		}
		ann := jn.Annotations
		if ann == nil {
			ann = map[string]string{}
		}
		if err := g.AddNode(Node{ID: jn.ID, Kind: kind, Label: jn.Label, Value: jn.Value, Annotations: ann}); err != nil {
			return nil, err
		}
	}
	for _, je := range j.Edges {
		kind, err := edgeKindFromString(je.Kind)
		if err != nil {
			return nil, err
		}
		e := Edge{Kind: kind, Effect: je.Effect, Cause: je.Cause, Role: je.Role, Account: je.Account}
		if je.Time != nil {
			e.Time = *je.Time
		}
		if err := g.AddEdge(e); err != nil {
			return nil, err
		}
	}
	return g, nil
}
