package geo

import (
	"math"
	"sort"
)

// GridIndex is a uniform lat/lon grid over point data, supporting radius
// queries and nearest-neighbour search. Cell size is in degrees.
type GridIndex[T any] struct {
	cellDeg float64
	cells   map[[2]int][]gridEntry[T]
	size    int
}

type gridEntry[T any] struct {
	pt  Point
	val T
}

// NewGridIndex builds an index with the given cell size in degrees
// (typical: 1.0 for continental data).
func NewGridIndex[T any](cellDeg float64) *GridIndex[T] {
	if cellDeg <= 0 {
		cellDeg = 1.0
	}
	return &GridIndex[T]{cellDeg: cellDeg, cells: make(map[[2]int][]gridEntry[T])}
}

func (g *GridIndex[T]) cellOf(p Point) [2]int {
	return [2]int{int(math.Floor(p.Lat / g.cellDeg)), int(math.Floor(p.Lon / g.cellDeg))}
}

// Add inserts a point with its payload.
func (g *GridIndex[T]) Add(p Point, val T) {
	c := g.cellOf(p)
	g.cells[c] = append(g.cells[c], gridEntry[T]{pt: p, val: val})
	g.size++
}

// Len reports the number of indexed points.
func (g *GridIndex[T]) Len() int { return g.size }

// WithinKm returns the payloads of all points within radiusKm of center,
// ordered by increasing distance.
func (g *GridIndex[T]) WithinKm(center Point, radiusKm float64) []T {
	type hit struct {
		d   float64
		val T
	}
	// Degrees of latitude per km is constant; longitude shrinks by cos(lat).
	latDeg := radiusKm / 111.0
	lonDeg := latDeg / math.Max(0.1, math.Cos(center.Lat*math.Pi/180))
	minCell := g.cellOf(Point{Lat: center.Lat - latDeg, Lon: center.Lon - lonDeg})
	maxCell := g.cellOf(Point{Lat: center.Lat + latDeg, Lon: center.Lon + lonDeg})
	var hits []hit
	for ci := minCell[0]; ci <= maxCell[0]; ci++ {
		for cj := minCell[1]; cj <= maxCell[1]; cj++ {
			for _, e := range g.cells[[2]int{ci, cj}] {
				if d := DistanceKm(center, e.pt); d <= radiusKm {
					hits = append(hits, hit{d, e.val})
				}
			}
		}
	}
	sort.Slice(hits, func(a, b int) bool { return hits[a].d < hits[b].d })
	out := make([]T, len(hits))
	for i, h := range hits {
		out[i] = h.val
	}
	return out
}

// Nearest returns the payload of the closest indexed point to center and its
// distance; ok is false when the index is empty.
func (g *GridIndex[T]) Nearest(center Point) (val T, distKm float64, ok bool) {
	// Expand ring by ring until a candidate is found, then verify one extra
	// ring (a nearer point can sit in an adjacent cell).
	cc := g.cellOf(center)
	best := math.Inf(1)
	var bestVal T
	found := false
	for ring := 0; ring < 512; ring++ {
		any := false
		for ci := cc[0] - ring; ci <= cc[0]+ring; ci++ {
			for cj := cc[1] - ring; cj <= cc[1]+ring; cj++ {
				if ring > 0 && ci > cc[0]-ring && ci < cc[0]+ring && cj > cc[1]-ring && cj < cc[1]+ring {
					continue // interior already scanned
				}
				for _, e := range g.cells[[2]int{ci, cj}] {
					any = true
					if d := DistanceKm(center, e.pt); d < best {
						best, bestVal, found = d, e.val, true
					}
				}
			}
		}
		if found && ring > 0 && !any {
			break
		}
		if found && any {
			// One confirmation ring after the first hit is enough for the
			// cell sizes used here.
			if ring >= 1 {
				break
			}
		}
	}
	if !found {
		return bestVal, 0, false
	}
	return bestVal, best, true
}
