package geo

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// Place is one gazetteer entry: a named location with a representative
// coordinate and an uncertainty radius (legacy locality descriptions like
// "mata próxima ao rio" geocode with multi-km uncertainty).
type Place struct {
	Country       string
	State         string
	City          string
	Location      Point
	UncertaintyKm float64
}

// Key returns the normalized "country/state/city" lookup key.
func (p Place) Key() string {
	return normalizePlace(p.Country) + "/" + normalizePlace(p.State) + "/" + normalizePlace(p.City)
}

func normalizePlace(s string) string {
	return strings.Join(strings.Fields(strings.ToLower(s)), " ")
}

// Gazetteer resolves place names to coordinates — the stage-1 substitute for
// the authoritative geographic sources the paper used to add coordinates to
// records made "before the advent of GPS".
type Gazetteer struct {
	places map[string][]*Place // key -> entries (ambiguity is possible)
	byCity map[string][]*Place // city-only key, for vague localities
}

// Lookup errors.
var (
	ErrPlaceUnknown   = errors.New("geo: unknown place")
	ErrPlaceAmbiguous = errors.New("geo: ambiguous place")
)

// NewGazetteer builds an empty gazetteer.
func NewGazetteer() *Gazetteer {
	return &Gazetteer{
		places: make(map[string][]*Place),
		byCity: make(map[string][]*Place),
	}
}

// Add registers a place.
func (g *Gazetteer) Add(p Place) {
	cp := p
	g.places[cp.Key()] = append(g.places[cp.Key()], &cp)
	g.byCity[normalizePlace(cp.City)] = append(g.byCity[normalizePlace(cp.City)], &cp)
}

// Len reports the number of entries.
func (g *Gazetteer) Len() int {
	n := 0
	for _, v := range g.places {
		n += len(v)
	}
	return n
}

// Resolve geocodes country/state/city. Missing state falls back to a
// city-only search; multiple candidates yield ErrPlaceAmbiguous (the paper's
// "location name was too vague" case that needs a human curator).
func (g *Gazetteer) Resolve(country, state, city string) (Place, error) {
	if city == "" {
		return Place{}, fmt.Errorf("%w: empty city", ErrPlaceUnknown)
	}
	if country != "" && state != "" {
		key := normalizePlace(country) + "/" + normalizePlace(state) + "/" + normalizePlace(city)
		hits := g.places[key]
		switch len(hits) {
		case 0:
			// fall through to city-only search
		case 1:
			return *hits[0], nil
		default:
			return Place{}, fmt.Errorf("%w: %q has %d gazetteer entries", ErrPlaceAmbiguous, key, len(hits))
		}
	}
	hits := g.byCity[normalizePlace(city)]
	// Filter by whatever qualifiers we do have.
	var matches []*Place
	for _, h := range hits {
		if country != "" && normalizePlace(h.Country) != normalizePlace(country) {
			continue
		}
		if state != "" && normalizePlace(h.State) != normalizePlace(state) {
			continue
		}
		matches = append(matches, h)
	}
	switch len(matches) {
	case 0:
		return Place{}, fmt.Errorf("%w: %s/%s/%s", ErrPlaceUnknown, country, state, city)
	case 1:
		return *matches[0], nil
	default:
		return Place{}, fmt.Errorf("%w: %q matches %d places", ErrPlaceAmbiguous, city, len(matches))
	}
}

// BrazilStates lists the states used by the synthetic gazetteer with rough
// bounding boxes (the FNJV core collection is from Brazil / the Neotropics).
var BrazilStates = []struct {
	Name string
	Box  Rect
}{
	{"São Paulo", Rect{-25.3, -53.1, -19.8, -44.2}},
	{"Minas Gerais", Rect{-22.9, -51.0, -14.2, -39.9}},
	{"Rio de Janeiro", Rect{-23.4, -44.9, -20.8, -41.0}},
	{"Bahia", Rect{-18.3, -46.6, -8.5, -37.3}},
	{"Amazonas", Rect{-9.8, -73.8, 2.2, -56.1}},
	{"Mato Grosso", Rect{-18.0, -61.6, -7.3, -50.2}},
	{"Paraná", Rect{-26.7, -54.6, -22.5, -48.0}},
	{"Goiás", Rect{-19.5, -53.2, -12.4, -45.9}},
	{"Pará", Rect{-9.8, -58.9, 2.6, -46.1}},
	{"Santa Catarina", Rect{-29.4, -53.8, -25.9, -48.3}},
}

// citySyllables builds deterministic synthetic municipality names.
var citySyllables = [...]string{"Campi", "Ribei", "Soro", "Piraci", "Jundi", "Ara", "Barra", "Itu", "Mogi", "Guara", "Taqua", "Canta", "Boca", "Santa", "Ouro", "Serra", "Lagoa", "Monte", "Cacho", "Porto"}
var citySuffixes = [...]string{"nas", "rão", "caba", "aí", "raquara", " do Sul", " Verde", "tinga", " Preto", " Grande", "eira", " Velho", "polis", "ndia", " da Serra", " das Cruzes", "í", "ara", "az", "al"}

// SyntheticGazetteer builds a deterministic gazetteer with citiesPerState
// municipalities placed inside each state's bounding box. A handful of city
// names are deliberately duplicated across states to exercise the
// ambiguity path.
func SyntheticGazetteer(citiesPerState int, seed int64) *Gazetteer {
	rng := rand.New(rand.NewSource(seed))
	g := NewGazetteer()
	used := map[string]int{}
	for _, st := range BrazilStates {
		for i := 0; i < citiesPerState; i++ {
			name := citySyllables[rng.Intn(len(citySyllables))] + citySuffixes[rng.Intn(len(citySuffixes))]
			// Allow up to two states to share a name (ambiguity fodder);
			// otherwise uniquify.
			if used[name] >= 2 {
				name = fmt.Sprintf("%s %d", name, i)
			}
			used[name]++
			box := st.Box
			g.Add(Place{
				Country: "Brasil",
				State:   st.Name,
				City:    name,
				Location: Point{
					Lat: box.MinLat + rng.Float64()*(box.MaxLat-box.MinLat),
					Lon: box.MinLon + rng.Float64()*(box.MaxLon-box.MinLon),
				},
				UncertaintyKm: 1 + rng.Float64()*9,
			})
		}
	}
	// The paper's home institution: make Campinas/SP always resolvable.
	g.Add(Place{Country: "Brasil", State: "São Paulo", City: "Campinas",
		Location: Point{Lat: -22.9056, Lon: -47.0608}, UncertaintyKm: 2})
	return g
}

// Cities returns the sorted list of distinct city names in the gazetteer.
func (g *Gazetteer) Cities() []string {
	out := make([]string, 0, len(g.byCity))
	seen := map[string]bool{}
	for _, hits := range g.byCity {
		for _, h := range hits {
			if !seen[h.City] {
				seen[h.City] = true
				out = append(out, h.City)
			}
		}
	}
	sort.Strings(out)
	return out
}

// PlacesIn returns all places in the given state, sorted by city name.
func (g *Gazetteer) PlacesIn(state string) []Place {
	var out []Place
	for _, hits := range g.places {
		for _, h := range hits {
			if normalizePlace(h.State) == normalizePlace(state) {
				out = append(out, *h)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].City < out[j].City })
	return out
}
