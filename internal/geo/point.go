// Package geo provides the geographic substrate of the case study: a
// synthetic gazetteer for the Neotropics (stage-1 geocoding of legacy
// records that predate GPS), a spatial grid index, and the stage-2 spatial
// analysis that flags possibly misidentified species from the geographic
// distribution of their records.
package geo

import (
	"fmt"
	"math"
)

// Point is a WGS-84 coordinate in decimal degrees.
type Point struct {
	Lat float64
	Lon float64
}

// Valid reports whether the point lies in the legal coordinate domain.
func (p Point) Valid() bool {
	return p.Lat >= -90 && p.Lat <= 90 && p.Lon >= -180 && p.Lon <= 180
}

// String renders the point as "lat,lon" with 5 decimals (~1 m).
func (p Point) String() string { return fmt.Sprintf("%.5f,%.5f", p.Lat, p.Lon) }

// earthRadiusKm is the mean Earth radius.
const earthRadiusKm = 6371.0

// DistanceKm returns the great-circle distance between two points in km.
func DistanceKm(a, b Point) float64 {
	la1, lo1 := a.Lat*math.Pi/180, a.Lon*math.Pi/180
	la2, lo2 := b.Lat*math.Pi/180, b.Lon*math.Pi/180
	dla, dlo := la2-la1, lo2-lo1
	h := math.Sin(dla/2)*math.Sin(dla/2) + math.Cos(la1)*math.Cos(la2)*math.Sin(dlo/2)*math.Sin(dlo/2)
	return 2 * earthRadiusKm * math.Asin(math.Min(1, math.Sqrt(h)))
}

// Rect is a latitude/longitude bounding box.
type Rect struct {
	MinLat, MinLon, MaxLat, MaxLon float64
}

// Contains reports whether p lies inside the box (inclusive).
func (r Rect) Contains(p Point) bool {
	return p.Lat >= r.MinLat && p.Lat <= r.MaxLat && p.Lon >= r.MinLon && p.Lon <= r.MaxLon
}

// Center returns the box midpoint.
func (r Rect) Center() Point {
	return Point{Lat: (r.MinLat + r.MaxLat) / 2, Lon: (r.MinLon + r.MaxLon) / 2}
}

// Centroid returns the arithmetic centroid of pts (zero value for empty).
func Centroid(pts []Point) Point {
	if len(pts) == 0 {
		return Point{}
	}
	var lat, lon float64
	for _, p := range pts {
		lat += p.Lat
		lon += p.Lon
	}
	return Point{Lat: lat / float64(len(pts)), Lon: lon / float64(len(pts))}
}
