package geo

import (
	"math"
	"sort"
)

// Species range geometry: convex hulls over occurrence points, used by the
// stage-2 analysis to describe a species' known distribution and to test
// whether a new record falls inside it.

// ConvexHull returns the convex hull of pts in counter-clockwise order
// (Andrew's monotone chain, treating lat/lon as planar — adequate at the
// regional scales of collection data). Degenerate inputs (0–2 points, or all
// collinear) return the reduced point set.
func ConvexHull(pts []Point) []Point {
	if len(pts) < 3 {
		out := append([]Point(nil), pts...)
		sortPoints(out)
		return dedupPoints(out)
	}
	sorted := append([]Point(nil), pts...)
	sortPoints(sorted)
	sorted = dedupPoints(sorted)
	if len(sorted) < 3 {
		return sorted
	}
	var lower, upper []Point
	for _, p := range sorted {
		for len(lower) >= 2 && cross(lower[len(lower)-2], lower[len(lower)-1], p) <= 0 {
			lower = lower[:len(lower)-1]
		}
		lower = append(lower, p)
	}
	for i := len(sorted) - 1; i >= 0; i-- {
		p := sorted[i]
		for len(upper) >= 2 && cross(upper[len(upper)-2], upper[len(upper)-1], p) <= 0 {
			upper = upper[:len(upper)-1]
		}
		upper = append(upper, p)
	}
	hull := append(lower[:len(lower)-1], upper[:len(upper)-1]...)
	if len(hull) < 3 {
		return sorted[:min(len(sorted), 2)]
	}
	return hull
}

func sortPoints(pts []Point) {
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].Lon != pts[j].Lon {
			return pts[i].Lon < pts[j].Lon
		}
		return pts[i].Lat < pts[j].Lat
	})
}

func dedupPoints(pts []Point) []Point {
	out := pts[:0]
	for i, p := range pts {
		if i == 0 || p != pts[i-1] {
			out = append(out, p)
		}
	}
	return out
}

// cross computes the z-component of (b-a) × (c-a) in lon/lat coordinates.
func cross(a, b, c Point) float64 {
	return (b.Lon-a.Lon)*(c.Lat-a.Lat) - (b.Lat-a.Lat)*(c.Lon-a.Lon)
}

// HullContains reports whether p lies inside (or on the boundary of) the
// convex hull, which must be in counter-clockwise order as produced by
// ConvexHull. Hulls with fewer than 3 vertices contain only their own points.
func HullContains(hull []Point, p Point) bool {
	if len(hull) < 3 {
		for _, h := range hull {
			if h == p {
				return true
			}
		}
		return false
	}
	for i := range hull {
		a, b := hull[i], hull[(i+1)%len(hull)]
		if cross(a, b, p) < 0 {
			return false
		}
	}
	return true
}

// HullAreaKm2 approximates the hull area in km² via the planar shoelace
// formula scaled at the hull centroid's latitude.
func HullAreaKm2(hull []Point) float64 {
	if len(hull) < 3 {
		return 0
	}
	var areaDeg2 float64
	for i := range hull {
		a, b := hull[i], hull[(i+1)%len(hull)]
		areaDeg2 += a.Lon*b.Lat - b.Lon*a.Lat
	}
	areaDeg2 = math.Abs(areaDeg2) / 2
	c := Centroid(hull)
	kmPerDegLat := 111.0
	kmPerDegLon := 111.0 * math.Cos(c.Lat*math.Pi/180)
	return areaDeg2 * kmPerDegLat * kmPerDegLon
}

// SpeciesRange summarizes one species' known distribution.
type SpeciesRange struct {
	Species string
	Hull    []Point
	AreaKm2 float64
	Count   int
}

// RangesBySpecies builds a range summary for every species with at least
// minRecords valid observations, sorted by species name.
func RangesBySpecies(obs []Observation, minRecords int) []SpeciesRange {
	if minRecords <= 0 {
		minRecords = 3
	}
	grouped := map[string][]Point{}
	for _, o := range obs {
		if o.Species == "" || !o.Location.Valid() {
			continue
		}
		grouped[o.Species] = append(grouped[o.Species], o.Location)
	}
	var out []SpeciesRange
	for sp, pts := range grouped {
		if len(pts) < minRecords {
			continue
		}
		hull := ConvexHull(pts)
		out = append(out, SpeciesRange{
			Species: sp,
			Hull:    hull,
			AreaKm2: HullAreaKm2(hull),
			Count:   len(pts),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Species < out[j].Species })
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
