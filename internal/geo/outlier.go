package geo

import (
	"math"
	"sort"
)

// Stage-2 spatial analysis (paper §IV.B, second stage; Cugler et al. 2013):
// for each species, examine the geographic distribution of its records and
// flag those improbably far from the rest — evidence of a misidentified
// species, a data-entry error, or possibly new behaviour worth expert review.

// Observation ties a record ID to a species name and a coordinate.
type Observation struct {
	RecordID string
	Species  string
	Location Point
}

// Outlier is one flagged record.
type Outlier struct {
	RecordID string
	Species  string
	Location Point
	// DistanceKm from the species' medoid.
	DistanceKm float64
	// Threshold the record exceeded.
	ThresholdKm float64
	// Score is DistanceKm/ThresholdKm (≥1 by construction); larger means
	// more anomalous.
	Score float64
}

// OutlierParams tunes the detector.
type OutlierParams struct {
	// MinRecords is the minimum records a species needs before its
	// distribution is testable (default 5).
	MinRecords int
	// MADFactor scales the median absolute deviation to form the threshold
	// (default 5.0).
	MADFactor float64
	// FloorKm is the minimum threshold, preventing dense clusters from
	// flagging ordinary scatter (default 50 km).
	FloorKm float64
}

func (p *OutlierParams) defaults() {
	if p.MinRecords <= 0 {
		p.MinRecords = 5
	}
	if p.MADFactor <= 0 {
		p.MADFactor = 5.0
	}
	if p.FloorKm <= 0 {
		p.FloorKm = 50
	}
}

// DetectOutliers groups observations by species and applies a robust
// median/MAD distance test around each species' medoid. Results are ordered
// by descending score, ties broken by record ID for determinism.
func DetectOutliers(obs []Observation, params OutlierParams) []Outlier {
	params.defaults()
	bySpecies := map[string][]Observation{}
	for _, o := range obs {
		if !o.Location.Valid() || o.Species == "" {
			continue
		}
		bySpecies[o.Species] = append(bySpecies[o.Species], o)
	}
	var out []Outlier
	for sp, group := range bySpecies {
		if len(group) < params.MinRecords {
			continue
		}
		medoid := medoidOf(group)
		dists := make([]float64, len(group))
		for i, o := range group {
			dists[i] = DistanceKm(medoid, o.Location)
		}
		med := median(dists)
		abs := make([]float64, len(dists))
		for i, d := range dists {
			abs[i] = math.Abs(d - med)
		}
		mad := median(abs)
		threshold := med + params.MADFactor*mad*1.4826 // 1.4826 ≈ consistency constant for normal data
		if threshold < params.FloorKm {
			threshold = params.FloorKm
		}
		for i, o := range group {
			if dists[i] > threshold {
				out = append(out, Outlier{
					RecordID:    o.RecordID,
					Species:     sp,
					Location:    o.Location,
					DistanceKm:  dists[i],
					ThresholdKm: threshold,
					Score:       dists[i] / threshold,
				})
			}
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Score != out[b].Score {
			return out[a].Score > out[b].Score
		}
		return out[a].RecordID < out[b].RecordID
	})
	return out
}

// medoidOf returns the observation location minimizing total distance to the
// group — more robust than the centroid when outliers are present.
func medoidOf(group []Observation) Point {
	if len(group) == 1 {
		return group[0].Location
	}
	best, bestSum := group[0].Location, math.Inf(1)
	for _, cand := range group {
		sum := 0.0
		for _, o := range group {
			sum += DistanceKm(cand.Location, o.Location)
		}
		if sum < bestSum {
			best, bestSum = cand.Location, sum
		}
	}
	return best
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}
