package geo

import (
	"math"
	"math/rand"
	"testing"
)

func TestConvexHullSquare(t *testing.T) {
	pts := []Point{
		{0, 0}, {0, 10}, {10, 0}, {10, 10},
		{5, 5}, {2, 7}, {9, 1}, // interior
	}
	hull := ConvexHull(pts)
	if len(hull) != 4 {
		t.Fatalf("hull = %v", hull)
	}
	for _, corner := range []Point{{0, 0}, {0, 10}, {10, 0}, {10, 10}} {
		found := false
		for _, h := range hull {
			if h == corner {
				found = true
			}
		}
		if !found {
			t.Fatalf("corner %v missing from hull %v", corner, hull)
		}
	}
	// Interior points contained, exterior not.
	if !HullContains(hull, Point{5, 5}) || !HullContains(hull, Point{0, 0}) {
		t.Fatal("containment of interior/boundary failed")
	}
	if HullContains(hull, Point{11, 5}) || HullContains(hull, Point{-1, -1}) {
		t.Fatal("exterior point contained")
	}
}

func TestConvexHullDegenerate(t *testing.T) {
	if h := ConvexHull(nil); len(h) != 0 {
		t.Fatalf("empty hull = %v", h)
	}
	if h := ConvexHull([]Point{{1, 1}}); len(h) != 1 {
		t.Fatalf("single hull = %v", h)
	}
	if h := ConvexHull([]Point{{1, 1}, {1, 1}, {1, 1}}); len(h) != 1 {
		t.Fatalf("duplicate hull = %v", h)
	}
	// Collinear points collapse to the 2 extremes.
	h := ConvexHull([]Point{{0, 0}, {1, 1}, {2, 2}, {3, 3}})
	if len(h) != 2 {
		t.Fatalf("collinear hull = %v", h)
	}
	if HullContains(h, Point{1, 1}) {
		t.Log("degenerate hull treats only vertices as contained (documented)")
	}
	if HullAreaKm2(h) != 0 {
		t.Fatal("degenerate hull has area")
	}
}

func TestConvexHullPropertyAllPointsInside(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 30; trial++ {
		n := 3 + rng.Intn(60)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{Lat: -25 + rng.Float64()*10, Lon: -50 + rng.Float64()*10}
		}
		hull := ConvexHull(pts)
		if len(hull) < 3 {
			continue // all collinear (vanishingly unlikely)
		}
		for _, p := range pts {
			if !HullContains(hull, p) {
				t.Fatalf("trial %d: point %v outside hull %v", trial, p, hull)
			}
		}
		// Hull vertices are input points.
		for _, h := range hull {
			found := false
			for _, p := range pts {
				if p == h {
					found = true
				}
			}
			if !found {
				t.Fatalf("trial %d: hull vertex %v not an input point", trial, h)
			}
		}
	}
}

func TestHullAreaKm2(t *testing.T) {
	// 1°×1° square at the equator ≈ 111 km × 111 km ≈ 12321 km².
	hull := ConvexHull([]Point{{0, 0}, {0, 1}, {1, 0}, {1, 1}})
	area := HullAreaKm2(hull)
	if math.Abs(area-12321) > 250 {
		t.Fatalf("equatorial square area = %.0f km²", area)
	}
	// The same square at 60°S shrinks by cos(60°) ≈ 0.5 in longitude.
	hull60 := ConvexHull([]Point{{-60.5, 0}, {-60.5, 1}, {-59.5, 0}, {-59.5, 1}})
	area60 := HullAreaKm2(hull60)
	if area60 > area*0.65 || area60 < area*0.35 {
		t.Fatalf("60°S square area = %.0f km² vs equator %.0f km²", area60, area)
	}
}

func TestRangesBySpecies(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	obs := makeCluster(rng, "Wide species", Point{-20, -50}, 30, 400)
	obs = append(obs, makeCluster(rng, "Narrow species", Point{-22, -47}, 10, 20)...)
	obs = append(obs, Observation{RecordID: "x", Species: "Rare species", Location: Point{-10, -60}})
	obs = append(obs, Observation{RecordID: "bad", Species: "Wide species", Location: Point{999, 0}})

	ranges := RangesBySpecies(obs, 3)
	if len(ranges) != 2 {
		t.Fatalf("ranges = %+v", ranges)
	}
	// Sorted by name: Narrow before Wide.
	if ranges[0].Species != "Narrow species" || ranges[1].Species != "Wide species" {
		t.Fatalf("order = %s, %s", ranges[0].Species, ranges[1].Species)
	}
	if ranges[1].AreaKm2 <= ranges[0].AreaKm2 {
		t.Fatalf("wide range (%.0f) not larger than narrow (%.0f)", ranges[1].AreaKm2, ranges[0].AreaKm2)
	}
	if ranges[1].Count != 30 {
		t.Fatalf("invalid observation counted: %d", ranges[1].Count)
	}
}
