package geo

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDistanceKm(t *testing.T) {
	campinas := Point{-22.9056, -47.0608}
	saoPaulo := Point{-23.5505, -46.6333}
	d := DistanceKm(campinas, saoPaulo)
	if d < 75 || d < 0 || d > 95 {
		t.Fatalf("Campinas–São Paulo = %.1f km, want ≈83", d)
	}
	if DistanceKm(campinas, campinas) != 0 {
		t.Fatal("distance to self nonzero")
	}
	// Quarter of Earth circumference pole-to-equator.
	d = DistanceKm(Point{0, 0}, Point{90, 0})
	if math.Abs(d-10007.5) > 10 {
		t.Fatalf("pole-equator = %.1f km, want ≈10007", d)
	}
}

func TestDistanceSymmetryProperty(t *testing.T) {
	f := func(a, b uint32) bool {
		p := Point{Lat: float64(a%180) - 90, Lon: float64(a%360) - 180}
		q := Point{Lat: float64(b%180) - 90, Lon: float64(b%360) - 180}
		d1, d2 := DistanceKm(p, q), DistanceKm(q, p)
		return math.Abs(d1-d2) < 1e-9 && d1 >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPointValid(t *testing.T) {
	if !(Point{0, 0}).Valid() || !(Point{-90, 180}).Valid() {
		t.Fatal("legal points reported invalid")
	}
	if (Point{91, 0}).Valid() || (Point{0, -181}).Valid() {
		t.Fatal("illegal points reported valid")
	}
}

func TestRect(t *testing.T) {
	r := Rect{-25, -53, -19, -44}
	if !r.Contains(Point{-22, -47}) {
		t.Fatal("interior point not contained")
	}
	if r.Contains(Point{-30, -47}) {
		t.Fatal("exterior point contained")
	}
	c := r.Center()
	if c.Lat != -22 || c.Lon != -48.5 {
		t.Fatalf("center = %v", c)
	}
}

func TestCentroid(t *testing.T) {
	c := Centroid([]Point{{0, 0}, {2, 2}, {4, 4}})
	if c.Lat != 2 || c.Lon != 2 {
		t.Fatalf("centroid = %v", c)
	}
	if (Centroid(nil) != Point{}) {
		t.Fatal("empty centroid not zero")
	}
}

func TestGazetteerResolve(t *testing.T) {
	g := NewGazetteer()
	g.Add(Place{Country: "Brasil", State: "São Paulo", City: "Campinas", Location: Point{-22.9, -47.06}, UncertaintyKm: 2})
	g.Add(Place{Country: "Brasil", State: "Bahia", City: "Bom Jesus", Location: Point{-13, -39}, UncertaintyKm: 5})
	g.Add(Place{Country: "Brasil", State: "Goiás", City: "Bom Jesus", Location: Point{-18, -49}, UncertaintyKm: 5})

	p, err := g.Resolve("Brasil", "São Paulo", "Campinas")
	if err != nil {
		t.Fatal(err)
	}
	if p.Location.Lat != -22.9 {
		t.Fatalf("resolved %v", p)
	}
	// Case and whitespace insensitive.
	if _, err := g.Resolve("BRASIL", "são  paulo", "CAMPINAS"); err != nil {
		t.Fatalf("normalized resolve failed: %v", err)
	}
	// City-only fallback when state is missing and unambiguous.
	if _, err := g.Resolve("Brasil", "", "Campinas"); err != nil {
		t.Fatalf("city-only resolve failed: %v", err)
	}
	// Ambiguity detection.
	if _, err := g.Resolve("Brasil", "", "Bom Jesus"); !errors.Is(err, ErrPlaceAmbiguous) {
		t.Fatalf("ambiguous resolve: %v", err)
	}
	// Disambiguated by state.
	p, err = g.Resolve("Brasil", "Goiás", "Bom Jesus")
	if err != nil {
		t.Fatal(err)
	}
	if p.Location.Lat != -18 {
		t.Fatalf("state-disambiguated resolve = %v", p)
	}
	// Unknown city.
	if _, err := g.Resolve("Brasil", "São Paulo", "Atlantis"); !errors.Is(err, ErrPlaceUnknown) {
		t.Fatalf("unknown resolve: %v", err)
	}
	if _, err := g.Resolve("Brasil", "São Paulo", ""); !errors.Is(err, ErrPlaceUnknown) {
		t.Fatalf("empty city: %v", err)
	}
}

func TestSyntheticGazetteer(t *testing.T) {
	g := SyntheticGazetteer(30, 5)
	if g.Len() < 300 {
		t.Fatalf("gazetteer has %d entries, want ≥300", g.Len())
	}
	// Campinas is always present.
	p, err := g.Resolve("Brasil", "São Paulo", "Campinas")
	if err != nil {
		t.Fatalf("Campinas: %v", err)
	}
	if math.Abs(p.Location.Lat+22.9056) > 0.01 {
		t.Fatalf("Campinas at %v", p.Location)
	}
	// Every generated place lies inside its state's box.
	for _, st := range BrazilStates {
		for _, pl := range g.PlacesIn(st.Name) {
			if pl.City == "Campinas" && st.Name == "São Paulo" {
				continue // hand-placed landmark, not box-constrained
			}
			if !st.Box.Contains(pl.Location) {
				t.Fatalf("place %q (%v) outside state %q box", pl.City, pl.Location, st.Name)
			}
			if pl.UncertaintyKm <= 0 {
				t.Fatalf("place %q has nonpositive uncertainty", pl.City)
			}
		}
	}
	// Determinism.
	g2 := SyntheticGazetteer(30, 5)
	if len(g.Cities()) != len(g2.Cities()) {
		t.Fatal("synthetic gazetteer not deterministic")
	}
}

func TestGridIndexWithinKm(t *testing.T) {
	g := NewGridIndex[string](1.0)
	g.Add(Point{-22.9, -47.06}, "campinas")
	g.Add(Point{-23.55, -46.63}, "sao paulo")
	g.Add(Point{-3.1, -60.0}, "manaus")
	got := g.WithinKm(Point{-22.9, -47.0}, 150)
	if len(got) != 2 || got[0] != "campinas" || got[1] != "sao paulo" {
		t.Fatalf("WithinKm = %v", got)
	}
	if got := g.WithinKm(Point{-22.9, -47.0}, 10); len(got) != 1 {
		t.Fatalf("tight radius = %v", got)
	}
	if got := g.WithinKm(Point{40, 40}, 100); len(got) != 0 {
		t.Fatalf("far query = %v", got)
	}
	if g.Len() != 3 {
		t.Fatalf("Len = %d", g.Len())
	}
}

func TestGridIndexNearest(t *testing.T) {
	g := NewGridIndex[int](1.0)
	if _, _, ok := g.Nearest(Point{0, 0}); ok {
		t.Fatal("empty index returned a nearest point")
	}
	rng := rand.New(rand.NewSource(3))
	pts := make([]Point, 200)
	for i := range pts {
		pts[i] = Point{Lat: -30 + rng.Float64()*30, Lon: -70 + rng.Float64()*30}
		g.Add(pts[i], i)
	}
	for trial := 0; trial < 50; trial++ {
		q := Point{Lat: -30 + rng.Float64()*30, Lon: -70 + rng.Float64()*30}
		gotIdx, gotD, ok := g.Nearest(q)
		if !ok {
			t.Fatal("Nearest found nothing")
		}
		// Brute force.
		bestIdx, bestD := -1, math.Inf(1)
		for i, p := range pts {
			if d := DistanceKm(q, p); d < bestD {
				bestIdx, bestD = i, d
			}
		}
		if gotIdx != bestIdx && math.Abs(gotD-bestD) > 1e-6 {
			t.Fatalf("trial %d: Nearest = %d (%.2f km), brute force = %d (%.2f km)", trial, gotIdx, gotD, bestIdx, bestD)
		}
	}
}

func TestGridIndexBadCellSize(t *testing.T) {
	g := NewGridIndex[int](-1)
	g.Add(Point{1, 1}, 7)
	if v, _, ok := g.Nearest(Point{1, 1}); !ok || v != 7 {
		t.Fatal("index with defaulted cell size broken")
	}
}

func makeCluster(rng *rand.Rand, species string, center Point, n int, spreadKm float64) []Observation {
	obs := make([]Observation, n)
	for i := range obs {
		obs[i] = Observation{
			RecordID: fmt.Sprintf("%s-%03d", species, i),
			Species:  species,
			Location: Point{
				Lat: center.Lat + (rng.Float64()-0.5)*spreadKm/111,
				Lon: center.Lon + (rng.Float64()-0.5)*spreadKm/111,
			},
		}
	}
	return obs
}

func TestDetectOutliers(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	obs := makeCluster(rng, "Hyla faber", Point{-22.9, -47.0}, 30, 80)
	// One record 2000+ km away: a misidentification.
	obs = append(obs, Observation{RecordID: "Hyla faber-FAR", Species: "Hyla faber", Location: Point{-3.1, -60.0}})
	// Another species, all clustered: no outliers.
	obs = append(obs, makeCluster(rng, "Scinax fuscomarginatus", Point{-20.0, -45.0}, 20, 60)...)

	out := DetectOutliers(obs, OutlierParams{})
	if len(out) != 1 {
		t.Fatalf("DetectOutliers flagged %d records, want 1: %+v", len(out), out)
	}
	if out[0].RecordID != "Hyla faber-FAR" {
		t.Fatalf("flagged %q", out[0].RecordID)
	}
	if out[0].Score < 1 {
		t.Fatalf("score %.2f < 1", out[0].Score)
	}
	if out[0].DistanceKm < 1500 {
		t.Fatalf("distance %.1f km, want >1500", out[0].DistanceKm)
	}
}

func TestDetectOutliersSmallGroupsSkipped(t *testing.T) {
	obs := []Observation{
		{RecordID: "a", Species: "Rare species", Location: Point{-22, -47}},
		{RecordID: "b", Species: "Rare species", Location: Point{10, 10}},
	}
	if out := DetectOutliers(obs, OutlierParams{MinRecords: 5}); len(out) != 0 {
		t.Fatalf("small group produced outliers: %+v", out)
	}
}

func TestDetectOutliersIgnoresInvalid(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	obs := makeCluster(rng, "Sp", Point{-22, -47}, 10, 50)
	obs = append(obs,
		Observation{RecordID: "bad-coord", Species: "Sp", Location: Point{999, 999}},
		Observation{RecordID: "no-species", Species: "", Location: Point{-22, -47}},
	)
	out := DetectOutliers(obs, OutlierParams{})
	for _, o := range out {
		if o.RecordID == "bad-coord" || o.RecordID == "no-species" {
			t.Fatalf("invalid observation %q was scored", o.RecordID)
		}
	}
}

func TestDetectOutliersDeterministicOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	obs := makeCluster(rng, "Sp", Point{-22, -47}, 20, 40)
	obs = append(obs,
		Observation{RecordID: "far-b", Species: "Sp", Location: Point{-5, -60}},
		Observation{RecordID: "far-a", Species: "Sp", Location: Point{-5, -60}},
	)
	out := DetectOutliers(obs, OutlierParams{})
	if len(out) != 2 {
		t.Fatalf("flagged %d, want 2", len(out))
	}
	if out[0].RecordID != "far-a" || out[1].RecordID != "far-b" {
		t.Fatalf("tie order = %q,%q", out[0].RecordID, out[1].RecordID)
	}
}

func TestMedian(t *testing.T) {
	if m := median([]float64{3, 1, 2}); m != 2 {
		t.Fatalf("odd median = %f", m)
	}
	if m := median([]float64{4, 1, 2, 3}); m != 2.5 {
		t.Fatalf("even median = %f", m)
	}
	if m := median(nil); m != 0 {
		t.Fatalf("empty median = %f", m)
	}
}
