// Package obs implements the observation data model the paper builds on
// (§II.C, citing Bowers et al.'s OBSDB): "an observation represents an
// assertion that a particular entity was observed and that the corresponding
// set of measurements were recorded". Observation databases are
// heterogeneous — sounds, museum specimens, plot surveys — so the model is
// generic: typed entities, observations with time/place/protocol context,
// and arbitrary characteristic/value/unit measurements, all stored uniformly
// on the embedded database and queryable by entity, characteristic and value
// range. The FNJV sound records map onto it losslessly (FromRecord).
package obs

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/geo"
	"repro/internal/storage"
)

// Entity is the thing observed: an organism occurrence, a site, a device.
type Entity struct {
	ID    string
	Type  string // e.g. "organism", "site"
	Label string // e.g. the species name
}

// ValueKind types a measurement value.
type ValueKind uint8

// Measurement value kinds.
const (
	ValueFloat ValueKind = iota
	ValueString
	ValueBool
)

// Measurement is one recorded characteristic of an observation.
type Measurement struct {
	Characteristic string // e.g. "air_temperature"
	Kind           ValueKind
	Number         float64
	Text           string
	Flag           bool
	Unit           string // e.g. "°C"
}

// Float builds a numeric measurement.
func Float(characteristic string, v float64, unit string) Measurement {
	return Measurement{Characteristic: characteristic, Kind: ValueFloat, Number: v, Unit: unit}
}

// Text builds a categorical measurement.
func Text(characteristic, v string) Measurement {
	return Measurement{Characteristic: characteristic, Kind: ValueString, Text: v}
}

// Bool builds a boolean measurement.
func Bool(characteristic string, v bool) Measurement {
	return Measurement{Characteristic: characteristic, Kind: ValueBool, Flag: v}
}

// Value renders the measurement value for display.
func (m Measurement) Value() string {
	switch m.Kind {
	case ValueFloat:
		s := fmt.Sprintf("%g", m.Number)
		if m.Unit != "" {
			s += " " + m.Unit
		}
		return s
	case ValueString:
		return m.Text
	case ValueBool:
		return fmt.Sprintf("%t", m.Flag)
	default:
		return "?"
	}
}

// Observation asserts that Entity was observed with Measurements, in a
// spatio-temporal and methodological context.
type Observation struct {
	ID           string
	Entity       Entity
	At           time.Time
	Where        *geo.Point
	Protocol     string // observation methodology ("how")
	ObservedBy   string
	Measurements []Measurement
}

// --- storage mapping ---

const (
	obsTable  = "observations"
	measTable = "measurements"
)

var (
	obsSchema = storage.MustSchema(obsTable,
		storage.Column{Name: "id", Kind: storage.KindString},
		storage.Column{Name: "entity_id", Kind: storage.KindString},
		storage.Column{Name: "entity_type", Kind: storage.KindString, Nullable: true},
		storage.Column{Name: "entity_label", Kind: storage.KindString, Nullable: true},
		storage.Column{Name: "at", Kind: storage.KindTime, Nullable: true},
		storage.Column{Name: "lat", Kind: storage.KindFloat, Nullable: true},
		storage.Column{Name: "lon", Kind: storage.KindFloat, Nullable: true},
		storage.Column{Name: "protocol", Kind: storage.KindString, Nullable: true},
		storage.Column{Name: "observed_by", Kind: storage.KindString, Nullable: true},
	)
	measSchema = storage.MustSchema(measTable,
		storage.Column{Name: "key", Kind: storage.KindString}, // obsID/seq
		storage.Column{Name: "obs_id", Kind: storage.KindString},
		storage.Column{Name: "characteristic", Kind: storage.KindString},
		storage.Column{Name: "kind", Kind: storage.KindInt},
		storage.Column{Name: "number", Kind: storage.KindFloat, Nullable: true},
		storage.Column{Name: "text", Kind: storage.KindString, Nullable: true},
		storage.Column{Name: "flag", Kind: storage.KindBool, Nullable: true},
		storage.Column{Name: "unit", Kind: storage.KindString, Nullable: true},
	)
)

// DB is the observation store.
type DB struct {
	db *storage.DB
}

// ErrObservationNotFound is returned for unknown observation IDs.
var ErrObservationNotFound = errors.New("obs: observation not found")

// Open opens (creating if needed) the observation tables in db.
func Open(db *storage.DB) (*DB, error) {
	if db.Table(obsTable) == nil {
		if err := db.Apply(
			storage.CreateTableOp(obsSchema),
			storage.CreateTableOp(measSchema),
			storage.CreateIndexOp(obsTable, "entity_label"),
			storage.CreateIndexOp(measTable, "obs_id"),
			storage.CreateIndexOp(measTable, "characteristic"),
		); err != nil {
			return nil, err
		}
	}
	return &DB{db: db}, nil
}

// Put stores one observation and its measurements atomically.
func (d *DB) Put(o Observation) error {
	if o.ID == "" || o.Entity.ID == "" {
		return fmt.Errorf("obs: observation needs ID and entity ID")
	}
	lat, lon := storage.Null(), storage.Null()
	if o.Where != nil {
		lat, lon = storage.F(o.Where.Lat), storage.F(o.Where.Lon)
	}
	at := storage.Null()
	if !o.At.IsZero() {
		at = storage.T(o.At)
	}
	ops := []storage.Op{storage.InsertOp(obsTable, storage.Row{
		storage.S(o.ID), storage.S(o.Entity.ID), storage.S(o.Entity.Type),
		storage.S(o.Entity.Label), at, lat, lon,
		storage.S(o.Protocol), storage.S(o.ObservedBy),
	})}
	for i, m := range o.Measurements {
		ops = append(ops, storage.InsertOp(measTable, storage.Row{
			storage.S(fmt.Sprintf("%s/%03d", o.ID, i)),
			storage.S(o.ID),
			storage.S(m.Characteristic),
			storage.I(int64(m.Kind)),
			storage.F(m.Number),
			storage.S(m.Text),
			storage.B(m.Flag),
			storage.S(m.Unit),
		}))
	}
	return d.db.Apply(ops...)
}

// Get loads one observation with its measurements.
func (d *DB) Get(id string) (Observation, error) {
	row, err := d.db.Table(obsTable).Get(storage.S(id))
	if err != nil {
		if errors.Is(err, storage.ErrNotFound) {
			return Observation{}, fmt.Errorf("%w: %q", ErrObservationNotFound, id)
		}
		return Observation{}, err
	}
	o := rowToObs(row)
	meas, err := d.db.Table(measTable).Lookup("obs_id", storage.S(id))
	if err != nil {
		return Observation{}, err
	}
	for _, mr := range meas {
		o.Measurements = append(o.Measurements, rowToMeas(mr))
	}
	return o, nil
}

func rowToObs(row storage.Row) Observation {
	o := Observation{
		ID: row.Get(obsSchema, "id").Str(),
		Entity: Entity{
			ID:    row.Get(obsSchema, "entity_id").Str(),
			Type:  row.Get(obsSchema, "entity_type").Str(),
			Label: row.Get(obsSchema, "entity_label").Str(),
		},
		Protocol:   row.Get(obsSchema, "protocol").Str(),
		ObservedBy: row.Get(obsSchema, "observed_by").Str(),
	}
	if v := row.Get(obsSchema, "at"); !v.IsNull() {
		o.At = v.Time()
	}
	if la, lo := row.Get(obsSchema, "lat"), row.Get(obsSchema, "lon"); !la.IsNull() && !lo.IsNull() {
		o.Where = &geo.Point{Lat: la.Float(), Lon: lo.Float()}
	}
	return o
}

func rowToMeas(row storage.Row) Measurement {
	return Measurement{
		Characteristic: row.Get(measSchema, "characteristic").Str(),
		Kind:           ValueKind(row.Get(measSchema, "kind").Int()),
		Number:         row.Get(measSchema, "number").Float(),
		Text:           row.Get(measSchema, "text").Str(),
		Flag:           row.Get(measSchema, "flag").Bool(),
		Unit:           row.Get(measSchema, "unit").Str(),
	}
}

// Len reports the number of observations.
func (d *DB) Len() int { return d.db.Table(obsTable).Len() }

// ByEntityLabel returns all observations of entities with the given label
// (e.g. a species name), measurements included, in ID order.
func (d *DB) ByEntityLabel(label string) ([]Observation, error) {
	rows, err := d.db.Table(obsTable).Lookup("entity_label", storage.S(label))
	if err != nil {
		return nil, err
	}
	out := make([]Observation, 0, len(rows))
	for _, row := range rows {
		o, err := d.Get(row.Get(obsSchema, "id").Str())
		if err != nil {
			return nil, err
		}
		out = append(out, o)
	}
	return out, nil
}

// WhereMeasured returns the IDs of observations that recorded the given
// characteristic with a numeric value in [lo, hi], sorted.
func (d *DB) WhereMeasured(characteristic string, lo, hi float64) ([]string, error) {
	rows, err := d.db.Table(measTable).Lookup("characteristic", storage.S(characteristic))
	if err != nil {
		return nil, err
	}
	set := map[string]bool{}
	for _, row := range rows {
		if ValueKind(row.Get(measSchema, "kind").Int()) != ValueFloat {
			continue
		}
		if v := row.Get(measSchema, "number").Float(); v >= lo && v <= hi {
			set[row.Get(measSchema, "obs_id").Str()] = true
		}
	}
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out, nil
}

// Summary aggregates a numeric characteristic.
type Summary struct {
	Characteristic string
	Count          int
	Min, Max, Mean float64
}

// Summarize computes min/max/mean over every numeric sample of the
// characteristic.
func (d *DB) Summarize(characteristic string) (Summary, error) {
	rows, err := d.db.Table(measTable).Lookup("characteristic", storage.S(characteristic))
	if err != nil {
		return Summary{}, err
	}
	s := Summary{Characteristic: characteristic, Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	for _, row := range rows {
		if ValueKind(row.Get(measSchema, "kind").Int()) != ValueFloat {
			continue
		}
		v := row.Get(measSchema, "number").Float()
		s.Count++
		sum += v
		s.Min = math.Min(s.Min, v)
		s.Max = math.Max(s.Max, v)
	}
	if s.Count == 0 {
		return Summary{Characteristic: characteristic}, nil
	}
	s.Mean = sum / float64(s.Count)
	return s, nil
}

// Characteristics lists every distinct measured characteristic, sorted.
func (d *DB) Characteristics() []string {
	set := map[string]bool{}
	d.db.Table(measTable).Scan(func(row storage.Row) bool {
		set[row.Get(measSchema, "characteristic").Str()] = true
		return true
	})
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
