package obs

import (
	"errors"
	"testing"
	"time"

	"repro/internal/envsource"
	"repro/internal/fnjv"
	"repro/internal/geo"
	"repro/internal/storage"
	"repro/internal/taxonomy"
)

func openObs(t *testing.T) *DB {
	t.Helper()
	db, err := storage.Open(t.TempDir(), storage.Options{Sync: storage.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	od, err := Open(db)
	if err != nil {
		t.Fatal(err)
	}
	return od
}

func sampleObservation() Observation {
	return Observation{
		ID:         "obs:1",
		Entity:     Entity{ID: "organism:1", Type: "organism", Label: "Hyla faber"},
		At:         time.Date(1978, 11, 3, 19, 30, 0, 0, time.UTC),
		Where:      &geo.Point{Lat: -22.9, Lon: -47.06},
		Protocol:   "field sound recording",
		ObservedBy: "J. Vielliard",
		Measurements: []Measurement{
			Float("air_temperature", 24.5, "°C"),
			Text("habitat", "pond margin"),
			Bool("vocalization_recorded", true),
		},
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	od := openObs(t)
	o := sampleObservation()
	if err := od.Put(o); err != nil {
		t.Fatal(err)
	}
	got, err := od.Get("obs:1")
	if err != nil {
		t.Fatal(err)
	}
	if got.Entity.Label != "Hyla faber" || got.Protocol != o.Protocol || !got.At.Equal(o.At) {
		t.Fatalf("round trip = %+v", got)
	}
	if got.Where == nil || got.Where.Lat != -22.9 {
		t.Fatalf("location lost: %+v", got.Where)
	}
	if len(got.Measurements) != 3 {
		t.Fatalf("measurements = %d", len(got.Measurements))
	}
	byChar := map[string]Measurement{}
	for _, m := range got.Measurements {
		byChar[m.Characteristic] = m
	}
	if m := byChar["air_temperature"]; m.Kind != ValueFloat || m.Number != 24.5 || m.Unit != "°C" {
		t.Fatalf("temperature = %+v", m)
	}
	if m := byChar["habitat"]; m.Kind != ValueString || m.Text != "pond margin" {
		t.Fatalf("habitat = %+v", m)
	}
	if m := byChar["vocalization_recorded"]; m.Kind != ValueBool || !m.Flag {
		t.Fatalf("flag = %+v", m)
	}
	// Value rendering.
	if byChar["air_temperature"].Value() != "24.5 °C" {
		t.Fatalf("Value() = %q", byChar["air_temperature"].Value())
	}
	// Missing ID cases.
	if _, err := od.Get("obs:missing"); !errors.Is(err, ErrObservationNotFound) {
		t.Fatalf("missing get: %v", err)
	}
	if err := od.Put(Observation{}); err == nil {
		t.Fatal("empty observation accepted")
	}
}

func TestOptionalContext(t *testing.T) {
	od := openObs(t)
	o := Observation{ID: "obs:min", Entity: Entity{ID: "e1"}}
	if err := od.Put(o); err != nil {
		t.Fatal(err)
	}
	got, err := od.Get("obs:min")
	if err != nil {
		t.Fatal(err)
	}
	if got.Where != nil || !got.At.IsZero() || len(got.Measurements) != 0 {
		t.Fatalf("minimal observation = %+v", got)
	}
}

func TestQueriesAndSummaries(t *testing.T) {
	od := openObs(t)
	temps := []float64{18, 22, 26, 30}
	for i, temp := range temps {
		o := Observation{
			ID:     ids("obs", i),
			Entity: Entity{ID: ids("e", i), Type: "organism", Label: "Hyla faber"},
			Measurements: []Measurement{
				Float("air_temperature", temp, "°C"),
				Text("habitat", "swamp"),
			},
		}
		if err := od.Put(o); err != nil {
			t.Fatal(err)
		}
	}
	// One observation of another species, no temperature.
	if err := od.Put(Observation{
		ID:           "obs:other",
		Entity:       Entity{ID: "e:other", Type: "organism", Label: "Scinax fuscomarginatus"},
		Measurements: []Measurement{Text("habitat", "pond")},
	}); err != nil {
		t.Fatal(err)
	}

	if od.Len() != 5 {
		t.Fatalf("Len = %d", od.Len())
	}
	byLabel, err := od.ByEntityLabel("Hyla faber")
	if err != nil {
		t.Fatal(err)
	}
	if len(byLabel) != 4 {
		t.Fatalf("ByEntityLabel = %d", len(byLabel))
	}
	for _, o := range byLabel {
		if len(o.Measurements) != 2 {
			t.Fatalf("measurements not joined: %+v", o)
		}
	}
	// Range query on a characteristic.
	hits, err := od.WhereMeasured("air_temperature", 20, 27)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 2 {
		t.Fatalf("WhereMeasured = %v", hits)
	}
	// Summary.
	sum, err := od.Summarize("air_temperature")
	if err != nil {
		t.Fatal(err)
	}
	if sum.Count != 4 || sum.Min != 18 || sum.Max != 30 || sum.Mean != 24 {
		t.Fatalf("summary = %+v", sum)
	}
	// Summaries skip non-numeric kinds; absent characteristic is empty.
	if s, _ := od.Summarize("habitat"); s.Count != 0 {
		t.Fatalf("text summary = %+v", s)
	}
	chars := od.Characteristics()
	if len(chars) != 2 || chars[0] != "air_temperature" || chars[1] != "habitat" {
		t.Fatalf("characteristics = %v", chars)
	}
}

func ids(prefix string, i int) string {
	return prefix + ":" + string(rune('a'+i))
}

func TestImportCollection(t *testing.T) {
	db, err := storage.Open(t.TempDir(), storage.Options{Sync: storage.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	taxa, err := taxonomy.Generate(taxonomy.GeneratorSpec{Species: 60, OutdatedFraction: 0.07, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	col, err := fnjv.Generate(fnjv.CollectionSpec{Records: 300, Seed: 3},
		taxa, geo.SyntheticGazetteer(10, 3), envsource.NewSimulator())
	if err != nil {
		t.Fatal(err)
	}
	store, err := fnjv.NewStore(db)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.PutAll(col.Records); err != nil {
		t.Fatal(err)
	}
	od, err := Open(db) // same embedded database: uniform storage
	if err != nil {
		t.Fatal(err)
	}
	n, err := ImportCollection(od, store)
	if err != nil {
		t.Fatal(err)
	}
	if n != 300 || od.Len() != 300 {
		t.Fatalf("imported %d, Len %d", n, od.Len())
	}
	// Every observation asserts a vocalization and carries the protocol.
	o, err := od.Get("obs:" + col.Records[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	if o.Protocol != "field sound recording" {
		t.Fatalf("protocol = %q", o.Protocol)
	}
	found := false
	for _, m := range o.Measurements {
		if m.Characteristic == "vocalization_recorded" && m.Flag {
			found = true
		}
	}
	if !found {
		t.Fatal("vocalization assertion missing")
	}
	// Cross-record aggregate over a heterogeneous characteristic.
	sum, err := od.Summarize("recording_duration")
	if err != nil {
		t.Fatal(err)
	}
	if sum.Count == 0 || sum.Min < 10 || sum.Max > 610 {
		t.Fatalf("duration summary = %+v", sum)
	}
}

func TestFromRuntimeMetrics(t *testing.T) {
	at := time.Date(2014, 3, 31, 12, 0, 0, 0, time.UTC)
	o := FromRuntimeMetrics("workflow-engine", at, map[string]float64{
		"engine.peak_in_flight":      8,
		"engine.elements_dispatched": 1929,
		"engine.invocations":         1930,
	})
	if o.Entity.ID != "subsystem:workflow-engine" || o.Entity.Type != "subsystem" {
		t.Fatalf("entity = %+v", o.Entity)
	}
	if o.Protocol != RuntimeProtocol {
		t.Fatalf("protocol = %q", o.Protocol)
	}
	// Deterministic (sorted) measurement order regardless of map iteration.
	want := []string{"engine.elements_dispatched", "engine.invocations", "engine.peak_in_flight"}
	if len(o.Measurements) != len(want) {
		t.Fatalf("measurements = %+v", o.Measurements)
	}
	for i, name := range want {
		if o.Measurements[i].Characteristic != name {
			t.Fatalf("measurement %d = %q, want %q", i, o.Measurements[i].Characteristic, name)
		}
	}

	// Runtime telemetry flows through the same store and queries as any
	// other observation.
	db := openObs(t)
	if err := db.Put(o); err != nil {
		t.Fatal(err)
	}
	ids, err := db.WhereMeasured("engine.peak_in_flight", 1, 100)
	if err != nil || len(ids) != 1 || ids[0] != o.ID {
		t.Fatalf("query: %v %v", ids, err)
	}
}
