package obs

import (
	"sort"
	"time"
)

// Runtime telemetry as observations. The engine's concurrency counters
// (in-flight iteration elements, peak parallelism), the caching
// resolver's coalesced-lookup counts, and the provenance batch writer's
// counters (queue depth, batch sizes, flush latency — see
// provenance.WriterMetrics.Counters) are assertions about a system entity
// observed at a point in time — exactly the §II.C observation shape — so
// they are stored and queried through the same uniform model as sounds and
// specimens. A monitoring dashboard then needs no second storage path:
// `WhereMeasured("engine.peak_in_flight", 1, math.Inf(1))` works like any
// other measurement query.

// RuntimeProtocol marks observations produced by system self-monitoring.
const RuntimeProtocol = "runtime self-monitoring"

// FromRuntimeMetrics maps a set of named counter readings (e.g.
// "engine.elements_dispatched", "resolver.coalesced_lookups") onto one
// Observation of the given subsystem entity. Measurements are emitted in
// sorted characteristic order so serialized observations are deterministic.
func FromRuntimeMetrics(subsystem string, at time.Time, counters map[string]float64) Observation {
	o := Observation{
		ID: "obs:runtime:" + subsystem + ":" + at.UTC().Format(time.RFC3339Nano),
		Entity: Entity{
			ID:    "subsystem:" + subsystem,
			Type:  "subsystem",
			Label: subsystem,
		},
		At:       at,
		Protocol: RuntimeProtocol,
	}
	names := make([]string, 0, len(counters))
	for name := range counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		o.Measurements = append(o.Measurements, Float(name, counters[name], "count"))
	}
	return o
}
