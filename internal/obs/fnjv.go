package obs

import (
	"repro/internal/fnjv"
	"repro/internal/geo"
)

// FromRecord maps one FNJV sound record onto the generic observation model:
// the organism is the observed entity, the recording session supplies the
// spatio-temporal and methodological context, and every contextual field
// becomes a measurement — the uniform representation the paper's §II.C
// observation databases need.
func FromRecord(r *fnjv.Record) Observation {
	o := Observation{
		ID: "obs:" + r.ID,
		Entity: Entity{
			ID:    "organism:" + r.ID,
			Type:  "organism",
			Label: r.Species,
		},
		At:         r.CollectDate,
		Protocol:   "field sound recording",
		ObservedBy: r.Recordist,
	}
	if r.HasCoordinates() {
		o.Where = &geo.Point{Lat: *r.Latitude, Lon: *r.Longitude}
	}
	add := func(m Measurement) { o.Measurements = append(o.Measurements, m) }
	if r.Class != "" {
		add(Text("taxon_class", r.Class))
	}
	if r.Gender != "" {
		add(Text("sex", r.Gender))
	}
	if r.NumIndividuals > 0 {
		add(Float("individual_count", float64(r.NumIndividuals), "individuals"))
	}
	if r.Habitat != "" {
		add(Text("habitat", r.Habitat))
	}
	if r.AirTempC != nil {
		add(Float("air_temperature", *r.AirTempC, "°C"))
	}
	if r.HumidityPct != nil {
		add(Float("relative_humidity", *r.HumidityPct, "%"))
	}
	if r.Atmosphere != "" {
		add(Text("atmospheric_conditions", r.Atmosphere))
	}
	if r.FrequencyKHz > 0 {
		add(Float("sampling_rate", r.FrequencyKHz, "kHz"))
	}
	if r.DurationSec > 0 {
		add(Float("recording_duration", float64(r.DurationSec), "s"))
	}
	if r.SoundFileFormat != "" {
		add(Text("file_format", r.SoundFileFormat))
	}
	add(Bool("vocalization_recorded", true))
	return o
}

// ImportCollection loads every record of the store into the observation
// database, returning the number imported. The scan and the writes are two
// phases: writing inside the scan callback would take the database write
// lock while the scan holds the read lock.
func ImportCollection(d *DB, store fnjv.Records) (int, error) {
	var recs []*fnjv.Record
	if err := store.Scan(func(r *fnjv.Record) bool {
		recs = append(recs, r)
		return true
	}); err != nil {
		return 0, err
	}
	for i, r := range recs {
		if err := d.Put(FromRecord(r)); err != nil {
			return i, err
		}
	}
	return len(recs), nil
}
