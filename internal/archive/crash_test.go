package archive

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"
)

// Crash-during-archive coverage, mirroring the provenance stream's
// crash-recovery tests: a Put that dies between replica writes must leave
// either a complete AIP or a partial that the next scrub pass detects and
// repairs from the replicas that did land. No crash point may leave a
// replica that reads back as healthy but wrong.
func TestCrashBetweenReplicaWritesIsRepairable(t *testing.T) {
	errCrash := errors.New("simulated crash")
	for crashAfter := 0; crashAfter < 3; crashAfter++ {
		t.Run(fmt.Sprintf("crash-after-replica-%d", crashAfter), func(t *testing.T) {
			vols := testVolumes(t, 3)
			s, err := OpenStore(vols)
			if err != nil {
				t.Fatal(err)
			}
			payload := []byte("payload whose archiving is interrupted")
			s.putFail = func(replica int) error {
				if replica == crashAfter {
					return errCrash
				}
				return nil
			}
			if _, err := s.Put(payload, Meta{MediaType: "text/plain"}); !errors.Is(err, errCrash) {
				t.Fatalf("Put = %v, want the simulated crash", err)
			}

			// "Reboot": reopen the volumes with a fresh store, as recovery
			// would.
			s2, err := OpenStore(vols)
			if err != nil {
				t.Fatal(err)
			}
			ids, err := s2.List()
			if err != nil {
				t.Fatal(err)
			}
			if len(ids) != 1 {
				t.Fatalf("partial AIP not visible after crash: List = %v", ids)
			}
			id := ids[0]

			// The partial is detectable: exactly crashAfter+1 replicas
			// landed (each one complete — the rename discipline allows no
			// torn files), the rest read as missing.
			st := s2.Stat(id)
			if got := st.Healthy(); got != crashAfter+1 {
				t.Fatalf("healthy replicas = %d, want %d", got, crashAfter+1)
			}
			for _, r := range st.Replicas {
				if r.State == ReplicaCorrupt {
					t.Fatalf("crash left a torn replica: %+v", r)
				}
			}

			// ...and repairable: one scrub pass completes the AIP.
			scr := &Scrubber{Store: s2}
			rep, err := scr.ScrubOnce(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			wantMissing := 3 - (crashAfter + 1)
			if rep.MissingFound != wantMissing {
				t.Fatalf("scrub found %d missing, want %d", rep.MissingFound, wantMissing)
			}
			if wantMissing > 0 && rep.Repaired != 1 {
				t.Fatalf("scrub repaired %d, want 1", rep.Repaired)
			}
			if st := s2.Stat(id); st.Healthy() != 3 {
				t.Fatalf("AIP incomplete after recovery scrub: %+v", st)
			}
			m, got, err := s2.Get(id)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, payload) {
				t.Fatal("recovered payload differs")
			}
			if m.ID != id {
				t.Fatalf("manifest ID %s != %s", m.ID, id)
			}
		})
	}
}

// A crash before any replica write leaves nothing visible — the Put was
// never acknowledged, matching the WAL's never-acknowledged-tail semantics.
func TestCrashBeforeFirstReplicaLeavesNothing(t *testing.T) {
	vols := testVolumes(t, 3)
	s, err := OpenStore(vols)
	if err != nil {
		t.Fatal(err)
	}
	errCrash := errors.New("simulated crash")
	s.putFail = func(replica int) error { return errCrash }
	if _, err := s.Put([]byte("never archived"), Meta{}); !errors.Is(err, errCrash) {
		t.Fatalf("Put = %v", err)
	}
	// Replica 0 landed before the hook fired; delete it to model a crash in
	// the first write itself (temp file unlinked, rename never happened).
	ids, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		if err := DeleteReplica(vols[0], id); err != nil {
			t.Fatal(err)
		}
	}
	s2, err := OpenStore(vols)
	if err != nil {
		t.Fatal(err)
	}
	ids, err = s2.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 0 {
		t.Fatalf("phantom objects after aborted Put: %v", ids)
	}
	rep, err := (&Scrubber{Store: s2}).ScrubOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() || rep.Objects != 0 {
		t.Fatalf("scrub over empty store: %+v", rep)
	}
}
