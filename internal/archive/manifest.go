// Package archive implements the long-term archival store the paper's title
// promises: Archival Information Packages (AIPs) that bundle a preserved
// object — a WAV clip, an FNJV metadata record, an exported OPM provenance
// graph — with the manifest that proves its fixity (sha256 digest, size,
// media type) and links it back to the provenance run that explains it.
//
// Every AIP is written to N replica volumes (distinct directories) with the
// same torn-write discipline as the storage WAL: temp file + fsync + rename,
// then a read-back verification of every replica (write-one-verify-all). A
// background Scrubber re-hashes replicas on a cadence, classifies each as
// healthy, corrupt or missing, repairs damaged replicas from a healthy one,
// quarantines unrecoverable objects, and records what it did as an OPM
// archive-audit run — "why was this object repaired" is a lineage query.
package archive

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"time"

	"repro/internal/storage"
)

// Manifest is the fixity record packaged with every archived object.
type Manifest struct {
	// ID is the content address of the payload: the first 16 bytes of its
	// sha256 digest, hex-encoded. It doubles as the replica file name and as
	// the OPM artifact ID ("aip:<ID>") in audit runs.
	ID string `json:"id"`
	// SHA256 is the full hex digest the scrubber re-checks replicas against.
	SHA256 string `json:"sha256"`
	// Size is the payload length in bytes.
	Size int64 `json:"size"`
	// MediaType describes the payload ("audio/wav", "application/json", ...).
	MediaType string `json:"media_type"`
	// SourceID names the collection record the object came from, if any.
	SourceID string `json:"source_id,omitempty"`
	// RunID links the package to the provenance run that produced or
	// assessed the object, if any.
	RunID string `json:"run_id,omitempty"`
	// Label is a human-readable description for dashboards.
	Label string `json:"label,omitempty"`
	// CreatedAt is when the package was first archived.
	CreatedAt time.Time `json:"created_at"`
}

// ArtifactID is the OPM artifact node ID audit runs use for this package.
func (m Manifest) ArtifactID() string { return "aip:" + m.ID }

// ErrCorrupt marks a replica that failed framing, CRC or fixity checks.
var ErrCorrupt = errors.New("archive: corrupt replica")

// AIP file framing (one file per replica):
//
//	4 bytes magic "AIP1"
//	4 bytes little-endian manifest JSON length
//	4 bytes little-endian CRC32 (Castagnoli, shared with the storage WAL)
//	        of the manifest JSON
//	manifest JSON
//	payload (Manifest.Size bytes; integrity = Manifest.SHA256)
var aipMagic = [4]byte{'A', 'I', 'P', '1'}

const aipHeaderLen = 12

// maxManifestLen bounds the manifest frame so a corrupt length field can
// never drive a giant allocation.
const maxManifestLen = 1 << 20

// digest returns the full hex sha256 and the derived content address.
func digest(payload []byte) (sum string, id string) {
	h := sha256.Sum256(payload)
	full := hex.EncodeToString(h[:])
	return full, full[:32]
}

// NewManifest builds the manifest for a payload. Meta carries the caller's
// descriptive fields; digest, size and ID are computed here.
func NewManifest(payload []byte, meta Meta, at time.Time) Manifest {
	sum, id := digest(payload)
	return Manifest{
		ID:        id,
		SHA256:    sum,
		Size:      int64(len(payload)),
		MediaType: meta.MediaType,
		SourceID:  meta.SourceID,
		RunID:     meta.RunID,
		Label:     meta.Label,
		CreatedAt: at.UTC(),
	}
}

// Meta is the caller-supplied descriptive part of a manifest.
type Meta struct {
	MediaType string
	SourceID  string
	RunID     string
	Label     string
}

// encodeAIP frames manifest + payload into one replica file image.
func encodeAIP(m Manifest, payload []byte) ([]byte, error) {
	mj, err := json.Marshal(m)
	if err != nil {
		return nil, fmt.Errorf("archive: encode manifest: %w", err)
	}
	if len(mj) > maxManifestLen {
		return nil, fmt.Errorf("archive: manifest too large (%d bytes)", len(mj))
	}
	blob := make([]byte, 0, aipHeaderLen+len(mj)+len(payload))
	blob = append(blob, aipMagic[:]...)
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(mj)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(mj, storage.Castagnoli))
	blob = append(blob, hdr[:]...)
	blob = append(blob, mj...)
	blob = append(blob, payload...)
	return blob, nil
}

// decodeManifest reads and CRC-checks the manifest frame, leaving r
// positioned at the start of the payload.
func decodeManifest(r io.Reader) (Manifest, error) {
	var hdr [aipHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Manifest{}, fmt.Errorf("%w: short header: %v", ErrCorrupt, err)
	}
	if !bytes.Equal(hdr[0:4], aipMagic[:]) {
		return Manifest{}, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	n := binary.LittleEndian.Uint32(hdr[4:8])
	want := binary.LittleEndian.Uint32(hdr[8:12])
	if n > maxManifestLen {
		return Manifest{}, fmt.Errorf("%w: manifest length %d", ErrCorrupt, n)
	}
	mj := make([]byte, n)
	if _, err := io.ReadFull(r, mj); err != nil {
		return Manifest{}, fmt.Errorf("%w: short manifest: %v", ErrCorrupt, err)
	}
	if crc32.Checksum(mj, storage.Castagnoli) != want {
		return Manifest{}, fmt.Errorf("%w: manifest crc mismatch", ErrCorrupt)
	}
	var m Manifest
	if err := json.Unmarshal(mj, &m); err != nil {
		return Manifest{}, fmt.Errorf("%w: manifest json: %v", ErrCorrupt, err)
	}
	if m.ID == "" || m.SHA256 == "" || m.Size < 0 {
		return Manifest{}, fmt.Errorf("%w: incomplete manifest", ErrCorrupt)
	}
	return m, nil
}

// decodeAIP parses a full replica image and verifies payload fixity against
// the manifest digest.
func decodeAIP(blob []byte) (Manifest, []byte, error) {
	r := bytes.NewReader(blob)
	m, err := decodeManifest(r)
	if err != nil {
		return Manifest{}, nil, err
	}
	payload := blob[len(blob)-r.Len():]
	if int64(len(payload)) != m.Size {
		return Manifest{}, nil, fmt.Errorf("%w: payload is %d bytes, manifest says %d",
			ErrCorrupt, len(payload), m.Size)
	}
	sum, id := digest(payload)
	if sum != m.SHA256 || id != m.ID {
		return Manifest{}, nil, fmt.Errorf("%w: fixity digest mismatch", ErrCorrupt)
	}
	return m, payload, nil
}
