package archive

import (
	"context"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/telemetry"
)

// ScrubReport is the outcome of one full scrub pass over the volumes.
type ScrubReport struct {
	StartedAt  time.Time
	FinishedAt time.Time

	Objects         int // objects examined
	ReplicasChecked int // replica files re-hashed (incl. missing slots)
	CorruptFound    int // replicas failing fixity
	MissingFound    int // replica slots with no file
	Repaired        int // objects fully restored from a healthy replica
	Unrecoverable   int // objects with zero healthy replicas this pass
	BytesScanned    int64

	// Damaged lists the objects that had at least one damaged replica, with
	// their post-repair status; the audit run is built from this.
	Damaged []ScrubFinding
}

// ScrubFinding is one damaged object: what was wrong and what was done.
type ScrubFinding struct {
	Status          ObjectStatus // state as found (pre-repair)
	RepairedVolumes []string     // volumes rewritten from a healthy replica
	Quarantined     bool         // object had no healthy replica and was quarantined
	RepairErr       string       // non-empty when a repair attempt itself failed
}

// Clean reports whether the pass found no damage at all.
func (r ScrubReport) Clean() bool { return len(r.Damaged) == 0 }

// Auditor records scrub outcomes somewhere durable — the provenance
// repository, in production (ProvenanceAuditor).
type Auditor interface {
	RecordAudit(ScrubReport) error
}

// Scrubber walks the store's volumes on a cadence, re-hashes every replica,
// repairs damage from healthy copies, quarantines unrecoverable objects, and
// emits cumulative counters (Counters / Observation) plus per-pass audit
// runs through the Auditor. Safe for one concurrent Run loop plus ad-hoc
// ScrubOnce calls.
type Scrubber struct {
	Store *Store
	// Interval is the Run cadence between passes (default 1 minute).
	Interval time.Duration
	// RatePerSec caps how many objects are examined per second (0 =
	// unlimited); scrubbing is a background janitor and must not starve
	// foreground I/O.
	RatePerSec float64
	// Auditor, when set, receives every pass that found damage.
	Auditor Auditor

	// mu serializes whole passes (one scrub at a time).
	mu sync.Mutex

	passes        atomic.Int64
	objects       atomic.Int64
	replicas      atomic.Int64
	corrupt       atomic.Int64
	missing       atomic.Int64
	repaired      atomic.Int64
	unrecoverable atomic.Int64
	bytesScanned  atomic.Int64
	lastPassUS    atomic.Int64

	passHist telemetry.Histogram // whole-pass latency distribution
}

// ScrubOnce runs one full pass: classify every replica of every object,
// repair what has a healthy source, quarantine what does not.
func (s *Scrubber) ScrubOnce(ctx context.Context) (ScrubReport, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ctx, sp := telemetry.StartSpan(ctx, "scrub-pass", "archive-scrubber")
	defer sp.Finish()
	rep := ScrubReport{StartedAt: time.Now()}
	ids, err := s.Store.List()
	if err != nil {
		sp.SetAttr("error", err.Error())
		return rep, err
	}
	var interval time.Duration
	if s.RatePerSec > 0 {
		interval = time.Duration(float64(time.Second) / s.RatePerSec)
	}
	next := time.Now()
	for _, id := range ids {
		if err := ctx.Err(); err != nil {
			return rep, err
		}
		if interval > 0 {
			if d := time.Until(next); d > 0 {
				select {
				case <-time.After(d):
				case <-ctx.Done():
					return rep, ctx.Err()
				}
			}
			next = next.Add(interval)
		}
		s.scrubObject(id, &rep)
	}
	rep.FinishedAt = time.Now()

	s.passes.Add(1)
	s.objects.Add(int64(rep.Objects))
	s.replicas.Add(int64(rep.ReplicasChecked))
	s.corrupt.Add(int64(rep.CorruptFound))
	s.missing.Add(int64(rep.MissingFound))
	s.repaired.Add(int64(rep.Repaired))
	s.unrecoverable.Add(int64(rep.Unrecoverable))
	s.bytesScanned.Add(rep.BytesScanned)
	s.lastPassUS.Store(rep.FinishedAt.Sub(rep.StartedAt).Microseconds())
	s.passHist.Observe(rep.FinishedAt.Sub(rep.StartedAt))
	if sp != nil {
		sp.SetAttr("objects", strconv.Itoa(rep.Objects))
		sp.SetAttr("replicas_checked", strconv.Itoa(rep.ReplicasChecked))
		sp.SetAttr("repaired", strconv.Itoa(rep.Repaired))
		sp.SetAttr("unrecoverable", strconv.Itoa(rep.Unrecoverable))
	}

	if s.Auditor != nil && !rep.Clean() {
		if err := s.Auditor.RecordAudit(rep); err != nil {
			return rep, err
		}
	}
	return rep, nil
}

// scrubObject classifies one object and applies repair or quarantine.
func (s *Scrubber) scrubObject(id string, rep *ScrubReport) {
	status := s.Store.Stat(id)
	rep.Objects++
	rep.ReplicasChecked += len(status.Replicas)
	if m := status.Manifest; m.ID != "" {
		rep.BytesScanned += m.Size * int64(status.Healthy())
	}
	for _, r := range status.Replicas {
		switch r.State {
		case ReplicaCorrupt:
			rep.CorruptFound++
		case ReplicaMissing:
			rep.MissingFound++
		}
	}
	if !status.Damaged() {
		return
	}
	finding := ScrubFinding{Status: status}
	if status.Healthy() > 0 {
		// Self-repair: rebuild damaged replicas from a healthy one.
		m, payload, err := s.Store.Get(id)
		if err == nil {
			blob, encErr := encodeAIP(m, payload)
			if encErr != nil {
				err = encErr
			} else {
				finding.RepairedVolumes, err = s.Store.repair(id, blob, status)
			}
		}
		if err != nil {
			finding.RepairErr = err.Error()
		} else {
			rep.Repaired++
		}
	} else {
		// Unrecoverable: no volume can vouch for the bytes. Quarantine the
		// survivors so damage is never served as the object.
		rep.Unrecoverable++
		finding.Quarantined = true
		if err := s.Store.quarantine(id); err != nil {
			finding.RepairErr = err.Error()
		}
	}
	rep.Damaged = append(rep.Damaged, finding)
}

// Run scrubs on the configured cadence until ctx is cancelled. Errors from
// a pass stop the loop (storage-level failures need operator attention).
func (s *Scrubber) Run(ctx context.Context) error {
	iv := s.Interval
	if iv <= 0 {
		iv = time.Minute
	}
	ticker := time.NewTicker(iv)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ticker.C:
		}
		if _, err := s.ScrubOnce(ctx); err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return err
		}
	}
}

// Counters renders the scrubber's cumulative telemetry as named readings for
// obs.FromRuntimeMetrics, mirroring the engine and provenance-writer
// counters.
func (s *Scrubber) Counters() map[string]float64 {
	c := map[string]float64{
		"archive.scrub.passes":           float64(s.passes.Load()),
		"archive.scrub.objects":          float64(s.objects.Load()),
		"archive.scrub.replicas_checked": float64(s.replicas.Load()),
		"archive.scrub.corrupt_found":    float64(s.corrupt.Load()),
		"archive.scrub.missing_found":    float64(s.missing.Load()),
		"archive.scrub.repaired":         float64(s.repaired.Load()),
		"archive.scrub.unrecoverable":    float64(s.unrecoverable.Load()),
		"archive.scrub.bytes_scanned":    float64(s.bytesScanned.Load()),
		"archive.scrub.last_pass_us":     float64(s.lastPassUS.Load()),
	}
	return telemetry.MergeCounters(c, s.passHist.Snapshot().Counters("archive.scrub.pass"))
}

// Observation snapshots the counters as a runtime self-monitoring
// observation, stored and queried like any other measurement.
func (s *Scrubber) Observation(at time.Time) obs.Observation {
	return obs.FromRuntimeMetrics("archive-scrubber", at, s.Counters())
}
