package archive

import (
	"fmt"
	"os"
)

// Fault injection for the archive's own verification: the experiment harness
// and tests damage replicas the same way the world does — silent bit flips,
// lost files, truncated writes — and then assert the scrubber finds and
// fixes every one of them. These helpers bypass the Store on purpose; they
// model hardware, not clients.

// CorruptReplica flips one byte of the object's replica on the given volume
// at offset (negative offsets count from the end). The file length and
// timestamps are unchanged — exactly the damage only a re-hash can see.
func CorruptReplica(volume, id string, offset int64) error {
	path := replicaPath(volume, id)
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return fmt.Errorf("archive: corrupt replica: %w", err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return err
	}
	if st.Size() == 0 {
		return fmt.Errorf("archive: corrupt replica: %s is empty", path)
	}
	if offset < 0 {
		offset += st.Size()
	}
	if offset < 0 || offset >= st.Size() {
		return fmt.Errorf("archive: corrupt replica: offset %d out of range [0,%d)", offset, st.Size())
	}
	var b [1]byte
	if _, err := f.ReadAt(b[:], offset); err != nil {
		return err
	}
	b[0] ^= 0xFF
	if _, err := f.WriteAt(b[:], offset); err != nil {
		return err
	}
	return f.Sync()
}

// DeleteReplica removes the object's replica file from the given volume —
// replica loss (dead disk, fat-fingered rm).
func DeleteReplica(volume, id string) error {
	if err := os.Remove(replicaPath(volume, id)); err != nil {
		return fmt.Errorf("archive: delete replica: %w", err)
	}
	return nil
}

// TruncateReplica cuts the object's replica on the given volume to n bytes —
// a torn write that slipped past the rename discipline (e.g. volume restored
// from a partial backup).
func TruncateReplica(volume, id string, n int64) error {
	if err := os.Truncate(replicaPath(volume, id), n); err != nil {
		return fmt.Errorf("archive: truncate replica: %w", err)
	}
	return nil
}
