package archive

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// Store is the replicated archival store: every AIP is written to each of N
// replica volumes (distinct directories, ideally distinct devices). Writes
// use the storage WAL's torn-write discipline — temp file + fsync + rename +
// directory fsync — and Put verifies every replica by reading it back
// (write-one-verify-all), so an acknowledged Put means N independent,
// fixity-checked copies exist.
//
// Volume layout:
//
//	<volume>/objects/<id>.aip      active replicas
//	<volume>/quarantine/<id>.aip   unrecoverable replicas, kept for forensics
type Store struct {
	volumes []string

	// mu serializes mutations (Put, repair, quarantine); reads are safe
	// against concurrent renames because rename is atomic.
	mu sync.Mutex

	now func() time.Time

	// putFail, when set (tests only), is invoked after each replica write and
	// aborts the Put when it errors — simulating a crash between replica
	// writes.
	putFail func(replica int) error
}

// ErrNotFound is returned when no volume holds a readable replica.
var ErrNotFound = errors.New("archive: object not found")

// ErrNoHealthyReplica is returned when replicas exist but none verifies.
var ErrNoHealthyReplica = errors.New("archive: no healthy replica")

const (
	objectsDir    = "objects"
	quarantineDir = "quarantine"
	aipExt        = ".aip"
)

// OpenStore opens (creating if needed) a store over the given replica
// volumes. At least two volumes are required for self-repair to mean
// anything; one is allowed for detection-only deployments.
func OpenStore(volumes []string) (*Store, error) {
	if len(volumes) == 0 {
		return nil, fmt.Errorf("archive: no replica volumes")
	}
	seen := map[string]bool{}
	for _, v := range volumes {
		abs := filepath.Clean(v)
		if seen[abs] {
			return nil, fmt.Errorf("archive: duplicate volume %q", v)
		}
		seen[abs] = true
		for _, sub := range []string{objectsDir, quarantineDir} {
			if err := os.MkdirAll(filepath.Join(v, sub), 0o755); err != nil {
				return nil, fmt.Errorf("archive: create volume: %w", err)
			}
		}
	}
	return &Store{volumes: append([]string(nil), volumes...), now: time.Now}, nil
}

// Volumes returns the replica volume paths in configuration order.
func (s *Store) Volumes() []string { return append([]string(nil), s.volumes...) }

func replicaPath(volume, id string) string {
	return filepath.Join(volume, objectsDir, id+aipExt)
}

func quarantinePath(volume, id string) string {
	return filepath.Join(volume, quarantineDir, id+aipExt)
}

// atomicWriteFile writes blob next to path and renames it into place, with
// file and directory fsyncs, so a crash leaves either the old state or the
// complete new file — never a torn replica.
func atomicWriteFile(path string, blob []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("archive: temp file: %w", err)
	}
	tmpName := tmp.Name()
	cleanup := func() { tmp.Close(); os.Remove(tmpName) }
	if _, err := tmp.Write(blob); err != nil {
		cleanup()
		return fmt.Errorf("archive: write replica: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return fmt.Errorf("archive: sync replica: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("archive: close replica: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("archive: rename replica: %w", err)
	}
	return syncDir(dir)
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("archive: open dir: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("archive: sync dir: %w", err)
	}
	return nil
}

// Put archives one object across every volume and verifies all replicas.
// Put is idempotent by content address: re-archiving identical bytes repairs
// any missing or damaged replicas and keeps the first manifest.
func (s *Store) Put(payload []byte, meta Meta) (Manifest, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := NewManifest(payload, meta, s.now())
	// Keep the original manifest (and CreatedAt) if any healthy replica of
	// this content already exists, so re-puts stay byte-identical.
	if prev, _, err := s.read(m.ID); err == nil {
		m = prev
	}
	blob, err := encodeAIP(m, payload)
	if err != nil {
		return Manifest{}, err
	}
	for i, vol := range s.volumes {
		path := replicaPath(vol, m.ID)
		if st, err := readReplica(path); err == nil && st.SHA256 == m.SHA256 {
			// Healthy identical replica already in place.
		} else if err := atomicWriteFile(path, blob); err != nil {
			return Manifest{}, err
		}
		if s.putFail != nil {
			if err := s.putFail(i); err != nil {
				return Manifest{}, err
			}
		}
	}
	// Verify-all: an acknowledged Put means every replica reads back intact.
	for _, vol := range s.volumes {
		if _, err := readReplica(replicaPath(vol, m.ID)); err != nil {
			return Manifest{}, fmt.Errorf("archive: post-write verify on %s: %w", vol, err)
		}
	}
	return m, nil
}

// readReplica fully reads and fixity-checks one replica file.
func readReplica(path string) (Manifest, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return Manifest{}, err
	}
	m, _, err := decodeAIP(blob)
	return m, err
}

// Get returns the manifest and payload from the first healthy replica,
// falling back across volumes on damage. ErrNotFound means no volume has a
// replica file; ErrNoHealthyReplica means replicas exist but all fail fixity.
func (s *Store) Get(id string) (Manifest, []byte, error) {
	return s.read(id)
}

// read is the lock-free replica fallback read (atomic renames make replica
// files safe to read concurrently with mutations).
func (s *Store) read(id string) (Manifest, []byte, error) {
	found := false
	for _, vol := range s.volumes {
		blob, err := os.ReadFile(replicaPath(vol, id))
		if err != nil {
			continue
		}
		found = true
		m, payload, err := decodeAIP(blob)
		if err != nil || m.ID != id {
			continue
		}
		return m, payload, nil
	}
	if found {
		return Manifest{}, nil, fmt.Errorf("%w: %s", ErrNoHealthyReplica, id)
	}
	return Manifest{}, nil, fmt.Errorf("%w: %s", ErrNotFound, id)
}

// ReplicaState classifies one replica of one object on one volume.
type ReplicaState string

// Replica states.
const (
	ReplicaHealthy ReplicaState = "healthy"
	ReplicaCorrupt ReplicaState = "corrupt"
	ReplicaMissing ReplicaState = "missing"
)

// ReplicaStatus is the scrub/fixity view of one replica.
type ReplicaStatus struct {
	Volume string
	State  ReplicaState
	Detail string // error text for corrupt replicas
}

// ObjectStatus is the fixity view of one object across all volumes.
type ObjectStatus struct {
	ID          string
	Manifest    Manifest // from the first healthy replica (zero if none)
	Replicas    []ReplicaStatus
	Quarantined bool // a quarantined copy exists on some volume
}

// Healthy counts replicas currently verifying.
func (o ObjectStatus) Healthy() int {
	n := 0
	for _, r := range o.Replicas {
		if r.State == ReplicaHealthy {
			n++
		}
	}
	return n
}

// Damaged reports whether any replica is corrupt or missing.
func (o ObjectStatus) Damaged() bool { return o.Healthy() < len(o.Replicas) }

// Stat re-hashes every replica of one object and reports per-volume states.
func (s *Store) Stat(id string) ObjectStatus {
	st := ObjectStatus{ID: id}
	for _, vol := range s.volumes {
		m, err := readReplica(replicaPath(vol, id))
		switch {
		case err == nil && m.ID == id:
			if st.Manifest.ID == "" {
				st.Manifest = m
			}
			st.Replicas = append(st.Replicas, ReplicaStatus{Volume: vol, State: ReplicaHealthy})
		case err != nil && os.IsNotExist(err):
			st.Replicas = append(st.Replicas, ReplicaStatus{Volume: vol, State: ReplicaMissing})
		default:
			detail := "manifest names different object"
			if err != nil {
				detail = err.Error()
			}
			st.Replicas = append(st.Replicas, ReplicaStatus{Volume: vol, State: ReplicaCorrupt, Detail: detail})
		}
		if _, err := os.Stat(quarantinePath(vol, id)); err == nil {
			st.Quarantined = true
		}
	}
	return st
}

// List returns the sorted union of object IDs with at least one active
// replica on any volume.
func (s *Store) List() ([]string, error) {
	return s.listDir(objectsDir)
}

// ListQuarantined returns the sorted IDs with a quarantined copy somewhere.
func (s *Store) ListQuarantined() ([]string, error) {
	return s.listDir(quarantineDir)
}

func (s *Store) listDir(sub string) ([]string, error) {
	set := map[string]bool{}
	for _, vol := range s.volumes {
		entries, err := os.ReadDir(filepath.Join(vol, sub))
		if err != nil {
			return nil, fmt.Errorf("archive: list %s: %w", vol, err)
		}
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, aipExt) {
				continue
			}
			set[strings.TrimSuffix(name, aipExt)] = true
		}
	}
	out := make([]string, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Strings(out)
	return out, nil
}

// repair rewrites the damaged replicas of id from the given healthy replica
// image and verifies them. Returns the volumes repaired.
func (s *Store) repair(id string, blob []byte, status ObjectStatus) ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var repaired []string
	for _, r := range status.Replicas {
		if r.State == ReplicaHealthy {
			continue
		}
		path := replicaPath(r.Volume, id)
		if err := atomicWriteFile(path, blob); err != nil {
			return repaired, err
		}
		if _, err := readReplica(path); err != nil {
			return repaired, fmt.Errorf("archive: repair verify on %s: %w", r.Volume, err)
		}
		repaired = append(repaired, r.Volume)
	}
	return repaired, nil
}

// quarantine moves every surviving replica of an unrecoverable object into
// its volume's quarantine directory (kept for forensics / partial recovery)
// so the damaged bytes can no longer be served as the object.
func (s *Store) quarantine(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, vol := range s.volumes {
		src := replicaPath(vol, id)
		if _, err := os.Stat(src); err != nil {
			continue
		}
		if err := os.Rename(src, quarantinePath(vol, id)); err != nil {
			return fmt.Errorf("archive: quarantine on %s: %w", vol, err)
		}
		if err := syncDir(filepath.Dir(src)); err != nil {
			return err
		}
	}
	return nil
}
