package archive

import (
	"repro/internal/opm"
	"repro/internal/provenance"
)

// Holdings is the AIP-store surface consumed by the preservation manager and
// the web service. *Store implements it directly; shard.ArchiveRouter
// implements it by routing each object ID to the shard whose volumes hold it
// and merging cross-shard listings.
type Holdings interface {
	Put(payload []byte, meta Meta) (Manifest, error)
	Get(id string) (Manifest, []byte, error)
	Stat(id string) ObjectStatus
	List() ([]string, error)
	ListQuarantined() ([]string, error)
	Volumes() []string
}

// RunRecorder is the slice of the provenance repository the auditor needs:
// the ability to persist one complete audit run.
type RunRecorder interface {
	Store(info provenance.RunInfo, g *opm.Graph) error
}

var _ Holdings = (*Store)(nil)
